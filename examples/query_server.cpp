// Embedded query serving: wrap a built index in a QueryService and hit it
// from several client threads at once — micro-batching, deadlines with
// degraded answers, a result cache, and backpressure, all observable in the
// final metrics table, a Prometheus exposition and a Chrome trace.
//
//   $ ./build/examples/query_server
//   $ ./build/examples/query_server metrics.prom trace.json
//
// docs/SERVING.md explains every knob used here; docs/OBSERVABILITY.md
// covers the exports.

#include <cstdio>
#include <thread>
#include <vector>

#include "search/knn.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "serve/service.h"
#include "ts/synthetic_archive.h"
#include "util/rng.h"

using namespace sapla;

int main(int argc, char** argv) {
  // Optional export paths; tracing costs nothing measurable when off.
  const char* metrics_path = argc > 1 ? argv[1] : nullptr;
  const char* trace_path = argc > 2 ? argv[2] : nullptr;
  if (trace_path != nullptr) obs::SetTraceEnabled(true);

  // A dataset and an immutable index, as in examples/knn_search.cpp.
  SyntheticOptions opt;
  opt.length = 256;
  opt.num_series = 800;
  const Dataset ds = MakeSyntheticDataset(5, opt);
  SimilarityIndex index(Method::kSapla, /*budget=*/24, IndexKind::kDbchTree);
  if (Status s = index.Build(ds); !s.ok()) {
    fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }

  // The service: micro-batches of up to 16 requests (or whatever arrived
  // within 200 µs), a 256-entry result cache, and degraded lower-bound
  // answers for requests that miss their deadline.
  ServeOptions options;
  options.max_batch = 16;
  options.max_delay_us = 200;
  options.cache_capacity = 256;
  options.degraded_answers = true;
  QueryService service(index, options);

  // Four clients, each asking for the 5 nearest neighbors of dataset
  // series (with repeats, so the cache gets hits). A 100 µs deadline on
  // every fourth request demonstrates degraded answers.
  std::vector<std::thread> clients;
  for (size_t c = 0; c < 4; ++c) {
    clients.emplace_back([&service, &ds, c] {
      Rng rng(42 + c);
      for (size_t i = 0; i < 200; ++i) {
        const auto& query = ds.series[rng.UniformInt(32)].values;
        const uint64_t deadline_us = i % 4 == 0 ? 100 : 0;
        const ServeResponse r = service.Knn(query, /*k=*/5, deadline_us);
        if (c == 0 && i == 0)
          printf("first answer: %zu neighbors, nearest distance %.4f\n",
                 r.result.neighbors.size(),
                 r.result.neighbors.empty() ? 0.0
                                            : r.result.neighbors[0].first);
      }
    });
  }
  for (auto& t : clients) t.join();

  // One asynchronous request too — futures are the non-blocking interface.
  std::future<ServeResponse> pending =
      service.SubmitKnn(ds.series[0].values, /*k=*/3);
  const ServeResponse async_answer = pending.get();
  printf("async answer: %s, %zu neighbors, cache_hit=%d\n",
         async_answer.status.ok() ? "ok" : "error",
         async_answer.result.neighbors.size(), async_answer.cache_hit);

  service.Stop();
  MetricsToTable(service.MetricsSnapshot()).Print();

  // The same registry renders to every export format (docs/OBSERVABILITY.md).
  if (metrics_path != nullptr && WritePrometheus(service.metrics(), metrics_path))
    printf("wrote %s (Prometheus text exposition)\n", metrics_path);
  if (trace_path != nullptr) {
    obs::SetTraceEnabled(false);
    if (obs::WriteChromeTrace(trace_path))
      printf("wrote %s (load in chrome://tracing)\n", trace_path);
  }
  return 0;
}
