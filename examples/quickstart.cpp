// Quickstart: reduce a time series with SAPLA, inspect the segments,
// reconstruct, and compare methods — the 60-second tour of the library.
//
//   $ ./build/examples/quickstart

#include <cstdio>
#include <vector>

#include "core/sapla.h"
#include "distance/distance.h"
#include "reduction/representation.h"
#include "ts/synthetic_archive.h"
#include "util/table.h"

using namespace sapla;

int main() {
  // 1. Get a time series (here: a synthetic ECG-like series; swap in your
  //    own std::vector<double>).
  SyntheticOptions opt;
  opt.length = 256;
  opt.num_series = 2;
  const Dataset ds = MakeSyntheticDataset(6, opt);  // EcgPqrst family
  const std::vector<double>& series = ds.series[0].values;

  // 2. Reduce it to M = 24 representation coefficients (N = 8 adaptive
  //    linear segments <a_i, b_i, r_i>).
  const SaplaReducer sapla;
  const Representation rep = sapla.Reduce(series, 24);

  printf("Reduced %zu points to %zu segments (%zu coefficients):\n",
         series.size(), rep.num_segments(),
         rep.num_segments() * CoefficientsPerSegment(Method::kSapla));
  for (size_t i = 0; i < rep.num_segments(); ++i) {
    printf("  segment %zu: a=%8.4f  b=%8.4f  r=%3zu  (len %zu)\n", i,
           rep.segments[i].a, rep.segments[i].b, rep.segments[i].r,
           rep.segment_length(i));
  }

  // 3. Reconstruct and measure the approximation quality.
  printf("\nsum of per-segment max deviations: %.4f\n",
         rep.SumMaxDeviation(series));
  printf("global max deviation:              %.4f\n",
         rep.GlobalMaxDeviation(series));

  // 4. Compare against the other reduction methods at the same budget.
  Table t("Max deviation at M = 24 (lower is better)");
  t.SetHeader({"Method", "Segments", "SumMaxDev"});
  for (const Method m : AllMethods()) {
    if (m == Method::kSax) continue;  // symbolic; no numeric deviation story
    const Representation r = MakeReducer(m)->Reduce(series, 24);
    t.AddRow({MethodName(m),
              std::to_string(r.segments.empty() ? r.coeffs.size()
                                                : r.num_segments()),
              Table::Num(r.SumMaxDeviation(series))});
  }
  t.Print();

  // 5. Lower-bounding distance between two series in reduced space
  //    (Dist_PAR never needs the raw n-point arrays).
  const Representation other = sapla.Reduce(ds.series[1].values, 24);
  printf("Dist_PAR(reduced, reduced) = %.4f\n", DistPar(rep, other));
  printf("Euclidean(raw, raw)        = %.4f\n",
         EuclideanDistance(series, ds.series[1].values));
  return 0;
}
