// 1-NN time-series classification — the workload the paper's introduction
// motivates. Queries are classified by their nearest indexed neighbor's
// label; the index prunes most raw-distance computations while keeping the
// classification decision intact.
//
//   $ ./build/examples/classification_1nn

#include <cstdio>

#include "search/knn.h"
#include "search/metrics.h"
#include "ts/synthetic_archive.h"
#include "util/stats.h"
#include "util/table.h"

using namespace sapla;

int main() {
  Table t("1-NN classification across synthetic datasets (SAPLA M=24, "
          "DBCH-tree)");
  t.SetHeader({"Dataset", "IndexAccuracy", "ScanAccuracy", "AvgPruning"});

  for (const size_t dataset_id : {2u, 3u, 6u, 8u, 9u}) {
    SyntheticOptions opt;
    opt.length = 256;
    opt.num_series = 120;
    const Dataset full = MakeSyntheticDataset(dataset_id, opt);

    // Split: first 100 series are indexed, last 20 are held-out queries.
    Dataset train;
    train.name = full.name;
    train.series.assign(full.series.begin(), full.series.begin() + 100);
    const std::vector<TimeSeries> queries(full.series.begin() + 100,
                                          full.series.end());

    SimilarityIndex index(Method::kSapla, 24, IndexKind::kDbchTree);
    if (!index.Build(train).ok()) continue;

    size_t index_correct = 0, scan_correct = 0;
    SummaryStats pruning;
    for (const TimeSeries& q : queries) {
      const KnnResult via_index = index.Knn(q.values, 1);
      const KnnResult via_scan = LinearScanKnn(train, q.values, 1);
      if (!via_index.neighbors.empty() &&
          train.series[via_index.neighbors[0].second].label == q.label)
        ++index_correct;
      if (train.series[via_scan.neighbors[0].second].label == q.label)
        ++scan_correct;
      pruning.Add(PruningPower(via_index, train.size()));
    }
    t.AddRow({full.name,
              Table::Num(static_cast<double>(index_correct) /
                         static_cast<double>(queries.size()), 3),
              Table::Num(static_cast<double>(scan_correct) /
                         static_cast<double>(queries.size()), 3),
              Table::Num(pruning.mean(), 3)});
  }
  t.Print();
  printf("IndexAccuracy tracking ScanAccuracy shows the index preserves the "
         "1-NN decision\nwhile measuring only AvgPruning of the raw "
         "series.\n");
  return 0;
}
