// Streaming segmentation monitor: consume an unbounded sensor feed with
// StreamingSapla, keeping a fixed-size piecewise-linear sketch (O(N) memory)
// that can be snapshotted at any moment — e.g. to ship to a dashboard or to
// compare the live regime against a reference profile with Dist_PAR.
//
//   $ ./build/examples/streaming_monitor

#include <cstdio>
#include <vector>

#include "core/streaming_sapla.h"
#include "distance/distance.h"
#include "ts/synthetic_archive.h"
#include "util/rng.h"

using namespace sapla;

int main() {
  constexpr size_t kBudget = 8;   // segments held in memory
  constexpr size_t kTotal = 20000;

  // Simulated feed: smooth drift with two regime shifts.
  Rng rng(99);
  StreamingSapla stream(kBudget);
  double level = 0.0;
  for (size_t t = 0; t < kTotal; ++t) {
    double drift = 0.001;
    if (t > 8000) drift = -0.004;   // regime 2
    if (t > 15000) drift = 0.006;   // regime 3
    level += drift + 0.02 * rng.Gaussian();
    stream.Append(level);

    if ((t + 1) % 5000 == 0) {
      const Representation sketch = stream.Snapshot();
      printf("after %5zu points: %zu segments, sketch = ", t + 1,
             sketch.num_segments());
      for (const auto& seg : sketch.segments)
        printf("[..%zu: a=%+.4f] ", seg.r, seg.a);
      printf("\n");
    }
  }

  // The final sketch's slopes expose the three regimes.
  const Representation sketch = stream.Snapshot();
  printf("\nfinal sketch (%zu segments over %zu points, memory O(%zu)):\n",
         sketch.num_segments(), sketch.n, kBudget);
  for (size_t i = 0; i < sketch.num_segments(); ++i) {
    printf("  segment %zu: [%6zu, %6zu]  slope %+.5f\n", i,
           sketch.segment_start(i), sketch.segments[i].r,
           sketch.segments[i].a);
  }
  printf("\nregime shifts were injected at t = 8000 and t = 15000.\n");
  return 0;
}
