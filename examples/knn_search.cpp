// Indexed similarity search: build a DBCH-tree over a dataset, run k-NN
// queries, and compare pruning against a linear scan and an R-tree.
//
//   $ ./build/examples/knn_search                  # synthetic dataset
//   $ ./build/examples/knn_search My_TRAIN.tsv     # your UCR-format file

#include <cstdio>
#include <string>

#include "search/knn.h"
#include "search/metrics.h"
#include "ts/synthetic_archive.h"
#include "ts/ucr_loader.h"
#include "util/table.h"

using namespace sapla;

int main(int argc, char** argv) {
  // Load a dataset: a UCR TSV if given, else a synthetic EOG-like one.
  Dataset ds;
  if (argc > 1) {
    UcrLoadOptions opt;
    opt.target_length = 256;
    const auto loaded = LoadUcrDataset(argv[1], opt);
    if (!loaded.ok()) {
      fprintf(stderr, "failed to load %s: %s\n", argv[1],
              loaded.status().ToString().c_str());
      return 1;
    }
    ds = *loaded;
  } else {
    SyntheticOptions opt;
    opt.length = 256;
    opt.num_series = 100;
    ds = MakeSyntheticDataset(5, opt);  // EogSaccade family
  }
  printf("dataset %s: %zu series of length %zu\n\n", ds.name.c_str(),
         ds.size(), ds.length());

  // Index with SAPLA (M = 24) under both tree types.
  constexpr size_t kBudget = 24;
  SimilarityIndex dbch(Method::kSapla, kBudget, IndexKind::kDbchTree);
  SimilarityIndex rtree(Method::kSapla, kBudget, IndexKind::kRTree);
  if (Status s = dbch.Build(ds); !s.ok()) {
    fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  if (Status s = rtree.Build(ds); !s.ok()) {
    fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }

  // Query with the first series; ask for its 5 nearest neighbors.
  const std::vector<double>& query = ds.series[0].values;
  constexpr size_t kK = 5;
  const KnnResult truth = LinearScanKnn(ds, query, kK);
  const KnnResult via_dbch = dbch.Knn(query, kK);
  const KnnResult via_rtree = rtree.Knn(query, kK);

  printf("5-NN of series 0 (DBCH-tree):\n");
  for (const auto& [dist, id] : via_dbch.neighbors)
    printf("  series %3zu  distance %.4f  label %d\n", id, dist,
           ds.series[id].label);

  Table t("Search cost (measured raw series out of " +
          std::to_string(ds.size()) + ")");
  t.SetHeader({"Strategy", "Measured", "PruningPower", "Accuracy"});
  t.AddRow({"Linear scan", std::to_string(truth.num_measured), "1.000",
            "1.000"});
  t.AddRow({"SAPLA + R-tree", std::to_string(via_rtree.num_measured),
            Table::Num(PruningPower(via_rtree, ds.size()), 3),
            Table::Num(Accuracy(via_rtree, truth, kK), 3)});
  t.AddRow({"SAPLA + DBCH-tree", std::to_string(via_dbch.num_measured),
            Table::Num(PruningPower(via_dbch, ds.size()), 3),
            Table::Num(Accuracy(via_dbch, truth, kK), 3)});
  t.Print();
  return 0;
}
