// Warping-invariant search with DTW + LB_Keogh (extension module): find
// nearest neighbors that Euclidean distance misses because of small time
// shifts, while LB_Keogh keeps the number of full DTW evaluations low.
//
//   $ ./build/examples/dtw_search

#include <cmath>
#include <cstdio>
#include <vector>

#include "distance/dtw.h"
#include "search/knn.h"
#include "ts/time_series.h"
#include "util/rng.h"

using namespace sapla;

int main() {
  // Dataset: shifted copies of two base waveforms plus noise. Euclidean
  // treats a shifted twin as distant; DTW does not.
  Rng rng(7);
  Dataset ds;
  ds.name = "shifted_waves";
  const size_t n = 128;
  auto wave = [&](int cls, size_t shift) {
    std::vector<double> v(n);
    for (size_t t = 0; t < n; ++t) {
      const double u = static_cast<double>(t + shift) / 16.0;
      v[t] = cls == 0 ? std::sin(2.0 * M_PI * u)
                      : std::fabs(std::fmod(u, 2.0) - 1.0) * 2.0 - 1.0;
      v[t] += 0.05 * rng.Gaussian();
    }
    ZNormalize(&v);
    return v;
  };
  for (int cls = 0; cls < 2; ++cls)
    for (size_t shift = 0; shift < 40; ++shift)
      ds.series.emplace_back(wave(cls, shift), cls);

  const std::vector<double> query = wave(0, 3);
  const size_t band = 8, k = 5;

  const KnnDtwResult dtw = DtwKnn(ds, query, k, band);
  const KnnResult euc = LinearScanKnn(ds, query, k);

  printf("query: class-0 wave shifted by 3 samples\n\n");
  printf("DTW %zu-NN (band %zu):\n", k, band);
  for (const auto& [dist, id] : dtw.neighbors)
    printf("  series %3zu  class %d  dtw %.4f\n", id, ds.series[id].label,
           dist);
  printf("full DTW evaluations: %zu / %zu (LB_Keogh pruned the rest)\n\n",
         dtw.num_dtw_computations, ds.size());

  printf("Euclidean %zu-NN:\n", k);
  size_t euc_correct = 0, dtw_correct = 0;
  for (const auto& [dist, id] : euc.neighbors) {
    printf("  series %3zu  class %d  euclid %.4f\n", id, ds.series[id].label,
           dist);
    if (ds.series[id].label == 0) ++euc_correct;
  }
  for (const auto& [dist, id] : dtw.neighbors)
    if (ds.series[id].label == 0) ++dtw_correct;
  printf("\nneighbors from the query's class: DTW %zu/%zu, Euclidean "
         "%zu/%zu\n",
         dtw_correct, k, euc_correct, k);
  return 0;
}
