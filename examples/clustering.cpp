// Time-series k-means with reduced-space acceleration: cluster a synthetic
// archive dataset and measure how many raw distance computations the
// GEMINI-style lower-bound filter avoids.
//
//   $ ./build/examples/clustering

#include <cstdio>
#include <map>

#include "mining/kmeans.h"
#include "ts/synthetic_archive.h"
#include "util/table.h"
#include "util/timer.h"

using namespace sapla;

int main() {
  SyntheticOptions opt;
  opt.length = 256;
  opt.num_series = 90;
  const Dataset ds = MakeSyntheticDataset(2, opt);  // SineMixture, 3+ classes

  Table t("k-means on " + ds.name + " (k = 4, SAPLA filter M = 24)");
  t.SetHeader({"Mode", "Iterations", "Inertia", "ExactDistances", "CPU s"});
  for (const bool filter : {false, true}) {
    KMeansOptions kopt;
    kopt.k = 4;
    kopt.seed = 3;
    kopt.use_reduced_filter = filter;
    CpuTimer timer;
    const auto result = KMeansCluster(ds, kopt);
    const double seconds = timer.Seconds();
    if (!result.ok()) {
      fprintf(stderr, "%s\n", result.status().ToString().c_str());
      return 1;
    }
    t.AddRow({filter ? "lower-bound filter" : "plain Lloyd",
              std::to_string(result->iterations),
              Table::Num(result->inertia, 6),
              std::to_string(result->exact_distance_computations),
              Table::Num(seconds, 3)});
    if (filter) {
      // Cluster composition against the generator's class labels.
      std::map<std::pair<size_t, int>, size_t> table;
      for (size_t i = 0; i < ds.size(); ++i)
        ++table[{result->assignment[i], ds.series[i].label}];
      printf("cluster composition (cluster <- class:count):\n");
      size_t last_cluster = SIZE_MAX;
      for (const auto& [key, count] : table) {
        if (key.first != last_cluster) {
          printf("%s  cluster %zu:", last_cluster == SIZE_MAX ? "" : "\n",
                 key.first);
          last_cluster = key.first;
        }
        printf("  %d:%zu", key.second, count);
      }
      printf("\n\n");
    }
  }
  t.Print();
  return 0;
}
