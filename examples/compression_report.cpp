// Compression study: reconstruction quality versus coefficient budget for
// every reduction method — the storage-side view of dimensionality
// reduction (smart-grid style archiving, cf. the paper's related work).
//
//   $ ./build/examples/compression_report

#include <cmath>
#include <cstdio>

#include "reduction/representation.h"
#include "ts/synthetic_archive.h"
#include "ts/time_series.h"
#include "util/stats.h"
#include "util/table.h"

using namespace sapla;

int main() {
  SyntheticOptions opt;
  opt.length = 512;
  opt.num_series = 20;
  const Dataset ds = MakeSyntheticDataset(5, opt);  // EogSaccade family

  Table t("Reconstruction RMSE by coefficient budget (dataset " + ds.name +
          ", n=512, 20 series)");
  std::vector<size_t> budgets{12, 24, 48, 96};
  std::vector<std::string> header{"Method"};
  for (const size_t m : budgets) {
    char buf[48];
    snprintf(buf, sizeof(buf), "M=%zu (%.1fx)", m,
             static_cast<double>(opt.length) / static_cast<double>(m));
    header.push_back(buf);
  }
  t.SetHeader(header);

  for (const Method method : AllMethods()) {
    const auto reducer = MakeReducer(method);
    std::vector<std::string> row{MethodName(method)};
    for (const size_t m : budgets) {
      SummaryStats rmse;
      for (const TimeSeries& ts : ds.series) {
        const Representation rep = reducer->Reduce(ts.values, m);
        const std::vector<double> rec = rep.Reconstruct();
        rmse.Add(std::sqrt(SquaredEuclideanDistance(ts.values, rec) /
                           static_cast<double>(ts.size())));
      }
      row.push_back(Table::Num(rmse.mean(), 3));
    }
    t.AddRow(row);
  }
  t.Print();
  printf("columns show the compression ratio n/M; adaptive linear methods\n"
         "(SAPLA/APLA) hold quality at high compression where constant and\n"
         "equal-length methods degrade.\n");
  return 0;
}
