// Anomaly localization with two-resolution SAPLA: a coarse reduction
// (few segments) cannot follow a short anomalous excursion, while a fine
// reduction tracks it — adaptive segmentation dedicates a segment to the
// spike. The point-wise gap between the two reconstructions peaks exactly
// at the anomaly.
//
//   $ ./build/examples/anomaly_detection

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

#include "core/sapla.h"
#include "ts/synthetic_archive.h"
#include "ts/time_series.h"

using namespace sapla;

int main() {
  // A smooth trend+seasonal series with an injected level spike.
  SyntheticOptions opt;
  opt.length = 512;
  opt.num_series = 1;
  opt.z_normalize = false;
  Dataset ds = MakeSyntheticDataset(9, opt);  // TrendSeasonal family
  std::vector<double> series = ds.series[0].values;

  constexpr size_t kAnomalyStart = 301;
  constexpr size_t kAnomalyLen = 9;
  for (size_t t = kAnomalyStart; t < kAnomalyStart + kAnomalyLen; ++t)
    series[t] += 6.0;
  ZNormalize(&series);

  // Coarse model: 4 segments — enough for trend+season envelope, far too
  // few to spend one on a 9-point spike. Fine model: 32 segments — the
  // adaptive initialization gives the spike its own segment.
  const SaplaReducer sapla;
  const std::vector<double> coarse =
      sapla.ReduceToSegments(series, 4).Reconstruct();
  const std::vector<double> fine =
      sapla.ReduceToSegments(series, 32).Reconstruct();

  // Anomaly score = |fine - coarse| per point.
  size_t peak = 0;
  double peak_score = 0.0;
  std::vector<double> score(series.size());
  for (size_t t = 0; t < series.size(); ++t) {
    score[t] = std::fabs(fine[t] - coarse[t]);
    if (score[t] > peak_score) {
      peak_score = score[t];
      peak = t;
    }
  }

  printf("top-5 anomaly scores (|fine reconstruction - coarse|):\n");
  std::vector<std::pair<double, size_t>> ranked;
  for (size_t t = 0; t < score.size(); ++t) ranked.emplace_back(score[t], t);
  std::sort(ranked.rbegin(), ranked.rend());
  for (size_t k = 0; k < 5; ++k) {
    printf("  t=%3zu  score %.4f%s\n", ranked[k].second, ranked[k].first,
           ranked[k].second >= kAnomalyStart &&
                   ranked[k].second < kAnomalyStart + kAnomalyLen
               ? "   <-- inside injected anomaly"
               : "");
  }

  const bool hit =
      peak >= kAnomalyStart && peak < kAnomalyStart + kAnomalyLen;
  printf("\ninjected anomaly at [%zu, %zu]; peak score at t=%zu -> %s\n",
         kAnomalyStart, kAnomalyStart + kAnomalyLen - 1, peak,
         hit ? "LOCALIZED" : "missed");
  return hit ? 0 : 1;
}
