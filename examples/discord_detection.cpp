// Discord detection with the matrix profile: the window FARTHEST from its
// nearest neighbor is the series' strongest anomaly — no model, no
// thresholds. Complements examples/anomaly_detection.cpp (which uses the
// two-resolution SAPLA residual).
//
//   $ ./build/examples/discord_detection

#include <cmath>
#include <cstdio>
#include <vector>

#include "mining/matrix_profile.h"
#include "util/rng.h"

using namespace sapla;

int main() {
  // A heartbeat-like periodic signal with one corrupted beat.
  const size_t period = 50;
  std::vector<double> v(1500);
  Rng rng(12);
  for (size_t t = 0; t < v.size(); ++t) {
    const double phase = 2.0 * M_PI * static_cast<double>(t % period) /
                         static_cast<double>(period);
    v[t] = std::sin(phase) + 0.4 * std::sin(2.0 * phase) +
           0.03 * rng.Gaussian();
  }
  const size_t corrupt_at = 900;
  for (size_t t = corrupt_at; t < corrupt_at + period; ++t)
    v[t] = 0.5 * rng.Uniform(-1.0, 1.0);  // arrhythmic beat

  MatrixProfileOptions opt;
  opt.window = period;
  const auto mp = ComputeMatrixProfile(v, opt);
  if (!mp.ok()) {
    fprintf(stderr, "%s\n", mp.status().ToString().c_str());
    return 1;
  }

  const std::vector<size_t> discords = TopDiscords(*mp, 3);
  printf("top-3 discords (window %zu):\n", opt.window);
  for (const size_t d : discords) {
    printf("  offset %4zu  profile %.4f%s\n", d, mp->profile[d],
           d + opt.window > corrupt_at && d < corrupt_at + opt.window
               ? "   <-- overlaps corrupted beat"
               : "");
  }

  const auto [a, b] = TopMotif(*mp);
  printf("\ntop motif: offsets %zu and %zu (distance %.6f) — two of the "
         "many clean beats.\n",
         a, b, mp->profile[a]);

  const bool hit = !discords.empty() &&
                   discords[0] + opt.window > corrupt_at &&
                   discords[0] < corrupt_at + opt.window;
  printf("corrupted beat at [%zu, %zu]: %s\n", corrupt_at,
         corrupt_at + period - 1, hit ? "DETECTED as top discord" : "missed");
  return hit ? 0 : 1;
}
