// Motif discovery — one of the data-mining tasks the paper's introduction
// motivates. The SubsequenceIndex slides a window over a long recording,
// indexes the SAPLA reductions, and finds the closest pair of
// non-overlapping windows (the "best motif").
//
//   $ ./build/examples/motif_discovery

#include <cmath>
#include <cstdio>
#include <vector>

#include "search/subsequence.h"
#include "util/rng.h"

using namespace sapla;

int main() {
  // A 2000-point noisy recording with a hidden repeated gesture.
  Rng rng(4242);
  std::vector<double> recording(2000);
  double x = 0.0;
  for (auto& v : recording) {
    x = 0.6 * x + rng.Gaussian();
    v = x;
  }
  std::vector<double> gesture(96);
  for (size_t t = 0; t < gesture.size(); ++t) {
    const double u = static_cast<double>(t) / 96.0;
    gesture[t] = 8.0 * std::sin(2.0 * M_PI * 3.0 * u) * std::exp(-3.0 * u);
  }
  // The gesture replaces the background (plus slight per-occurrence noise),
  // so its two occurrences are each other's near-duplicates.
  const size_t first_at = 400, second_at = 1400;
  for (size_t t = 0; t < gesture.size(); ++t) {
    recording[first_at + t] = gesture[t] + 0.1 * rng.Gaussian();
    recording[second_at + t] = gesture[t] + 0.1 * rng.Gaussian();
  }

  // Index every window of length 96 (SAPLA M = 24, DBCH-tree).
  SubsequenceIndex::Options opt;
  opt.window = 96;
  opt.stride = 2;
  opt.budget_m = 24;
  auto index = SubsequenceIndex::Build(recording, opt);
  if (!index.ok()) {
    fprintf(stderr, "%s\n", index.status().ToString().c_str());
    return 1;
  }
  printf("indexed %zu windows of length %zu\n", (*index)->num_windows(),
         opt.window);

  size_t partner = 0;
  const SubsequenceMatch motif = (*index)->FindMotif(&partner);
  const size_t a = std::min(motif.offset, partner);
  const size_t b = std::max(motif.offset, partner);
  printf("best motif: offsets %zu and %zu (distance %.4f)\n", a, b,
         motif.distance);
  printf("planted gesture at %zu and %zu\n", first_at, second_at);

  const bool found = a + opt.window > first_at && a < first_at + opt.window &&
                     b + opt.window > second_at && b < second_at + opt.window;
  printf("%s\n", found ? "motif matches the planted repetition"
                       : "motif missed the planted repetition");
  return found ? 0 : 1;
}
