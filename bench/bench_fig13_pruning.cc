// Regenerates Fig. 13 (a: pruning power rho, b: accuracy) — every method on
// the plain R-tree vs the DBCH-tree, across K in {4, 8, 16, 32, 64}.
//
// Expected shape (paper): adaptive methods (SAPLA/APLA/APCA) gain the most
// from the DBCH-tree (the APCA-MBR overlap problem hurts them on the
// R-tree); PLA and CHEBY, which use their own MBRs, look similar on both;
// PAALM's poor max deviation costs it accuracy on the DBCH-tree.
//
// Each query also cross-checks the observability SearchCounters
// (obs/counters.h) against the figure's own bookkeeping: rho computed from
// counters.exact_evaluations must equal rho computed from num_measured, and
// the counter identities (lb = exact + pruned_leaf, N = lb + pruned_node)
// must hold. A mismatch means the counters drifted from the quantities the
// paper defines, so the harness exits non-zero instead of plotting lies.

#include <cstdio>
#include <cstdlib>

#include "harness_common.h"
#include "obs/counters.h"
#include "search/knn.h"
#include "search/metrics.h"
#include "util/stats.h"
#include "util/table.h"

namespace sapla {
namespace bench {
namespace {

// rho via num_measured (the figure's historical path) and via the
// observability counters must be the same number.
void CrossCheckCounters(const KnnResult& r, size_t dataset_size,
                        const char* where) {
  const SearchCounters& c = r.counters;
  const bool ok =
      c.exact_evaluations == r.num_measured &&
      c.lb_evaluations == c.exact_evaluations + c.entries_pruned_leaf &&
      c.lb_evaluations + c.entries_pruned_node == dataset_size &&
      PruningPower(r, dataset_size) == c.PruningPower(dataset_size);
  if (!ok) {
    fprintf(stderr,
            "fig13: SearchCounters disagree with num_measured (%s): "
            "measured=%zu exact=%llu lb=%llu pruned_leaf=%llu "
            "pruned_node=%llu N=%zu\n",
            where, r.num_measured,
            static_cast<unsigned long long>(c.exact_evaluations),
            static_cast<unsigned long long>(c.lb_evaluations),
            static_cast<unsigned long long>(c.entries_pruned_leaf),
            static_cast<unsigned long long>(c.entries_pruned_node),
            dataset_size);
    exit(1);
  }
}

int Run(int argc, char** argv) {
  const HarnessConfig config = ParseFlags(argc, argv);
  const size_t m = config.budgets.front();

  struct Cell {
    SummaryStats rho;
    SummaryStats rho_counters;  // same quantity via SearchCounters
    SummaryStats accuracy;
  };
  // [method][tree][k]
  std::vector<std::vector<std::vector<Cell>>> cells(
      config.methods.size(),
      std::vector<std::vector<Cell>>(2, std::vector<Cell>(config.ks.size())));

  for (size_t d = 0; d < config.num_datasets; ++d) {
    const Dataset ds = MakeDataset(config, d);
    std::vector<std::vector<double>> queries;
    for (const size_t qi : QueryIndices(config, d))
      queries.push_back(ds.series[qi].values);
    for (size_t mi = 0; mi < config.methods.size(); ++mi) {
      for (int tree = 0; tree < 2; ++tree) {
        SimilarityIndex index(config.methods[mi], m,
                              tree == 0 ? IndexKind::kRTree
                                        : IndexKind::kDbchTree);
        if (!index.Build(ds).ok()) continue;
        for (size_t ki = 0; ki < config.ks.size(); ++ki) {
          const size_t k = config.ks[ki];
          // Batch fan-out across the --threads pool; per-query results and
          // num_measured are identical to serial Knn calls.
          const std::vector<KnnResult> results = index.KnnBatch(queries, k);
          for (size_t q = 0; q < queries.size(); ++q) {
            const KnnResult truth = LinearScanKnn(ds, queries[q], k);
            CrossCheckCounters(results[q], ds.size(),
                               MethodName(config.methods[mi]).c_str());
            cells[mi][tree][ki].rho.Add(PruningPower(results[q], ds.size()));
            cells[mi][tree][ki].rho_counters.Add(
                results[q].counters.PruningPower(ds.size()));
            cells[mi][tree][ki].accuracy.Add(Accuracy(results[q], truth, k));
          }
        }
      }
    }
    if ((d + 1) % 10 == 0)
      fprintf(stderr, "fig13: %zu/%zu datasets\n", d + 1, config.num_datasets);
  }

  for (int what = 0; what < 2; ++what) {
    Table t(what == 0
                ? "Fig. 13a: Pruning power rho (lower is better), M=" +
                      std::to_string(m)
                : "Fig. 13b: Accuracy (fraction of true k-NN found), M=" +
                      std::to_string(m));
    std::vector<std::string> header{"Method", "Tree"};
    for (const size_t k : config.ks) header.push_back("K=" + std::to_string(k));
    t.SetHeader(header);
    for (size_t mi = 0; mi < config.methods.size(); ++mi) {
      for (int tree = 0; tree < 2; ++tree) {
        std::vector<std::string> row{MethodName(config.methods[mi]),
                                     tree == 0 ? "R-tree" : "DBCH-tree"};
        for (size_t ki = 0; ki < config.ks.size(); ++ki) {
          const Cell& c = cells[mi][tree][ki];
          row.push_back(Table::Num(what == 0 ? c.rho.mean()
                                             : c.accuracy.mean(), 3));
        }
        t.AddRow(row);
      }
    }
    t.Print(config.CsvPath(what == 0 ? "fig13a_pruning_power"
                                     : "fig13b_accuracy"));
  }

  // Per-query agreement was asserted in CrossCheckCounters; also log both
  // aggregate computations so the output shows the redundancy explicitly.
  printf("\nrho cross-check (K=%zu): num_measured vs SearchCounters\n",
         config.ks.front());
  for (size_t mi = 0; mi < config.methods.size(); ++mi) {
    for (int tree = 0; tree < 2; ++tree) {
      const Cell& c = cells[mi][tree][0];
      printf("  %-6s %-9s rho=%.6f rho_counters=%.6f\n",
             MethodName(config.methods[mi]).c_str(),
             tree == 0 ? "R-tree" : "DBCH-tree", c.rho.mean(),
             c.rho_counters.mean());
    }
  }
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace sapla

int main(int argc, char** argv) { return sapla::bench::Run(argc, argv); }
