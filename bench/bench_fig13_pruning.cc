// Regenerates Fig. 13 (a: pruning power rho, b: accuracy) — every method on
// the plain R-tree vs the DBCH-tree, across K in {4, 8, 16, 32, 64}.
//
// Expected shape (paper): adaptive methods (SAPLA/APLA/APCA) gain the most
// from the DBCH-tree (the APCA-MBR overlap problem hurts them on the
// R-tree); PLA and CHEBY, which use their own MBRs, look similar on both;
// PAALM's poor max deviation costs it accuracy on the DBCH-tree.

#include <cstdio>

#include "harness_common.h"
#include "search/knn.h"
#include "search/metrics.h"
#include "util/stats.h"
#include "util/table.h"

namespace sapla {
namespace bench {
namespace {

int Run(int argc, char** argv) {
  const HarnessConfig config = ParseFlags(argc, argv);
  const size_t m = config.budgets.front();

  struct Cell {
    SummaryStats rho;
    SummaryStats accuracy;
  };
  // [method][tree][k]
  std::vector<std::vector<std::vector<Cell>>> cells(
      config.methods.size(),
      std::vector<std::vector<Cell>>(2, std::vector<Cell>(config.ks.size())));

  for (size_t d = 0; d < config.num_datasets; ++d) {
    const Dataset ds = MakeDataset(config, d);
    std::vector<std::vector<double>> queries;
    for (const size_t qi : QueryIndices(config, d))
      queries.push_back(ds.series[qi].values);
    for (size_t mi = 0; mi < config.methods.size(); ++mi) {
      for (int tree = 0; tree < 2; ++tree) {
        SimilarityIndex index(config.methods[mi], m,
                              tree == 0 ? IndexKind::kRTree
                                        : IndexKind::kDbchTree);
        if (!index.Build(ds).ok()) continue;
        for (size_t ki = 0; ki < config.ks.size(); ++ki) {
          const size_t k = config.ks[ki];
          // Batch fan-out across the --threads pool; per-query results and
          // num_measured are identical to serial Knn calls.
          const std::vector<KnnResult> results = index.KnnBatch(queries, k);
          for (size_t q = 0; q < queries.size(); ++q) {
            const KnnResult truth = LinearScanKnn(ds, queries[q], k);
            cells[mi][tree][ki].rho.Add(PruningPower(results[q], ds.size()));
            cells[mi][tree][ki].accuracy.Add(Accuracy(results[q], truth, k));
          }
        }
      }
    }
    if ((d + 1) % 10 == 0)
      fprintf(stderr, "fig13: %zu/%zu datasets\n", d + 1, config.num_datasets);
  }

  for (int what = 0; what < 2; ++what) {
    Table t(what == 0
                ? "Fig. 13a: Pruning power rho (lower is better), M=" +
                      std::to_string(m)
                : "Fig. 13b: Accuracy (fraction of true k-NN found), M=" +
                      std::to_string(m));
    std::vector<std::string> header{"Method", "Tree"};
    for (const size_t k : config.ks) header.push_back("K=" + std::to_string(k));
    t.SetHeader(header);
    for (size_t mi = 0; mi < config.methods.size(); ++mi) {
      for (int tree = 0; tree < 2; ++tree) {
        std::vector<std::string> row{MethodName(config.methods[mi]),
                                     tree == 0 ? "R-tree" : "DBCH-tree"};
        for (size_t ki = 0; ki < config.ks.size(); ++ki) {
          const Cell& c = cells[mi][tree][ki];
          row.push_back(Table::Num(what == 0 ? c.rho.mean()
                                             : c.accuracy.mean(), 3));
        }
        t.AddRow(row);
      }
    }
    t.Print(config.CsvPath(what == 0 ? "fig13a_pruning_power"
                                     : "fig13b_accuracy"));
  }
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace sapla

int main(int argc, char** argv) { return sapla::bench::Run(argc, argv); }
