// Throughput/latency of the embedded query service vs one-request-per-call.
//
// Builds one index, then drives it with `--clients` closed-loop threads
// drawing queries zipfian-skewed from a fixed pool (so the result cache has
// something to hit). Three serving configurations are swept by default:
//
//   direct        every client calls SimilarityIndex::Knn itself — the
//                 baseline the service must beat
//   max_batch=1   the service with micro-batching disabled (pure queue +
//                 scheduler overhead, one request per KnnBatch call)
//   max_batch>=8  real micro-batching; each flush fans one KnnBatch out
//                 over the pool
//
// For each row the table reports sustained QPS, p50/p95/p99 total latency
// (admission -> response), mean flushed batch size, and the cache hit rate.
// `--json` (default BENCH_serve.json) emits the same table machine-readable
// so CI can track the serving perf trajectory across PRs, and
// `--metrics-json=FILE` dumps the last service configuration's full metrics
// snapshot (including the aggregated search counters) through the shared
// obs/metrics.h JSON writer.
//
// `--shards=1,2,4` appends a second sweep: the same workload against a
// ShardedIndex at each shard count (max_batch=8, answers bit-identical at
// every count by the merge contract), emitted to `--shard-json` (default
// BENCH_shard.json) so CI can track how partitioning moves the
// throughput/latency needle.
//
//   bench_serve_throughput [--series=2000] [--n=256] [--m=16] [--k=16]
//                          [--clients=8] [--requests=400] [--pool=64]
//                          [--zipf=0.99] [--batches=1,8,32] [--cache=512]
//                          [--method=SAPLA] [--tree=dbch] [--threads=0]
//                          [--shards=1,2,4] [--shard-json=BENCH_shard.json]
//                          [--csv=DIR] [--json=BENCH_serve.json]
//                          [--metrics-json=FILE]

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "search/knn.h"
#include "search/sharded_index.h"
#include "obs/metrics.h"
#include "serve/service.h"
#include "ts/synthetic_archive.h"
#include "util/histogram.h"
#include "util/parallel.h"
#include "util/rng.h"
#include "util/table.h"
#include "util/timer.h"

namespace sapla {
namespace {

struct Config {
  size_t series = 2000;
  size_t n = 256;
  size_t m = 16;           // reduction budget
  size_t k = 16;           // neighbors per query
  size_t clients = 8;      // closed-loop client threads
  size_t requests = 400;   // requests per client
  size_t pool = 64;        // distinct queries
  double zipf = 0.99;      // query popularity skew
  size_t cache = 512;      // result-cache capacity (entries)
  size_t threads = 0;      // batch fan-out (0 = hardware)
  std::vector<size_t> batches = {1, 8, 32};
  std::vector<size_t> shards;  // non-empty enables the shard sweep
  Method method = Method::kSapla;
  IndexKind kind = IndexKind::kDbchTree;
  std::string csv_dir;
  std::string json_path = "BENCH_serve.json";
  std::string shard_json_path = "BENCH_shard.json";
  std::string metrics_json_path;
};

[[noreturn]] void Usage(const char* argv0) {
  fprintf(stderr,
          "usage: %s [--series=S] [--n=N] [--m=M] [--k=K] [--clients=C]\n"
          "          [--requests=R] [--pool=P] [--zipf=Z] [--batches=1,8,32]\n"
          "          [--cache=E] [--method=SAPLA] [--tree=dbch|rtree]\n"
          "          [--threads=T] [--shards=1,2,4] [--shard-json=FILE]\n"
          "          [--csv=DIR] [--json=FILE] [--metrics-json=FILE]\n",
          argv0);
  exit(2);
}

Config ParseFlags(int argc, char** argv) {
  Config config;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const size_t eq = arg.find('=');
    if (arg.rfind("--", 0) != 0 || eq == std::string::npos) Usage(argv[0]);
    const std::string key = arg.substr(2, eq - 2);
    const std::string value = arg.substr(eq + 1);
    auto num = [&] { return std::strtoull(value.c_str(), nullptr, 10); };
    if (key == "series") {
      config.series = num();
    } else if (key == "n") {
      config.n = num();
    } else if (key == "m") {
      config.m = num();
    } else if (key == "k") {
      config.k = num();
    } else if (key == "clients") {
      config.clients = num();
    } else if (key == "requests") {
      config.requests = num();
    } else if (key == "pool") {
      config.pool = num();
    } else if (key == "zipf") {
      config.zipf = std::strtod(value.c_str(), nullptr);
    } else if (key == "cache") {
      config.cache = num();
    } else if (key == "threads") {
      config.threads = num();
    } else if (key == "batches" || key == "shards") {
      std::vector<size_t>& list =
          key == "batches" ? config.batches : config.shards;
      list.clear();
      size_t start = 0;
      while (start <= value.size()) {
        const size_t comma = value.find(',', start);
        const std::string tok = value.substr(
            start, comma == std::string::npos ? comma : comma - start);
        list.push_back(std::strtoull(tok.c_str(), nullptr, 10));
        if (comma == std::string::npos) break;
        start = comma + 1;
      }
    } else if (key == "method") {
      bool found = false;
      for (const Method m : AllMethods())
        if (MethodName(m) == value) {
          config.method = m;
          found = true;
        }
      if (!found) Usage(argv[0]);
    } else if (key == "tree") {
      if (value == "dbch") {
        config.kind = IndexKind::kDbchTree;
      } else if (value == "rtree") {
        config.kind = IndexKind::kRTree;
      } else {
        Usage(argv[0]);
      }
    } else if (key == "csv") {
      config.csv_dir = value;
    } else if (key == "json") {
      config.json_path = value;
    } else if (key == "shard-json") {
      config.shard_json_path = value;
    } else if (key == "metrics-json") {
      config.metrics_json_path = value;
    } else {
      Usage(argv[0]);
    }
  }
  return config;
}

/// The fixed query pool: dataset series perturbed with mild noise so no
/// query is a stored series but every repeat is byte-identical (cacheable).
std::vector<std::vector<double>> MakeQueryPool(const Dataset& ds,
                                               const Config& config) {
  Rng rng(0x5EEDF00D);
  std::vector<std::vector<double>> pool;
  pool.reserve(config.pool);
  for (size_t q = 0; q < config.pool; ++q) {
    std::vector<double> query = ds.series[rng.UniformInt(ds.size())].values;
    for (double& v : query) v += rng.Gaussian(0.0, 0.05);
    pool.push_back(std::move(query));
  }
  return pool;
}

struct RunStats {
  double wall_seconds = 0.0;
  HistogramSnapshot latency;  // total_us per request
  double mean_batch = 0.0;
  double cache_hit_rate = 0.0;
  uint64_t errors = 0;
  ServeMetricsSnapshot snapshot;  // full registry (service modes only)
};

/// Baseline: every client thread calls the index directly.
RunStats RunDirect(const SearchIndex& index,
                   const std::vector<std::vector<double>>& pool,
                   const Config& config) {
  const ZipfSampler zipf(pool.size(), config.zipf);
  Histogram latency;
  WallTimer wall;
  std::vector<std::thread> clients;
  for (size_t c = 0; c < config.clients; ++c) {
    clients.emplace_back([&, c] {
      Rng rng(0xC11E57 + c);
      for (size_t r = 0; r < config.requests; ++r) {
        WallTimer t;
        const KnnResult result = index.Knn(pool[zipf.Sample(rng)], config.k);
        (void)result;
        latency.Record(static_cast<uint64_t>(t.Seconds() * 1e6));
      }
    });
  }
  for (auto& t : clients) t.join();
  RunStats stats;
  stats.wall_seconds = wall.Seconds();
  stats.latency = SnapshotHistogram(latency);
  return stats;
}

/// The service under one max_batch setting, closed-loop clients.
RunStats RunService(const SearchIndex& index,
                    const std::vector<std::vector<double>>& pool,
                    const Config& config, size_t max_batch) {
  ServeOptions options;
  options.max_batch = max_batch;
  options.max_delay_us = 200;
  options.queue_capacity = config.clients * 4;
  options.cache_capacity = config.cache;
  options.num_threads = config.threads;
  QueryService service(index, options);

  const ZipfSampler zipf(pool.size(), config.zipf);
  std::atomic<uint64_t> errors{0};
  WallTimer wall;
  std::vector<std::thread> clients;
  for (size_t c = 0; c < config.clients; ++c) {
    clients.emplace_back([&, c] {
      Rng rng(0xC11E57 + c);  // same streams as the direct baseline
      for (size_t r = 0; r < config.requests; ++r) {
        const ServeResponse response =
            service.Knn(pool[zipf.Sample(rng)], config.k);
        if (!response.status.ok()) errors.fetch_add(1);
      }
    });
  }
  for (auto& t : clients) t.join();
  const double wall_seconds = wall.Seconds();
  service.Stop();

  const ServeMetricsSnapshot snap = service.MetricsSnapshot();
  RunStats stats;
  stats.wall_seconds = wall_seconds;
  stats.latency = snap.total_us;
  stats.mean_batch = snap.batch_size.mean;
  stats.cache_hit_rate = snap.CacheHitRate();
  stats.errors = errors.load();
  stats.snapshot = snap;
  return stats;
}

int Run(int argc, char** argv) {
  const Config config = ParseFlags(argc, argv);
  SetNumThreads(config.threads);

  SyntheticOptions opt;
  opt.length = config.n;
  opt.num_series = config.series;
  const Dataset ds = MakeSyntheticDataset(0, opt);
  const std::vector<std::vector<double>> pool = MakeQueryPool(ds, config);

  SimilarityIndex index(config.method, config.m, config.kind);
  if (Status s = index.Build(ds); !s.ok()) {
    fprintf(stderr, "build failed: %s\n", s.ToString().c_str());
    return 1;
  }

  const size_t total = config.clients * config.requests;
  Table t("Serve throughput: " + std::to_string(config.clients) +
          " closed-loop clients x " + std::to_string(config.requests) +
          " x " + std::to_string(config.k) + "-NN, " +
          std::to_string(ds.size()) + " series, pool " +
          std::to_string(config.pool) + ", zipf " +
          Table::Num(config.zipf, 3));
  t.SetHeader({"Mode", "QPS", "P50us", "P95us", "P99us", "MeanBatch",
               "CacheHitRate", "Errors"});

  auto add_row = [&](const std::string& mode, const RunStats& s) {
    t.AddRow({mode,
              Table::Num(s.wall_seconds > 0.0 ? total / s.wall_seconds : 0.0,
                         5),
              Table::Num(s.latency.p50, 5), Table::Num(s.latency.p95, 5),
              Table::Num(s.latency.p99, 5), Table::Num(s.mean_batch, 3),
              Table::Num(s.cache_hit_rate, 3), std::to_string(s.errors)});
  };

  add_row("direct", RunDirect(index, pool, config));
  RunStats last_service;
  for (const size_t max_batch : config.batches) {
    last_service = RunService(index, pool, config, max_batch);
    add_row("max_batch=" + std::to_string(max_batch), last_service);
  }

  t.Print(config.csv_dir.empty() ? ""
                                 : config.csv_dir + "/serve_throughput.csv");
  if (!config.json_path.empty() && !t.WriteJson(config.json_path)) {
    fprintf(stderr, "could not write %s\n", config.json_path.c_str());
    return 1;
  }
  if (!config.metrics_json_path.empty() && !config.batches.empty() &&
      !WriteMetricsJson(last_service.snapshot, config.metrics_json_path)) {
    fprintf(stderr, "could not write %s\n", config.metrics_json_path.c_str());
    return 1;
  }

  if (!config.shards.empty()) {
    Table st("Shard sweep: same workload, ShardedIndex at max_batch=8");
    st.SetHeader({"Shards", "QPS", "P50us", "P95us", "P99us", "MeanBatch",
                  "CacheHitRate", "Errors"});
    for (const size_t count : config.shards) {
      ShardedIndex::Options shard_opt;
      shard_opt.num_shards = count;
      ShardedIndex sharded(config.method, config.m, config.kind, shard_opt);
      if (Status s = sharded.Build(ds); !s.ok()) {
        fprintf(stderr, "sharded build (%zu) failed: %s\n", count,
                s.ToString().c_str());
        return 1;
      }
      const RunStats s = RunService(sharded, pool, config, /*max_batch=*/8);
      st.AddRow({std::to_string(sharded.num_shards()),
                 Table::Num(s.wall_seconds > 0.0 ? total / s.wall_seconds
                                                 : 0.0,
                            5),
                 Table::Num(s.latency.p50, 5), Table::Num(s.latency.p95, 5),
                 Table::Num(s.latency.p99, 5), Table::Num(s.mean_batch, 3),
                 Table::Num(s.cache_hit_rate, 3), std::to_string(s.errors)});
    }
    st.Print(config.csv_dir.empty() ? ""
                                    : config.csv_dir + "/serve_shards.csv");
    if (!config.shard_json_path.empty() &&
        !st.WriteJson(config.shard_json_path)) {
      fprintf(stderr, "could not write %s\n", config.shard_json_path.c_str());
      return 1;
    }
  }
  return 0;
}

}  // namespace
}  // namespace sapla

int main(int argc, char** argv) { return sapla::Run(argc, argv); }
