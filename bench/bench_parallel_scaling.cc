// Serial-vs-parallel scaling of the batch build/query engine.
//
// One synthetic dataset (default 2000 series, n=256), batch k-NN over a
// query set at 1/2/4/8 threads for each method x backend. Before any
// timing is reported the bench verifies that every thread count returns
// the same neighbor sets and the same aggregate num_measured as the serial
// run — the batch layer must be a pure wall-clock optimization. Wall-clock
// speedup tracks the core count of the machine (a single-core container
// reports ~1x; four real cores report ~4x on the embarrassingly parallel
// query fan-out).
//
//   bench_parallel_scaling [--series=2000] [--n=256] [--queries=64]
//                          [--methods=SAPLA,PAA] [--csv=DIR]

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "harness_common.h"
#include "search/knn.h"
#include "util/parallel.h"
#include "util/table.h"
#include "util/timer.h"

namespace sapla {
namespace bench {
namespace {

constexpr size_t kThreadCounts[] = {1, 2, 4, 8};

bool SameResults(const std::vector<KnnResult>& a,
                 const std::vector<KnnResult>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].neighbors != b[i].neighbors) return false;
    if (a[i].num_measured != b[i].num_measured) return false;
  }
  return true;
}

size_t TotalMeasured(const std::vector<KnnResult>& results) {
  size_t total = 0;
  for (const KnnResult& r : results) total += r.num_measured;
  return total;
}

int Run(int argc, char** argv) {
  HarnessConfig base;
  base.num_series = 2000;
  base.n = 256;
  base.num_datasets = 1;
  base.num_queries = 64;
  base.methods = {Method::kSapla, Method::kPaa};
  const HarnessConfig config = ParseFlags(argc, argv, base);
  const size_t m = config.budgets.front();
  const size_t k = config.ks.size() >= 3 ? config.ks[2] : config.ks.back();

  const Dataset ds = MakeDataset(config, 0);
  std::vector<std::vector<double>> queries;
  for (const size_t qi : QueryIndices(config, 0))
    queries.push_back(ds.series[qi].values);

  Table t("Parallel scaling: batch " + std::to_string(k) +
          "-NN wall seconds over " + std::to_string(queries.size()) +
          " queries, " + std::to_string(ds.size()) + " series, M=" +
          std::to_string(m));
  t.SetHeader({"Method", "Tree", "Threads", "BuildReduceWall", "KnnBatchWall",
               "Speedup", "Measured", "Identical"});

  for (const Method method : config.methods) {
    for (const IndexKind kind : {IndexKind::kRTree, IndexKind::kDbchTree}) {
      std::vector<KnnResult> serial;
      double serial_wall = 0.0;
      for (const size_t threads : kThreadCounts) {
        SetNumThreads(threads);
        SimilarityIndex index(method, m, kind);
        BuildInfo info;
        if (!index.Build(ds, &info).ok()) {
          fprintf(stderr, "%s build failed\n", MethodName(method).c_str());
          return 1;
        }
        WallTimer timer;
        const std::vector<KnnResult> results =
            index.KnnBatch(queries, k, threads);
        const double wall = timer.Seconds();

        bool identical = true;
        if (threads == 1) {
          serial = results;
          serial_wall = wall;
        } else {
          identical = SameResults(serial, results);
        }
        t.AddRow({MethodName(method),
                  kind == IndexKind::kRTree ? "R-tree" : "DBCH-tree",
                  std::to_string(threads), Table::Num(info.reduce_wall_seconds, 3),
                  Table::Num(wall, 3),
                  Table::Num(wall > 0.0 ? serial_wall / wall : 0.0, 2),
                  std::to_string(TotalMeasured(results)),
                  identical ? "yes" : "NO"});
        if (!identical) {
          fprintf(stderr,
                  "FATAL: %s/%s at %zu threads diverged from the serial "
                  "results\n",
                  MethodName(method).c_str(),
                  kind == IndexKind::kRTree ? "rtree" : "dbch", threads);
          return 1;
        }
      }
    }
  }
  SetNumThreads(config.threads);
  t.Print(config.CsvPath("parallel_scaling"));
  if (!config.json_path.empty() && !t.WriteJson(config.json_path)) {
    fprintf(stderr, "could not write %s\n", config.json_path.c_str());
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace sapla

int main(int argc, char** argv) { return sapla::bench::Run(argc, argv); }
