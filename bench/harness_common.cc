#include "harness_common.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <utility>

#include "util/parallel.h"
#include "util/rng.h"

namespace sapla {
namespace bench {
namespace {

std::vector<std::string> SplitCsv(const std::string& s) {
  std::vector<std::string> out;
  size_t start = 0;
  while (start <= s.size()) {
    const size_t comma = s.find(',', start);
    if (comma == std::string::npos) {
      out.push_back(s.substr(start));
      break;
    }
    out.push_back(s.substr(start, comma - start));
    start = comma + 1;
  }
  return out;
}

std::vector<size_t> ParseSizeList(const std::string& s) {
  std::vector<size_t> out;
  for (const std::string& tok : SplitCsv(s))
    out.push_back(static_cast<size_t>(std::strtoull(tok.c_str(), nullptr, 10)));
  return out;
}

[[noreturn]] void Usage(const char* argv0) {
  fprintf(stderr,
          "usage: %s [--n=N] [--series=S] [--datasets=D] [--queries=Q]\n"
          "          [--methods=SAPLA,APLA,...] [--budgets=12,18,24]\n"
          "          [--ks=4,8,16,32,64] [--threads=T] [--csv=DIR]\n"
          "          [--json=FILE]\n",
          argv0);
  exit(2);
}

}  // namespace

Method MethodFromName(const std::string& name) {
  for (const Method m : AllMethods())
    if (MethodName(m) == name) return m;
  fprintf(stderr, "unknown method '%s'\n", name.c_str());
  exit(2);
}

std::string HarnessConfig::CsvPath(const std::string& table_name) const {
  if (csv_dir.empty()) return "";
  return csv_dir + "/" + table_name + ".csv";
}

HarnessConfig ParseFlags(int argc, char** argv, HarnessConfig base) {
  HarnessConfig config = std::move(base);
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const size_t eq = arg.find('=');
    if (arg.rfind("--", 0) != 0 || eq == std::string::npos) Usage(argv[0]);
    const std::string key = arg.substr(2, eq - 2);
    const std::string value = arg.substr(eq + 1);
    if (key == "n") {
      config.n = std::strtoull(value.c_str(), nullptr, 10);
    } else if (key == "series") {
      config.num_series = std::strtoull(value.c_str(), nullptr, 10);
    } else if (key == "datasets") {
      config.num_datasets = std::strtoull(value.c_str(), nullptr, 10);
    } else if (key == "queries") {
      config.num_queries = std::strtoull(value.c_str(), nullptr, 10);
    } else if (key == "budgets") {
      config.budgets = ParseSizeList(value);
    } else if (key == "ks") {
      config.ks = ParseSizeList(value);
    } else if (key == "methods") {
      config.methods.clear();
      for (const std::string& name : SplitCsv(value))
        config.methods.push_back(MethodFromName(name));
    } else if (key == "threads") {
      config.threads = std::strtoull(value.c_str(), nullptr, 10);
    } else if (key == "csv") {
      config.csv_dir = value;
    } else if (key == "json") {
      config.json_path = value;
    } else if (key == "per-dataset") {
      config.per_dataset = value != "0";
    } else {
      Usage(argv[0]);
    }
  }
  SetNumThreads(config.threads);  // 0 = hardware concurrency
  return config;
}

Dataset MakeDataset(const HarnessConfig& config, size_t id) {
  SyntheticOptions opt;
  opt.length = config.n;
  opt.num_series = config.num_series;
  return MakeSyntheticDataset(id, opt);
}

std::vector<size_t> QueryIndices(const HarnessConfig& config,
                                 size_t dataset_id) {
  Rng rng(0xBEEF ^ (dataset_id * 0x2545F4914F6CDD1DULL));
  return rng.SampleWithoutReplacement(
      config.num_series, std::min(config.num_queries, config.num_series));
}

}  // namespace bench
}  // namespace sapla
