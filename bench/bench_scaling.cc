// Microbenchmarks for the paper's headline claim: SAPLA's reduction is
// ~n times faster than APLA's O(Nn^2) dynamic program, and in the same
// league as the O(n)/O(n log n) baselines.
//
// Run with --benchmark_filter=... to narrow; the n sweep (64..1024) shows
// SAPLA growing near-linearly while APLA grows ~quadratically.

#include <benchmark/benchmark.h>

#include "core/sapla.h"
#include "distance/distance.h"
#include "distance/mindist.h"
#include "reduction/representation.h"
#include "ts/synthetic_archive.h"

namespace sapla {
namespace {

std::vector<double> BenchSeries(size_t n) {
  SyntheticOptions opt;
  opt.length = n;
  opt.num_series = 1;
  return MakeSyntheticDataset(0, opt).series[0].values;
}

constexpr size_t kBudget = 24;  // M = 24 -> N = 8 for SAPLA/APLA

void BM_Sapla(benchmark::State& state) {
  const std::vector<double> v = BenchSeries(static_cast<size_t>(state.range(0)));
  const SaplaReducer reducer;
  for (auto _ : state)
    benchmark::DoNotOptimize(reducer.Reduce(v, kBudget));
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_Sapla)->RangeMultiplier(2)->Range(64, 1024)->Complexity();

void BM_Apla(benchmark::State& state) {
  const std::vector<double> v = BenchSeries(static_cast<size_t>(state.range(0)));
  const auto reducer = MakeReducer(Method::kApla);
  for (auto _ : state)
    benchmark::DoNotOptimize(reducer->Reduce(v, kBudget));
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_Apla)->RangeMultiplier(2)->Range(64, 1024)->Complexity();

void BM_Baseline(benchmark::State& state, Method method) {
  const std::vector<double> v = BenchSeries(256);
  const auto reducer = MakeReducer(method);
  for (auto _ : state)
    benchmark::DoNotOptimize(reducer->Reduce(v, kBudget));
}
BENCHMARK_CAPTURE(BM_Baseline, APCA, Method::kApca);
BENCHMARK_CAPTURE(BM_Baseline, PLA, Method::kPla);
BENCHMARK_CAPTURE(BM_Baseline, PAA, Method::kPaa);
BENCHMARK_CAPTURE(BM_Baseline, PAALM, Method::kPaalm);
BENCHMARK_CAPTURE(BM_Baseline, CHEBY, Method::kCheby);
BENCHMARK_CAPTURE(BM_Baseline, SAX, Method::kSax);

void BM_DistPar(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  SyntheticOptions opt;
  opt.length = n;
  opt.num_series = 2;
  const Dataset ds = MakeSyntheticDataset(2, opt);
  const SaplaReducer reducer;
  const Representation a = reducer.Reduce(ds.series[0].values, kBudget);
  const Representation b = reducer.Reduce(ds.series[1].values, kBudget);
  for (auto _ : state) benchmark::DoNotOptimize(DistPar(a, b));
}
BENCHMARK(BM_DistPar)->RangeMultiplier(4)->Range(64, 1024);

void BM_DistAe(benchmark::State& state) {
  // The O(n) competitor Dist_PAR avoids.
  const size_t n = static_cast<size_t>(state.range(0));
  SyntheticOptions opt;
  opt.length = n;
  opt.num_series = 2;
  const Dataset ds = MakeSyntheticDataset(2, opt);
  const SaplaReducer reducer;
  const Representation b = reducer.Reduce(ds.series[1].values, kBudget);
  const std::vector<double>& q = ds.series[0].values;
  for (auto _ : state) benchmark::DoNotOptimize(DistAe(q, b));
}
BENCHMARK(BM_DistAe)->RangeMultiplier(4)->Range(64, 1024);

void BM_SaplaPhases(benchmark::State& state) {
  // Phase cost split: initialization only vs full pipeline.
  const std::vector<double> v = BenchSeries(512);
  const SaplaReducer reducer;
  const bool init_only = state.range(0) == 0;
  for (auto _ : state) {
    if (init_only)
      benchmark::DoNotOptimize(reducer.InitializeOnly(v, 8));
    else
      benchmark::DoNotOptimize(reducer.ReduceToSegments(v, 8));
  }
}
BENCHMARK(BM_SaplaPhases)->Arg(0)->Arg(1);

}  // namespace
}  // namespace sapla

BENCHMARK_MAIN();
