// Regenerates the paper's worked example (Figs. 1, 5, 6, 8): the 20-point
// series reduced to M = 12 coefficients by SAPLA, APLA, APCA and PLA, with
// SAPLA's phase-by-phase progression.
//
// Paper values: SAPLA 9.27273 (after init -> split&merge 10.6061 ->
// movement 9.27273), APCA 18.4167, PLA 19.3999 — all at M = 12.

#include <cstdio>
#include <vector>

#include "core/sapla.h"
#include "reduction/apca.h"
#include "reduction/apla.h"
#include "reduction/pla.h"
#include "util/table.h"

namespace sapla {
namespace {

int Run() {
  const std::vector<double> series{7,  8, 20, 15, 18, 8, 8, 15, 10, 1,
                                   4,  3, 3,  5,  4,  9, 2, 9,  10, 10};
  const size_t m = 12;

  Table phases("SAPLA phase progression on the Fig. 1 series (M = 12)");
  phases.SetHeader({"Phase", "Segments", "SumMaxDev", "Paper"});
  {
    const Representation init = SaplaReducer().InitializeOnly(series, 4);
    phases.AddRow({"1 Initialization (Fig. 5)",
                   std::to_string(init.segments.size()),
                   Table::Num(init.SumMaxDeviation(series), 6), "-"});
    SaplaOptions no_move;
    no_move.endpoint_movement = false;
    const Representation sm = SaplaReducer(no_move).Reduce(series, m);
    phases.AddRow({"2 Split & merge (Fig. 6)",
                   std::to_string(sm.segments.size()),
                   Table::Num(sm.SumMaxDeviation(series), 6), "10.6061"});
    const Representation full = SaplaReducer().Reduce(series, m);
    phases.AddRow({"3 Endpoint movement (Fig. 8)",
                   std::to_string(full.segments.size()),
                   Table::Num(full.SumMaxDeviation(series), 6), "9.27273"});
  }
  phases.Print();

  Table cmp("Fig. 1: method comparison at M = 12");
  cmp.SetHeader({"Method", "Segments", "SumMaxDev", "Paper"});
  const Representation sapla = SaplaReducer().Reduce(series, m);
  const Representation apla = AplaReducer().Reduce(series, m);
  const Representation apca = ApcaReducer().Reduce(series, m);
  const Representation pla = PlaReducer().Reduce(series, m);
  cmp.AddRow({"SAPLA", std::to_string(sapla.segments.size()),
              Table::Num(sapla.SumMaxDeviation(series), 6), "9.27273"});
  cmp.AddRow({"APLA", std::to_string(apla.segments.size()),
              Table::Num(apla.SumMaxDeviation(series), 6), "-"});
  cmp.AddRow({"APCA", std::to_string(apca.segments.size()),
              Table::Num(apca.SumMaxDeviation(series), 6), "18.4167"});
  cmp.AddRow({"PLA", std::to_string(pla.segments.size()),
              Table::Num(pla.SumMaxDeviation(series), 6), "19.3999"});
  cmp.Print();

  // The Fig. 5 representation, segment by segment.
  Table init_table("Fig. 5: initialized representation <a, b, r>");
  init_table.SetHeader({"Segment", "a", "b", "r"});
  const Representation init = SaplaReducer().InitializeOnly(series, 4);
  for (size_t i = 0; i < init.segments.size(); ++i) {
    init_table.AddRow({std::to_string(i), Table::Num(init.segments[i].a, 6),
                       Table::Num(init.segments[i].b, 6),
                       std::to_string(init.segments[i].r)});
  }
  init_table.Print();
  return 0;
}

}  // namespace
}  // namespace sapla

int main() { return sapla::Run(); }
