// Distance-measure tightness study (paper §5.1, Fig. 10 and Appendix
// A.5/A.6): for adaptive-length representations, how tight are Dist_LB,
// Dist_PAR and Dist_AE relative to the true Euclidean distance, and how
// often does each violate the lower bound?
//
// Expected shape (paper): Dist_LB < Dist_PAR < Dist <~ Dist_AE on average;
// Dist_LB never violates (rigorous projection bound), Dist_PAR is far
// tighter and violates rarely/mildly, Dist_AE trades guarantees for
// near-exactness.

#include <cstdio>

#include "core/sapla.h"
#include "distance/distance.h"
#include "harness_common.h"
#include "reduction/apca.h"
#include "ts/time_series.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/table.h"

namespace sapla {
namespace bench {
namespace {

struct MeasureStats {
  SummaryStats ratio;       // measure / euclid
  size_t violations = 0;    // measure > euclid (beyond fp tolerance)
  SummaryStats violation_excess;  // relative excess when violating
  size_t pairs = 0;
};

int Run(int argc, char** argv) {
  const HarnessConfig config = ParseFlags(argc, argv);
  const size_t m = config.budgets.front();

  MeasureStats lb, par, ae;
  const SaplaReducer reducer;
  Rng rng(2022);

  for (size_t d = 0; d < config.num_datasets; ++d) {
    const Dataset ds = MakeDataset(config, d);
    // Sample random pairs within the dataset.
    for (size_t trial = 0; trial < 20; ++trial) {
      const size_t i = rng.UniformInt(ds.size());
      size_t j = rng.UniformInt(ds.size());
      if (i == j) j = (j + 1) % ds.size();
      const std::vector<double>& q = ds.series[i].values;
      const std::vector<double>& c = ds.series[j].values;
      const double euclid = EuclideanDistance(q, c);
      if (euclid < 1e-9) continue;

      const Representation qr = reducer.Reduce(q, m);
      const Representation cr = reducer.Reduce(c, m);
      PrefixFitter qf(q);

      const double v_lb = DistLb(qf, cr);
      const double v_par = DistPar(qr, cr);
      const double v_ae = DistAe(q, cr);
      auto record = [&](MeasureStats* s, double v) {
        s->ratio.Add(v / euclid);
        ++s->pairs;
        if (v > euclid * (1.0 + 1e-9)) {
          ++s->violations;
          s->violation_excess.Add(v / euclid - 1.0);
        }
      };
      record(&lb, v_lb);
      record(&par, v_par);
      record(&ae, v_ae);
    }
  }

  Table t("Distance tightness vs Euclidean (SAPLA M=" + std::to_string(m) +
          ", " + std::to_string(lb.pairs) + " random pairs)");
  t.SetHeader({"Measure", "MeanRatio", "MaxRatio", "Violations",
               "ViolationRate", "MeanExcessWhenViolating"});
  auto row = [&](const char* name, const MeasureStats& s) {
    t.AddRow({name, Table::Num(s.ratio.mean(), 4),
              Table::Num(s.ratio.max(), 4), std::to_string(s.violations),
              Table::Num(static_cast<double>(s.violations) /
                         static_cast<double>(s.pairs), 4),
              s.violations ? Table::Num(s.violation_excess.mean(), 4) : "-"});
  };
  row("Dist_LB", lb);
  row("Dist_PAR", par);
  row("Dist_AE", ae);
  t.Print(config.CsvPath("tightness"));

  printf("lower-bounding lemma: ratio <= 1 required for no false "
         "dismissals;\ntightness: ratio closer to 1 prunes more.\n");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace sapla

int main(int argc, char** argv) { return sapla::bench::Run(argc, argv); }
