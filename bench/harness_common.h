#ifndef SAPLA_BENCH_HARNESS_COMMON_H_
#define SAPLA_BENCH_HARNESS_COMMON_H_

// Shared configuration for the figure-regeneration harnesses.
//
// Each bench/bench_fig*.cc binary regenerates one of the paper's figures as
// an ASCII table (plus optional CSV). The paper's full configuration is
// n = 1024, 100 series, 117 datasets, 5 queries; the defaults here are
// scaled (n = 128, 100 series, 117 datasets, 3 queries) so the whole suite —
// including APLA's O(Nn^2) ingest — finishes in minutes on one core. Every
// knob has a flag:
//
//   --n=1024 --series=100 --datasets=117 --queries=5
//   --methods=SAPLA,APLA,APCA --budgets=12,18,24 --ks=4,8,16,32,64
//   --threads=4      (thread pool size for build/batch queries; 1 = serial,
//                     0 = hardware concurrency)
//   --csv=/tmp/out   (write one CSV per table into this directory)
//   --json=out.json  (write the harness' main table as one JSON document,
//                     the machine-readable format CI tracks across PRs)

#include <string>
#include <vector>

#include "reduction/representation.h"
#include "ts/synthetic_archive.h"

namespace sapla {
namespace bench {

struct HarnessConfig {
  size_t n = 128;
  size_t num_series = 100;
  size_t num_datasets = 117;
  size_t num_queries = 3;
  std::vector<size_t> budgets = {12, 18, 24};
  std::vector<size_t> ks = {4, 8, 16, 32, 64};
  std::vector<Method> methods = AllMethods();
  /// Thread count for index build + batch queries (0 = hardware). The
  /// default 1 keeps the paper's single-core CPU-time methodology.
  size_t threads = 1;
  std::string csv_dir;
  /// When non-empty, the harness writes its main table via Table::WriteJson
  /// to this path (machine-readable benchmark tracking).
  std::string json_path;
  /// Also emit per-dataset rows (the paper's technical-report detail);
  /// needs --csv since the output is large.
  bool per_dataset = false;

  /// CSV path for a table name, or "" when --csv is unset.
  std::string CsvPath(const std::string& table_name) const;
};

/// Parses --key=value flags over `base` defaults (unknown flags abort with
/// usage) and applies the thread count via SetNumThreads.
HarnessConfig ParseFlags(int argc, char** argv, HarnessConfig base = {});

/// Generates dataset `id` under the config's shape.
Dataset MakeDataset(const HarnessConfig& config, size_t id);

/// Query indices for one dataset (deterministic per dataset id).
std::vector<size_t> QueryIndices(const HarnessConfig& config, size_t dataset_id);

/// "SAPLA" -> Method; aborts on unknown names.
Method MethodFromName(const std::string& name);

}  // namespace bench
}  // namespace sapla

#endif  // SAPLA_BENCH_HARNESS_COMMON_H_
