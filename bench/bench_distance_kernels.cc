// Distance-kernel throughput: per-pair legacy kernels (Representation
// arguments, allocating UnionEndpoints + PartitionAt vectors per call)
// against the columnar view/batched kernels (distance/kernels.h, reusing
// one merged-endpoint scratch across the batch) for Dist_PAR and the
// Dist_LB filter, across representation budgets M in {12, 24, 48}.
//
// This is the benchmark behind the columnar refactor's performance claim:
// the batched kernel must clear >= 1.5x the per-pair baseline at M = 24.
// Values are bit-identical between all variants (the bench asserts it), so
// the speedup is pure allocation/locality, not a different computation.
//
//   --n=256 --series=100 --datasets=4 --budgets=12,24,48
//   --json=BENCH_distance.json   (default; Table::WriteJson format)

#include <cstdio>
#include <vector>

#include "distance/distance.h"
#include "distance/kernels.h"
#include "distance/mindist.h"
#include "geom/line_fit.h"
#include "harness_common.h"
#include "reduction/representation.h"
#include "reduction/representation_store.h"
#include "util/table.h"
#include "util/timer.h"

namespace sapla {
namespace bench {
namespace {

struct KernelResult {
  double per_pair_mps = 0.0;  // million pairs/sec, legacy per-pair kernel
  double view_mps = 0.0;      // view kernel, per-pair with shared scratch
  double batched_mps = 0.0;   // batched kernel over the store
};

// Runs `body(round)` until the wall clock shows at least `min_seconds`,
// returning million-evals/sec (body must evaluate `evals_per_round` pairs).
template <typename Body>
double MeasureMps(size_t evals_per_round, double min_seconds, Body body) {
  // Warm-up round (first call grows the scratch buffers).
  body();
  WallTimer timer;
  size_t rounds = 0;
  do {
    body();
    ++rounds;
  } while (timer.Seconds() < min_seconds);
  return static_cast<double>(rounds * evals_per_round) / timer.Seconds() / 1e6;
}

int Run(int argc, char** argv) {
  HarnessConfig base;
  base.n = 256;
  base.num_datasets = 4;
  base.budgets = {12, 24, 48};
  base.json_path = "BENCH_distance.json";
  const HarnessConfig config = ParseFlags(argc, argv, base);
  constexpr double kMinSeconds = 0.15;

  Table t("Distance kernels: per-pair vs columnar batched (n=" +
          std::to_string(config.n) + ", " +
          std::to_string(config.num_datasets) + " datasets x " +
          std::to_string(config.num_series) + " series)");
  t.SetHeader({"Kernel", "M", "PerPairM/s", "ViewM/s", "BatchedM/s",
               "BatchedSpeedup"});

  for (const size_t m : config.budgets) {
    // One corpus per budget: every dataset's series, reduced with SAPLA
    // (the adaptive-length method whose Dist_PAR has real merge work).
    std::vector<std::vector<double>> raw;
    for (size_t d = 0; d < config.num_datasets; ++d) {
      const Dataset ds = MakeDataset(config, d);
      for (const TimeSeries& ts : ds.series) raw.push_back(ts.values);
    }
    const auto reducer = MakeReducer(Method::kSapla);
    std::vector<Representation> reps;
    RepresentationStore store;
    for (const std::vector<double>& values : raw) {
      reps.push_back(reducer->Reduce(values, m));
      store.Append(reps.back());
    }
    const size_t count = reps.size();
    const Representation& query = reps[0];
    const RepView query_view = store.view(0);
    const PrefixFitter fitter(raw[0]);

    // Parity check before timing: all variants must agree bit-for-bit.
    {
      DistanceScratch scratch;
      std::vector<double> batch(count);
      LowerBoundDistanceBatch(query_view, store, nullptr, count, batch.data(),
                              &scratch);
      for (size_t i = 0; i < count; ++i) {
        if (batch[i] != DistPar(query, reps[i])) {
          fprintf(stderr, "FATAL: batched Dist_PAR diverges at id %zu\n", i);
          return 1;
        }
      }
    }

    KernelResult par;
    {
      double sink = 0.0;
      par.per_pair_mps = MeasureMps(count, kMinSeconds, [&] {
        for (size_t i = 0; i < count; ++i) sink += DistPar(query, reps[i]);
      });
      DistanceScratch scratch;
      par.view_mps = MeasureMps(count, kMinSeconds, [&] {
        for (size_t i = 0; i < count; ++i)
          sink += DistParView(query_view, store.view(i), &scratch);
      });
      std::vector<double> out(count);
      par.batched_mps = MeasureMps(count, kMinSeconds, [&] {
        LowerBoundDistanceBatch(query_view, store, nullptr, count, out.data(),
                                &scratch);
      });
      if (sink == 42.0) printf(" ");  // defeat dead-code elimination
    }

    KernelResult lb;
    {
      double sink = 0.0;
      lb.per_pair_mps = MeasureMps(count, kMinSeconds, [&] {
        for (size_t i = 0; i < count; ++i)
          sink += FilterDistance(fitter, query, reps[i]);
      });
      DistanceScratch scratch;
      lb.view_mps = MeasureMps(count, kMinSeconds, [&] {
        for (size_t i = 0; i < count; ++i)
          sink += FilterDistanceView(fitter, query_view, store.view(i),
                                     &scratch);
      });
      std::vector<double> out(count);
      lb.batched_mps = MeasureMps(count, kMinSeconds, [&] {
        FilterDistanceBatch(fitter, query_view, store, nullptr, count,
                            out.data(), &scratch);
      });
      if (sink == 42.0) printf(" ");
    }

    auto add = [&](const char* kernel, const KernelResult& r) {
      // The speedup stays numeric (no "x" suffix): benchdiff keys row
      // identity on string cells, and a run-dependent label would make
      // every row unique.
      t.AddRow({kernel, std::to_string(m), Table::Num(r.per_pair_mps, 3),
                Table::Num(r.view_mps, 3), Table::Num(r.batched_mps, 3),
                Table::Num(r.batched_mps / r.per_pair_mps, 2)});
    };
    add("Dist_PAR", par);
    add("Dist_LB", lb);
  }

  if (!t.Print(config.CsvPath("distance_kernels"))) return 1;
  if (!config.json_path.empty() && !t.WriteJson(config.json_path)) return 1;
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace sapla

int main(int argc, char** argv) { return sapla::bench::Run(argc, argv); }
