// Query latency under sustained ingest vs a quiescent controller.
//
// Builds one IngestController preloaded with the synthetic dataset, then
// for each mutation rate in `--rates` (mutations/second; 0 = the no-ingest
// baseline) runs `--clients` closed-loop query threads against a FRESH
// preloaded controller while one paced writer thread inserts
// noise-perturbed series (a `--delete-frac` fraction of mutations delete a
// random live id instead). Every row reports sustained query QPS,
// p50/p95/p99 latency, how many mutations the writer landed, and the
// visible corpus size at the end of the row.
//
// The last line prints the p99 ratio of every non-zero rate against the
// rate-0 baseline: the epoch-pinning design promises readers never block
// on writers, so the ratio staying small (the CI tracking target is < 2x)
// is the headline number. `--json` (default BENCH_ingest.json) emits the
// table machine-readable so CI archives the trajectory across PRs.
//
//   bench_ingest_vs_query [--series=2000] [--n=256] [--m=16] [--k=16]
//                         [--clients=8] [--requests=400] [--pool=64]
//                         [--zipf=0.99] [--rates=0,500,2000]
//                         [--delete-frac=0.2] [--method=SAPLA]
//                         [--tree=dbch|rtree] [--shards=2]
//                         [--csv=DIR] [--json=BENCH_ingest.json]

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "ingest/ingest_controller.h"
#include "search/knn.h"
#include "ts/synthetic_archive.h"
#include "util/histogram.h"
#include "util/rng.h"
#include "util/table.h"
#include "util/timer.h"

namespace sapla {
namespace {

struct Config {
  size_t series = 2000;
  size_t n = 256;
  size_t m = 16;
  size_t k = 16;
  size_t clients = 8;
  size_t requests = 400;  // per client
  size_t pool = 64;
  double zipf = 0.99;
  std::vector<double> rates = {0.0, 500.0, 2000.0};  // mutations/second
  double delete_frac = 0.2;
  size_t shards = 2;
  Method method = Method::kSapla;
  IndexKind kind = IndexKind::kDbchTree;
  std::string csv_dir;
  std::string json_path = "BENCH_ingest.json";
};

[[noreturn]] void Usage(const char* argv0) {
  fprintf(stderr,
          "usage: %s [--series=S] [--n=N] [--m=M] [--k=K] [--clients=C]\n"
          "          [--requests=R] [--pool=P] [--zipf=Z]\n"
          "          [--rates=0,500,2000] [--delete-frac=F] [--shards=N]\n"
          "          [--method=SAPLA] [--tree=dbch|rtree]\n"
          "          [--csv=DIR] [--json=FILE]\n",
          argv0);
  exit(2);
}

Config ParseFlags(int argc, char** argv) {
  Config config;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const size_t eq = arg.find('=');
    if (arg.rfind("--", 0) != 0 || eq == std::string::npos) Usage(argv[0]);
    const std::string key = arg.substr(2, eq - 2);
    const std::string value = arg.substr(eq + 1);
    auto num = [&] { return std::strtoull(value.c_str(), nullptr, 10); };
    if (key == "series") {
      config.series = num();
    } else if (key == "n") {
      config.n = num();
    } else if (key == "m") {
      config.m = num();
    } else if (key == "k") {
      config.k = num();
    } else if (key == "clients") {
      config.clients = num();
    } else if (key == "requests") {
      config.requests = num();
    } else if (key == "pool") {
      config.pool = num();
    } else if (key == "zipf") {
      config.zipf = std::strtod(value.c_str(), nullptr);
    } else if (key == "rates") {
      config.rates.clear();
      size_t start = 0;
      while (start <= value.size()) {
        const size_t comma = value.find(',', start);
        const std::string tok = value.substr(
            start, comma == std::string::npos ? comma : comma - start);
        config.rates.push_back(std::strtod(tok.c_str(), nullptr));
        if (comma == std::string::npos) break;
        start = comma + 1;
      }
    } else if (key == "delete-frac") {
      config.delete_frac = std::strtod(value.c_str(), nullptr);
    } else if (key == "shards") {
      config.shards = num();
    } else if (key == "method") {
      bool found = false;
      for (const Method m : AllMethods())
        if (MethodName(m) == value) {
          config.method = m;
          found = true;
        }
      if (!found) Usage(argv[0]);
    } else if (key == "tree") {
      if (value == "dbch") {
        config.kind = IndexKind::kDbchTree;
      } else if (value == "rtree") {
        config.kind = IndexKind::kRTree;
      } else {
        Usage(argv[0]);
      }
    } else if (key == "csv") {
      config.csv_dir = value;
    } else if (key == "json") {
      config.json_path = value;
    } else {
      Usage(argv[0]);
    }
  }
  if (config.delete_frac < 0.0 || config.delete_frac > 1.0) {
    fprintf(stderr, "--delete-frac must be in [0, 1]\n");
    exit(2);
  }
  return config;
}

std::vector<std::vector<double>> MakeQueryPool(const Dataset& ds,
                                               const Config& config) {
  Rng rng(0x5EEDF00D);
  std::vector<std::vector<double>> pool;
  pool.reserve(config.pool);
  for (size_t q = 0; q < config.pool; ++q) {
    std::vector<double> query = ds.series[rng.UniformInt(ds.size())].values;
    for (double& v : query) v += rng.Gaussian(0.0, 0.05);
    pool.push_back(std::move(query));
  }
  return pool;
}

struct RowStats {
  double wall_seconds = 0.0;
  HistogramSnapshot latency;  // per-query microseconds
  uint64_t mutations = 0;     // writer-acked inserts + deletes
  uint64_t visible = 0;       // corpus size when the row ended
};

/// One rate point: fresh preloaded controller, closed-loop query clients,
/// and (rate > 0) one paced writer mutating underneath them.
RowStats RunRate(const Dataset& ds,
                 const std::vector<std::vector<double>>& pool,
                 const Config& config, double rate) {
  IngestOptions opt;
  opt.num_shards = config.shards;
  IngestController ingest(config.method, config.m, config.kind, config.n,
                          opt);
  for (const TimeSeries& ts : ds.series) {
    if (const auto id = ingest.Insert(ts.values, ts.label); !id.ok()) {
      fprintf(stderr, "preload failed: %s\n",
              id.status().ToString().c_str());
      exit(1);
    }
  }
  // Start each row from a compacted main generation so rate 0 and rate R
  // measure the same initial epoch shape.
  if (const Status st = ingest.Seal(); !st.ok()) exit(1);
  if (const Status st = ingest.Compact(); !st.ok()) exit(1);

  std::atomic<bool> stop_writer{false};
  std::atomic<uint64_t> mutations{0};
  std::thread writer;
  if (rate > 0.0) {
    writer = std::thread([&] {
      using Clock = std::chrono::steady_clock;
      const auto interval = std::chrono::duration_cast<Clock::duration>(
          std::chrono::duration<double>(1.0 / rate));
      Rng rng(0x1D6E57);
      std::vector<uint64_t> alive;
      alive.reserve(ds.size());
      for (uint64_t id = 0; id < ds.size(); ++id) alive.push_back(id);
      size_t source = 0;
      auto next = Clock::now() + interval;
      while (!stop_writer.load()) {
        std::this_thread::sleep_until(next);
        next += interval;
        if (!alive.empty() && rng.Uniform() < config.delete_frac) {
          const size_t pos = rng.UniformInt(alive.size());
          if (ingest.Delete(alive[pos]).ok()) {
            mutations.fetch_add(1);
            alive[pos] = alive.back();
            alive.pop_back();
          }
        } else {
          std::vector<double> values =
              ds.series[source++ % ds.size()].values;
          for (double& v : values) v += rng.Gaussian(0.0, 0.05);
          if (const auto id = ingest.Insert(values); id.ok()) {
            mutations.fetch_add(1);
            alive.push_back(*id);
          }
        }
      }
    });
  }

  const ZipfSampler zipf(pool.size(), config.zipf);
  Histogram latency;
  WallTimer wall;
  std::vector<std::thread> clients;
  for (size_t c = 0; c < config.clients; ++c) {
    clients.emplace_back([&, c] {
      Rng rng(0xC11E57 + c);
      for (size_t r = 0; r < config.requests; ++r) {
        WallTimer t;
        const KnnResult result = ingest.Knn(pool[zipf.Sample(rng)], config.k);
        (void)result;
        latency.Record(static_cast<uint64_t>(t.Seconds() * 1e6));
      }
    });
  }
  for (auto& t : clients) t.join();
  const double wall_seconds = wall.Seconds();
  if (writer.joinable()) {
    stop_writer.store(true);
    writer.join();
  }

  RowStats stats;
  stats.wall_seconds = wall_seconds;
  stats.latency = SnapshotHistogram(latency);
  stats.mutations = mutations.load();
  stats.visible = ingest.dataset_size();
  return stats;
}

int Run(int argc, char** argv) {
  const Config config = ParseFlags(argc, argv);

  SyntheticOptions opt;
  opt.length = config.n;
  opt.num_series = config.series;
  const Dataset ds = MakeSyntheticDataset(0, opt);
  const std::vector<std::vector<double>> pool = MakeQueryPool(ds, config);

  const size_t total = config.clients * config.requests;
  Table t("Ingest vs query: " + std::to_string(config.clients) +
          " closed-loop clients x " + std::to_string(config.requests) +
          " x " + std::to_string(config.k) + "-NN over " +
          std::to_string(config.series) + " preloaded series (" +
          MethodName(config.method) + "/" +
          (config.kind == IndexKind::kDbchTree ? "dbch" : "rtree") +
          ", delete-frac " + Table::Num(config.delete_frac, 3) + ")");
  t.SetHeader({"IngestRate", "QPS", "P50us", "P95us", "P99us", "Mutations",
               "Visible"});

  double baseline_p99 = 0.0;
  std::vector<std::pair<double, double>> ratios;  // (rate, p99 ratio)
  for (const double rate : config.rates) {
    const RowStats s = RunRate(ds, pool, config, rate);
    t.AddRow({Table::Num(rate, 5),
              Table::Num(s.wall_seconds > 0.0 ? total / s.wall_seconds : 0.0,
                         5),
              Table::Num(s.latency.p50, 5), Table::Num(s.latency.p95, 5),
              Table::Num(s.latency.p99, 5), std::to_string(s.mutations),
              std::to_string(s.visible)});
    if (rate == 0.0) {
      baseline_p99 = s.latency.p99;
    } else if (baseline_p99 > 0.0) {
      ratios.emplace_back(rate, s.latency.p99 / baseline_p99);
    }
  }

  t.Print(config.csv_dir.empty() ? ""
                                 : config.csv_dir + "/ingest_vs_query.csv");
  if (!config.json_path.empty() && !t.WriteJson(config.json_path)) {
    fprintf(stderr, "could not write %s\n", config.json_path.c_str());
    return 1;
  }
  for (const auto& [rate, ratio] : ratios)
    printf("p99 under %.0f mutations/s = %.2fx the no-ingest baseline\n",
           rate, ratio);
  return 0;
}

}  // namespace
}  // namespace sapla

int main(int argc, char** argv) { return sapla::Run(argc, argv); }
