// Benchmarks for the extension modules (beyond the paper's evaluation):
//   1. iSAX index vs the paper's R-tree/DBCH-tree stack (pruning, CPU).
//   2. Sliding-window subsequence search + motif discovery throughput.
//   3. Streaming SAPLA vs batch SAPLA (quality and per-point cost).

#include <cstdio>

#include "core/sapla.h"
#include "core/streaming_sapla.h"
#include "harness_common.h"
#include "index/isax_tree.h"
#include "search/knn.h"
#include "search/metrics.h"
#include "search/subsequence.h"
#include "util/stats.h"
#include "util/table.h"
#include "util/timer.h"

namespace sapla {
namespace bench {
namespace {

void RunIsaxComparison(const HarnessConfig& config) {
  const size_t m = config.budgets.front();
  const size_t k = 8;
  struct Row {
    SummaryStats rho, acc, seconds;
  };
  Row sapla_dbch, isax_exact, isax_approx;

  const size_t num_datasets = std::min<size_t>(config.num_datasets, 40);
  for (size_t d = 0; d < num_datasets; ++d) {
    const Dataset ds = MakeDataset(config, d);
    SimilarityIndex dbch(Method::kSapla, m, IndexKind::kDbchTree);
    IsaxIndex isax;
    if (!dbch.Build(ds).ok() || !isax.Build(ds).ok()) continue;
    for (const size_t qi : QueryIndices(config, d)) {
      const std::vector<double>& q = ds.series[qi].values;
      const KnnResult truth = LinearScanKnn(ds, q, k);
      {
        CpuTimer t;
        const KnnResult r = dbch.Knn(q, k);
        sapla_dbch.seconds.Add(t.Seconds());
        sapla_dbch.rho.Add(PruningPower(r, ds.size()));
        sapla_dbch.acc.Add(Accuracy(r, truth, k));
      }
      {
        CpuTimer t;
        const KnnResult r = isax.Knn(q, k);
        isax_exact.seconds.Add(t.Seconds());
        isax_exact.rho.Add(PruningPower(r, ds.size()));
        isax_exact.acc.Add(Accuracy(r, truth, k));
      }
      {
        CpuTimer t;
        const KnnResult r = isax.KnnApproximate(q, k);
        isax_approx.seconds.Add(t.Seconds());
        isax_approx.rho.Add(PruningPower(r, ds.size()));
        isax_approx.acc.Add(Accuracy(r, truth, k));
      }
    }
  }
  Table t("Extension: SAPLA+DBCH vs iSAX (K=8, M=" + std::to_string(m) + ")");
  t.SetHeader({"Index", "PruningPower", "Accuracy", "CPU s/query"});
  auto row = [&](const char* name, const Row& r) {
    t.AddRow({name, Table::Num(r.rho.mean(), 3), Table::Num(r.acc.mean(), 3),
              Table::Num(r.seconds.mean(), 3)});
  };
  row("SAPLA + DBCH-tree (exact)", sapla_dbch);
  row("iSAX (exact)", isax_exact);
  row("iSAX (approximate, 1 leaf)", isax_approx);
  t.Print(config.CsvPath("ext_isax"));
}

void RunSubsequence(const HarnessConfig& config) {
  // One long recording built from a dataset's series laid end to end.
  const Dataset ds = MakeDataset(config, 5);  // EOG-like
  std::vector<double> sequence;
  for (size_t i = 0; i < std::min<size_t>(ds.size(), 20); ++i)
    sequence.insert(sequence.end(), ds.series[i].values.begin(),
                    ds.series[i].values.end());

  SubsequenceIndex::Options opt;
  opt.window = std::max<size_t>(16, config.n / 2);
  opt.stride = 2;
  opt.budget_m = config.budgets.front();
  CpuTimer build_timer;
  auto index = SubsequenceIndex::Build(sequence, opt);
  const double build_s = build_timer.Seconds();
  if (!index.ok()) return;

  std::vector<double> query(sequence.begin() + 100,
                            sequence.begin() + 100 +
                                static_cast<ptrdiff_t>(opt.window));
  CpuTimer query_timer;
  constexpr int kQueries = 20;
  for (int i = 0; i < kQueries; ++i) (*index)->Search(query, 5);
  const double query_s = query_timer.Seconds() / kQueries;

  CpuTimer motif_timer;
  size_t partner = 0;
  (*index)->FindMotif(&partner);
  const double motif_s = motif_timer.Seconds();

  Table t("Extension: subsequence search over " +
          std::to_string(sequence.size()) + " points (window " +
          std::to_string(opt.window) + ", stride 2)");
  t.SetHeader({"Operation", "CPU seconds"});
  t.AddRow({"build (" + std::to_string((*index)->num_windows()) + " windows)",
            Table::Num(build_s, 3)});
  t.AddRow({"top-5 search (per query)", Table::Num(query_s, 3)});
  t.AddRow({"best-motif discovery", Table::Num(motif_s, 3)});
  t.Print(config.CsvPath("ext_subsequence"));
}

void RunStreaming(const HarnessConfig& config) {
  const size_t n_seg = SegmentsForBudget(Method::kSapla,
                                         config.budgets.front());
  SummaryStats batch_dev, stream_dev, batch_s, stream_s;
  const size_t num_datasets = std::min<size_t>(config.num_datasets, 40);
  for (size_t d = 0; d < num_datasets; ++d) {
    const Dataset ds = MakeDataset(config, d);
    for (size_t i = 0; i < std::min<size_t>(ds.size(), 10); ++i) {
      const std::vector<double>& v = ds.series[i].values;
      {
        CpuTimer t;
        const Representation rep =
            SaplaReducer().ReduceToSegments(v, n_seg);
        batch_s.Add(t.Seconds());
        batch_dev.Add(rep.SumMaxDeviation(v));
      }
      {
        CpuTimer t;
        StreamingSapla stream(n_seg);
        for (const double x : v) stream.Append(x);
        const Representation rep = stream.Snapshot();
        stream_s.Add(t.Seconds());
        stream_dev.Add(rep.SumMaxDeviation(v));
      }
    }
  }
  Table t("Extension: streaming vs batch SAPLA (N=" + std::to_string(n_seg) +
          ", n=" + std::to_string(config.n) + ")");
  t.SetHeader({"Variant", "SumMaxDev", "CPU s/series", "Memory"});
  t.AddRow({"batch (3 phases)", Table::Num(batch_dev.mean()),
            Table::Num(batch_s.mean(), 3), "O(n)"});
  t.AddRow({"streaming (online)", Table::Num(stream_dev.mean()),
            Table::Num(stream_s.mean(), 3), "O(N)"});
  t.Print(config.CsvPath("ext_streaming"));
}

int Run(int argc, char** argv) {
  const HarnessConfig config = ParseFlags(argc, argv);
  RunIsaxComparison(config);
  RunSubsequence(config);
  RunStreaming(config);
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace sapla

int main(int argc, char** argv) { return sapla::bench::Run(argc, argv); }
