// Regenerates Fig. 12 (a: max deviation, b: dimensionality reduction time)
// for every method and coefficient budget over the synthetic archive, plus
// a Table 1 header for orientation.
//
// Expected shape (paper): adaptive methods APLA <= SAPLA < APCA < equal-
// length methods on max deviation; PAALM worst. Reduction time: APLA orders
// of magnitude slower than everything else; SAPLA ~ APCA ~ CHEBY within
// small factors of the O(n) methods.

#include <cstdio>
#include <fstream>

#include "harness_common.h"
#include "reduction/representation.h"
#include "util/stats.h"
#include "util/table.h"
#include "util/timer.h"

namespace sapla {
namespace bench {
namespace {

void PrintTable1() {
  Table t("Table 1: Dimensionality Reduction Methods Comparison");
  t.SetHeader({"Name", "Time", "Coefficients", "Seg.Num", "Seg.Size"});
  t.AddRow({"SAPLA", "O(n(N+log n))", "a_i,b_i,r_i", "N=M/3", "Adaptive"});
  t.AddRow({"APLA", "O(N n^2)", "a_i,b_i,r_i", "N=M/3", "Adaptive"});
  t.AddRow({"APCA", "O(n log n)", "v_i,r_i", "N=M/2", "Adaptive"});
  t.AddRow({"PLA", "O(n)", "a_i,b_i", "N=M/2", "Equal"});
  t.AddRow({"PAA", "O(n)", "v_i", "N=M", "Equal"});
  t.AddRow({"PAALM", "O(n)", "v_i", "N=M", "Equal"});
  t.AddRow({"CHEBY", "O(N n)", "che_i", "N=M", "Equal"});
  t.AddRow({"SAX", "O(n)", "alphabet", "N=M", "Equal"});
  t.Print();
}

int Run(int argc, char** argv) {
  const HarnessConfig config = ParseFlags(argc, argv);
  PrintTable1();

  // stats[method][budget] -> (sum max deviation, reduction seconds)
  struct Cell {
    SummaryStats dev;         // sum of per-segment max deviations (Fig. 1)
    SummaryStats global_dev;  // max over all points
    SummaryStats seconds;
  };
  std::vector<std::vector<Cell>> cells(
      config.methods.size(), std::vector<Cell>(config.budgets.size()));

  // Optional per-dataset detail (the paper's technical-report breakdown).
  Table detail("Per-dataset max deviation (sum form), M=" +
               std::to_string(config.budgets.front()));
  {
    std::vector<std::string> header{"Dataset"};
    for (const Method method : config.methods)
      if (method != Method::kSax) header.push_back(MethodName(method));
    detail.SetHeader(header);
  }

  for (size_t d = 0; d < config.num_datasets; ++d) {
    const Dataset ds = MakeDataset(config, d);
    std::vector<std::string> detail_row{ds.name};
    for (size_t mi = 0; mi < config.methods.size(); ++mi) {
      const Method method = config.methods[mi];
      if (method == Method::kSax) continue;  // paper: SAX excluded (symbolic)
      const auto reducer = MakeReducer(method);
      for (size_t bi = 0; bi < config.budgets.size(); ++bi) {
        const size_t m = config.budgets[bi];
        CpuTimer timer;
        std::vector<Representation> reps;
        reps.reserve(ds.size());
        for (const TimeSeries& ts : ds.series)
          reps.push_back(reducer->Reduce(ts.values, m));
        cells[mi][bi].seconds.Add(timer.Seconds() /
                                  static_cast<double>(ds.size()));
        double dev_sum = 0.0, global_sum = 0.0;
        for (size_t s = 0; s < ds.size(); ++s) {
          dev_sum += reps[s].SumMaxDeviation(ds.series[s].values);
          global_sum += reps[s].GlobalMaxDeviation(ds.series[s].values);
        }
        cells[mi][bi].dev.Add(dev_sum / static_cast<double>(ds.size()));
        cells[mi][bi].global_dev.Add(global_sum /
                                     static_cast<double>(ds.size()));
        if (config.per_dataset && bi == 0)
          detail_row.push_back(
              Table::Num(dev_sum / static_cast<double>(ds.size())));
      }
    }
    if (config.per_dataset) detail.AddRow(detail_row);
    if ((d + 1) % 20 == 0)
      fprintf(stderr, "fig12: %zu/%zu datasets\n", d + 1, config.num_datasets);
  }

  Table dev_table(
      "Fig. 12a: Max deviation (sum of segment max deviations, avg per "
      "series over " +
      std::to_string(config.num_datasets) + " datasets, n=" +
      std::to_string(config.n) + ")");
  Table global_table(
      "Fig. 12a': Global max deviation (max over all points, avg per "
      "series)");
  Table time_table(
      "Fig. 12b: Dimensionality reduction CPU time per series (seconds)");
  std::vector<std::string> header{"Method"};
  for (const size_t m : config.budgets)
    header.push_back("M=" + std::to_string(m));
  dev_table.SetHeader(header);
  global_table.SetHeader(header);
  time_table.SetHeader(header);

  for (size_t mi = 0; mi < config.methods.size(); ++mi) {
    const Method method = config.methods[mi];
    if (method == Method::kSax) continue;
    std::vector<std::string> dev_row{MethodName(method)};
    std::vector<std::string> global_row{MethodName(method)};
    std::vector<std::string> time_row{MethodName(method)};
    for (size_t bi = 0; bi < config.budgets.size(); ++bi) {
      dev_row.push_back(Table::Num(cells[mi][bi].dev.mean()));
      global_row.push_back(Table::Num(cells[mi][bi].global_dev.mean()));
      time_row.push_back(Table::Num(cells[mi][bi].seconds.mean(), 3));
    }
    dev_table.AddRow(dev_row);
    global_table.AddRow(global_row);
    time_table.AddRow(time_row);
  }
  dev_table.Print(config.CsvPath("fig12a_maxdev"));
  global_table.Print(config.CsvPath("fig12a_global_maxdev"));
  time_table.Print(config.CsvPath("fig12b_reduction_time"));
  if (config.per_dataset && !config.csv_dir.empty()) {
    // CSV only: 117 rows would drown the terminal.
    std::ofstream f(config.CsvPath("fig12_per_dataset"));
    f << detail.ToCsv();
    fprintf(stderr, "wrote %s\n",
            config.CsvPath("fig12_per_dataset").c_str());
  }
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace sapla

int main(int argc, char** argv) { return sapla::bench::Run(argc, argv); }
