// Storage-tier footprint: bytes/series of the persisted store versus the
// pruning power the quantized corpus retains, across fixed-point step
// sizes, plus a cold (mmap-backed) residency demonstration.
//
// The acceptance claim behind the tiered-store work: at least one
// quantization level must cut bytes/series by >= 3x versus the raw v3
// archive while losing <= 10% relative pruning power — with kNN answers
// id- and distance-identical throughout (asserted per query; compression
// is never allowed to change an answer, only how much the filter prunes).
//
//   --n=256 --series=100 --datasets=4 --queries=3 --budgets=16
//   --json=BENCH_footprint.json   (default; Table::WriteJson format)

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "harness_common.h"
#include "reduction/column_codec.h"
#include "reduction/representation_store.h"
#include "search/knn.h"
#include "search/snapshot.h"
#include "ts/io.h"
#include "util/rng.h"
#include "util/table.h"

namespace sapla {
namespace bench {
namespace {

constexpr size_t kK = 8;

struct Level {
  const char* label;
  double step;  // 0 = raw full precision (v3 archive)
};

constexpr Level kLevels[] = {
    {"raw", 0.0},        {"q=1e-4", 1e-4}, {"q=1e-3", 1e-3},
    {"q=3e-3", 3e-3},    {"q=1e-2", 1e-2},
};

/// Mean fraction of the corpus the filter pruned away (1 - measured/size).
double PruningPower(const SimilarityIndex& index,
                    const std::vector<std::vector<double>>& queries,
                    size_t corpus_size,
                    const std::vector<KnnResult>* id_baseline,
                    bool* ids_identical) {
  double power = 0.0;
  for (size_t qi = 0; qi < queries.size(); ++qi) {
    const KnnResult r = index.Knn(queries[qi], kK);
    power += 1.0 - static_cast<double>(r.num_measured) /
                       static_cast<double>(corpus_size);
    if (id_baseline != nullptr) {
      const KnnResult& want = (*id_baseline)[qi];
      if (r.neighbors != want.neighbors) *ids_identical = false;
    }
  }
  return power / static_cast<double>(queries.size());
}

int Run(int argc, char** argv) {
  HarnessConfig base;
  base.n = 256;
  base.num_datasets = 4;
  base.budgets = {16};
  base.methods = {Method::kSapla};
  base.json_path = "BENCH_footprint.json";
  const HarnessConfig config = ParseFlags(argc, argv, base);
  const size_t m = config.budgets.front();

  // One corpus: every dataset's series under one roof (the store is the
  // unit being measured, so bigger is more representative).
  Dataset all;
  all.name = "footprint-corpus";
  for (size_t d = 0; d < config.num_datasets; ++d) {
    Dataset ds = MakeDataset(config, d);
    for (TimeSeries& ts : ds.series) all.series.push_back(std::move(ts));
  }
  const size_t corpus = all.size();

  std::vector<std::vector<double>> queries;
  Rng rng(517);
  for (size_t qi = 0; qi < config.num_queries * config.num_datasets; ++qi) {
    std::vector<double> q = all.series[rng.UniformInt(corpus)].values;
    for (double& v : q) v += rng.Gaussian(0.0, 0.05);
    queries.push_back(std::move(q));
  }

  Table t("Store footprint vs pruning power (" +
          std::string(MethodName(config.methods.front())) + ", M=" +
          std::to_string(m) + ", " + std::to_string(corpus) + " series x n=" +
          std::to_string(config.n) + ", k=" + std::to_string(kK) + ")");
  t.SetHeader({"Level", "Bytes/Series", "Compression", "PruningPower",
               "RelPowerLoss%", "MaxSlack", "IdsIdentical"});

  SimilarityIndex raw(config.methods.front(), m, IndexKind::kRTree);
  if (const Status st = raw.Build(all); !st.ok()) {
    fprintf(stderr, "FATAL: build failed: %s\n", st.ToString().c_str());
    return 1;
  }
  std::vector<KnnResult> baseline;
  for (const std::vector<double>& q : queries)
    baseline.push_back(raw.Knn(q, kK));

  const size_t raw_bytes = SerializeRepresentationStore(
                               raw.store(), StoreFormat::kV3)
                               .size();
  const double raw_power =
      PruningPower(raw, queries, corpus, nullptr, nullptr);

  bool target_met = false;
  for (const Level& level : kLevels) {
    size_t bytes = raw_bytes;
    double power = raw_power;
    double max_slack = 0.0;
    bool ids_identical = true;
    if (level.step > 0.0) {
      StoreCodecOptions codec;
      codec.ab_step = level.step;
      codec.coeff_step = level.step;
      auto quantized = QuantizeStore(raw.store(), codec);
      if (!quantized.ok()) {
        fprintf(stderr, "FATAL: quantize(%s) failed: %s\n", level.label,
                quantized.status().ToString().c_str());
        return 1;
      }
      bytes = SerializeRepresentationStore(*quantized).size();
      max_slack = quantized->max_lb_slack();
      SimilarityIndex index(config.methods.front(), m, IndexKind::kRTree);
      if (const Status st = index.RestoreFromStore(
              all, std::move(quantized).ValueOrDie());
          !st.ok()) {
        fprintf(stderr, "FATAL: restore(%s) failed: %s\n", level.label,
                st.ToString().c_str());
        return 1;
      }
      power = PruningPower(index, queries, corpus, &baseline,
                           &ids_identical);
    }
    const double bytes_per_series =
        static_cast<double>(bytes) / static_cast<double>(corpus);
    const double compression =
        static_cast<double>(raw_bytes) / static_cast<double>(bytes);
    const double rel_loss =
        raw_power > 0.0 ? 100.0 * (raw_power - power) / raw_power : 0.0;
    if (!ids_identical) {
      fprintf(stderr, "FATAL: %s changed a kNN answer\n", level.label);
      return 1;
    }
    if (compression >= 3.0 && rel_loss <= 10.0) target_met = true;
    t.AddRow({level.label, Table::Num(bytes_per_series, 6),
              Table::Num(compression, 2) + "x", Table::Num(power, 4),
              Table::Num(rel_loss, 2), Table::Num(max_slack, 4),
              ids_identical ? "yes" : "NO"});
  }

  if (!t.Print(config.CsvPath("store_footprint"))) return 1;
  if (!config.json_path.empty() && !t.WriteJson(config.json_path)) return 1;

  // Cold-residency demonstration: the same corpus served from an mmap'd
  // v4 snapshot with a decode cache a quarter of the archive — the shard
  // answers bit-identically while most of the store stays on disk.
  {
    const std::string path = "/tmp/sapla_bench_footprint.snp";
    SnapshotWriteOptions write;
    write.codec.ab_step = 1e-3;
    write.codec.coeff_step = 1e-3;
    write.store_format = StoreFormat::kV4;
    if (const Status st = SaveIndexSnapshot(path, raw, write); !st.ok()) {
      fprintf(stderr, "FATAL: snapshot save failed: %s\n",
              st.ToString().c_str());
      return 1;
    }
    SimilarityIndex cold(config.methods.front(), m, IndexKind::kRTree);
    SnapshotLoadOptions load;
    load.cold_store = true;
    load.cold_cache_bytes = 1;  // floor: one decoded frame resident
    if (const Status st = LoadIndexSnapshot(path, all, &cold, load);
        !st.ok()) {
      fprintf(stderr, "FATAL: cold load failed: %s\n",
              st.ToString().c_str());
      return 1;
    }
    bool cold_ids_identical = true;
    PruningPower(cold, queries, corpus, &baseline, &cold_ids_identical);
    const StoreFootprint fp = cold.footprint();
    printf("\ncold tier: %zu resident / %zu mapped store bytes (%.1fx "
           "larger than resident), %llu frame hits / %llu misses, "
           "ids identical: %s\n",
           fp.resident_bytes, fp.mapped_bytes,
           fp.resident_bytes > 0
               ? static_cast<double>(fp.mapped_bytes) /
                     static_cast<double>(fp.resident_bytes)
               : 0.0,
           static_cast<unsigned long long>(fp.frame_hits),
           static_cast<unsigned long long>(fp.frame_misses),
           cold_ids_identical ? "yes" : "NO");
    std::remove(path.c_str());
    if (!cold_ids_identical) {
      fprintf(stderr, "FATAL: cold store changed a kNN answer\n");
      return 1;
    }
  }

  if (!target_met) {
    fprintf(stderr,
            "FATAL: no quantization level reached >= 3x bytes/series "
            "reduction at <= 10%% relative pruning-power loss\n");
    return 1;
  }
  printf("target met: >= 3x compression at <= 10%% pruning-power loss\n");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace sapla

int main(int argc, char** argv) { return sapla::bench::Run(argc, argv); }
