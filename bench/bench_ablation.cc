// Ablation study for the design choices DESIGN.md §3 calls out:
//
//  1. SAPLA phase contributions: initialization only -> + split&merge ->
//     + endpoint movement (max deviation and CPU time).
//  2. beta bounds: O(1) probe surrogate vs exact max deviation in the
//     movement phase, and fully exact bounds everywhere.
//  3. Index bounding: R-tree MBR vs DBCH hull, pruning power at fixed K.

#include <cstdio>

#include "core/sapla.h"
#include "harness_common.h"
#include "search/knn.h"
#include "search/metrics.h"
#include "util/stats.h"
#include "util/table.h"
#include "util/timer.h"

namespace sapla {
namespace bench {
namespace {

struct Variant {
  const char* name;
  SaplaOptions options;
};

int Run(int argc, char** argv) {
  HarnessConfig config = ParseFlags(argc, argv);
  const size_t m = config.budgets.front();

  std::vector<Variant> variants;
  {
    Variant v{"full (default)", SaplaOptions{}};
    variants.push_back(v);
  }
  {
    SaplaOptions o;
    o.endpoint_movement = false;
    variants.push_back({"no endpoint movement", o});
  }
  {
    SaplaOptions o;
    o.split_merge_iteration = false;
    variants.push_back({"no split&merge improve loop", o});
  }
  {
    SaplaOptions o;
    o.split_merge_iteration = false;
    o.endpoint_movement = false;
    variants.push_back({"init + forced merges only", o});
  }
  {
    SaplaOptions o;
    o.exact_movement = false;
    variants.push_back({"O(1) surrogate movement", o});
  }
  {
    SaplaOptions o;
    o.use_exact_deviation = true;
    variants.push_back({"exact deviation everywhere", o});
  }

  // Index variants.size() is the extra "full + minimax refit" row (the
  // L-infinity polish of DESIGN.md §3).
  std::vector<SummaryStats> dev(variants.size() + 1);
  std::vector<SummaryStats> seconds(variants.size() + 1);

  for (size_t d = 0; d < config.num_datasets; ++d) {
    const Dataset ds = MakeDataset(config, d);
    for (size_t vi = 0; vi < variants.size(); ++vi) {
      const SaplaReducer reducer(variants[vi].options);
      CpuTimer timer;
      double dev_sum = 0.0;
      for (const TimeSeries& ts : ds.series) {
        const Representation rep = reducer.Reduce(ts.values, m);
        dev_sum += rep.SumMaxDeviation(ts.values);
      }
      seconds[vi].Add(timer.Seconds() / static_cast<double>(ds.size()));
      dev[vi].Add(dev_sum / static_cast<double>(ds.size()));
    }
    {
      const SaplaReducer reducer;
      CpuTimer timer;
      double dev_sum = 0.0;
      for (const TimeSeries& ts : ds.series) {
        Representation rep = reducer.Reduce(ts.values, m);
        MinimaxRefit(&rep, ts.values);
        dev_sum += rep.SumMaxDeviation(ts.values);
      }
      seconds.back().Add(timer.Seconds() / static_cast<double>(ds.size()));
      dev.back().Add(dev_sum / static_cast<double>(ds.size()));
    }
    if ((d + 1) % 20 == 0)
      fprintf(stderr, "ablation: %zu/%zu datasets\n", d + 1,
              config.num_datasets);
  }

  Table t("Ablation: SAPLA variants (M=" + std::to_string(m) + ", n=" +
          std::to_string(config.n) + ", avg over " +
          std::to_string(config.num_datasets) + " datasets)");
  t.SetHeader({"Variant", "SumMaxDev", "vs full", "CPU s/series"});
  const double base = dev[0].mean();
  for (size_t vi = 0; vi < variants.size(); ++vi) {
    t.AddRow({variants[vi].name, Table::Num(dev[vi].mean()),
              Table::Num(dev[vi].mean() / base, 4),
              Table::Num(seconds[vi].mean(), 3)});
  }
  t.AddRow({"full + minimax refit", Table::Num(dev.back().mean()),
            Table::Num(dev.back().mean() / base, 4),
            Table::Num(seconds.back().mean(), 3)});
  t.Print(config.CsvPath("ablation_sapla_variants"));

  // Index-bounding ablation: SAPLA on R-tree vs DBCH-tree, first K.
  const size_t k = config.ks.front();
  SummaryStats rho_rtree, rho_dbch, acc_rtree, acc_dbch;
  const size_t index_datasets = std::min<size_t>(config.num_datasets, 40);
  for (size_t d = 0; d < index_datasets; ++d) {
    const Dataset ds = MakeDataset(config, d);
    SimilarityIndex rtree(Method::kSapla, m, IndexKind::kRTree);
    SimilarityIndex dbch(Method::kSapla, m, IndexKind::kDbchTree);
    if (!rtree.Build(ds).ok() || !dbch.Build(ds).ok()) continue;
    for (const size_t qi : QueryIndices(config, d)) {
      const std::vector<double>& q = ds.series[qi].values;
      const KnnResult truth = LinearScanKnn(ds, q, k);
      const KnnResult r1 = rtree.Knn(q, k);
      const KnnResult r2 = dbch.Knn(q, k);
      rho_rtree.Add(PruningPower(r1, ds.size()));
      rho_dbch.Add(PruningPower(r2, ds.size()));
      acc_rtree.Add(Accuracy(r1, truth, k));
      acc_dbch.Add(Accuracy(r2, truth, k));
    }
  }
  Table t2("Ablation: SAPLA index bounding (K=" + std::to_string(k) + ")");
  t2.SetHeader({"Bounding", "PruningPower", "Accuracy"});
  t2.AddRow({"APCA-style MBR (R-tree)", Table::Num(rho_rtree.mean(), 3),
             Table::Num(acc_rtree.mean(), 3)});
  t2.AddRow({"Dist_PAR hull (DBCH-tree)", Table::Num(rho_dbch.mean(), 3),
             Table::Num(acc_dbch.mean(), 3)});
  t2.Print(config.CsvPath("ablation_index_bounding"));
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace sapla

int main(int argc, char** argv) { return sapla::bench::Run(argc, argv); }
