// Regenerates Figs. 15 and 16: average internal-node count, leaf-node
// count, total nodes and tree height for each method on the R-tree vs the
// DBCH-tree (min fill 2, max fill 5, 100 series — the paper's setup).
//
// Expected shape (paper): DBCH-tree leaves hold ~4 entries on average vs
// ~2 for the R-tree under APCA MBRs; the R-tree uses roughly 4x as many
// internal nodes; DBCH-tree height is lower by about one level. PLA and
// CHEBY (own MBRs) show only minor differences.
//
// Each built index additionally runs one k-NN query and cross-checks its
// SearchCounters against the structural TreeStats: a traversal cannot visit
// more internal/leaf nodes than exist, cannot reach a level at or past the
// height, and visited + pruned cannot exceed the node total. Disagreement
// exits non-zero. The table gains node-access columns from those counters.

#include <cstdio>
#include <cstdlib>

#include "harness_common.h"
#include "obs/counters.h"
#include "search/knn.h"
#include "util/stats.h"
#include "util/table.h"

namespace sapla {
namespace bench {
namespace {

int Run(int argc, char** argv) {
  const HarnessConfig config = ParseFlags(argc, argv);
  const size_t m = config.budgets.front();

  struct Cell {
    SummaryStats internal_nodes, leaf_nodes, total_nodes, height,
        leaf_entries;
    SummaryStats visited_internal, visited_leaf;  // per-query node accesses
  };
  std::vector<std::vector<Cell>> cells(config.methods.size(),
                                       std::vector<Cell>(2));

  for (size_t d = 0; d < config.num_datasets; ++d) {
    const Dataset ds = MakeDataset(config, d);
    for (size_t mi = 0; mi < config.methods.size(); ++mi) {
      for (int tree = 0; tree < 2; ++tree) {
        SimilarityIndex index(config.methods[mi], m,
                              tree == 0 ? IndexKind::kRTree
                                        : IndexKind::kDbchTree);
        BuildInfo info;
        if (!index.Build(ds, &info).ok()) continue;
        Cell& c = cells[mi][tree];
        c.internal_nodes.Add(static_cast<double>(info.stats.internal_nodes));
        c.leaf_nodes.Add(static_cast<double>(info.stats.leaf_nodes));
        c.total_nodes.Add(static_cast<double>(info.stats.total_nodes()));
        c.height.Add(static_cast<double>(info.stats.height));
        c.leaf_entries.Add(info.stats.avg_leaf_entries);

        // One query's SearchCounters must be consistent with the structure
        // the tree reports (Figs. 15/16 counted these same nodes).
        const KnnResult r = index.Knn(ds.series[0].values, config.ks.front());
        const SearchCounters& sc = r.counters;
        size_t deepest = 0;
        for (size_t level = 0; level < SearchCounters::kMaxLevels; ++level)
          if (sc.nodes_visited_by_level[level] > 0) deepest = level;
        const bool ok =
            sc.nodes_visited_internal <= info.stats.internal_nodes &&
            sc.nodes_visited_leaf <= info.stats.leaf_nodes &&
            sc.nodes_visited() + sc.nodes_pruned <=
                info.stats.total_nodes() &&
            deepest < info.stats.height && sc.nodes_visited_leaf >= 1;
        if (!ok) {
          fprintf(stderr,
                  "fig15/16: SearchCounters disagree with TreeStats (%s/%s): "
                  "visited_internal=%llu/%zu visited_leaf=%llu/%zu "
                  "pruned=%llu total=%zu deepest_level=%zu height=%zu\n",
                  MethodName(config.methods[mi]).c_str(),
                  tree == 0 ? "rtree" : "dbch",
                  static_cast<unsigned long long>(sc.nodes_visited_internal),
                  info.stats.internal_nodes,
                  static_cast<unsigned long long>(sc.nodes_visited_leaf),
                  info.stats.leaf_nodes,
                  static_cast<unsigned long long>(sc.nodes_pruned),
                  info.stats.total_nodes(), deepest, info.stats.height);
          exit(1);
        }
        c.visited_internal.Add(static_cast<double>(sc.nodes_visited_internal));
        c.visited_leaf.Add(static_cast<double>(sc.nodes_visited_leaf));
      }
    }
    if ((d + 1) % 20 == 0)
      fprintf(stderr, "fig15/16: %zu/%zu datasets\n", d + 1,
              config.num_datasets);
  }

  Table t("Figs. 15-16: Tree structure (avg over " +
          std::to_string(config.num_datasets) + " datasets, " +
          std::to_string(config.num_series) +
          " series, min fill 2 / max fill 5), M=" + std::to_string(m));
  t.SetHeader({"Method", "Tree", "Internal", "Leaves", "Total", "Height",
               "Entries/Leaf", "Visited(int)", "Visited(leaf)"});
  for (size_t mi = 0; mi < config.methods.size(); ++mi) {
    for (int tree = 0; tree < 2; ++tree) {
      const Cell& c = cells[mi][tree];
      t.AddRow({MethodName(config.methods[mi]),
                tree == 0 ? "R-tree" : "DBCH-tree",
                Table::Num(c.internal_nodes.mean(), 3),
                Table::Num(c.leaf_nodes.mean(), 3),
                Table::Num(c.total_nodes.mean(), 3),
                Table::Num(c.height.mean(), 3),
                Table::Num(c.leaf_entries.mean(), 3),
                Table::Num(c.visited_internal.mean(), 3),
                Table::Num(c.visited_leaf.mean(), 3)});
    }
  }
  t.Print(config.CsvPath("fig15_16_tree_stats"));
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace sapla

int main(int argc, char** argv) { return sapla::bench::Run(argc, argv); }
