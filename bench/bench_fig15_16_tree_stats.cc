// Regenerates Figs. 15 and 16: average internal-node count, leaf-node
// count, total nodes and tree height for each method on the R-tree vs the
// DBCH-tree (min fill 2, max fill 5, 100 series — the paper's setup).
//
// Expected shape (paper): DBCH-tree leaves hold ~4 entries on average vs
// ~2 for the R-tree under APCA MBRs; the R-tree uses roughly 4x as many
// internal nodes; DBCH-tree height is lower by about one level. PLA and
// CHEBY (own MBRs) show only minor differences.

#include <cstdio>

#include "harness_common.h"
#include "search/knn.h"
#include "util/stats.h"
#include "util/table.h"

namespace sapla {
namespace bench {
namespace {

int Run(int argc, char** argv) {
  const HarnessConfig config = ParseFlags(argc, argv);
  const size_t m = config.budgets.front();

  struct Cell {
    SummaryStats internal_nodes, leaf_nodes, total_nodes, height,
        leaf_entries;
  };
  std::vector<std::vector<Cell>> cells(config.methods.size(),
                                       std::vector<Cell>(2));

  for (size_t d = 0; d < config.num_datasets; ++d) {
    const Dataset ds = MakeDataset(config, d);
    for (size_t mi = 0; mi < config.methods.size(); ++mi) {
      for (int tree = 0; tree < 2; ++tree) {
        SimilarityIndex index(config.methods[mi], m,
                              tree == 0 ? IndexKind::kRTree
                                        : IndexKind::kDbchTree);
        BuildInfo info;
        if (!index.Build(ds, &info).ok()) continue;
        Cell& c = cells[mi][tree];
        c.internal_nodes.Add(static_cast<double>(info.stats.internal_nodes));
        c.leaf_nodes.Add(static_cast<double>(info.stats.leaf_nodes));
        c.total_nodes.Add(static_cast<double>(info.stats.total_nodes()));
        c.height.Add(static_cast<double>(info.stats.height));
        c.leaf_entries.Add(info.stats.avg_leaf_entries);
      }
    }
    if ((d + 1) % 20 == 0)
      fprintf(stderr, "fig15/16: %zu/%zu datasets\n", d + 1,
              config.num_datasets);
  }

  Table t("Figs. 15-16: Tree structure (avg over " +
          std::to_string(config.num_datasets) + " datasets, " +
          std::to_string(config.num_series) +
          " series, min fill 2 / max fill 5), M=" + std::to_string(m));
  t.SetHeader({"Method", "Tree", "Internal", "Leaves", "Total", "Height",
               "Entries/Leaf"});
  for (size_t mi = 0; mi < config.methods.size(); ++mi) {
    for (int tree = 0; tree < 2; ++tree) {
      const Cell& c = cells[mi][tree];
      t.AddRow({MethodName(config.methods[mi]),
                tree == 0 ? "R-tree" : "DBCH-tree",
                Table::Num(c.internal_nodes.mean(), 3),
                Table::Num(c.leaf_nodes.mean(), 3),
                Table::Num(c.total_nodes.mean(), 3),
                Table::Num(c.height.mean(), 3),
                Table::Num(c.leaf_entries.mean(), 3)});
    }
  }
  t.Print(config.CsvPath("fig15_16_tree_stats"));
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace sapla

int main(int argc, char** argv) { return sapla::bench::Run(argc, argv); }
