// Regenerates Fig. 14 (a: data ingest CPU time, b: k-NN CPU time with a
// linear-scan reference bar).
//
// Expected shape (paper): APLA dominates ingest time (its O(Nn^2) reduction
// is the bottleneck — the motivation for SAPLA); SAPLA ingest is close to
// the O(n)/O(n log n) methods. k-NN time: SAPLA/APLA spend slightly more
// per query on the DBCH-tree (tight Dist_PAR computations) but measure far
// fewer raw series.

#include <cstdio>

#include "harness_common.h"
#include "search/knn.h"
#include "search/metrics.h"
#include "util/stats.h"
#include "util/table.h"
#include "util/timer.h"

namespace sapla {
namespace bench {
namespace {

int Run(int argc, char** argv) {
  const HarnessConfig config = ParseFlags(argc, argv);
  const size_t m = config.budgets.front();
  const size_t k = config.ks.size() >= 3 ? config.ks[2] : config.ks.back();

  struct Cell {
    SummaryStats ingest_reduce;
    SummaryStats ingest_insert;
    SummaryStats knn_seconds;
  };
  std::vector<std::vector<Cell>> cells(config.methods.size(),
                                       std::vector<Cell>(2));
  SummaryStats linear_scan_seconds;

  for (size_t d = 0; d < config.num_datasets; ++d) {
    const Dataset ds = MakeDataset(config, d);
    std::vector<std::vector<double>> queries;
    for (const size_t qi : QueryIndices(config, d))
      queries.push_back(ds.series[qi].values);

    {
      CpuTimer timer;
      for (const std::vector<double>& q : queries) LinearScanKnn(ds, q, k);
      linear_scan_seconds.Add(timer.Seconds() /
                              static_cast<double>(queries.size()));
    }

    for (size_t mi = 0; mi < config.methods.size(); ++mi) {
      for (int tree = 0; tree < 2; ++tree) {
        SimilarityIndex index(config.methods[mi], m,
                              tree == 0 ? IndexKind::kRTree
                                        : IndexKind::kDbchTree);
        BuildInfo info;
        if (!index.Build(ds, &info).ok()) continue;
        cells[mi][tree].ingest_reduce.Add(info.reduce_cpu_seconds);
        cells[mi][tree].ingest_insert.Add(info.insert_cpu_seconds);
        // CPU time sums over the pool's threads, so with --threads>1 this
        // column still reports total work per query (wall-clock scaling is
        // bench_parallel_scaling's job).
        CpuTimer timer;
        index.KnnBatch(queries, k);
        cells[mi][tree].knn_seconds.Add(timer.Seconds() /
                                        static_cast<double>(queries.size()));
      }
    }
    if ((d + 1) % 10 == 0)
      fprintf(stderr, "fig14: %zu/%zu datasets\n", d + 1, config.num_datasets);
  }

  Table ingest("Fig. 14a: Data ingest CPU time per dataset (seconds; reduce "
               "+ insert), M=" +
               std::to_string(m));
  ingest.SetHeader({"Method", "Tree", "Reduce", "Insert", "Total"});
  for (size_t mi = 0; mi < config.methods.size(); ++mi) {
    for (int tree = 0; tree < 2; ++tree) {
      const Cell& c = cells[mi][tree];
      ingest.AddRow({MethodName(config.methods[mi]),
                     tree == 0 ? "R-tree" : "DBCH-tree",
                     Table::Num(c.ingest_reduce.mean(), 3),
                     Table::Num(c.ingest_insert.mean(), 3),
                     Table::Num(c.ingest_reduce.mean() +
                                c.ingest_insert.mean(), 3)});
    }
  }
  ingest.Print(config.CsvPath("fig14a_ingest_time"));

  Table knn("Fig. 14b: k-NN CPU time per query (seconds), K=" +
            std::to_string(k) + ", M=" + std::to_string(m));
  knn.SetHeader({"Method", "Tree", "Seconds"});
  for (size_t mi = 0; mi < config.methods.size(); ++mi) {
    for (int tree = 0; tree < 2; ++tree) {
      knn.AddRow({MethodName(config.methods[mi]),
                  tree == 0 ? "R-tree" : "DBCH-tree",
                  Table::Num(cells[mi][tree].knn_seconds.mean(), 3)});
    }
  }
  knn.AddRow({"LinearScan", "-", Table::Num(linear_scan_seconds.mean(), 3)});
  knn.Print(config.CsvPath("fig14b_knn_time"));
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace sapla

int main(int argc, char** argv) { return sapla::bench::Run(argc, argv); }
