// Tests for the GEMINI epsilon-range query on SimilarityIndex.

#include <algorithm>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "search/knn.h"
#include "ts/synthetic_archive.h"

namespace sapla {
namespace {

Dataset SmallDataset(size_t id = 3, size_t n = 128, size_t count = 60) {
  SyntheticOptions opt;
  opt.length = n;
  opt.num_series = count;
  return MakeSyntheticDataset(id, opt);
}

std::set<size_t> BruteRange(const Dataset& ds, const std::vector<double>& q,
                            double radius) {
  std::set<size_t> ids;
  for (size_t i = 0; i < ds.size(); ++i)
    if (EuclideanDistance(q, ds.series[i].values) <= radius) ids.insert(i);
  return ids;
}

TEST(RangeSearch, ZeroRadiusFindsSelf) {
  const Dataset ds = SmallDataset();
  SimilarityIndex index(Method::kSapla, 12, IndexKind::kDbchTree);
  ASSERT_TRUE(index.Build(ds).ok());
  const KnnResult res = index.RangeSearch(ds.series[5].values, 1e-9);
  ASSERT_GE(res.neighbors.size(), 1u);
  EXPECT_EQ(res.neighbors[0].second, 5u);
}

TEST(RangeSearch, ResultsSortedAndWithinRadius) {
  const Dataset ds = SmallDataset(7);
  SimilarityIndex index(Method::kSapla, 18, IndexKind::kDbchTree);
  ASSERT_TRUE(index.Build(ds).ok());
  const double radius = 10.0;
  const KnnResult res = index.RangeSearch(ds.series[0].values, radius);
  for (size_t i = 0; i < res.neighbors.size(); ++i) {
    EXPECT_LE(res.neighbors[i].first, radius);
    if (i) {
      EXPECT_GE(res.neighbors[i].first, res.neighbors[i - 1].first);
    }
  }
}

TEST(RangeSearch, ExactWithPaaRTree) {
  // PAA bounds are rigorous end to end: the range result must equal brute
  // force exactly.
  const Dataset ds = SmallDataset(6);
  SimilarityIndex index(Method::kPaa, 12, IndexKind::kRTree);
  ASSERT_TRUE(index.Build(ds).ok());
  for (const double radius : {5.0, 10.0, 15.0}) {
    const std::vector<double>& q = ds.series[3].values;
    const std::set<size_t> truth = BruteRange(ds, q, radius);
    std::set<size_t> got;
    for (const auto& [dist, id] : index.RangeSearch(q, radius).neighbors)
      got.insert(id);
    EXPECT_EQ(got, truth) << "radius " << radius;
  }
}

TEST(RangeSearch, ExactWithSegmentMethodsOnRTree) {
  // Dist_LB + raw-range MBRs are rigorous for all segment methods whose
  // coefficients are LS fits (SAPLA/APLA/APCA/PLA).
  const Dataset ds = SmallDataset(8);
  for (const Method method :
       {Method::kSapla, Method::kApla, Method::kApca, Method::kPla}) {
    SimilarityIndex index(method, 12, IndexKind::kRTree);
    ASSERT_TRUE(index.Build(ds).ok()) << MethodName(method);
    const std::vector<double>& q = ds.series[10].values;
    const double radius = 8.0;
    const std::set<size_t> truth = BruteRange(ds, q, radius);
    std::set<size_t> got;
    for (const auto& [dist, id] : index.RangeSearch(q, radius).neighbors)
      got.insert(id);
    EXPECT_EQ(got, truth) << MethodName(method);
  }
}

TEST(RangeSearch, LargeRadiusReturnsEverything) {
  const Dataset ds = SmallDataset(9, 64, 30);
  SimilarityIndex index(Method::kApca, 12, IndexKind::kDbchTree);
  ASSERT_TRUE(index.Build(ds).ok());
  const KnnResult res = index.RangeSearch(ds.series[0].values, 1e9);
  EXPECT_EQ(res.neighbors.size(), ds.size());
}

TEST(RangeSearch, PrunesComparedToScan) {
  const Dataset ds = SmallDataset(2, 128, 100);
  SimilarityIndex index(Method::kSapla, 18, IndexKind::kDbchTree);
  ASSERT_TRUE(index.Build(ds).ok());
  // A tight radius should measure only a fraction of the dataset.
  const KnnResult res = index.RangeSearch(ds.series[0].values, 2.0);
  EXPECT_LT(res.num_measured, ds.size());
}

}  // namespace
}  // namespace sapla
