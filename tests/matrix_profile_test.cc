// Tests for the STOMP matrix profile: brute-force equivalence, planted
// motif/discord recovery, exclusion-zone semantics, degenerate windows.

#include "mining/matrix_profile.h"

#include <cmath>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "ts/time_series.h"
#include "util/rng.h"

namespace sapla {
namespace {

// Brute force: z-normalize both windows and take the Euclidean distance.
double BruteZDist(const std::vector<double>& v, size_t i, size_t j, size_t m) {
  std::vector<double> a(v.begin() + static_cast<ptrdiff_t>(i),
                        v.begin() + static_cast<ptrdiff_t>(i + m));
  std::vector<double> b(v.begin() + static_cast<ptrdiff_t>(j),
                        v.begin() + static_cast<ptrdiff_t>(j + m));
  ZNormalize(&a);
  ZNormalize(&b);
  return EuclideanDistance(a, b);
}

std::vector<double> NoisySeries(uint64_t seed, size_t n) {
  Rng rng(seed);
  std::vector<double> v(n);
  double x = 0.0;
  for (auto& p : v) {
    x = 0.8 * x + rng.Gaussian();
    p = x;
  }
  return v;
}

TEST(MatrixProfile, ValidatesInput) {
  MatrixProfileOptions opt;
  opt.window = 2;
  EXPECT_FALSE(ComputeMatrixProfile(NoisySeries(1, 100), opt).ok());
  opt.window = 64;
  EXPECT_FALSE(ComputeMatrixProfile(NoisySeries(1, 100), opt).ok());
}

TEST(MatrixProfile, MatchesBruteForce) {
  const std::vector<double> v = NoisySeries(2, 120);
  MatrixProfileOptions opt;
  opt.window = 16;
  const auto mp = ComputeMatrixProfile(v, opt);
  ASSERT_TRUE(mp.ok());
  const size_t num = v.size() - opt.window + 1;
  ASSERT_EQ(mp->num_windows(), num);
  const size_t excl = opt.window / 2;
  for (size_t i = 0; i < num; ++i) {
    double best = std::numeric_limits<double>::infinity();
    size_t best_j = 0;
    for (size_t j = 0; j < num; ++j) {
      const size_t gap = j > i ? j - i : i - j;
      if (gap <= excl) continue;
      const double d = BruteZDist(v, i, j, opt.window);
      if (d < best) {
        best = d;
        best_j = j;
      }
    }
    EXPECT_NEAR(mp->profile[i], best, 1e-6) << "window " << i;
    // The index must achieve (within fp noise) the same distance.
    EXPECT_NEAR(BruteZDist(v, i, mp->index[i], opt.window), best, 1e-6)
        << "window " << i << " got j=" << best_j;
  }
}

TEST(MatrixProfile, ExclusionZoneBlocksTrivialMatches) {
  const std::vector<double> v = NoisySeries(3, 300);
  MatrixProfileOptions opt;
  opt.window = 32;
  const auto mp = ComputeMatrixProfile(v, opt);
  ASSERT_TRUE(mp.ok());
  for (size_t i = 0; i < mp->num_windows(); ++i) {
    const size_t j = mp->index[i];
    const size_t gap = j > i ? j - i : i - j;
    EXPECT_GT(gap, opt.window / 2) << i;
  }
}

TEST(MatrixProfile, PlantedMotifIsGlobalMinimum) {
  Rng rng(4);
  std::vector<double> v = NoisySeries(5, 600);
  std::vector<double> pattern(48);
  for (size_t t = 0; t < pattern.size(); ++t)
    pattern[t] = 6.0 * std::sin(2.0 * M_PI * static_cast<double>(t) / 12.0);
  for (size_t t = 0; t < pattern.size(); ++t) {
    v[120 + t] = pattern[t] + 0.01 * rng.Gaussian();
    v[430 + t] = pattern[t] + 0.01 * rng.Gaussian();
  }
  MatrixProfileOptions opt;
  opt.window = 48;
  const auto mp = ComputeMatrixProfile(v, opt);
  ASSERT_TRUE(mp.ok());
  const auto [a, b] = TopMotif(*mp);
  EXPECT_NEAR(static_cast<double>(a), 120.0, 2.0);
  EXPECT_NEAR(static_cast<double>(b), 430.0, 2.0);
}

TEST(MatrixProfile, PlantedDiscordIsTopAnomaly) {
  // A periodic signal with one corrupted cycle: the discord.
  std::vector<double> v(800);
  for (size_t t = 0; t < v.size(); ++t)
    v[t] = std::sin(2.0 * M_PI * static_cast<double>(t) / 40.0);
  Rng rng(6);
  for (size_t t = 400; t < 440; ++t) v[t] = rng.Uniform(-2.0, 2.0);

  MatrixProfileOptions opt;
  opt.window = 40;
  const auto mp = ComputeMatrixProfile(v, opt);
  ASSERT_TRUE(mp.ok());
  const std::vector<size_t> discords = TopDiscords(*mp, 1);
  ASSERT_EQ(discords.size(), 1u);
  // The discord window overlaps the corrupted cycle.
  EXPECT_GE(discords[0] + opt.window, 400u);
  EXPECT_LE(discords[0], 440u);
}

TEST(MatrixProfile, TopDiscordsAreMutuallyNonOverlapping) {
  const std::vector<double> v = NoisySeries(7, 500);
  MatrixProfileOptions opt;
  opt.window = 25;
  const auto mp = ComputeMatrixProfile(v, opt);
  ASSERT_TRUE(mp.ok());
  const std::vector<size_t> discords = TopDiscords(*mp, 5);
  ASSERT_EQ(discords.size(), 5u);
  for (size_t i = 0; i < discords.size(); ++i) {
    for (size_t j = i + 1; j < discords.size(); ++j) {
      const size_t gap = discords[i] > discords[j]
                             ? discords[i] - discords[j]
                             : discords[j] - discords[i];
      EXPECT_GE(gap, opt.window);
    }
  }
}

TEST(MatrixProfile, FlatRegionsHandled) {
  // Constant stretches have zero variance; they must neither crash nor
  // produce non-finite values.
  std::vector<double> v(300, 1.0);
  Rng rng(8);
  for (size_t t = 150; t < 300; ++t) v[t] = rng.Gaussian();
  MatrixProfileOptions opt;
  opt.window = 20;
  const auto mp = ComputeMatrixProfile(v, opt);
  ASSERT_TRUE(mp.ok());
  for (const double d : mp->profile) {
    EXPECT_TRUE(std::isfinite(d));
    EXPECT_GE(d, 0.0);
  }
  // Two flat windows are identical under z-normalization: distance 0.
  EXPECT_NEAR(mp->profile[0], 0.0, 1e-9);
}

TEST(MatrixProfile, RepeatedSignalHasLowProfileEverywhere) {
  // A clean periodic signal: every window recurs, so the whole profile is
  // near zero.
  std::vector<double> v(400);
  for (size_t t = 0; t < v.size(); ++t)
    v[t] = std::cos(2.0 * M_PI * static_cast<double>(t) / 25.0);
  MatrixProfileOptions opt;
  opt.window = 25;
  const auto mp = ComputeMatrixProfile(v, opt);
  ASSERT_TRUE(mp.ok());
  for (const double d : mp->profile) EXPECT_LT(d, 1e-5);
}

}  // namespace
}  // namespace sapla
