// Structural and search tests for the DBCH-tree.

#include "index/dbch_tree.h"

#include <cmath>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "util/rng.h"

namespace sapla {
namespace {

// A simple 1-D entry universe: entry id -> scalar value; distance = |a - b|.
class ScalarUniverse {
 public:
  explicit ScalarUniverse(std::vector<double> values)
      : values_(std::move(values)) {}

  DbchTree::PairDistFn PairDist() const {
    return [this](size_t a, size_t b) {
      return std::fabs(values_[a] - values_[b]);
    };
  }
  DbchTree::QueryDistFn QueryDist(double q) const {
    return [this, q](size_t id) { return std::fabs(values_[id] - q); };
  }
  double value(size_t id) const { return values_[id]; }
  size_t size() const { return values_.size(); }

 private:
  std::vector<double> values_;
};

ScalarUniverse RandomUniverse(uint64_t seed, size_t count) {
  Rng rng(seed);
  std::vector<double> v(count);
  for (auto& x : v) x = rng.Uniform(-100.0, 100.0);
  return ScalarUniverse(std::move(v));
}

TEST(DbchTree, AllEntriesReachable) {
  const ScalarUniverse u = RandomUniverse(1, 200);
  DbchTree tree(u.PairDist());
  for (size_t i = 0; i < u.size(); ++i) tree.Insert(i);
  EXPECT_EQ(tree.size(), u.size());

  std::set<size_t> seen;
  tree.BestFirstSearch([](size_t) { return 0.0; },
                       [&](size_t id, double bound) {
                         seen.insert(id);
                         return bound;
                       });
  EXPECT_EQ(seen.size(), u.size());
}

TEST(DbchTree, FillFactorsRespected) {
  const ScalarUniverse u = RandomUniverse(2, 300);
  DbchTree tree(u.PairDist(), DbchTreeOptions{2, 5});
  for (size_t i = 0; i < u.size(); ++i) tree.Insert(i);
  const TreeStats stats = tree.ComputeStats();
  EXPECT_GE(stats.avg_leaf_entries, 2.0);
  EXPECT_LE(stats.avg_leaf_entries, 5.0);
  EXPECT_EQ(stats.entries, 300u);
}

TEST(DbchTree, HigherLeafOccupancyThanMinimum) {
  // The paper's Fig. 15: DBCH leaves average ~4 entries (vs ~2 for the
  // R-tree under APCA MBRs). Distance-based grouping should keep occupancy
  // well above the minimum fill on clustered data.
  Rng rng(3);
  std::vector<double> values;
  for (int cluster = 0; cluster < 10; ++cluster) {
    const double center = rng.Uniform(-1000.0, 1000.0);
    for (int i = 0; i < 30; ++i) values.push_back(center + rng.Gaussian());
  }
  const ScalarUniverse u{values};
  DbchTree tree(u.PairDist(), DbchTreeOptions{2, 5});
  for (size_t i = 0; i < u.size(); ++i) tree.Insert(i);
  EXPECT_GE(tree.ComputeStats().avg_leaf_entries, 2.5);
}

TEST(DbchTree, NearestNeighborFoundOnScalarData) {
  // In 1-D with the exact metric, the hull rule is conservative enough for
  // best-first search to find the true NN.
  const ScalarUniverse u = RandomUniverse(4, 150);
  DbchTree tree(u.PairDist());
  for (size_t i = 0; i < u.size(); ++i) tree.Insert(i);

  Rng rng(44);
  for (int trial = 0; trial < 20; ++trial) {
    const double q = rng.Uniform(-120.0, 120.0);
    double best = 1e300;
    for (size_t i = 0; i < u.size(); ++i)
      best = std::min(best, std::fabs(u.value(i) - q));

    double found = 1e300;
    tree.BestFirstSearch(u.QueryDist(q), [&](size_t id, double bound) {
      found = std::min(found, std::fabs(u.value(id) - q));
      return std::min(bound, found);
    });
    EXPECT_NEAR(found, best, 1e-12);
  }
}

TEST(DbchTree, SearchPrunesOnClusteredData) {
  Rng rng(5);
  std::vector<double> values;
  for (int cluster = 0; cluster < 8; ++cluster) {
    const double center = rng.Uniform(-5000.0, 5000.0);
    for (int i = 0; i < 40; ++i) values.push_back(center + rng.Gaussian());
  }
  const ScalarUniverse u{values};
  DbchTree tree(u.PairDist());
  for (size_t i = 0; i < u.size(); ++i) tree.Insert(i);

  const double q = u.value(13);
  size_t touched = 0;
  double found = 1e300;
  tree.BestFirstSearch(u.QueryDist(q), [&](size_t id, double bound) {
    ++touched;
    found = std::min(found, std::fabs(u.value(id) - q));
    return std::min(bound, found);
  });
  EXPECT_NEAR(found, 0.0, 1e-12);
  EXPECT_LT(touched, u.size() / 2);
}

TEST(DbchTree, SingleEntryTree) {
  const ScalarUniverse u{std::vector<double>{42.0}};
  DbchTree tree(u.PairDist());
  tree.Insert(0);
  const TreeStats stats = tree.ComputeStats();
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_EQ(stats.height, 1u);
  double found = -1;
  tree.BestFirstSearch(u.QueryDist(40.0), [&](size_t id, double bound) {
    found = std::fabs(u.value(id) - 40.0);
    return std::min(bound, found);
  });
  EXPECT_DOUBLE_EQ(found, 2.0);
}

TEST(DbchTree, DuplicateEntriesAllRetained) {
  const ScalarUniverse u{std::vector<double>(25, 7.0)};
  DbchTree tree(u.PairDist());
  for (size_t i = 0; i < u.size(); ++i) tree.Insert(i);
  std::set<size_t> seen;
  tree.BestFirstSearch([](size_t) { return 0.0; },
                       [&](size_t id, double bound) {
                         seen.insert(id);
                         return bound;
                       });
  EXPECT_EQ(seen.size(), 25u);
}

class DbchScaleSweep : public ::testing::TestWithParam<size_t> {};

TEST_P(DbchScaleSweep, StructureScalesWithEntries) {
  const size_t count = GetParam();
  const ScalarUniverse u = RandomUniverse(count, count);
  DbchTree tree(u.PairDist(), DbchTreeOptions{2, 5});
  for (size_t i = 0; i < u.size(); ++i) tree.Insert(i);
  const TreeStats stats = tree.ComputeStats();
  EXPECT_EQ(stats.entries, count);
  EXPECT_GE(stats.leaf_nodes, count / 5);
  const size_t bound =
      static_cast<size_t>(std::ceil(std::log2(static_cast<double>(count)))) +
      2;
  EXPECT_LE(stats.height, bound);
}

INSTANTIATE_TEST_SUITE_P(Sizes, DbchScaleSweep,
                         ::testing::Values(10, 50, 100, 500));

}  // namespace
}  // namespace sapla
