// Tests for the mining layer: k-means clustering and changepoint detection.

#include <cmath>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "mining/kmeans.h"
#include "mining/segmentation.h"
#include "ts/synthetic_archive.h"
#include "util/rng.h"

namespace sapla {
namespace {

// Three well-separated waveform clusters.
Dataset SeparatedClusters(size_t per_cluster = 15, size_t n = 128) {
  Rng rng(11);
  Dataset ds;
  ds.name = "separated";
  for (int cls = 0; cls < 3; ++cls) {
    for (size_t i = 0; i < per_cluster; ++i) {
      std::vector<double> v(n);
      for (size_t t = 0; t < n; ++t) {
        const double u = static_cast<double>(t) / static_cast<double>(n);
        switch (cls) {
          case 0: v[t] = std::sin(2.0 * M_PI * 3.0 * u); break;
          case 1: v[t] = 2.0 * u - 1.0; break;
          default: v[t] = u < 0.5 ? 1.0 : -1.0; break;
        }
        v[t] += 0.05 * rng.Gaussian();
      }
      ds.series.emplace_back(std::move(v), cls);
    }
  }
  return ds;
}

TEST(KMeans, ValidatesOptions) {
  const Dataset ds = SeparatedClusters();
  KMeansOptions opt;
  opt.k = 0;
  EXPECT_FALSE(KMeansCluster(ds, opt).ok());
  opt.k = ds.size() + 1;
  EXPECT_FALSE(KMeansCluster(ds, opt).ok());
  EXPECT_FALSE(KMeansCluster(Dataset{}, KMeansOptions{}).ok());
}

TEST(KMeans, RecoversSeparatedClusters) {
  const Dataset ds = SeparatedClusters();
  KMeansOptions opt;
  opt.k = 3;
  const auto result = KMeansCluster(ds, opt);
  ASSERT_TRUE(result.ok());
  // Every true class must map to exactly one cluster id (purity 1).
  std::vector<std::set<size_t>> clusters_of_class(3);
  for (size_t i = 0; i < ds.size(); ++i)
    clusters_of_class[static_cast<size_t>(ds.series[i].label)].insert(
        result->assignment[i]);
  std::set<size_t> used;
  for (const auto& c : clusters_of_class) {
    EXPECT_EQ(c.size(), 1u);
    used.insert(*c.begin());
  }
  EXPECT_EQ(used.size(), 3u);
}

TEST(KMeans, SingleClusterCentroidIsMean) {
  const Dataset ds = SeparatedClusters(5, 32);
  KMeansOptions opt;
  opt.k = 1;
  const auto result = KMeansCluster(ds, opt);
  ASSERT_TRUE(result.ok());
  for (size_t t = 0; t < ds.length(); ++t) {
    double mean = 0.0;
    for (const TimeSeries& ts : ds.series) mean += ts.values[t];
    mean /= static_cast<double>(ds.size());
    EXPECT_NEAR(result->centroids[0][t], mean, 1e-9);
  }
}

TEST(KMeans, FilterSkipsExactComputations) {
  const Dataset ds = SeparatedClusters(20, 256);
  KMeansOptions plain;
  plain.k = 3;
  plain.use_reduced_filter = false;
  KMeansOptions filtered = plain;
  filtered.use_reduced_filter = true;

  const auto a = KMeansCluster(ds, plain);
  const auto b = KMeansCluster(ds, filtered);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_LT(b->exact_distance_computations, a->exact_distance_computations);
  // Same seeding; the filter's rare lower-bound slips may perturb single
  // assignments but the clustering quality must match closely.
  EXPECT_NEAR(b->inertia, a->inertia, 0.05 * a->inertia + 1e-9);
}

TEST(KMeans, DeterministicForFixedSeed) {
  const Dataset ds = SeparatedClusters();
  KMeansOptions opt;
  opt.k = 3;
  opt.seed = 77;
  const auto a = KMeansCluster(ds, opt);
  const auto b = KMeansCluster(ds, opt);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->assignment, b->assignment);
  EXPECT_DOUBLE_EQ(a->inertia, b->inertia);
}

TEST(KMeans, KEqualsNZeroInertia) {
  const Dataset ds = SeparatedClusters(3, 32);  // 9 series
  KMeansOptions opt;
  opt.k = ds.size();
  const auto result = KMeansCluster(ds, opt);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->inertia, 0.0, 1e-9);
}

TEST(Changepoints, ExactOnCleanRegimeChanges) {
  // Three linear regimes with breaks at 49 and 99.
  std::vector<double> v;
  for (int t = 0; t < 50; ++t) v.push_back(0.2 * t);
  for (int t = 0; t < 50; ++t) v.push_back(10.0 - 0.5 * t);
  for (int t = 0; t < 50; ++t) v.push_back(-15.0 + 1.0 * t);
  for (const SegmenterKind kind :
       {SegmenterKind::kSapla, SegmenterKind::kApla}) {
    const std::vector<size_t> cps = DetectChangepoints(v, 2, kind);
    ASSERT_EQ(cps.size(), 2u);
    EXPECT_NEAR(static_cast<double>(cps[0]), 49.0, 1.0);
    EXPECT_NEAR(static_cast<double>(cps[1]), 99.0, 1.0);
  }
}

TEST(Changepoints, NoisyRegimesRecoveredWithinTolerance) {
  Rng rng(5);
  std::vector<double> v;
  const std::vector<double> slopes{0.3, -0.4, 0.1, 0.6};
  double level = 0.0;
  std::vector<size_t> truth;
  for (size_t r = 0; r < slopes.size(); ++r) {
    for (int t = 0; t < 60; ++t) {
      level += slopes[r];
      v.push_back(level + 0.3 * rng.Gaussian());
    }
    if (r + 1 < slopes.size()) truth.push_back(v.size() - 1);
  }
  const std::vector<size_t> sapla_cps =
      DetectChangepoints(v, 3, SegmenterKind::kSapla);
  const std::vector<size_t> apla_cps =
      DetectChangepoints(v, 3, SegmenterKind::kApla);
  EXPECT_GE(ChangepointRecall(sapla_cps, truth, 10), 2.0 / 3.0);
  EXPECT_GE(ChangepointRecall(apla_cps, truth, 10), 2.0 / 3.0);
}

TEST(ChangepointRecall, ScoringRules) {
  EXPECT_DOUBLE_EQ(ChangepointRecall({10, 20}, {}, 5), 1.0);
  EXPECT_DOUBLE_EQ(ChangepointRecall({}, {10}, 5), 0.0);
  EXPECT_DOUBLE_EQ(ChangepointRecall({12}, {10}, 2), 1.0);
  EXPECT_DOUBLE_EQ(ChangepointRecall({13}, {10}, 2), 0.0);
  // One detection cannot match two true points.
  EXPECT_DOUBLE_EQ(ChangepointRecall({10}, {10, 11}, 2), 0.5);
}

}  // namespace
}  // namespace sapla
