// Tests for the iSAX variable-cardinality index.

#include "index/isax_tree.h"

#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "search/metrics.h"
#include "ts/synthetic_archive.h"
#include "util/rng.h"

namespace sapla {
namespace {

Dataset MakeData(size_t id = 2, size_t n = 128, size_t count = 200) {
  SyntheticOptions opt;
  opt.length = n;
  opt.num_series = count;
  return MakeSyntheticDataset(id, opt);
}

TEST(IsaxIndex, BuildValidation) {
  IsaxIndex index;
  Dataset empty;
  EXPECT_FALSE(index.Build(empty).ok());
  Dataset tiny = MakeData(1, 4, 3);  // shorter than word length 8
  EXPECT_FALSE(index.Build(tiny).ok());
}

TEST(IsaxIndex, AllEntriesReachable) {
  const Dataset ds = MakeData();
  IsaxIndex index;
  ASSERT_TRUE(index.Build(ds).ok());
  EXPECT_EQ(index.size(), ds.size());
  // An unbounded range query through exact k-NN with k = all.
  const KnnResult res = index.Knn(ds.series[0].values, ds.size());
  std::set<size_t> seen;
  for (const auto& [dist, id] : res.neighbors) seen.insert(id);
  EXPECT_EQ(seen.size(), ds.size());
}

TEST(IsaxIndex, LeavesRespectCapacity) {
  const Dataset ds = MakeData(3, 128, 300);
  IsaxIndex::Options opt;
  opt.leaf_capacity = 8;
  IsaxIndex index(opt);
  ASSERT_TRUE(index.Build(ds).ok());
  const TreeStats stats = index.ComputeStats();
  EXPECT_GT(stats.leaf_nodes, 300u / 8u / 2u);
  // Mean occupancy cannot exceed capacity unless cardinality saturated.
  EXPECT_LE(stats.avg_leaf_entries, 8.0 + 1e-9);
}

TEST(IsaxIndex, ExactKnnMatchesLinearScan) {
  const Dataset ds = MakeData(5);
  IsaxIndex index;
  ASSERT_TRUE(index.Build(ds).ok());
  for (const size_t qi : {0u, 57u, 123u}) {
    const std::vector<double>& q = ds.series[qi].values;
    const KnnResult truth = LinearScanKnn(ds, q, 7);
    const KnnResult res = index.Knn(q, 7);
    EXPECT_DOUBLE_EQ(Accuracy(res, truth, 7), 1.0) << "query " << qi;
    for (size_t i = 0; i < res.neighbors.size(); ++i)
      EXPECT_NEAR(res.neighbors[i].first, truth.neighbors[i].first, 1e-9);
  }
}

TEST(IsaxIndex, ExactKnnPrunesOnClusteredData) {
  // Two far-apart level clusters: the query's cluster resolves to different
  // symbols than the other, which MINDIST must prune.
  Rng rng(66);
  Dataset ds;
  ds.name = "levels";
  for (int cluster = 0; cluster < 2; ++cluster) {
    for (int i = 0; i < 150; ++i) {
      std::vector<double> v(128);
      for (size_t t = 0; t < v.size(); ++t) {
        const double base = cluster == 0 ? -1.0 : 1.0;
        // Alternate halves so the PAA word is informative.
        v[t] = (t < 64 ? base : -base) + 0.05 * rng.Gaussian();
      }
      ds.series.emplace_back(std::move(v), cluster);
    }
  }
  IsaxIndex index;
  ASSERT_TRUE(index.Build(ds).ok());
  const KnnResult res = index.Knn(ds.series[11].values, 3);
  EXPECT_LT(res.num_measured, ds.size() / 2 + 10);
  for (const auto& [dist, id] : res.neighbors)
    EXPECT_EQ(ds.series[id].label, 0);
}

TEST(IsaxIndex, ApproximateSearchTouchesOneLeaf) {
  const Dataset ds = MakeData(7, 128, 300);
  IsaxIndex::Options opt;
  opt.leaf_capacity = 10;
  IsaxIndex index(opt);
  ASSERT_TRUE(index.Build(ds).ok());
  const KnnResult res = index.KnnApproximate(ds.series[42].values, 3);
  EXPECT_LE(res.num_measured, 10u + 1u);
  ASSERT_GE(res.neighbors.size(), 1u);
  // The query's own series shares its leaf, so the top hit is itself.
  EXPECT_EQ(res.neighbors[0].second, 42u);
  EXPECT_NEAR(res.neighbors[0].first, 0.0, 1e-9);
}

TEST(IsaxIndex, ApproximateIsReasonableExactIsBetter) {
  const Dataset ds = MakeData(8, 128, 250);
  IsaxIndex index;
  ASSERT_TRUE(index.Build(ds).ok());
  Rng rng(9);
  double approx_acc = 0.0;
  int queries = 0;
  for (int trial = 0; trial < 10; ++trial) {
    const size_t qi = rng.UniformInt(ds.size());
    const KnnResult truth = LinearScanKnn(ds, ds.series[qi].values, 5);
    const KnnResult approx = index.KnnApproximate(ds.series[qi].values, 5);
    approx_acc += Accuracy(approx, truth, 5);
    ++queries;
  }
  approx_acc /= queries;
  EXPECT_GT(approx_acc, 0.2);  // useful, far better than random
  EXPECT_LE(approx_acc, 1.0);
}

TEST(IsaxIndex, DeterministicStructure) {
  const Dataset ds = MakeData(9, 64, 150);
  IsaxIndex a, b;
  ASSERT_TRUE(a.Build(ds).ok());
  ASSERT_TRUE(b.Build(ds).ok());
  const TreeStats sa = a.ComputeStats(), sb = b.ComputeStats();
  EXPECT_EQ(sa.leaf_nodes, sb.leaf_nodes);
  EXPECT_EQ(sa.internal_nodes, sb.internal_nodes);
  EXPECT_EQ(sa.height, sb.height);
}

}  // namespace
}  // namespace sapla
