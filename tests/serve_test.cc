// Tests for the embedded query-serving subsystem (serve/service.h).
//
// The load-bearing contract is determinism: answers served through the
// admission queue + micro-batching scheduler must be bit-identical to
// per-request serial execution — same neighbor pairs, same num_measured —
// for every Method x IndexKind, at 1/2/8 execution threads and at
// max_batch 1 (one-at-a-time), 4 and 32, and must also match a direct
// KnnBatch call. On top of that: backpressure (kOverloaded on a full
// queue, resolved immediately), deadlines (kDeadlineExceeded, optionally
// with an approximate lower-bound answer), the result cache (hits,
// accounting, invalidation) and shutdown semantics.

#include "serve/service.h"

#include <chrono>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "ts/synthetic_archive.h"
#include "util/fault.h"

namespace sapla {
namespace {

Dataset SmallDataset(size_t id = 12, size_t n = 96, size_t count = 50) {
  SyntheticOptions opt;
  opt.length = n;
  opt.num_series = count;
  return MakeSyntheticDataset(id, opt);
}

std::vector<std::vector<double>> SomeQueries(const Dataset& ds) {
  std::vector<std::vector<double>> queries;
  for (const size_t qi : {0u, 7u, 19u, 33u, 41u, 48u})
    queries.push_back(ds.series[qi].values);
  return queries;
}

void ExpectSameResult(const KnnResult& expected, const KnnResult& actual,
                      const std::string& label) {
  ASSERT_EQ(expected.neighbors.size(), actual.neighbors.size()) << label;
  for (size_t i = 0; i < expected.neighbors.size(); ++i) {
    EXPECT_EQ(expected.neighbors[i].second, actual.neighbors[i].second)
        << label << " rank " << i;
    EXPECT_EQ(expected.neighbors[i].first, actual.neighbors[i].first)
        << label << " rank " << i;  // bit-identical distances
  }
  EXPECT_EQ(expected.num_measured, actual.num_measured) << label;
}

struct ServeCase {
  Method method;
  IndexKind kind;
};

class ServeDeterminism : public ::testing::TestWithParam<ServeCase> {};

TEST_P(ServeDeterminism, MicroBatchedAnswersMatchSerialAndDirectBatch) {
  const auto [method, kind] = GetParam();
  const Dataset ds = SmallDataset();
  SimilarityIndex index(method, 12, kind);
  ASSERT_TRUE(index.Build(ds).ok()) << MethodName(method);

  const size_t k = 5;
  const double radius = 8.0;
  const std::vector<std::vector<double>> queries = SomeQueries(ds);

  // Ground truth: per-request serial execution, and the direct batch APIs
  // (whose own equivalence batch_query_test already proves).
  std::vector<KnnResult> serial_knn, serial_range;
  for (const std::vector<double>& q : queries) {
    serial_knn.push_back(index.Knn(q, k));
    serial_range.push_back(index.RangeSearch(q, radius));
  }
  const std::vector<KnnResult> direct_knn = index.KnnBatch(queries, k);

  for (const size_t threads : {1u, 2u, 8u}) {
    for (const size_t max_batch : {1u, 4u, 32u}) {
      ServeOptions opt;
      opt.queue_capacity = 256;
      opt.max_batch = max_batch;
      opt.max_delay_us = 100;
      opt.num_threads = threads;
      opt.cache_capacity = 0;  // no short-circuiting in this test
      QueryService service(index, opt);

      std::vector<std::future<ServeResponse>> knn_futures, range_futures;
      for (const std::vector<double>& q : queries) {
        knn_futures.push_back(service.SubmitKnn(q, k));
        range_futures.push_back(service.SubmitRange(q, radius));
      }
      const std::string label = MethodName(method) + "/" +
                                IndexKindName(kind) + " threads=" +
                                std::to_string(threads) + " max_batch=" +
                                std::to_string(max_batch);
      for (size_t i = 0; i < queries.size(); ++i) {
        const ServeResponse knn = knn_futures[i].get();
        ASSERT_TRUE(knn.status.ok()) << label << ": " << knn.status.ToString();
        EXPECT_FALSE(knn.approximate);
        ExpectSameResult(serial_knn[i], knn.result,
                         label + " knn q" + std::to_string(i));
        ExpectSameResult(direct_knn[i], knn.result,
                         label + " direct q" + std::to_string(i));

        const ServeResponse range = range_futures[i].get();
        ASSERT_TRUE(range.status.ok())
            << label << ": " << range.status.ToString();
        ExpectSameResult(serial_range[i], range.result,
                         label + " range q" + std::to_string(i));
      }
      const ServeMetricsSnapshot snap = service.MetricsSnapshot();
      EXPECT_EQ(snap.admitted, queries.size() * 2) << label;
      EXPECT_EQ(snap.completed_ok, queries.size() * 2) << label;
      EXPECT_EQ(snap.rejected_overloaded, 0u) << label;
      EXPECT_EQ(snap.deadline_exceeded, 0u) << label;
    }
  }
}

std::vector<ServeCase> AllServeCases() {
  std::vector<ServeCase> cases;
  for (const Method method : AllMethods())
    for (const IndexKind kind : {IndexKind::kRTree, IndexKind::kDbchTree})
      cases.push_back({method, kind});
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    MethodsTimesTrees, ServeDeterminism, ::testing::ValuesIn(AllServeCases()),
    [](const ::testing::TestParamInfo<ServeCase>& info) {
      return MethodName(info.param.method) +
             (info.param.kind == IndexKind::kRTree ? "_RTree" : "_DbchTree");
    });

class ServeFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    ds_ = SmallDataset(21);
    index_ = std::make_unique<SimilarityIndex>(Method::kSapla, 12,
                                               IndexKind::kDbchTree);
    ASSERT_TRUE(index_->Build(ds_).ok());
  }

  Dataset ds_;
  std::unique_ptr<SimilarityIndex> index_;
};

TEST_F(ServeFixture, FullQueueRejectsWithOverloadedImmediately) {
  ServeOptions opt;
  opt.queue_capacity = 4;
  // Neither flush trigger can fire while we submit: the size trigger is
  // out of reach and the delay window is far longer than the loop below.
  opt.max_batch = 1 << 20;
  opt.max_delay_us = 200'000;
  QueryService service(*index_, opt);

  const std::vector<double>& q = ds_.series[0].values;
  std::vector<std::future<ServeResponse>> futures;
  size_t rejected_now = 0;
  for (size_t i = 0; i < 40; ++i) {
    futures.push_back(service.SubmitKnn(q, 3));
    // A rejection resolves the future before Submit returns.
    if (futures.back().wait_for(std::chrono::seconds(0)) ==
        std::future_status::ready)
      ++rejected_now;
  }
  // The queue holds at most 4; everything else must have been rejected
  // promptly, not parked.
  EXPECT_GE(rejected_now, 40u - opt.queue_capacity);

  size_t ok = 0, overloaded = 0;
  for (auto& f : futures) {
    const ServeResponse r = f.get();
    if (r.status.ok())
      ++ok;
    else if (r.status.code() == StatusCode::kOverloaded)
      ++overloaded;
  }
  EXPECT_EQ(ok + overloaded, 40u);
  EXPECT_LE(ok, opt.queue_capacity);
  EXPECT_GE(overloaded, 40u - opt.queue_capacity);

  const ServeMetricsSnapshot snap = service.MetricsSnapshot();
  EXPECT_EQ(snap.admitted, ok);
  EXPECT_EQ(snap.rejected_overloaded, overloaded);
}

TEST_F(ServeFixture, ExpiredRequestsReturnDeadlineExceeded) {
  ServeOptions opt;
  opt.queue_capacity = 64;
  opt.max_batch = 1 << 20;     // only the 50ms window flushes
  opt.max_delay_us = 50'000;
  QueryService service(*index_, opt);

  std::vector<std::future<ServeResponse>> futures;
  for (size_t i = 0; i < 5; ++i)
    futures.push_back(
        service.SubmitKnn(ds_.series[i].values, 3, /*deadline_us=*/1000));
  for (auto& f : futures) {
    const ServeResponse r = f.get();
    EXPECT_EQ(r.status.code(), StatusCode::kDeadlineExceeded)
        << r.status.ToString();
    EXPECT_TRUE(r.result.neighbors.empty());
    EXPECT_FALSE(r.approximate);
  }
  EXPECT_EQ(service.MetricsSnapshot().deadline_exceeded, 5u);
}

TEST_F(ServeFixture, DegradedAnswersComeFromLowerBoundsOnly) {
  ServeOptions opt;
  opt.queue_capacity = 64;
  opt.max_batch = 1 << 20;
  opt.max_delay_us = 50'000;
  opt.degraded_answers = true;
  QueryService service(*index_, opt);

  const std::vector<double>& q = ds_.series[9].values;
  const ServeResponse r = service.Knn(q, 4, /*deadline_us=*/1000);
  EXPECT_EQ(r.status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_TRUE(r.approximate);
  EXPECT_EQ(r.result.num_measured, 0u);  // no raw series touched
  ExpectSameResult(index_->KnnLowerBound(q, 4), r.result, "degraded knn");
  EXPECT_EQ(service.MetricsSnapshot().degraded, 1u);
}

TEST_F(ServeFixture, CacheHitsRepeatedQueriesAndInvalidates) {
  ServeOptions opt;
  opt.max_batch = 1;  // flush each request immediately
  opt.max_delay_us = 0;
  opt.cache_capacity = 64;
  opt.cache_shards = 4;
  QueryService service(*index_, opt);

  const std::vector<double>& q = ds_.series[3].values;
  const ServeResponse first = service.Knn(q, 5);
  ASSERT_TRUE(first.status.ok());
  EXPECT_FALSE(first.cache_hit);

  const ServeResponse second = service.Knn(q, 5);
  ASSERT_TRUE(second.status.ok());
  EXPECT_TRUE(second.cache_hit);
  ExpectSameResult(first.result, second.result, "cached knn");

  // A different k is a different key.
  EXPECT_FALSE(service.Knn(q, 6).cache_hit);
  // Range and kNN do not alias.
  EXPECT_FALSE(service.Range(q, 8.0).cache_hit);
  EXPECT_TRUE(service.Range(q, 8.0).cache_hit);

  ServeMetricsSnapshot snap = service.MetricsSnapshot();
  EXPECT_EQ(snap.cache_hits, 2u);
  EXPECT_EQ(snap.cache_misses, 3u);

  service.InvalidateCache();
  EXPECT_FALSE(service.Knn(q, 5).cache_hit);
}

TEST_F(ServeFixture, StopDrainsPendingAndRejectsNewRequests) {
  ServeOptions opt;
  opt.queue_capacity = 64;
  opt.max_batch = 1 << 20;
  opt.max_delay_us = 500'000;  // pending requests sit until Stop drains them
  QueryService service(*index_, opt);

  std::vector<std::future<ServeResponse>> futures;
  for (size_t i = 0; i < 3; ++i)
    futures.push_back(service.SubmitKnn(ds_.series[i].values, 3));
  service.Stop();
  for (size_t i = 0; i < futures.size(); ++i) {
    const ServeResponse r = futures[i].get();
    ASSERT_TRUE(r.status.ok()) << r.status.ToString();
    ExpectSameResult(index_->Knn(ds_.series[i].values, 3), r.result,
                     "drained q" + std::to_string(i));
  }
  const ServeResponse after = service.Knn(ds_.series[0].values, 3);
  EXPECT_EQ(after.status.code(), StatusCode::kUnavailable);
}

TEST_F(ServeFixture, WrongQueryLengthIsInvalidArgument) {
  QueryService service(*index_);
  const ServeResponse r = service.Knn(std::vector<double>(7, 0.0), 3);
  EXPECT_EQ(r.status.code(), StatusCode::kInvalidArgument);
}

TEST_F(ServeFixture, ConcurrentClientsGetSerialAnswers) {
  ServeOptions opt;
  opt.max_batch = 16;
  opt.max_delay_us = 200;
  opt.cache_capacity = 128;
  QueryService service(*index_, opt);

  constexpr size_t kClients = 6;
  constexpr size_t kPerClient = 30;
  std::vector<std::thread> clients;
  std::vector<std::string> failures(kClients);
  for (size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (size_t i = 0; i < kPerClient; ++i) {
        const size_t qi = (c * 13 + i * 7) % ds_.size();
        const ServeResponse r = service.Knn(ds_.series[qi].values, 4);
        if (!r.status.ok()) {
          failures[c] = r.status.ToString();
          return;
        }
        const KnnResult expected = index_->Knn(ds_.series[qi].values, 4);
        if (expected.neighbors != r.result.neighbors ||
            expected.num_measured != r.result.num_measured) {
          failures[c] = "mismatch at client " + std::to_string(c) +
                        " query " + std::to_string(qi);
          return;
        }
      }
    });
  }
  for (auto& t : clients) t.join();
  for (const std::string& f : failures) EXPECT_EQ(f, "");
  const ServeMetricsSnapshot snap = service.MetricsSnapshot();
  EXPECT_EQ(snap.completed_ok, kClients * kPerClient);
  EXPECT_GT(snap.cache_hits, 0u);  // clients repeat query indices
}

TEST_F(ServeFixture, DeadlineRacingTheFlushIsAlwaysExactOrExpired) {
  // Deadlines chosen to land right on the flush window: whether each
  // request wins or loses its race is timing-dependent, but the outcome
  // space is not — every response is either a bit-exact OK answer or a
  // clean kDeadlineExceeded. Nothing in between, nothing torn.
  ServeOptions opt;
  opt.queue_capacity = 256;
  opt.max_batch = 4;
  opt.max_delay_us = 2'000;
  opt.cache_capacity = 0;
  opt.degraded_answers = false;
  QueryService service(*index_, opt);

  constexpr size_t kRequests = 200;
  std::vector<std::future<ServeResponse>> futures;
  std::vector<size_t> query_of;
  for (size_t i = 0; i < kRequests; ++i) {
    const size_t qi = (i * 17) % ds_.size();
    query_of.push_back(qi);
    futures.push_back(
        service.SubmitKnn(ds_.series[qi].values, 3, /*deadline_us=*/2'000));
  }

  size_t ok = 0, expired = 0;
  for (size_t i = 0; i < kRequests; ++i) {
    const ServeResponse r = futures[i].get();
    if (r.status.ok()) {
      ++ok;
      EXPECT_FALSE(r.approximate);
      ExpectSameResult(index_->Knn(ds_.series[query_of[i]].values, 3),
                       r.result, "raced q" + std::to_string(i));
    } else {
      ASSERT_EQ(r.status.code(), StatusCode::kDeadlineExceeded)
          << r.status.ToString();
      EXPECT_TRUE(r.result.neighbors.empty());
      ++expired;
    }
  }
  EXPECT_EQ(ok + expired, kRequests);
  const ServeMetricsSnapshot snap = service.MetricsSnapshot();
  EXPECT_EQ(snap.completed_ok, ok);
  EXPECT_EQ(snap.deadline_exceeded, expired);
}

// ---- Resource governance (util/resource_budget.h, docs/ROBUSTNESS.md).

TEST_F(ServeFixture, BudgetMetersCacheAndQueueAndReleasesOnDestruction) {
  auto budget = ResourceBudget::MakeRoot("process", 0);  // pure accounting
  {
    ServeOptions opt;
    opt.max_batch = 1;
    opt.max_delay_us = 0;
    opt.cache_capacity = 64;
    opt.memory_budget = budget;
    QueryService service(*index_, opt);

    for (size_t i = 0; i < 8; ++i)
      ASSERT_TRUE(service.Knn(ds_.series[i].values, 4).status.ok());
    // Cached results are charged to the service's attribution child.
    EXPECT_GT(budget->used(), 0u);
    bool saw_cache = false, saw_queue = false;
    for (const auto& snap : budget->SnapshotTree()) {
      if (snap.name == "serve/cache") {
        saw_cache = true;
        EXPECT_GT(snap.used, 0u);
      }
      if (snap.name == "serve/queue") saw_queue = true;
    }
    EXPECT_TRUE(saw_cache);
    EXPECT_TRUE(saw_queue);
  }
  // The service died: every reservation must have been returned.
  EXPECT_EQ(budget->used(), 0u);
}

TEST_F(ServeFixture, SoftPressureShrinksCacheOncePerEpisode) {
  constexpr size_t kCapacity = 1u << 20;
  auto budget = ResourceBudget::MakeRoot("process", kCapacity);
  ServeOptions opt;
  opt.max_batch = 1;
  opt.max_delay_us = 0;
  opt.cache_capacity = 64;
  opt.memory_budget = budget;
  QueryService service(*index_, opt);

  // An external consumer pushes the root past the soft watermark (0.85 *
  // capacity) but keeps it below hard.
  budget->ForceReserve(900 * 1024);
  ASSERT_EQ(budget->pressure(), BudgetPressure::kSoft);

  const ServeResponse r1 = service.Knn(ds_.series[0].values, 4);
  ASSERT_TRUE(r1.status.ok());
  EXPECT_FALSE(r1.approximate);  // soft never degrades answers
  EXPECT_EQ(service.health(), ServeHealth::kHealthy);
  EXPECT_EQ(service.MetricsSnapshot().budget_cache_shrinks, 1u);

  // Still under pressure: the episode's shrink already happened, a budget
  // hovering at the watermark must not thrash the cache.
  ASSERT_TRUE(service.Knn(ds_.series[1].values, 4).status.ok());
  EXPECT_EQ(service.MetricsSnapshot().budget_cache_shrinks, 1u);

  // Pressure lifts (one request observes it and re-arms), then returns:
  // the next episode gets its own shrink.
  budget->Release(900 * 1024);
  ASSERT_TRUE(service.Knn(ds_.series[2].values, 4).status.ok());
  budget->ForceReserve(900 * 1024);
  ASSERT_TRUE(service.Knn(ds_.series[3].values, 4).status.ok());
  EXPECT_EQ(service.MetricsSnapshot().budget_cache_shrinks, 2u);
  budget->Release(900 * 1024);
}

TEST_F(ServeFixture, HardPressureDegradesReadsAndRecovers) {
  constexpr size_t kCapacity = 1u << 20;
  auto budget = ResourceBudget::MakeRoot("process", kCapacity);
  ServeOptions opt;
  opt.max_batch = 1;
  opt.max_delay_us = 0;
  opt.cache_capacity = 0;
  opt.degraded_answers = true;
  opt.memory_budget = budget;
  QueryService service(*index_, opt);

  budget->ForceReserve(kCapacity);  // hard saturation
  ASSERT_EQ(budget->pressure(), BudgetPressure::kHard);

  const std::vector<double>& q = ds_.series[5].values;
  const KnnResult lb = index_->KnnLowerBound(q, 4);
  size_t degraded_ok = 0, bounced = 0;
  for (int i = 0; i < 9; ++i) {
    const ServeResponse r = service.Knn(q, 4);
    EXPECT_EQ(service.health(), ServeHealth::kDegraded);
    if (r.status.ok()) {
      // Diverted read: lower-bound-only, bit-exact per KnnLowerBound.
      EXPECT_TRUE(r.approximate);
      ExpectSameResult(lb, r.result, "pressure degraded " + std::to_string(i));
      ++degraded_ok;
    } else {
      // Canary probes still try the pipeline, where the saturated budget
      // refuses the queue reservation: ordinary overload, never a crash.
      EXPECT_EQ(r.status.code(), StatusCode::kOverloaded)
          << r.status.ToString();
      ++bounced;
    }
  }
  // Every eighth ladder request is a canary (the first and the ninth).
  EXPECT_EQ(degraded_ok, 7u);
  EXPECT_EQ(bounced, 2u);
  const ServeMetricsSnapshot under = service.MetricsSnapshot();
  EXPECT_EQ(under.budget_degraded, degraded_ok);
  EXPECT_EQ(under.rejected_overloaded, bounced);

  // Pressure lifts: the next request re-reads the budget, health recovers,
  // and answers are exact again — no restart, no manual reset.
  budget->Release(kCapacity);
  const ServeResponse after = service.Knn(q, 4);
  ASSERT_TRUE(after.status.ok()) << after.status.ToString();
  EXPECT_FALSE(after.approximate);
  ExpectSameResult(index_->Knn(q, 4), after.result, "recovered exact");
  EXPECT_EQ(service.health(), ServeHealth::kHealthy);
}

TEST_F(ServeFixture, AdmissionDelayShedsLowPriorityFirst) {
  ServeOptions opt;
  opt.queue_capacity = 64;
  // Nothing flushes during the test: the size trigger is out of reach and
  // the delay window far exceeds it, so the first request ages in place.
  opt.max_batch = 1 << 20;
  opt.max_delay_us = 300'000;
  opt.admission_target_delay_us = 1'000;
  QueryService service(*index_, opt);

  auto first = service.SubmitKnn(ds_.series[0].values, 3);  // queue was empty
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  // The oldest queued request has now waited ~20x the target: low sheds at
  // 1x, normal at 2x, high never sheds early.
  auto low = service.SubmitKnn(ds_.series[1].values, 3, 0, ServePriority::kLow);
  auto normal = service.SubmitKnn(ds_.series[2].values, 3);
  auto high =
      service.SubmitKnn(ds_.series[3].values, 3, 0, ServePriority::kHigh);

  ASSERT_EQ(low.wait_for(std::chrono::seconds(0)), std::future_status::ready);
  ASSERT_EQ(normal.wait_for(std::chrono::seconds(0)),
            std::future_status::ready);
  EXPECT_EQ(high.wait_for(std::chrono::seconds(0)),
            std::future_status::timeout);

  const ServeResponse low_r = low.get();
  EXPECT_EQ(low_r.status.code(), StatusCode::kOverloaded);
  EXPECT_NE(low_r.status.message().find("shedding low"), std::string::npos)
      << low_r.status.message();
  const ServeResponse normal_r = normal.get();
  EXPECT_EQ(normal_r.status.code(), StatusCode::kOverloaded);
  EXPECT_NE(normal_r.status.message().find("shedding normal"),
            std::string::npos)
      << normal_r.status.message();
  EXPECT_EQ(service.MetricsSnapshot().shed_early, 2u);

  // Stop drains the admitted requests; shedding never corrupted them.
  service.Stop();
  ASSERT_TRUE(first.get().status.ok());
  const ServeResponse high_r = high.get();
  ASSERT_TRUE(high_r.status.ok()) << high_r.status.ToString();
  ExpectSameResult(index_->Knn(ds_.series[3].values, 3), high_r.result,
                   "high priority drained");
}

#ifndef SAPLA_FAULT_DISABLED

// Health-ladder tests drive the service through injected flush failures
// (util/fault.h point "serve/flush") — deterministic because probability 1
// with a trigger cap fails exactly the first N flushes.
class ServeHealthLadder : public ServeFixture {
 protected:
  void TearDown() override { fault::Reset(); }

  // One flush per request so failure counting is exact; cache off so the
  // ladder sees every request.
  ServeOptions LadderOptions() {
    ServeOptions opt;
    opt.queue_capacity = 64;
    opt.max_batch = 1;
    opt.max_delay_us = 0;
    opt.cache_capacity = 0;
    opt.degraded_answers = true;
    return opt;
  }

  void FailNextFlushes(uint64_t count) {
    fault::Reset();
    fault::Enable(/*seed=*/11);
    fault::PointConfig cfg;
    cfg.probability = 1.0;
    cfg.max_triggers = count;
    cfg.code = StatusCode::kUnavailable;
    fault::Configure("serve/flush", cfg);
  }
};

TEST_F(ServeHealthLadder, FlushFailuresDegradeThenCanaryRecovers) {
  ServeOptions opt = LadderOptions();
  opt.flush_failures_degraded = 2;
  opt.flush_failures_unhealthy = 0;  // never unhealthy in this test
  QueryService service(*index_, opt);
  const std::vector<double>& q = ds_.series[5].values;

  // Exactly the first three flushes fail: two to cross the degraded
  // threshold, one more for the first canary probe.
  FailNextFlushes(3);

  EXPECT_EQ(service.Knn(q, 4).status.code(), StatusCode::kUnavailable);
  EXPECT_EQ(service.health(), ServeHealth::kHealthy);  // streak 1 < 2
  EXPECT_EQ(service.Knn(q, 4).status.code(), StatusCode::kUnavailable);
  EXPECT_EQ(service.health(), ServeHealth::kDegraded);

  // First degraded request is a canary (it still fails: third trigger).
  EXPECT_EQ(service.Knn(q, 4).status.code(), StatusCode::kUnavailable);
  EXPECT_EQ(service.health(), ServeHealth::kDegraded);

  // The fault is exhausted, but degraded requests bypass the scheduler, so
  // the service cannot observe recovery from them — they are answered
  // inline from the lower-bound index, exact per KnnLowerBound.
  const KnnResult lb = index_->KnnLowerBound(q, 4);
  for (int i = 0; i < 7; ++i) {
    const ServeResponse r = service.Knn(q, 4);
    ASSERT_TRUE(r.status.ok()) << r.status.ToString();
    EXPECT_TRUE(r.approximate);
    ExpectSameResult(lb, r.result, "degraded serve " + std::to_string(i));
    EXPECT_EQ(service.health(), ServeHealth::kDegraded);
  }

  // The eighth ladder request is the next canary: it flows through the
  // pipeline, the flush succeeds, the streak resets, health recovers.
  const ServeResponse canary = service.Knn(q, 4);
  ASSERT_TRUE(canary.status.ok()) << canary.status.ToString();
  EXPECT_FALSE(canary.approximate);
  ExpectSameResult(index_->Knn(q, 4), canary.result, "recovery canary");
  EXPECT_EQ(service.health(), ServeHealth::kHealthy);

  // And a fully healthy service serves exact answers again.
  const ServeResponse after = service.Knn(q, 4);
  ASSERT_TRUE(after.status.ok());
  EXPECT_FALSE(after.approximate);

  const ServeMetricsSnapshot snap = service.MetricsSnapshot();
  EXPECT_EQ(snap.flush_failures, 3u);
  EXPECT_EQ(snap.degraded_served, 7u);
  EXPECT_EQ(snap.rejected_unhealthy, 0u);
}

TEST_F(ServeHealthLadder, PersistentFailuresGoUnhealthyAndReject) {
  ServeOptions opt = LadderOptions();
  opt.flush_failures_degraded = 1;
  opt.flush_failures_unhealthy = 2;
  QueryService service(*index_, opt);
  const std::vector<double>& q = ds_.series[8].values;

  FailNextFlushes(/*count=*/0);  // 0 = unlimited: every flush fails

  // First failure -> degraded; the canary's failure -> unhealthy.
  EXPECT_EQ(service.Knn(q, 4).status.code(), StatusCode::kUnavailable);
  EXPECT_EQ(service.health(), ServeHealth::kDegraded);
  EXPECT_EQ(service.Knn(q, 4).status.code(), StatusCode::kUnavailable);
  EXPECT_EQ(service.health(), ServeHealth::kUnhealthy);

  // Unhealthy sheds load: non-canary requests are rejected immediately
  // without touching the queue or the index.
  size_t rejected = 0;
  for (int i = 0; i < 6; ++i) {
    const ServeResponse r = service.Knn(q, 4);
    ASSERT_FALSE(r.status.ok());
    EXPECT_EQ(r.status.code(), StatusCode::kUnavailable);
    if (r.status.message().find("unhealthy") != std::string::npos) ++rejected;
  }
  EXPECT_GT(rejected, 0u);
  EXPECT_EQ(service.MetricsSnapshot().rejected_unhealthy, rejected);

  // Once the fault clears, a canary probe heals the service.
  fault::Reset();
  bool healed = false;
  for (int i = 0; i < 2 * 8 && !healed; ++i)
    healed = service.Knn(q, 4).status.ok();
  EXPECT_TRUE(healed);
  EXPECT_EQ(service.health(), ServeHealth::kHealthy);
  const ServeResponse after = service.Knn(q, 4);
  ASSERT_TRUE(after.status.ok());
  ExpectSameResult(index_->Knn(q, 4), after.result, "healed exact");
}

TEST_F(ServeHealthLadder, WatchdogFlagsAStalledSchedulerAndRecovers) {
  // A 150ms stall is injected into the first flush while a second request
  // waits in the queue; the watchdog (5ms interval, 30ms degraded
  // threshold) must notice the stale heartbeat, degrade, and then recover
  // once the scheduler comes back.
  ServeOptions opt = LadderOptions();
  opt.watchdog_interval_us = 5'000;
  opt.stall_degraded_us = 30'000;
  opt.stall_unhealthy_us = 10'000'000;
  QueryService service(*index_, opt);

  fault::Reset();
  fault::Enable(/*seed=*/11);
  fault::PointConfig stall;
  stall.probability = 1.0;
  stall.max_triggers = 1;
  stall.delay_us = 150'000;
  fault::Configure("serve/flush_stall", stall);

  // First request enters the stalled flush; the second sits in the queue,
  // which is what makes the staleness count as a stall.
  auto stuck = service.SubmitKnn(ds_.series[0].values, 3);
  auto queued = service.SubmitKnn(ds_.series[1].values, 3);

  bool saw_degraded = false;
  for (int i = 0; i < 400 && !saw_degraded; ++i) {
    saw_degraded = service.health() != ServeHealth::kHealthy;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_TRUE(saw_degraded) << "watchdog never flagged the stall";

  // Both requests complete exactly once the stall passes, and the watchdog
  // clears the stall level when the heartbeat freshens.
  ASSERT_TRUE(stuck.get().status.ok());
  ASSERT_TRUE(queued.get().status.ok());
  bool recovered = false;
  for (int i = 0; i < 400 && !recovered; ++i) {
    recovered = service.health() == ServeHealth::kHealthy;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_TRUE(recovered) << "health never returned to healthy";
  EXPECT_GT(service.MetricsSnapshot().watchdog_stalls, 0u);
}

#endif  // SAPLA_FAULT_DISABLED

}  // namespace
}  // namespace sapla
