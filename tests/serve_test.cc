// Tests for the embedded query-serving subsystem (serve/service.h).
//
// The load-bearing contract is determinism: answers served through the
// admission queue + micro-batching scheduler must be bit-identical to
// per-request serial execution — same neighbor pairs, same num_measured —
// for every Method x IndexKind, at 1/2/8 execution threads and at
// max_batch 1 (one-at-a-time), 4 and 32, and must also match a direct
// KnnBatch call. On top of that: backpressure (kOverloaded on a full
// queue, resolved immediately), deadlines (kDeadlineExceeded, optionally
// with an approximate lower-bound answer), the result cache (hits,
// accounting, invalidation) and shutdown semantics.

#include "serve/service.h"

#include <chrono>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "ts/synthetic_archive.h"

namespace sapla {
namespace {

Dataset SmallDataset(size_t id = 12, size_t n = 96, size_t count = 50) {
  SyntheticOptions opt;
  opt.length = n;
  opt.num_series = count;
  return MakeSyntheticDataset(id, opt);
}

std::vector<std::vector<double>> SomeQueries(const Dataset& ds) {
  std::vector<std::vector<double>> queries;
  for (const size_t qi : {0u, 7u, 19u, 33u, 41u, 48u})
    queries.push_back(ds.series[qi].values);
  return queries;
}

void ExpectSameResult(const KnnResult& expected, const KnnResult& actual,
                      const std::string& label) {
  ASSERT_EQ(expected.neighbors.size(), actual.neighbors.size()) << label;
  for (size_t i = 0; i < expected.neighbors.size(); ++i) {
    EXPECT_EQ(expected.neighbors[i].second, actual.neighbors[i].second)
        << label << " rank " << i;
    EXPECT_EQ(expected.neighbors[i].first, actual.neighbors[i].first)
        << label << " rank " << i;  // bit-identical distances
  }
  EXPECT_EQ(expected.num_measured, actual.num_measured) << label;
}

struct ServeCase {
  Method method;
  IndexKind kind;
};

class ServeDeterminism : public ::testing::TestWithParam<ServeCase> {};

TEST_P(ServeDeterminism, MicroBatchedAnswersMatchSerialAndDirectBatch) {
  const auto [method, kind] = GetParam();
  const Dataset ds = SmallDataset();
  SimilarityIndex index(method, 12, kind);
  ASSERT_TRUE(index.Build(ds).ok()) << MethodName(method);

  const size_t k = 5;
  const double radius = 8.0;
  const std::vector<std::vector<double>> queries = SomeQueries(ds);

  // Ground truth: per-request serial execution, and the direct batch APIs
  // (whose own equivalence batch_query_test already proves).
  std::vector<KnnResult> serial_knn, serial_range;
  for (const std::vector<double>& q : queries) {
    serial_knn.push_back(index.Knn(q, k));
    serial_range.push_back(index.RangeSearch(q, radius));
  }
  const std::vector<KnnResult> direct_knn = index.KnnBatch(queries, k);

  for (const size_t threads : {1u, 2u, 8u}) {
    for (const size_t max_batch : {1u, 4u, 32u}) {
      ServeOptions opt;
      opt.queue_capacity = 256;
      opt.max_batch = max_batch;
      opt.max_delay_us = 100;
      opt.num_threads = threads;
      opt.cache_capacity = 0;  // no short-circuiting in this test
      QueryService service(index, opt);

      std::vector<std::future<ServeResponse>> knn_futures, range_futures;
      for (const std::vector<double>& q : queries) {
        knn_futures.push_back(service.SubmitKnn(q, k));
        range_futures.push_back(service.SubmitRange(q, radius));
      }
      const std::string label = MethodName(method) + "/" +
                                IndexKindName(kind) + " threads=" +
                                std::to_string(threads) + " max_batch=" +
                                std::to_string(max_batch);
      for (size_t i = 0; i < queries.size(); ++i) {
        const ServeResponse knn = knn_futures[i].get();
        ASSERT_TRUE(knn.status.ok()) << label << ": " << knn.status.ToString();
        EXPECT_FALSE(knn.approximate);
        ExpectSameResult(serial_knn[i], knn.result,
                         label + " knn q" + std::to_string(i));
        ExpectSameResult(direct_knn[i], knn.result,
                         label + " direct q" + std::to_string(i));

        const ServeResponse range = range_futures[i].get();
        ASSERT_TRUE(range.status.ok())
            << label << ": " << range.status.ToString();
        ExpectSameResult(serial_range[i], range.result,
                         label + " range q" + std::to_string(i));
      }
      const ServeMetricsSnapshot snap = service.MetricsSnapshot();
      EXPECT_EQ(snap.admitted, queries.size() * 2) << label;
      EXPECT_EQ(snap.completed_ok, queries.size() * 2) << label;
      EXPECT_EQ(snap.rejected_overloaded, 0u) << label;
      EXPECT_EQ(snap.deadline_exceeded, 0u) << label;
    }
  }
}

std::vector<ServeCase> AllServeCases() {
  std::vector<ServeCase> cases;
  for (const Method method : AllMethods())
    for (const IndexKind kind : {IndexKind::kRTree, IndexKind::kDbchTree})
      cases.push_back({method, kind});
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    MethodsTimesTrees, ServeDeterminism, ::testing::ValuesIn(AllServeCases()),
    [](const ::testing::TestParamInfo<ServeCase>& info) {
      return MethodName(info.param.method) +
             (info.param.kind == IndexKind::kRTree ? "_RTree" : "_DbchTree");
    });

class ServeFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    ds_ = SmallDataset(21);
    index_ = std::make_unique<SimilarityIndex>(Method::kSapla, 12,
                                               IndexKind::kDbchTree);
    ASSERT_TRUE(index_->Build(ds_).ok());
  }

  Dataset ds_;
  std::unique_ptr<SimilarityIndex> index_;
};

TEST_F(ServeFixture, FullQueueRejectsWithOverloadedImmediately) {
  ServeOptions opt;
  opt.queue_capacity = 4;
  // Neither flush trigger can fire while we submit: the size trigger is
  // out of reach and the delay window is far longer than the loop below.
  opt.max_batch = 1 << 20;
  opt.max_delay_us = 200'000;
  QueryService service(*index_, opt);

  const std::vector<double>& q = ds_.series[0].values;
  std::vector<std::future<ServeResponse>> futures;
  size_t rejected_now = 0;
  for (size_t i = 0; i < 40; ++i) {
    futures.push_back(service.SubmitKnn(q, 3));
    // A rejection resolves the future before Submit returns.
    if (futures.back().wait_for(std::chrono::seconds(0)) ==
        std::future_status::ready)
      ++rejected_now;
  }
  // The queue holds at most 4; everything else must have been rejected
  // promptly, not parked.
  EXPECT_GE(rejected_now, 40u - opt.queue_capacity);

  size_t ok = 0, overloaded = 0;
  for (auto& f : futures) {
    const ServeResponse r = f.get();
    if (r.status.ok())
      ++ok;
    else if (r.status.code() == StatusCode::kOverloaded)
      ++overloaded;
  }
  EXPECT_EQ(ok + overloaded, 40u);
  EXPECT_LE(ok, opt.queue_capacity);
  EXPECT_GE(overloaded, 40u - opt.queue_capacity);

  const ServeMetricsSnapshot snap = service.MetricsSnapshot();
  EXPECT_EQ(snap.admitted, ok);
  EXPECT_EQ(snap.rejected_overloaded, overloaded);
}

TEST_F(ServeFixture, ExpiredRequestsReturnDeadlineExceeded) {
  ServeOptions opt;
  opt.queue_capacity = 64;
  opt.max_batch = 1 << 20;     // only the 50ms window flushes
  opt.max_delay_us = 50'000;
  QueryService service(*index_, opt);

  std::vector<std::future<ServeResponse>> futures;
  for (size_t i = 0; i < 5; ++i)
    futures.push_back(
        service.SubmitKnn(ds_.series[i].values, 3, /*deadline_us=*/1000));
  for (auto& f : futures) {
    const ServeResponse r = f.get();
    EXPECT_EQ(r.status.code(), StatusCode::kDeadlineExceeded)
        << r.status.ToString();
    EXPECT_TRUE(r.result.neighbors.empty());
    EXPECT_FALSE(r.approximate);
  }
  EXPECT_EQ(service.MetricsSnapshot().deadline_exceeded, 5u);
}

TEST_F(ServeFixture, DegradedAnswersComeFromLowerBoundsOnly) {
  ServeOptions opt;
  opt.queue_capacity = 64;
  opt.max_batch = 1 << 20;
  opt.max_delay_us = 50'000;
  opt.degraded_answers = true;
  QueryService service(*index_, opt);

  const std::vector<double>& q = ds_.series[9].values;
  const ServeResponse r = service.Knn(q, 4, /*deadline_us=*/1000);
  EXPECT_EQ(r.status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_TRUE(r.approximate);
  EXPECT_EQ(r.result.num_measured, 0u);  // no raw series touched
  ExpectSameResult(index_->KnnLowerBound(q, 4), r.result, "degraded knn");
  EXPECT_EQ(service.MetricsSnapshot().degraded, 1u);
}

TEST_F(ServeFixture, CacheHitsRepeatedQueriesAndInvalidates) {
  ServeOptions opt;
  opt.max_batch = 1;  // flush each request immediately
  opt.max_delay_us = 0;
  opt.cache_capacity = 64;
  opt.cache_shards = 4;
  QueryService service(*index_, opt);

  const std::vector<double>& q = ds_.series[3].values;
  const ServeResponse first = service.Knn(q, 5);
  ASSERT_TRUE(first.status.ok());
  EXPECT_FALSE(first.cache_hit);

  const ServeResponse second = service.Knn(q, 5);
  ASSERT_TRUE(second.status.ok());
  EXPECT_TRUE(second.cache_hit);
  ExpectSameResult(first.result, second.result, "cached knn");

  // A different k is a different key.
  EXPECT_FALSE(service.Knn(q, 6).cache_hit);
  // Range and kNN do not alias.
  EXPECT_FALSE(service.Range(q, 8.0).cache_hit);
  EXPECT_TRUE(service.Range(q, 8.0).cache_hit);

  ServeMetricsSnapshot snap = service.MetricsSnapshot();
  EXPECT_EQ(snap.cache_hits, 2u);
  EXPECT_EQ(snap.cache_misses, 3u);

  service.InvalidateCache();
  EXPECT_FALSE(service.Knn(q, 5).cache_hit);
}

TEST_F(ServeFixture, StopDrainsPendingAndRejectsNewRequests) {
  ServeOptions opt;
  opt.queue_capacity = 64;
  opt.max_batch = 1 << 20;
  opt.max_delay_us = 500'000;  // pending requests sit until Stop drains them
  QueryService service(*index_, opt);

  std::vector<std::future<ServeResponse>> futures;
  for (size_t i = 0; i < 3; ++i)
    futures.push_back(service.SubmitKnn(ds_.series[i].values, 3));
  service.Stop();
  for (size_t i = 0; i < futures.size(); ++i) {
    const ServeResponse r = futures[i].get();
    ASSERT_TRUE(r.status.ok()) << r.status.ToString();
    ExpectSameResult(index_->Knn(ds_.series[i].values, 3), r.result,
                     "drained q" + std::to_string(i));
  }
  const ServeResponse after = service.Knn(ds_.series[0].values, 3);
  EXPECT_EQ(after.status.code(), StatusCode::kUnavailable);
}

TEST_F(ServeFixture, WrongQueryLengthIsInvalidArgument) {
  QueryService service(*index_);
  const ServeResponse r = service.Knn(std::vector<double>(7, 0.0), 3);
  EXPECT_EQ(r.status.code(), StatusCode::kInvalidArgument);
}

TEST_F(ServeFixture, ConcurrentClientsGetSerialAnswers) {
  ServeOptions opt;
  opt.max_batch = 16;
  opt.max_delay_us = 200;
  opt.cache_capacity = 128;
  QueryService service(*index_, opt);

  constexpr size_t kClients = 6;
  constexpr size_t kPerClient = 30;
  std::vector<std::thread> clients;
  std::vector<std::string> failures(kClients);
  for (size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (size_t i = 0; i < kPerClient; ++i) {
        const size_t qi = (c * 13 + i * 7) % ds_.size();
        const ServeResponse r = service.Knn(ds_.series[qi].values, 4);
        if (!r.status.ok()) {
          failures[c] = r.status.ToString();
          return;
        }
        const KnnResult expected = index_->Knn(ds_.series[qi].values, 4);
        if (expected.neighbors != r.result.neighbors ||
            expected.num_measured != r.result.num_measured) {
          failures[c] = "mismatch at client " + std::to_string(c) +
                        " query " + std::to_string(qi);
          return;
        }
      }
    });
  }
  for (auto& t : clients) t.join();
  for (const std::string& f : failures) EXPECT_EQ(f, "");
  const ServeMetricsSnapshot snap = service.MetricsSnapshot();
  EXPECT_EQ(snap.completed_ok, kClients * kPerClient);
  EXPECT_GT(snap.cache_hits, 0u);  // clients repeat query indices
}

}  // namespace
}  // namespace sapla
