// Tests for the tracing subsystem (obs/trace.h): enable/disable gating,
// clearing, span nesting depth — including spans recorded on thread-pool
// workers — and Chrome trace-event JSON structure.

#include "obs/trace.h"

#include <algorithm>
#include <atomic>
#include <cstring>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "util/parallel.h"

namespace sapla {
namespace {

// With -DSAPLA_OBS=OFF the span macro expands to nothing, so tests that
// assert spans were recorded cannot hold; the gating/empty-export tests
// still run.
#ifdef SAPLA_OBS_DISABLED
#define SKIP_IF_TRACING_COMPILED_OUT() \
  GTEST_SKIP() << "tracing compiled out (SAPLA_OBS=OFF)"
#else
#define SKIP_IF_TRACING_COMPILED_OUT() (void)0
#endif

// Every test starts from a clean, disabled recorder. Trace state is
// process-global, so these tests must not run concurrently with each other
// (gtest runs them serially in one process — fine).
class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::SetTraceEnabled(false);
    obs::ClearTrace();
  }
  void TearDown() override {
    obs::SetTraceEnabled(false);
    obs::ClearTrace();
  }
};

TEST_F(TraceTest, DisabledRecordsNothing) {
  { SAPLA_TRACE_SPAN("should-not-appear"); }
  EXPECT_TRUE(obs::CollectTrace().empty());
  EXPECT_EQ(obs::TraceDroppedEvents(), 0u);
}

TEST_F(TraceTest, EnabledRecordsCompletedSpans) {
  SKIP_IF_TRACING_COMPILED_OUT();
  obs::SetTraceEnabled(true);
  {
    SAPLA_TRACE_SPAN("outer");
    { SAPLA_TRACE_SPAN("inner"); }
  }
  const std::vector<obs::TraceEvent> events = obs::CollectTrace();
  ASSERT_EQ(events.size(), 2u);
  // Same thread, so both events carry the same tid and the inner span
  // nests one level deeper than the outer.
  EXPECT_EQ(events[0].tid, events[1].tid);
  const auto outer = std::find_if(events.begin(), events.end(), [](auto& e) {
    return std::strcmp(e.name, "outer") == 0;
  });
  const auto inner = std::find_if(events.begin(), events.end(), [](auto& e) {
    return std::strcmp(e.name, "inner") == 0;
  });
  ASSERT_NE(outer, events.end());
  ASSERT_NE(inner, events.end());
  EXPECT_EQ(outer->depth, 0u);
  EXPECT_EQ(inner->depth, 1u);
  EXPECT_GE(inner->start_us, outer->start_us);
  EXPECT_LE(inner->dur_us, outer->dur_us);
}

TEST_F(TraceTest, ClearDropsEverything) {
  SKIP_IF_TRACING_COMPILED_OUT();
  obs::SetTraceEnabled(true);
  { SAPLA_TRACE_SPAN("gone"); }
  ASSERT_FALSE(obs::CollectTrace().empty());
  obs::ClearTrace();
  EXPECT_TRUE(obs::CollectTrace().empty());
}

TEST_F(TraceTest, SpanOpenedWhileDisabledNeverRecords) {
  // Enable mid-span: the span was opened disabled, so it must not record.
  obs::ScopedSpan* span = new obs::ScopedSpan("opened-disabled");
  obs::SetTraceEnabled(true);
  delete span;
  EXPECT_TRUE(obs::CollectTrace().empty());
}

TEST_F(TraceTest, NestingAcrossThreadPoolWorkers) {
  SKIP_IF_TRACING_COMPILED_OUT();
  obs::SetTraceEnabled(true);
  // ParallelFor wraps every chunk in a "parallel/chunk" span; the body
  // opens its own span inside it. With >= 2 threads at least two distinct
  // tids appear (the caller runs chunk 0, a worker runs chunk 1), and on
  // every thread the body span nests under the chunk span.
  std::atomic<size_t> sink{0};
  ParallelFor(
      0, 8,
      [&](size_t i) {
        SAPLA_TRACE_SPAN("test/body");
        sink.fetch_add(i);
      },
      /*num_threads=*/2);
  const std::vector<obs::TraceEvent> events = obs::CollectTrace();
  std::set<uint32_t> chunk_tids;
  size_t bodies = 0;
  for (const obs::TraceEvent& e : events) {
    if (std::strcmp(e.name, "parallel/chunk") == 0) {
      EXPECT_EQ(e.depth, 0u);
      chunk_tids.insert(e.tid);
    } else if (std::strcmp(e.name, "test/body") == 0) {
      EXPECT_EQ(e.depth, 1u);  // nested inside its thread's chunk span
      ++bodies;
    }
  }
  EXPECT_EQ(bodies, 8u);
  EXPECT_GE(chunk_tids.size(), 2u);
  // Depth bookkeeping returned to 0: a fresh span on this thread is
  // outermost again.
  { SAPLA_TRACE_SPAN("after"); }
  const auto after = obs::CollectTrace();
  const auto it = std::find_if(after.begin(), after.end(), [](auto& e) {
    return std::strcmp(e.name, "after") == 0;
  });
  ASSERT_NE(it, after.end());
  EXPECT_EQ(it->depth, 0u);
}

TEST_F(TraceTest, EventsSurviveThreadExit) {
  SKIP_IF_TRACING_COMPILED_OUT();
  obs::SetTraceEnabled(true);
  std::thread t([] { SAPLA_TRACE_SPAN("ephemeral-thread"); });
  t.join();
  const std::vector<obs::TraceEvent> events = obs::CollectTrace();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_STREQ(events[0].name, "ephemeral-thread");
}

// A tiny structural JSON validator — enough to prove the export is
// well-formed (balanced containers, correctly quoted strings, no trailing
// commas), which is what chrome://tracing requires to load the file.
bool JsonWellFormed(const std::string& s) {
  std::vector<char> stack;
  bool in_string = false;
  bool escaped = false;
  char prev_significant = '\0';
  for (const char c : s) {
    if (in_string) {
      if (escaped) {
        escaped = false;
      } else if (c == '\\') {
        escaped = true;
      } else if (c == '"') {
        in_string = false;
        prev_significant = '"';
      }
      continue;
    }
    if (c == '"') {
      in_string = true;
    } else if (c == '{' || c == '[') {
      stack.push_back(c);
      prev_significant = c;
    } else if (c == '}' || c == ']') {
      if (prev_significant == ',') return false;  // trailing comma
      if (stack.empty()) return false;
      const char open = stack.back();
      stack.pop_back();
      if ((c == '}') != (open == '{')) return false;
      prev_significant = c;
    } else if (!std::isspace(static_cast<unsigned char>(c))) {
      prev_significant = c;
    }
  }
  return !in_string && stack.empty();
}

TEST_F(TraceTest, ChromeJsonIsWellFormed) {
  SKIP_IF_TRACING_COMPILED_OUT();
  obs::SetTraceEnabled(true);
  {
    SAPLA_TRACE_SPAN("json/a");
    SAPLA_TRACE_SPAN("json/b");
  }
  ParallelFor(0, 4, [](size_t) { SAPLA_TRACE_SPAN("json/worker"); }, 2);
  const std::string json = obs::TraceToChromeJson();
  EXPECT_TRUE(JsonWellFormed(json)) << json;
  // Chrome trace-event structure: a traceEvents array of complete events.
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"json/worker\""), std::string::npos);
  // One event object per collected span.
  const std::vector<obs::TraceEvent> events = obs::CollectTrace();
  size_t event_objects = 0;
  for (size_t pos = 0; (pos = json.find("\"ph\"", pos)) != std::string::npos;
       ++pos)
    ++event_objects;
  EXPECT_EQ(event_objects, events.size());
}

TEST_F(TraceTest, EmptyTraceIsStillValidJson) {
  const std::string json = obs::TraceToChromeJson();
  EXPECT_TRUE(JsonWellFormed(json)) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
}

}  // namespace
}  // namespace sapla
