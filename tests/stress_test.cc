// Randomized end-to-end stress tests: many random configurations pushed
// through the full reduce -> distance -> index -> search stack, asserting
// only invariants that must hold for EVERY input. Catches crashes,
// non-finite propagation, and structural corruption that targeted unit
// tests can miss.

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "core/sapla.h"
#include "core/streaming_sapla.h"
#include "distance/distance.h"
#include "distance/mindist.h"
#include "search/knn.h"
#include "ts/synthetic_archive.h"
#include "util/rng.h"

namespace sapla {
namespace {

class StressSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(StressSweep, ReduceStackSurvivesRandomConfigs) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 10; ++trial) {
    const size_t n = 2 + rng.UniformInt(500);
    const size_t m = 3 + rng.UniformInt(30);
    std::vector<double> v(n);
    // Mix of scales including harsh ones.
    const double scale = std::pow(10.0, rng.Uniform(-3.0, 3.0));
    for (auto& x : v) x = scale * rng.Gaussian();

    for (const Method method : AllMethodsExtended()) {
      if (method == Method::kApla && n > 300) continue;  // keep it quick
      const Representation rep = MakeReducer(method)->Reduce(v, m);
      ASSERT_EQ(rep.n, n) << MethodName(method);
      const std::vector<double> rec = rep.Reconstruct();
      ASSERT_EQ(rec.size(), n);
      for (const double x : rec)
        ASSERT_TRUE(std::isfinite(x)) << MethodName(method) << " n=" << n;
      if (!rep.segments.empty()) {
        ASSERT_EQ(rep.segments.back().r, n - 1) << MethodName(method);
        size_t start = 0;
        for (const auto& seg : rep.segments) {
          ASSERT_LE(start, seg.r);
          start = seg.r + 1;
        }
      }
      ASSERT_GE(rep.SumMaxDeviation(v), 0.0);
    }
  }
}

TEST_P(StressSweep, DistancesStayFiniteAndSymmetricish) {
  Rng rng(GetParam() + 1000);
  for (int trial = 0; trial < 10; ++trial) {
    const size_t n = 8 + rng.UniformInt(300);
    const size_t m = 6 + rng.UniformInt(24);
    std::vector<double> a(n), b(n);
    for (auto& x : a) x = rng.Gaussian(0.0, 5.0);
    for (auto& x : b) x = rng.Gaussian(0.0, 5.0);
    const SaplaReducer reducer;
    const Representation ra = reducer.Reduce(a, m);
    const Representation rb = reducer.Reduce(b, m);
    const double d1 = DistPar(ra, rb);
    const double d2 = DistPar(rb, ra);
    ASSERT_TRUE(std::isfinite(d1));
    ASSERT_NEAR(d1, d2, 1e-6 * (1.0 + d1));
    PrefixFitter fa(a);
    ASSERT_LE(DistLb(fa, rb), EuclideanDistance(a, b) + 1e-6);
    ASSERT_TRUE(std::isfinite(DistAe(a, rb)));
  }
}

TEST_P(StressSweep, IndexStackSurvivesRandomConfigs) {
  Rng rng(GetParam() + 2000);
  SyntheticOptions opt;
  opt.length = 16 + rng.UniformInt(200);
  opt.num_series = 5 + rng.UniformInt(60);
  const Dataset ds =
      MakeSyntheticDataset(rng.UniformInt(117), opt);
  const size_t m = 6 + rng.UniformInt(18);
  const size_t k = 1 + rng.UniformInt(10);

  for (const IndexKind kind : {IndexKind::kRTree, IndexKind::kDbchTree}) {
    const Method method =
        AllMethods()[rng.UniformInt(AllMethods().size())];
    if (method == Method::kApla && opt.length > 256) continue;
    SimilarityIndex index(method, m, kind);
    ASSERT_TRUE(index.Build(ds).ok())
        << MethodName(method) << " n=" << opt.length;
    const size_t qi = rng.UniformInt(ds.size());
    const KnnResult res = index.Knn(ds.series[qi].values, k);
    ASSERT_GE(res.neighbors.size(), 1u);
    ASSERT_LE(res.neighbors.size(), std::min(k, ds.size()));
    for (size_t i = 1; i < res.neighbors.size(); ++i)
      ASSERT_GE(res.neighbors[i].first, res.neighbors[i - 1].first);
    ASSERT_LE(res.num_measured, ds.size());
    // The self series must appear as the top hit.
    ASSERT_EQ(res.neighbors[0].second, qi);
  }
}

TEST_P(StressSweep, StreamingSaplaSurvivesArbitraryFeeds) {
  Rng rng(GetParam() + 3000);
  StreamingSapla stream(1 + rng.UniformInt(16));
  const size_t total = 100 + rng.UniformInt(3000);
  double x = 0.0;
  for (size_t t = 0; t < total; ++t) {
    // Occasionally jump scales violently.
    if (rng.Uniform() < 0.01) x += rng.Uniform(-1e4, 1e4);
    x += rng.Gaussian();
    stream.Append(x);
  }
  const Representation rep = stream.Snapshot();
  ASSERT_EQ(rep.n, total);
  ASSERT_EQ(rep.segments.back().r, total - 1);
  for (const auto& seg : rep.segments) {
    ASSERT_TRUE(std::isfinite(seg.a));
    ASSERT_TRUE(std::isfinite(seg.b));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, StressSweep,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace sapla
