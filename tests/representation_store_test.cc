// RepresentationStore / RepView: layout equivalence, converter
// losslessness, and the randomized segment-geometry property test.

#include "reduction/representation_store.h"

#include <gtest/gtest.h>

#include "core/sapla.h"
#include "reduction/representation.h"
#include "ts/synthetic_archive.h"
#include "util/rng.h"

namespace sapla {
namespace {

Dataset SmallDataset() {
  SyntheticOptions opt;
  opt.length = 128;
  opt.num_series = 8;
  return MakeSyntheticDataset(3, opt);
}

// A representation with random strictly-increasing endpoints over [0, n)
// and random line coefficients — segment geometry only, no fitting.
Representation RandomSegmentation(Rng& rng, size_t n) {
  Representation rep;
  rep.method = Method::kSapla;
  rep.n = n;
  size_t r = 0;
  while (true) {
    r += 1 + rng.UniformInt(n / 4 + 1);
    if (r >= n - 1) break;
    rep.segments.push_back(
        {rng.Uniform() * 4.0 - 2.0, rng.Uniform() * 10.0 - 5.0, r});
  }
  rep.segments.push_back(
      {rng.Uniform() * 4.0 - 2.0, rng.Uniform() * 10.0 - 5.0,
       n - 1});
  return rep;
}

void ExpectSameGeometry(const Representation& rep, const RepView& view) {
  ASSERT_EQ(view.num_segments(), rep.segments.size());
  EXPECT_EQ(view.method(), rep.method);
  EXPECT_EQ(view.n(), rep.n);
  EXPECT_EQ(view.alphabet(), rep.alphabet);
  for (size_t i = 0; i < rep.segments.size(); ++i) {
    EXPECT_EQ(view.seg_a(i), rep.segments[i].a) << "segment " << i;
    EXPECT_EQ(view.seg_b(i), rep.segments[i].b) << "segment " << i;
    EXPECT_EQ(view.seg_r(i), rep.segments[i].r) << "segment " << i;
    EXPECT_EQ(view.segment_start(i), rep.segment_start(i)) << "segment " << i;
    EXPECT_EQ(view.segment_length(i), rep.segment_length(i)) << "segment " << i;
  }
}

TEST(RepView, MatchesRepresentationGeometryOnRandomSegmentations) {
  // Satellite property test: for randomized segmentations, the AoS view,
  // the store-backed SoA view and the Representation must agree on every
  // derived quantity (start / length / fields), for every segment.
  Rng rng(42);
  for (int trial = 0; trial < 200; ++trial) {
    const size_t n = 2 + rng.UniformInt(300);
    const Representation rep = RandomSegmentation(rng, n);
    ExpectSameGeometry(rep, RepView::Of(rep));

    RepresentationStore store;
    const size_t id = store.Append(rep);
    ExpectSameGeometry(rep, store.view(id));
  }
}

TEST(RepView, SegmentLengthsSumToN) {
  Rng rng(7);
  for (int trial = 0; trial < 100; ++trial) {
    const size_t n = 2 + rng.UniformInt(500);
    const Representation rep = RandomSegmentation(rng, n);
    RepresentationStore store;
    const RepView view = store.view(store.Append(rep));
    size_t total = 0;
    for (size_t i = 0; i < view.num_segments(); ++i) {
      EXPECT_EQ(view.segment_start(i) + view.segment_length(i) - 1,
                view.seg_r(i));
      total += view.segment_length(i);
    }
    EXPECT_EQ(total, n);
  }
}

TEST(RepresentationStore, AppendToRepresentationIsLossless) {
  const Dataset ds = SmallDataset();
  for (const Method method : AllMethods()) {
    RepresentationStore store;
    std::vector<Representation> originals;
    const auto reducer = MakeReducer(method);
    for (const TimeSeries& ts : ds.series) {
      originals.push_back(reducer->Reduce(ts.values, 12));
      store.Append(originals.back());
    }
    ASSERT_EQ(store.size(), ds.size());
    EXPECT_EQ(store.method(), method);
    EXPECT_EQ(store.series_length(), ds.length());
    for (size_t i = 0; i < store.size(); ++i) {
      const Representation back = store.ToRepresentation(i);
      EXPECT_EQ(back.method, originals[i].method);
      EXPECT_EQ(back.n, originals[i].n);
      EXPECT_EQ(back.alphabet, originals[i].alphabet);
      ASSERT_EQ(back.segments.size(), originals[i].segments.size());
      for (size_t s = 0; s < back.segments.size(); ++s) {
        EXPECT_EQ(back.segments[s].a, originals[i].segments[s].a);
        EXPECT_EQ(back.segments[s].b, originals[i].segments[s].b);
        EXPECT_EQ(back.segments[s].r, originals[i].segments[s].r);
      }
      EXPECT_EQ(back.coeffs, originals[i].coeffs);
      EXPECT_EQ(back.symbols, originals[i].symbols);
    }
  }
}

TEST(RepresentationStore, ReduceIntoMatchesReducePlusAppend) {
  const Dataset ds = SmallDataset();
  for (const Method method : AllMethods()) {
    const auto reducer = MakeReducer(method);
    RepresentationStore via_reduce_into, via_append;
    for (const TimeSeries& ts : ds.series) {
      const size_t id = reducer->ReduceInto(ts.values, 12, &via_reduce_into);
      EXPECT_EQ(id, via_append.Append(reducer->Reduce(ts.values, 12)));
    }
    EXPECT_TRUE(via_reduce_into == via_append)
        << "method " << MethodName(method);
  }
}

TEST(RepresentationStore, ResetClearsContentAndChangesId) {
  const Dataset ds = SmallDataset();
  RepresentationStore store;
  store.Append(SaplaReducer().Reduce(ds.series[0].values, 12));
  const uint64_t id_before = store.id();
  EXPECT_EQ(store.size(), 1u);
  store.Reset();
  EXPECT_TRUE(store.empty());
  EXPECT_NE(store.id(), id_before);

  RepresentationStore other;
  EXPECT_NE(store.id(), other.id());
}

TEST(RepresentationStore, OffsetTablesDescribeColumnSlices) {
  const Dataset ds = SmallDataset();
  RepresentationStore store;
  std::vector<Representation> reps;
  for (const TimeSeries& ts : ds.series) {
    reps.push_back(SaplaReducer().Reduce(ts.values, 12));
    store.Append(reps.back());
  }
  ASSERT_EQ(store.seg_offsets().size(), store.size() + 1);
  EXPECT_EQ(store.seg_offsets().front(), 0u);
  EXPECT_EQ(store.seg_offsets().back(), store.a_column().size());
  EXPECT_EQ(store.a_column().size(), store.b_column().size());
  EXPECT_EQ(store.a_column().size(), store.r_column().size());
  for (size_t i = 0; i < store.size(); ++i) {
    EXPECT_EQ(store.seg_offsets()[i + 1] - store.seg_offsets()[i],
              reps[i].segments.size());
  }
}

TEST(RepresentationStore, FromColumnsRejectsStructuralCorruption) {
  const Dataset ds = SmallDataset();
  RepresentationStore store;
  for (const TimeSeries& ts : ds.series)
    store.Append(SaplaReducer().Reduce(ts.values, 12));

  auto rebuild = [&](auto mutate) {
    auto seg_off = store.seg_offsets();
    auto coeff_off = store.coeff_offsets();
    auto sym_off = store.symbol_offsets();
    auto a = store.a_column();
    auto b = store.b_column();
    auto r = store.r_column();
    auto coeffs = store.coeff_column();
    auto symbols = store.symbol_column();
    mutate(seg_off, a, r);
    return RepresentationStore::FromColumns(
        store.method(), store.series_length(), store.alphabet(),
        std::move(seg_off), std::move(coeff_off), std::move(sym_off),
        std::move(a), std::move(b), std::move(r), std::move(coeffs),
        std::move(symbols));
  };

  // Unmutated columns reproduce the store exactly.
  const auto same = rebuild([](auto&, auto&, auto&) {});
  ASSERT_TRUE(same.ok()) << same.status().ToString();
  EXPECT_TRUE(*same == store);

  // Decreasing offset table.
  EXPECT_FALSE(rebuild([](auto& seg_off, auto&, auto&) {
                 seg_off[1] = seg_off.back() + 1;
               }).ok());
  // Offsets not covering the columns.
  EXPECT_FALSE(
      rebuild([](auto& seg_off, auto&, auto&) { seg_off.back() -= 1; }).ok());
  // Non-increasing endpoints within a series.
  EXPECT_FALSE(rebuild([](auto&, auto&, auto& r) {
                 if (r.size() > 1) r[1] = r[0];
               }).ok());
  // Last endpoint not covering the series.
  EXPECT_FALSE(
      rebuild([](auto&, auto&, auto& r) { r.back() += 1; }).ok());
  // Mismatched a/r column sizes.
  EXPECT_FALSE(rebuild([](auto&, auto& a, auto&) { a.pop_back(); }).ok());
}

TEST(RepresentationStore, AppendReturnsSequentialIds) {
  const Dataset ds = SmallDataset();
  RepresentationStore store;
  for (size_t i = 0; i < ds.size(); ++i) {
    EXPECT_EQ(store.Append(SaplaReducer().Reduce(ds.series[i].values, 12)), i);
  }
}

}  // namespace
}  // namespace sapla
