// Tests for the utility layer: Status/Result, Rng, SummaryStats, Table,
// normal-distribution helpers.

#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "util/normal.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/status.h"
#include "util/table.h"

namespace sapla {
namespace {

TEST(Status, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(Status, CarriesCodeAndMessage) {
  const Status s = Status::InvalidArgument("bad M");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad M");
}

TEST(Result, HoldsValueOrStatus) {
  Result<int> ok(42);
  EXPECT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 42);
  Result<int> bad(Status::NotFound("nope"));
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kNotFound);
}

TEST(Rng, DeterministicStreams) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.Uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformIntUnbiasedRange) {
  Rng rng(8);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.UniformInt(7));
  EXPECT_EQ(seen.size(), 7u);
  EXPECT_EQ(*seen.rbegin(), 6u);
}

TEST(Rng, GaussianMomentsRoughlyStandard) {
  Rng rng(9);
  double sum = 0, sq = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double g = rng.Gaussian();
    sum += g;
    sq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(Rng, SampleWithoutReplacementDistinct) {
  Rng rng(10);
  const auto idx = rng.SampleWithoutReplacement(100, 30);
  EXPECT_EQ(idx.size(), 30u);
  const std::set<size_t> unique(idx.begin(), idx.end());
  EXPECT_EQ(unique.size(), 30u);
  for (const size_t i : idx) EXPECT_LT(i, 100u);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng parent(11);
  Rng child = parent.Fork();
  EXPECT_NE(parent.NextU64(), child.NextU64());
}

TEST(SummaryStats, BasicMoments) {
  SummaryStats s;
  for (const double x : {1.0, 2.0, 3.0, 4.0}) s.Add(x);
  EXPECT_EQ(s.count(), 4u);
  EXPECT_DOUBLE_EQ(s.mean(), 2.5);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
  EXPECT_NEAR(s.variance(), 1.25, 1e-12);
}

TEST(SummaryStats, MergeEqualsPooled) {
  SummaryStats a, b, pooled;
  Rng rng(12);
  for (int i = 0; i < 100; ++i) {
    const double x = rng.Gaussian();
    (i % 2 ? a : b).Add(x);
    pooled.Add(x);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), pooled.count());
  EXPECT_NEAR(a.mean(), pooled.mean(), 1e-10);
  EXPECT_NEAR(a.variance(), pooled.variance(), 1e-10);
  EXPECT_DOUBLE_EQ(a.min(), pooled.min());
  EXPECT_DOUBLE_EQ(a.max(), pooled.max());
}

TEST(Table, AlignedRenderAndCsv) {
  Table t("demo");
  t.SetHeader({"name", "value"});
  t.AddRow({"alpha", Table::Num(1.25)});
  t.AddRow({"b", Table::Num(100000.0)});
  const std::string s = t.ToString();
  EXPECT_NE(s.find("demo"), std::string::npos);
  EXPECT_NE(s.find("alpha"), std::string::npos);
  const std::string csv = t.ToCsv();
  EXPECT_NE(csv.find("name,value"), std::string::npos);
  EXPECT_NE(csv.find("alpha,1.25"), std::string::npos);
}

TEST(Table, CsvQuotesSpecialCharacters) {
  Table t("q");
  t.SetHeader({"a"});
  t.AddRow({"x,y"});
  EXPECT_NE(t.ToCsv().find("\"x,y\""), std::string::npos);
}

TEST(Normal, CdfKnownValues) {
  EXPECT_NEAR(NormalCdf(0.0), 0.5, 1e-12);
  EXPECT_NEAR(NormalCdf(1.959963985), 0.975, 1e-6);
  EXPECT_NEAR(NormalCdf(-1.959963985), 0.025, 1e-6);
}

TEST(Normal, QuantileInvertsCdf) {
  for (const double p : {0.001, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99}) {
    EXPECT_NEAR(NormalCdf(NormalQuantile(p)), p, 1e-10) << p;
  }
}

TEST(Normal, SaxBreakpointsMatchClassicTable) {
  // The published SAX breakpoints for alphabet 4: {-0.67, 0, 0.67}.
  const auto bp4 = SaxBreakpoints(4);
  ASSERT_EQ(bp4.size(), 3u);
  EXPECT_NEAR(bp4[0], -0.6745, 1e-3);
  EXPECT_NEAR(bp4[1], 0.0, 1e-12);
  EXPECT_NEAR(bp4[2], 0.6745, 1e-3);
  // Alphabet 8 spot checks.
  const auto bp8 = SaxBreakpoints(8);
  ASSERT_EQ(bp8.size(), 7u);
  EXPECT_NEAR(bp8[0], -1.15, 1e-2);
  EXPECT_NEAR(bp8[3], 0.0, 1e-12);
  EXPECT_NEAR(bp8[6], 1.15, 1e-2);
}

TEST(Normal, BreakpointsAreEquiprobableAndSorted) {
  for (const size_t a : {2, 5, 16, 64, 256}) {
    const auto bp = SaxBreakpoints(a);
    ASSERT_EQ(bp.size(), a - 1);
    for (size_t i = 1; i < bp.size(); ++i) EXPECT_GT(bp[i], bp[i - 1]);
    for (size_t i = 0; i < bp.size(); ++i) {
      EXPECT_NEAR(NormalCdf(bp[i]),
                  static_cast<double>(i + 1) / static_cast<double>(a), 1e-9);
    }
  }
}

}  // namespace
}  // namespace sapla
