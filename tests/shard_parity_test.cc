// Sharded-vs-single parity: a ShardedIndex must answer every query with
// the same neighbor ids and bit-identical distances as one SimilarityIndex
// over the whole corpus — at every shard count (1/2/4/7), for every
// Method x IndexKind, serially and batched at 1/2/8 threads. At one shard
// the answer is bit-identical counters included; at more shards the merged
// counters are the deterministic field-wise sum over the per-shard
// traversals and keep the per-query invariants (obs/counters.h). On top of
// the merge contract: snapshot save -> load -> query parity, corrupted
// snapshots rejected byte-flip by byte-flip, live generation swaps that
// change corpus_id() without changing answers, per-shard degradation, and
// the serve-cache staleness guarantee across a swap.

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "search/knn.h"
#include "search/sharded_index.h"
#include "search/snapshot.h"
#include "serve/service.h"
#include "ts/synthetic_archive.h"

namespace sapla {
namespace {

constexpr size_t kShardCounts[] = {1, 2, 4, 7};
constexpr size_t kThreadCounts[] = {1, 2, 8};
constexpr size_t kBudget = 12;
constexpr size_t kK = 6;

Dataset SmallDataset(size_t id = 41, size_t n = 128, size_t count = 60) {
  SyntheticOptions opt;
  opt.length = n;
  opt.num_series = count;
  return MakeSyntheticDataset(id, opt);
}

std::vector<std::vector<double>> SomeQueries(const Dataset& ds) {
  std::vector<std::vector<double>> queries;
  for (const size_t qi : {0u, 7u, 19u, 33u, 58u})
    if (qi < ds.size()) queries.push_back(ds.series[qi].values);
  return queries;
}

// Ids and distances must match bit for bit. num_measured and the counters
// are checked separately: with shards > 1 each shard refines its own
// candidate set, so the merged work counters are the (deterministic) sum
// over N smaller trees, not the single tree's numbers.
void ExpectSameAnswer(const KnnResult& sharded, const KnnResult& single,
                      const std::string& label) {
  ASSERT_EQ(sharded.neighbors.size(), single.neighbors.size()) << label;
  for (size_t i = 0; i < sharded.neighbors.size(); ++i) {
    EXPECT_EQ(sharded.neighbors[i].second, single.neighbors[i].second)
        << label << " rank " << i;
    EXPECT_EQ(sharded.neighbors[i].first, single.neighbors[i].first)
        << label << " rank " << i;
  }
}

void ExpectFullyIdentical(const KnnResult& a, const KnnResult& b,
                          const std::string& label) {
  ExpectSameAnswer(a, b, label);
  EXPECT_EQ(a.num_measured, b.num_measured) << label;
  EXPECT_TRUE(a.counters == b.counters) << label;
}

// The merge must preserve the per-query counter identities over the whole
// corpus (each shard satisfies them over its slice; sums telescope).
void ExpectCounterInvariants(const KnnResult& r, size_t dataset_size,
                             const std::string& label) {
  const SearchCounters& c = r.counters;
  EXPECT_EQ(c.lb_evaluations, c.exact_evaluations + c.entries_pruned_leaf)
      << label;
  EXPECT_EQ(dataset_size, c.lb_evaluations + c.entries_pruned_node) << label;
  EXPECT_EQ(c.exact_evaluations, r.num_measured) << label;
}

struct ShardCase {
  Method method;
  IndexKind kind;
};

class ShardSweep : public ::testing::TestWithParam<ShardCase> {
 protected:
  void Build() {
    ds_ = SmallDataset();
    const auto [method, kind] = GetParam();
    // The single-index reference must search the same regime the shards are
    // forced into (sound DBCH bounds) — the paper's default §5.3 node
    // distance is knowingly approximate and would not be partition-invariant.
    SimilarityIndex::Options exact;
    exact.dbch_sound_bounds = true;
    single_ = std::make_unique<SimilarityIndex>(method, kBudget, kind, exact);
    ASSERT_TRUE(single_->Build(ds_).ok()) << MethodName(method);
    for (const size_t shards : kShardCounts) {
      ShardedIndex::Options options;
      options.num_shards = shards;
      auto index =
          std::make_unique<ShardedIndex>(method, kBudget, kind, options);
      ASSERT_TRUE(index->Build(ds_).ok())
          << MethodName(method) << " shards " << shards;
      ASSERT_EQ(index->num_shards(), shards);
      sharded_.push_back(std::move(index));
    }
  }

  std::string Label(const char* op, size_t shards) const {
    return MethodName(GetParam().method) + " " + op + " shards " +
           std::to_string(shards);
  }

  Dataset ds_;
  std::unique_ptr<SimilarityIndex> single_;
  std::vector<std::unique_ptr<ShardedIndex>> sharded_;
};

TEST_P(ShardSweep, ShardRangesTileTheCorpus) {
  Build();
  for (const auto& index : sharded_) {
    size_t next = 0;
    for (size_t s = 0; s < index->num_shards(); ++s) {
      const auto [lo, hi] = index->ShardRange(s);
      EXPECT_EQ(lo, next);
      EXPECT_LT(lo, hi);
      next = hi;
    }
    EXPECT_EQ(next, ds_.size());
    EXPECT_EQ(index->dataset_size(), ds_.size());
    EXPECT_EQ(index->series_length(), ds_.length());
  }
}

TEST_P(ShardSweep, KnnMatchesSingleAtEveryShardCount) {
  Build();
  for (const auto& index : sharded_) {
    const size_t shards = index->num_shards();
    for (const std::vector<double>& q : SomeQueries(ds_)) {
      const KnnResult single = single_->Knn(q, kK);
      const KnnResult merged = index->Knn(q, kK);
      if (shards == 1) {
        // One shard holds the whole corpus: bit-identical, counters too.
        ExpectFullyIdentical(merged, single, Label("knn", shards));
      } else {
        ExpectSameAnswer(merged, single, Label("knn", shards));
        ExpectCounterInvariants(merged, ds_.size(), Label("knn", shards));
        // The merged counters are deterministic: same query, same sum.
        EXPECT_TRUE(merged.counters == index->Knn(q, kK).counters)
            << Label("knn-determinism", shards);
      }
      EXPECT_FALSE(merged.approximate);
    }
  }
}

TEST_P(ShardSweep, KnnBatchMatchesAtEveryThreadAndShardCount) {
  Build();
  const auto queries = SomeQueries(ds_);
  const std::vector<KnnResult> single = single_->KnnBatch(queries, kK, 1);
  for (const auto& index : sharded_) {
    const size_t shards = index->num_shards();
    for (const size_t threads : kThreadCounts) {
      const std::vector<KnnResult> batch =
          index->KnnBatch(queries, kK, threads);
      ASSERT_EQ(batch.size(), single.size());
      for (size_t q = 0; q < queries.size(); ++q) {
        const std::string label = Label("knn-batch", shards) + " q" +
                                  std::to_string(q) + " threads " +
                                  std::to_string(threads);
        if (shards == 1) {
          ExpectFullyIdentical(batch[q], single[q], label);
        } else {
          ExpectSameAnswer(batch[q], single[q], label);
          // Batch execution must reproduce the serial merge exactly,
          // counters included, at every thread count.
          EXPECT_TRUE(batch[q].counters == index->Knn(queries[q], kK).counters)
              << label;
        }
      }
    }
  }
}

TEST_P(ShardSweep, RangeSearchMatchesAtEveryShardCount) {
  Build();
  for (const auto& index : sharded_) {
    const size_t shards = index->num_shards();
    for (const double radius : {4.0, 9.0, 100.0}) {
      for (const std::vector<double>& q : SomeQueries(ds_)) {
        const KnnResult single = single_->RangeSearch(q, radius);
        const KnnResult merged = index->RangeSearch(q, radius);
        if (shards == 1) {
          ExpectFullyIdentical(merged, single, Label("range", shards));
        } else {
          ExpectSameAnswer(merged, single, Label("range", shards));
          ExpectCounterInvariants(merged, ds_.size(), Label("range", shards));
        }
      }
    }
  }
}

TEST_P(ShardSweep, RangeSearchBatchMatchesAtEveryThreadAndShardCount) {
  Build();
  const double radius = 9.0;
  const auto queries = SomeQueries(ds_);
  const std::vector<KnnResult> single =
      single_->RangeSearchBatch(queries, radius, 1);
  for (const auto& index : sharded_) {
    const size_t shards = index->num_shards();
    for (const size_t threads : kThreadCounts) {
      const std::vector<KnnResult> batch =
          index->RangeSearchBatch(queries, radius, threads);
      for (size_t q = 0; q < queries.size(); ++q)
        ExpectSameAnswer(batch[q], single[q],
                         Label("range-batch", shards) + " q" +
                             std::to_string(q) + " threads " +
                             std::to_string(threads));
    }
  }
}

TEST_P(ShardSweep, LowerBoundPathsMatchAtEveryShardCount) {
  Build();
  for (const auto& index : sharded_) {
    const size_t shards = index->num_shards();
    for (const std::vector<double>& q : SomeQueries(ds_)) {
      ExpectSameAnswer(index->KnnLowerBound(q, kK),
                       single_->KnnLowerBound(q, kK), Label("knn-lb", shards));
      ExpectSameAnswer(index->RangeSearchLowerBound(q, 9.0),
                       single_->RangeSearchLowerBound(q, 9.0),
                       Label("range-lb", shards));
    }
  }
}

std::vector<ShardCase> AllShardCases() {
  std::vector<ShardCase> cases;
  for (const Method method : AllMethods())
    for (const IndexKind kind : {IndexKind::kRTree, IndexKind::kDbchTree})
      cases.push_back({method, kind});
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    MethodsTimesTrees, ShardSweep, ::testing::ValuesIn(AllShardCases()),
    [](const ::testing::TestParamInfo<ShardCase>& info) {
      return MethodName(info.param.method) +
             (info.param.kind == IndexKind::kRTree ? "_RTree" : "_DbchTree");
    });

// ---------------------------------------------------------------------------
// Snapshots: save -> load -> query parity and corruption rejection.

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  return bytes;
}

void WriteFileBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good()) << path;
}

class SnapshotKinds : public ::testing::TestWithParam<IndexKind> {};

TEST_P(SnapshotKinds, RoundTripServesIdenticalAnswers) {
  const Dataset ds = SmallDataset(51);
  SimilarityIndex saved(Method::kSapla, kBudget, GetParam());
  ASSERT_TRUE(saved.Build(ds).ok());
  const std::string path =
      TempPath(std::string("snap_roundtrip_") + IndexKindName(GetParam()));
  ASSERT_TRUE(SaveIndexSnapshot(path, saved).ok());

  SimilarityIndex loaded(Method::kSapla, kBudget, GetParam());
  const Status restored = LoadIndexSnapshot(path, ds, &loaded);
  ASSERT_TRUE(restored.ok()) << restored.message();

  // Same tree, same store: every answer is bit-identical, counters too.
  const TreeStats a = saved.stats();
  const TreeStats b = loaded.stats();
  EXPECT_EQ(a.entries, b.entries);
  EXPECT_EQ(a.height, b.height);
  EXPECT_EQ(a.leaf_nodes, b.leaf_nodes);
  EXPECT_EQ(a.internal_nodes, b.internal_nodes);
  for (const std::vector<double>& q : SomeQueries(ds)) {
    ExpectFullyIdentical(loaded.Knn(q, kK), saved.Knn(q, kK), "snap knn");
    ExpectFullyIdentical(loaded.RangeSearch(q, 9.0), saved.RangeSearch(q, 9.0),
                         "snap range");
  }
  // A fresh corpus id: serve caches from the saving process cannot alias.
  EXPECT_NE(loaded.corpus_id(), saved.corpus_id());
  std::remove(path.c_str());
}

TEST_P(SnapshotKinds, RejectsTheWrongDatasetAndWrongShape) {
  const Dataset ds = SmallDataset(52);
  SimilarityIndex saved(Method::kSapla, kBudget, GetParam());
  ASSERT_TRUE(saved.Build(ds).ok());
  const std::string path =
      TempPath(std::string("snap_mismatch_") + IndexKindName(GetParam()));
  ASSERT_TRUE(SaveIndexSnapshot(path, saved).ok());

  // Different corpus, same shape: the fingerprint must catch it.
  const Dataset other = SmallDataset(53);
  SimilarityIndex target(Method::kSapla, kBudget, GetParam());
  EXPECT_FALSE(LoadIndexSnapshot(path, other, &target).ok());

  // Right corpus, wrong method / budget: the meta check must catch it.
  SimilarityIndex wrong_method(Method::kPaa, kBudget, GetParam());
  EXPECT_FALSE(LoadIndexSnapshot(path, ds, &wrong_method).ok());
  SimilarityIndex wrong_budget(Method::kSapla, kBudget + 2, GetParam());
  EXPECT_FALSE(LoadIndexSnapshot(path, ds, &wrong_budget).ok());
  std::remove(path.c_str());
}

// Every bit flip anywhere in the file must be rejected (CRCs + bounds
// checks), and a loader that rejects must leave the target unusable for
// serving only in the "never built" sense — not crash. Mirrors the
// store_io fuzz approach: flip one bit at a stride of positions.
TEST_P(SnapshotKinds, RejectsEverySampledBitFlip) {
  const Dataset ds = SmallDataset(54, 96, 30);
  SimilarityIndex saved(Method::kSapla, kBudget, GetParam());
  ASSERT_TRUE(saved.Build(ds).ok());
  const std::string path =
      TempPath(std::string("snap_fuzz_") + IndexKindName(GetParam()));
  ASSERT_TRUE(SaveIndexSnapshot(path, saved).ok());
  const std::string good = ReadFileBytes(path);
  ASSERT_FALSE(good.empty());

  const std::string flipped_path = path + ".flipped";
  size_t rejected = 0, tried = 0;
  for (size_t pos = 0; pos < good.size(); pos += 7) {
    std::string bad = good;
    bad[pos] = static_cast<char>(bad[pos] ^ 0x20);
    WriteFileBytes(flipped_path, bad);
    SimilarityIndex target(Method::kSapla, kBudget, GetParam());
    ++tried;
    if (!LoadIndexSnapshot(flipped_path, ds, &target).ok()) ++rejected;
  }
  EXPECT_EQ(rejected, tried) << "a corrupted snapshot loaded successfully";

  // Truncations at every section boundary-ish prefix must be rejected too.
  for (const size_t len : {size_t{0}, size_t{4}, size_t{17}, good.size() / 2,
                           good.size() - 1}) {
    WriteFileBytes(flipped_path, good.substr(0, len));
    SimilarityIndex target(Method::kSapla, kBudget, GetParam());
    EXPECT_FALSE(LoadIndexSnapshot(flipped_path, ds, &target).ok())
        << "truncated to " << len;
  }
  std::remove(path.c_str());
  std::remove(flipped_path.c_str());
}

TEST_P(SnapshotKinds, ShardedSaveRestoreServesIdenticalAnswers) {
  const Dataset ds = SmallDataset(55);
  ShardedIndex::Options options;
  options.num_shards = 4;
  ShardedIndex saved(Method::kSapla, kBudget, GetParam(), options);
  ASSERT_TRUE(saved.Build(ds).ok());
  const std::string prefix =
      TempPath(std::string("snap_fleet_") + IndexKindName(GetParam()));
  ASSERT_TRUE(saved.SaveSnapshots(prefix).ok());

  ShardedIndex restored(Method::kSapla, kBudget, GetParam(), options);
  const Status status = restored.Restore(ds, prefix);
  ASSERT_TRUE(status.ok()) << status.message();
  ASSERT_EQ(restored.num_shards(), saved.num_shards());
  for (const std::vector<double>& q : SomeQueries(ds)) {
    // Identical trees per shard: the merge is bit-identical incl. counters.
    ExpectFullyIdentical(restored.Knn(q, kK), saved.Knn(q, kK), "fleet knn");
    ExpectFullyIdentical(restored.RangeSearch(q, 9.0),
                         saved.RangeSearch(q, 9.0), "fleet range");
  }
  EXPECT_NE(restored.corpus_id(), saved.corpus_id());

  // A fleet restore with corrupted shard 2 must reject as a unit.
  const std::string shard2 = ShardedIndex::ShardSnapshotPath(prefix, 2);
  std::string bytes = ReadFileBytes(shard2);
  bytes[bytes.size() / 2] = static_cast<char>(bytes[bytes.size() / 2] ^ 0x01);
  WriteFileBytes(shard2, bytes);
  ShardedIndex rejected(Method::kSapla, kBudget, GetParam(), options);
  EXPECT_FALSE(rejected.Restore(ds, prefix).ok());

  for (size_t s = 0; s < saved.num_shards(); ++s)
    std::remove(ShardedIndex::ShardSnapshotPath(prefix, s).c_str());
}

INSTANTIATE_TEST_SUITE_P(BothTrees, SnapshotKinds,
                         ::testing::Values(IndexKind::kRTree,
                                           IndexKind::kDbchTree),
                         [](const ::testing::TestParamInfo<IndexKind>& info) {
                           return std::string(IndexKindName(info.param));
                         });

// ---------------------------------------------------------------------------
// Live generation swap.

TEST(LiveSwap, RebuildShardChangesCorpusIdAndKeepsAnswers) {
  const Dataset ds = SmallDataset(61);
  ShardedIndex::Options options;
  options.num_shards = 3;
  ShardedIndex index(Method::kSapla, kBudget, IndexKind::kRTree, options);
  ASSERT_TRUE(index.Build(ds).ok());

  const uint64_t id_before = index.corpus_id();
  const uint64_t shard1_before = index.shard_corpus_id(1);
  std::vector<KnnResult> before;
  for (const std::vector<double>& q : SomeQueries(ds))
    before.push_back(index.Knn(q, kK));

  ASSERT_TRUE(index.RebuildShard(1).ok());
  EXPECT_NE(index.corpus_id(), id_before);
  EXPECT_NE(index.shard_corpus_id(1), shard1_before);
  // Other shards kept their generations.
  EXPECT_EQ(index.shard_corpus_id(0), index.shard_corpus_id(0));

  // Same slice data, same deterministic build: answers are unchanged.
  size_t qi = 0;
  for (const std::vector<double>& q : SomeQueries(ds))
    ExpectFullyIdentical(index.Knn(q, kK), before[qi++], "post-swap knn");
}

TEST(LiveSwap, RestoreShardFromSnapshotSwapsLive) {
  const Dataset ds = SmallDataset(62);
  ShardedIndex::Options options;
  options.num_shards = 2;
  ShardedIndex index(Method::kSapla, kBudget, IndexKind::kDbchTree, options);
  ASSERT_TRUE(index.Build(ds).ok());
  const std::string prefix = TempPath("live_restore");
  ASSERT_TRUE(index.SaveSnapshots(prefix).ok());

  const KnnResult before = index.Knn(ds.series[3].values, kK);
  const uint64_t id_before = index.corpus_id();
  ASSERT_TRUE(
      index.RestoreShard(0, ShardedIndex::ShardSnapshotPath(prefix, 0)).ok());
  EXPECT_NE(index.corpus_id(), id_before);
  ExpectFullyIdentical(index.Knn(ds.series[3].values, kK), before,
                       "post-restore knn");
  for (size_t s = 0; s < index.num_shards(); ++s)
    std::remove(ShardedIndex::ShardSnapshotPath(prefix, s).c_str());
}

// The serve cache keys on corpus_id: a swap strands old entries, so a
// cached answer can never cross generations — observable as cache_hit
// dropping to false right after the swap, then re-warming under the new id.
TEST(LiveSwap, ServeCacheNeverServesAcrossASwap) {
  const Dataset ds = SmallDataset(63);
  ShardedIndex::Options options;
  options.num_shards = 2;
  ShardedIndex index(Method::kSapla, kBudget, IndexKind::kRTree, options);
  ASSERT_TRUE(index.Build(ds).ok());

  ServeOptions serve;
  serve.cache_capacity = 64;
  serve.max_batch = 1;
  QueryService service(index, serve);
  const std::vector<double>& q = ds.series[5].values;

  const ServeResponse first = service.Knn(q, kK);
  ASSERT_TRUE(first.status.ok());
  EXPECT_FALSE(first.cache_hit);
  const ServeResponse warm = service.Knn(q, kK);
  ASSERT_TRUE(warm.status.ok());
  EXPECT_TRUE(warm.cache_hit);

  ASSERT_TRUE(index.RebuildShard(0).ok());
  const ServeResponse after = service.Knn(q, kK);
  ASSERT_TRUE(after.status.ok());
  EXPECT_FALSE(after.cache_hit) << "served a pre-swap cache entry";
  ExpectFullyIdentical(after.result, first.result, "post-swap serve");
  const ServeResponse rewarmed = service.Knn(q, kK);
  ASSERT_TRUE(rewarmed.status.ok());
  EXPECT_TRUE(rewarmed.cache_hit);
  service.Stop();
}

// Swaps under concurrent load: every response is OK and bit-identical to
// the reference (the slice data never changes, so any generation mixing or
// stale cache entry would have to surface as a wrong or torn answer).
TEST(LiveSwap, ConcurrentQueriesAcrossSwapsStayCorrect) {
  const Dataset ds = SmallDataset(64, 96, 40);
  ShardedIndex::Options options;
  options.num_shards = 4;
  ShardedIndex index(Method::kSapla, kBudget, IndexKind::kRTree, options);
  ASSERT_TRUE(index.Build(ds).ok());

  const auto queries = SomeQueries(ds);
  std::vector<KnnResult> reference;
  for (const auto& q : queries) reference.push_back(index.Knn(q, kK));

  ServeOptions serve;
  serve.cache_capacity = 32;
  QueryService service(index, serve);

  std::vector<std::thread> clients;
  std::vector<int> failures(4, 0);
  for (size_t t = 0; t < 4; ++t) {
    clients.emplace_back([&, t] {
      for (size_t i = 0; i < 40; ++i) {
        const size_t qi = (t + i) % queries.size();
        const ServeResponse r = service.Knn(queries[qi], kK);
        if (!r.status.ok() ||
            r.result.neighbors != reference[qi].neighbors ||
            r.result.num_measured != reference[qi].num_measured)
          ++failures[t];
      }
    });
  }
  for (size_t swap = 0; swap < 8; ++swap)
    ASSERT_TRUE(index.RebuildShard(swap % index.num_shards()).ok());
  for (auto& c : clients) c.join();
  service.Stop();
  for (size_t t = 0; t < failures.size(); ++t)
    EXPECT_EQ(failures[t], 0) << "client " << t;
}

// ---------------------------------------------------------------------------
// Per-shard health: degradation at shard granularity.

TEST(ShardHealth, UnhealthyShardIsExcludedAndMarksApproximate) {
  const Dataset ds = SmallDataset(71);
  ShardedIndex::Options options;
  options.num_shards = 4;
  ShardedIndex index(Method::kSapla, kBudget, IndexKind::kRTree, options);
  ASSERT_TRUE(index.Build(ds).ok());
  SimilarityIndex single(Method::kSapla, kBudget, IndexKind::kRTree);
  ASSERT_TRUE(single.Build(ds).ok());

  index.SetShardHealth(2, ShardHealth::kUnhealthy);
  EXPECT_EQ(index.shard_health(2), ShardHealth::kUnhealthy);
  const auto [lo, hi] = index.ShardRange(2);

  for (const std::vector<double>& q : SomeQueries(ds)) {
    const KnnResult r = index.Knn(q, kK);
    EXPECT_TRUE(r.approximate);
    // No id from the excluded shard's range can appear...
    for (const auto& [dist, id] : r.neighbors) {
      EXPECT_TRUE(id < lo || id >= hi) << "id " << id << " from dead shard";
    }
    // ...and the rest must be the exact top-k over the surviving ids.
    const KnnResult full = single.Knn(q, kK + (hi - lo));
    std::vector<std::pair<double, size_t>> expected;
    for (const auto& n : full.neighbors) {
      if (n.second < lo || n.second >= hi) expected.push_back(n);
      if (expected.size() == r.neighbors.size()) break;
    }
    EXPECT_EQ(r.neighbors, expected);
  }

  // Recovery: back to healthy, answers are exact again.
  index.SetShardHealth(2, ShardHealth::kHealthy);
  const KnnResult healed = index.Knn(ds.series[0].values, kK);
  EXPECT_FALSE(healed.approximate);
  ExpectSameAnswer(healed, single.Knn(ds.series[0].values, kK), "healed");
}

TEST(ShardHealth, DegradedShardServesLowerBoundsOnly) {
  const Dataset ds = SmallDataset(72);
  ShardedIndex::Options options;
  options.num_shards = 3;
  ShardedIndex index(Method::kSapla, kBudget, IndexKind::kDbchTree, options);
  ASSERT_TRUE(index.Build(ds).ok());
  SimilarityIndex::Options exact;
  exact.dbch_sound_bounds = true;  // same regime the shards are forced into
  SimilarityIndex single(Method::kSapla, kBudget, IndexKind::kDbchTree, exact);
  ASSERT_TRUE(single.Build(ds).ok());

  index.SetShardHealth(1, ShardHealth::kDegraded);
  const std::vector<double>& q = ds.series[9].values;
  const KnnResult r = index.Knn(q, kK);
  EXPECT_TRUE(r.approximate);
  // Deterministic: the same degraded query twice is identical.
  ExpectFullyIdentical(index.Knn(q, kK), r, "degraded determinism");

  // With every shard degraded the merge is exactly the lower-bound-only
  // answer, which matches the single index's lower-bound path.
  for (size_t s = 0; s < index.num_shards(); ++s)
    index.SetShardHealth(s, ShardHealth::kDegraded);
  const KnnResult all_lb = index.Knn(q, kK);
  EXPECT_TRUE(all_lb.approximate);
  ExpectSameAnswer(all_lb, single.KnnLowerBound(q, kK), "all-degraded == lb");
  EXPECT_EQ(all_lb.num_measured, 0u);
}

TEST(ShardHealth, RebuildResetsHealthAndGaugesExport) {
  const Dataset ds = SmallDataset(73);
  ShardedIndex::Options options;
  options.num_shards = 3;
  ShardedIndex index(Method::kSapla, kBudget, IndexKind::kRTree, options);
  ASSERT_TRUE(index.Build(ds).ok());

  QueryService service(index, {});
  index.SetShardHealth(0, ShardHealth::kDegraded);
  index.SetShardHealth(2, ShardHealth::kUnhealthy);

  const ServeMetricsSnapshot snap = service.MetricsSnapshot();
  ASSERT_EQ(snap.shard_health.size(), 3u);
  EXPECT_EQ(snap.shard_health[0], 1u);
  EXPECT_EQ(snap.shard_health[1], 0u);
  EXPECT_EQ(snap.shard_health[2], 2u);

  // The Prometheus exposition carries one labeled gauge per shard.
  const std::string prom = MetricsToPrometheus(service.metrics());
  EXPECT_NE(prom.find("sapla_shard_health{shard=\"0\"} 1"), std::string::npos);
  EXPECT_NE(prom.find("sapla_shard_health{shard=\"2\"} 2"), std::string::npos);

  // A generation swap heals the shard.
  ASSERT_TRUE(index.RebuildShard(2).ok());
  EXPECT_EQ(index.shard_health(2), ShardHealth::kHealthy);
  service.Stop();
}

}  // namespace
}  // namespace sapla
