// Tests for per-request explain records and the slow-query log
// (obs/explain.h) — including this PR's acceptance criteria:
//
//   - a sampled query through QueryService over a 4-shard index with
//     hedging produces ONE stitched Chrome trace tree: admission -> batch
//     re-bind -> shard scatter -> per-shard search -> merge, joined by
//     flow events in the export
//   - the slow-query explain record's per-part counters sum EXACTLY to the
//     request's SearchCounters: the explain is the request's counters
//     attributed, never a second measurement
//
// Plus the underlying contracts: ShardedIndex::KnnExplain and
// IngestController::KnnExplain fill per-part breakdowns whose counters sum
// field-wise to the merged result's counters, and whose answer is
// bit-identical to the plain Knn path.

#include "obs/explain.h"

#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "ingest/ingest_controller.h"
#include "obs/trace.h"
#include "search/sharded_index.h"
#include "serve/retry.h"
#include "serve/service.h"
#include "ts/synthetic_archive.h"

namespace sapla {
namespace {

Dataset SmallDataset(size_t id = 7, size_t n = 96, size_t count = 64) {
  SyntheticOptions opt;
  opt.length = n;
  opt.num_series = count;
  return MakeSyntheticDataset(id, opt);
}

// Field-wise sum of per-part counters; mirrors SearchCounters::Add so a
// drifting explain path cannot hide behind the same helper it should be
// validated against.
void ExpectPartsSumToTotal(const obs::QueryExplain& explain) {
  uint64_t lb = 0, exact = 0, internal = 0, leaf = 0, pruned_leaf = 0,
           pruned_node = 0, nodes_pruned = 0;
  for (const obs::ShardExplain& part : explain.parts) {
    lb += part.counters.lb_evaluations;
    exact += part.counters.exact_evaluations;
    internal += part.counters.nodes_visited_internal;
    leaf += part.counters.nodes_visited_leaf;
    pruned_leaf += part.counters.entries_pruned_leaf;
    pruned_node += part.counters.entries_pruned_node;
    nodes_pruned += part.counters.nodes_pruned;
  }
  EXPECT_EQ(lb, explain.counters.lb_evaluations);
  EXPECT_EQ(exact, explain.counters.exact_evaluations);
  EXPECT_EQ(internal, explain.counters.nodes_visited_internal);
  EXPECT_EQ(leaf, explain.counters.nodes_visited_leaf);
  EXPECT_EQ(pruned_leaf, explain.counters.entries_pruned_leaf);
  EXPECT_EQ(pruned_node, explain.counters.entries_pruned_node);
  EXPECT_EQ(nodes_pruned, explain.counters.nodes_pruned);
}

TEST(ExplainTest, ShardedPartCountersSumExactlyToMergedCounters) {
  const Dataset ds = SmallDataset();
  ShardedIndex::Options opt;
  opt.num_shards = 4;
  ShardedIndex index(Method::kSapla, 12, IndexKind::kDbchTree, opt);
  ASSERT_TRUE(index.Build(ds).ok());

  obs::QueryExplain explain;
  const KnnResult with = index.KnnExplain(ds.series[9].values, 5, &explain);
  const KnnResult without = index.Knn(ds.series[9].values, 5);

  // Explain never changes the answer.
  ASSERT_EQ(with.neighbors.size(), without.neighbors.size());
  for (size_t i = 0; i < with.neighbors.size(); ++i) {
    EXPECT_EQ(with.neighbors[i].first, without.neighbors[i].first);
    EXPECT_EQ(with.neighbors[i].second, without.neighbors[i].second);
  }

  ASSERT_EQ(explain.parts.size(), 4u);
  ExpectPartsSumToTotal(explain);
  // The explain's whole-request counters ARE the result's counters.
  EXPECT_EQ(explain.counters.lb_evaluations, with.counters.lb_evaluations);
  EXPECT_EQ(explain.counters.exact_evaluations,
            with.counters.exact_evaluations);
  // Stage timings cover the scatter and the merge.
  std::set<std::string> stages;
  for (const obs::StageExplain& s : explain.stages) stages.insert(s.stage);
  EXPECT_TRUE(stages.count("scatter"));
  EXPECT_TRUE(stages.count("merge"));
}

TEST(ExplainTest, IngestPartCountersSumAcrossGenerations) {
  const Dataset ds = SmallDataset();
  IngestOptions opt;
  opt.memtable_max = 16;  // force seals: multiple generations
  IngestController ingest(Method::kSapla, 12, IndexKind::kDbchTree,
                          ds.length(), opt);
  for (const TimeSeries& ts : ds.series)
    ASSERT_TRUE(ingest.Insert(ts.values, ts.label).ok());

  obs::QueryExplain explain;
  const KnnResult with = ingest.KnnExplain(ds.series[3].values, 5, &explain);
  const KnnResult without = ingest.Knn(ds.series[3].values, 5);
  ASSERT_EQ(with.neighbors.size(), without.neighbors.size());
  for (size_t i = 0; i < with.neighbors.size(); ++i)
    EXPECT_EQ(with.neighbors[i].second, without.neighbors[i].second);

  ASSERT_GE(explain.parts.size(), 2u);  // sealed generation(s) + memtable
  ExpectPartsSumToTotal(explain);
  EXPECT_NE(explain.epoch_seq, 0u);
}

TEST(ExplainTest, ExplainJsonCarriesThePartBreakdown) {
  obs::QueryExplain explain;
  explain.trace_id = 42;
  explain.total_us = 1234;
  explain.counters.lb_evaluations = 10;
  obs::ShardExplain part;
  part.part = "shard0";
  part.health = 1;
  part.counters.lb_evaluations = 10;
  explain.parts.push_back(part);
  explain.stages.push_back({"scatter", 1200});

  const std::string json = obs::QueryExplainToJson(explain);
  EXPECT_NE(json.find("\"trace_id\":42"), std::string::npos);
  EXPECT_NE(json.find("\"shard0\""), std::string::npos);
  EXPECT_NE(json.find("\"degraded\""), std::string::npos);  // health name
  EXPECT_NE(json.find("\"scatter\""), std::string::npos);
}

// Acceptance: one sampled request through the full serving stack over four
// shards with hedging configured stitches into a single trace tree.
TEST(ExplainTest, SampledServeRequestStitchesOneTraceTree) {
#ifdef SAPLA_OBS_DISABLED
  GTEST_SKIP() << "tracing compiled out (SAPLA_OBS=OFF)";
#endif
  obs::SetTraceEnabled(false);
  obs::ClearTrace();

  const Dataset ds = SmallDataset();
  ShardedIndex::Options sopt;
  sopt.num_shards = 4;
  ShardedIndex index(Method::kSapla, 12, IndexKind::kDbchTree, sopt);
  ASSERT_TRUE(index.Build(ds).ok());

  ServeOptions opt;
  opt.cache_capacity = 0;
  opt.trace_sample_every = 1;
  QueryService service(index, opt);

  RetryPolicy policy;
  policy.hedge_delay_us = 1;  // hedging on: the duplicate joins the tree
  RetryingClient client(service, policy);

  obs::SetTraceEnabled(true);
  const ServeResponse response = client.Knn(ds.series[11].values, 4);
  obs::SetTraceEnabled(false);
  ASSERT_TRUE(response.status.ok());
  ASSERT_NE(response.trace_id, 0u);

  // The request's spans: admission -> batch -> scatter -> per-shard search
  // -> merge, all under one trace id, with every recorded parent edge
  // staying inside the trace.
  const std::vector<obs::TraceEvent> events = obs::CollectTrace();
  std::set<std::string> names;
  size_t shard_searches = 0;
  std::set<uint64_t> spans_of_trace;
  for (const obs::TraceEvent& e : events) {
    if (e.trace_id != response.trace_id) continue;
    names.insert(e.name);
    spans_of_trace.insert(e.span_id);
    if (std::string(e.name) == "shard/search") ++shard_searches;
  }
  for (const char* required : {"serve/admit", "batch/query", "shard/knn",
                               "shard/scatter", "shard/search", "shard/merge"})
    EXPECT_TRUE(names.count(required)) << "missing span " << required;
  EXPECT_GE(shard_searches, 4u);  // every healthy shard searched
  for (const obs::TraceEvent& e : events) {
    if (e.trace_id != response.trace_id || e.parent_span_id == 0) continue;
    EXPECT_TRUE(spans_of_trace.count(e.parent_span_id))
        << e.name << " parented outside its own trace";
  }

  // The Chrome export joins the cross-thread edges with flow events.
  const std::string json = obs::TraceToChromeJson();
  EXPECT_NE(json.find("\"ph\":\"s\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"f\""), std::string::npos);
  obs::ClearTrace();
}

// Acceptance: the slow-query record the service logs for a request carries
// an explain whose per-part counters sum exactly to the request's own
// SearchCounters — checked at the JSON level, which is what an operator
// actually reads.
TEST(ExplainTest, SlowQueryRecordPartCountersSumToRequestCounters) {
  const Dataset ds = SmallDataset();
  ShardedIndex::Options sopt;
  sopt.num_shards = 4;
  ShardedIndex index(Method::kSapla, 12, IndexKind::kDbchTree, sopt);
  ASSERT_TRUE(index.Build(ds).ok());

  ServeOptions opt;
  opt.cache_capacity = 0;
  opt.slow_query_us = 1;  // tail-sample (effectively) every request
  QueryService service(index, opt);

  const ServeResponse response = service.Knn(ds.series[2].values, 5);
  ASSERT_TRUE(response.status.ok());
  ASSERT_FALSE(response.result.counters.lb_evaluations == 0);

  const std::vector<std::string> records = service.slow_query_log().Records();
  ASSERT_FALSE(records.empty());
  const std::string& record = records.back();

  // Every "lb_evaluations" in the record: the first is the request total
  // (explain.counters renders before parts), the rest are the per-shard
  // attributions.
  auto extract_all = [&](const std::string& key) {
    std::vector<uint64_t> values;
    const std::string needle = "\"" + key + "\":";
    size_t pos = 0;
    while ((pos = record.find(needle, pos)) != std::string::npos) {
      pos += needle.size();
      values.push_back(std::strtoull(record.c_str() + pos, nullptr, 10));
    }
    return values;
  };
  for (const char* key : {"lb_evaluations", "exact_evaluations",
                          "nodes_visited_leaf", "entries_pruned_leaf"}) {
    const std::vector<uint64_t> values = extract_all(key);
    ASSERT_EQ(values.size(), 1u + 4u) << key;  // total + one per shard
    uint64_t sum = 0;
    for (size_t i = 1; i < values.size(); ++i) sum += values[i];
    EXPECT_EQ(sum, values[0]) << key << " parts do not sum to the total";
  }
  // And the total is the request's own counters, verbatim.
  const std::vector<uint64_t> lb = extract_all("lb_evaluations");
  EXPECT_EQ(lb[0], response.result.counters.lb_evaluations);
}

TEST(ExplainTest, SlowLogTriggersOnWorkNotJustLatency) {
  const Dataset ds = SmallDataset();
  ShardedIndex::Options sopt;
  sopt.num_shards = 2;
  ShardedIndex index(Method::kSapla, 12, IndexKind::kDbchTree, sopt);
  ASSERT_TRUE(index.Build(ds).ok());

  ServeOptions opt;
  opt.cache_capacity = 0;
  opt.slow_query_us = 0;       // latency trigger off
  opt.slow_query_lb_evals = 1; // any request that evaluates a bound logs
  QueryService service(index, opt);
  ASSERT_TRUE(service.Knn(ds.series[1].values, 3).status.ok());
  EXPECT_GE(service.slow_query_log().total_logged(), 1u);

  // Both thresholds off: nothing logs, and requests skip the explain fill.
  ServeOptions quiet;
  quiet.cache_capacity = 0;
  QueryService quiet_service(index, quiet);
  ASSERT_TRUE(quiet_service.Knn(ds.series[1].values, 3).status.ok());
  EXPECT_EQ(quiet_service.slow_query_log().total_logged(), 0u);
}

TEST(ExplainTest, SlowLogRingEvictsOldestButKeepsCounting) {
  obs::SlowQueryLog log(3);
  for (int i = 0; i < 5; ++i)
    log.Add("{\"record\": " + std::to_string(i) + "}");
  EXPECT_EQ(log.total_logged(), 5u);
  const std::vector<std::string> records = log.Records();
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(records.front(), "{\"record\": 2}");  // oldest retained
  EXPECT_EQ(records.back(), "{\"record\": 4}");
}

}  // namespace
}  // namespace sapla
