// Tests for the time-series substrate: normalization, resampling, the UCR
// loader, and the synthetic archive.

#include <cmath>
#include <cstdio>
#include <fstream>
#include <set>

#include <gtest/gtest.h>

#include "ts/synthetic_archive.h"
#include "ts/time_series.h"
#include "ts/ucr_loader.h"

namespace sapla {
namespace {

TEST(ZNormalize, ZeroMeanUnitVariance) {
  std::vector<double> v{1, 2, 3, 4, 5, 6, 7, 8};
  ZNormalize(&v);
  double mean = 0, var = 0;
  for (double x : v) mean += x;
  mean /= static_cast<double>(v.size());
  for (double x : v) var += (x - mean) * (x - mean);
  var /= static_cast<double>(v.size());
  EXPECT_NEAR(mean, 0.0, 1e-12);
  EXPECT_NEAR(var, 1.0, 1e-12);
}

TEST(ZNormalize, ConstantSeriesBecomesZero) {
  std::vector<double> v(10, 3.5);
  ZNormalize(&v);
  for (double x : v) EXPECT_DOUBLE_EQ(x, 0.0);
}

TEST(ResampleToLength, IdentityWhenSameLength) {
  const std::vector<double> v{1, 5, 2, 8};
  const auto out = ResampleToLength(v, 4);
  EXPECT_EQ(out, v);
}

TEST(ResampleToLength, LinearInterpolationUpsample) {
  const std::vector<double> v{0.0, 10.0};
  const auto out = ResampleToLength(v, 5);
  ASSERT_EQ(out.size(), 5u);
  EXPECT_NEAR(out[0], 0.0, 1e-12);
  EXPECT_NEAR(out[2], 5.0, 1e-12);
  EXPECT_NEAR(out[4], 10.0, 1e-12);
}

TEST(ResampleToLength, PreservesEndpointsOnDownsample) {
  std::vector<double> v(100);
  for (size_t i = 0; i < v.size(); ++i) v[i] = static_cast<double>(i);
  const auto out = ResampleToLength(v, 10);
  EXPECT_NEAR(out.front(), 0.0, 1e-12);
  EXPECT_NEAR(out.back(), 99.0, 1e-12);
}

TEST(Euclidean, KnownValues) {
  EXPECT_DOUBLE_EQ(EuclideanDistance({0, 0}, {3, 4}), 5.0);
  EXPECT_DOUBLE_EQ(SquaredEuclideanDistance({1, 1}, {2, 2}), 2.0);
}

TEST(UcrLoader, ParsesTsvWithLabels) {
  const char* path = "/tmp/sapla_test_ucr.tsv";
  {
    std::ofstream f(path);
    f << "1\t0.5\t1.5\t2.5\t3.5\n";
    f << "2\t4.0\t3.0\t2.0\t1.0\n";
  }
  UcrLoadOptions opt;
  opt.target_length = 0;
  opt.z_normalize = false;
  const auto result = LoadUcrDataset(path, opt);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const Dataset& ds = *result;
  ASSERT_EQ(ds.size(), 2u);
  EXPECT_EQ(ds.series[0].label, 1);
  EXPECT_EQ(ds.series[1].label, 2);
  EXPECT_DOUBLE_EQ(ds.series[0].values[2], 2.5);
  std::remove(path);
}

TEST(UcrLoader, AppliesResampleAndNormalize) {
  const char* path = "/tmp/sapla_test_ucr2.tsv";
  {
    std::ofstream f(path);
    f << "1,1,2,3,4,5,6,7,8\n";  // comma-separated variant
  }
  UcrLoadOptions opt;
  opt.target_length = 16;
  opt.z_normalize = true;
  const auto result = LoadUcrDataset(path, opt);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->length(), 16u);
  double mean = 0;
  for (double x : result->series[0].values) mean += x;
  EXPECT_NEAR(mean, 0.0, 1e-9);
  std::remove(path);
}

TEST(UcrLoader, RejectsRaggedAndMissingFiles) {
  EXPECT_FALSE(LoadUcrDataset("/nonexistent/file.tsv").ok());
  const char* path = "/tmp/sapla_test_ucr3.tsv";
  {
    std::ofstream f(path);
    f << "1\t1\t2\t3\n";
    f << "1\t1\t2\n";
  }
  EXPECT_FALSE(LoadUcrDataset(path).ok());
  std::remove(path);
}

TEST(UcrLoader, RejectsNonNumericCells) {
  const char* path = "/tmp/sapla_test_ucr4.tsv";
  {
    std::ofstream f(path);
    f << "1\t1\tfoo\t3\n";
  }
  EXPECT_FALSE(LoadUcrDataset(path).ok());
  std::remove(path);
}

TEST(SyntheticArchive, DeterministicAcrossCalls) {
  SyntheticOptions opt;
  opt.length = 64;
  opt.num_series = 10;
  const Dataset a = MakeSyntheticDataset(5, opt);
  const Dataset b = MakeSyntheticDataset(5, opt);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i)
    EXPECT_EQ(a.series[i].values, b.series[i].values);
}

TEST(SyntheticArchive, DatasetsDiffer) {
  SyntheticOptions opt;
  opt.length = 64;
  opt.num_series = 4;
  const Dataset a = MakeSyntheticDataset(0, opt);
  const Dataset b = MakeSyntheticDataset(13, opt);  // same family, new params
  EXPECT_NE(a.series[0].values, b.series[0].values);
}

TEST(SyntheticArchive, ShapeMatchesPaperSetup) {
  SyntheticOptions opt;  // defaults: 1024 x 100
  const Dataset ds = MakeSyntheticDataset(1, opt);
  EXPECT_EQ(ds.size(), 100u);
  EXPECT_EQ(ds.length(), 1024u);
  // Z-normalized by default.
  double mean = 0;
  for (double x : ds.series[0].values) mean += x;
  EXPECT_NEAR(mean / 1024.0, 0.0, 1e-9);
}

TEST(SyntheticArchive, AllFamiliesProduceFiniteClassStructuredData) {
  SyntheticOptions opt;
  opt.length = 128;
  opt.num_series = 20;
  for (size_t id = 0;
       id < static_cast<size_t>(SyntheticFamily::kNumFamilies); ++id) {
    const Dataset ds = MakeSyntheticDataset(id, opt);
    std::set<int> labels;
    for (const TimeSeries& ts : ds.series) {
      labels.insert(ts.label);
      for (const double x : ts.values) ASSERT_TRUE(std::isfinite(x))
          << ds.name;
    }
    EXPECT_GE(labels.size(), 2u) << ds.name;
  }
}

TEST(SyntheticArchive, FullArchiveHas117UniqueNames) {
  SyntheticOptions opt;
  opt.length = 16;
  opt.num_series = 2;
  const auto archive = MakeSyntheticArchive(117, opt);
  EXPECT_EQ(archive.size(), 117u);
  std::set<std::string> names;
  for (const Dataset& ds : archive) names.insert(ds.name);
  EXPECT_EQ(names.size(), 117u);
}

}  // namespace
}  // namespace sapla
