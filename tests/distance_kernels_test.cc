// Bit-identity of the view/batched distance kernels against the legacy
// per-pair Representation kernels. These are EXPECT_EQ on doubles on
// purpose: the view kernels promise the *same arithmetic in the same
// order*, not approximately-equal results — that contract is what lets the
// columnar corpus replace the AoS one without changing a single search
// answer.

#include "distance/kernels.h"

#include <vector>

#include <gtest/gtest.h>

#include "core/sapla.h"
#include "distance/distance.h"
#include "distance/mindist.h"
#include "geom/line_fit.h"
#include "reduction/dft.h"
#include "reduction/representation.h"
#include "reduction/representation_store.h"
#include "ts/synthetic_archive.h"

namespace sapla {
namespace {

constexpr size_t kBudgets[] = {8, 12, 24};

Dataset TestDataset() {
  SyntheticOptions opt;
  opt.length = 200;
  opt.num_series = 20;
  return MakeSyntheticDataset(5, opt);
}

struct Corpus {
  std::vector<Representation> reps;
  RepresentationStore store;
};

Corpus ReduceAll(const Dataset& ds, Method method, size_t m) {
  Corpus corpus;
  const auto reducer = MakeReducer(method);
  for (const TimeSeries& ts : ds.series) {
    corpus.reps.push_back(reducer->Reduce(ts.values, m));
    corpus.store.Append(corpus.reps.back());
  }
  return corpus;
}

TEST(DistanceKernels, DistParViewIsBitIdenticalToDistPar) {
  const Dataset ds = TestDataset();
  for (const Method method : {Method::kSapla, Method::kApla, Method::kApca,
                              Method::kPla, Method::kPaa, Method::kPaalm}) {
    for (const size_t m : kBudgets) {
      const Corpus corpus = ReduceAll(ds, method, m);
      DistanceScratch scratch;
      for (size_t i = 0; i + 1 < corpus.reps.size(); ++i) {
        const double legacy = DistPar(corpus.reps[i], corpus.reps[i + 1]);
        // AoS view pair, SoA view pair, and mixed — all three layouts.
        EXPECT_EQ(DistParView(RepView::Of(corpus.reps[i]),
                              RepView::Of(corpus.reps[i + 1]), &scratch),
                  legacy);
        EXPECT_EQ(DistParView(corpus.store.view(i), corpus.store.view(i + 1),
                              &scratch),
                  legacy);
        EXPECT_EQ(DistParView(RepView::Of(corpus.reps[i]),
                              corpus.store.view(i + 1), &scratch),
                  legacy);
        // The scratch-free convenience overload.
        EXPECT_EQ(DistParView(corpus.store.view(i), corpus.store.view(i + 1)),
                  legacy);
      }
    }
  }
}

TEST(DistanceKernels, DistLbViewIsBitIdenticalToDistLb) {
  const Dataset ds = TestDataset();
  for (const Method method : {Method::kSapla, Method::kApla, Method::kApca,
                              Method::kPla, Method::kPaa, Method::kPaalm,
                              Method::kSax}) {
    for (const size_t m : kBudgets) {
      const Corpus corpus = ReduceAll(ds, method, m);
      const PrefixFitter fitter(ds.series[0].values);
      for (size_t i = 1; i < corpus.reps.size(); ++i) {
        const double legacy = DistLb(fitter, corpus.reps[i]);
        EXPECT_EQ(DistLbView(fitter, RepView::Of(corpus.reps[i])), legacy);
        EXPECT_EQ(DistLbView(fitter, corpus.store.view(i)), legacy);
      }
    }
  }
}

TEST(DistanceKernels, CoefficientAndSymbolKernelsAreBitIdentical) {
  const Dataset ds = TestDataset();
  for (const size_t m : kBudgets) {
    const Corpus cheby = ReduceAll(ds, Method::kCheby, m);
    const Corpus dft = ReduceAll(ds, Method::kDft, m);
    const Corpus sax = ReduceAll(ds, Method::kSax, m);
    DistanceScratch scratch;
    for (size_t i = 1; i < ds.size(); ++i) {
      EXPECT_EQ(ChebyDistView(cheby.store.view(0), cheby.store.view(i)),
                ChebyDist(cheby.reps[0], cheby.reps[i]));
      EXPECT_EQ(DftDistView(dft.store.view(0), dft.store.view(i)),
                DftDist(dft.reps[0], dft.reps[i]));
      EXPECT_EQ(
          SaxMinDistView(sax.store.view(0), sax.store.view(i), &scratch),
          SaxMinDist(sax.reps[0], sax.reps[i]));
    }
  }
}

TEST(DistanceKernels, DispatchersMatchLegacyDispatchersForEveryMethod) {
  const Dataset ds = TestDataset();
  for (const Method method : AllMethods()) {
    const Corpus corpus = ReduceAll(ds, method, 12);
    const PrefixFitter fitter(ds.series[0].values);
    DistanceScratch scratch;
    for (size_t i = 1; i < ds.size(); ++i) {
      EXPECT_EQ(LowerBoundDistanceView(corpus.store.view(0),
                                       corpus.store.view(i), &scratch),
                LowerBoundDistance(corpus.reps[0], corpus.reps[i]))
          << MethodName(method) << " id " << i;
      EXPECT_EQ(FilterDistanceView(fitter, corpus.store.view(0),
                                   corpus.store.view(i), &scratch),
                FilterDistance(fitter, corpus.reps[0], corpus.reps[i]))
          << MethodName(method) << " id " << i;
    }
  }
}

TEST(DistanceKernels, BatchedKernelsMatchPerPairKernels) {
  const Dataset ds = TestDataset();
  for (const Method method : AllMethods()) {
    const Corpus corpus = ReduceAll(ds, method, 12);
    const PrefixFitter fitter(ds.series[0].values);
    const RepView q = corpus.store.view(0);
    DistanceScratch scratch;

    // Full scan (ids == nullptr).
    std::vector<double> batch(ds.size());
    FilterDistanceBatch(fitter, q, corpus.store, nullptr, ds.size(),
                        batch.data(), &scratch);
    for (size_t i = 0; i < ds.size(); ++i) {
      EXPECT_EQ(batch[i],
                FilterDistance(fitter, corpus.reps[0], corpus.reps[i]))
          << MethodName(method) << " id " << i;
    }

    // Gathered subset, out of order (a leaf scan's id list).
    const std::vector<size_t> ids = {7, 2, 19, 2, 0, 11};
    std::vector<double> gathered(ids.size());
    FilterDistanceBatch(fitter, q, corpus.store, ids.data(), ids.size(),
                        gathered.data(), &scratch);
    for (size_t j = 0; j < ids.size(); ++j) {
      EXPECT_EQ(gathered[j],
                FilterDistance(fitter, corpus.reps[0], corpus.reps[ids[j]]));
    }

    std::vector<double> lb_batch(ds.size());
    LowerBoundDistanceBatch(q, corpus.store, nullptr, ds.size(),
                            lb_batch.data(), &scratch);
    for (size_t i = 0; i < ds.size(); ++i) {
      EXPECT_EQ(lb_batch[i],
                LowerBoundDistance(corpus.reps[0], corpus.reps[i]))
          << MethodName(method) << " id " << i;
    }
  }
}

TEST(DistanceKernels, ScratchStateDoesNotLeakAcrossPairs) {
  // Reusing one scratch across pairs with different segmentations (and
  // across SAX alphabets) must not change any value.
  const Dataset ds = TestDataset();
  const Corpus sapla = ReduceAll(ds, Method::kSapla, 24);
  DistanceScratch reused;
  for (size_t i = 0; i + 1 < ds.size(); ++i) {
    DistanceScratch fresh;
    EXPECT_EQ(DistParView(sapla.store.view(i), sapla.store.view(i + 1),
                          &reused),
              DistParView(sapla.store.view(i), sapla.store.view(i + 1),
                          &fresh));
  }
}

}  // namespace
}  // namespace sapla
