// Unit and property tests for the baseline reducers
// (PLA, PAA, APCA, CHEBY, PAALM, SAX).

#include <cmath>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

#include "reduction/apca.h"
#include "reduction/cheby.h"
#include "reduction/paa.h"
#include "reduction/paalm.h"
#include "reduction/pla.h"
#include "reduction/representation.h"
#include "reduction/sax.h"
#include "ts/time_series.h"
#include "util/rng.h"

namespace sapla {
namespace {

std::vector<double> RandomWalk(uint64_t seed, size_t n) {
  Rng rng(seed);
  std::vector<double> v(n);
  double x = 0.0;
  for (auto& p : v) {
    x += rng.Gaussian();
    p = x;
  }
  return v;
}

TEST(Table1, SegmentBudgets) {
  EXPECT_EQ(SegmentsForBudget(Method::kSapla, 12), 4u);
  EXPECT_EQ(SegmentsForBudget(Method::kApla, 12), 4u);
  EXPECT_EQ(SegmentsForBudget(Method::kApca, 12), 6u);
  EXPECT_EQ(SegmentsForBudget(Method::kPla, 12), 6u);
  EXPECT_EQ(SegmentsForBudget(Method::kPaa, 12), 12u);
  EXPECT_EQ(SegmentsForBudget(Method::kPaalm, 12), 12u);
  EXPECT_EQ(SegmentsForBudget(Method::kCheby, 12), 12u);
  EXPECT_EQ(SegmentsForBudget(Method::kSax, 12), 12u);
}

TEST(Table1, FactoryCoversAllMethods) {
  for (const Method m : AllMethods()) {
    const auto reducer = MakeReducer(m);
    ASSERT_NE(reducer, nullptr) << MethodName(m);
    EXPECT_EQ(reducer->method(), m);
  }
}

TEST(EqualLengthEndpoints, CoversSeriesExactly) {
  for (size_t n : {10, 20, 100, 1023}) {
    for (size_t k : {1, 3, 6, 12}) {
      const auto ends = EqualLengthEndpoints(n, k);
      ASSERT_EQ(ends.size(), std::min(k, n));
      EXPECT_EQ(ends.back(), n - 1);
      size_t start = 0;
      for (const size_t e : ends) {
        EXPECT_GE(e, start);
        start = e + 1;
      }
      // Balanced: lengths differ by at most 1.
      size_t lo = n, hi = 0, s = 0;
      for (const size_t e : ends) {
        lo = std::min(lo, e - s + 1);
        hi = std::max(hi, e - s + 1);
        s = e + 1;
      }
      EXPECT_LE(hi - lo, 1u);
    }
  }
}

TEST(Paa, SegmentValuesAreMeans) {
  const std::vector<double> v{1, 2, 3, 4, 5, 6};
  const Representation rep = PaaReducer().Reduce(v, 2);
  ASSERT_EQ(rep.segments.size(), 2u);
  EXPECT_DOUBLE_EQ(rep.segments[0].b, 2.0);
  EXPECT_DOUBLE_EQ(rep.segments[1].b, 5.0);
  EXPECT_EQ(rep.segments[0].r, 2u);
  EXPECT_EQ(rep.segments[1].r, 5u);
}

TEST(Paa, ReconstructionPreservesMeanPerSegment) {
  const std::vector<double> v = RandomWalk(3, 120);
  const Representation rep = PaaReducer().Reduce(v, 10);
  const std::vector<double> rec = rep.Reconstruct();
  size_t start = 0;
  for (const auto& seg : rep.segments) {
    double orig = 0.0, recon = 0.0;
    for (size_t t = start; t <= seg.r; ++t) {
      orig += v[t];
      recon += rec[t];
    }
    EXPECT_NEAR(orig, recon, 1e-9);
    start = seg.r + 1;
  }
}

TEST(Pla, ReconstructionBeatsPaaInSse) {
  // A line fit per segment explains at least as much as a constant — with
  // half the segments it is not guaranteed, so compare at equal N.
  const std::vector<double> v = RandomWalk(4, 200);
  const Representation pla = PlaReducer().Reduce(v, 16);   // N = 8
  const Representation paa = PaaReducer().Reduce(v, 8);    // N = 8
  const std::vector<double> rec_pla = pla.Reconstruct();
  const std::vector<double> rec_paa = paa.Reconstruct();
  EXPECT_LE(SquaredEuclideanDistance(v, rec_pla),
            SquaredEuclideanDistance(v, rec_paa) + 1e-9);
}

TEST(Apca, ProducesRequestedSegmentCount) {
  const std::vector<double> v = RandomWalk(5, 256);
  for (size_t m : {4, 8, 12, 24}) {
    const Representation rep = ApcaReducer().Reduce(v, m);
    EXPECT_EQ(rep.segments.size(), SegmentsForBudget(Method::kApca, m));
    EXPECT_EQ(rep.segments.back().r, v.size() - 1);
  }
}

TEST(Apca, SegmentsAreContiguousAndValuesAreMeans) {
  const std::vector<double> v = RandomWalk(6, 128);
  const Representation rep = ApcaReducer().Reduce(v, 12);
  size_t start = 0;
  for (const auto& seg : rep.segments) {
    ASSERT_LE(start, seg.r);
    double mean = 0.0;
    for (size_t t = start; t <= seg.r; ++t) mean += v[t];
    mean /= static_cast<double>(seg.r - start + 1);
    EXPECT_NEAR(seg.b, mean, 1e-9);
    EXPECT_DOUBLE_EQ(seg.a, 0.0);
    start = seg.r + 1;
  }
  EXPECT_EQ(start, v.size());
}

TEST(Apca, AdaptsToStepFunction) {
  // A two-level step should be captured near-perfectly by 2 segments even
  // though the step is off-center (where equal-length PAA must straddle it).
  // Bottom-up merging from length-2 seeds resolves even breakpoints (the
  // original Haar-based APCA has the same dyadic resolution limit).
  std::vector<double> v(100, 0.0);
  for (size_t t = 38; t < v.size(); ++t) v[t] = 10.0;
  const Representation apca = ApcaReducer().Reduce(v, 4);  // N=2
  EXPECT_NEAR(apca.GlobalMaxDeviation(v), 0.0, 1e-9);
  const Representation paa = PaaReducer().Reduce(v, 2);    // N=2
  EXPECT_GT(paa.GlobalMaxDeviation(v), 1.0);
}

TEST(Cheby, ReconstructsExactlyWithFullBudget) {
  const std::vector<double> v = RandomWalk(7, 64);
  const Representation rep = ChebyReducer().Reduce(v, 64);
  const std::vector<double> rec = rep.Reconstruct();
  for (size_t t = 0; t < v.size(); ++t) EXPECT_NEAR(rec[t], v[t], 1e-8);
}

TEST(Cheby, ParsevalEnergyIdentity) {
  const std::vector<double> v = RandomWalk(8, 50);
  const Representation rep = ChebyReducer().Reduce(v, 50);
  double energy_time = 0.0, energy_coeff = 0.0;
  for (const double x : v) energy_time += x * x;
  for (const double c : rep.coeffs) energy_coeff += c * c;
  EXPECT_NEAR(energy_time, energy_coeff, 1e-8);
}

TEST(Cheby, TruncationErrorDecreasesWithBudget) {
  const std::vector<double> v = RandomWalk(9, 128);
  double prev = 1e300;
  for (size_t m : {4, 8, 16, 32, 64}) {
    const Representation rep = ChebyReducer().Reduce(v, m);
    const double err = SquaredEuclideanDistance(v, rep.Reconstruct());
    EXPECT_LE(err, prev + 1e-9);
    prev = err;
  }
}

TEST(Paalm, ZeroLambdaEqualsPaa) {
  const std::vector<double> v = RandomWalk(10, 90);
  const Representation paalm = PaalmReducer(0.0).Reduce(v, 9);
  const Representation paa = PaaReducer().Reduce(v, 9);
  ASSERT_EQ(paalm.segments.size(), paa.segments.size());
  for (size_t i = 0; i < paa.segments.size(); ++i)
    EXPECT_NEAR(paalm.segments[i].b, paa.segments[i].b, 1e-9);
}

TEST(Paalm, SmoothingWorsensMaxDeviation) {
  // The paper includes PAALM to show the cost of ignoring max deviation:
  // smoothing pulls values off the per-segment optimum.
  const std::vector<double> v = RandomWalk(11, 200);
  const double paa_dev = PaaReducer().Reduce(v, 10).SumMaxDeviation(v);
  const double paalm_dev = PaalmReducer(5.0).Reduce(v, 10).SumMaxDeviation(v);
  EXPECT_GE(paalm_dev, paa_dev - 1e-9);
}

TEST(Paalm, SmoothingPreservesTotalMass) {
  // (I + lambda*L) has row sums 1 + lambda*0 on the interior... the
  // Laplacian is singular wrt constants, so the solve preserves the mean of
  // the segment values.
  const std::vector<double> v = RandomWalk(12, 96);
  const Representation paa = PaaReducer().Reduce(v, 8);
  const Representation paalm = PaalmReducer(3.0).Reduce(v, 8);
  double sum_paa = 0.0, sum_paalm = 0.0;
  for (size_t i = 0; i < 8; ++i) {
    sum_paa += paa.segments[i].b;
    sum_paalm += paalm.segments[i].b;
  }
  EXPECT_NEAR(sum_paa, sum_paalm, 1e-8);
}

TEST(Sax, SymbolsRespectBreakpointOrder) {
  std::vector<double> v(64);
  Rng rng(13);
  for (auto& x : v) x = rng.Gaussian();
  ZNormalize(&v);
  const SaxReducer reducer(8);
  const Representation rep = reducer.Reduce(v, 16);
  ASSERT_EQ(rep.symbols.size(), 16u);
  for (size_t i = 0; i < rep.symbols.size(); ++i) {
    EXPECT_GE(rep.symbols[i], 0);
    EXPECT_LT(rep.symbols[i], 8);
  }
  // Higher PAA value => symbol at least as large.
  for (size_t i = 0; i < rep.symbols.size(); ++i) {
    for (size_t j = 0; j < rep.symbols.size(); ++j) {
      if (rep.segments[i].b > rep.segments[j].b) {
        EXPECT_GE(rep.symbols[i], rep.symbols[j]);
      }
    }
  }
}

TEST(Sax, ReconstructionIsCoarserThanPaa) {
  // Symbol -> number loses accuracy versus PAA (paper §2).
  const std::vector<double> v = [] {
    std::vector<double> x = RandomWalk(14, 128);
    ZNormalize(&x);
    return x;
  }();
  const double paa_err =
      SquaredEuclideanDistance(v, PaaReducer().Reduce(v, 16).Reconstruct());
  const double sax_err =
      SquaredEuclideanDistance(v, SaxReducer(8).Reduce(v, 16).Reconstruct());
  EXPECT_GE(sax_err, paa_err - 1e-9);
}

TEST(Representation, SegmentAccessors) {
  Representation rep;
  rep.method = Method::kApca;
  rep.n = 10;
  rep.segments = {{0.0, 1.0, 3}, {0.0, 2.0, 6}, {0.0, 3.0, 9}};
  EXPECT_EQ(rep.segment_start(0), 0u);
  EXPECT_EQ(rep.segment_start(1), 4u);
  EXPECT_EQ(rep.segment_start(2), 7u);
  EXPECT_EQ(rep.segment_length(0), 4u);
  EXPECT_EQ(rep.segment_length(1), 3u);
  EXPECT_EQ(rep.segment_length(2), 3u);
}

TEST(Representation, MaxDeviationDefinitions) {
  const std::vector<double> v{0, 0, 10, 0, 0, 0};
  Representation rep;
  rep.method = Method::kApca;
  rep.n = 6;
  rep.segments = {{0.0, 0.0, 2}, {0.0, 0.0, 5}};
  EXPECT_DOUBLE_EQ(rep.SegmentMaxDeviation(v, 0), 10.0);
  EXPECT_DOUBLE_EQ(rep.SegmentMaxDeviation(v, 1), 0.0);
  EXPECT_DOUBLE_EQ(rep.SumMaxDeviation(v), 10.0);
  EXPECT_DOUBLE_EQ(rep.GlobalMaxDeviation(v), 10.0);
}

// Every reducer must cover the series exactly and respect its coefficient
// budget across a parameter sweep (methods x M).
struct BudgetCase {
  Method method;
  size_t m;
};

class BudgetSweep : public ::testing::TestWithParam<BudgetCase> {};

TEST_P(BudgetSweep, CoversSeriesAndRespectsBudget) {
  const auto [method, m] = GetParam();
  const std::vector<double> v = RandomWalk(17, 256);
  const Representation rep = MakeReducer(method)->Reduce(v, m);
  EXPECT_EQ(rep.method, method);
  EXPECT_EQ(rep.n, v.size());
  if (method == Method::kCheby) {
    EXPECT_LE(rep.coeffs.size(), m);
  } else {
    EXPECT_EQ(rep.segments.size(), SegmentsForBudget(method, m));
    EXPECT_EQ(rep.segments.back().r, v.size() - 1);
    size_t start = 0;
    for (const auto& seg : rep.segments) {
      EXPECT_LE(start, seg.r);
      start = seg.r + 1;
    }
    // Coefficient accounting per Table 1.
    EXPECT_LE(rep.segments.size() * CoefficientsPerSegment(method), m);
  }
  // Reconstruction has the right length and finite values.
  const std::vector<double> rec = rep.Reconstruct();
  ASSERT_EQ(rec.size(), v.size());
  for (const double x : rec) EXPECT_TRUE(std::isfinite(x));
}

std::vector<BudgetCase> AllBudgetCases() {
  std::vector<BudgetCase> cases;
  for (const Method method : AllMethods())
    for (const size_t m : {12, 18, 24})
      cases.push_back({method, m});
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    MethodsTimesBudgets, BudgetSweep, ::testing::ValuesIn(AllBudgetCases()),
    [](const ::testing::TestParamInfo<BudgetCase>& info) {
      return MethodName(info.param.method) + "_M" +
             std::to_string(info.param.m);
    });

}  // namespace
}  // namespace sapla
