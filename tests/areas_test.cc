// Tests for the analytic Increment/Reconstruction areas against numerical
// integration, plus Lemma 4.1 (increment & extended segments intersect once).

#include "geom/areas.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "geom/line_fit.h"
#include "util/rng.h"

namespace sapla {
namespace {

// Dense numerical integration of |alpha x + beta| over [x0, x1].
double NumericAbsIntegral(double alpha, double beta, double x0, double x1) {
  const int steps = 200000;
  const double h = (x1 - x0) / steps;
  double sum = 0.0;
  for (int i = 0; i < steps; ++i) {
    const double x = x0 + (i + 0.5) * h;
    sum += std::fabs(alpha * x + beta) * h;
  }
  return sum;
}

TEST(AbsLinearIntegral, ConstantFunction) {
  EXPECT_DOUBLE_EQ(AbsLinearIntegral(0.0, 3.0, 0.0, 4.0), 12.0);
  EXPECT_DOUBLE_EQ(AbsLinearIntegral(0.0, -3.0, 1.0, 4.0), 9.0);
}

TEST(AbsLinearIntegral, NoSignChange) {
  // f(x) = x + 1 over [0, 2]: integral = 4.
  EXPECT_DOUBLE_EQ(AbsLinearIntegral(1.0, 1.0, 0.0, 2.0), 4.0);
}

TEST(AbsLinearIntegral, SignChangeSplitsIntoTriangles) {
  // f(x) = x - 1 over [0, 2]: two unit right triangles of area 1/2 each.
  EXPECT_DOUBLE_EQ(AbsLinearIntegral(1.0, -1.0, 0.0, 2.0), 1.0);
}

TEST(AbsLinearIntegral, ZeroWidthInterval) {
  EXPECT_DOUBLE_EQ(AbsLinearIntegral(2.0, 1.0, 3.0, 3.0), 0.0);
}

class AreaPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(AreaPropertyTest, MatchesNumericIntegration) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 10; ++trial) {
    const double alpha = rng.Uniform(-5.0, 5.0);
    const double beta = rng.Uniform(-5.0, 5.0);
    const double x0 = rng.Uniform(-10.0, 5.0);
    const double x1 = x0 + rng.Uniform(0.0, 15.0);
    EXPECT_NEAR(AbsLinearIntegral(alpha, beta, x0, x1),
                NumericAbsIntegral(alpha, beta, x0, x1), 1e-3);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AreaPropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5));

TEST(IncrementArea, Lemma41IntersectionProperty) {
  // d1 * d4 <= 0 (Eq. 16/17): the increment and extended lines cross within
  // the segment, so the area decomposes into two triangles.
  Rng rng(99);
  for (int trial = 0; trial < 200; ++trial) {
    const size_t l = 2 + rng.UniformInt(30);
    std::vector<double> v(l + 1);
    for (auto& x : v) x = rng.Gaussian(0.0, 5.0);
    const Line old_fit = FitLine(v.data(), l);
    const Line inc_fit = FitLine(v.data(), l + 1);
    const double d1 = inc_fit.b - old_fit.b;
    const double d4 = inc_fit.At(static_cast<double>(l)) -
                      old_fit.At(static_cast<double>(l));
    EXPECT_LE(d1 * d4, 1e-12);
  }
}

TEST(IncrementArea, ZeroWhenNewPointOnLine) {
  // Extending with a point already on the fitted line leaves the fit (and
  // hence the area) unchanged.
  std::vector<double> v{1.0, 3.0, 5.0, 7.0};
  const Line old_fit = FitLine(v.data(), 3);
  const Line inc_fit = FitLine(v.data(), 4);
  EXPECT_NEAR(IncrementArea(inc_fit, old_fit, 3), 0.0, 1e-12);
}

TEST(IncrementArea, GrowsWithOutlierMagnitude) {
  std::vector<double> base{0.0, 0.0, 0.0, 0.0};
  const Line old_fit = FitLine(base.data(), 4);
  double prev = -1.0;
  for (double outlier : {1.0, 5.0, 25.0}) {
    std::vector<double> v = base;
    v.push_back(outlier);
    const Line inc_fit = FitLine(v.data(), 5);
    const double area = IncrementArea(inc_fit, old_fit, 4);
    EXPECT_GT(area, prev);
    prev = area;
  }
}

TEST(ReconstructionArea, ZeroForCollinearSegments) {
  // Two halves of one straight line merge with zero reconstruction area.
  std::vector<double> v(12);
  for (size_t t = 0; t < v.size(); ++t) v[t] = 2.0 * static_cast<double>(t);
  const Line left = FitLine(v.data(), 6);
  const Line right = FitLine(v.data() + 6, 6);
  const Line merged = FitLine(v.data(), 12);
  EXPECT_NEAR(ReconstructionArea(merged, left, 6, right, 6), 0.0, 1e-10);
}

TEST(ReconstructionArea, MatchesNumericIntegration) {
  Rng rng(7);
  for (int trial = 0; trial < 20; ++trial) {
    const size_t ll = 2 + rng.UniformInt(10);
    const size_t lr = 2 + rng.UniformInt(10);
    std::vector<double> v(ll + lr);
    for (auto& x : v) x = rng.Gaussian(0.0, 3.0);
    const Line left = FitLine(v.data(), ll);
    const Line right = FitLine(v.data() + ll, lr);
    const Line merged = FitLine(v.data(), ll + lr);
    const double lld = static_cast<double>(ll);
    const double expected =
        NumericAbsIntegral(merged.a - left.a, merged.b - left.b, 0.0,
                           lld - 1.0) +
        NumericAbsIntegral(merged.a - right.a,
                           merged.a * lld + merged.b - right.b, 0.0,
                           static_cast<double>(lr) - 1.0);
    EXPECT_NEAR(ReconstructionArea(merged, left, ll, right, lr), expected,
                1e-2);
  }
}

}  // namespace
}  // namespace sapla
