// Tests for the Haar transform and the Haar-based APCA construction.

#include "geom/haar.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "reduction/apca.h"
#include "reduction/apca_haar.h"
#include "util/rng.h"

namespace sapla {
namespace {

TEST(Haar, NextPowerOfTwo) {
  EXPECT_EQ(NextPowerOfTwo(1), 1u);
  EXPECT_EQ(NextPowerOfTwo(2), 2u);
  EXPECT_EQ(NextPowerOfTwo(3), 4u);
  EXPECT_EQ(NextPowerOfTwo(1000), 1024u);
  EXPECT_EQ(NextPowerOfTwo(1024), 1024u);
}

TEST(Haar, RoundTripIsExact) {
  Rng rng(1);
  for (size_t n : {1, 2, 4, 8, 64, 256, 1024}) {
    std::vector<double> v(n);
    for (auto& x : v) x = rng.Gaussian(0.0, 5.0);
    const std::vector<double> back = HaarInverse(HaarTransform(v));
    ASSERT_EQ(back.size(), n);
    for (size_t t = 0; t < n; ++t) EXPECT_NEAR(back[t], v[t], 1e-9);
  }
}

TEST(Haar, OrthonormalityPreservesEnergy) {
  Rng rng(2);
  std::vector<double> v(128);
  for (auto& x : v) x = rng.Gaussian();
  const std::vector<double> c = HaarTransform(v);
  double e_time = 0, e_coeff = 0;
  for (double x : v) e_time += x * x;
  for (double x : c) e_coeff += x * x;
  EXPECT_NEAR(e_time, e_coeff, 1e-9);
}

TEST(Haar, ConstantSignalConcentratesInDc) {
  const std::vector<double> v(64, 3.0);
  const std::vector<double> c = HaarTransform(v);
  EXPECT_NEAR(c[0], 3.0 * std::sqrt(64.0), 1e-9);
  for (size_t i = 1; i < c.size(); ++i) EXPECT_NEAR(c[i], 0.0, 1e-12);
}

TEST(Haar, StepSignalConcentratesInOneDetail) {
  std::vector<double> v(8, 1.0);
  for (size_t t = 4; t < 8; ++t) v[t] = -1.0;
  const std::vector<double> c = HaarTransform(v);
  // DC zero, first detail (coarsest) carries everything.
  EXPECT_NEAR(c[0], 0.0, 1e-12);
  EXPECT_GT(std::fabs(c[1]), 2.0);
  for (size_t i = 2; i < 8; ++i) EXPECT_NEAR(c[i], 0.0, 1e-12);
}

TEST(ApcaHaar, ProducesValidStructure) {
  Rng rng(3);
  std::vector<double> v(200);
  double x = 0.0;
  for (auto& p : v) {
    x += rng.Gaussian();
    p = x;
  }
  for (size_t m : {4, 8, 12, 24}) {
    const Representation rep = ApcaHaarReducer().Reduce(v, m);
    EXPECT_EQ(rep.segments.size(), SegmentsForBudget(Method::kApca, m));
    EXPECT_EQ(rep.segments.back().r, v.size() - 1);
    size_t start = 0;
    for (const auto& seg : rep.segments) {
      EXPECT_LE(start, seg.r);
      EXPECT_DOUBLE_EQ(seg.a, 0.0);
      start = seg.r + 1;
    }
  }
}

TEST(ApcaHaar, ValuesAreExactSegmentMeans) {
  Rng rng(4);
  std::vector<double> v(100);
  for (auto& x : v) x = rng.Uniform(-5, 5);
  const Representation rep = ApcaHaarReducer().Reduce(v, 10);
  size_t start = 0;
  for (const auto& seg : rep.segments) {
    double mean = 0.0;
    for (size_t t = start; t <= seg.r; ++t) mean += v[t];
    mean /= static_cast<double>(seg.r - start + 1);
    EXPECT_NEAR(seg.b, mean, 1e-9);
    start = seg.r + 1;
  }
}

TEST(ApcaHaar, RecoversCleanStepsExactly) {
  // A dyadic two-level step is one Haar coefficient: zero deviation.
  std::vector<double> v(64, 1.0);
  for (size_t t = 32; t < 64; ++t) v[t] = 5.0;
  const Representation rep = ApcaHaarReducer().Reduce(v, 4);  // N = 2
  EXPECT_NEAR(rep.GlobalMaxDeviation(v), 0.0, 1e-9);
}

TEST(ApcaHaar, ComparableQualityToBottomUp) {
  // Construction ablation: the two APCA builds should land in the same
  // quality regime (neither catastrophically worse).
  Rng rng(5);
  double haar_total = 0.0, bottom_up_total = 0.0;
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<double> v(256);
    double x = 0.0;
    for (auto& p : v) {
      x += rng.Gaussian();
      p = x;
    }
    haar_total += ApcaHaarReducer().Reduce(v, 16).SumMaxDeviation(v);
    bottom_up_total += ApcaReducer().Reduce(v, 16).SumMaxDeviation(v);
  }
  EXPECT_LT(haar_total, bottom_up_total * 2.5);
  EXPECT_LT(bottom_up_total, haar_total * 2.5);
}

TEST(ApcaHaar, NonPowerOfTwoLengths) {
  Rng rng(6);
  for (size_t n : {7, 100, 255, 1000}) {
    std::vector<double> v(n);
    for (auto& x : v) x = rng.Gaussian();
    const Representation rep = ApcaHaarReducer().Reduce(v, 8);
    EXPECT_EQ(rep.segments.back().r, n - 1);
    EXPECT_EQ(rep.n, n);
  }
}

}  // namespace
}  // namespace sapla
