// Tests for DTW, the warping envelope, LB_Keogh, and the pruned DTW k-NN.

#include "distance/dtw.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "ts/synthetic_archive.h"
#include "util/rng.h"

namespace sapla {
namespace {

std::vector<double> RandomSeries(uint64_t seed, size_t n) {
  Rng rng(seed);
  std::vector<double> v(n);
  for (auto& x : v) x = rng.Gaussian();
  return v;
}

TEST(Dtw, IdenticalSeriesHaveZeroDistance) {
  const std::vector<double> v = RandomSeries(1, 50);
  EXPECT_DOUBLE_EQ(DtwDistance(v, v, 5), 0.0);
  EXPECT_DOUBLE_EQ(DtwDistance(v, v, 0), 0.0);
}

TEST(Dtw, BandZeroIsEuclidean) {
  const std::vector<double> a = RandomSeries(2, 40);
  const std::vector<double> b = RandomSeries(3, 40);
  EXPECT_NEAR(DtwDistance(a, b, 0), EuclideanDistance(a, b), 1e-9);
}

TEST(Dtw, NeverExceedsEuclidean) {
  // The identity path is always inside the band, so warping only helps.
  for (uint64_t seed = 0; seed < 20; ++seed) {
    const std::vector<double> a = RandomSeries(seed + 10, 60);
    const std::vector<double> b = RandomSeries(seed + 500, 60);
    for (const size_t band : {1u, 5u, 59u}) {
      EXPECT_LE(DtwDistance(a, b, band), EuclideanDistance(a, b) + 1e-9);
    }
  }
}

TEST(Dtw, WiderBandNeverHurts) {
  const std::vector<double> a = RandomSeries(30, 80);
  const std::vector<double> b = RandomSeries(31, 80);
  double prev = 1e300;
  for (const size_t band : {0u, 2u, 5u, 10u, 40u, 79u}) {
    const double d = DtwDistance(a, b, band);
    EXPECT_LE(d, prev + 1e-9);
    prev = d;
  }
}

TEST(Dtw, SymmetricInArguments) {
  const std::vector<double> a = RandomSeries(4, 45);
  const std::vector<double> b = RandomSeries(5, 45);
  EXPECT_NEAR(DtwDistance(a, b, 7), DtwDistance(b, a, 7), 1e-9);
}

TEST(Dtw, AbsorbsSmallShift) {
  // A shifted copy should be nearly free under warping but costly under
  // Euclidean.
  std::vector<double> a(100), b(100);
  for (size_t t = 0; t < 100; ++t) {
    a[t] = std::sin(2.0 * M_PI * static_cast<double>(t) / 25.0);
    b[t] = std::sin(2.0 * M_PI * static_cast<double>(t + 3) / 25.0);
  }
  const double euc = EuclideanDistance(a, b);
  const double dtw = DtwDistance(a, b, 5);
  EXPECT_LT(dtw, euc * 0.25);
}

TEST(Dtw, MatchesBruteForceOnTinyInputs) {
  // Full-band DTW vs an explicit recursive enumeration.
  const std::vector<double> a{1.0, 3.0, 2.0};
  const std::vector<double> b{1.0, 2.0, 2.0};
  // DP by hand: costs (a_i - b_j)^2.
  // Path (0,0)->(1,1)->(2,2): 0 + 1 + 0 = 1.
  EXPECT_NEAR(DtwDistance(a, b, 2), std::sqrt(1.0), 1e-12);
}

TEST(DtwEnvelope, BandZeroIsIdentity) {
  const std::vector<double> v = RandomSeries(6, 30);
  std::vector<double> lo, hi;
  DtwEnvelope(v, 0, &lo, &hi);
  for (size_t t = 0; t < v.size(); ++t) {
    EXPECT_DOUBLE_EQ(lo[t], v[t]);
    EXPECT_DOUBLE_EQ(hi[t], v[t]);
  }
}

TEST(DtwEnvelope, MatchesBruteForceWindows) {
  const std::vector<double> v = RandomSeries(7, 64);
  for (const size_t band : {1u, 4u, 16u, 63u}) {
    std::vector<double> lo, hi;
    DtwEnvelope(v, band, &lo, &hi);
    for (size_t t = 0; t < v.size(); ++t) {
      const size_t s = t > band ? t - band : 0;
      const size_t e = std::min(v.size() - 1, t + band);
      const double want_lo = *std::min_element(v.begin() + s, v.begin() + e + 1);
      const double want_hi = *std::max_element(v.begin() + s, v.begin() + e + 1);
      EXPECT_DOUBLE_EQ(lo[t], want_lo) << "band " << band << " t " << t;
      EXPECT_DOUBLE_EQ(hi[t], want_hi) << "band " << band << " t " << t;
    }
  }
}

TEST(LbKeogh, LowerBoundsDtw) {
  for (uint64_t seed = 0; seed < 30; ++seed) {
    const std::vector<double> q = RandomSeries(seed + 40, 64);
    const std::vector<double> c = RandomSeries(seed + 800, 64);
    for (const size_t band : {1u, 5u, 15u}) {
      std::vector<double> lo, hi;
      DtwEnvelope(q, band, &lo, &hi);
      EXPECT_LE(LbKeogh(c, lo, hi), DtwDistance(q, c, band) + 1e-9)
          << "seed " << seed << " band " << band;
    }
  }
}

TEST(LbKeogh, ZeroInsideEnvelope) {
  const std::vector<double> q = RandomSeries(8, 50);
  std::vector<double> lo, hi;
  DtwEnvelope(q, 3, &lo, &hi);
  EXPECT_DOUBLE_EQ(LbKeogh(q, lo, hi), 0.0);  // q is inside its own envelope
}

TEST(DtwKnn, MatchesBruteForce) {
  SyntheticOptions opt;
  opt.length = 64;
  opt.num_series = 40;
  const Dataset ds = MakeSyntheticDataset(4, opt);
  const std::vector<double>& q = ds.series[7].values;
  const size_t band = 6, k = 5;

  std::vector<std::pair<double, size_t>> brute;
  for (size_t i = 0; i < ds.size(); ++i)
    brute.emplace_back(DtwDistance(q, ds.series[i].values, band), i);
  std::sort(brute.begin(), brute.end());

  const KnnDtwResult res = DtwKnn(ds, q, k, band);
  ASSERT_EQ(res.neighbors.size(), k);
  for (size_t i = 0; i < k; ++i) {
    EXPECT_NEAR(res.neighbors[i].first, brute[i].first, 1e-9);
  }
}

TEST(DtwKnn, PrunesOnClusteredData) {
  // Half the series hug the query, half sit far away: LB_Keogh must prune
  // the distant half without full DTW evaluations.
  Rng rng(77);
  Dataset ds;
  ds.name = "clustered";
  std::vector<double> center(64);
  for (auto& x : center) x = rng.Gaussian();
  for (int i = 0; i < 20; ++i) {
    std::vector<double> v = center;
    for (auto& x : v) x += 0.01 * rng.Gaussian();
    ds.series.emplace_back(std::move(v));
  }
  for (int i = 0; i < 20; ++i) {
    std::vector<double> v(64);
    for (auto& x : v) x = 50.0 + rng.Gaussian();
    ds.series.emplace_back(std::move(v));
  }
  const KnnDtwResult res = DtwKnn(ds, center, 5, 4);
  ASSERT_EQ(res.neighbors.size(), 5u);
  for (const auto& [dist, id] : res.neighbors) EXPECT_LT(id, 20u);
  EXPECT_LE(res.num_dtw_computations, 25u);
}

TEST(DtwKnn, SelfQueryTopHitIsSelf) {
  SyntheticOptions opt;
  opt.length = 48;
  opt.num_series = 25;
  const Dataset ds = MakeSyntheticDataset(5, opt);
  const KnnDtwResult res = DtwKnn(ds, ds.series[3].values, 1, 4);
  ASSERT_EQ(res.neighbors.size(), 1u);
  EXPECT_EQ(res.neighbors[0].second, 3u);
  EXPECT_NEAR(res.neighbors[0].first, 0.0, 1e-9);
}

}  // namespace
}  // namespace sapla
