// Columnar-vs-legacy corpus parity: a SimilarityIndex over the
// RepresentationStore must answer every query bit-identically to one built
// with Options::legacy_aos_corpus (the pre-columnar
// std::vector<Representation> layout) — same neighbor ids and distances,
// same num_measured, equal SearchCounters, same tree shape — for every
// Method x IndexKind, serially and batched at 1/2/8 threads. This is the
// acceptance contract of the columnar refactor: the layout change is
// invisible to every caller.

#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "search/knn.h"
#include "ts/synthetic_archive.h"

namespace sapla {
namespace {

constexpr size_t kThreadCounts[] = {1, 2, 8};
constexpr size_t kBudget = 12;

Dataset SmallDataset(size_t id = 17, size_t n = 128, size_t count = 60) {
  SyntheticOptions opt;
  opt.length = n;
  opt.num_series = count;
  return MakeSyntheticDataset(id, opt);
}

std::vector<std::vector<double>> SomeQueries(const Dataset& ds) {
  std::vector<std::vector<double>> queries;
  for (const size_t qi : {0u, 7u, 19u, 33u, 58u})
    queries.push_back(ds.series[qi].values);
  return queries;
}

void ExpectIdentical(const KnnResult& columnar, const KnnResult& legacy,
                     const std::string& label) {
  ASSERT_EQ(columnar.neighbors.size(), legacy.neighbors.size()) << label;
  for (size_t i = 0; i < columnar.neighbors.size(); ++i) {
    EXPECT_EQ(columnar.neighbors[i].second, legacy.neighbors[i].second)
        << label << " rank " << i;
    EXPECT_EQ(columnar.neighbors[i].first, legacy.neighbors[i].first)
        << label << " rank " << i;
  }
  EXPECT_EQ(columnar.num_measured, legacy.num_measured) << label;
  EXPECT_TRUE(columnar.counters == legacy.counters) << label;
}

struct ParityCase {
  Method method;
  IndexKind kind;
};

class ParitySweep : public ::testing::TestWithParam<ParityCase> {
 protected:
  void Build() {
    ds_ = SmallDataset();
    const auto [method, kind] = GetParam();
    columnar_ = std::make_unique<SimilarityIndex>(method, kBudget, kind);
    SimilarityIndex::Options legacy_options;
    legacy_options.legacy_aos_corpus = true;
    legacy_ =
        std::make_unique<SimilarityIndex>(method, kBudget, kind, legacy_options);
    ASSERT_TRUE(columnar_->Build(ds_).ok()) << MethodName(method);
    ASSERT_TRUE(legacy_->Build(ds_).ok()) << MethodName(method);
  }

  std::string Label(const char* op) const {
    return MethodName(GetParam().method) + " " + op;
  }

  Dataset ds_;
  std::unique_ptr<SimilarityIndex> columnar_, legacy_;
};

TEST_P(ParitySweep, TreesAreStructurallyIdentical) {
  Build();
  const TreeStats a = columnar_->stats();
  const TreeStats b = legacy_->stats();
  EXPECT_EQ(a.entries, b.entries);
  EXPECT_EQ(a.height, b.height);
  EXPECT_EQ(a.leaf_nodes, b.leaf_nodes);
  EXPECT_EQ(a.internal_nodes, b.internal_nodes);
}

TEST_P(ParitySweep, KnnIsBitIdentical) {
  Build();
  for (const std::vector<double>& q : SomeQueries(ds_))
    ExpectIdentical(columnar_->Knn(q, 6), legacy_->Knn(q, 6), Label("knn"));
}

TEST_P(ParitySweep, KnnBatchIsBitIdenticalAtEveryThreadCount) {
  Build();
  const auto queries = SomeQueries(ds_);
  const std::vector<KnnResult> legacy = legacy_->KnnBatch(queries, 6, 1);
  for (const size_t threads : kThreadCounts) {
    const std::vector<KnnResult> batch =
        columnar_->KnnBatch(queries, 6, threads);
    ASSERT_EQ(batch.size(), legacy.size());
    for (size_t q = 0; q < queries.size(); ++q)
      ExpectIdentical(batch[q], legacy[q],
                      Label("knn-batch") + " q" + std::to_string(q) +
                          " threads " + std::to_string(threads));
  }
}

TEST_P(ParitySweep, RangeSearchIsBitIdentical) {
  Build();
  for (const double radius : {4.0, 9.0, 100.0})
    for (const std::vector<double>& q : SomeQueries(ds_))
      ExpectIdentical(columnar_->RangeSearch(q, radius),
                      legacy_->RangeSearch(q, radius), Label("range"));
}

TEST_P(ParitySweep, RangeSearchBatchIsBitIdenticalAtEveryThreadCount) {
  Build();
  const double radius = 9.0;
  const auto queries = SomeQueries(ds_);
  const std::vector<KnnResult> legacy =
      legacy_->RangeSearchBatch(queries, radius, 1);
  for (const size_t threads : kThreadCounts) {
    const std::vector<KnnResult> batch =
        columnar_->RangeSearchBatch(queries, radius, threads);
    for (size_t q = 0; q < queries.size(); ++q)
      ExpectIdentical(batch[q], legacy[q],
                      Label("range-batch") + " q" + std::to_string(q) +
                          " threads " + std::to_string(threads));
  }
}

TEST_P(ParitySweep, LowerBoundPathsAreBitIdentical) {
  Build();
  for (const std::vector<double>& q : SomeQueries(ds_)) {
    ExpectIdentical(columnar_->KnnLowerBound(q, 6), legacy_->KnnLowerBound(q, 6),
                    Label("knn-lb"));
    ExpectIdentical(columnar_->RangeSearchLowerBound(q, 9.0),
                    legacy_->RangeSearchLowerBound(q, 9.0), Label("range-lb"));
  }
}

std::vector<ParityCase> AllParityCases() {
  std::vector<ParityCase> cases;
  for (const Method method : AllMethods())
    for (const IndexKind kind : {IndexKind::kRTree, IndexKind::kDbchTree})
      cases.push_back({method, kind});
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    MethodsTimesTrees, ParitySweep, ::testing::ValuesIn(AllParityCases()),
    [](const ::testing::TestParamInfo<ParityCase>& info) {
      return MethodName(info.param.method) +
             (info.param.kind == IndexKind::kRTree ? "_RTree" : "_DbchTree");
    });

// The columnar store is the canonical corpus: after Build it holds one
// entry per series and round-trips each back to the reduction the legacy
// path stores.
TEST(StoreCorpus, StoreHoldsEveryReduction) {
  const Dataset ds = SmallDataset(23, 96, 30);
  SimilarityIndex index(Method::kSapla, kBudget, IndexKind::kDbchTree);
  ASSERT_TRUE(index.Build(ds).ok());
  EXPECT_EQ(index.store().size(), ds.size());
  EXPECT_EQ(index.store().method(), Method::kSapla);
  EXPECT_EQ(index.store().series_length(), ds.length());
  EXPECT_EQ(index.corpus_id(), index.store().id());
}

// Rebuilds must change the corpus id (the serve result cache keys on it).
TEST(StoreCorpus, RebuildChangesCorpusId) {
  const Dataset ds = SmallDataset(24, 96, 30);
  SimilarityIndex index(Method::kSapla, kBudget, IndexKind::kRTree);
  ASSERT_TRUE(index.Build(ds).ok());
  const uint64_t first = index.corpus_id();
  ASSERT_TRUE(index.Build(ds).ok());
  EXPECT_NE(index.corpus_id(), first);
}

}  // namespace
}  // namespace sapla
