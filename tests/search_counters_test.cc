// Tests for per-query SearchCounters (obs/counters.h) as threaded through
// the index backends and search layer: the counter identities, cascade
// stages, the num_measured agreement, determinism between Knn and KnnBatch
// at several thread counts, and the serving-layer aggregate.

#include "obs/counters.h"

#include <vector>

#include <gtest/gtest.h>

#include "obs/metrics.h"
#include "search/knn.h"
#include "search/metrics.h"
#include "serve/service.h"
#include "ts/synthetic_archive.h"

namespace sapla {
namespace {

Dataset SmallDataset(size_t id = 3, size_t n = 128, size_t count = 60) {
  SyntheticOptions opt;
  opt.length = n;
  opt.num_series = count;
  return MakeSyntheticDataset(id, opt);
}

// The three identities every executed filter-and-refine query satisfies.
void ExpectIdentities(const SearchCounters& c, size_t num_measured,
                      size_t dataset_size) {
  EXPECT_EQ(c.exact_evaluations, num_measured);
  EXPECT_EQ(c.lb_evaluations, c.exact_evaluations + c.entries_pruned_leaf);
  EXPECT_EQ(c.lb_evaluations + c.entries_pruned_node, dataset_size);
}

TEST(SearchCounters, KnnFillsCountersOnBothBackends) {
  const Dataset ds = SmallDataset();
  for (const IndexKind kind : {IndexKind::kRTree, IndexKind::kDbchTree}) {
    SimilarityIndex index(Method::kSapla, 12, kind);
    ASSERT_TRUE(index.Build(ds).ok());
    const KnnResult r = index.Knn(ds.series[5].values, 8);
    const SearchCounters& c = r.counters;
    ExpectIdentities(c, r.num_measured, ds.size());
    // A k-NN query that returned neighbors must have measured something
    // and reached the exact stage through at least one leaf.
    EXPECT_GT(c.exact_evaluations, 0u);
    EXPECT_GE(c.nodes_visited_leaf, 1u);
    EXPECT_EQ(c.cascade_stage, CascadeStage::kExact);
    EXPECT_EQ(c.nodes_visited(),
              c.nodes_visited_internal + c.nodes_visited_leaf);
    // Per-level counts sum to the total and start at the root.
    uint64_t by_level = 0;
    for (size_t l = 0; l < SearchCounters::kMaxLevels; ++l)
      by_level += c.nodes_visited_by_level[l];
    EXPECT_EQ(by_level, c.nodes_visited());
    EXPECT_EQ(c.nodes_visited_by_level[0], 1u);  // the root, exactly once
    // rho from the counters matches the historical metric.
    EXPECT_EQ(c.PruningPower(ds.size()), PruningPower(r, ds.size()));
  }
}

TEST(SearchCounters, RangeSearchFillsCounters) {
  const Dataset ds = SmallDataset();
  for (const IndexKind kind : {IndexKind::kRTree, IndexKind::kDbchTree}) {
    SimilarityIndex index(Method::kSapla, 12, kind);
    ASSERT_TRUE(index.Build(ds).ok());
    // A generous radius so the query returns something.
    const KnnResult probe = index.Knn(ds.series[5].values, 4);
    const double radius = probe.neighbors.back().first * 1.01;
    const KnnResult r = index.RangeSearch(ds.series[5].values, radius);
    ExpectIdentities(r.counters, r.num_measured, ds.size());
    EXPECT_EQ(r.counters.cascade_stage, CascadeStage::kExact);
  }
}

TEST(SearchCounters, LinearScanAndLowerBoundPaths) {
  const Dataset ds = SmallDataset(4, 64, 20);
  const KnnResult scan = LinearScanKnn(ds, ds.series[0].values, 3);
  EXPECT_EQ(scan.counters.exact_evaluations, ds.size());
  EXPECT_EQ(scan.counters.lb_evaluations, 0u);
  EXPECT_EQ(scan.counters.cascade_stage, CascadeStage::kExact);

  SimilarityIndex index(Method::kSapla, 8, IndexKind::kDbchTree);
  ASSERT_TRUE(index.Build(ds).ok());
  const KnnResult lb = index.KnnLowerBound(ds.series[0].values, 3);
  EXPECT_EQ(lb.counters.lb_evaluations, ds.size());
  EXPECT_EQ(lb.counters.exact_evaluations, 0u);
  EXPECT_EQ(lb.counters.cascade_stage, CascadeStage::kLeafFilter);
  EXPECT_EQ(lb.num_measured, 0u);

  const KnnResult rlb = index.RangeSearchLowerBound(ds.series[0].values, 5.0);
  EXPECT_EQ(rlb.counters.lb_evaluations, ds.size());
  EXPECT_EQ(rlb.counters.cascade_stage, CascadeStage::kLeafFilter);
}

TEST(SearchCounters, KZeroLeavesCountersEmpty) {
  const Dataset ds = SmallDataset(4, 64, 8);
  SimilarityIndex index(Method::kSapla, 8, IndexKind::kRTree);
  ASSERT_TRUE(index.Build(ds).ok());
  const KnnResult r = index.Knn(ds.series[0].values, 0);
  EXPECT_EQ(r.counters, SearchCounters{});
  EXPECT_EQ(r.counters.cascade_stage, CascadeStage::kNone);
}

// The tentpole determinism contract: per-query counters are bit-identical
// between serial Knn and KnnBatch at 1, 2 and 8 threads, for every method
// and both backends. Each query's traversal touches no shared mutable
// state, so thread count must be unobservable in the counters.
TEST(SearchCounters, DeterministicAcrossThreadCounts) {
  const Dataset ds = SmallDataset(7, 96, 50);
  std::vector<std::vector<double>> queries;
  for (size_t q = 0; q < 6; ++q) queries.push_back(ds.series[q * 7].values);

  for (const Method method : {Method::kSapla, Method::kApca, Method::kPla}) {
    for (const IndexKind kind : {IndexKind::kRTree, IndexKind::kDbchTree}) {
      SimilarityIndex index(method, 12, kind);
      ASSERT_TRUE(index.Build(ds).ok());
      std::vector<KnnResult> serial;
      for (const auto& q : queries) serial.push_back(index.Knn(q, 5));
      for (const size_t threads : {1u, 2u, 8u}) {
        const std::vector<KnnResult> batch =
            index.KnnBatch(queries, 5, threads);
        ASSERT_EQ(batch.size(), serial.size());
        for (size_t i = 0; i < batch.size(); ++i) {
          EXPECT_EQ(batch[i].counters, serial[i].counters)
              << MethodName(method) << "/" << IndexKindName(kind)
              << " query " << i << " threads " << threads;
          EXPECT_EQ(batch[i].num_measured, serial[i].num_measured);
        }
      }
    }
  }
}

TEST(SearchCounters, AddAggregatesAndTakesMaxStage) {
  SearchCounters a, b;
  a.lb_evaluations = 10;
  a.exact_evaluations = 4;
  a.entries_pruned_leaf = 6;
  a.cascade_stage = CascadeStage::kLeafFilter;
  a.nodes_visited_by_level[0] = 1;
  b.lb_evaluations = 5;
  b.exact_evaluations = 5;
  b.cascade_stage = CascadeStage::kExact;
  b.nodes_visited_by_level[0] = 1;
  b.nodes_visited_by_level[1] = 2;
  a.Add(b);
  EXPECT_EQ(a.lb_evaluations, 15u);
  EXPECT_EQ(a.exact_evaluations, 9u);
  EXPECT_EQ(a.cascade_stage, CascadeStage::kExact);
  EXPECT_EQ(a.nodes_visited_by_level[0], 2u);
  EXPECT_EQ(a.nodes_visited_by_level[1], 2u);
}

TEST(SearchCounters, ServiceAggregatesExecutedQueries) {
  const Dataset ds = SmallDataset();
  SimilarityIndex index(Method::kSapla, 12, IndexKind::kDbchTree);
  ASSERT_TRUE(index.Build(ds).ok());

  QueryService service(index);
  constexpr size_t kRequests = 5;
  for (size_t i = 0; i < kRequests; ++i) {
    const ServeResponse response = service.Knn(ds.series[i].values, 4);
    ASSERT_TRUE(response.status.ok());
  }
  service.Stop();

  const ServeMetricsSnapshot snap = service.MetricsSnapshot();
  EXPECT_EQ(snap.search.queries, kRequests);
  EXPECT_EQ(snap.search.candidates, kRequests * ds.size());
  EXPECT_GT(snap.search.exact_evaluations, 0u);
  EXPECT_EQ(snap.search.lb_evaluations,
            snap.search.exact_evaluations + snap.search.entries_pruned_leaf);
  EXPECT_EQ(snap.search.lb_evaluations + snap.search.entries_pruned_node,
            snap.search.candidates);
  EXPECT_GT(snap.search.PruningPower(), 0.0);
  EXPECT_LE(snap.search.PruningPower(), 1.0);
  // Tightness is a mean of lb/exact ratios, each in [0, 1].
  EXPECT_GE(snap.search.MeanTightness(), 0.0);
  EXPECT_LE(snap.search.MeanTightness(), 1.0);
}

TEST(SearchCounters, CountNodeVisitClampsDeepLevels) {
  SearchCounters c;
  c.CountNodeVisit(SearchCounters::kMaxLevels + 10, /*leaf=*/true);
  EXPECT_EQ(c.nodes_visited_by_level[SearchCounters::kMaxLevels - 1], 1u);
  EXPECT_EQ(c.nodes_visited_leaf, 1u);
}

}  // namespace
}  // namespace sapla
