// Verifies the paper's Eqs. (1)-(11) against direct least-squares refits.
//
// Every equation is an O(1) coefficient transform; the refit it must equal
// is computed from scratch over the raw points. Agreement to ~1e-8 across
// random sweeps proves the printed equations are exact (and that the
// sufficient-statistics engine used by SAPLA matches the paper).

#include "core/paper_equations.h"

#include <vector>

#include <gtest/gtest.h>

#include "geom/line_fit.h"
#include "util/rng.h"

namespace sapla {
namespace {

constexpr double kTol = 1e-8;

std::vector<double> RandomSeries(Rng* rng, size_t n) {
  std::vector<double> v(n);
  for (auto& x : v) x = rng->Gaussian(0.0, 5.0);
  return v;
}

TEST(Eq1Fit, MatchesNormalEquationFit) {
  Rng rng(1);
  for (size_t l : {2, 3, 5, 17, 64, 301}) {
    const std::vector<double> v = RandomSeries(&rng, l);
    const Line paper = Eq1Fit(v.data(), l);
    const Line direct = FitLine(v.data(), l);
    EXPECT_NEAR(paper.a, direct.a, kTol) << "l=" << l;
    EXPECT_NEAR(paper.b, direct.b, kTol) << "l=" << l;
  }
}

TEST(FitToSums, RoundTripsThroughFitFromSums) {
  Rng rng(2);
  for (size_t l : {2, 3, 9, 40}) {
    const std::vector<double> v = RandomSeries(&rng, l);
    double s1 = 0, st = 0;
    for (size_t t = 0; t < l; ++t) {
      s1 += v[t];
      st += static_cast<double>(t) * v[t];
    }
    const Line fit = FitFromSums(s1, st, l);
    double rs1, rst;
    FitToSums(fit, l, &rs1, &rst);
    EXPECT_NEAR(rs1, s1, kTol);
    EXPECT_NEAR(rst, st, kTol);
  }
}

class EquationSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(EquationSweep, Eq2IncrementEqualsRefit) {
  Rng rng(GetParam());
  for (size_t l = 2; l <= 40; ++l) {
    const std::vector<double> v = RandomSeries(&rng, l + 1);
    const Line fit = FitLine(v.data(), l);
    const Line inc = Eq2Increment(fit, l, v[l]);
    const Line refit = FitLine(v.data(), l + 1);
    EXPECT_NEAR(inc.a, refit.a, kTol);
    EXPECT_NEAR(inc.b, refit.b, kTol);
  }
}

TEST_P(EquationSweep, Eq34MergeEqualsRefit) {
  Rng rng(GetParam() + 100);
  for (int trial = 0; trial < 30; ++trial) {
    const size_t ll = 2 + rng.UniformInt(20);
    const size_t lr = 2 + rng.UniformInt(20);
    const std::vector<double> v = RandomSeries(&rng, ll + lr);
    const Line left = FitLine(v.data(), ll);
    const Line right = FitLine(v.data() + ll, lr);
    const Line merged = Eq34Merge(left, ll, right, lr);
    const Line refit = FitLine(v.data(), ll + lr);
    EXPECT_NEAR(merged.a, refit.a, kTol);
    EXPECT_NEAR(merged.b, refit.b, kTol);
  }
}

TEST_P(EquationSweep, Eq56LeftRecoversLeftFit) {
  Rng rng(GetParam() + 200);
  for (int trial = 0; trial < 30; ++trial) {
    const size_t ll = 2 + rng.UniformInt(20);
    const size_t lr = 2 + rng.UniformInt(20);
    const std::vector<double> v = RandomSeries(&rng, ll + lr);
    const Line merged = FitLine(v.data(), ll + lr);
    const Line right = FitLine(v.data() + ll, lr);
    const Line left = Eq56Left(merged, ll, right, lr);
    const Line refit = FitLine(v.data(), ll);
    EXPECT_NEAR(left.a, refit.a, 1e-6);
    EXPECT_NEAR(left.b, refit.b, 1e-6);
  }
}

TEST_P(EquationSweep, Eq78RightRecoversRightFit) {
  Rng rng(GetParam() + 300);
  for (int trial = 0; trial < 30; ++trial) {
    const size_t ll = 2 + rng.UniformInt(20);
    const size_t lr = 2 + rng.UniformInt(20);
    const std::vector<double> v = RandomSeries(&rng, ll + lr);
    const Line merged = FitLine(v.data(), ll + lr);
    const Line left = FitLine(v.data(), ll);
    const Line right = Eq78Right(merged, left, ll, lr);
    const Line refit = FitLine(v.data() + ll, lr);
    EXPECT_NEAR(right.a, refit.a, 1e-6);
    EXPECT_NEAR(right.b, refit.b, 1e-6);
  }
}

TEST_P(EquationSweep, Eq9ShrinkRightEqualsRefit) {
  Rng rng(GetParam() + 400);
  for (size_t l = 3; l <= 40; ++l) {
    const std::vector<double> v = RandomSeries(&rng, l);
    const Line fit = FitLine(v.data(), l);
    const Line shrunk = Eq9ShrinkRight(fit, l, v[l - 1]);
    const Line refit = FitLine(v.data(), l - 1);
    EXPECT_NEAR(shrunk.a, refit.a, kTol);
    EXPECT_NEAR(shrunk.b, refit.b, kTol);
  }
}

TEST_P(EquationSweep, Eq10GrowLeftEqualsRefit) {
  Rng rng(GetParam() + 500);
  for (size_t l = 2; l <= 40; ++l) {
    const std::vector<double> v = RandomSeries(&rng, l + 1);
    const Line fit = FitLine(v.data() + 1, l);
    const Line grown = Eq10GrowLeft(fit, l, v[0]);
    const Line refit = FitLine(v.data(), l + 1);
    EXPECT_NEAR(grown.a, refit.a, kTol);
    EXPECT_NEAR(grown.b, refit.b, kTol);
  }
}

TEST_P(EquationSweep, Eq11ShrinkLeftEqualsRefit) {
  Rng rng(GetParam() + 600);
  for (size_t l = 3; l <= 40; ++l) {
    const std::vector<double> v = RandomSeries(&rng, l);
    const Line fit = FitLine(v.data(), l);
    const Line shrunk = Eq11ShrinkLeft(fit, l, v[0]);
    const Line refit = FitLine(v.data() + 1, l - 1);
    EXPECT_NEAR(shrunk.a, refit.a, kTol);
    EXPECT_NEAR(shrunk.b, refit.b, kTol);
  }
}

TEST_P(EquationSweep, MergeThenSplitRoundTrips) {
  // Eq. (3)(4) composed with Eq. (5)(6)/(7)(8) is the identity.
  Rng rng(GetParam() + 700);
  for (int trial = 0; trial < 20; ++trial) {
    const size_t ll = 2 + rng.UniformInt(15);
    const size_t lr = 2 + rng.UniformInt(15);
    const std::vector<double> v = RandomSeries(&rng, ll + lr);
    const Line left = FitLine(v.data(), ll);
    const Line right = FitLine(v.data() + ll, lr);
    const Line merged = Eq34Merge(left, ll, right, lr);
    const Line left2 = Eq56Left(merged, ll, right, lr);
    const Line right2 = Eq78Right(merged, left, ll, lr);
    EXPECT_NEAR(left2.a, left.a, 1e-6);
    EXPECT_NEAR(left2.b, left.b, 1e-6);
    EXPECT_NEAR(right2.a, right.a, 1e-6);
    EXPECT_NEAR(right2.b, right.b, 1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EquationSweep,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

}  // namespace
}  // namespace sapla
