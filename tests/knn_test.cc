// End-to-end k-NN tests across the GEMINI stack: linear scan ground truth,
// SimilarityIndex over both trees, pruning power and accuracy metrics.

#include "search/knn.h"

#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "search/metrics.h"
#include "ts/synthetic_archive.h"
#include "util/rng.h"

namespace sapla {
namespace {

Dataset SmallDataset(size_t id = 3, size_t n = 128, size_t count = 60) {
  SyntheticOptions opt;
  opt.length = n;
  opt.num_series = count;
  return MakeSyntheticDataset(id, opt);
}

TEST(LinearScanKnn, ReturnsSortedExactNeighbors) {
  const Dataset ds = SmallDataset();
  const std::vector<double>& q = ds.series[7].values;
  const KnnResult res = LinearScanKnn(ds, q, 5);
  ASSERT_EQ(res.neighbors.size(), 5u);
  EXPECT_EQ(res.num_measured, ds.size());
  // Self-match first at distance 0, ascending thereafter.
  EXPECT_EQ(res.neighbors[0].second, 7u);
  EXPECT_NEAR(res.neighbors[0].first, 0.0, 1e-9);
  for (size_t i = 1; i < res.neighbors.size(); ++i)
    EXPECT_GE(res.neighbors[i].first, res.neighbors[i - 1].first);
}

// Regression: k == 0 used to hit heap_.top() on an empty heap (UB). Both
// entry points must return an empty result without touching any series.
TEST(LinearScanKnn, KZeroReturnsEmpty) {
  const Dataset ds = SmallDataset(4, 64, 8);
  const KnnResult res = LinearScanKnn(ds, ds.series[0].values, 0);
  EXPECT_TRUE(res.neighbors.empty());
  EXPECT_EQ(res.num_measured, 0u);
}

TEST(SimilarityIndex, KZeroReturnsEmpty) {
  const Dataset ds = SmallDataset(4, 64, 8);
  for (const IndexKind kind : {IndexKind::kRTree, IndexKind::kDbchTree}) {
    SimilarityIndex index(Method::kSapla, 12, kind);
    ASSERT_TRUE(index.Build(ds).ok());
    const KnnResult res = index.Knn(ds.series[0].values, 0);
    EXPECT_TRUE(res.neighbors.empty());
    EXPECT_EQ(res.num_measured, 0u);
  }
}

// Equal distances must resolve to ascending series id, so serial, batch
// and backend variants return the same k-set in the same order even when
// the dataset contains duplicate series.
TEST(LinearScanKnn, TiesBreakByAscendingId) {
  Dataset ds;
  ds.name = "dups";
  const std::vector<double> a{0.0, 1.0, 2.0, 3.0};
  const std::vector<double> b{5.0, 5.0, 5.0, 5.0};
  ds.series.emplace_back(b);  // id 0: distance d to query
  ds.series.emplace_back(a);  // id 1: exact match
  ds.series.emplace_back(b);  // id 2: duplicate of id 0
  ds.series.emplace_back(b);  // id 3: duplicate of id 0
  const KnnResult res = LinearScanKnn(ds, a, 3);
  ASSERT_EQ(res.neighbors.size(), 3u);
  EXPECT_EQ(res.neighbors[0].second, 1u);
  // The two tied slots keep the smallest ids, ascending.
  EXPECT_EQ(res.neighbors[1].second, 0u);
  EXPECT_EQ(res.neighbors[2].second, 2u);
  EXPECT_EQ(res.neighbors[1].first, res.neighbors[2].first);
}

TEST(SimilarityIndex, TiesBreakByAscendingIdOnBothBackends) {
  Dataset ds;
  ds.name = "dups";
  std::vector<double> base(64), other(64);
  for (size_t i = 0; i < base.size(); ++i) {
    base[i] = static_cast<double>(i % 7) - 3.0;
    other[i] = base[i] + 2.0;
  }
  for (int rep = 0; rep < 4; ++rep) ds.series.emplace_back(other);
  ds.series.emplace_back(base);  // id 4: the query itself
  for (const IndexKind kind : {IndexKind::kRTree, IndexKind::kDbchTree}) {
    SimilarityIndex index(Method::kPaa, 8, kind);
    ASSERT_TRUE(index.Build(ds).ok());
    const KnnResult res = index.Knn(base, 3);
    ASSERT_EQ(res.neighbors.size(), 3u);
    EXPECT_EQ(res.neighbors[0].second, 4u);
    EXPECT_EQ(res.neighbors[1].second, 0u);
    EXPECT_EQ(res.neighbors[2].second, 1u);
  }
}

TEST(LinearScanKnn, KLargerThanDatasetClamps) {
  const Dataset ds = SmallDataset(4, 64, 8);
  const KnnResult res = LinearScanKnn(ds, ds.series[0].values, 20);
  EXPECT_EQ(res.neighbors.size(), 8u);
}

TEST(SimilarityIndex, BuildRejectsBadInput) {
  SimilarityIndex index(Method::kPaa, 12, IndexKind::kRTree);
  Dataset empty;
  EXPECT_FALSE(index.Build(empty).ok());

  Dataset ragged = SmallDataset(5, 64, 4);
  ragged.series[2].values.pop_back();
  EXPECT_FALSE(index.Build(ragged).ok());
}

TEST(SimilarityIndex, BuildInfoPopulated) {
  const Dataset ds = SmallDataset();
  SimilarityIndex index(Method::kSapla, 12, IndexKind::kDbchTree);
  BuildInfo info;
  ASSERT_TRUE(index.Build(ds, &info).ok());
  EXPECT_EQ(info.stats.entries, ds.size());
  EXPECT_GE(info.stats.height, 2u);
  EXPECT_GE(info.reduce_cpu_seconds, 0.0);
}

// PAA's region MINDIST and MBRs are provably lower-bounding, so R-tree k-NN
// must return the exact k-NN set (accuracy 1.0).
TEST(SimilarityIndex, PaaRTreeKnnIsExact) {
  const Dataset ds = SmallDataset(6);
  SimilarityIndex index(Method::kPaa, 12, IndexKind::kRTree);
  ASSERT_TRUE(index.Build(ds).ok());
  for (size_t qi : {0u, 11u, 23u}) {
    const std::vector<double>& q = ds.series[qi].values;
    const KnnResult truth = LinearScanKnn(ds, q, 8);
    const KnnResult res = index.Knn(q, 8);
    EXPECT_DOUBLE_EQ(Accuracy(res, truth, 8), 1.0) << "query " << qi;
    EXPECT_LE(res.num_measured, ds.size());
  }
}

TEST(SimilarityIndex, SegmentMethodsRTreeKnnIsExact) {
  // Raw-range MBRs + the Dist_LB leaf filter are rigorous for every method
  // whose stored coefficients are LS fits of the raw ranges, so R-tree k-NN
  // must return the exact answer for SAPLA/APLA/APCA/PLA too.
  const Dataset ds = SmallDataset(11);
  for (const Method method :
       {Method::kSapla, Method::kApla, Method::kApca, Method::kPla}) {
    SimilarityIndex index(method, 12, IndexKind::kRTree);
    ASSERT_TRUE(index.Build(ds).ok()) << MethodName(method);
    for (size_t qi : {2u, 17u}) {
      const std::vector<double>& q = ds.series[qi].values;
      const KnnResult truth = LinearScanKnn(ds, q, 6);
      const KnnResult res = index.Knn(q, 6);
      EXPECT_DOUBLE_EQ(Accuracy(res, truth, 6), 1.0)
          << MethodName(method) << " query " << qi;
    }
  }
}

TEST(SimilarityIndex, ChebyRTreeKnnIsExact) {
  const Dataset ds = SmallDataset(7);
  SimilarityIndex index(Method::kCheby, 12, IndexKind::kRTree);
  ASSERT_TRUE(index.Build(ds).ok());
  const std::vector<double>& q = ds.series[3].values;
  const KnnResult truth = LinearScanKnn(ds, q, 4);
  const KnnResult res = index.Knn(q, 4);
  EXPECT_DOUBLE_EQ(Accuracy(res, truth, 4), 1.0);
}

TEST(SimilarityIndex, SelfQueryFindsSelf) {
  // Whatever the method/tree, querying with an indexed series must return
  // that series as the nearest neighbor (distance 0 passes every filter).
  const Dataset ds = SmallDataset(8);
  for (const Method method : AllMethods()) {
    for (const IndexKind kind : {IndexKind::kRTree, IndexKind::kDbchTree}) {
      SimilarityIndex index(method, 12, kind);
      ASSERT_TRUE(index.Build(ds).ok()) << MethodName(method);
      const KnnResult res = index.Knn(ds.series[9].values, 1);
      ASSERT_EQ(res.neighbors.size(), 1u) << MethodName(method);
      EXPECT_NEAR(res.neighbors[0].first, 0.0, 1e-9)
          << MethodName(method) << (kind == IndexKind::kRTree ? " R" : " D");
    }
  }
}

TEST(SimilarityIndex, ReportedDistancesAreExact) {
  const Dataset ds = SmallDataset(9);
  SimilarityIndex index(Method::kSapla, 18, IndexKind::kDbchTree);
  ASSERT_TRUE(index.Build(ds).ok());
  const std::vector<double>& q = ds.series[1].values;
  const KnnResult res = index.Knn(q, 5);
  for (const auto& [dist, id] : res.neighbors)
    EXPECT_NEAR(dist, EuclideanDistance(q, ds.series[id].values), 1e-9);
}

TEST(Metrics, PruningPowerDefinition) {
  KnnResult r;
  r.num_measured = 25;
  EXPECT_DOUBLE_EQ(PruningPower(r, 100), 0.25);
}

TEST(Metrics, AccuracyCountsIntersection) {
  KnnResult truth, res;
  truth.neighbors = {{0.0, 1}, {1.0, 2}, {2.0, 3}, {3.0, 4}};
  res.neighbors = {{0.0, 1}, {1.5, 3}, {9.0, 7}, {9.5, 8}};
  EXPECT_DOUBLE_EQ(Accuracy(res, truth, 4), 0.5);
}

// Parameterized sweep: every (method, index kind) builds, searches, and
// yields sane metrics on a class-structured dataset.
struct StackCase {
  Method method;
  IndexKind kind;
};

class StackSweep : public ::testing::TestWithParam<StackCase> {};

TEST_P(StackSweep, EndToEndKnn) {
  const auto [method, kind] = GetParam();
  const Dataset ds = SmallDataset(10);
  SimilarityIndex index(method, 12, kind);
  BuildInfo info;
  ASSERT_TRUE(index.Build(ds, &info).ok());
  EXPECT_EQ(info.stats.entries, ds.size());

  Rng rng(77);
  for (int trial = 0; trial < 3; ++trial) {
    const size_t qi = rng.UniformInt(ds.size());
    const std::vector<double>& q = ds.series[qi].values;
    const KnnResult truth = LinearScanKnn(ds, q, 4);
    const KnnResult res = index.Knn(q, 4);
    ASSERT_GE(res.neighbors.size(), 1u);
    const double rho = PruningPower(res, ds.size());
    EXPECT_GT(rho, 0.0);
    EXPECT_LE(rho, 1.0);
    const double acc = Accuracy(res, truth, 4);
    EXPECT_GE(acc, 0.25);  // the self-match is always found
    EXPECT_LE(acc, 1.0);
  }
}

std::vector<StackCase> AllStackCases() {
  std::vector<StackCase> cases;
  for (const Method method : AllMethods())
    for (const IndexKind kind : {IndexKind::kRTree, IndexKind::kDbchTree})
      cases.push_back({method, kind});
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    MethodsTimesTrees, StackSweep, ::testing::ValuesIn(AllStackCases()),
    [](const ::testing::TestParamInfo<StackCase>& info) {
      return MethodName(info.param.method) +
             (info.param.kind == IndexKind::kRTree ? "_RTree" : "_DbchTree");
    });

}  // namespace
}  // namespace sapla
