// Tests for the DFT extension reducer (GEMINI's original transform).

#include "reduction/dft.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "search/knn.h"
#include "search/metrics.h"
#include "ts/synthetic_archive.h"
#include "ts/time_series.h"
#include "util/rng.h"

namespace sapla {
namespace {

std::vector<double> ZNormSeries(uint64_t seed, size_t n) {
  Rng rng(seed);
  std::vector<double> v(n);
  double x = 0.0;
  for (auto& p : v) {
    x += rng.Gaussian();
    p = x;
  }
  ZNormalize(&v);
  return v;
}

TEST(Dft, FullBudgetReconstructsExactly) {
  const std::vector<double> v = ZNormSeries(1, 64);
  // 2*bins real values with bins = n/2+1 covers the whole real spectrum;
  // request enough budget for every bin.
  const Representation rep = DftReducer().Reduce(v, 2 * (64 / 2 + 1));
  const std::vector<double> rec = rep.Reconstruct();
  for (size_t t = 0; t < v.size(); ++t) EXPECT_NEAR(rec[t], v[t], 1e-8);
}

TEST(Dft, DcBinIsScaledMean) {
  std::vector<double> v(32, 3.0);
  const Representation rep = DftReducer().Reduce(v, 8);
  EXPECT_NEAR(rep.coeffs[0], 3.0 * std::sqrt(32.0), 1e-9);
  EXPECT_NEAR(rep.coeffs[1], 0.0, 1e-12);
}

TEST(Dft, PureToneConcentratesInOneBin) {
  std::vector<double> v(64);
  for (size_t t = 0; t < 64; ++t)
    v[t] = std::cos(2.0 * M_PI * 5.0 * static_cast<double>(t) / 64.0);
  const Representation rep = DftReducer().Reduce(v, 20);  // bins 0..9
  for (size_t k = 0; k < 10; ++k) {
    const double mag = std::hypot(rep.coeffs[2 * k], rep.coeffs[2 * k + 1]);
    if (k == 5) {
      EXPECT_GT(mag, 3.0);
    } else {
      EXPECT_NEAR(mag, 0.0, 1e-9) << "bin " << k;
    }
  }
}

TEST(Dft, DistLowerBoundsEuclidean) {
  const DftReducer reducer;
  for (uint64_t seed = 0; seed < 30; ++seed) {
    const std::vector<double> a = ZNormSeries(seed + 10, 100);
    const std::vector<double> b = ZNormSeries(seed + 700, 100);
    const Representation ra = reducer.Reduce(a, 16);
    const Representation rb = reducer.Reduce(b, 16);
    EXPECT_LE(DftDist(ra, rb), EuclideanDistance(a, b) + 1e-9) << seed;
  }
}

TEST(Dft, DistWithFullSpectrumEqualsEuclidean) {
  const std::vector<double> a = ZNormSeries(40, 64);
  const std::vector<double> b = ZNormSeries(41, 64);
  const DftReducer reducer;
  const size_t full = 2 * (64 / 2 + 1);
  EXPECT_NEAR(DftDist(reducer.Reduce(a, full), reducer.Reduce(b, full)),
              EuclideanDistance(a, b), 1e-8);
}

TEST(Dft, TruncationErrorDecreasesWithBudget) {
  const std::vector<double> v = ZNormSeries(5, 128);
  double prev = 1e300;
  for (const size_t m : {4, 8, 16, 32, 64}) {
    const double err = SquaredEuclideanDistance(
        v, DftReducer().Reduce(v, m).Reconstruct());
    EXPECT_LE(err, prev + 1e-9);
    prev = err;
  }
}

TEST(Dft, EndToEndRTreeKnnIsExact) {
  SyntheticOptions opt;
  opt.length = 128;
  opt.num_series = 50;
  const Dataset ds = MakeSyntheticDataset(2, opt);
  SimilarityIndex index(Method::kDft, 12, IndexKind::kRTree);
  ASSERT_TRUE(index.Build(ds).ok());
  const std::vector<double>& q = ds.series[8].values;
  const KnnResult truth = LinearScanKnn(ds, q, 5);
  const KnnResult res = index.Knn(q, 5);
  EXPECT_DOUBLE_EQ(Accuracy(res, truth, 5), 1.0);
}

TEST(Dft, ListedInExtendedMethodsOnly) {
  const auto base = AllMethods();
  const auto extended = AllMethodsExtended();
  EXPECT_EQ(base.size(), 8u);
  EXPECT_EQ(extended.size(), 9u);
  EXPECT_EQ(extended.back(), Method::kDft);
  for (const Method m : base) EXPECT_NE(m, Method::kDft);
}

}  // namespace
}  // namespace sapla
