// Reproduces the paper's worked example (Figs. 1, 5, 6, 8): the 20-point
// series {7,8,20,15,18,8,8,15,10,1,4,3,3,5,4,9,2,9,10,10} reduced with
// M = 12 coefficients.

#include <vector>

#include <gtest/gtest.h>

#include "core/sapla.h"
#include "reduction/apca.h"
#include "reduction/apla.h"
#include "reduction/pla.h"

namespace sapla {
namespace {

const std::vector<double> kPaperSeries{7,  8, 20, 15, 18, 8, 8, 15, 10, 1,
                                       4,  3, 3,  5,  4,  9, 2, 9,  10, 10};
constexpr size_t kM = 12;

TEST(PaperExample, InitializationMatchesFig5) {
  // Fig. 5 lists the initialized representation exactly:
  // {<1,7,1>, <-5,20,3>, <-10,18,5>, <7,8,7>, <-9,10,9>,
  //  <0.781818, 2.38182, 19>}.
  const Representation rep = SaplaReducer().InitializeOnly(kPaperSeries, 4);
  ASSERT_EQ(rep.segments.size(), 6u);
  const std::vector<LinearSegment> expected{
      {1.0, 7.0, 1},   {-5.0, 20.0, 3}, {-10.0, 18.0, 5},
      {7.0, 8.0, 7},   {-9.0, 10.0, 9}, {0.781818, 2.38182, 19}};
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_NEAR(rep.segments[i].a, expected[i].a, 1e-4) << "segment " << i;
    EXPECT_NEAR(rep.segments[i].b, expected[i].b, 1e-4) << "segment " << i;
    EXPECT_EQ(rep.segments[i].r, expected[i].r) << "segment " << i;
  }
}

TEST(PaperExample, SaplaQualityMatchesFig1) {
  // Fig. 1a/8b: SAPLA at N = 4 reaches a max-deviation sum of 9.27273.
  // Our pipeline reproduces it exactly.
  const Representation rep = SaplaReducer().Reduce(kPaperSeries, kM);
  EXPECT_EQ(rep.segments.size(), 4u);
  EXPECT_NEAR(rep.SumMaxDeviation(kPaperSeries), 9.27273, 1e-4);
}

TEST(PaperExample, PhaseProgressionReducesBound) {
  // beta_after_init and beta_after_sm are not comparable (different segment
  // counts scale the (l-1) factors); movement must not raise the bound.
  SaplaReducer reducer;
  SaplaProfile profile;
  reducer.ReduceToSegments(kPaperSeries, 4, &profile);
  EXPECT_EQ(profile.segments_after_init, 6u);
  EXPECT_LE(profile.beta_final, profile.beta_after_sm + 1e-9);
}

TEST(PaperExample, EndpointMovementImprovesFig6ToFig8) {
  // Fig. 6 reports 10.6061 after split & merge; Fig. 8 reports 9.27273
  // after endpoint movement. Both values reproduce exactly.
  SaplaOptions no_move;
  no_move.endpoint_movement = false;
  const Representation before =
      SaplaReducer(no_move).Reduce(kPaperSeries, kM);
  const Representation after = SaplaReducer().Reduce(kPaperSeries, kM);
  EXPECT_NEAR(before.SumMaxDeviation(kPaperSeries), 10.6061, 1e-4);
  EXPECT_NEAR(after.SumMaxDeviation(kPaperSeries), 9.27273, 1e-4);
}

TEST(PaperExample, AplaIsAtLeastAsGoodAsSapla) {
  // APLA's DP is the quality optimum for sum-of-max-deviations.
  const Representation apla = AplaReducer().Reduce(kPaperSeries, kM);
  const Representation sapla = SaplaReducer().Reduce(kPaperSeries, kM);
  EXPECT_EQ(apla.segments.size(), 4u);
  EXPECT_LE(apla.SumMaxDeviation(kPaperSeries),
            sapla.SumMaxDeviation(kPaperSeries) + 1e-9);
}

TEST(PaperExample, ApcaAndPlaMatchFig1Captions) {
  // Fig. 1c: APCA (N = 6) max-deviation sum 18.4167 — our bottom-up APCA
  // lands on the same segmentation and reproduces it exactly.
  const Representation apca = ApcaReducer().Reduce(kPaperSeries, kM);
  EXPECT_EQ(apca.segments.size(), 6u);
  EXPECT_NEAR(apca.SumMaxDeviation(kPaperSeries), 18.4167, 1e-3);

  // Our balanced partition differs from the authors' (n = 20 does not divide
  // by 6), shifting the sum slightly.
  const Representation pla = PlaReducer().Reduce(kPaperSeries, kM);
  EXPECT_EQ(pla.segments.size(), 6u);
  EXPECT_NEAR(pla.SumMaxDeviation(kPaperSeries), 19.3999, 2.0);
}

TEST(PaperExample, AdaptiveLinearBeatsEqualAndConstant) {
  // The paper's Fig. 1 ordering: SAPLA/APLA (N=4) < APCA (N=6) < PLA (N=6)
  // on this series at equal coefficient budget.
  const double sapla =
      SaplaReducer().Reduce(kPaperSeries, kM).SumMaxDeviation(kPaperSeries);
  const double apla =
      AplaReducer().Reduce(kPaperSeries, kM).SumMaxDeviation(kPaperSeries);
  const double apca =
      ApcaReducer().Reduce(kPaperSeries, kM).SumMaxDeviation(kPaperSeries);
  const double pla =
      PlaReducer().Reduce(kPaperSeries, kM).SumMaxDeviation(kPaperSeries);
  EXPECT_LT(apla, apca);
  EXPECT_LT(sapla, apca);
  EXPECT_LT(apla, pla);
  EXPECT_LT(sapla, pla);
}

}  // namespace
}  // namespace sapla
