// Column-codec and storage-tier tests: varint/zigzag primitives, the
// lossless column codecs, the store quantizer's error and slack contracts,
// the v4 SAPLACOL revision (byte-identity, v1/v2/v3 -> v4 migration,
// corruption fuzzing), the mmap-backed cold tier (hot == cold views, LRU
// eviction, concurrent readers) and the copy-takes-a-fresh-store-id
// regression.

#include <atomic>
#include <cmath>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/sapla.h"
#include "distance/distance.h"
#include "distance/kernels.h"
#include "reduction/column_codec.h"
#include "reduction/column_residency.h"
#include "reduction/representation.h"
#include "reduction/representation_store.h"
#include "ts/io.h"
#include "ts/synthetic_archive.h"
#include "util/rng.h"

namespace sapla {
namespace {

Dataset SmallDataset(uint64_t seed = 9, size_t length = 96,
                     size_t count = 12) {
  SyntheticOptions opt;
  opt.length = length;
  opt.num_series = count;
  return MakeSyntheticDataset(seed, opt);
}

RepresentationStore MakeStore(Method method, const Dataset& ds,
                              size_t m = 12) {
  const auto reducer = MakeReducer(method);
  RepresentationStore store;
  for (const TimeSeries& ts : ds.series)
    reducer->ReduceInto(ts.values, m, &store);
  return store;
}

std::string RepText(const RepresentationStore& store, size_t id) {
  return SerializeRepresentation(store.ToRepresentation(id));
}

// --- codec primitives ------------------------------------------------------

TEST(ColumnCodec, VarintRoundTrips) {
  const uint64_t values[] = {0,    1,    127,        128,
                             300,  1u << 14, (1u << 21) - 1, 1ull << 35,
                             ~0ull};
  std::string buf;
  for (const uint64_t v : values) colcodec::PutVarint(&buf, v);
  const char* p = buf.data();
  const char* end = buf.data() + buf.size();
  for (const uint64_t v : values) {
    uint64_t got = 0;
    ASSERT_TRUE(colcodec::GetVarint(&p, end, &got));
    EXPECT_EQ(got, v);
  }
  EXPECT_EQ(p, end);
  // Truncated input fails instead of reading past the end.
  for (size_t len = 0; len < buf.size(); ++len) {
    const char* q = buf.data();
    const char* qe = buf.data() + len;
    uint64_t sink = 0;
    size_t decoded = 0;
    while (colcodec::GetVarint(&q, qe, &sink)) ++decoded;
    EXPECT_LE(q, qe);
  }
}

TEST(ColumnCodec, ZigzagRoundTrips) {
  const int64_t values[] = {0, 1, -1, 2, -2, 1234567, -1234567,
                           INT64_MAX, INT64_MIN};
  for (const int64_t v : values)
    EXPECT_EQ(colcodec::ZigzagDecode(colcodec::ZigzagEncode(v)), v);
  // Small magnitudes map to small codes (the property delta coding needs).
  EXPECT_EQ(colcodec::ZigzagEncode(0), 0u);
  EXPECT_EQ(colcodec::ZigzagEncode(-1), 1u);
  EXPECT_EQ(colcodec::ZigzagEncode(1), 2u);
}

TEST(ColumnCodec, F64ColumnQuantizedPathIsBitExactAndSmaller) {
  // A column whose every value is an exact multiple of the step uses
  // kDeltaFixedF64 and decodes bit-exactly.
  const double step = 1e-3;
  std::vector<double> v;
  for (int i = 0; i < 512; ++i)
    v.push_back(static_cast<double>((i * 37) % 1000 - 500) * step);
  std::string blob;
  colcodec::EncodeF64Column(v.data(), v.size(), step, &blob);
  EXPECT_LT(blob.size(), v.size() * sizeof(double));

  colcodec::Cursor c{blob.data(), blob.data() + blob.size()};
  std::vector<double> out;
  double step_out = 0.0;
  ASSERT_TRUE(colcodec::DecodeF64Column(&c, v.size(), &out, &step_out).ok());
  EXPECT_EQ(step_out, step);
  ASSERT_EQ(out.size(), v.size());
  for (size_t i = 0; i < v.size(); ++i)
    EXPECT_EQ(out[i], v[i]) << "value " << i;
  EXPECT_EQ(c.remaining(), 0u);
}

TEST(ColumnCodec, F64ColumnFallsBackToRawWhenNotRepresentable) {
  // Values that do not round-trip through the fixed-point grid (or are
  // non-finite) force the whole column to raw f64 — still bit-exact.
  const std::vector<double> v = {0.1, 1.0 / 3.0, 2e18,
                                 std::nan(""), -0.0, 1e-300};
  std::string blob;
  colcodec::EncodeF64Column(v.data(), v.size(), /*step=*/1e-3, &blob);

  colcodec::Cursor c{blob.data(), blob.data() + blob.size()};
  std::vector<double> out;
  double step_out = -1.0;
  ASSERT_TRUE(colcodec::DecodeF64Column(&c, v.size(), &out, &step_out).ok());
  ASSERT_EQ(out.size(), v.size());
  for (size_t i = 0; i < v.size(); ++i) {
    if (std::isnan(v[i]))
      EXPECT_TRUE(std::isnan(out[i]));
    else
      EXPECT_EQ(out[i], v[i]) << "value " << i;
  }
}

TEST(ColumnCodec, IntColumnRoundTrips) {
  std::vector<int64_t> v = {0, 5, 5, 6, 100, 99, -3, 1ll << 40, 0};
  std::string blob;
  colcodec::EncodeIntColumn(v.data(), v.size(), &blob);
  colcodec::Cursor c{blob.data(), blob.data() + blob.size()};
  std::vector<int64_t> out;
  ASSERT_TRUE(colcodec::DecodeIntColumn(&c, v.size(), &out).ok());
  EXPECT_EQ(out, v);
}

TEST(ColumnCodec, DecodeRejectsCountMismatchAndTruncation) {
  std::vector<double> v(16, 2e-3);
  std::string blob;
  colcodec::EncodeF64Column(v.data(), v.size(), 1e-3, &blob);

  colcodec::Cursor wrong{blob.data(), blob.data() + blob.size()};
  std::vector<double> out;
  EXPECT_FALSE(colcodec::DecodeF64Column(&wrong, v.size() + 1, &out,
                                         nullptr).ok());
  for (const size_t len : {size_t{0}, size_t{3}, blob.size() - 1}) {
    colcodec::Cursor trunc{blob.data(), blob.data() + len};
    EXPECT_FALSE(colcodec::DecodeF64Column(&trunc, v.size(), &out,
                                           nullptr).ok())
        << "truncated to " << len;
  }
}

// --- the quantizer ---------------------------------------------------------

TEST(QuantizeStore, PreservesStructureAndBoundsError) {
  const Dataset ds = SmallDataset();
  for (const Method method : AllMethodsExtended()) {
    const RepresentationStore store = MakeStore(method, ds);
    StoreCodecOptions codec;
    codec.ab_step = 1e-3;
    codec.coeff_step = 1e-3;
    const auto quantized = QuantizeStore(store, codec);
    ASSERT_TRUE(quantized.ok()) << MethodName(method);

    EXPECT_TRUE(quantized->quantized());
    EXPECT_EQ(quantized->codec().ab_step, codec.ab_step);
    EXPECT_EQ(quantized->size(), store.size());
    // The segmentation, symbols and offset tables are preserved bit for
    // bit — only float values move, and by at most step / 2.
    EXPECT_EQ(quantized->seg_offsets(), store.seg_offsets());
    EXPECT_EQ(quantized->coeff_offsets(), store.coeff_offsets());
    EXPECT_EQ(quantized->symbol_offsets(), store.symbol_offsets());
    EXPECT_EQ(quantized->r_column(), store.r_column());
    EXPECT_EQ(quantized->symbol_column(), store.symbol_column());
    for (size_t i = 0; i < store.a_column().size(); ++i) {
      EXPECT_LE(std::abs(quantized->a_column()[i] - store.a_column()[i]),
                codec.ab_step / 2 + 1e-15)
          << MethodName(method);
      EXPECT_LE(std::abs(quantized->b_column()[i] - store.b_column()[i]),
                codec.ab_step / 2 + 1e-15)
          << MethodName(method);
    }
    for (size_t i = 0; i < store.coeff_column().size(); ++i)
      EXPECT_LE(std::abs(quantized->coeff_column()[i] -
                         store.coeff_column()[i]),
                codec.coeff_step / 2 + 1e-15)
          << MethodName(method);
  }
}

TEST(QuantizeStore, SlackBoundsFilterDriftForRandomQueries) {
  // The persisted contract: for EVERY query q and series i,
  // |LB(q, quant_i) - LB(q, orig_i)| <= lb_slack(i). Checked for both the
  // Dist_LB kernel and the Dist_PAR filter over random queries.
  const Dataset ds = SmallDataset(/*seed=*/21, /*length=*/96, /*count=*/20);
  Rng rng(77);
  for (const Method method : AllMethods()) {
    const RepresentationStore store = MakeStore(method, ds);
    StoreCodecOptions codec;
    codec.ab_step = 5e-2;  // coarse on purpose: real drift to bound
    codec.coeff_step = 5e-2;
    const auto quantized = QuantizeStore(store, codec);
    ASSERT_TRUE(quantized.ok()) << MethodName(method);

    const auto reducer = MakeReducer(method);
    DistanceScratch scratch;
    for (size_t qi = 0; qi < 6; ++qi) {
      std::vector<double> q = ds.series[rng.UniformInt(ds.size())].values;
      for (double& x : q) x += rng.Gaussian(0.0, 0.3);
      RepresentationStore query_store;
      reducer->ReduceInto(q, 12, &query_store);
      const RepView q_rep = query_store.view(0);
      const PrefixFitter fitter(q);
      for (size_t i = 0; i < store.size(); ++i) {
        const double slack = quantized->lb_slack(i);
        EXPECT_GE(slack, 0.0);
        EXPECT_LE(slack, quantized->max_lb_slack());
        const double lb0 =
            LowerBoundDistanceView(q_rep, store.view(i), &scratch);
        const double lb1 =
            LowerBoundDistanceView(q_rep, quantized->view(i), &scratch);
        EXPECT_LE(std::abs(lb1 - lb0), slack + 1e-9)
            << MethodName(method) << " LB, series " << i;
        const double f0 =
            FilterDistanceView(fitter, q_rep, store.view(i), &scratch);
        const double f1 =
            FilterDistanceView(fitter, q_rep, quantized->view(i), &scratch);
        EXPECT_LE(std::abs(f1 - f0), slack + 1e-9)
            << MethodName(method) << " filter, series " << i;
      }
    }
    // SAX carries no float columns, so quantization is free of drift.
    if (method == Method::kSax)
      EXPECT_EQ(quantized->max_lb_slack(), 0.0);
  }
}

TEST(QuantizeStore, QuantizingTwiceWithSameStepsIsIdentity) {
  const Dataset ds = SmallDataset();
  const RepresentationStore store = MakeStore(Method::kSapla, ds);
  StoreCodecOptions codec;
  codec.ab_step = 1e-3;
  codec.coeff_step = 1e-3;
  const auto once = QuantizeStore(store, codec);
  ASSERT_TRUE(once.ok());
  const auto twice = QuantizeStore(*once, codec);
  ASSERT_TRUE(twice.ok());
  EXPECT_TRUE(*twice == *once);
}

// --- store identity (the copy-aliasing regression) -------------------------

TEST(StoreIdentity, CopyTakesAFreshStoreId) {
  // Regression: the defaulted copy constructor used to duplicate
  // store_id_, so a copied corpus aliased the original's entries in the
  // serving result cache. Copies must keep the content and change the id.
  const Dataset ds = SmallDataset();
  const RepresentationStore store = MakeStore(Method::kSapla, ds);

  const RepresentationStore copied(store);
  EXPECT_TRUE(copied == store);
  EXPECT_NE(copied.id(), store.id());

  RepresentationStore assigned = MakeStore(Method::kPaa, ds);
  const uint64_t pre_assign_id = assigned.id();
  assigned = store;
  EXPECT_TRUE(assigned == store);
  EXPECT_NE(assigned.id(), store.id());
  EXPECT_NE(assigned.id(), copied.id());
  EXPECT_NE(assigned.id(), pre_assign_id);

  // Self-assignment keeps content intact.
  RepresentationStore self = store;
  self = *&self;
  EXPECT_TRUE(self == store);

  // Reset also re-keys.
  RepresentationStore reset_me = store;
  const uint64_t before_reset = reset_me.id();
  reset_me.Reset();
  EXPECT_NE(reset_me.id(), before_reset);
  EXPECT_TRUE(reset_me.empty());
}

// --- v4 persistence --------------------------------------------------------

RepresentationStore QuantizedStore(Method method, const Dataset& ds) {
  StoreCodecOptions codec;
  codec.ab_step = 1e-3;
  codec.coeff_step = 1e-3;
  auto q = QuantizeStore(MakeStore(method, ds), codec);
  EXPECT_TRUE(q.ok());
  return std::move(q).ValueOrDie();
}

TEST(StoreV4, SaveLoadSaveIsByteIdentical) {
  const Dataset ds = SmallDataset();
  for (const Method method : AllMethods()) {
    const RepresentationStore store = QuantizedStore(method, ds);
    const std::string once = SerializeRepresentationStore(store);
    // kAuto picks v4 for a quantized store (v3 cannot carry the slack).
    ASSERT_GE(once.size(), 12u);
    EXPECT_EQ(once[8], 4) << MethodName(method);
    const auto loaded = ParseRepresentationStore(once);
    ASSERT_TRUE(loaded.ok())
        << MethodName(method) << ": " << loaded.status().ToString();
    EXPECT_TRUE(*loaded == store) << MethodName(method);
    EXPECT_TRUE(loaded->quantized());
    for (size_t i = 0; i < store.size(); ++i)
      EXPECT_EQ(loaded->lb_slack(i), store.lb_slack(i));
    EXPECT_EQ(SerializeRepresentationStore(*loaded), once)
        << MethodName(method);
  }
}

TEST(StoreV4, UnquantizedStoresStayOnV3UnderAuto) {
  const Dataset ds = SmallDataset();
  const RepresentationStore store = MakeStore(Method::kSapla, ds);
  const std::string bytes = SerializeRepresentationStore(store);
  ASSERT_GE(bytes.size(), 12u);
  EXPECT_EQ(bytes[8], 3);
}

TEST(StoreV4, MigratesEveryOlderRevision) {
  // v1 text, hand-rolled v2, v3 and forced-v4 bytes of the same corpus all
  // load to equal stores, and re-saving any of them as v4 round-trips.
  const Dataset ds = SmallDataset();
  const RepresentationStore store = MakeStore(Method::kSapla, ds);

  std::string v1;
  for (size_t i = 0; i < store.size(); ++i) v1 += RepText(store, i);

  // The v2 writer from before checksums existed (see store_io_test.cc).
  std::string v2 = "SAPLACOL";
  const auto put = [&v2](const auto& v) {
    v2.append(reinterpret_cast<const char*>(&v), sizeof(v));
  };
  const auto put_array = [&v2](const auto& vec) {
    if (!vec.empty())
      v2.append(reinterpret_cast<const char*>(vec.data()),
                vec.size() * sizeof(vec[0]));
  };
  const auto pad8 = [&v2] {
    while (v2.size() % 8 != 0) v2.push_back('\0');
  };
  put(uint32_t{2});
  const std::string name = MethodName(store.method());
  put(static_cast<uint32_t>(name.size()));
  v2 += name;
  pad8();
  put(uint64_t{store.series_length()});
  put(uint64_t{store.alphabet()});
  put(uint64_t{store.size()});
  put(uint64_t{store.a_column().size()});
  put(uint64_t{store.coeff_column().size()});
  put(uint64_t{store.symbol_column().size()});
  put_array(store.seg_offsets());
  put_array(store.coeff_offsets());
  put_array(store.symbol_offsets());
  put_array(store.a_column());
  put_array(store.b_column());
  put_array(store.r_column());
  pad8();
  put_array(store.coeff_column());
  put_array(store.symbol_column());
  pad8();

  const std::string v3 =
      SerializeRepresentationStore(store, StoreFormat::kV3);
  const std::string v4 =
      SerializeRepresentationStore(store, StoreFormat::kV4);
  ASSERT_NE(v3, v4);

  const std::vector<std::pair<const char*, const std::string*>> archives = {
      {"v1", &v1}, {"v2", &v2}, {"v3", &v3}, {"v4", &v4}};
  for (const auto& [label, bytes] : archives) {
    const auto loaded = ParseRepresentationStore(*bytes);
    ASSERT_TRUE(loaded.ok()) << label << ": " << loaded.status().ToString();
    EXPECT_TRUE(*loaded == store) << label;
    EXPECT_FALSE(loaded->quantized()) << label;
    // Migration: re-serializing any revision as v4 lands on the same
    // canonical v4 bytes.
    EXPECT_EQ(SerializeRepresentationStore(*loaded, StoreFormat::kV4), v4)
        << label;
  }
}

TEST(StoreV4, RejectsLossyStoreOnV3) {
  const Dataset ds = SmallDataset();
  const RepresentationStore store = QuantizedStore(Method::kSapla, ds);
  // v3 has no codec section; serializing a quantized store as v3 would
  // silently drop the slack, so the writer refuses via kAuto -> v4. A
  // direct kV3 request keeps the columns but must not claim quantization:
  // the loaded store is unquantized data equal to the decoded values.
  const std::string v3 =
      SerializeRepresentationStore(store, StoreFormat::kV3);
  const auto loaded = ParseRepresentationStore(v3);
  ASSERT_TRUE(loaded.ok());
  EXPECT_FALSE(loaded->quantized());
  EXPECT_EQ(loaded->a_column(), store.a_column());
}

TEST(StoreV4, SurvivesSeededCorruptionSweep) {
  // Single-bit flips and truncations over a v4 archive: nothing crashes,
  // and nothing loads OK as a store that differs from the original (every
  // section, including the new codec/slack sections, is CRC-covered).
  const Dataset ds = SmallDataset();
  const RepresentationStore store = QuantizedStore(Method::kSapla, ds);
  const std::string v4 = SerializeRepresentationStore(store);
  ASSERT_GT(v4.size(), 64u);

  uint64_t state = 0x9E3779B97F4A7C15ull;
  const auto next = [&state] {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state;
  };

  size_t rejected = 0;
  for (size_t trial = 0; trial < 1200; ++trial) {
    std::string bad = v4;
    const size_t byte = next() % bad.size();
    bad[byte] ^= static_cast<char>(1u << (next() % 8));
    const auto loaded = ParseRepresentationStore(bad);
    if (!loaded.ok()) {
      ++rejected;
      continue;
    }
    EXPECT_TRUE(*loaded == store)
        << "bit flip at byte " << byte << " loaded a different store";
  }
  // The CRCs cover essentially the whole file; almost every flip must be
  // caught structurally.
  EXPECT_GT(rejected, 1100u);

  for (size_t len = 0; len < v4.size(); len += 7) {
    const auto loaded = ParseRepresentationStore(v4.substr(0, len));
    EXPECT_FALSE(loaded.ok()) << "truncated to " << len;
  }
}

// --- the cold tier ---------------------------------------------------------

RepresentationStore BigStore(size_t count, Method method = Method::kSapla) {
  const Dataset ds = SmallDataset(/*seed=*/5, /*length=*/64, count);
  return MakeStore(method, ds, /*m=*/8);
}

TEST(ColdStore, ViewsMatchHotBitForBit) {
  // > one frame of series so the cold tier actually crosses frames.
  const size_t kCount = storedetail::kDefaultFrameSeries * 2 + 37;
  const RepresentationStore hot = BigStore(kCount);
  const char* path = "/tmp/sapla_store_codec_cold.bin";
  ASSERT_TRUE(
      SaveRepresentationStore(path, hot, StoreFormat::kV4).ok());

  const auto cold = OpenColdRepresentationStore(path);
  ASSERT_TRUE(cold.ok()) << cold.status().ToString();
  EXPECT_TRUE(cold->cold());
  EXPECT_EQ(cold->size(), hot.size());
  EXPECT_EQ(cold->method(), hot.method());
  EXPECT_EQ(cold->series_length(), hot.series_length());

  StoreReadPin pin;
  for (size_t i = 0; i < hot.size(); ++i) {
    const RepView c = cold->view(i, &pin);
    const RepView h = hot.view(i);
    ASSERT_EQ(c.num_segments(), h.num_segments()) << i;
    for (size_t s = 0; s < h.num_segments(); ++s) {
      EXPECT_EQ(c.seg_a(s), h.seg_a(s)) << i;
      EXPECT_EQ(c.seg_b(s), h.seg_b(s)) << i;
      EXPECT_EQ(c.seg_r(s), h.seg_r(s)) << i;
    }
    // ToRepresentation works on both tiers and must agree exactly.
    EXPECT_EQ(RepText(*cold, i), RepText(hot, i)) << i;
  }

  const StoreFootprint fp = cold->footprint();
  EXPECT_GT(fp.mapped_bytes, 0u);
  EXPECT_GT(fp.frame_misses, 0u);
  // The sequential scan re-used the pin: one miss per frame, not per id.
  EXPECT_LE(fp.frame_misses, kCount / storedetail::kDefaultFrameSeries + 2);
  std::remove(path);
}

TEST(ColdStore, TinyCacheEvictsAndStaysCorrect) {
  const size_t kCount = storedetail::kDefaultFrameSeries * 3 + 5;
  const RepresentationStore hot = BigStore(kCount);
  const char* path = "/tmp/sapla_store_codec_cold_tiny.bin";
  ASSERT_TRUE(
      SaveRepresentationStore(path, hot, StoreFormat::kV4).ok());

  ColdStoreOptions opt;
  opt.cache_bytes = 1;  // at most one frame ever stays resident
  const auto cold = OpenColdRepresentationStore(path, opt);
  ASSERT_TRUE(cold.ok()) << cold.status().ToString();

  // Ping-pong across frame boundaries: every touch is a miss, yet every
  // view stays bit-identical to the hot store.
  Rng rng(4242);
  StoreReadPin pin;
  for (size_t trial = 0; trial < 200; ++trial) {
    const size_t id = rng.UniformInt(kCount);
    const RepView c = cold->view(id, &pin);
    const RepView h = hot.view(id);
    ASSERT_EQ(c.num_segments(), h.num_segments());
    for (size_t s = 0; s < h.num_segments(); ++s)
      ASSERT_EQ(c.seg_a(s), h.seg_a(s));
  }
  const StoreFootprint fp = cold->footprint();
  EXPECT_GT(fp.frame_misses, 3u);
  // A 1-byte budget keeps at most one decoded frame resident, so the
  // resident side stays far below the mapped archive.
  EXPECT_LT(fp.resident_bytes, fp.mapped_bytes);
  std::remove(path);
}

TEST(ColdStore, ConcurrentReadersAgreeWithHot) {
  const size_t kCount = storedetail::kDefaultFrameSeries * 2 + 11;
  const RepresentationStore hot = BigStore(kCount);
  const char* path = "/tmp/sapla_store_codec_cold_mt.bin";
  ASSERT_TRUE(
      SaveRepresentationStore(path, hot, StoreFormat::kV4).ok());

  ColdStoreOptions opt;
  opt.cache_bytes = 1;  // maximum eviction pressure
  const auto cold = OpenColdRepresentationStore(path, opt);
  ASSERT_TRUE(cold.ok()) << cold.status().ToString();

  std::atomic<uint64_t> mismatches{0};
  std::vector<std::thread> threads;
  for (size_t t = 0; t < 8; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(1000 + t);
      StoreReadPin pin;  // one pin per thread, never shared
      for (size_t trial = 0; trial < 400; ++trial) {
        const size_t id = rng.UniformInt(kCount);
        const RepView c = cold->view(id, &pin);
        const RepView h = hot.view(id);
        if (c.num_segments() != h.num_segments()) {
          ++mismatches;
          continue;
        }
        for (size_t s = 0; s < h.num_segments(); ++s)
          if (c.seg_a(s) != h.seg_a(s) || c.seg_b(s) != h.seg_b(s) ||
              c.seg_r(s) != h.seg_r(s))
            ++mismatches;
      }
    });
  }
  for (std::thread& th : threads) th.join();
  EXPECT_EQ(mismatches.load(), 0u);
  std::remove(path);
}

TEST(ColdStore, QuantizedColdStoreKeepsSlackResident)
{
  const size_t kCount = storedetail::kDefaultFrameSeries + 9;
  const Dataset ds = SmallDataset(/*seed=*/5, /*length=*/64, kCount);
  StoreCodecOptions codec;
  codec.ab_step = 1e-3;
  codec.coeff_step = 1e-3;
  const auto quantized = QuantizeStore(MakeStore(Method::kSapla, ds, 8),
                                       codec);
  ASSERT_TRUE(quantized.ok());
  const char* path = "/tmp/sapla_store_codec_cold_q.bin";
  ASSERT_TRUE(SaveRepresentationStore(path, *quantized).ok());

  const auto cold = OpenColdRepresentationStore(path);
  ASSERT_TRUE(cold.ok()) << cold.status().ToString();
  EXPECT_TRUE(cold->quantized());
  // The slack column answers without touching any frame.
  const uint64_t misses_before = cold->footprint().frame_misses;
  for (size_t i = 0; i < kCount; ++i)
    EXPECT_EQ(cold->lb_slack(i), quantized->lb_slack(i)) << i;
  EXPECT_EQ(cold->max_lb_slack(), quantized->max_lb_slack());
  EXPECT_EQ(cold->footprint().frame_misses, misses_before);
  std::remove(path);
}

}  // namespace
}  // namespace sapla
