// Tests for the fixed-bucket histogram (util/histogram.h): bucket table
// shape, exact counters (count/sum/mean/max), quantile interpolation
// bounds, reset, and concurrent recording.

#include "util/histogram.h"

#include <cmath>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace sapla {
namespace {

TEST(HistogramBuckets, UpperBoundsStrictlyIncrease) {
  for (size_t b = 1; b < Histogram::kNumBuckets; ++b)
    EXPECT_GT(Histogram::BucketUpper(b), Histogram::BucketUpper(b - 1)) << b;
  EXPECT_EQ(Histogram::BucketUpper(0), 1u);
  // ~sqrt(2) ratio: 64 buckets reach past 2^31 microseconds (~36 minutes).
  EXPECT_GT(Histogram::BucketUpper(Histogram::kNumBuckets - 1), 1ull << 31);
}

TEST(HistogramBuckets, BucketForIsConsistentWithUpperBounds) {
  for (const uint64_t v :
       {0ull, 1ull, 2ull, 3ull, 10ull, 1000ull, 123456ull}) {
    const size_t b = Histogram::BucketFor(v);
    EXPECT_LE(v, Histogram::BucketUpper(b)) << v;
    if (b > 0) EXPECT_GT(v, Histogram::BucketUpper(b - 1)) << v;
  }
  // Values beyond the last upper bound land in the catch-all top bucket.
  EXPECT_EQ(Histogram::BucketFor(~0ull), Histogram::kNumBuckets - 1);
}

TEST(Histogram, ExactCountersAndEmptyQuantiles) {
  Histogram h;
  EXPECT_EQ(h.Count(), 0u);
  EXPECT_TRUE(std::isnan(h.Mean()));
  EXPECT_TRUE(std::isnan(h.Quantile(0.5)));

  h.Record(10);
  h.Record(20);
  h.Record(60);
  EXPECT_EQ(h.Count(), 3u);
  EXPECT_EQ(h.Sum(), 90u);
  EXPECT_DOUBLE_EQ(h.Mean(), 30.0);
  EXPECT_EQ(h.Max(), 60u);
}

TEST(Histogram, QuantilesRespectBucketBounds) {
  Histogram h;
  for (uint64_t v = 1; v <= 1000; ++v) h.Record(v);
  // The bucket ratio is sqrt(2); an interpolated quantile can be off by at
  // most one bucket in each direction.
  const double p50 = h.Quantile(0.50);
  EXPECT_GE(p50, 500.0 / 2.0);
  EXPECT_LE(p50, 500.0 * 2.0);
  const double p99 = h.Quantile(0.99);
  EXPECT_GE(p99, 990.0 / 2.0);
  EXPECT_LE(p99, 1000.0);  // clipped by the exact max
  EXPECT_EQ(h.Quantile(1.0), 1000.0);
  // Quantiles are monotone in q.
  EXPECT_LE(h.Quantile(0.1), h.Quantile(0.5));
  EXPECT_LE(h.Quantile(0.5), h.Quantile(0.9));
  EXPECT_LE(h.Quantile(0.9), h.Quantile(0.99));
}

TEST(Histogram, ResetZeroesEverything) {
  Histogram h;
  h.Record(42);
  h.Reset();
  EXPECT_EQ(h.Count(), 0u);
  EXPECT_EQ(h.Sum(), 0u);
  EXPECT_EQ(h.Max(), 0u);
  EXPECT_TRUE(std::isnan(h.Quantile(0.99)));
}

// Regression: an empty histogram used to report bucket 0's lower edge as
// every percentile, so a service that had served zero requests claimed
// p50 == p95 == p99 == 0µs with count 0 — indistinguishable from "all
// requests were instant". Empty must be unrepresentable as a number.
TEST(Histogram, EmptyQuantilesAreNotANumber) {
  Histogram h;
  for (const double q : {0.0, 0.5, 0.95, 0.99, 1.0})
    EXPECT_TRUE(std::isnan(h.Quantile(q))) << q;
  EXPECT_TRUE(std::isnan(h.Mean()));
  // One sample flips every statistic back to finite.
  h.Record(7);
  for (const double q : {0.0, 0.5, 0.95, 0.99, 1.0})
    EXPECT_TRUE(std::isfinite(h.Quantile(q))) << q;
  EXPECT_DOUBLE_EQ(h.Mean(), 7.0);
}

TEST(Histogram, BucketCountExposesRawBuckets) {
  Histogram h;
  h.Record(1);
  h.Record(1);
  h.Record(1u << 20);
  EXPECT_EQ(h.BucketCount(Histogram::BucketFor(1)), 2u);
  EXPECT_EQ(h.BucketCount(Histogram::BucketFor(1u << 20)), 1u);
  uint64_t total = 0;
  for (size_t b = 0; b < Histogram::kNumBuckets; ++b) total += h.BucketCount(b);
  EXPECT_EQ(total, h.Count());
  // Out-of-range bucket indexes clamp to the catch-all top bucket.
  EXPECT_EQ(h.BucketCount(Histogram::kNumBuckets + 5),
            h.BucketCount(Histogram::kNumBuckets - 1));
}

TEST(Histogram, MergeEqualsRecomputationFromTheUnion) {
  // Two disjoint observation streams (different scales so they land in
  // different buckets), merged one way and recomputed the other: because
  // the bucket boundaries are fixed and shared, every derived statistic of
  // the merged histogram must equal the one computed from the union.
  std::vector<uint64_t> a, b;
  for (uint64_t i = 0; i < 400; ++i) a.push_back(3 + (i * 17) % 250);
  for (uint64_t i = 0; i < 300; ++i) b.push_back(1000 + (i * 31) % 9000);

  Histogram ha, hb, hu;
  for (const uint64_t v : a) {
    ha.Record(v);
    hu.Record(v);
  }
  for (const uint64_t v : b) {
    hb.Record(v);
    hu.Record(v);
  }
  ha.Merge(hb);

  EXPECT_EQ(ha.Count(), hu.Count());
  EXPECT_EQ(ha.Sum(), hu.Sum());
  EXPECT_EQ(ha.Max(), hu.Max());
  EXPECT_EQ(ha.Mean(), hu.Mean());
  for (size_t bkt = 0; bkt < Histogram::kNumBuckets; ++bkt)
    EXPECT_EQ(ha.BucketCount(bkt), hu.BucketCount(bkt)) << "bucket " << bkt;
  for (const double q : {0.0, 0.1, 0.5, 0.9, 0.95, 0.99, 1.0})
    EXPECT_EQ(ha.Quantile(q), hu.Quantile(q)) << "q " << q;
}

TEST(Histogram, MergeIntoEmptyAndOfEmptyBehave) {
  Histogram empty, h;
  h.Record(42);
  h.Record(7);
  h.Merge(empty);  // no-op
  EXPECT_EQ(h.Count(), 2u);
  EXPECT_EQ(h.Sum(), 49u);

  Histogram sink;
  sink.Merge(h);
  EXPECT_EQ(sink.Count(), 2u);
  EXPECT_EQ(sink.Max(), 42u);
  EXPECT_EQ(sink.Quantile(0.5), h.Quantile(0.5));
}

TEST(Histogram, ConcurrentRecordLosesNothing) {
  Histogram h;
  constexpr size_t kThreads = 8;
  constexpr size_t kPerThread = 10000;
  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t] {
      for (size_t i = 0; i < kPerThread; ++i) h.Record(t * 100 + i % 97);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(h.Count(), kThreads * kPerThread);
}

// ---------------------------------------------------------------------------
// WindowedHistogram: sliding-window aggregation over a slot ring. The *At
// overloads take an explicit clock so the rotation logic is deterministic.

TEST(WindowedHistogram, MergesEverySlotInsideTheWindow) {
  WindowedHistogram w(8000);  // 8 slots of 1000 µs
  ASSERT_EQ(w.window_us(), 8000u);
  // One observation per slot, spread across the whole window.
  for (uint64_t slot = 0; slot < WindowedHistogram::kSlots; ++slot)
    w.RecordAt(100 * (slot + 1), slot * 1000);
  Histogram merged;
  w.MergeIntoAt(&merged, 7 * 1000);  // "now" = the newest slot
  EXPECT_EQ(merged.Count(), WindowedHistogram::kSlots);
  EXPECT_EQ(merged.Max(), 800u);
}

TEST(WindowedHistogram, ExpiredSlotsFallOutOfTheMerge) {
  WindowedHistogram w(8000);
  w.RecordAt(42, 0);  // slot epoch 0
  Histogram in_window;
  w.MergeIntoAt(&in_window, 7 * 1000);  // epoch 7: still within 8 slots
  EXPECT_EQ(in_window.Count(), 1u);

  Histogram expired;
  w.MergeIntoAt(&expired, 8 * 1000);  // epoch 8: epoch 0 aged out
  EXPECT_EQ(expired.Count(), 0u);
}

TEST(WindowedHistogram, SlotReuseDropsTheOldEpochsObservations) {
  WindowedHistogram w(8000);
  w.RecordAt(100, 0);  // epoch 0 -> slot 0
  // One full ring later the same slot hosts epoch 8; the lazy reset must
  // discard epoch 0's data rather than merging the two periods.
  w.RecordAt(200, 8 * 1000);
  Histogram merged;
  w.MergeIntoAt(&merged, 8 * 1000);
  EXPECT_EQ(merged.Count(), 1u);
  EXPECT_EQ(merged.Max(), 200u);
}

TEST(WindowedHistogram, EmptyWindowMergesNothing) {
  WindowedHistogram w(60'000'000);
  Histogram merged;
  w.MergeIntoAt(&merged, 123'456'789);
  EXPECT_EQ(merged.Count(), 0u);
  EXPECT_TRUE(std::isnan(merged.Quantile(0.5)));
}

TEST(WindowedHistogram, ConfigureZeroFallsBackToSixtySeconds) {
  WindowedHistogram w(0);
  EXPECT_EQ(w.window_us(), 60'000'000u);
}

TEST(WindowedHistogram, SteadyClockPathRecordsAndMerges) {
  WindowedHistogram w;  // 60s window: "now" stays inside one test run
  for (uint64_t v : {10u, 20u, 30u}) w.Record(v);
  Histogram merged;
  w.MergeInto(&merged);
  EXPECT_EQ(merged.Count(), 3u);
  EXPECT_EQ(merged.Sum(), 60u);
}

TEST(WindowedHistogram, ConcurrentRecordersLoseNothingWithinASlot) {
  WindowedHistogram w(8'000'000);
  constexpr size_t kThreads = 8, kPerThread = 5000;
  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&w] {
      for (size_t i = 0; i < kPerThread; ++i) w.RecordAt(i % 97, 1234);
    });
  }
  for (auto& t : threads) t.join();
  Histogram merged;
  w.MergeIntoAt(&merged, 1234);
  EXPECT_EQ(merged.Count(), kThreads * kPerThread);
}

}  // namespace
}  // namespace sapla
