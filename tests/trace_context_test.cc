// Tests for request-scoped TraceContext propagation (obs/trace.h).
//
// The invariants that make one request's spans stitch into one tree and
// nobody else's:
//
//   - a sampled request keeps ONE trace id across every thread that does
//     its work: the admitting client thread, the scheduler's batch pool
//     workers, the shard-scatter workers, and a hedge duplicate issued by
//     the retry layer
//   - concurrent sampled requests never share spans: span ids are unique
//     process-wide, and a span's parent always belongs to the same trace
//     (CI runs this file under TSan, so "no leak" is also "no race")
//   - while tracing is disabled the whole machinery is inert: no events,
//     no trace-id or span-id allocation — the hot path pays one relaxed
//     atomic load and nothing else
//   - flags (retry/hedge annotations) ride the ambient context even when
//     unsampled, so the slow-query log can attribute attempts with tracing
//     off

#include "obs/trace.h"

#include <map>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "search/sharded_index.h"
#include "serve/retry.h"
#include "serve/service.h"
#include "ts/synthetic_archive.h"
#include "util/parallel.h"

namespace sapla {
namespace {

#ifdef SAPLA_OBS_DISABLED
#define SKIP_IF_TRACING_COMPILED_OUT() \
  GTEST_SKIP() << "tracing compiled out (SAPLA_OBS=OFF)"
#else
#define SKIP_IF_TRACING_COMPILED_OUT() (void)0
#endif

Dataset SmallDataset(size_t id = 3, size_t n = 96, size_t count = 60) {
  SyntheticOptions opt;
  opt.length = n;
  opt.num_series = count;
  return MakeSyntheticDataset(id, opt);
}

// Trace state is process-global; every test starts clean and disabled.
class TraceContextTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::SetTraceEnabled(false);
    obs::ClearTrace();
  }
  void TearDown() override {
    obs::SetTraceEnabled(false);
    obs::ClearTrace();
  }
};

TEST_F(TraceContextTest, MintIsInertWhileDisabled) {
  const obs::TraceContext ctx = obs::MintTraceContext();
  EXPECT_FALSE(ctx.sampled);
  EXPECT_EQ(ctx.trace_id, 0u);
  EXPECT_EQ(ctx.span_id, 0u);
}

TEST_F(TraceContextTest, ScopeInstallsAndRestores) {
  obs::SetTraceEnabled(true);
  const obs::TraceContext before = obs::CurrentTraceContext();
  const obs::TraceContext minted = obs::MintTraceContext();
  EXPECT_TRUE(minted.sampled);
  EXPECT_NE(minted.trace_id, 0u);
  {
    obs::TraceContextScope scope(minted);
    EXPECT_EQ(obs::CurrentTraceContext().trace_id, minted.trace_id);
    EXPECT_TRUE(obs::CurrentTraceContext().sampled);
  }
  EXPECT_EQ(obs::CurrentTraceContext().trace_id, before.trace_id);
  EXPECT_EQ(obs::CurrentTraceContext().sampled, before.sampled);
}

TEST_F(TraceContextTest, FlagsRideAlongEvenUnsampled) {
  // Tracing stays off: the retry layer must still be able to annotate a
  // hedge so the slow-query log can attribute it.
  obs::TraceContext ctx = obs::CurrentTraceContext();
  ctx.flags |= obs::kTraceFlagHedge;
  obs::TraceContextScope scope(ctx);
  EXPECT_FALSE(obs::CurrentTraceContext().sampled);
  EXPECT_NE(obs::CurrentTraceContext().flags & obs::kTraceFlagHedge, 0u);
}

TEST_F(TraceContextTest, ParallelForForwardsContextIntoChunks) {
  obs::SetTraceEnabled(true);
  const obs::TraceContext minted = obs::MintTraceContext();
  obs::TraceContextScope scope(minted);
  std::vector<uint64_t> seen(64, 0);
  ParallelFor(0, seen.size(),
              [&](size_t i) { seen[i] = obs::CurrentTraceContext().trace_id; });
  for (const uint64_t id : seen) EXPECT_EQ(id, minted.trace_id);
}

TEST_F(TraceContextTest, DisabledAllocatesNoTraceIds) {
  SKIP_IF_TRACING_COMPILED_OUT();
  // Mint once enabled to observe the allocator position...
  obs::SetTraceEnabled(true);
  const obs::TraceContext first = obs::MintTraceContext();
  obs::SetTraceEnabled(false);

  // ...then drive real requests while disabled: admission must not mint
  // (QueryService's sample gate is behind TraceEnabled) and spans must not
  // record or allocate span ids.
  const Dataset ds = SmallDataset();
  ShardedIndex::Options sopt;
  sopt.num_shards = 2;
  ShardedIndex index(Method::kSapla, 12, IndexKind::kDbchTree, sopt);
  ASSERT_TRUE(index.Build(ds).ok());
  ServeOptions opt;
  opt.cache_capacity = 0;
  opt.trace_sample_every = 1;
  {
    QueryService service(index, opt);
    for (size_t i = 0; i < 8; ++i) {
      const ServeResponse r = service.Knn(ds.series[i].values, 3);
      ASSERT_TRUE(r.status.ok());
      EXPECT_EQ(r.trace_id, 0u);  // unsampled
    }
  }
  EXPECT_TRUE(obs::CollectTrace().empty());

  // The very next mint is adjacent to the first: nothing in between
  // consumed a trace id.
  obs::SetTraceEnabled(true);
  const obs::TraceContext second = obs::MintTraceContext();
  EXPECT_EQ(second.trace_id, first.trace_id + 1);
}

TEST_F(TraceContextTest, OneRequestOneTraceIdAcrossSchedulerShardsAndHedge) {
  SKIP_IF_TRACING_COMPILED_OUT();
  const Dataset ds = SmallDataset();
  ShardedIndex::Options sopt;
  sopt.num_shards = 4;
  ShardedIndex index(Method::kSapla, 12, IndexKind::kDbchTree, sopt);
  ASSERT_TRUE(index.Build(ds).ok());

  ServeOptions opt;
  opt.cache_capacity = 0;
  opt.trace_sample_every = 1;
  QueryService service(index, opt);

  RetryPolicy policy;
  policy.hedge_delay_us = 1;  // hedge fires unless the primary is instant
  RetryingClient client(service, policy);

  obs::SetTraceEnabled(true);
  const ServeResponse response = client.Knn(ds.series[5].values, 4);
  obs::SetTraceEnabled(false);
  ASSERT_TRUE(response.status.ok());
  ASSERT_NE(response.trace_id, 0u);

  const std::vector<obs::TraceEvent> events = obs::CollectTrace();
  std::set<std::string> names;
  std::set<uint32_t> tids;
  for (const obs::TraceEvent& e : events) {
    if (e.trace_id != response.trace_id) continue;
    names.insert(e.name);
    tids.insert(e.tid);
  }
  // The request's tree covers admission (client thread), the batch worker
  // re-bind, and the shard scatter / per-shard search / merge stages.
  for (const char* required : {"serve/admit", "batch/query", "shard/knn",
                               "shard/scatter", "shard/search", "shard/merge"})
    EXPECT_TRUE(names.count(required)) << "missing span " << required;
  // Admission runs on the client thread, execution on pool workers: the
  // one trace id spans at least two threads.
  EXPECT_GE(tids.size(), 2u);
  // Everything of this request — including whichever of primary/hedge
  // lost — carries the same trace id; no second trace id contains a
  // serve/admit for this client's query (the hedge reuses the logical
  // request's id rather than minting its own).
  for (const obs::TraceEvent& e : events) {
    if (std::string(e.name) == "serve/admit") {
      EXPECT_EQ(e.trace_id, response.trace_id);
    }
  }
}

TEST_F(TraceContextTest, ConcurrentSampledRequestsNeverShareSpans) {
  SKIP_IF_TRACING_COMPILED_OUT();
  const Dataset ds = SmallDataset();
  ShardedIndex::Options sopt;
  sopt.num_shards = 2;
  ShardedIndex index(Method::kSapla, 12, IndexKind::kDbchTree, sopt);
  ASSERT_TRUE(index.Build(ds).ok());

  ServeOptions opt;
  opt.cache_capacity = 0;
  opt.trace_sample_every = 1;
  opt.max_batch = 8;  // force multi-request batches: contexts must re-bind
  QueryService service(index, opt);

  obs::SetTraceEnabled(true);
  constexpr size_t kClients = 8, kPerClient = 6;
  std::vector<std::vector<uint64_t>> trace_ids(kClients);
  {
    std::vector<std::thread> clients;
    for (size_t c = 0; c < kClients; ++c) {
      clients.emplace_back([&, c] {
        for (size_t r = 0; r < kPerClient; ++r) {
          const ServeResponse resp =
              service.Knn(ds.series[(c * kPerClient + r) % ds.size()].values,
                          3);
          if (resp.status.ok()) trace_ids[c].push_back(resp.trace_id);
        }
      });
    }
    for (std::thread& t : clients) t.join();
  }
  obs::SetTraceEnabled(false);

  // Every request got its own trace id.
  std::set<uint64_t> distinct;
  size_t total = 0;
  for (const auto& ids : trace_ids)
    for (const uint64_t id : ids) {
      EXPECT_NE(id, 0u);
      distinct.insert(id);
      ++total;
    }
  EXPECT_EQ(distinct.size(), total);

  // No span is claimed by two traces, and parentage never crosses traces:
  // a span's parent, when recorded, belongs to the same trace id.
  const std::vector<obs::TraceEvent> events = obs::CollectTrace();
  std::map<uint64_t, uint64_t> span_trace;  // span id -> trace id
  for (const obs::TraceEvent& e : events) {
    if (e.span_id == 0) continue;
    const auto [it, inserted] = span_trace.emplace(e.span_id, e.trace_id);
    EXPECT_TRUE(inserted) << "span id " << e.span_id << " recorded twice";
  }
  for (const obs::TraceEvent& e : events) {
    if (e.parent_span_id == 0) continue;
    const auto it = span_trace.find(e.parent_span_id);
    if (it != span_trace.end()) {
      EXPECT_EQ(it->second, e.trace_id)
          << "span " << e.span_id << " parented across traces";
    }
  }
}

}  // namespace
}  // namespace sapla
