// Lower-bounding properties of the per-method filter distances
// (distance/mindist.h) and the query-to-MBR distances (index/feature_map.h).

#include "distance/mindist.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "index/feature_map.h"
#include "reduction/cheby.h"
#include "reduction/sax.h"
#include "ts/time_series.h"
#include "util/rng.h"

namespace sapla {
namespace {

std::vector<double> ZNormSeries(uint64_t seed, size_t n) {
  Rng rng(seed);
  std::vector<double> v(n);
  double x = 0.0;
  for (auto& p : v) {
    x += rng.Gaussian();
    p = x;
  }
  ZNormalize(&v);
  return v;
}

TEST(SaxMinDist, ZeroForIdenticalAndAdjacentSymbols) {
  const std::vector<double> a = ZNormSeries(1, 64);
  const SaxReducer reducer(8);
  const Representation ra = reducer.Reduce(a, 8);
  EXPECT_DOUBLE_EQ(SaxMinDist(ra, ra), 0.0);
}

TEST(SaxMinDist, LowerBoundsEuclidean) {
  // The classic SAX guarantee on z-normalized series.
  const SaxReducer reducer(8);
  for (uint64_t seed = 0; seed < 30; ++seed) {
    const std::vector<double> a = ZNormSeries(seed, 128);
    const std::vector<double> b = ZNormSeries(seed + 100, 128);
    const Representation ra = reducer.Reduce(a, 16);
    const Representation rb = reducer.Reduce(b, 16);
    EXPECT_LE(SaxMinDist(ra, rb), EuclideanDistance(a, b) + 1e-9)
        << "seed " << seed;
  }
}

TEST(SaxMinDist, GrowsWithSymbolSeparation) {
  Representation a, b;
  a.method = b.method = Method::kSax;
  a.n = b.n = 64;
  a.alphabet = b.alphabet = 8;
  a.segments = b.segments = {{0, 0, 31}, {0, 0, 63}};
  a.symbols = {0, 0};
  double prev = -1.0;
  for (int sym = 1; sym < 8; ++sym) {
    b.symbols = {sym, sym};
    const double d = SaxMinDist(a, b);
    EXPECT_GE(d, prev);
    prev = d;
  }
  EXPECT_GT(prev, 0.0);
}

TEST(ChebyDist, LowerBoundsEuclideanByParseval) {
  const ChebyReducer reducer;
  for (uint64_t seed = 0; seed < 30; ++seed) {
    const std::vector<double> a = ZNormSeries(seed + 40, 128);
    const std::vector<double> b = ZNormSeries(seed + 400, 128);
    const Representation ra = reducer.Reduce(a, 16);
    const Representation rb = reducer.Reduce(b, 16);
    EXPECT_LE(ChebyDist(ra, rb), EuclideanDistance(a, b) + 1e-9);
  }
}

TEST(ChebyDist, FullBudgetEqualsEuclidean) {
  const std::vector<double> a = ZNormSeries(70, 64);
  const std::vector<double> b = ZNormSeries(71, 64);
  const ChebyReducer reducer;
  const Representation ra = reducer.Reduce(a, 64);
  const Representation rb = reducer.Reduce(b, 64);
  EXPECT_NEAR(ChebyDist(ra, rb), EuclideanDistance(a, b), 1e-8);
}

TEST(LowerBoundDistance, DispatchesPerMethod) {
  const std::vector<double> a = ZNormSeries(80, 64);
  const std::vector<double> b = ZNormSeries(81, 64);
  for (const Method m : AllMethods()) {
    const auto reducer = MakeReducer(m);
    const Representation ra = reducer->Reduce(a, 12);
    const Representation rb = reducer->Reduce(b, 12);
    const double d = LowerBoundDistance(ra, rb);
    EXPECT_TRUE(std::isfinite(d)) << MethodName(m);
    EXPECT_GE(d, 0.0) << MethodName(m);
    EXPECT_NEAR(LowerBoundDistance(ra, ra), 0.0, 1e-9) << MethodName(m);
  }
}

TEST(ConvexQuadMinOnBox, ZeroWhenBoxContainsOrigin) {
  EXPECT_DOUBLE_EQ(ConvexQuadMinOnBox(3, 1, 2, -1, 1, -1, 1), 0.0);
}

TEST(ConvexQuadMinOnBox, MatchesGridSearch) {
  Rng rng(5);
  for (int trial = 0; trial < 40; ++trial) {
    const double l = 2.0 + static_cast<double>(rng.UniformInt(20));
    const double A = l * (l - 1.0) * (2.0 * l - 1.0) / 6.0;
    const double B = l * (l - 1.0);
    const double C = l;
    const double xlo = rng.Uniform(-2, 2);
    const double xhi = xlo + rng.Uniform(0, 2);
    const double ylo = rng.Uniform(-2, 2);
    const double yhi = ylo + rng.Uniform(0, 2);
    const double analytic = ConvexQuadMinOnBox(A, B, C, xlo, xhi, ylo, yhi);
    double grid = 1e300;
    const int steps = 60;
    for (int i = 0; i <= steps; ++i) {
      for (int j = 0; j <= steps; ++j) {
        const double x = xlo + (xhi - xlo) * i / steps;
        const double y = ylo + (yhi - ylo) * j / steps;
        grid = std::min(grid, A * x * x + B * x * y + C * y * y);
      }
    }
    EXPECT_LE(analytic, grid + 1e-6);
    EXPECT_GE(analytic, grid - 0.3);  // grid resolution slack
  }
}

// Query-to-MBR distances must lower-bound the query-to-member distance for
// every member inside the box (the GEMINI no-false-dismissal requirement at
// node level) for the provable mappings.
class FeatureMapSweep : public ::testing::TestWithParam<Method> {};

TEST_P(FeatureMapSweep, BoxDistLowerBoundsMemberDist) {
  const Method method = GetParam();
  const size_t n = 96, m = 12;
  const auto reducer = MakeReducer(method);
  const FeatureMapper mapper(method, m, n);

  // Build a node MBR over a handful of member feature boxes.
  std::vector<Representation> reps;
  std::vector<std::vector<double>> raws;
  std::vector<double> lo, hi;
  for (uint64_t seed = 0; seed < 6; ++seed) {
    raws.push_back(ZNormSeries(seed + 300, n));
    reps.push_back(reducer->Reduce(raws.back(), m));
    const FeatureMapper::Box box = mapper.MapBox(reps.back(), raws.back());
    if (lo.empty()) {
      lo = box.lo;
      hi = box.hi;
    } else {
      for (size_t d = 0; d < lo.size(); ++d) {
        lo[d] = std::min(lo[d], box.lo[d]);
        hi[d] = std::max(hi[d], box.hi[d]);
      }
    }
  }

  for (uint64_t qseed = 900; qseed < 910; ++qseed) {
    const std::vector<double> q = ZNormSeries(qseed, n);
    const Representation qr = reducer->Reduce(q, m);
    const double box_dist = mapper.MinDist(q, qr, lo, hi);
    EXPECT_GE(box_dist, 0.0);
    for (size_t i = 0; i < raws.size(); ++i) {
      // Box distance must not exceed the true distance to any member.
      EXPECT_LE(box_dist, EuclideanDistance(q, raws[i]) + 1e-6)
          << MethodName(method) << " member " << i << " q " << qseed;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Methods, FeatureMapSweep,
    ::testing::Values(Method::kPaa, Method::kApca, Method::kSapla,
                      Method::kApla, Method::kPla, Method::kCheby,
                      Method::kPaalm, Method::kSax, Method::kDft),
    [](const ::testing::TestParamInfo<Method>& info) {
      return MethodName(info.param);
    });

TEST(FilterDistance, ConsistentWithPerMethodBounds) {
  const std::vector<double> a = ZNormSeries(500, 96);
  const std::vector<double> b = ZNormSeries(501, 96);
  PrefixFitter af(a);
  for (const Method m : AllMethodsExtended()) {
    const auto reducer = MakeReducer(m);
    const Representation ra = reducer->Reduce(a, 12);
    const Representation rb = reducer->Reduce(b, 12);
    const double d = FilterDistance(af, ra, rb);
    EXPECT_TRUE(std::isfinite(d)) << MethodName(m);
    EXPECT_GE(d, 0.0) << MethodName(m);
    // Self-filter distance is ~0 for every LS-fit method. PAALM is the
    // deliberate exception: its smoothed values are off-mean, so the raw
    // query's projection does not coincide with its own representation.
    if (m != Method::kPaalm) {
      EXPECT_NEAR(FilterDistance(af, ra, ra), 0.0, 1e-8) << MethodName(m);
    }
  }
}

TEST(FilterDistance, RigorousForLeastSquaresMethods) {
  // Dist_LB-based filters never exceed the true distance for the LS-fit
  // methods (including PAALM's smoothed constants? No — PAALM values are
  // intentionally off-mean, so it is excluded here and measured by the
  // accuracy experiment instead).
  for (uint64_t seed = 600; seed < 620; ++seed) {
    const std::vector<double> q = ZNormSeries(seed, 96);
    const std::vector<double> c = ZNormSeries(seed + 70, 96);
    PrefixFitter qf(q);
    const double euclid = EuclideanDistance(q, c);
    for (const Method m : {Method::kSapla, Method::kApla, Method::kApca,
                           Method::kPla, Method::kPaa, Method::kCheby,
                           Method::kSax, Method::kDft}) {
      const auto reducer = MakeReducer(m);
      const Representation qr = reducer->Reduce(q, 12);
      const Representation cr = reducer->Reduce(c, 12);
      EXPECT_LE(FilterDistance(qf, qr, cr), euclid + 1e-9)
          << MethodName(m) << " seed " << seed;
    }
  }
}

}  // namespace
}  // namespace sapla
