// Engine-level tests for SAPLA beyond the paper's worked example:
// structural invariants, option behavior, degenerate inputs, and quality
// properties over random sweeps.

#include "core/sapla.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "geom/line_fit.h"
#include "reduction/apca.h"
#include "reduction/paa.h"
#include "ts/synthetic_archive.h"
#include "ts/time_series.h"
#include "util/rng.h"

namespace sapla {
namespace {

std::vector<double> RandomWalk(uint64_t seed, size_t n) {
  Rng rng(seed);
  std::vector<double> v(n);
  double x = 0.0;
  for (auto& p : v) {
    x += rng.Gaussian();
    p = x;
  }
  return v;
}

void CheckStructure(const Representation& rep, size_t n, size_t n_seg) {
  ASSERT_EQ(rep.segments.size(), n_seg);
  EXPECT_EQ(rep.segments.back().r, n - 1);
  size_t start = 0;
  for (size_t i = 0; i < rep.segments.size(); ++i) {
    EXPECT_LE(start, rep.segments[i].r) << "segment " << i;
    EXPECT_GE(rep.segment_length(i), 2u) << "segment " << i;
    start = rep.segments[i].r + 1;
  }
}

TEST(SaplaEngine, ProducesExactSegmentCount) {
  const std::vector<double> v = RandomWalk(1, 200);
  for (size_t n_seg : {1, 2, 4, 8, 16, 32}) {
    const Representation rep = SaplaReducer().ReduceToSegments(v, n_seg);
    CheckStructure(rep, v.size(), n_seg);
  }
}

TEST(SaplaEngine, SegmentsAreLeastSquaresFits) {
  // Every output segment's <a, b> is the LS fit of the raw range — the
  // property that makes Dist_LB a rigorous bound.
  const std::vector<double> v = RandomWalk(2, 150);
  const Representation rep = SaplaReducer().ReduceToSegments(v, 6);
  PrefixFitter fit(v);
  for (size_t i = 0; i < rep.num_segments(); ++i) {
    const Line line = fit.Fit(rep.segment_start(i), rep.segments[i].r);
    EXPECT_NEAR(rep.segments[i].a, line.a, 1e-9);
    EXPECT_NEAR(rep.segments[i].b, line.b, 1e-9);
  }
}

TEST(SaplaEngine, PerfectOnPiecewiseLinearData) {
  std::vector<double> v;
  for (int t = 0; t < 20; ++t) v.push_back(1.5 * t);
  for (int t = 0; t < 20; ++t) v.push_back(30.0 - 2.0 * t);
  for (int t = 0; t < 20; ++t) v.push_back(-10.0 + 0.5 * t);
  const Representation rep = SaplaReducer().ReduceToSegments(v, 3);
  EXPECT_NEAR(rep.SumMaxDeviation(v), 0.0, 1e-8);
}

TEST(SaplaEngine, MinimalInputs) {
  // n = 2: one segment through both points, exact.
  const std::vector<double> v{3.0, 9.0};
  const Representation rep = SaplaReducer().ReduceToSegments(v, 1);
  CheckStructure(rep, 2, 1);
  EXPECT_NEAR(rep.SumMaxDeviation(v), 0.0, 1e-12);

  // n = 4 with an over-large segment request clamps to n/2.
  const std::vector<double> w{1.0, 5.0, 2.0, 8.0};
  const Representation rep2 = SaplaReducer().ReduceToSegments(w, 10);
  EXPECT_LE(rep2.segments.size(), 2u);
  EXPECT_EQ(rep2.segments.back().r, 3u);
}

TEST(SaplaEngine, ConstantSeries) {
  const std::vector<double> v(64, 2.5);
  const Representation rep = SaplaReducer().ReduceToSegments(v, 4);
  EXPECT_NEAR(rep.SumMaxDeviation(v), 0.0, 1e-12);
  for (const auto& seg : rep.segments) {
    EXPECT_NEAR(seg.a, 0.0, 1e-12);
    EXPECT_NEAR(seg.b, 2.5, 1e-12);
  }
}

TEST(SaplaEngine, DeterministicAcrossRuns) {
  const std::vector<double> v = RandomWalk(3, 300);
  const Representation a = SaplaReducer().Reduce(v, 18);
  const Representation b = SaplaReducer().Reduce(v, 18);
  ASSERT_EQ(a.segments.size(), b.segments.size());
  for (size_t i = 0; i < a.segments.size(); ++i) {
    EXPECT_EQ(a.segments[i].r, b.segments[i].r);
    EXPECT_DOUBLE_EQ(a.segments[i].a, b.segments[i].a);
  }
}

TEST(SaplaEngine, InitializationYieldsAtLeastNSegments) {
  for (uint64_t seed : {4, 5, 6}) {
    const std::vector<double> v = RandomWalk(seed, 256);
    for (size_t n_seg : {2, 4, 8}) {
      const Representation init =
          SaplaReducer().InitializeOnly(v, n_seg);
      EXPECT_GE(init.segments.size(), n_seg) << seed;
      EXPECT_EQ(init.segments.back().r, v.size() - 1);
    }
  }
}

TEST(SaplaEngine, FullPipelineBeatsInitPlusMergesOnly) {
  // Phases 2+3 must not lose to the unoptimized baseline.
  SaplaOptions raw;
  raw.split_merge_iteration = false;
  raw.endpoint_movement = false;
  double full_total = 0.0, raw_total = 0.0;
  for (uint64_t seed = 10; seed < 25; ++seed) {
    const std::vector<double> v = RandomWalk(seed, 180);
    full_total += SaplaReducer().Reduce(v, 12).SumMaxDeviation(v);
    raw_total += SaplaReducer(raw).Reduce(v, 12).SumMaxDeviation(v);
  }
  EXPECT_LE(full_total, raw_total + 1e-9);
}

TEST(SaplaEngine, ExactDeviationOptionImprovesOrMatchesQuality) {
  SaplaOptions exact;
  exact.use_exact_deviation = true;
  double surrogate_total = 0.0, exact_total = 0.0;
  for (uint64_t seed = 30; seed < 45; ++seed) {
    const std::vector<double> v = RandomWalk(seed, 180);
    surrogate_total += SaplaReducer().Reduce(v, 12).SumMaxDeviation(v);
    exact_total += SaplaReducer(exact).Reduce(v, 12).SumMaxDeviation(v);
  }
  EXPECT_LE(exact_total, surrogate_total * 1.05);
}

TEST(SaplaEngine, ProfileCountersAreConsistent) {
  const std::vector<double> v = RandomWalk(7, 200);
  SaplaProfile profile;
  SaplaReducer().ReduceToSegments(v, 5, &profile);
  EXPECT_GE(profile.segments_after_init, 5u);
  EXPECT_GT(profile.beta_after_init, 0.0);
  EXPECT_GT(profile.beta_after_sm, 0.0);
  // Forced merges/splits reconcile the init count with the target (the
  // improvement loop's internal ops are not counted there).
  EXPECT_EQ(profile.segments_after_init - profile.merges + profile.splits,
            5u);
}

TEST(SaplaEngine, BeatsApcaAndPaaAtEqualBudget) {
  // The paper's core quality claim at equal coefficient budget M.
  double sapla_total = 0.0, apca_total = 0.0, paa_total = 0.0;
  for (size_t id = 0; id < 8; ++id) {
    SyntheticOptions opt;
    opt.length = 128;
    opt.num_series = 5;
    const Dataset ds = MakeSyntheticDataset(id, opt);
    for (const TimeSeries& ts : ds.series) {
      sapla_total += SaplaReducer().Reduce(ts.values, 12)
                         .SumMaxDeviation(ts.values);
      apca_total += ApcaReducer().Reduce(ts.values, 12)
                        .SumMaxDeviation(ts.values);
      paa_total += PaaReducer().Reduce(ts.values, 12)
                       .SumMaxDeviation(ts.values);
    }
  }
  EXPECT_LT(sapla_total, apca_total);
  EXPECT_LT(sapla_total, paa_total);
}

TEST(SaplaEngine, HandlesSpikyData) {
  // Impulse-train style data must still produce valid structure.
  Rng rng(99);
  std::vector<double> v(200, 0.0);
  for (int i = 0; i < 15; ++i) v[rng.UniformInt(200)] = rng.Uniform(-50, 50);
  const Representation rep = SaplaReducer().ReduceToSegments(v, 8);
  CheckStructure(rep, v.size(), 8);
  for (const auto& seg : rep.segments) {
    EXPECT_TRUE(std::isfinite(seg.a));
    EXPECT_TRUE(std::isfinite(seg.b));
  }
}

class SaplaQualitySweep
    : public ::testing::TestWithParam<std::tuple<size_t, size_t>> {};

TEST_P(SaplaQualitySweep, StructureValidAcrossSizes) {
  const auto [n, n_seg] = GetParam();
  const std::vector<double> v = RandomWalk(n * 31 + n_seg, n);
  const Representation rep = SaplaReducer().ReduceToSegments(v, n_seg);
  CheckStructure(rep, n, std::min(n_seg, n / 2));
  EXPECT_TRUE(std::isfinite(rep.SumMaxDeviation(v)));
}

INSTANTIATE_TEST_SUITE_P(
    Grid, SaplaQualitySweep,
    ::testing::Combine(::testing::Values(16, 64, 257, 1024),
                       ::testing::Values(1, 3, 8, 20)));

}  // namespace
}  // namespace sapla
