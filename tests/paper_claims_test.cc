// End-to-end integration test of the paper's comparative claims on a
// miniature version of the full experiment (a handful of archive datasets,
// full reduce -> index -> query -> metrics pipeline). Each TEST pins one
// sentence from the paper's abstract/evaluation.

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "core/sapla.h"
#include "reduction/apca.h"
#include "reduction/apla.h"
#include "reduction/paa.h"
#include "reduction/paalm.h"
#include "reduction/pla.h"
#include "search/knn.h"
#include "search/metrics.h"
#include "ts/synthetic_archive.h"
#include "util/stats.h"
#include "util/timer.h"

namespace sapla {
namespace {

constexpr size_t kBudget = 12;
constexpr size_t kNumDatasets = 8;

Dataset ArchiveDataset(size_t id) {
  SyntheticOptions opt;
  opt.length = 128;
  opt.num_series = 60;
  return MakeSyntheticDataset(id, opt);
}

// "Adaptive-length methods SAPLA, APLA and APCA have better max deviation
// than equal-length methods with fewer segment numbers N when M is same."
TEST(PaperClaims, AdaptiveBeatsEqualLengthOnMaxDeviation) {
  SummaryStats sapla, apla, apca, pla, paa, paalm;
  for (size_t d = 0; d < kNumDatasets; ++d) {
    const Dataset ds = ArchiveDataset(d);
    for (const TimeSeries& ts : ds.series) {
      sapla.Add(SaplaReducer().Reduce(ts.values, kBudget)
                    .SumMaxDeviation(ts.values));
      apla.Add(AplaReducer().Reduce(ts.values, kBudget)
                   .SumMaxDeviation(ts.values));
      apca.Add(ApcaReducer().Reduce(ts.values, kBudget)
                   .SumMaxDeviation(ts.values));
      pla.Add(PlaReducer().Reduce(ts.values, kBudget)
                  .SumMaxDeviation(ts.values));
      paa.Add(PaaReducer().Reduce(ts.values, kBudget)
                  .SumMaxDeviation(ts.values));
      paalm.Add(PaalmReducer().Reduce(ts.values, kBudget)
                    .SumMaxDeviation(ts.values));
    }
  }
  EXPECT_LT(apla.mean(), sapla.mean());   // DP is the optimum
  EXPECT_LT(sapla.mean(), apca.mean());   // linear beats constant
  EXPECT_LT(apca.mean(), paa.mean());     // adaptive beats equal-length
  EXPECT_LT(pla.mean(), paa.mean());
  EXPECT_GT(paalm.mean(), paa.mean());    // PAALM worst (by design)
}

// "SAPLA outperforms APLA by n times with a minor maximum deviation loss."
TEST(PaperClaims, SaplaIsFarFasterThanAplaWithBoundedQualityLoss) {
  double sapla_dev = 0.0, apla_dev = 0.0;
  double sapla_s = 0.0, apla_s = 0.0;
  for (size_t d = 0; d < 4; ++d) {
    const Dataset ds = ArchiveDataset(d);
    CpuTimer t1;
    for (const TimeSeries& ts : ds.series)
      sapla_dev += SaplaReducer().Reduce(ts.values, kBudget)
                       .SumMaxDeviation(ts.values);
    sapla_s += t1.Seconds();
    CpuTimer t2;
    for (const TimeSeries& ts : ds.series)
      apla_dev += AplaReducer().Reduce(ts.values, kBudget)
                      .SumMaxDeviation(ts.values);
    apla_s += t2.Seconds();
  }
  EXPECT_GT(apla_s, 4.0 * sapla_s);      // large speed gap even at n=128
  EXPECT_LT(sapla_dev, 3.0 * apla_dev);  // bounded quality loss
}

// "DBCH-tree improves pruning power for adaptive-length methods; PLA and
// CHEBY have similar performance in R-tree and DBCH-tree."
TEST(PaperClaims, DbchImprovesAdaptiveMethodsOnly) {
  SummaryStats sapla_gain, pla_gain;
  for (size_t d = 0; d < kNumDatasets; ++d) {
    const Dataset ds = ArchiveDataset(d);
    for (const Method method : {Method::kSapla, Method::kPla}) {
      SimilarityIndex rtree(method, kBudget, IndexKind::kRTree);
      SimilarityIndex dbch(method, kBudget, IndexKind::kDbchTree);
      ASSERT_TRUE(rtree.Build(ds).ok());
      ASSERT_TRUE(dbch.Build(ds).ok());
      for (const size_t qi : {3u, 31u}) {
        const std::vector<double>& q = ds.series[qi].values;
        const double gain =
            PruningPower(rtree.Knn(q, 8), ds.size()) -
            PruningPower(dbch.Knn(q, 8), ds.size());
        (method == Method::kSapla ? sapla_gain : pla_gain).Add(gain);
      }
    }
  }
  EXPECT_GT(sapla_gain.mean(), 0.02);            // real improvement
  EXPECT_GT(sapla_gain.mean(), pla_gain.mean()); // concentrated on adaptive
  EXPECT_NEAR(pla_gain.mean(), 0.0, 0.06);       // PLA ~unchanged
}

// "DBCH-tree helps space efficiency: fewer internal nodes, fuller leaves."
TEST(PaperClaims, DbchPacksBetterThanRtree) {
  SummaryStats rtree_total, dbch_total, rtree_occ, dbch_occ;
  for (size_t d = 0; d < kNumDatasets; ++d) {
    const Dataset ds = ArchiveDataset(d);
    for (const IndexKind kind : {IndexKind::kRTree, IndexKind::kDbchTree}) {
      SimilarityIndex index(Method::kSapla, kBudget, kind);
      BuildInfo info;
      ASSERT_TRUE(index.Build(ds, &info).ok());
      if (kind == IndexKind::kRTree) {
        rtree_total.Add(static_cast<double>(info.stats.total_nodes()));
        rtree_occ.Add(info.stats.avg_leaf_entries);
      } else {
        dbch_total.Add(static_cast<double>(info.stats.total_nodes()));
        dbch_occ.Add(info.stats.avg_leaf_entries);
      }
    }
  }
  EXPECT_LT(dbch_total.mean(), rtree_total.mean());
  EXPECT_GT(dbch_occ.mean(), rtree_occ.mean());
}

// "Accuracy: the R-tree with rigorous bounds never misses; the DBCH-tree's
// internal-node distance may cause (few) false dismissals."
TEST(PaperClaims, AccuracyContrast) {
  SummaryStats rtree_acc, dbch_acc;
  for (size_t d = 0; d < kNumDatasets; ++d) {
    const Dataset ds = ArchiveDataset(d);
    SimilarityIndex rtree(Method::kSapla, kBudget, IndexKind::kRTree);
    SimilarityIndex dbch(Method::kSapla, kBudget, IndexKind::kDbchTree);
    ASSERT_TRUE(rtree.Build(ds).ok());
    ASSERT_TRUE(dbch.Build(ds).ok());
    for (const size_t qi : {7u, 44u}) {
      const std::vector<double>& q = ds.series[qi].values;
      const KnnResult truth = LinearScanKnn(ds, q, 8);
      rtree_acc.Add(Accuracy(rtree.Knn(q, 8), truth, 8));
      dbch_acc.Add(Accuracy(dbch.Knn(q, 8), truth, 8));
    }
  }
  EXPECT_DOUBLE_EQ(rtree_acc.mean(), 1.0);
  EXPECT_GT(dbch_acc.mean(), 0.85);
  EXPECT_LE(dbch_acc.mean(), 1.0);
}

// Non-finite inputs are rejected up front rather than corrupting the index.
TEST(PaperClaims, IndexRejectsNonFiniteInput) {
  Dataset ds = ArchiveDataset(0);
  ds.series[5].values[17] = std::nan("");
  SimilarityIndex index(Method::kSapla, kBudget, IndexKind::kDbchTree);
  const Status s = index.Build(ds);
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace sapla
