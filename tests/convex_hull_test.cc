// Tests for the incremental convex hull and its max-deviation queries.

#include "geom/convex_hull.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "geom/line_fit.h"
#include "util/rng.h"

namespace sapla {
namespace {

double BruteMaxDeviation(const std::vector<double>& xs,
                         const std::vector<double>& ys, const Line& line) {
  double m = 0.0;
  for (size_t i = 0; i < xs.size(); ++i)
    m = std::max(m, std::fabs(ys[i] - line.At(xs[i])));
  return m;
}

TEST(IncrementalHull, SinglePoint) {
  IncrementalHull hull;
  hull.Add(0.0, 5.0);
  const Line line{0.0, 3.0};
  EXPECT_DOUBLE_EQ(hull.MaxAbove(line), 2.0);
  EXPECT_DOUBLE_EQ(hull.MaxBelow(line), -2.0);
  EXPECT_DOUBLE_EQ(hull.MaxDeviation(line), 2.0);
}

TEST(IncrementalHull, CollinearPointsHaveZeroDeviation) {
  IncrementalHull hull;
  const Line line{2.0, -1.0};
  for (int t = 0; t < 20; ++t)
    hull.Add(static_cast<double>(t), line.At(static_cast<double>(t)));
  EXPECT_NEAR(hull.MaxDeviation(line), 0.0, 1e-12);
}

TEST(IncrementalHull, VShapeExtremes) {
  // y = |x - 5| against the zero line: extreme below at the tip is 0,
  // extreme above at the ends is 5.
  IncrementalHull hull;
  for (int t = 0; t <= 10; ++t)
    hull.Add(static_cast<double>(t), std::fabs(static_cast<double>(t) - 5.0));
  const Line zero{0.0, 0.0};
  EXPECT_DOUBLE_EQ(hull.MaxAbove(zero), 5.0);
  EXPECT_DOUBLE_EQ(hull.MaxBelow(zero), 0.0);
}

TEST(IncrementalHull, MaxAboveCanBeNegative) {
  // All points strictly below the line.
  IncrementalHull hull;
  hull.Add(0.0, -1.0);
  hull.Add(1.0, -2.0);
  hull.Add(2.0, -1.5);
  const Line line{0.0, 0.0};
  EXPECT_LT(hull.MaxAbove(line), 0.0);
  EXPECT_DOUBLE_EQ(hull.MaxBelow(line), 2.0);
}

class HullPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(HullPropertyTest, MatchesBruteForceOnRandomData) {
  Rng rng(GetParam());
  const size_t n = 5 + rng.UniformInt(300);
  std::vector<double> xs(n), ys(n);
  IncrementalHull hull;
  for (size_t t = 0; t < n; ++t) {
    xs[t] = static_cast<double>(t);
    ys[t] = rng.Gaussian(0.0, 10.0);
    hull.Add(xs[t], ys[t]);
    // Query against several random lines at every prefix length.
    if (t % 17 == 0 || t + 1 == n) {
      for (int trial = 0; trial < 5; ++trial) {
        const Line line{rng.Uniform(-3.0, 3.0), rng.Uniform(-10.0, 10.0)};
        std::vector<double> px(xs.begin(), xs.begin() + static_cast<long>(t) + 1);
        std::vector<double> py(ys.begin(), ys.begin() + static_cast<long>(t) + 1);
        EXPECT_NEAR(hull.MaxDeviation(line), BruteMaxDeviation(px, py, line),
                    1e-9);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, HullPropertyTest,
                         ::testing::Values(7, 17, 27, 37, 47, 57, 67, 77, 87,
                                           97));

}  // namespace
}  // namespace sapla
