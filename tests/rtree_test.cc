// Structural and search tests for the Guttman R-tree.

#include "index/rtree.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "util/rng.h"

namespace sapla {
namespace {

double PointBoxDist(const std::vector<double>& p, const std::vector<double>& lo,
                    const std::vector<double>& hi) {
  double sum = 0.0;
  for (size_t d = 0; d < p.size(); ++d) {
    double gap = 0.0;
    if (p[d] < lo[d]) gap = lo[d] - p[d];
    if (p[d] > hi[d]) gap = p[d] - hi[d];
    sum += gap * gap;
  }
  return std::sqrt(sum);
}

double PointDist(const std::vector<double>& a, const std::vector<double>& b) {
  double sum = 0.0;
  for (size_t d = 0; d < a.size(); ++d) {
    const double g = a[d] - b[d];
    sum += g * g;
  }
  return std::sqrt(sum);
}

std::vector<std::vector<double>> RandomPoints(uint64_t seed, size_t count,
                                              size_t dims) {
  Rng rng(seed);
  std::vector<std::vector<double>> pts(count, std::vector<double>(dims));
  for (auto& p : pts)
    for (auto& x : p) x = rng.Uniform(-100.0, 100.0);
  return pts;
}

TEST(RTree, EmptyTreeStats) {
  RTree tree(3);
  const TreeStats stats = tree.ComputeStats();
  EXPECT_EQ(stats.entries, 0u);
  EXPECT_EQ(stats.leaf_nodes, 1u);  // the empty root leaf
  EXPECT_EQ(stats.internal_nodes, 0u);
  EXPECT_EQ(stats.height, 1u);
}

TEST(RTree, AllEntriesReachable) {
  const auto pts = RandomPoints(1, 200, 4);
  RTree tree(4);
  for (size_t i = 0; i < pts.size(); ++i) tree.Insert(pts[i], i);
  EXPECT_EQ(tree.size(), pts.size());

  // Full traversal (box distance 0 everywhere, never tighten the bound).
  std::set<size_t> seen;
  tree.BestFirstSearch(
      [](const std::vector<double>&, const std::vector<double>&) {
        return 0.0;
      },
      [&](size_t id, double bound) {
        seen.insert(id);
        return bound;
      });
  EXPECT_EQ(seen.size(), pts.size());
}

TEST(RTree, FillFactorsRespected) {
  const auto pts = RandomPoints(2, 300, 3);
  RTree tree(3, RTreeOptions{2, 5});
  for (size_t i = 0; i < pts.size(); ++i) tree.Insert(pts[i], i);
  const TreeStats stats = tree.ComputeStats();
  EXPECT_GE(stats.avg_leaf_entries, 2.0);
  EXPECT_LE(stats.avg_leaf_entries, 5.0);
  EXPECT_GE(stats.height, 3u);  // 300 entries, fanout <= 5
}

TEST(RTree, NearestNeighborMatchesLinearScan) {
  const auto pts = RandomPoints(3, 150, 5);
  RTree tree(5);
  for (size_t i = 0; i < pts.size(); ++i) tree.Insert(pts[i], i);

  Rng rng(33);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<double> q(5);
    for (auto& x : q) x = rng.Uniform(-120.0, 120.0);

    size_t best_id = 0;
    double best = 1e300;
    for (size_t i = 0; i < pts.size(); ++i) {
      const double d = PointDist(q, pts[i]);
      if (d < best) {
        best = d;
        best_id = i;
      }
    }

    double found = 1e300;
    size_t found_id = 0;
    tree.BestFirstSearch(
        [&](const std::vector<double>& lo, const std::vector<double>& hi) {
          return PointBoxDist(q, lo, hi);
        },
        [&](size_t id, double bound) {
          const double d = PointDist(q, pts[id]);
          if (d < found) {
            found = d;
            found_id = id;
          }
          return std::min(bound, found);
        });
    EXPECT_EQ(found_id, best_id);
    EXPECT_NEAR(found, best, 1e-12);
  }
}

TEST(RTree, SearchPrunesWithExactBound) {
  // With a valid geometric bound, pruning must not lose the nearest
  // neighbor AND should touch fewer entries than a scan on clustered data.
  Rng rng(4);
  std::vector<std::vector<double>> pts;
  for (int cluster = 0; cluster < 10; ++cluster) {
    std::vector<double> center(4);
    for (auto& x : center) x = rng.Uniform(-500.0, 500.0);
    for (int i = 0; i < 30; ++i) {
      std::vector<double> p = center;
      for (auto& x : p) x += rng.Gaussian();
      pts.push_back(p);
    }
  }
  RTree tree(4);
  for (size_t i = 0; i < pts.size(); ++i) tree.Insert(pts[i], i);

  const std::vector<double> q = pts[17];  // query at a data point
  size_t touched = 0;
  double found = 1e300;
  tree.BestFirstSearch(
      [&](const std::vector<double>& lo, const std::vector<double>& hi) {
        return PointBoxDist(q, lo, hi);
      },
      [&](size_t id, double bound) {
        ++touched;
        found = std::min(found, PointDist(q, pts[id]));
        return std::min(bound, found);
      });
  EXPECT_NEAR(found, 0.0, 1e-12);
  EXPECT_LT(touched, pts.size() / 2);
}

TEST(RTree, DuplicatePointsAllRetained) {
  RTree tree(2);
  const std::vector<double> p{1.0, 2.0};
  for (size_t i = 0; i < 20; ++i) tree.Insert(p, i);
  std::set<size_t> seen;
  tree.BestFirstSearch(
      [](const std::vector<double>&, const std::vector<double>&) {
        return 0.0;
      },
      [&](size_t id, double bound) {
        seen.insert(id);
        return bound;
      });
  EXPECT_EQ(seen.size(), 20u);
}

TEST(RTreeBulkLoad, PacksLeavesNearFull) {
  const auto pts = RandomPoints(7, 500, 4);
  RTree tree(4, RTreeOptions{2, 5});
  std::vector<RTree::BulkEntry> entries;
  for (size_t i = 0; i < pts.size(); ++i)
    entries.push_back({pts[i], pts[i], i});
  tree.BulkLoadStr(std::move(entries));
  EXPECT_EQ(tree.size(), pts.size());
  const TreeStats stats = tree.ComputeStats();
  EXPECT_GE(stats.avg_leaf_entries, 4.0);  // near max fill 5
  // All entries reachable.
  std::set<size_t> seen;
  tree.BestFirstSearch(
      [](const std::vector<double>&, const std::vector<double>&) {
        return 0.0;
      },
      [&](size_t id, double bound) {
        seen.insert(id);
        return bound;
      });
  EXPECT_EQ(seen.size(), pts.size());
}

TEST(RTreeBulkLoad, SearchMatchesLinearScan) {
  const auto pts = RandomPoints(8, 200, 3);
  RTree tree(3);
  std::vector<RTree::BulkEntry> entries;
  for (size_t i = 0; i < pts.size(); ++i)
    entries.push_back({pts[i], pts[i], i});
  tree.BulkLoadStr(std::move(entries));

  Rng rng(88);
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<double> q(3);
    for (auto& x : q) x = rng.Uniform(-120.0, 120.0);
    size_t best_id = 0;
    double best = 1e300;
    for (size_t i = 0; i < pts.size(); ++i) {
      const double d = PointDist(q, pts[i]);
      if (d < best) {
        best = d;
        best_id = i;
      }
    }
    double found = 1e300;
    size_t found_id = 0;
    tree.BestFirstSearch(
        [&](const std::vector<double>& lo, const std::vector<double>& hi) {
          return PointBoxDist(q, lo, hi);
        },
        [&](size_t id, double bound) {
          const double d = PointDist(q, pts[id]);
          if (d < found) {
            found = d;
            found_id = id;
          }
          return std::min(bound, found);
        });
    EXPECT_EQ(found_id, best_id);
  }
}

TEST(RTreeBulkLoad, FewerNodesThanIncrementalInsert) {
  const auto pts = RandomPoints(9, 400, 4);
  RTree incremental(4), packed(4);
  std::vector<RTree::BulkEntry> entries;
  for (size_t i = 0; i < pts.size(); ++i) {
    incremental.Insert(pts[i], i);
    entries.push_back({pts[i], pts[i], i});
  }
  packed.BulkLoadStr(std::move(entries));
  EXPECT_LT(packed.ComputeStats().total_nodes(),
            incremental.ComputeStats().total_nodes());
}

TEST(RTreeBulkLoad, EmptyAndTinyInputs) {
  RTree tree(2);
  tree.BulkLoadStr({});
  EXPECT_EQ(tree.size(), 0u);
  tree.BulkLoadStr({{{1.0, 2.0}, {1.0, 2.0}, 42}});
  EXPECT_EQ(tree.size(), 1u);
  size_t seen = 0;
  tree.BestFirstSearch(
      [](const std::vector<double>&, const std::vector<double>&) {
        return 0.0;
      },
      [&](size_t id, double bound) {
        EXPECT_EQ(id, 42u);
        ++seen;
        return bound;
      });
  EXPECT_EQ(seen, 1u);
}

class RTreeScaleSweep : public ::testing::TestWithParam<size_t> {};

TEST_P(RTreeScaleSweep, HeightGrowsLogarithmically) {
  const size_t count = GetParam();
  const auto pts = RandomPoints(count, count, 4);
  RTree tree(4, RTreeOptions{2, 5});
  for (size_t i = 0; i < pts.size(); ++i) tree.Insert(pts[i], i);
  const TreeStats stats = tree.ComputeStats();
  EXPECT_EQ(stats.entries, count);
  // Height bounded by log_2(count) + slack (min fanout 2).
  const size_t bound =
      static_cast<size_t>(std::ceil(std::log2(static_cast<double>(count)))) +
      2;
  EXPECT_LE(stats.height, bound);
}

INSTANTIATE_TEST_SUITE_P(Sizes, RTreeScaleSweep,
                         ::testing::Values(10, 50, 100, 500, 1000));

}  // namespace
}  // namespace sapla
