// Tests for sliding-window subsequence search and motif discovery.

#include "search/subsequence.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "util/rng.h"

namespace sapla {
namespace {

std::vector<double> NoisySequence(uint64_t seed, size_t n) {
  Rng rng(seed);
  std::vector<double> v(n);
  double x = 0.0;
  for (auto& p : v) {
    x = 0.95 * x + rng.Gaussian();
    p = x;
  }
  return v;
}

SubsequenceIndex::Options SmallOptions() {
  SubsequenceIndex::Options opt;
  opt.window = 32;
  opt.stride = 1;
  opt.budget_m = 12;
  return opt;
}

TEST(SubsequenceIndex, BuildValidation) {
  SubsequenceIndex::Options opt = SmallOptions();
  EXPECT_FALSE(SubsequenceIndex::Build(std::vector<double>(10, 0.0), opt).ok());
  opt.window = 2;
  EXPECT_FALSE(
      SubsequenceIndex::Build(NoisySequence(1, 100), opt).ok());
  opt = SmallOptions();
  opt.stride = 0;
  EXPECT_FALSE(
      SubsequenceIndex::Build(NoisySequence(1, 100), opt).ok());
}

TEST(SubsequenceIndex, WindowCountMatchesStride) {
  for (const size_t stride : {1u, 4u, 16u}) {
    SubsequenceIndex::Options opt = SmallOptions();
    opt.stride = stride;
    const auto index = SubsequenceIndex::Build(NoisySequence(2, 256), opt);
    ASSERT_TRUE(index.ok());
    EXPECT_EQ((*index)->num_windows(), (256 - 32) / stride + 1);
  }
}

TEST(SubsequenceIndex, FindsPlantedPattern) {
  // Plant an exact copy of the query deep inside a noisy sequence.
  std::vector<double> seq = NoisySequence(3, 512);
  std::vector<double> pattern(32);
  for (size_t t = 0; t < 32; ++t)
    pattern[t] = 5.0 * std::sin(2.0 * M_PI * static_cast<double>(t) / 8.0);
  const size_t planted_at = 300;
  for (size_t t = 0; t < 32; ++t) seq[planted_at + t] = pattern[t];

  const auto index = SubsequenceIndex::Build(seq, SmallOptions());
  ASSERT_TRUE(index.ok());
  const auto hits = (*index)->Search(pattern, 1);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].offset, planted_at);
  EXPECT_NEAR(hits[0].distance, 0.0, 1e-9);
}

TEST(SubsequenceIndex, OverlapSuppression) {
  std::vector<double> seq = NoisySequence(4, 400);
  const auto index = SubsequenceIndex::Build(seq, SmallOptions());
  ASSERT_TRUE(index.ok());
  std::vector<double> query(seq.begin() + 100, seq.begin() + 132);
  const auto hits = (*index)->Search(query, 4, /*exclude_overlaps=*/true);
  for (size_t i = 0; i < hits.size(); ++i) {
    for (size_t j = i + 1; j < hits.size(); ++j) {
      const size_t gap = hits[i].offset > hits[j].offset
                             ? hits[i].offset - hits[j].offset
                             : hits[j].offset - hits[i].offset;
      EXPECT_GE(gap, 32u) << "hits " << i << " and " << j << " overlap";
    }
  }
}

TEST(SubsequenceIndex, RangeSearchMatchesBruteForce) {
  std::vector<double> seq = NoisySequence(5, 300);
  SubsequenceIndex::Options opt = SmallOptions();
  opt.method = Method::kPaa;       // rigorous bounds end-to-end
  opt.kind = IndexKind::kRTree;
  const auto index = SubsequenceIndex::Build(seq, opt);
  ASSERT_TRUE(index.ok());

  std::vector<double> query(seq.begin() + 50, seq.begin() + 82);
  const double radius = 3.0;
  const auto hits = (*index)->RangeSearch(query, radius);

  std::vector<size_t> brute;
  for (size_t off = 0; off + 32 <= seq.size(); ++off) {
    std::vector<double> w(seq.begin() + static_cast<ptrdiff_t>(off),
                          seq.begin() + static_cast<ptrdiff_t>(off) + 32);
    if (EuclideanDistance(query, w) <= radius) brute.push_back(off);
  }
  ASSERT_EQ(hits.size(), brute.size());
  std::vector<size_t> got;
  for (const auto& h : hits) got.push_back(h.offset);
  std::sort(got.begin(), got.end());
  EXPECT_EQ(got, brute);
}

TEST(SubsequenceIndex, MotifFindsPlantedRepetition) {
  // Plant the same pattern twice, far apart; the motif must be that pair.
  std::vector<double> seq = NoisySequence(6, 600);
  std::vector<double> pattern(32);
  Rng rng(99);
  for (auto& x : pattern) x = 10.0 * rng.Gaussian();
  for (size_t t = 0; t < 32; ++t) {
    seq[100 + t] = pattern[t];
    seq[450 + t] = pattern[t];
  }
  const auto index = SubsequenceIndex::Build(seq, SmallOptions());
  ASSERT_TRUE(index.ok());
  size_t partner = 0;
  const SubsequenceMatch motif = (*index)->FindMotif(&partner);
  const size_t a = std::min(motif.offset, partner);
  const size_t b = std::max(motif.offset, partner);
  EXPECT_EQ(a, 100u);
  EXPECT_EQ(b, 450u);
  EXPECT_NEAR(motif.distance, 0.0, 1e-9);
}

TEST(SubsequenceIndex, ZNormalizedMatchingIsAmplitudeInvariant) {
  // With per-window z-normalization, a scaled+shifted copy matches.
  std::vector<double> seq = NoisySequence(7, 400);
  std::vector<double> pattern(32);
  for (size_t t = 0; t < 32; ++t)
    pattern[t] = std::sin(2.0 * M_PI * static_cast<double>(t) / 10.0);
  for (size_t t = 0; t < 32; ++t) seq[200 + t] = 7.0 * pattern[t] + 40.0;

  SubsequenceIndex::Options opt = SmallOptions();
  opt.z_normalize_windows = true;
  const auto index = SubsequenceIndex::Build(seq, opt);
  ASSERT_TRUE(index.ok());
  const auto hits = (*index)->Search(pattern, 1);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].offset, 200u);
  EXPECT_NEAR(hits[0].distance, 0.0, 1e-6);
}

}  // namespace
}  // namespace sapla
