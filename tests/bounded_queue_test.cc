// Tests for the bounded MPMC admission queue (util/bounded_queue.h):
// capacity enforcement, the micro-batch window (size trigger, delay
// trigger, backlog fast-path), close/drain semantics, byte-budget
// admission (reject at the hard watermark, release on dequeue, no leaked
// reservations across rejected pushes / close / destruction), and
// concurrent producers/consumers losing nothing.

#include "util/bounded_queue.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace sapla {
namespace {

using std::chrono::microseconds;

TEST(BoundedQueue, TryPushRespectsCapacityAndKeepsItemOnFailure) {
  BoundedQueue<int> q(3);
  for (int i = 0; i < 3; ++i) EXPECT_TRUE(q.TryPush(std::move(i)));
  int extra = 99;
  EXPECT_FALSE(q.TryPush(std::move(extra)));
  EXPECT_EQ(extra, 99);  // not consumed
  EXPECT_EQ(q.size(), 3u);
}

TEST(BoundedQueue, PopBatchSizeTriggerFiresBeforeTheWindow) {
  BoundedQueue<int> q(16);
  for (int i = 0; i < 8; ++i) ASSERT_TRUE(q.TryPush(std::move(i)));
  // A huge window must not delay a batch that already has max_items.
  const auto batch = q.PopBatch(4, microseconds(60'000'000));
  EXPECT_EQ(batch, (std::vector<int>{0, 1, 2, 3}));
  // The leftover backlog fires the size trigger again...
  const auto rest = q.PopBatch(4, microseconds(60'000'000));
  EXPECT_EQ(rest, (std::vector<int>{4, 5, 6, 7}));
  // ...and a partial remainder flushes once ITS oldest item's window
  // expires, not the huge one above.
  int nine = 9;
  ASSERT_TRUE(q.TryPush(std::move(nine)));
  EXPECT_EQ(q.PopBatch(4, microseconds(5'000)), (std::vector<int>{9}));
}

TEST(BoundedQueue, PopBatchDelayTriggerFlushesPartialBatch) {
  BoundedQueue<int> q(16);
  int v = 7;
  ASSERT_TRUE(q.TryPush(std::move(v)));
  const auto start = std::chrono::steady_clock::now();
  const auto batch = q.PopBatch(1000, microseconds(20'000));
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_EQ(batch, (std::vector<int>{7}));
  EXPECT_LT(elapsed, std::chrono::seconds(10));  // no unbounded wait
}

TEST(BoundedQueue, CloseDrainsThenReturnsEmptyForever) {
  BoundedQueue<int> q(8);
  int a = 1, b = 2;
  ASSERT_TRUE(q.TryPush(std::move(a)));
  ASSERT_TRUE(q.TryPush(std::move(b)));
  q.Close();
  int c = 3;
  EXPECT_FALSE(q.TryPush(std::move(c)));
  EXPECT_EQ(q.PopBatch(10, microseconds(0)), (std::vector<int>{1, 2}));
  EXPECT_TRUE(q.PopBatch(10, microseconds(0)).empty());
  EXPECT_TRUE(q.PopBatch(10, microseconds(0)).empty());
}

TEST(BoundedQueue, PopBatchBlocksUntilFirstItemArrives) {
  BoundedQueue<int> q(8);
  std::thread producer([&q] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    int v = 5;
    q.TryPush(std::move(v));
  });
  const auto batch = q.PopBatch(4, microseconds(1000));
  producer.join();
  EXPECT_EQ(batch, (std::vector<int>{5}));
}

TEST(BoundedQueue, BudgetRejectsAtHardWatermarkWithoutConsumingItem) {
  auto budget = ResourceBudget::MakeRoot("queue", 100);
  BoundedQueue<int> q(16, budget);
  int a = 1, b = 2, c = 3;
  EXPECT_TRUE(q.TryPush(std::move(a), 60));
  EXPECT_TRUE(q.TryPush(std::move(b), 40));
  EXPECT_EQ(budget->used(), 100u);
  // Slots remain (capacity 16) but the byte budget is exhausted: the push
  // fails like a full queue, the item is not consumed, and no bytes stay
  // reserved from the failed attempt.
  EXPECT_FALSE(q.TryPush(std::move(c), 1));
  EXPECT_EQ(c, 3);
  EXPECT_EQ(budget->used(), 100u);
  EXPECT_EQ(budget->rejections(), 1u);
  EXPECT_EQ(q.size(), 2u);
}

TEST(BoundedQueue, BudgetReleasesOnDequeue) {
  auto budget = ResourceBudget::MakeRoot("queue", 100);
  BoundedQueue<int> q(16, budget);
  int a = 1, b = 2;
  ASSERT_TRUE(q.TryPush(std::move(a), 70));
  ASSERT_TRUE(q.TryPush(std::move(b), 30));
  ASSERT_EQ(budget->used(), 100u);
  EXPECT_EQ(q.PopBatch(1, microseconds(0)), (std::vector<int>{1}));
  EXPECT_EQ(budget->used(), 30u);  // only the still-queued item is metered
  int c = 3;
  EXPECT_TRUE(q.TryPush(std::move(c), 70));  // freed bytes are reusable
  EXPECT_EQ(budget->used(), 100u);
  (void)q.PopBatch(8, microseconds(0));
  EXPECT_EQ(budget->used(), 0u);
}

TEST(BoundedQueue, OldestWaitTracksHeadAge) {
  BoundedQueue<int> q(8);
  EXPECT_EQ(q.OldestWaitUs(), 0u);  // empty queue: no delay signal
  int v = 1;
  ASSERT_TRUE(q.TryPush(std::move(v)));
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_GE(q.OldestWaitUs(), 3000u);
  (void)q.PopBatch(8, microseconds(0));
  EXPECT_EQ(q.OldestWaitUs(), 0u);
}

TEST(BoundedQueue, BudgetNotLeakedWhenQueueIsFullOrClosed) {
  auto budget = ResourceBudget::MakeRoot("queue", 1000);
  {
    BoundedQueue<int> q(1, budget);
    int a = 1, b = 2;
    ASSERT_TRUE(q.TryPush(std::move(a), 10));
    // Budget admits but the slot check refuses: the reservation made
    // before taking the lock must be rolled back.
    EXPECT_FALSE(q.TryPush(std::move(b), 10));
    EXPECT_EQ(budget->used(), 10u);
    q.Close();
    int c = 3;
    EXPECT_FALSE(q.TryPush(std::move(c), 10));  // closed: same rollback
    EXPECT_EQ(budget->used(), 10u);
    // The queue dies with one undrained item; its bytes come back in the
    // destructor.
  }
  EXPECT_EQ(budget->used(), 0u);
}

TEST(BoundedQueue, BudgetedConcurrentProducersLeakNothing) {
  constexpr size_t kProducers = 8;
  constexpr int kPerProducer = 400;
  constexpr size_t kItemBytes = 16;
  // Budget tighter than the slot capacity so both admission paths trip.
  auto budget = ResourceBudget::MakeRoot("queue", 4 * kItemBytes);
  BoundedQueue<int> q(16, budget);

  std::vector<std::thread> producers;
  for (size_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&q, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        int item = static_cast<int>(p) * kPerProducer + i;
        while (!q.TryPush(std::move(item), kItemBytes))
          std::this_thread::yield();
      }
    });
  }

  std::vector<int> all;
  std::thread consumer([&q, &all] {
    for (;;) {
      const auto batch = q.PopBatch(4, microseconds(100));
      if (batch.empty()) return;
      all.insert(all.end(), batch.begin(), batch.end());
    }
  });

  for (auto& t : producers) t.join();
  q.Close();
  consumer.join();

  std::sort(all.begin(), all.end());
  ASSERT_EQ(all.size(), kProducers * kPerProducer);
  for (size_t i = 0; i < all.size(); ++i)
    ASSERT_EQ(all[i], static_cast<int>(i));
  EXPECT_EQ(budget->used(), 0u);  // every reservation was paired
  EXPECT_LE(budget->peak_used(), 4 * kItemBytes);
}

TEST(BoundedQueue, ConcurrentProducersConsumersLoseNothing) {
  constexpr size_t kProducers = 4;
  constexpr size_t kConsumers = 2;
  constexpr int kPerProducer = 500;
  BoundedQueue<int> q(16);

  std::vector<std::thread> producers;
  for (size_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&q, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        int item = static_cast<int>(p) * kPerProducer + i;
        while (!q.TryPush(std::move(item)))  // spin on backpressure
          std::this_thread::yield();
      }
    });
  }

  std::vector<std::vector<int>> popped(kConsumers);
  std::vector<std::thread> consumers;
  for (size_t c = 0; c < kConsumers; ++c) {
    consumers.emplace_back([&q, &popped, c] {
      for (;;) {
        const auto batch = q.PopBatch(8, microseconds(100));
        if (batch.empty()) return;  // closed and drained
        popped[c].insert(popped[c].end(), batch.begin(), batch.end());
      }
    });
  }

  for (auto& t : producers) t.join();
  q.Close();
  for (auto& t : consumers) t.join();

  std::vector<int> all;
  for (const auto& v : popped) all.insert(all.end(), v.begin(), v.end());
  std::sort(all.begin(), all.end());
  ASSERT_EQ(all.size(), kProducers * kPerProducer);
  for (size_t i = 0; i < all.size(); ++i)
    ASSERT_EQ(all[i], static_cast<int>(i));  // each item exactly once
}

}  // namespace
}  // namespace sapla
