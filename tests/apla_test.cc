// Tests for the APLA dynamic program: exactness against brute force on
// small inputs and dominance over every heuristic method.

#include "reduction/apla.h"

#include <functional>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "core/sapla.h"
#include "geom/line_fit.h"
#include "reduction/apca.h"
#include "reduction/pla.h"
#include "util/rng.h"

namespace sapla {
namespace {

std::vector<double> RandomSeries(uint64_t seed, size_t n) {
  Rng rng(seed);
  std::vector<double> v(n);
  for (auto& x : v) x = rng.Gaussian(0.0, 3.0);
  return v;
}

// Brute force: enumerate all segmentations into `k` segments of length >= 2
// and return the minimum sum of per-segment max deviations.
double BruteBest(const std::vector<double>& v, size_t k) {
  const size_t n = v.size();
  PrefixFitter fit(v);
  auto seg_err = [&](size_t s, size_t e) {
    return fit.MaxDeviation(s, e, fit.Fit(s, e));
  };
  double best = std::numeric_limits<double>::infinity();
  // Recursive enumeration of breakpoints.
  std::vector<size_t> ends;
  std::function<void(size_t, size_t, double)> rec = [&](size_t start,
                                                        size_t left,
                                                        double acc) {
    if (left == 1) {
      if (n - start >= 2) {
        const double total = acc + seg_err(start, n - 1);
        best = std::min(best, total);
      }
      return;
    }
    for (size_t e = start + 1; e + 2 * left - 2 <= n; ++e) {
      rec(e + 1, left - 1, acc + seg_err(start, e));
    }
  };
  rec(0, k, 0.0);
  return best;
}

TEST(Apla, MatchesBruteForceOnSmallInputs) {
  for (uint64_t seed : {1, 2, 3, 4, 5}) {
    const std::vector<double> v = RandomSeries(seed, 14);
    for (size_t k : {2, 3, 4}) {
      const Representation rep =
          AplaReducer().Reduce(v, k * CoefficientsPerSegment(Method::kApla));
      ASSERT_EQ(rep.segments.size(), k);
      EXPECT_NEAR(rep.SumMaxDeviation(v), BruteBest(v, k), 1e-4)
          << "seed=" << seed << " k=" << k;
    }
  }
}

TEST(Apla, PerfectOnPiecewiseLinearData) {
  // A series that IS 3 lines must be recovered with ~zero deviation.
  std::vector<double> v;
  for (int t = 0; t < 10; ++t) v.push_back(2.0 * t);
  for (int t = 0; t < 10; ++t) v.push_back(18.0 - 3.0 * t);
  for (int t = 0; t < 10; ++t) v.push_back(-12.0 + 1.5 * t);
  const Representation rep = AplaReducer().Reduce(v, 9);  // N = 3
  EXPECT_NEAR(rep.SumMaxDeviation(v), 0.0, 1e-9);
}

TEST(Apla, DominatesHeuristicsAtEqualSegmentCount) {
  // With the SAME number of segments, the DP's sum of max deviations is
  // minimal — SAPLA/APCA/PLA cannot beat it.
  for (uint64_t seed : {10, 20, 30}) {
    Rng rng(seed);
    std::vector<double> v(120);
    double x = 0.0;
    for (auto& p : v) {
      x += rng.Gaussian();
      p = x;
    }
    const size_t n_seg = 6;
    const double apla =
        AplaReducer().Reduce(v, 3 * n_seg).SumMaxDeviation(v);
    const double sapla =
        SaplaReducer().ReduceToSegments(v, n_seg).SumMaxDeviation(v);
    EXPECT_LE(apla, sapla + 1e-9);
  }
}

TEST(Apla, SegmentCountClampsForShortSeries) {
  const std::vector<double> v = RandomSeries(7, 6);
  // Requesting more segments than n/2 clamps to n/2 = 3.
  const Representation rep = AplaReducer().Reduce(v, 30);
  EXPECT_LE(rep.segments.size(), 3u);
  EXPECT_EQ(rep.segments.back().r, v.size() - 1);
}

TEST(Apla, HullErrorOracleMatchesScan) {
  // The DP's convex-hull max-deviation oracle must agree with a direct scan
  // (spot-checked through the public API: 1-segment reduction).
  const std::vector<double> v = RandomSeries(8, 40);
  const Representation rep = AplaReducer().Reduce(v, 3);  // N = 1
  ASSERT_EQ(rep.segments.size(), 1u);
  PrefixFitter fit(v);
  const Line line = fit.Fit(0, v.size() - 1);
  EXPECT_NEAR(rep.segments[0].a, line.a, 1e-9);
  EXPECT_NEAR(rep.segments[0].b, line.b, 1e-9);
}

class AplaQualitySweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(AplaQualitySweep, NeverWorseThanSaplaOrApcaOrPla) {
  Rng rng(GetParam());
  std::vector<double> v(150);
  for (auto& x : v) x = rng.Gaussian(0.0, 2.0);
  const size_t m = 24;
  const double apla = AplaReducer().Reduce(v, m).SumMaxDeviation(v);
  // APLA uses N=8 segments at M=24; SAPLA the same.
  const double sapla = SaplaReducer().Reduce(v, m).SumMaxDeviation(v);
  EXPECT_LE(apla, sapla + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, AplaQualitySweep,
                         ::testing::Values(100, 200, 300, 400, 500, 600));

}  // namespace
}  // namespace sapla
