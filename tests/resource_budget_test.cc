// Tests for the hierarchical byte-budget accountant
// (util/resource_budget.h): TryReserve / ForceReserve / Release semantics,
// all-or-nothing rollup through the ancestor chain, graded pressure
// watermarks, live capacity changes, SnapshotTree, the BudgetLease RAII
// wrapper, and leak-freedom under concurrent reserve/release.

#include "util/resource_budget.h"

#include <atomic>
#include <cstddef>
#include <memory>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace sapla {
namespace {

TEST(ResourceBudget, TryReserveReleaseRoundTrips) {
  auto root = ResourceBudget::MakeRoot("root", 1000);
  EXPECT_TRUE(root->TryReserve(400));
  EXPECT_EQ(root->used(), 400u);
  EXPECT_TRUE(root->TryReserve(600));
  EXPECT_EQ(root->used(), 1000u);
  // At capacity: the next byte is refused and nothing changes.
  EXPECT_FALSE(root->TryReserve(1));
  EXPECT_EQ(root->used(), 1000u);
  EXPECT_EQ(root->rejections(), 1u);
  root->Release(1000);
  EXPECT_EQ(root->used(), 0u);
  EXPECT_EQ(root->peak_used(), 1000u);
}

TEST(ResourceBudget, ZeroCapacityIsPureAccounting) {
  auto root = ResourceBudget::MakeRoot("root", 0);
  EXPECT_TRUE(root->TryReserve(1u << 30));
  EXPECT_EQ(root->pressure(), BudgetPressure::kNone);
  EXPECT_EQ(root->rejections(), 0u);
  root->Release(1u << 30);
  EXPECT_EQ(root->used(), 0u);
}

TEST(ResourceBudget, ChildReservationRollsUpToParent) {
  auto root = ResourceBudget::MakeRoot("root", 1000);
  auto a = ResourceBudget::MakeChild(root, "a");
  auto b = ResourceBudget::MakeChild(root, "b");
  EXPECT_TRUE(a->TryReserve(600));
  EXPECT_EQ(root->used(), 600u);
  // b is locally unlimited but the shared root caps the pair: this is the
  // "N shards can't collectively exceed the budget" wiring.
  EXPECT_FALSE(b->TryReserve(500));
  EXPECT_EQ(b->used(), 0u);
  EXPECT_EQ(root->used(), 600u);  // failed reserve left no residue anywhere
  EXPECT_TRUE(b->TryReserve(400));
  EXPECT_EQ(root->used(), 1000u);
  a->Release(600);
  b->Release(400);
  EXPECT_EQ(root->used(), 0u);
}

TEST(ResourceBudget, TryReserveIsAllOrNothingWhenChildCapIsHit) {
  auto root = ResourceBudget::MakeRoot("root", 1000);
  auto child = ResourceBudget::MakeChild(root, "child", 100);
  EXPECT_FALSE(child->TryReserve(200));  // child cap refuses
  EXPECT_EQ(child->used(), 0u);
  EXPECT_EQ(root->used(), 0u);  // nothing stranded on the ancestor
  EXPECT_TRUE(child->TryReserve(100));
  EXPECT_EQ(root->used(), 100u);
}

TEST(ResourceBudget, ForceReserveAlwaysLandsAndCountsOverflow) {
  auto root = ResourceBudget::MakeRoot("root", 100);
  root->ForceReserve(150);
  EXPECT_EQ(root->used(), 150u);
  EXPECT_EQ(root->overflows(), 1u);
  EXPECT_EQ(root->pressure(), BudgetPressure::kHard);
  root->Release(150);
  EXPECT_EQ(root->used(), 0u);
}

TEST(ResourceBudget, PressureWatermarksAreGraded) {
  // soft watermark at 0.85 * 1000 = 850.
  auto root = ResourceBudget::MakeRoot("root", 1000);
  EXPECT_TRUE(root->TryReserve(800));
  EXPECT_EQ(root->pressure(), BudgetPressure::kNone);
  EXPECT_TRUE(root->TryReserve(50));
  EXPECT_EQ(root->pressure(), BudgetPressure::kSoft);
  EXPECT_TRUE(root->TryReserve(150));
  EXPECT_EQ(root->pressure(), BudgetPressure::kHard);
  root->Release(500);
  EXPECT_EQ(root->pressure(), BudgetPressure::kNone);
}

TEST(ResourceBudget, PressureUpFoldsAncestors) {
  auto root = ResourceBudget::MakeRoot("root", 100);
  auto child = ResourceBudget::MakeChild(root, "child");  // unlimited itself
  EXPECT_EQ(child->pressure_up(), BudgetPressure::kNone);
  child->ForceReserve(100);
  EXPECT_EQ(child->pressure(), BudgetPressure::kNone);  // own cap is 0
  EXPECT_EQ(child->pressure_up(), BudgetPressure::kHard);
  child->Release(100);
  EXPECT_EQ(child->pressure_up(), BudgetPressure::kNone);
}

TEST(ResourceBudget, SetCapacityLiftsAndReimposesPressure) {
  auto root = ResourceBudget::MakeRoot("root", 100);
  root->ForceReserve(100);
  EXPECT_EQ(root->pressure(), BudgetPressure::kHard);
  root->SetCapacity(0);  // chaos "lift": unlimited again
  EXPECT_EQ(root->pressure(), BudgetPressure::kNone);
  EXPECT_TRUE(root->TryReserve(1u << 20));
  root->SetCapacity(50);  // shrink below usage: hard until consumers release
  EXPECT_EQ(root->pressure(), BudgetPressure::kHard);
  EXPECT_FALSE(root->TryReserve(1));
}

TEST(ResourceBudget, SnapshotTreeIsPreOrderWithLiveCounters) {
  auto root = ResourceBudget::MakeRoot("root", 1000);
  auto cache = ResourceBudget::MakeChild(root, "cache");
  auto queue = ResourceBudget::MakeChild(root, "queue");
  ASSERT_TRUE(cache->TryReserve(300));
  ASSERT_TRUE(queue->TryReserve(200));
  ASSERT_FALSE(queue->TryReserve(1000));

  const auto snaps = root->SnapshotTree();
  ASSERT_EQ(snaps.size(), 3u);
  EXPECT_EQ(snaps[0].name, "root");
  EXPECT_EQ(snaps[0].used, 500u);
  EXPECT_EQ(snaps[0].capacity, 1000u);
  // Children in registration order after the root.
  EXPECT_EQ(snaps[1].name, "cache");
  EXPECT_EQ(snaps[1].used, 300u);
  EXPECT_EQ(snaps[2].name, "queue");
  EXPECT_EQ(snaps[2].used, 200u);
  // The rejection is charged to the budget whose capacity was hit (root).
  EXPECT_EQ(snaps[0].rejections, 1u);
  EXPECT_EQ(snaps[2].rejections, 0u);
}

TEST(ResourceBudget, DestroyedChildUnregistersFromSnapshots) {
  auto root = ResourceBudget::MakeRoot("root", 0);
  {
    auto child = ResourceBudget::MakeChild(root, "ephemeral");
    EXPECT_EQ(root->SnapshotTree().size(), 2u);
  }
  EXPECT_EQ(root->SnapshotTree().size(), 1u);
}

TEST(BudgetLeaseTest, ReleasesOnDestructionAndMove) {
  auto root = ResourceBudget::MakeRoot("root", 100);
  {
    BudgetLease lease = BudgetLease::TryAcquire(root, 60);
    ASSERT_TRUE(lease.ok());
    EXPECT_EQ(root->used(), 60u);
    BudgetLease moved = std::move(lease);
    EXPECT_TRUE(moved.ok());
    EXPECT_FALSE(lease.ok());
    EXPECT_EQ(root->used(), 60u);  // move transfers, never double-releases
  }
  EXPECT_EQ(root->used(), 0u);

  BudgetLease refused = BudgetLease::TryAcquire(root, 200);
  EXPECT_FALSE(refused.ok());
  EXPECT_EQ(root->used(), 0u);

  BudgetLease forced = BudgetLease::Acquire(root, 200);
  EXPECT_TRUE(forced.ok());
  EXPECT_EQ(root->used(), 200u);
  EXPECT_EQ(root->overflows(), 1u);
  forced.Reset();
  EXPECT_EQ(root->used(), 0u);
  forced.Reset();  // idempotent
  EXPECT_EQ(root->used(), 0u);
}

TEST(BudgetLeaseTest, NullBudgetIsAlwaysOk) {
  BudgetLease lease = BudgetLease::TryAcquire(nullptr, 1u << 20);
  EXPECT_TRUE(lease.ok());
}

TEST(ResourceBudget, ConcurrentReserveReleaseIsLeakFree) {
  constexpr size_t kThreads = 8;
  constexpr int kIters = 2000;
  auto root = ResourceBudget::MakeRoot("root", kThreads * 64);
  auto child = ResourceBudget::MakeChild(root, "worker");

  std::atomic<uint64_t> admitted{0};
  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) {
        // Mix both flavors so the CAS path and the unconditional path race.
        if (i % 4 == 0) {
          child->ForceReserve(64);
          admitted.fetch_add(1, std::memory_order_relaxed);
          child->Release(64);
        } else if (child->TryReserve(64)) {
          admitted.fetch_add(1, std::memory_order_relaxed);
          child->Release(64);
        }
      }
    });
  }
  for (auto& t : threads) t.join();

  EXPECT_GT(admitted.load(), 0u);
  EXPECT_EQ(child->used(), 0u);
  EXPECT_EQ(root->used(), 0u);
  EXPECT_LE(root->peak_used(), root->capacity() + kThreads * 64);
}

}  // namespace
}  // namespace sapla
