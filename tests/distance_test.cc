// Tests for Dist_S, Dist_PAR, Dist_LB and Dist_AE (paper §5.1 / Appendix
// A.5-A.6): algebraic identities asserted exactly, lower-bounding and
// tightness relations checked over random sweeps.

#include "distance/distance.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "core/sapla.h"
#include "reduction/apca.h"
#include "reduction/paa.h"
#include "reduction/pla.h"
#include "ts/time_series.h"
#include "util/rng.h"

namespace sapla {
namespace {

std::vector<double> RandomWalk(uint64_t seed, size_t n) {
  Rng rng(seed);
  std::vector<double> v(n);
  double x = 0.0;
  for (auto& p : v) {
    x += rng.Gaussian();
    p = x;
  }
  ZNormalize(&v);
  return v;
}

TEST(DistS, MatchesBruteForceSum) {
  Rng rng(1);
  for (int trial = 0; trial < 50; ++trial) {
    const Line q{rng.Uniform(-2, 2), rng.Uniform(-5, 5)};
    const Line c{rng.Uniform(-2, 2), rng.Uniform(-5, 5)};
    const size_t l = 1 + rng.UniformInt(40);
    double brute = 0.0;
    for (size_t j = 0; j < l; ++j) {
      const double d = q.At(static_cast<double>(j)) -
                       c.At(static_cast<double>(j));
      brute += d * d;
    }
    EXPECT_NEAR(DistSSquared(q, c, l), brute, 1e-8);
  }
}

TEST(DistS, ZeroForIdenticalLines) {
  const Line q{1.5, -2.0};
  EXPECT_DOUBLE_EQ(DistSSquared(q, q, 17), 0.0);
}

TEST(UnionEndpoints, MergesAndDeduplicates) {
  Representation a, b;
  a.n = b.n = 10;
  a.segments = {{0, 0, 3}, {0, 0, 9}};
  b.segments = {{0, 0, 3}, {0, 0, 6}, {0, 0, 9}};
  const std::vector<size_t> r = UnionEndpoints(a, b);
  EXPECT_EQ(r, (std::vector<size_t>{3, 6, 9}));
}

TEST(PartitionAt, ReconstructionInvariant) {
  // Partitioning is exact: the partitioned representation reconstructs the
  // identical series (Definition 5.1's split keeps each line's restriction).
  const std::vector<double> v = RandomWalk(2, 64);
  const Representation rep = SaplaReducer().Reduce(v, 12);
  // Refine at every 5th point plus the original endpoints.
  std::vector<size_t> cuts;
  for (const auto& s : rep.segments) cuts.push_back(s.r);
  for (size_t t = 4; t < v.size(); t += 5) cuts.push_back(t);
  std::sort(cuts.begin(), cuts.end());
  cuts.erase(std::unique(cuts.begin(), cuts.end()), cuts.end());

  Representation refined = rep;
  refined.segments = PartitionAt(rep, cuts);
  const std::vector<double> rec_a = rep.Reconstruct();
  const std::vector<double> rec_b = refined.Reconstruct();
  for (size_t t = 0; t < v.size(); ++t) EXPECT_NEAR(rec_a[t], rec_b[t], 1e-9);
}

TEST(DistPar, EqualsExactDistanceBetweenReconstructions) {
  // The core identity behind Definition 5.1.
  for (uint64_t seed : {3, 4, 5, 6}) {
    const std::vector<double> q = RandomWalk(seed, 100);
    const std::vector<double> c = RandomWalk(seed + 50, 100);
    const Representation qr = SaplaReducer().Reduce(q, 18);
    const Representation cr = SaplaReducer().Reduce(c, 18);
    const double expected =
        EuclideanDistance(qr.Reconstruct(), cr.Reconstruct());
    EXPECT_NEAR(DistPar(qr, cr), expected, 1e-8);
  }
}

TEST(DistPar, IsAMetricOnIdenticalInputs) {
  const std::vector<double> v = RandomWalk(7, 80);
  const Representation r = SaplaReducer().Reduce(v, 12);
  EXPECT_NEAR(DistPar(r, r), 0.0, 1e-9);
}

TEST(DistPar, SymmetricInArguments) {
  const std::vector<double> a = RandomWalk(8, 80);
  const std::vector<double> b = RandomWalk(9, 80);
  const Representation ra = SaplaReducer().Reduce(a, 12);
  const Representation rb = SaplaReducer().Reduce(b, 12);
  EXPECT_NEAR(DistPar(ra, rb), DistPar(rb, ra), 1e-9);
}

TEST(DistPar, WorksAcrossApcaRepresentations) {
  // Dist_PAR applies to any adaptive-length segment method (constant
  // segments are lines with a = 0).
  const std::vector<double> a = RandomWalk(10, 90);
  const std::vector<double> b = RandomWalk(11, 90);
  const Representation ra = ApcaReducer().Reduce(a, 12);
  const Representation rb = ApcaReducer().Reduce(b, 12);
  const double expected =
      EuclideanDistance(ra.Reconstruct(), rb.Reconstruct());
  EXPECT_NEAR(DistPar(ra, rb), expected, 1e-8);
}

TEST(DistPar, EqualLengthCaseIsClassicPlaBound) {
  // With identical (equal-length) endpoints no partition happens and the
  // value is the Chen et al. PLA lower bound — which provably lower-bounds
  // the Euclidean distance when both series use the same breakpoints.
  for (uint64_t seed : {12, 13, 14, 15, 16, 17}) {
    const std::vector<double> q = RandomWalk(seed, 120);
    const std::vector<double> c = RandomWalk(seed + 100, 120);
    const Representation qr = PlaReducer().Reduce(q, 16);
    const Representation cr = PlaReducer().Reduce(c, 16);
    EXPECT_LE(DistPar(qr, cr), EuclideanDistance(q, c) + 1e-9) << seed;
  }
}

TEST(DistPar, PaaCaseIsClassicPaaBound) {
  for (uint64_t seed : {18, 19, 20, 21, 22, 23}) {
    const std::vector<double> q = RandomWalk(seed, 120);
    const std::vector<double> c = RandomWalk(seed + 100, 120);
    const Representation qr = PaaReducer().Reduce(q, 12);
    const Representation cr = PaaReducer().Reduce(c, 12);
    EXPECT_LE(DistPar(qr, cr), EuclideanDistance(q, c) + 1e-9) << seed;
  }
}

TEST(DistLb, NeverExceedsDistParPlusTolerance) {
  // Appendix A.6's tightness ordering: Dist_LB <= Dist_PAR. Checked over a
  // sweep; the projection argument makes this the robust direction.
  size_t violations = 0;
  for (uint64_t seed = 30; seed < 60; ++seed) {
    const std::vector<double> q = RandomWalk(seed, 100);
    const std::vector<double> c = RandomWalk(seed + 500, 100);
    const Representation cr = SaplaReducer().Reduce(c, 18);
    PrefixFitter qf(q);
    const Representation qr = SaplaReducer().Reduce(q, 18);
    if (DistLb(qf, cr) > DistPar(qr, cr) + 1e-6) ++violations;
  }
  // Dist_LB projects the RAW query; Dist_PAR uses the query's own reduction,
  // so the ordering can flip on individual pairs — but it should hold for
  // the vast majority (the paper proves it for the idealized partition).
  EXPECT_LE(violations, 6u);
}

TEST(DistLb, ZeroWhenQueryEqualsReconstruction) {
  const std::vector<double> c = RandomWalk(61, 80);
  const Representation cr = SaplaReducer().Reduce(c, 12);
  const std::vector<double> rec = cr.Reconstruct();
  PrefixFitter qf(rec);
  EXPECT_NEAR(DistLb(qf, cr), 0.0, 1e-8);
}

TEST(DistLb, LowerBoundsEuclideanDistance) {
  // Dist_LB projects the raw query onto the data's breakpoints — an
  // orthogonal projection applied to both series of the pair (the data's
  // reconstruction is invariant), so the bound is rigorous.
  for (uint64_t seed = 70; seed < 90; ++seed) {
    const std::vector<double> q = RandomWalk(seed, 100);
    const std::vector<double> c = RandomWalk(seed + 500, 100);
    const Representation cr = SaplaReducer().Reduce(c, 18);
    PrefixFitter qf(q);
    EXPECT_LE(DistLb(qf, cr), EuclideanDistance(q, c) + 1e-9) << seed;
  }
}

TEST(DistLb, ConstantModelLowerBoundsForApcaAndPaa) {
  // Dist_LB projects with the method's own model (constant for APCA/PAA):
  // stored values are the LS constant fits, so the projection bound is
  // rigorous for them too.
  for (uint64_t seed = 200; seed < 230; ++seed) {
    const std::vector<double> q = RandomWalk(seed, 100);
    const std::vector<double> c = RandomWalk(seed + 500, 100);
    PrefixFitter qf(q);
    const Representation apca = ApcaReducer().Reduce(c, 12);
    const Representation paa = PaaReducer().Reduce(c, 12);
    const double euclid = EuclideanDistance(q, c);
    EXPECT_LE(DistLb(qf, apca), euclid + 1e-9) << seed;
    EXPECT_LE(DistLb(qf, paa), euclid + 1e-9) << seed;
  }
}

TEST(DistLb, TightensWithMoreSegments) {
  // More breakpoints -> finer projection -> larger (tighter) bound.
  const std::vector<double> q = RandomWalk(300, 240);
  const std::vector<double> c = RandomWalk(301, 240);
  PrefixFitter qf(q);
  double prev = -1.0;
  for (const size_t m : {6, 12, 24, 48}) {
    const double d = DistLb(qf, SaplaReducer().Reduce(c, m));
    EXPECT_GE(d, prev - 0.35);  // monotone up to segmentation jitter
    prev = d;
  }
  // End to end it must stay below the true distance.
  EXPECT_LE(prev, EuclideanDistance(q, c) + 1e-9);
}

TEST(DistAe, EqualsEuclideanToReconstruction) {
  const std::vector<double> q = RandomWalk(91, 90);
  const std::vector<double> c = RandomWalk(92, 90);
  const Representation cr = SaplaReducer().Reduce(c, 12);
  EXPECT_NEAR(DistAe(q, cr), EuclideanDistance(q, cr.Reconstruct()), 1e-10);
}

struct SummaryLike {
  double lb = 0, par = 0, ae = 0, euc = 0;
};

TEST(DistMeasures, PaperOrderingHoldsOnAverage) {
  // Fig. 10's qualitative ordering: Dist_LB <= Dist_PAR <= Dist (on
  // average), with Dist_AE the tightest to Dist but able to exceed it.
  SummaryLike sums{};
  for (uint64_t seed = 100; seed < 140; ++seed) {
    const std::vector<double> q = RandomWalk(seed, 100);
    const std::vector<double> c = RandomWalk(seed + 1000, 100);
    const Representation qr = SaplaReducer().Reduce(q, 18);
    const Representation cr = SaplaReducer().Reduce(c, 18);
    PrefixFitter qf(q);
    sums.lb += DistLb(qf, cr);
    sums.par += DistPar(qr, cr);
    sums.ae += DistAe(q, cr);
    sums.euc += EuclideanDistance(q, c);
  }
  EXPECT_LE(sums.lb, sums.par);
  EXPECT_LE(sums.par, sums.euc);
  EXPECT_LE(sums.ae, sums.euc * 1.05);  // tight approximation
  EXPECT_GE(sums.ae, sums.par);         // AE is tighter (larger) than PAR
}

}  // namespace
}  // namespace sapla
