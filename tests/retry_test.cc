// Client-side retry layer (serve/retry.h): deterministic backoff schedules
// (same seed => same schedule), the transient-only retryable set, the
// never-retry-past-the-deadline rule, the clock-free retry budget, and the
// RetryingClient end to end against a QueryService with injected admission
// failures.

#include "serve/retry.h"

#include <chrono>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "ts/synthetic_archive.h"
#include "util/fault.h"

namespace sapla {
namespace {

TEST(RetryBackoff, PureFunctionOfPolicyAttemptAndRequestId) {
  RetryPolicy policy;
  policy.seed = 42;
  policy.jitter = 0.5;
  for (uint32_t attempt = 1; attempt <= 6; ++attempt) {
    const uint64_t a = BackoffUs(policy, attempt, /*request_id=*/7);
    const uint64_t b = BackoffUs(policy, attempt, /*request_id=*/7);
    EXPECT_EQ(a, b) << "attempt " << attempt;
  }
  // Different request ids jitter differently somewhere in the schedule.
  bool differs = false;
  for (uint32_t attempt = 1; attempt <= 6; ++attempt)
    differs |= BackoffUs(policy, attempt, 7) != BackoffUs(policy, attempt, 8);
  EXPECT_TRUE(differs);
  // Different seeds too.
  RetryPolicy other = policy;
  other.seed = 43;
  differs = false;
  for (uint32_t attempt = 1; attempt <= 6; ++attempt)
    differs |= BackoffUs(policy, attempt, 7) != BackoffUs(other, attempt, 7);
  EXPECT_TRUE(differs);
}

TEST(RetryBackoff, JitterZeroIsExactExponentialWithCap) {
  RetryPolicy policy;
  policy.initial_backoff_us = 1000;
  policy.backoff_multiplier = 2.0;
  policy.max_backoff_us = 5000;
  policy.jitter = 0.0;
  EXPECT_EQ(BackoffUs(policy, 1, 0), 1000u);
  EXPECT_EQ(BackoffUs(policy, 2, 0), 2000u);
  EXPECT_EQ(BackoffUs(policy, 3, 0), 4000u);
  EXPECT_EQ(BackoffUs(policy, 4, 0), 5000u);  // capped
  EXPECT_EQ(BackoffUs(policy, 60, 0), 5000u);  // saturates, no overflow
}

TEST(RetryBackoff, JitterStaysWithinTheConfiguredBand) {
  RetryPolicy policy;
  policy.initial_backoff_us = 10000;
  policy.jitter = 0.5;
  for (uint64_t id = 0; id < 200; ++id) {
    const uint64_t b = BackoffUs(policy, 1, id);
    EXPECT_GE(b, 5000u) << id;
    EXPECT_LT(b, 10000u) << id;
  }
}

TEST(RetryPolicyTest, OnlyTransientCodesAreRetryable) {
  RetryPolicy policy;
  EXPECT_TRUE(IsRetryable(policy, StatusCode::kOverloaded));
  EXPECT_FALSE(IsRetryable(policy, StatusCode::kUnavailable));
  policy.retry_unavailable = true;
  EXPECT_TRUE(IsRetryable(policy, StatusCode::kUnavailable));
  for (const StatusCode code :
       {StatusCode::kInvalidArgument, StatusCode::kIOError,
        StatusCode::kDeadlineExceeded, StatusCode::kInternal,
        StatusCode::kNotFound})
    EXPECT_FALSE(IsRetryable(policy, code));
}

TEST(RetryPolicyTest, NeverRetriesPastTheDeadline) {
  RetryPolicy policy;
  policy.max_attempts = 10;
  policy.initial_backoff_us = 1000;
  policy.jitter = 0.0;

  // No deadline: retry until attempts run out.
  EXPECT_TRUE(ShouldRetry(policy, 1, StatusCode::kOverloaded, 999999, 0, 0));
  EXPECT_FALSE(ShouldRetry(policy, 10, StatusCode::kOverloaded, 0, 0, 0));

  // Deadline already passed.
  EXPECT_FALSE(
      ShouldRetry(policy, 1, StatusCode::kOverloaded, 5000, 5000, 0));
  // The backoff alone would consume the remaining allowance.
  EXPECT_FALSE(
      ShouldRetry(policy, 1, StatusCode::kOverloaded, 4500, 5000, 0));
  // Enough room left.
  EXPECT_TRUE(ShouldRetry(policy, 1, StatusCode::kOverloaded, 1000, 5000, 0));

  // Non-retryable codes are refused regardless of time.
  EXPECT_FALSE(
      ShouldRetry(policy, 1, StatusCode::kDeadlineExceeded, 0, 0, 0));
}

TEST(RetryBudgetTest, DrainsAndRefillsOnSuccess) {
  RetryBudget budget(/*max_tokens=*/2.0, /*tokens_per_success=*/0.5);
  EXPECT_TRUE(budget.TryAcquire());
  EXPECT_TRUE(budget.TryAcquire());
  EXPECT_FALSE(budget.TryAcquire());  // empty
  budget.RecordSuccess();             // +0.5: still below one token
  EXPECT_FALSE(budget.TryAcquire());
  budget.RecordSuccess();
  EXPECT_TRUE(budget.TryAcquire());  // back to one full token
  // The bucket caps at max_tokens.
  for (int i = 0; i < 100; ++i) budget.RecordSuccess();
  EXPECT_EQ(budget.tokens(), 2.0);
}

#ifndef SAPLA_FAULT_DISABLED

class RetryClientTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SyntheticOptions opt;
    opt.length = 64;
    opt.num_series = 30;
    ds_ = MakeSyntheticDataset(5, opt);
    index_ = std::make_unique<SimilarityIndex>(Method::kSapla, 10,
                                               IndexKind::kRTree);
    ASSERT_TRUE(index_->Build(ds_).ok());
  }

  void TearDown() override { fault::Reset(); }

  ServeOptions FastServeOptions() const {
    ServeOptions opt;
    opt.max_batch = 1;
    opt.max_delay_us = 0;
    return opt;
  }

  Dataset ds_;
  std::unique_ptr<SimilarityIndex> index_;
};

TEST_F(RetryClientTest, RetriesInjectedAdmissionFailureAndSucceeds) {
  QueryService service(*index_, FastServeOptions());
  RetryPolicy policy;
  policy.max_attempts = 3;
  policy.initial_backoff_us = 100;
  RetryingClient client(service, policy);

  // The first TryPush fails like a full queue; the retry goes through.
  fault::Enable(1);
  fault::PointConfig config;
  config.max_triggers = 1;
  fault::Configure("queue/admit", config);

  const std::vector<double>& q = ds_.series[3].values;
  const ServeResponse r = client.Knn(q, 4);
  ASSERT_TRUE(r.status.ok()) << r.status.ToString();
  EXPECT_EQ(r.result.neighbors, index_->Knn(q, 4).neighbors);
  EXPECT_EQ(client.stats().retries.load(), 1u);
  EXPECT_EQ(client.stats().attempts.load(), 2u);
}

TEST_F(RetryClientTest, ExhaustedBudgetStopsRetrying) {
  QueryService service(*index_, FastServeOptions());
  RetryPolicy policy;
  policy.max_attempts = 10;
  policy.initial_backoff_us = 10;
  RetryBudget budget(/*max_tokens=*/1.0, /*tokens_per_success=*/0.0);
  RetryingClient client(service, policy, &budget);

  fault::Enable(1);
  fault::Configure("queue/admit", {});  // every admission fails

  const ServeResponse r = client.Knn(ds_.series[0].values, 3);
  EXPECT_EQ(r.status.code(), StatusCode::kOverloaded);
  // One retry bought by the single token, then the budget says stop.
  EXPECT_EQ(client.stats().retries.load(), 1u);
  EXPECT_EQ(client.stats().budget_denied.load(), 1u);
  EXPECT_EQ(client.stats().attempts.load(), 2u);
}

TEST_F(RetryClientTest, DeadlineStopsRetriesBeforeTheBackoff) {
  QueryService service(*index_, FastServeOptions());
  RetryPolicy policy;
  policy.max_attempts = 10;
  policy.initial_backoff_us = 200'000;  // 200ms: never fits a 5ms deadline
  policy.jitter = 0.0;
  RetryingClient client(service, policy);

  fault::Enable(1);
  fault::Configure("queue/admit", {});  // every admission fails

  const auto start = std::chrono::steady_clock::now();
  const ServeResponse r =
      client.Knn(ds_.series[0].values, 3, /*deadline_us=*/5000);
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_EQ(r.status.code(), StatusCode::kOverloaded);
  EXPECT_EQ(client.stats().retries.load(), 0u);
  EXPECT_EQ(client.stats().deadline_denied.load(), 1u);
  // The loop must not have slept the 200ms backoff.
  EXPECT_LT(std::chrono::duration_cast<std::chrono::milliseconds>(elapsed)
                .count(),
            150);
}

// ---------------------------------------------------------------------------
// Hedged requests. The serve/flush_stall delay point makes the races
// deterministic: a stalled attempt takes tens of milliseconds while an
// unstalled one answers in well under one, so which side wins is forced by
// the fault configuration, not by scheduling luck.

TEST_F(RetryClientTest, SlowFailingPrimaryIsRescuedByTheHedge) {
  QueryService service(*index_, FastServeOptions());
  RetryPolicy policy;
  policy.hedge_delay_us = 2000;  // 2ms, far below the primary's stall
  RetryingClient client(service, policy);

  // The primary's flush stalls 60ms and then fails as a unit; the hedge,
  // launched at 2ms and queued behind it, flushes clean right after. One
  // failure stays below the degradation threshold, so the hedge's answer
  // is the exact one.
  fault::Enable(1);
  fault::PointConfig slow_fail;
  slow_fail.max_triggers = 1;
  slow_fail.delay_us = 60'000;
  fault::Configure("serve/flush", slow_fail);

  const std::vector<double>& q = ds_.series[5].values;
  const ServeResponse r = client.Knn(q, 4);
  ASSERT_TRUE(r.status.ok()) << r.status.ToString();
  EXPECT_EQ(r.result.neighbors, index_->Knn(q, 4).neighbors);
  EXPECT_EQ(client.stats().hedges.load(), 1u);
  EXPECT_EQ(client.stats().hedge_wins.load(), 1u);
  EXPECT_EQ(client.stats().attempts.load(), 2u);  // primary + hedge
  EXPECT_EQ(client.stats().retries.load(), 0u);  // the rescue was not a retry
}

TEST_F(RetryClientTest, FastPrimaryNeverHedges) {
  QueryService service(*index_, FastServeOptions());
  RetryPolicy policy;
  policy.hedge_delay_us = 1'000'000;  // 1s: the answer always beats it
  RetryingClient client(service, policy);

  for (int i = 0; i < 5; ++i) {
    const ServeResponse r = client.Knn(ds_.series[i].values, 3);
    ASSERT_TRUE(r.status.ok());
  }
  EXPECT_EQ(client.stats().hedges.load(), 0u);
  EXPECT_EQ(client.stats().attempts.load(), 5u);
}

TEST_F(RetryClientTest, SlowHedgeLosesToThePrimary) {
  QueryService service(*index_, FastServeOptions());
  RetryPolicy policy;
  policy.hedge_delay_us = 2000;
  RetryingClient client(service, policy);

  // Every flush stalls 20ms. The hedge launches at 2ms but queues behind
  // the primary on the single scheduler thread, so the primary is always
  // ready first (~20ms vs ~40ms) and must be the one returned.
  fault::Enable(1);
  fault::PointConfig stall;
  stall.delay_us = 20'000;
  fault::Configure("serve/flush_stall", stall);

  const std::vector<double>& q = ds_.series[7].values;
  const ServeResponse r = client.Knn(q, 4);
  ASSERT_TRUE(r.status.ok()) << r.status.ToString();
  EXPECT_EQ(r.result.neighbors, index_->Knn(q, 4).neighbors);
  EXPECT_EQ(client.stats().hedges.load(), 1u);
  EXPECT_EQ(client.stats().hedge_wins.load(), 0u);  // primary preferred
}

TEST_F(RetryClientTest, EmptyBudgetDeniesTheHedgeButTheRequestStillAnswers) {
  QueryService service(*index_, FastServeOptions());
  RetryPolicy policy;
  policy.hedge_delay_us = 1000;
  RetryBudget budget(/*max_tokens=*/0.0, /*tokens_per_success=*/0.0);
  RetryingClient client(service, policy, &budget);

  fault::Enable(1);
  fault::PointConfig stall;
  stall.max_triggers = 1;
  stall.delay_us = 20'000;  // slow, not failing
  fault::Configure("serve/flush_stall", stall);

  const std::vector<double>& q = ds_.series[9].values;
  const ServeResponse r = client.Knn(q, 4);
  ASSERT_TRUE(r.status.ok()) << r.status.ToString();
  EXPECT_EQ(r.result.neighbors, index_->Knn(q, 4).neighbors);
  EXPECT_EQ(client.stats().hedges.load(), 0u);
  EXPECT_EQ(client.stats().budget_denied.load(), 1u);
  EXPECT_EQ(client.stats().attempts.load(), 1u);
}

#endif  // SAPLA_FAULT_DISABLED

}  // namespace
}  // namespace sapla
