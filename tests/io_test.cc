// Round-trip and robustness tests for representation / dataset persistence.

#include "ts/io.h"

#include <cmath>
#include <cstdio>

#include <gtest/gtest.h>

#include "core/sapla.h"
#include "reduction/sax.h"
#include "ts/synthetic_archive.h"
#include "ts/ucr_loader.h"

namespace sapla {
namespace {

Dataset SmallDataset() {
  SyntheticOptions opt;
  opt.length = 64;
  opt.num_series = 5;
  return MakeSyntheticDataset(1, opt);
}

void ExpectEqualReps(const Representation& a, const Representation& b) {
  EXPECT_EQ(a.method, b.method);
  EXPECT_EQ(a.n, b.n);
  EXPECT_EQ(a.alphabet, b.alphabet);
  ASSERT_EQ(a.segments.size(), b.segments.size());
  for (size_t i = 0; i < a.segments.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.segments[i].a, b.segments[i].a);
    EXPECT_DOUBLE_EQ(a.segments[i].b, b.segments[i].b);
    EXPECT_EQ(a.segments[i].r, b.segments[i].r);
  }
  EXPECT_EQ(a.coeffs.size(), b.coeffs.size());
  for (size_t i = 0; i < a.coeffs.size(); ++i)
    EXPECT_DOUBLE_EQ(a.coeffs[i], b.coeffs[i]);
  EXPECT_EQ(a.symbols, b.symbols);
}

TEST(Io, RoundTripsEveryMethod) {
  const Dataset ds = SmallDataset();
  std::vector<Representation> reps;
  for (const Method m : AllMethods())
    reps.push_back(MakeReducer(m)->Reduce(ds.series[0].values, 12));

  const char* path = "/tmp/sapla_io_test.rep";
  ASSERT_TRUE(SaveRepresentations(path, reps).ok());
  const auto loaded = LoadRepresentations(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded->size(), reps.size());
  for (size_t i = 0; i < reps.size(); ++i)
    ExpectEqualReps(reps[i], (*loaded)[i]);
  std::remove(path);
}

TEST(Io, RoundTripPreservesReconstructionExactly) {
  const Dataset ds = SmallDataset();
  const Representation rep =
      SaplaReducer().Reduce(ds.series[2].values, 18);
  const auto parsed = ParseRepresentations(SerializeRepresentation(rep));
  ASSERT_TRUE(parsed.ok());
  const std::vector<double> a = rep.Reconstruct();
  const std::vector<double> b = (*parsed)[0].Reconstruct();
  for (size_t t = 0; t < a.size(); ++t) EXPECT_DOUBLE_EQ(a[t], b[t]);
}

TEST(Io, RejectsCorruptInput) {
  EXPECT_FALSE(ParseRepresentations("garbage").ok());
  EXPECT_FALSE(ParseRepresentations("SAPLA-REP v1\nmethod NOPE n 5\nend\n")
                   .ok());
  EXPECT_FALSE(
      ParseRepresentations("SAPLA-REP v1\nmethod SAPLA n 10\nseg 1 2 3\n")
          .ok());  // missing end + bad coverage
  EXPECT_FALSE(LoadRepresentations("/nonexistent/file.rep").ok());
}

TEST(Io, DatasetTsvRoundTripsThroughUcrLoader) {
  const Dataset ds = SmallDataset();
  const char* path = "/tmp/sapla_io_test.tsv";
  ASSERT_TRUE(SaveDatasetTsv(path, ds).ok());
  UcrLoadOptions opt;
  opt.target_length = 0;
  opt.z_normalize = false;
  opt.max_series = 0;
  const auto loaded = LoadUcrDataset(path, opt);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded->size(), ds.size());
  for (size_t i = 0; i < ds.size(); ++i) {
    EXPECT_EQ(loaded->series[i].label, ds.series[i].label);
    ASSERT_EQ(loaded->series[i].size(), ds.series[i].size());
    for (size_t t = 0; t < ds.length(); ++t)
      EXPECT_DOUBLE_EQ(loaded->series[i].values[t], ds.series[i].values[t]);
  }
  std::remove(path);
}

TEST(Io, SerializeParseSerializeIsByteIdentical) {
  // save -> load -> save must reproduce the exact bytes: the serializer
  // emits shortest-round-trip doubles (std::to_chars) and the parser reads
  // them back exactly (std::from_chars), with no locale dependence. The
  // hand-built representation exercises the edge values an ostream-based
  // writer gets wrong: negative zero, denormals, values needing all 17
  // digits, and huge/tiny magnitudes.
  Representation rep;
  rep.method = Method::kSapla;
  rep.n = 100;
  rep.segments = {
      {-0.0, 5e-324, 9},                      // -0 and the smallest denormal
      {1e-310, -1e-310, 19},                  // subnormal pair
      {0.1, 0.2, 49},                         // classic non-terminating
      {1.7976931348623157e308, 2.2250738585072014e-308, 79},  // extremes
      {-1.0 / 3.0, 123456789.123456789, 99},  // 17-digit survivors
  };
  const std::string once = SerializeRepresentation(rep);
  const auto parsed = ParseRepresentations(once);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const std::string twice = SerializeRepresentation((*parsed)[0]);
  EXPECT_EQ(once, twice);
  // Bitwise equality, not just EXPECT_DOUBLE_EQ: -0.0 must stay negative.
  for (size_t i = 0; i < rep.segments.size(); ++i) {
    EXPECT_EQ(std::signbit((*parsed)[0].segments[i].a),
              std::signbit(rep.segments[i].a));
    EXPECT_EQ((*parsed)[0].segments[i].a, rep.segments[i].a);
    EXPECT_EQ((*parsed)[0].segments[i].b, rep.segments[i].b);
  }
}

TEST(Io, FileRoundTripIsByteIdentical) {
  const Dataset ds = SmallDataset();
  std::vector<Representation> reps;
  for (size_t i = 0; i < ds.size(); ++i)
    reps.push_back(SaplaReducer().Reduce(ds.series[i].values, 12));
  std::string once;
  for (const Representation& rep : reps) once += SerializeRepresentation(rep);
  const auto loaded = ParseRepresentations(once);
  ASSERT_TRUE(loaded.ok());
  std::string twice;
  for (const Representation& rep : *loaded)
    twice += SerializeRepresentation(rep);
  EXPECT_EQ(once, twice);
}

TEST(Io, SaxRepresentationKeepsAlphabetAndSymbols) {
  const Dataset ds = SmallDataset();
  const Representation rep = SaxReducer(16).Reduce(ds.series[1].values, 12);
  const auto parsed = ParseRepresentations(SerializeRepresentation(rep));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ((*parsed)[0].alphabet, 16u);
  EXPECT_EQ((*parsed)[0].symbols, rep.symbols);
}

}  // namespace
}  // namespace sapla
