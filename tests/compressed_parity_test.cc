// Compressed-corpus pruning parity: an index serving a QUANTIZED store
// (directly, via a lossy-codec snapshot, or cold/mmap-backed) must return
// id- and distance-identical kNN and range answers to the full-precision
// index, for every Method x IndexKind, serially and batched at 1/2/8
// threads. This is the GEMINI no-false-dismissal contract under
// compression: the search layer subtracts the stored lower-bound slack
// before pruning (so bounds only loosen) and exact distances are always
// refined from the raw series — pruning counters may move, answers may
// not.

#include <cstdio>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/sapla.h"
#include "reduction/column_codec.h"
#include "reduction/representation_store.h"
#include "search/knn.h"
#include "search/snapshot.h"
#include "ts/synthetic_archive.h"
#include "util/rng.h"

namespace sapla {
namespace {

constexpr size_t kBudget = 12;
constexpr size_t kK = 5;
constexpr double kRadius = 8.0;
constexpr size_t kThreadCounts[] = {1, 2, 8};

Dataset SmallDataset() {
  SyntheticOptions opt;
  opt.length = 128;
  opt.num_series = 70;
  return MakeSyntheticDataset(31, opt);
}

std::vector<std::vector<double>> SomeQueries(const Dataset& ds) {
  std::vector<std::vector<double>> queries;
  Rng rng(606);
  for (const size_t qi : {2u, 11u, 29u, 44u, 63u}) {
    std::vector<double> q = ds.series[qi].values;
    for (double& v : q) v += rng.Gaussian(0.0, 0.05);
    queries.push_back(std::move(q));
  }
  return queries;
}

StoreCodecOptions CoarseCodec() {
  StoreCodecOptions codec;
  codec.ab_step = 2e-2;  // coarse enough to move real pruning decisions
  codec.coeff_step = 2e-2;
  return codec;
}

void ExpectSameAnswer(const KnnResult& got, const KnnResult& want,
                      const std::string& label) {
  ASSERT_EQ(got.neighbors.size(), want.neighbors.size()) << label;
  for (size_t i = 0; i < want.neighbors.size(); ++i) {
    EXPECT_EQ(got.neighbors[i].second, want.neighbors[i].second)
        << label << " rank " << i;
    // Bitwise, not approximate: refinement recomputes the true distance
    // from the raw series on both sides.
    EXPECT_EQ(got.neighbors[i].first, want.neighbors[i].first)
        << label << " rank " << i;
  }
}

struct CompressedCase {
  Method method;
  IndexKind kind;
};

std::string CaseName(const ::testing::TestParamInfo<CompressedCase>& info) {
  return MethodName(info.param.method) + std::string("_") +
         IndexKindName(info.param.kind);
}

class CompressedSweep : public ::testing::TestWithParam<CompressedCase> {
 protected:
  void SetUp() override {
    ds_ = SmallDataset();
    queries_ = SomeQueries(ds_);
    // dbch_sound_bounds keeps the DBCH traversal exact, which the
    // id-identity assertions below require.
    options_.dbch_sound_bounds = true;

    raw_ = std::make_unique<SimilarityIndex>(
        GetParam().method, kBudget, GetParam().kind, options_);
    ASSERT_TRUE(raw_->Build(ds_).ok());

    auto quantized_store = QuantizeStore(raw_->store(), CoarseCodec());
    ASSERT_TRUE(quantized_store.ok())
        << quantized_store.status().ToString();
    quantized_ = std::make_unique<SimilarityIndex>(
        GetParam().method, kBudget, GetParam().kind, options_);
    ASSERT_TRUE(
        quantized_
            ->RestoreFromStore(ds_, std::move(quantized_store).ValueOrDie())
            .ok());
    ASSERT_TRUE(quantized_->store().quantized());
  }

  Dataset ds_;
  std::vector<std::vector<double>> queries_;
  SimilarityIndex::Options options_;
  std::unique_ptr<SimilarityIndex> raw_;
  std::unique_ptr<SimilarityIndex> quantized_;
};

TEST_P(CompressedSweep, KnnAnswersAreIdentical) {
  for (size_t qi = 0; qi < queries_.size(); ++qi) {
    const KnnResult want = raw_->Knn(queries_[qi], kK);
    const KnnResult got = quantized_->Knn(queries_[qi], kK);
    ExpectSameAnswer(got, want, "knn query " + std::to_string(qi));
    // Pruning-counter sanity: the quantized filter still prunes something
    // and never measures more than the corpus.
    EXPECT_GE(got.num_measured, kK);
    EXPECT_LE(got.num_measured, ds_.size());
  }
}

TEST_P(CompressedSweep, RangeAnswersAreIdenticalAndPruningOnlyLoosens) {
  for (size_t qi = 0; qi < queries_.size(); ++qi) {
    const KnnResult want = raw_->RangeSearch(queries_[qi], kRadius);
    const KnnResult got = quantized_->RangeSearch(queries_[qi], kRadius);
    ExpectSameAnswer(got, want, "range query " + std::to_string(qi));
    // Slack subtraction can only loosen the filter, so the compressed
    // index refines a superset of the full-precision candidates.
    EXPECT_GE(got.num_measured, want.num_measured)
        << "range query " << qi;
  }
}

TEST_P(CompressedSweep, BatchedAnswersAreIdenticalAtEveryThreadCount) {
  for (const size_t threads : kThreadCounts) {
    SimilarityIndex::BatchOptions batch;
    batch.num_threads = threads;
    const std::vector<KnnResult> want = raw_->KnnBatch(queries_, kK, batch);
    const std::vector<KnnResult> got =
        quantized_->KnnBatch(queries_, kK, batch);
    ASSERT_EQ(got.size(), want.size());
    for (size_t qi = 0; qi < queries_.size(); ++qi)
      ExpectSameAnswer(got[qi], want[qi],
                       std::to_string(threads) + " threads, query " +
                           std::to_string(qi));
    const std::vector<KnnResult> ranges_want =
        raw_->RangeSearchBatch(queries_, kRadius, batch);
    const std::vector<KnnResult> ranges_got =
        quantized_->RangeSearchBatch(queries_, kRadius, batch);
    for (size_t qi = 0; qi < queries_.size(); ++qi)
      ExpectSameAnswer(ranges_got[qi], ranges_want[qi],
                       std::to_string(threads) + " threads, range query " +
                           std::to_string(qi));
  }
}

TEST_P(CompressedSweep, LossySnapshotRoundTripServesIdenticalAnswers) {
  const std::string path = "/tmp/sapla_compressed_parity_" +
                           std::string(MethodName(GetParam().method)) + "_" +
                           IndexKindName(GetParam().kind) + ".snp";
  SnapshotWriteOptions write;
  write.codec = CoarseCodec();
  ASSERT_TRUE(SaveIndexSnapshot(path, *raw_, write).ok());

  SimilarityIndex loaded(GetParam().method, kBudget, GetParam().kind,
                         options_);
  ASSERT_TRUE(LoadIndexSnapshot(path, ds_, &loaded).ok());
  EXPECT_TRUE(loaded.store().quantized());

  for (size_t qi = 0; qi < queries_.size(); ++qi) {
    ExpectSameAnswer(loaded.Knn(queries_[qi], kK),
                     raw_->Knn(queries_[qi], kK),
                     "snapshot knn query " + std::to_string(qi));
    ExpectSameAnswer(loaded.RangeSearch(queries_[qi], kRadius),
                     raw_->RangeSearch(queries_[qi], kRadius),
                     "snapshot range query " + std::to_string(qi));
  }
  std::remove(path.c_str());
}

std::vector<CompressedCase> AllCases() {
  std::vector<CompressedCase> cases;
  for (const Method method : AllMethods())
    for (const IndexKind kind : {IndexKind::kRTree, IndexKind::kDbchTree})
      cases.push_back({method, kind});
  return cases;
}

INSTANTIATE_TEST_SUITE_P(AllMethodsAndKinds, CompressedSweep,
                         ::testing::ValuesIn(AllCases()), CaseName);

TEST(ColdSnapshotParity, ColdQuantizedShardServesIdenticalAnswers) {
  // The full tier stack at once: lossy codec + v4 section + cold (mmap)
  // load. Answers stay id- and distance-identical while the steady-state
  // resident bytes stay a fraction of the mapped archive.
  const Dataset ds = SmallDataset();
  const auto queries = SomeQueries(ds);

  SimilarityIndex raw(Method::kSapla, kBudget, IndexKind::kRTree);
  ASSERT_TRUE(raw.Build(ds).ok());

  const std::string path = "/tmp/sapla_compressed_parity_cold.snp";
  SnapshotWriteOptions write;
  write.codec = CoarseCodec();
  write.store_format = StoreFormat::kV4;
  ASSERT_TRUE(SaveIndexSnapshot(path, raw, write).ok());

  SimilarityIndex cold(Method::kSapla, kBudget, IndexKind::kRTree);
  SnapshotLoadOptions load;
  load.cold_store = true;
  load.cold_cache_bytes = 1;  // maximum eviction pressure
  ASSERT_TRUE(LoadIndexSnapshot(path, ds, &cold, load).ok());
  EXPECT_TRUE(cold.store().cold());
  EXPECT_TRUE(cold.store().quantized());

  for (size_t qi = 0; qi < queries.size(); ++qi) {
    ExpectSameAnswer(cold.Knn(queries[qi], kK), raw.Knn(queries[qi], kK),
                     "cold knn query " + std::to_string(qi));
    ExpectSameAnswer(cold.RangeSearch(queries[qi], kRadius),
                     raw.RangeSearch(queries[qi], kRadius),
                     "cold range query " + std::to_string(qi));
  }

  const StoreFootprint fp = cold.footprint();
  EXPECT_GT(fp.mapped_bytes, 0u);
  EXPECT_GT(fp.frame_misses, 0u);
  std::remove(path.c_str());
}

TEST(ColdSnapshotParity, UnquantizedV4ColdLoadAlsoMatches) {
  // cold_store without a lossy codec: forcing the v4 layout alone is
  // enough to mmap-serve a full-precision corpus.
  const Dataset ds = SmallDataset();
  const auto queries = SomeQueries(ds);

  SimilarityIndex raw(Method::kCheby, kBudget, IndexKind::kRTree);
  ASSERT_TRUE(raw.Build(ds).ok());

  const std::string path = "/tmp/sapla_compressed_parity_cold_raw.snp";
  SnapshotWriteOptions write;
  write.store_format = StoreFormat::kV4;
  ASSERT_TRUE(SaveIndexSnapshot(path, raw, write).ok());

  SimilarityIndex cold(Method::kCheby, kBudget, IndexKind::kRTree);
  SnapshotLoadOptions load;
  load.cold_store = true;
  ASSERT_TRUE(LoadIndexSnapshot(path, ds, &cold, load).ok());
  EXPECT_TRUE(cold.store().cold());
  EXPECT_FALSE(cold.store().quantized());

  for (size_t qi = 0; qi < queries.size(); ++qi) {
    const KnnResult want = raw.Knn(queries[qi], kK);
    const KnnResult got = cold.Knn(queries[qi], kK);
    ExpectSameAnswer(got, want, "cold raw knn query " + std::to_string(qi));
    // Same store values -> same filter -> bit-identical counters too.
    EXPECT_EQ(got.num_measured, want.num_measured);
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace sapla
