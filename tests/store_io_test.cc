// v2 binary columnar persistence: round-trip equality, byte-identical
// re-serialization, v1 -> v2 migration, and corrupt-input rejection.

#include <cstdio>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/sapla.h"
#include "reduction/representation_store.h"
#include "ts/io.h"
#include "ts/synthetic_archive.h"

namespace sapla {
namespace {

Dataset SmallDataset() {
  SyntheticOptions opt;
  opt.length = 96;
  opt.num_series = 10;
  return MakeSyntheticDataset(9, opt);
}

RepresentationStore MakeStore(Method method, size_t m = 12) {
  const Dataset ds = SmallDataset();
  const auto reducer = MakeReducer(method);
  RepresentationStore store;
  for (const TimeSeries& ts : ds.series)
    reducer->ReduceInto(ts.values, m, &store);
  return store;
}

TEST(StoreIo, RoundTripsEveryMethod) {
  for (const Method method : AllMethods()) {
    const RepresentationStore store = MakeStore(method);
    const std::string data = SerializeRepresentationStore(store);
    const auto loaded = ParseRepresentationStore(data);
    ASSERT_TRUE(loaded.ok())
        << MethodName(method) << ": " << loaded.status().ToString();
    EXPECT_TRUE(*loaded == store) << MethodName(method);
  }
}

TEST(StoreIo, ReserializationIsByteIdentical) {
  for (const Method method : AllMethods()) {
    const RepresentationStore store = MakeStore(method);
    const std::string once = SerializeRepresentationStore(store);
    const auto loaded = ParseRepresentationStore(once);
    ASSERT_TRUE(loaded.ok());
    EXPECT_EQ(SerializeRepresentationStore(*loaded), once)
        << MethodName(method);
  }
}

TEST(StoreIo, FileRoundTrip) {
  const RepresentationStore store = MakeStore(Method::kSapla);
  const char* path = "/tmp/sapla_store_io_test.bin";
  ASSERT_TRUE(SaveRepresentationStore(path, store).ok());
  const auto loaded = LoadRepresentationStore(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_TRUE(*loaded == store);
  std::remove(path);
}

TEST(StoreIo, MigratesV1TextArchives) {
  // A homogeneous v1 text archive loads as a store transparently — the
  // migration path for pre-columnar artifacts.
  const RepresentationStore store = MakeStore(Method::kSapla);
  std::string v1_text;
  for (size_t i = 0; i < store.size(); ++i)
    v1_text += SerializeRepresentation(store.ToRepresentation(i));
  const auto migrated = ParseRepresentationStore(v1_text);
  ASSERT_TRUE(migrated.ok()) << migrated.status().ToString();
  EXPECT_TRUE(*migrated == store);
}

TEST(StoreIo, RejectsHeterogeneousV1Archives) {
  const Dataset ds = SmallDataset();
  std::string v1_text;
  v1_text += SerializeRepresentation(
      MakeReducer(Method::kSapla)->Reduce(ds.series[0].values, 12));
  v1_text += SerializeRepresentation(
      MakeReducer(Method::kPaa)->Reduce(ds.series[1].values, 12));
  EXPECT_FALSE(ParseRepresentationStore(v1_text).ok());
}

TEST(StoreIo, LoadedStoreGetsFreshIdentity) {
  // Persistence captures content, not identity: two loads of the same
  // bytes are equal stores with distinct ids (the serve cache must never
  // alias them with a live corpus).
  const RepresentationStore store = MakeStore(Method::kSapla);
  const std::string data = SerializeRepresentationStore(store);
  const auto a = ParseRepresentationStore(data);
  const auto b = ParseRepresentationStore(data);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_TRUE(*a == *b);
  EXPECT_NE(a->id(), b->id());
  EXPECT_NE(a->id(), store.id());
}

TEST(StoreIo, RejectsCorruptInput) {
  const RepresentationStore store = MakeStore(Method::kSapla);
  const std::string good = SerializeRepresentationStore(store);

  EXPECT_FALSE(ParseRepresentationStore("").ok());
  EXPECT_FALSE(ParseRepresentationStore("garbage bytes").ok());
  // Truncations at every section boundary-ish length.
  for (const size_t len : {size_t{4}, size_t{8}, size_t{16}, size_t{40},
                           good.size() / 2, good.size() - 1}) {
    EXPECT_FALSE(ParseRepresentationStore(good.substr(0, len)).ok())
        << "truncated to " << len;
  }
  // Trailing junk.
  EXPECT_FALSE(ParseRepresentationStore(good + "x").ok());
  // Unsupported version.
  std::string bad_version = good;
  bad_version[8] = 99;
  EXPECT_FALSE(ParseRepresentationStore(bad_version).ok());
  // Since v3 every section carries a CRC32C, so a byte flip anywhere in the
  // body is detected outright — no silent different-but-valid loads.
  std::string flipped = good;
  flipped[flipped.size() / 2] ^= 0x5A;
  const auto mutated = ParseRepresentationStore(flipped);
  ASSERT_FALSE(mutated.ok());
  EXPECT_NE(mutated.status().message().find("checksum"), std::string::npos)
      << mutated.status().ToString();
}

TEST(StoreIo, LegacyV2FilesWithoutChecksumsStillLoad) {
  // Old archives written before checksums existed must keep loading. The
  // v2 writer is re-created here byte for byte: same sections as v3 but
  // no flags/CRC/reserved words, with padding aligned to v2's own offsets
  // (the body cannot be lifted from a v3 file — the 20-byte shorter
  // prefix changes where the 8-byte alignment pads fall).
  const RepresentationStore store = MakeStore(Method::kSapla);
  std::string v2 = "SAPLACOL";
  const auto put = [&v2](const auto& v) {
    v2.append(reinterpret_cast<const char*>(&v), sizeof(v));
  };
  const auto put_array = [&v2](const auto& vec) {
    if (!vec.empty())
      v2.append(reinterpret_cast<const char*>(vec.data()),
                vec.size() * sizeof(vec[0]));
  };
  const auto pad8 = [&v2] {
    while (v2.size() % 8 != 0) v2.push_back('\0');
  };
  put(uint32_t{2});
  const std::string name = MethodName(store.method());
  put(static_cast<uint32_t>(name.size()));
  v2 += name;
  pad8();
  put(uint64_t{store.series_length()});
  put(uint64_t{store.alphabet()});
  put(uint64_t{store.size()});
  put(uint64_t{store.a_column().size()});
  put(uint64_t{store.coeff_column().size()});
  put(uint64_t{store.symbol_column().size()});
  put_array(store.seg_offsets());
  put_array(store.coeff_offsets());
  put_array(store.symbol_offsets());
  put_array(store.a_column());
  put_array(store.b_column());
  put_array(store.r_column());
  pad8();
  put_array(store.coeff_column());
  put_array(store.symbol_column());
  pad8();

  const auto loaded = ParseRepresentationStore(v2);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_TRUE(*loaded == store);
}

// Seeded corruption sweep: >1000 single-bit flips and truncations over a v3
// binary archive and a v1 text archive. The invariant is the robustness
// contract of the readers — no mutation may crash, every CRC-covered flip
// is rejected with a descriptive status, and nothing ever loads OK as a
// store that differs from the original.
TEST(StoreIo, SurvivesThousandsOfSeededMutations) {
  const RepresentationStore store = MakeStore(Method::kSapla);
  const std::string v3 = SerializeRepresentationStore(store);
  ASSERT_GT(v3.size(), 64u);

  uint64_t state = 0x2545F4914F6CDD1Dull;  // fixed seed: replayable run
  auto next = [&state]() {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state;
  };

  size_t mutations = 0;
  auto check_flip = [&](size_t byte, int bit) {
    std::string bad = v3;
    bad[byte] ^= static_cast<char>(1u << bit);
    const auto loaded = ParseRepresentationStore(bad);
    ++mutations;
    // Bytes 28..31 are the reserved word — the only bytes no check covers;
    // flipping them must load the identical store. Everything else (magic,
    // version, flags, the CRC words themselves, and all CRC-covered body
    // bytes) must be rejected.
    if (byte >= 28 && byte < 32) {
      ASSERT_TRUE(loaded.ok()) << "reserved-word flip at byte " << byte
                               << " rejected: " << loaded.status().ToString();
      EXPECT_TRUE(*loaded == store);
    } else {
      ASSERT_FALSE(loaded.ok())
          << "bit flip at byte " << byte << " bit " << bit
          << " loaded successfully despite section checksums";
      EXPECT_FALSE(loaded.status().message().empty());
    }
  };

  // Exhaustive over the header/CRC machinery, random across the body.
  for (size_t byte = 0; byte < 64; ++byte)
    for (int bit = 0; bit < 8; ++bit) check_flip(byte, bit);
  for (int round = 0; round < 500; ++round)
    check_flip(next() % v3.size(), static_cast<int>(next() % 8));

  // Truncations: every proper prefix must be rejected, never crash.
  for (size_t len = 0; len < 48; ++len) {
    EXPECT_FALSE(ParseRepresentationStore(v3.substr(0, len)).ok())
        << "truncated to " << len;
    ++mutations;
  }
  for (int round = 0; round < 100; ++round) {
    const size_t len = next() % v3.size();
    EXPECT_FALSE(ParseRepresentationStore(v3.substr(0, len)).ok())
        << "truncated to " << len;
    ++mutations;
  }

  // v1 text has no checksums, so a flip may still parse (possibly to
  // different values) — the contract there is "never crash, fail with a
  // message"; nothing should load as an unequal store claiming equality.
  std::string v1_text;
  for (size_t i = 0; i < store.size(); ++i)
    v1_text += SerializeRepresentation(store.ToRepresentation(i));
  for (int round = 0; round < 300; ++round) {
    std::string bad = v1_text;
    bad[next() % bad.size()] ^= static_cast<char>(1u << (next() % 8));
    const auto loaded = ParseRepresentationStore(bad);
    if (!loaded.ok()) {
      EXPECT_FALSE(loaded.status().message().empty());
    }
    ++mutations;
  }

  EXPECT_GE(mutations, 1000u);
}

TEST(StoreIo, EmptyStoreRoundTrips) {
  const RepresentationStore empty;
  const std::string data = SerializeRepresentationStore(empty);
  const auto loaded = ParseRepresentationStore(data);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_TRUE(loaded->empty());
}

}  // namespace
}  // namespace sapla
