// v2 binary columnar persistence: round-trip equality, byte-identical
// re-serialization, v1 -> v2 migration, and corrupt-input rejection.

#include <cstdio>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/sapla.h"
#include "reduction/representation_store.h"
#include "ts/io.h"
#include "ts/synthetic_archive.h"

namespace sapla {
namespace {

Dataset SmallDataset() {
  SyntheticOptions opt;
  opt.length = 96;
  opt.num_series = 10;
  return MakeSyntheticDataset(9, opt);
}

RepresentationStore MakeStore(Method method, size_t m = 12) {
  const Dataset ds = SmallDataset();
  const auto reducer = MakeReducer(method);
  RepresentationStore store;
  for (const TimeSeries& ts : ds.series)
    reducer->ReduceInto(ts.values, m, &store);
  return store;
}

TEST(StoreIo, RoundTripsEveryMethod) {
  for (const Method method : AllMethods()) {
    const RepresentationStore store = MakeStore(method);
    const std::string data = SerializeRepresentationStore(store);
    const auto loaded = ParseRepresentationStore(data);
    ASSERT_TRUE(loaded.ok())
        << MethodName(method) << ": " << loaded.status().ToString();
    EXPECT_TRUE(*loaded == store) << MethodName(method);
  }
}

TEST(StoreIo, ReserializationIsByteIdentical) {
  for (const Method method : AllMethods()) {
    const RepresentationStore store = MakeStore(method);
    const std::string once = SerializeRepresentationStore(store);
    const auto loaded = ParseRepresentationStore(once);
    ASSERT_TRUE(loaded.ok());
    EXPECT_EQ(SerializeRepresentationStore(*loaded), once)
        << MethodName(method);
  }
}

TEST(StoreIo, FileRoundTrip) {
  const RepresentationStore store = MakeStore(Method::kSapla);
  const char* path = "/tmp/sapla_store_io_test.bin";
  ASSERT_TRUE(SaveRepresentationStore(path, store).ok());
  const auto loaded = LoadRepresentationStore(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_TRUE(*loaded == store);
  std::remove(path);
}

TEST(StoreIo, MigratesV1TextArchives) {
  // A homogeneous v1 text archive loads as a store transparently — the
  // migration path for pre-columnar artifacts.
  const RepresentationStore store = MakeStore(Method::kSapla);
  std::string v1_text;
  for (size_t i = 0; i < store.size(); ++i)
    v1_text += SerializeRepresentation(store.ToRepresentation(i));
  const auto migrated = ParseRepresentationStore(v1_text);
  ASSERT_TRUE(migrated.ok()) << migrated.status().ToString();
  EXPECT_TRUE(*migrated == store);
}

TEST(StoreIo, RejectsHeterogeneousV1Archives) {
  const Dataset ds = SmallDataset();
  std::string v1_text;
  v1_text += SerializeRepresentation(
      MakeReducer(Method::kSapla)->Reduce(ds.series[0].values, 12));
  v1_text += SerializeRepresentation(
      MakeReducer(Method::kPaa)->Reduce(ds.series[1].values, 12));
  EXPECT_FALSE(ParseRepresentationStore(v1_text).ok());
}

TEST(StoreIo, LoadedStoreGetsFreshIdentity) {
  // Persistence captures content, not identity: two loads of the same
  // bytes are equal stores with distinct ids (the serve cache must never
  // alias them with a live corpus).
  const RepresentationStore store = MakeStore(Method::kSapla);
  const std::string data = SerializeRepresentationStore(store);
  const auto a = ParseRepresentationStore(data);
  const auto b = ParseRepresentationStore(data);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_TRUE(*a == *b);
  EXPECT_NE(a->id(), b->id());
  EXPECT_NE(a->id(), store.id());
}

TEST(StoreIo, RejectsCorruptInput) {
  const RepresentationStore store = MakeStore(Method::kSapla);
  const std::string good = SerializeRepresentationStore(store);

  EXPECT_FALSE(ParseRepresentationStore("").ok());
  EXPECT_FALSE(ParseRepresentationStore("garbage bytes").ok());
  // Truncations at every section boundary-ish length.
  for (const size_t len : {size_t{4}, size_t{8}, size_t{16}, size_t{40},
                           good.size() / 2, good.size() - 1}) {
    EXPECT_FALSE(ParseRepresentationStore(good.substr(0, len)).ok())
        << "truncated to " << len;
  }
  // Trailing junk.
  EXPECT_FALSE(ParseRepresentationStore(good + "x").ok());
  // Unsupported version.
  std::string bad_version = good;
  bad_version[8] = 99;
  EXPECT_FALSE(ParseRepresentationStore(bad_version).ok());
  // Structural corruption caught by FromColumns: break an offset table
  // entry (bytes are little-endian u64s right after the fixed header).
  std::string bad_offsets = good;
  // Find the first seg_offsets entry: header is 8 (magic) + 4 (version) +
  // 4 (name len) + padded name + 48 (six u64 fields). Corrupt deep inside
  // the offset-table region instead of computing the exact offset.
  bad_offsets[bad_offsets.size() / 2] ^= 0x5A;
  // Either parse fails or content differs from the original store; it must
  // never silently load as the same store while claiming success with the
  // same columns. (Flipping a column byte yields different-but-valid data,
  // which is fine — persistence has checks, not checksums.)
  const auto mutated = ParseRepresentationStore(bad_offsets);
  if (mutated.ok()) {
    EXPECT_FALSE(*mutated == store);
  }
}

TEST(StoreIo, EmptyStoreRoundTrips) {
  const RepresentationStore empty;
  const std::string data = SerializeRepresentationStore(empty);
  const auto loaded = ParseRepresentationStore(data);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_TRUE(loaded->empty());
}

}  // namespace
}  // namespace sapla
