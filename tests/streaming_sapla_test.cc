// Tests for the streaming SAPLA extension: structure, budget, quality and
// agreement with the batch pipeline's statistics.

#include "core/streaming_sapla.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "core/sapla.h"
#include "geom/line_fit.h"
#include "ts/synthetic_archive.h"
#include "util/rng.h"

namespace sapla {
namespace {

std::vector<double> RandomWalk(uint64_t seed, size_t n) {
  Rng rng(seed);
  std::vector<double> v(n);
  double x = 0.0;
  for (auto& p : v) {
    x += rng.Gaussian();
    p = x;
  }
  return v;
}

TEST(StreamingSapla, EmptyAndTinyStreams) {
  StreamingSapla stream(4);
  EXPECT_EQ(stream.size(), 0u);
  EXPECT_EQ(stream.Snapshot().segments.size(), 0u);

  stream.Append(1.0);
  EXPECT_EQ(stream.size(), 1u);
  Representation rep = stream.Snapshot();
  ASSERT_EQ(rep.segments.size(), 1u);
  EXPECT_DOUBLE_EQ(rep.segments[0].b, 1.0);

  stream.Append(3.0);
  rep = stream.Snapshot();
  ASSERT_EQ(rep.segments.size(), 1u);
  EXPECT_DOUBLE_EQ(rep.segments[0].a, 2.0);
  EXPECT_DOUBLE_EQ(rep.segments[0].b, 1.0);
}

TEST(StreamingSapla, RespectsSegmentBudget) {
  const std::vector<double> v = RandomWalk(1, 1000);
  StreamingSapla stream(8);
  for (const double x : v) {
    stream.Append(x);
    EXPECT_LE(stream.Snapshot().segments.size(), 8u);
  }
  EXPECT_EQ(stream.size(), v.size());
}

TEST(StreamingSapla, SnapshotCoversStreamExactly) {
  const std::vector<double> v = RandomWalk(2, 500);
  StreamingSapla stream(6);
  for (const double x : v) stream.Append(x);
  const Representation rep = stream.Snapshot();
  EXPECT_EQ(rep.n, v.size());
  EXPECT_EQ(rep.segments.back().r, v.size() - 1);
  size_t start = 0;
  for (const auto& seg : rep.segments) {
    EXPECT_LE(start, seg.r);
    start = seg.r + 1;
  }
}

TEST(StreamingSapla, SegmentsAreLeastSquaresFitsOfTheirRanges) {
  // The sufficient-statistics bookkeeping must produce exactly the LS fit
  // of the covered raw range — checked against an offline refit.
  const std::vector<double> v = RandomWalk(3, 300);
  StreamingSapla stream(5);
  for (const double x : v) stream.Append(x);
  const Representation rep = stream.Snapshot();
  PrefixFitter fitter(v);
  for (size_t i = 0; i < rep.num_segments(); ++i) {
    const Line line = fitter.Fit(rep.segment_start(i), rep.segments[i].r);
    EXPECT_NEAR(rep.segments[i].a, line.a, 1e-7) << i;
    EXPECT_NEAR(rep.segments[i].b, line.b, 1e-7) << i;
  }
}

TEST(StreamingSapla, PerfectOnPiecewiseLinearStream) {
  std::vector<double> v;
  for (int t = 0; t < 50; ++t) v.push_back(0.5 * t);
  for (int t = 0; t < 50; ++t) v.push_back(25.0 - 2.0 * t);
  StreamingSapla stream(4);
  for (const double x : v) stream.Append(x);
  const Representation rep = stream.Snapshot();
  EXPECT_NEAR(rep.SumMaxDeviation(v), 0.0, 1e-7);
}

TEST(StreamingSapla, QualityWithinFactorOfBatch) {
  // Streaming loses the endpoint-movement phase; it should still land in
  // the same quality regime as batch SAPLA.
  double stream_total = 0.0, batch_total = 0.0;
  for (size_t id = 0; id < 6; ++id) {
    SyntheticOptions opt;
    opt.length = 256;
    opt.num_series = 4;
    const Dataset ds = MakeSyntheticDataset(id, opt);
    for (const TimeSeries& ts : ds.series) {
      StreamingSapla stream(8);
      for (const double x : ts.values) stream.Append(x);
      stream_total += stream.Snapshot().SumMaxDeviation(ts.values);
      batch_total += SaplaReducer()
                         .ReduceToSegments(ts.values, 8)
                         .SumMaxDeviation(ts.values);
    }
  }
  EXPECT_GE(stream_total, batch_total * 0.8);  // batch should win...
  EXPECT_LE(stream_total, batch_total * 3.0);  // ...but not by miles
}

TEST(StreamingSapla, DeterministicGivenSameStream) {
  const std::vector<double> v = RandomWalk(4, 400);
  StreamingSapla a(6), b(6);
  for (const double x : v) {
    a.Append(x);
    b.Append(x);
  }
  const Representation ra = a.Snapshot(), rb = b.Snapshot();
  ASSERT_EQ(ra.segments.size(), rb.segments.size());
  for (size_t i = 0; i < ra.segments.size(); ++i)
    EXPECT_EQ(ra.segments[i].r, rb.segments[i].r);
}

TEST(StreamingSapla, TrailingPartialSegmentIsSealedAsItsOwnLsFit) {
  // A stream length that leaves the last segment partially filled when the
  // snapshot "seals" it: the trailing points must still be covered, and
  // their segment must be exactly the least-squares fit of that suffix —
  // the ingest memtable relies on this when it reduces arrivals online.
  const std::vector<double> v = RandomWalk(9, 257);
  StreamingSapla stream(7);
  for (const double x : v) stream.Append(x);
  const Representation rep = stream.Snapshot();
  EXPECT_EQ(rep.n, v.size());
  ASSERT_FALSE(rep.segments.empty());
  EXPECT_EQ(rep.segments.back().r, v.size() - 1);
  PrefixFitter fitter(v);
  const size_t last = rep.num_segments() - 1;
  const Line line = fitter.Fit(rep.segment_start(last), v.size() - 1);
  EXPECT_NEAR(rep.segments[last].a, line.a, 1e-7);
  EXPECT_NEAR(rep.segments[last].b, line.b, 1e-7);

  // Sealing mid-stream (snapshot, keep appending, snapshot again) must
  // cover exactly the points seen so far each time.
  StreamingSapla mid(7);
  for (size_t i = 0; i < 130; ++i) mid.Append(v[i]);
  const Representation early = mid.Snapshot();
  EXPECT_EQ(early.n, 130u);
  EXPECT_EQ(early.segments.back().r, 129u);
  for (size_t i = 130; i < v.size(); ++i) mid.Append(v[i]);
  EXPECT_EQ(mid.Snapshot().segments.back().r, v.size() - 1);
}

TEST(StreamingSapla, SinglePointSeriesSealsToOnePointSegment) {
  StreamingSapla stream(4);
  stream.Append(7.5);
  const Representation rep = stream.Snapshot();
  EXPECT_EQ(rep.n, 1u);
  ASSERT_EQ(rep.segments.size(), 1u);
  EXPECT_EQ(rep.segments[0].r, 0u);
  // A one-point LS fit is the constant through the point.
  EXPECT_DOUBLE_EQ(rep.segments[0].b, 7.5);
  EXPECT_NEAR(rep.SumMaxDeviation({7.5}), 0.0, 1e-12);
}

TEST(StreamingSapla, ResetReseedsToAFreshInstance) {
  // A Reset stream re-fed with a new series must be indistinguishable from
  // a freshly constructed one — segment boundaries AND coefficients. The
  // ingest controller reuses one streamer across all arrivals this way.
  const std::vector<double> first = RandomWalk(10, 311);
  const std::vector<double> second = RandomWalk(11, 400);
  StreamingSapla reused(6);
  for (const double x : first) reused.Append(x);
  reused.Reset();
  EXPECT_EQ(reused.size(), 0u);
  EXPECT_EQ(reused.Snapshot().segments.size(), 0u);

  StreamingSapla fresh(6);
  for (const double x : second) {
    reused.Append(x);
    fresh.Append(x);
  }
  const Representation ra = reused.Snapshot(), rb = fresh.Snapshot();
  EXPECT_EQ(ra.n, rb.n);
  ASSERT_EQ(ra.segments.size(), rb.segments.size());
  for (size_t i = 0; i < ra.segments.size(); ++i) {
    EXPECT_EQ(ra.segments[i].r, rb.segments[i].r) << i;
    EXPECT_DOUBLE_EQ(ra.segments[i].a, rb.segments[i].a) << i;
    EXPECT_DOUBLE_EQ(ra.segments[i].b, rb.segments[i].b) << i;
  }

  // Reset out of every corner state: empty, single point, mid-merge.
  StreamingSapla corner(3);
  corner.Reset();  // reset of an empty stream is a no-op
  corner.Append(1.0);
  corner.Reset();  // reset after a single point
  for (int i = 0; i < 100; ++i) corner.Append(0.5 * i);
  const Representation rep = corner.Snapshot();
  EXPECT_EQ(rep.n, 100u);
  EXPECT_NEAR(rep.SumMaxDeviation(std::vector<double>(
                  [] {
                    std::vector<double> v;
                    for (int i = 0; i < 100; ++i) v.push_back(0.5 * i);
                    return v;
                  }())),
              0.0, 1e-7);
}

TEST(StreamingSapla, LongStreamBoundedState) {
  // 50k points through a budget of 10: must stay fast and bounded (this
  // test exists to catch accidental O(n) state growth; it finishes in
  // milliseconds when memory is truly O(N)).
  Rng rng(5);
  StreamingSapla stream(10);
  double x = 0.0;
  for (int t = 0; t < 50000; ++t) {
    x += rng.Gaussian();
    stream.Append(x);
  }
  EXPECT_EQ(stream.size(), 50000u);
  const Representation rep = stream.Snapshot();
  EXPECT_LE(rep.segments.size(), 10u);
  EXPECT_EQ(rep.segments.back().r, 49999u);
}

}  // namespace
}  // namespace sapla
