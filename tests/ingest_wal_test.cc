// Durability: the ingest write-ahead log and manifest/checkpoint recovery.
// The contract under test is acked ⟺ durable: a mutation acknowledged to
// the caller is recoverable after a kill at ANY point (the WAL append
// happens before the in-memory commit and fails closed), a mutation that
// errored is never resurrected, and replay after any crash — including
// torn tails, bit flips, and kills between the checkpoint's manifest write
// and WAL truncation — reproduces exactly the acknowledged visible set.

#include "ingest/wal.h"

#include <sys/stat.h>

#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "ingest/ingest_controller.h"
#include "ts/synthetic_archive.h"
#include "util/fault.h"

namespace sapla {
namespace {

constexpr size_t kBudget = 12;
constexpr size_t kK = 5;

std::string TempDir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "/" + name;
  std::remove((dir + "/wal.log").c_str());
  std::remove((dir + "/manifest.bin").c_str());
  // Best-effort cleanup of prior shard snapshots.
  for (int s = 0; s < 8; ++s)
    std::remove((dir + "/main.shard" + std::to_string(s) + ".snp").c_str());
  ::mkdir(dir.c_str(), 0755);
  return dir;
}

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

void WriteFileBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good()) << path;
}

WalRecord InsertRecord(uint64_t seq, uint64_t id,
                       std::vector<double> values, uint64_t expiry = 0) {
  WalRecord r;
  r.kind = WalRecord::Kind::kInsert;
  r.seq = seq;
  r.id = id;
  r.label = static_cast<int64_t>(id) - 3;
  r.expiry_seq = expiry;
  r.values = std::move(values);
  return r;
}

WalRecord DeleteRecord(uint64_t seq, uint64_t id) {
  WalRecord r;
  r.kind = WalRecord::Kind::kDelete;
  r.seq = seq;
  r.id = id;
  return r;
}

// ---------------------------------------------------------------------------
// Raw log framing.

TEST(Wal, AppendReplayRoundTrip) {
  const std::string dir = TempDir("wal_roundtrip");
  const std::string path = dir + "/wal.log";
  std::vector<WalRecord> written = {
      InsertRecord(0, 0, {1.0, 2.0, 3.0}),
      InsertRecord(1, 1, {4.5, -0.25, 1e300}, /*expiry=*/7),
      DeleteRecord(2, 0),
      InsertRecord(3, 2, {0.0, 0.0, 0.0}),
  };
  {
    WriteAheadLog wal;
    ASSERT_TRUE(wal.Open(path).ok());
    for (const WalRecord& r : written) ASSERT_TRUE(wal.Append(r).ok());
    ASSERT_TRUE(wal.Sync().ok());
    EXPECT_GT(wal.bytes_appended(), 0u);
  }
  const auto replay = WriteAheadLog::Replay(path);
  ASSERT_TRUE(replay.ok());
  EXPECT_EQ(replay.ValueOrDie().dropped_bytes, 0u);
  ASSERT_EQ(replay.ValueOrDie().records.size(), written.size());
  for (size_t i = 0; i < written.size(); ++i)
    EXPECT_TRUE(replay.ValueOrDie().records[i] == written[i]) << i;

  // Reopening appends after the existing records, never rewrites them.
  {
    WriteAheadLog wal;
    ASSERT_TRUE(wal.Open(path).ok());
    ASSERT_TRUE(wal.Append(DeleteRecord(4, 1)).ok());
  }
  const auto again = WriteAheadLog::Replay(path);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again.ValueOrDie().records.size(), written.size() + 1);
}

TEST(Wal, MissingLogReplaysEmpty) {
  const auto replay = WriteAheadLog::Replay(TempDir("wal_none") + "/wal.log");
  ASSERT_TRUE(replay.ok());
  EXPECT_TRUE(replay.ValueOrDie().records.empty());
  EXPECT_EQ(replay.ValueOrDie().dropped_bytes, 0u);
}

TEST(Wal, TornTailIsDroppedNotFatal) {
  const std::string path = TempDir("wal_torn") + "/wal.log";
  {
    WriteAheadLog wal;
    ASSERT_TRUE(wal.Open(path).ok());
    ASSERT_TRUE(wal.Append(InsertRecord(0, 0, {1.0, 2.0})).ok());
    ASSERT_TRUE(wal.Append(InsertRecord(1, 1, {3.0, 4.0})).ok());
  }
  const std::string good = ReadFileBytes(path);
  // Truncate at every byte boundary: replay must never fail, and must
  // return exactly the records whose frames are fully present.
  for (size_t len = 0; len <= good.size(); ++len) {
    WriteFileBytes(path, good.substr(0, len));
    const auto replay = WriteAheadLog::Replay(path);
    if (len == 0) {
      ASSERT_TRUE(replay.ok());
      EXPECT_TRUE(replay.ValueOrDie().records.empty());
      continue;
    }
    if (len < 12) {
      // A partial header is indistinguishable from garbage: rejected.
      EXPECT_FALSE(replay.ok()) << len;
      continue;
    }
    ASSERT_TRUE(replay.ok()) << len;
    const WalReplay& rep = replay.ValueOrDie();
    EXPECT_LE(rep.records.size(), 2u) << len;
    // Exact accounting: header + fully-parsed frames + dropped tail == len.
    const size_t frame = (good.size() - 12) / 2;
    EXPECT_EQ(12 + rep.records.size() * frame + rep.dropped_bytes, len) << len;
    for (const WalRecord& r : rep.records)
      EXPECT_EQ(r.values.size(), 2u) << len;
  }
}

TEST(Wal, CorruptFrameStopsReplayAtLastGoodRecord) {
  const std::string path = TempDir("wal_flip") + "/wal.log";
  {
    WriteAheadLog wal;
    ASSERT_TRUE(wal.Open(path).ok());
    for (uint64_t i = 0; i < 4; ++i)
      ASSERT_TRUE(wal.Append(InsertRecord(i, i, {double(i), 1.0})).ok());
  }
  const std::string good = ReadFileBytes(path);
  // Flip one bit somewhere in the third frame's payload.
  std::string bad = good;
  const size_t frame_len = (good.size() - 12) / 4;
  const size_t pos = 12 + 2 * frame_len + frame_len / 2;
  bad[pos] = static_cast<char>(bad[pos] ^ 0x10);
  WriteFileBytes(path, bad);
  const auto replay = WriteAheadLog::Replay(path);
  ASSERT_TRUE(replay.ok());
  EXPECT_EQ(replay.ValueOrDie().records.size(), 2u);
  EXPECT_GT(replay.ValueOrDie().dropped_bytes, 0u);
}

TEST(Wal, RewriteTruncatesAtomically) {
  const std::string path = TempDir("wal_rewrite") + "/wal.log";
  {
    WriteAheadLog wal;
    ASSERT_TRUE(wal.Open(path).ok());
    for (uint64_t i = 0; i < 6; ++i)
      ASSERT_TRUE(wal.Append(InsertRecord(i, i, {1.0, 2.0})).ok());
  }
  const std::vector<WalRecord> tail = {InsertRecord(5, 5, {1.0, 2.0})};
  ASSERT_TRUE(WriteAheadLog::Rewrite(path, tail).ok());
  const auto replay = WriteAheadLog::Replay(path);
  ASSERT_TRUE(replay.ok());
  ASSERT_EQ(replay.ValueOrDie().records.size(), 1u);
  EXPECT_TRUE(replay.ValueOrDie().records[0] == tail[0]);
}

// ---------------------------------------------------------------------------
// Controller-level recovery.

Dataset SourceData(size_t id, size_t length = 48, size_t count = 60) {
  SyntheticOptions opt;
  opt.length = length;
  opt.num_series = count;
  return MakeSyntheticDataset(id, opt);
}

IngestOptions DurableOptions(const std::string& dir) {
  IngestOptions options;
  options.memtable_max = 5;
  options.compact_min_minors = 3;
  options.num_shards = 2;
  options.durable_dir = dir;
  return options;
}

std::unique_ptr<IngestController> MakeDurable(const std::string& dir,
                                              size_t length = 48) {
  auto ctrl = std::make_unique<IngestController>(
      Method::kSapla, kBudget, IndexKind::kRTree, length, DurableOptions(dir));
  EXPECT_TRUE(ctrl->Recover().ok());
  return ctrl;
}

/// Recovery fidelity: the reborn controller sees the identical visible set
/// and answers queries identically to the pre-kill controller.
void ExpectSameWorld(IngestController& a, IngestController& b,
                     const std::vector<std::vector<double>>& queries,
                     const std::string& label) {
  EXPECT_EQ(a.VisibleIds(), b.VisibleIds()) << label;
  EXPECT_EQ(a.dataset_size(), b.dataset_size()) << label;
  for (size_t qi = 0; qi < queries.size(); ++qi) {
    const KnnResult ra = a.Knn(queries[qi], kK);
    const KnnResult rb = b.Knn(queries[qi], kK);
    EXPECT_EQ(ra.neighbors, rb.neighbors) << label << " q" << qi;
    const KnnResult ga = a.RangeSearch(queries[qi], 9.0);
    const KnnResult gb = b.RangeSearch(queries[qi], 9.0);
    EXPECT_EQ(ga.neighbors, gb.neighbors) << label << " q" << qi;
  }
}

std::vector<std::vector<double>> SomeQueries(const Dataset& ds) {
  std::vector<std::vector<double>> queries;
  for (const size_t qi : {0u, 11u, 23u, 37u})
    if (qi < ds.size()) queries.push_back(ds.series[qi].values);
  return queries;
}

TEST(IngestRecovery, ColdRestartReplaysEveryAcknowledgedMutation) {
  const std::string dir = TempDir("ing_cold");
  const Dataset src = SourceData(51);
  const auto queries = SomeQueries(src);
  auto a = MakeDurable(dir);
  for (size_t i = 0; i < 23; ++i)
    ASSERT_TRUE(a->Insert(src.series[i].values, src.series[i].label,
                          i % 5 == 4 ? 40 : 0)
                    .ok());
  for (const uint64_t id : {3u, 7u, 15u}) ASSERT_TRUE(a->Delete(id).ok());

  // Kill (no checkpoint, no shutdown hook — the WAL alone carries it).
  auto b = MakeDurable(dir);
  ExpectSameWorld(*a, *b, queries, "cold");
  EXPECT_GE(SnapshotIngestMetrics(b->metrics()).wal_replayed, 26u);

  // The reborn controller keeps going: fresh ids continue past the dead
  // controller's, and further mutations are themselves durable.
  const auto id = b->Insert(src.series[30].values);
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(id.ValueOrDie(), 23u);
  ASSERT_TRUE(b->Delete(0).ok());
  auto c = MakeDurable(dir);
  ExpectSameWorld(*b, *c, queries, "second life");
}

TEST(IngestRecovery, TtlVisibilityReplaysExactly) {
  const std::string dir = TempDir("ing_ttl");
  const Dataset src = SourceData(52);
  auto a = MakeDurable(dir);
  // expiry at seq 3: alive for its insert plus two more mutations.
  ASSERT_TRUE(a->Insert(src.series[0].values, -1, 3).ok());
  ASSERT_TRUE(a->Insert(src.series[1].values).ok());
  ASSERT_TRUE(a->Insert(src.series[2].values).ok());
  ASSERT_EQ(a->dataset_size(), 3u);

  auto b = MakeDurable(dir);
  // Replay restores the EXACT sequence clock, not just the data: entry 0
  // must still be one mutation away from expiry, on both sides.
  ASSERT_EQ(b->dataset_size(), 3u);
  ASSERT_TRUE(a->Insert(src.series[3].values).ok());
  ASSERT_TRUE(b->Insert(src.series[3].values).ok());
  EXPECT_EQ(a->dataset_size(), 3u);  // 0 expired
  EXPECT_EQ(b->dataset_size(), 3u);
  EXPECT_EQ(a->VisibleIds(), b->VisibleIds());
}

TEST(IngestRecovery, CheckpointTruncatesWalAndRestoresFromSnapshots) {
  const std::string dir = TempDir("ing_ckpt");
  const Dataset src = SourceData(53);
  const auto queries = SomeQueries(src);
  auto a = MakeDurable(dir);
  for (size_t i = 0; i < 31; ++i)
    ASSERT_TRUE(a->Insert(src.series[i].values).ok());
  for (const uint64_t id : {2u, 9u, 27u}) ASSERT_TRUE(a->Delete(id).ok());

  const uint64_t wal_before = ReadFileBytes(dir + "/wal.log").size();
  ASSERT_TRUE(a->Checkpoint().ok());
  // The log now carries only the (small) memtable tail.
  EXPECT_LT(ReadFileBytes(dir + "/wal.log").size(), wal_before);
  EXPECT_EQ(SnapshotIngestMetrics(a->metrics()).checkpoints, 1u);

  // Post-checkpoint traffic lands in the truncated log.
  ASSERT_TRUE(a->Insert(src.series[40].values).ok());
  ASSERT_TRUE(a->Delete(1).ok());

  auto b = MakeDurable(dir);
  ExpectSameWorld(*a, *b, queries, "checkpoint+tail");
}

TEST(IngestRecovery, KillBetweenManifestAndWalTruncationIsSafe) {
  // The dangerous interleaving: checkpoint wrote snapshots + manifest but
  // died before the WAL rewrite. Recovery sees the NEW manifest plus the
  // FULL old log; replay must be idempotent (skip known ids, ignore
  // deletes of already-compacted ids) and converge to the same world.
  const std::string dir = TempDir("ing_interleave");
  const Dataset src = SourceData(54);
  const auto queries = SomeQueries(src);
  auto a = MakeDurable(dir);
  for (size_t i = 0; i < 17; ++i)
    ASSERT_TRUE(a->Insert(src.series[i].values).ok());
  ASSERT_TRUE(a->Delete(4).ok());

  const std::string wal_full = ReadFileBytes(dir + "/wal.log");
  ASSERT_TRUE(a->Checkpoint().ok());
  // Undo the truncation: manifest is new, log is the full pre-checkpoint
  // history — exactly what a kill in the gap leaves behind.
  WriteFileBytes(dir + "/wal.log", wal_full);

  auto b = MakeDurable(dir);
  ExpectSameWorld(*a, *b, queries, "manifest+old-log");
}

TEST(IngestRecovery, TornWalTailIsTruncatedBeforeNewAppends) {
  const std::string dir = TempDir("ing_torn");
  const Dataset src = SourceData(55);
  auto a = MakeDurable(dir);
  for (size_t i = 0; i < 7; ++i)
    ASSERT_TRUE(a->Insert(src.series[i].values).ok());
  a.reset();
  // Tear the tail mid-frame, as a kill mid-append would.
  const std::string good = ReadFileBytes(dir + "/wal.log");
  WriteFileBytes(dir + "/wal.log", good.substr(0, good.size() - 5));

  auto b = MakeDurable(dir);
  EXPECT_EQ(b->dataset_size(), 6u);  // the torn record was never acked
  // New appends must land after the truncation point and survive another
  // restart (an un-truncated torn tail would swallow them).
  ASSERT_TRUE(b->Insert(src.series[10].values).ok());
  auto c = MakeDurable(dir);
  EXPECT_EQ(c->dataset_size(), 7u);
  EXPECT_EQ(b->VisibleIds(), c->VisibleIds());
}

#if !defined(SAPLA_FAULT_DISABLED)

// ---------------------------------------------------------------------------
// Disk guard: ENOSPC and torn appends must fail closed (docs/ROBUSTNESS.md).

TEST(Wal, DiskFullAppendIsResourceExhaustedAndLeavesLogIntact) {
  const std::string path = TempDir("wal_diskfull") + "/wal.log";
  WriteAheadLog wal;
  ASSERT_TRUE(wal.Open(path).ok());
  ASSERT_TRUE(wal.Append(InsertRecord(0, 0, {1.0, 2.0})).ok());
  ASSERT_TRUE(wal.Append(InsertRecord(1, 1, {3.0, 4.0})).ok());
  const std::string before = ReadFileBytes(path);

  fault::Enable(13);
  fault::PointConfig cfg;
  cfg.max_triggers = 1;
  cfg.code = StatusCode::kResourceExhausted;
  fault::Configure("ingest/wal_full", cfg);
  const Status st = wal.Append(InsertRecord(2, 2, {5.0, 6.0}));
  fault::Reset();

  // The refusal is typed (callers distinguish "disk full" from "disk
  // broken") and nothing reached the file.
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kResourceExhausted) << st.ToString();
  EXPECT_EQ(ReadFileBytes(path), before);

  // Space came back: the same record appends cleanly and replay sees all
  // three — the log never wedges after a refused append.
  ASSERT_TRUE(wal.Append(InsertRecord(2, 2, {5.0, 6.0})).ok());
  const auto replay = WriteAheadLog::Replay(path);
  ASSERT_TRUE(replay.ok());
  EXPECT_EQ(replay.ValueOrDie().records.size(), 3u);
  EXPECT_EQ(replay.ValueOrDie().dropped_bytes, 0u);
}

TEST(Wal, TornAppendRollsBackToLastGoodFrame) {
  const std::string path = TempDir("wal_torn_append") + "/wal.log";
  WriteAheadLog wal;
  ASSERT_TRUE(wal.Open(path).ok());
  ASSERT_TRUE(wal.Append(InsertRecord(0, 0, {1.0, 2.0})).ok());
  ASSERT_TRUE(wal.Append(InsertRecord(1, 1, {3.0, 4.0})).ok());
  const std::string good = ReadFileBytes(path);

  // The fault writes only half the third frame — a crash mid-append. The
  // append must fail AND truncate the torn bytes so the file ends exactly
  // at the last fully flushed frame.
  fault::Enable(13);
  fault::PointConfig torn;
  torn.max_triggers = 1;
  fault::Configure("ingest/wal_torn", torn);
  EXPECT_FALSE(wal.Append(InsertRecord(2, 2, {5.0, 6.0})).ok());
  fault::Reset();
  EXPECT_EQ(ReadFileBytes(path), good);

  // Replay is already clean (no dropped tail), and the log keeps working:
  // the retried append lands after the rollback point.
  const auto mid = WriteAheadLog::Replay(path);
  ASSERT_TRUE(mid.ok());
  EXPECT_EQ(mid.ValueOrDie().records.size(), 2u);
  EXPECT_EQ(mid.ValueOrDie().dropped_bytes, 0u);
  ASSERT_TRUE(wal.Append(InsertRecord(2, 2, {5.0, 6.0})).ok());
  const auto replay = WriteAheadLog::Replay(path);
  ASSERT_TRUE(replay.ok());
  ASSERT_EQ(replay.ValueOrDie().records.size(), 3u);
  EXPECT_EQ(replay.ValueOrDie().dropped_bytes, 0u);
  EXPECT_TRUE(replay.ValueOrDie().records[2] ==
              InsertRecord(2, 2, {5.0, 6.0}));
}

TEST(IngestRecovery, DiskFullInsertIsRefusedNotAckedAndRecovers) {
  // Controller-level acked ⟺ logged under ENOSPC: a refused insert is
  // visible nowhere, and once space returns the controller keeps going.
  const std::string dir = TempDir("ing_diskfull");
  const Dataset src = SourceData(58);
  auto a = MakeDurable(dir);
  ASSERT_TRUE(a->Insert(src.series[0].values).ok());

  fault::Enable(17);
  fault::PointConfig cfg;
  cfg.max_triggers = 1;
  cfg.code = StatusCode::kResourceExhausted;
  fault::Configure("ingest/wal_full", cfg);
  const auto refused = a->Insert(src.series[1].values);
  fault::Reset();
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(a->dataset_size(), 1u);

  ASSERT_TRUE(a->Insert(src.series[2].values).ok());
  auto b = MakeDurable(dir);
  EXPECT_EQ(b->VisibleIds(), a->VisibleIds());
  EXPECT_EQ(b->dataset_size(), 2u);
}

TEST(IngestRecovery, FaultedAppendIsNeitherAckedNorReplayed) {
  const std::string dir = TempDir("ing_fault_append");
  const Dataset src = SourceData(56);
  auto a = MakeDurable(dir);
  ASSERT_TRUE(a->Insert(src.series[0].values).ok());

  fault::Enable(7);
  fault::PointConfig cfg;
  cfg.max_triggers = 1;
  fault::Configure("ingest/wal_append", cfg);
  EXPECT_FALSE(a->Insert(src.series[1].values).ok());  // injected IO error
  fault::Reset();

  // The failed insert is gone from both the live controller and replay.
  EXPECT_EQ(a->dataset_size(), 1u);
  ASSERT_TRUE(a->Insert(src.series[2].values).ok());
  auto b = MakeDurable(dir);
  EXPECT_EQ(b->VisibleIds(), a->VisibleIds());
}

TEST(IngestRecovery, FaultedCheckpointLeavesARecoverableWorld) {
  const std::string dir = TempDir("ing_fault_ckpt");
  const Dataset src = SourceData(57);
  const auto queries = SomeQueries(src);
  auto a = MakeDurable(dir);
  for (size_t i = 0; i < 12; ++i)
    ASSERT_TRUE(a->Insert(src.series[i].values).ok());

  fault::Enable(11);
  fault::PointConfig cfg;
  cfg.max_triggers = 1;
  fault::Configure("ingest/checkpoint", cfg);
  EXPECT_FALSE(a->Checkpoint().ok());
  fault::Reset();

  auto b = MakeDurable(dir);
  ExpectSameWorld(*a, *b, queries, "failed checkpoint");
  // And the next checkpoint succeeds.
  ASSERT_TRUE(b->Checkpoint().ok());
  auto c = MakeDurable(dir);
  ExpectSameWorld(*b, *c, queries, "retried checkpoint");
}
#endif  // !SAPLA_FAULT_DISABLED

}  // namespace
}  // namespace sapla
