// Malformed-input and failure-path regression tests.
//
// Covers the hardened UCR loader (every rejection carries the file and line
// so a corrupt archive is diagnosable from the Status alone), the v1 text
// parser, and AtomicWriteFile's crash-safety contract under injected I/O
// faults: a failed save must leave a preexisting destination byte-identical
// and must not litter temp files.

#include <sys/stat.h>
#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "ts/io.h"
#include "ts/ucr_loader.h"
#include "util/fault.h"
#include "util/status.h"

namespace sapla {
namespace {

// Writes `content` to a unique path under /tmp and returns the path.
std::string WriteTemp(const std::string& name, const std::string& content) {
  const std::string path = "/tmp/sapla_robustness_" + name;
  std::ofstream out(path, std::ios::trunc | std::ios::binary);
  out << content;
  return path;
}

// Used by the fault-injection section only, which -DSAPLA_FAULT=OFF
// compiles out.
[[maybe_unused]] std::string ReadAll(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

[[maybe_unused]] bool Exists(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0;
}

// ---------------------------------------------------------------------------
// UCR loader: every malformed input is rejected with file + line context.

class UcrLoaderRobustness : public ::testing::Test {
 protected:
  void TearDown() override {
    for (const std::string& p : cleanup_) std::remove(p.c_str());
  }

  // Loads `content` from a temp file and returns the resulting status.
  Status LoadContent(const std::string& name, const std::string& content) {
    const std::string path = WriteTemp(name, content);
    cleanup_.push_back(path);
    last_path_ = path;
    return LoadUcrDataset(path, {}).status();
  }

  // Asserts the status is InvalidArgument and its message pinpoints the file
  // and, when line > 0, the offending line.
  void ExpectRejected(const Status& st, int line = 0) {
    ASSERT_FALSE(st.ok());
    EXPECT_EQ(st.code(), StatusCode::kInvalidArgument) << st.ToString();
    EXPECT_NE(st.message().find(last_path_), std::string::npos)
        << st.ToString();
    if (line > 0) {
      EXPECT_NE(st.message().find("line " + std::to_string(line)),
                std::string::npos)
          << st.ToString();
    }
  }

  std::vector<std::string> cleanup_;
  std::string last_path_;
};

TEST_F(UcrLoaderRobustness, AcceptsAWellFormedFile) {
  UcrLoadOptions native;
  native.target_length = 0;  // keep native lengths
  native.z_normalize = false;
  const auto ds = LoadUcrDataset(
      WriteTemp("ok.tsv", "1\t0.5\t1.5\t2.5\n2\t0.1\t0.2\t0.3\n"), native);
  ASSERT_TRUE(ds.ok()) << ds.status().ToString();
  EXPECT_EQ(ds->series.size(), 2u);
  EXPECT_EQ(ds->series[0].values.size(), 3u);
  std::remove("/tmp/sapla_robustness_ok.tsv");
}

TEST_F(UcrLoaderRobustness, RejectsEmptyFile) {
  const Status st = LoadContent("empty.tsv", "");
  ExpectRejected(st);
  EXPECT_NE(st.message().find("empty file"), std::string::npos)
      << st.ToString();
}

TEST_F(UcrLoaderRobustness, RejectsWhitespaceOnlyFile) {
  const Status st = LoadContent("blank.tsv", "\n\n\n");
  ExpectRejected(st);
  EXPECT_NE(st.message().find("no series parsed"), std::string::npos)
      << st.ToString();
}

TEST_F(UcrLoaderRobustness, RejectsNonNumericCellWithLineNumber) {
  const Status st =
      LoadContent("alpha.tsv", "1\t0.5\t1.5\n1\t0.5\thello\n");
  ExpectRejected(st, 2);
  EXPECT_NE(st.message().find("hello"), std::string::npos) << st.ToString();
}

TEST_F(UcrLoaderRobustness, RejectsNanAndInfCells) {
  ExpectRejected(LoadContent("nan.tsv", "1\t0.5\tnan\t1.5\n"), 1);
  ExpectRejected(LoadContent("inf.tsv", "1\t0.5\tinf\n"), 1);
  ExpectRejected(LoadContent("ninf.tsv", "1\t-inf\t0.5\n"), 1);
}

TEST_F(UcrLoaderRobustness, RejectsOutOfRangeLabel) {
  const Status st = LoadContent("label.tsv", "9e99\t0.5\t1.5\n");
  ExpectRejected(st, 1);
  EXPECT_NE(st.message().find("label"), std::string::npos) << st.ToString();
}

TEST_F(UcrLoaderRobustness, RejectsRaggedRowsNamingBothLengths) {
  const Status st =
      LoadContent("ragged.tsv", "1\t0.5\t1.5\t2.5\n2\t0.1\t0.2\n");
  ExpectRejected(st, 2);
  EXPECT_NE(st.message().find("ragged"), std::string::npos) << st.ToString();
  EXPECT_NE(st.message().find("3"), std::string::npos) << st.ToString();
  EXPECT_NE(st.message().find("2"), std::string::npos) << st.ToString();
}

TEST_F(UcrLoaderRobustness, RejectsRowWithOnlyALabel) {
  ExpectRejected(LoadContent("lonely.tsv", "7\n"), 1);
}

TEST_F(UcrLoaderRobustness, MissingFileIsIOErrorNotCrash) {
  const Status st =
      LoadUcrDataset("/nonexistent/sapla_robustness.tsv", {}).status();
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kIOError) << st.ToString();
}

// Deterministic pseudo-fuzz: random byte soup must never crash the loader,
// and must either parse or produce a descriptive status. Complements the
// targeted cases above with breadth.
TEST_F(UcrLoaderRobustness, RandomByteSoupNeverCrashes) {
  uint64_t state = 0x9e3779b97f4a7c15ull;
  auto next = [&state]() {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state;
  };
  const std::string alphabet = "0123456789.eE+-\t, \nnaif";
  for (int round = 0; round < 200; ++round) {
    std::string content;
    const size_t len = next() % 256;
    for (size_t i = 0; i < len; ++i)
      content.push_back(alphabet[next() % alphabet.size()]);
    const std::string path = WriteTemp("fuzz.tsv", content);
    const auto ds = LoadUcrDataset(path, {});
    if (!ds.ok()) {
      EXPECT_FALSE(ds.status().message().empty());
    }
  }
  std::remove("/tmp/sapla_robustness_fuzz.tsv");
}

// ---------------------------------------------------------------------------
// v1 text parser: structured-but-wrong inputs.

TEST(V1ParserRobustness, RejectsTruncatedAndMalformedBlocks) {
  // Missing terminator.
  EXPECT_FALSE(
      ParseRepresentations("SAPLA-REP v1\nmethod PAA n 4\nseg 1 1 4\n").ok());
  // Unknown directive inside a block.
  EXPECT_FALSE(ParseRepresentations(
                   "SAPLA-REP v1\nmethod PAA n 4\nbogus 1 2 3\nend\n")
                   .ok());
  // Non-numeric segment fields.
  EXPECT_FALSE(ParseRepresentations(
                   "SAPLA-REP v1\nmethod PAA n 4\nseg x y z\nend\n")
                   .ok());
  // Header without a version tag.
  EXPECT_FALSE(ParseRepresentations("method PAA n 4\nend\n").ok());
}

// ---------------------------------------------------------------------------
// AtomicWriteFile: crash-safety contract under injected I/O faults. Only
// meaningful when the fault framework is compiled in.

#ifndef SAPLA_FAULT_DISABLED

class AtomicWriteFaults : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = "/tmp/sapla_robustness_atomic.bin";
    tmp_ = path_ + ".tmp." + std::to_string(static_cast<long>(::getpid()));
    std::remove(path_.c_str());
    std::remove(tmp_.c_str());
  }

  void TearDown() override {
    fault::Reset();
    std::remove(path_.c_str());
    std::remove(tmp_.c_str());
  }

  // Arms one always-triggering fault point.
  void Arm(const std::string& point) {
    fault::Reset();
    fault::Enable(/*seed=*/7);
    fault::Configure(point, fault::PointConfig{});
  }

  std::string path_;
  std::string tmp_;
};

TEST_F(AtomicWriteFaults, FailedSaveLeavesExistingFileByteIdentical) {
  const std::string original(1024, 'A');
  ASSERT_TRUE(AtomicWriteFile(path_, original).ok());
  for (const char* point : {"io/open_write", "io/write", "io/fsync",
                            "io/rename"}) {
    Arm(point);
    const Status st = AtomicWriteFile(path_, std::string(2048, 'B'));
    fault::Disable();
    ASSERT_FALSE(st.ok()) << point << " did not trigger";
    EXPECT_EQ(st.code(), StatusCode::kIOError) << st.ToString();
    EXPECT_EQ(ReadAll(path_), original)
        << point << " corrupted the destination";
    EXPECT_FALSE(Exists(tmp_)) << point << " left a temp file behind";
  }
}

TEST_F(AtomicWriteFaults, DiskFullIsResourceExhaustedWithOldFileIntact) {
  // The free-space preflight refuses before the temp file is even staged:
  // a full disk must read as a clean kResourceExhausted, never a torn or
  // missing destination.
  const std::string original(512, 'A');
  ASSERT_TRUE(AtomicWriteFile(path_, original).ok());
  fault::Reset();
  fault::Enable(/*seed=*/7);
  fault::PointConfig cfg;
  cfg.max_triggers = 1;
  cfg.code = StatusCode::kResourceExhausted;
  fault::Configure("io/disk_full", cfg);
  const Status st = AtomicWriteFile(path_, std::string(4096, 'B'));
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kResourceExhausted) << st.ToString();
  EXPECT_EQ(ReadAll(path_), original);
  EXPECT_FALSE(Exists(tmp_));
  // Space freed up (the fault is exhausted): the retry lands.
  EXPECT_TRUE(AtomicWriteFile(path_, std::string(4096, 'B')).ok());
  fault::Disable();
}

TEST_F(AtomicWriteFaults, FailedFirstSaveLeavesNoFileAtAll) {
  Arm("io/write");
  EXPECT_FALSE(AtomicWriteFile(path_, "payload").ok());
  fault::Disable();
  EXPECT_FALSE(Exists(path_));
  EXPECT_FALSE(Exists(tmp_));
}

TEST_F(AtomicWriteFaults, SaveSucceedsOnceTheFaultIsExhausted) {
  // max_triggers = 1: the first save fails, the retry lands cleanly.
  fault::Reset();
  fault::Enable(/*seed=*/7);
  fault::PointConfig cfg;
  cfg.max_triggers = 1;
  fault::Configure("io/write", cfg);
  EXPECT_FALSE(AtomicWriteFile(path_, "payload").ok());
  EXPECT_TRUE(AtomicWriteFile(path_, "payload").ok());
  fault::Disable();
  EXPECT_EQ(ReadAll(path_), "payload");
  EXPECT_FALSE(Exists(tmp_));
}

TEST_F(AtomicWriteFaults, InjectedReadFailureSurfacesAsIOError) {
  ASSERT_TRUE(AtomicWriteFile(path_, "SAPLA-REP v1\n").ok());
  Arm("io/open_read");
  const auto loaded = LoadRepresentations(path_);
  fault::Disable();
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kIOError);
}

#endif  // SAPLA_FAULT_DISABLED

}  // namespace
}  // namespace sapla
