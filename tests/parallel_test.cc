// Tests for the shared parallel execution layer (util/parallel.h):
// deterministic partitioning, exactly-once index coverage at several
// thread counts, global configuration, nested calls, and exception
// propagation.

#include "util/parallel.h"

#include <atomic>
#include <chrono>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace sapla {
namespace {

TEST(ParallelChunk, PartitionsContiguouslyAndExactly) {
  for (const size_t total : {1u, 2u, 7u, 8u, 100u, 101u}) {
    for (const size_t chunks : {1u, 2u, 3u, 8u}) {
      if (chunks > total) continue;
      size_t expected_start = 5;  // begin offset
      size_t covered = 0;
      for (size_t c = 0; c < chunks; ++c) {
        const auto [start, stop] = ParallelChunk(5, 5 + total, chunks, c);
        EXPECT_EQ(start, expected_start) << total << "/" << chunks;
        EXPECT_GE(stop, start);
        // Near-equal: chunk sizes differ by at most one.
        EXPECT_LE(stop - start, total / chunks + 1);
        EXPECT_GE(stop - start, total / chunks);
        covered += stop - start;
        expected_start = stop;
      }
      EXPECT_EQ(covered, total);
      EXPECT_EQ(expected_start, 5 + total);
    }
  }
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  for (const size_t threads : {1u, 2u, 8u}) {
    std::vector<std::atomic<int>> hits(257);
    for (auto& h : hits) h.store(0);
    ParallelFor(0, hits.size(),
                [&](size_t i) { hits[i].fetch_add(1); }, threads);
    for (size_t i = 0; i < hits.size(); ++i)
      EXPECT_EQ(hits[i].load(), 1) << "index " << i << " at " << threads;
  }
}

TEST(ParallelFor, EmptyAndSingletonRanges) {
  int calls = 0;
  ParallelFor(3, 3, [&](size_t) { ++calls; }, 4);
  EXPECT_EQ(calls, 0);
  ParallelFor(3, 4, [&](size_t i) { calls += static_cast<int>(i); }, 4);
  EXPECT_EQ(calls, 3);
}

TEST(ParallelFor, WriteByIndexMatchesSerial) {
  const size_t n = 1000;
  std::vector<double> serial(n), parallel(n);
  const auto f = [](size_t i) {
    return static_cast<double>(i * i) / 3.0 + 1.0;
  };
  for (size_t i = 0; i < n; ++i) serial[i] = f(i);
  ParallelFor(0, n, [&](size_t i) { parallel[i] = f(i); }, 8);
  EXPECT_EQ(serial, parallel);  // bit-identical, not just approximately
}

TEST(ParallelFor, PropagatesException) {
  EXPECT_THROW(
      ParallelFor(
          0, 100,
          [](size_t i) {
            if (i == 57) throw std::runtime_error("boom");
          },
          4),
      std::runtime_error);
}

TEST(ParallelFor, NestedCallsRunInline) {
  // A ParallelFor inside a ParallelFor chunk must not deadlock (inner
  // calls run inline on the worker).
  std::atomic<int> total{0};
  ParallelFor(
      0, 8,
      [&](size_t) {
        ParallelFor(0, 8, [&](size_t) { total.fetch_add(1); }, 4);
      },
      4);
  EXPECT_EQ(total.load(), 64);
}

TEST(GlobalThreads, DefaultAndOverride) {
  EXPECT_GE(NumThreads(), 1u);
  SetNumThreads(3);
  EXPECT_EQ(NumThreads(), 3u);
  SetNumThreads(0);  // back to auto
  EXPECT_GE(NumThreads(), 1u);
}

TEST(ThreadPool, GrowsOnDemand) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.num_workers(), 1u);
  pool.EnsureWorkers(3);
  EXPECT_EQ(pool.num_workers(), 3u);
  pool.EnsureWorkers(2);  // never shrinks
  EXPECT_EQ(pool.num_workers(), 3u);
}

TEST(ThreadPool, EnsureWorkersConcurrentWithSubmit) {
  // The oversubscription path: one thread grows the pool (as ParallelFor
  // does when a caller requests more parallelism than the pool has) while
  // another is concurrently submitting work. Every task must still run
  // exactly once and the pool must end at the requested size.
  ThreadPool pool(1);
  constexpr int kTasks = 500;
  constexpr size_t kTargetWorkers = 16;
  std::atomic<int> done{0};

  std::thread submitter([&] {
    for (int i = 0; i < kTasks; ++i)
      pool.Submit([&done] { done.fetch_add(1); });
  });
  std::thread grower([&] {
    for (size_t n = 2; n <= kTargetWorkers; ++n) {
      pool.EnsureWorkers(n);
      std::this_thread::yield();
    }
  });
  submitter.join();
  grower.join();
  EXPECT_EQ(pool.num_workers(), kTargetWorkers);

  // The queue drains on its own; bounded wait, no sleep-forever flake.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (done.load() < kTasks &&
         std::chrono::steady_clock::now() < deadline)
    std::this_thread::yield();
  EXPECT_EQ(done.load(), kTasks);
}

}  // namespace
}  // namespace sapla
