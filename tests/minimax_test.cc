// Tests for the minimax (Chebyshev-best) line fit and the MinimaxRefit
// post-processing step.

#include "geom/minimax.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "core/sapla.h"
#include "reduction/apla.h"
#include "util/rng.h"

namespace sapla {
namespace {

double MaxDev(const std::vector<double>& v, const Line& line) {
  double m = 0.0;
  for (size_t t = 0; t < v.size(); ++t)
    m = std::max(m, std::fabs(v[t] - line.At(static_cast<double>(t))));
  return m;
}

TEST(MinimaxFit, ExactOnTinyInputs) {
  const std::vector<double> one{4.0};
  const MinimaxFitResult r1 = MinimaxFit(one.data(), 1);
  EXPECT_DOUBLE_EQ(r1.line.b, 4.0);
  EXPECT_DOUBLE_EQ(r1.max_deviation, 0.0);

  const std::vector<double> two{1.0, 5.0};
  const MinimaxFitResult r2 = MinimaxFit(two.data(), 2);
  EXPECT_DOUBLE_EQ(r2.line.a, 4.0);
  EXPECT_DOUBLE_EQ(r2.line.b, 1.0);
}

TEST(MinimaxFit, CollinearDataIsExact) {
  std::vector<double> v(20);
  for (size_t t = 0; t < v.size(); ++t)
    v[t] = 1.75 * static_cast<double>(t) - 3.0;
  const MinimaxFitResult r = MinimaxFit(v.data(), v.size());
  EXPECT_NEAR(r.line.a, 1.75, 1e-9);
  EXPECT_NEAR(r.line.b, -3.0, 1e-9);
  EXPECT_NEAR(r.max_deviation, 0.0, 1e-9);
}

TEST(MinimaxFit, VShapeKnownOptimum) {
  // y = |t - 2| over t=0..4: optimal line is y = 1 (slope 0), max dev 1.
  const std::vector<double> v{2, 1, 0, 1, 2};
  const MinimaxFitResult r = MinimaxFit(v.data(), v.size());
  EXPECT_NEAR(r.line.a, 0.0, 1e-9);
  EXPECT_NEAR(r.line.b, 1.0, 1e-9);
  EXPECT_NEAR(r.max_deviation, 1.0, 1e-9);
}

TEST(MinimaxFit, ReportedDeviationMatchesLine) {
  Rng rng(1);
  for (int trial = 0; trial < 40; ++trial) {
    const size_t l = 3 + rng.UniformInt(60);
    std::vector<double> v(l);
    for (auto& x : v) x = rng.Gaussian(0.0, 5.0);
    const MinimaxFitResult r = MinimaxFit(v.data(), l);
    EXPECT_NEAR(r.max_deviation, MaxDev(v, r.line), 1e-8);
  }
}

TEST(MinimaxFit, NeverWorseThanLeastSquaresOnMaxDeviation) {
  Rng rng(2);
  for (int trial = 0; trial < 60; ++trial) {
    const size_t l = 3 + rng.UniformInt(80);
    std::vector<double> v(l);
    for (auto& x : v) x = rng.Gaussian(0.0, 3.0);
    const MinimaxFitResult mm = MinimaxFit(v.data(), l);
    const Line ls = FitLine(v.data(), l);
    EXPECT_LE(mm.max_deviation, MaxDev(v, ls) + 1e-8) << "l=" << l;
  }
}

TEST(MinimaxFit, BeatsGridSearchWithinTolerance) {
  // The reported optimum must be no worse than any line on a dense grid.
  Rng rng(3);
  std::vector<double> v(25);
  for (auto& x : v) x = rng.Uniform(-4.0, 4.0);
  const MinimaxFitResult mm = MinimaxFit(v.data(), v.size());
  for (double a = -2.0; a <= 2.0; a += 0.01) {
    for (double b = -5.0; b <= 5.0; b += 0.05) {
      EXPECT_LE(mm.max_deviation, MaxDev(v, Line{a, b}) + 1e-6);
    }
  }
}

TEST(MinimaxRefit, LowersEverySegmentDeviation) {
  Rng rng(4);
  std::vector<double> v(200);
  double x = 0.0;
  for (auto& p : v) {
    x += rng.Gaussian();
    p = x;
  }
  Representation rep = SaplaReducer().ReduceToSegments(v, 8);
  const double before = rep.SumMaxDeviation(v);
  std::vector<double> seg_before(rep.num_segments());
  for (size_t i = 0; i < rep.num_segments(); ++i)
    seg_before[i] = rep.SegmentMaxDeviation(v, i);

  MinimaxRefit(&rep, v);
  EXPECT_LE(rep.SumMaxDeviation(v), before + 1e-9);
  for (size_t i = 0; i < rep.num_segments(); ++i)
    EXPECT_LE(rep.SegmentMaxDeviation(v, i), seg_before[i] + 1e-8) << i;
}

TEST(MinimaxRefit, ImprovesAplaToo) {
  Rng rng(5);
  std::vector<double> v(150);
  for (auto& p : v) p = rng.Gaussian(0.0, 2.0);
  Representation rep = AplaReducer().Reduce(v, 18);
  const double before = rep.SumMaxDeviation(v);
  MinimaxRefit(&rep, v);
  EXPECT_LT(rep.SumMaxDeviation(v), before);
}

}  // namespace
}  // namespace sapla
