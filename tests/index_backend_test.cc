// Tests for the named index-backend registry (index/index_backend.h):
// built-in resolution, and the actionable InvalidArgument errors for the
// "isax" stub and for unknown names — both must list every registered
// backend so a caller can correct the request.

#include "index/index_backend.h"

#include <algorithm>
#include <string>

#include <gtest/gtest.h>

#include "reduction/representation.h"
#include "ts/synthetic_archive.h"

namespace sapla {
namespace {

class IndexBackendRegistry : public ::testing::Test {
 protected:
  void SetUp() override {
    SyntheticOptions opt;
    opt.length = 64;
    opt.num_series = 10;
    ds_ = MakeSyntheticDataset(3, opt);
    const auto reducer = MakeReducer(Method::kPaa);
    for (const TimeSeries& ts : ds_.series)
      reps_.push_back(reducer->Reduce(ts.values, 8));
    ctx_.method = Method::kPaa;
    ctx_.m = 8;
    ctx_.dataset = &ds_;
    ctx_.reps = &reps_;
  }

  Dataset ds_;
  std::vector<Representation> reps_;
  IndexBackendContext ctx_;
};

TEST_F(IndexBackendRegistry, BuiltInsResolveByName) {
  for (const std::string name : {"rtree", "dbch"}) {
    auto backend = MakeIndexBackendByName(name, ctx_);
    ASSERT_TRUE(backend.ok()) << backend.status().ToString();
    EXPECT_EQ((*backend)->name(), name);
  }
}

TEST_F(IndexBackendRegistry, NamesAreSortedAndIncludeTheStub) {
  const std::vector<std::string> names = IndexBackendNames();
  EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
  for (const std::string expected : {"dbch", "isax", "rtree"})
    EXPECT_NE(std::find(names.begin(), names.end(), expected), names.end())
        << expected;
}

TEST_F(IndexBackendRegistry, StubReturnsInvalidArgumentListingBackends) {
  const auto result = MakeIndexBackendByName("isax", ctx_);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  const std::string& msg = result.status().message();
  EXPECT_NE(msg.find("\"isax\""), std::string::npos) << msg;
  EXPECT_NE(msg.find("stub"), std::string::npos) << msg;
  // Every registered backend is listed, so the error is actionable.
  for (const std::string& name : IndexBackendNames())
    EXPECT_NE(msg.find("\"" + name + "\""), std::string::npos) << msg;
}

TEST_F(IndexBackendRegistry, UnknownNameReturnsInvalidArgumentListingBackends) {
  const auto result = MakeIndexBackendByName("btree", ctx_);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  const std::string& msg = result.status().message();
  EXPECT_NE(msg.find("unknown index backend \"btree\""), std::string::npos)
      << msg;
  for (const std::string& name : IndexBackendNames())
    EXPECT_NE(msg.find("\"" + name + "\""), std::string::npos) << msg;
}

TEST_F(IndexBackendRegistry, RegisteredFactoryResolvesAndCanBeStubbed) {
  RegisterIndexBackend("custom-test-backend",
                       [](const IndexBackendContext& ctx) {
                         return MakeIndexBackend(IndexKind::kRTree, ctx);
                       });
  auto backend = MakeIndexBackendByName("custom-test-backend", ctx_);
  ASSERT_TRUE(backend.ok()) << backend.status().ToString();
  EXPECT_EQ((*backend)->name(), "rtree");
}

}  // namespace
}  // namespace sapla
