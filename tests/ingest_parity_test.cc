// Ingest-vs-static parity: after ANY interleaving of inserts, deletes,
// TTL expiries, seals and compactions, an IngestController must answer
// every Knn / RangeSearch query with the same neighbors and bit-identical
// distances as a from-scratch SimilarityIndex built over exactly the
// currently visible series — for every Method x IndexKind, serially and
// batched at 1/2/8 threads, and with concurrent readers racing seals and
// compactions (the TSan target). Visibility itself is also pinned down:
// epochs are immutable, tombstones hide sealed deletes until compaction,
// logical TTLs expire deterministically, and corpus_id() changes on every
// publication so the serve cache can never alias epochs.

#include "ingest/ingest_controller.h"

#include <algorithm>
#include <atomic>
#include <limits>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "search/knn.h"
#include "serve/service.h"
#include "ts/synthetic_archive.h"
#include "util/rng.h"

namespace sapla {
namespace {

constexpr size_t kBudget = 12;
constexpr size_t kK = 5;
constexpr size_t kThreadCounts[] = {1, 2, 8};

Dataset SourceData(size_t id = 17, size_t length = 64, size_t count = 90) {
  SyntheticOptions opt;
  opt.length = length;
  opt.num_series = count;
  return MakeSyntheticDataset(id, opt);
}

std::vector<std::vector<double>> SomeQueries(const Dataset& ds) {
  std::vector<std::vector<double>> queries;
  for (const size_t qi : {0u, 7u, 19u, 33u, 58u})
    if (qi < ds.size()) queries.push_back(ds.series[qi].values);
  return queries;
}

/// The parity baseline: a fresh static index over the controller's
/// currently visible series, in ascending-global-id order, searching the
/// same sound-bounds regime every ingest generation is forced into.
struct StaticBaseline {
  Dataset dataset;               // must outlive the index
  std::vector<uint64_t> ids;     // dense static id -> global id
  std::unique_ptr<SimilarityIndex> index;
};

StaticBaseline BuildBaseline(const IngestController& ctrl) {
  StaticBaseline b;
  b.dataset = ctrl.VisibleDataset();
  b.ids = ctrl.VisibleIds();
  EXPECT_EQ(b.dataset.size(), b.ids.size());
  if (b.dataset.size() == 0) return b;
  SimilarityIndex::Options exact;
  exact.dbch_sound_bounds = true;
  b.index = std::make_unique<SimilarityIndex>(ctrl.method(), kBudget,
                                              ctrl.kind(), exact);
  EXPECT_TRUE(b.index->Build(b.dataset).ok());
  return b;
}

/// Maps the baseline's dense ids back to global ids; distances are copied
/// verbatim so the comparison below is bit-for-bit.
std::vector<std::pair<double, size_t>> ToGlobal(
    const KnnResult& r, const std::vector<uint64_t>& ids) {
  std::vector<std::pair<double, size_t>> out;
  out.reserve(r.neighbors.size());
  for (const auto& [dist, dense] : r.neighbors)
    out.emplace_back(dist, static_cast<size_t>(ids[dense]));
  return out;
}

void ExpectParity(const KnnResult& live, const KnnResult& baseline,
                  const std::vector<uint64_t>& ids, const std::string& label) {
  // Global ids are assigned monotonically, so the (distance, global id)
  // order is isomorphic to the baseline's (distance, dense id) order —
  // the remapped neighbor lists must be EXACTLY equal, doubles included.
  EXPECT_EQ(live.neighbors, ToGlobal(baseline, ids)) << label;
  EXPECT_FALSE(live.approximate) << label;
}

/// Checks every query in both Knn and RangeSearch flavours.
void ExpectFullParity(const IngestController& ctrl,
                      const std::vector<std::vector<double>>& queries,
                      const std::string& label) {
  const StaticBaseline b = BuildBaseline(ctrl);
  EXPECT_EQ(ctrl.dataset_size(), b.ids.size()) << label;
  for (size_t qi = 0; qi < queries.size(); ++qi) {
    const std::string ql = label + " q" + std::to_string(qi);
    const auto& q = queries[qi];
    if (!b.index) {
      EXPECT_TRUE(ctrl.Knn(q, kK).neighbors.empty()) << ql;
      EXPECT_TRUE(ctrl.RangeSearch(q, 9.0).neighbors.empty()) << ql;
      continue;
    }
    ExpectParity(ctrl.Knn(q, kK), b.index->Knn(q, kK), b.ids, ql + " knn");
    for (const double radius : {4.0, 9.0, 100.0})
      ExpectParity(ctrl.RangeSearch(q, radius),
                   b.index->RangeSearch(q, radius), b.ids,
                   ql + " range r=" + std::to_string(radius));
  }
}

struct IngestCase {
  Method method;
  IndexKind kind;
};

class IngestSweep : public ::testing::TestWithParam<IngestCase> {
 protected:
  std::unique_ptr<IngestController> Make(const IngestOptions& options,
                                         size_t length = 64) {
    const auto [method, kind] = GetParam();
    return std::make_unique<IngestController>(method, kBudget, kind, length,
                                              options);
  }
};

// Inserts trickling through every lifecycle stage: memtable-only, sealed
// minors, compacted main, then a mixed tail — parity at every checkpoint.
TEST_P(IngestSweep, InsertsMatchStaticAtEveryLifecycleStage) {
  const Dataset src = SourceData();
  const auto queries = SomeQueries(src);
  IngestOptions options;
  options.memtable_max = 8;
  options.compact_min_minors = 3;
  options.num_shards = 2;
  auto ctrl = Make(options);

  ExpectFullParity(*ctrl, queries, "empty");
  size_t inserted = 0;
  for (const TimeSeries& ts : src.series) {
    const auto id = ctrl->Insert(ts.values, ts.label);
    ASSERT_TRUE(id.ok());
    EXPECT_EQ(id.ValueOrDie(), inserted);  // ids are dense while no deletes
    ++inserted;
    if (inserted == 5 || inserted == 8 || inserted == 25 || inserted == 60)
      ExpectFullParity(*ctrl, queries, "after " + std::to_string(inserted));
  }
  ExpectFullParity(*ctrl, queries, "all inserted");
  EXPECT_EQ(ctrl->dataset_size(), src.size());
}

// A scripted adversarial interleaving: inserts and deletes hitting every
// residence (memtable / sealed / main), manual seals and compactions at
// awkward moments, checked against the from-scratch baseline throughout.
TEST_P(IngestSweep, MixedMutationsMatchStatic) {
  const Dataset src = SourceData(23);
  const auto queries = SomeQueries(src);
  IngestOptions options;
  options.memtable_max = 0;       // manual seal
  options.compact_min_minors = 0;  // manual compact
  options.num_shards = 3;
  auto ctrl = Make(options);

  Rng rng(99);
  std::vector<uint64_t> alive;
  size_t next_src = 0;
  const auto insert_one = [&] {
    const TimeSeries& ts = src.series[next_src++ % src.size()];
    const auto id = ctrl->Insert(ts.values, ts.label);
    ASSERT_TRUE(id.ok());
    alive.push_back(id.ValueOrDie());
  };
  const auto delete_random = [&] {
    if (alive.empty()) return;
    const size_t pos = rng.UniformInt(alive.size());
    ASSERT_TRUE(ctrl->Delete(alive[pos]).ok());
    alive.erase(alive.begin() + pos);
  };

  for (int step = 0; step < 8; ++step) {
    for (int i = 0; i < 7; ++i) insert_one();
    delete_random();                 // memtable delete
    ASSERT_TRUE(ctrl->Seal().ok());
    delete_random();                 // sealed delete -> tombstone
    delete_random();
    if (step % 2 == 1) {
      ASSERT_TRUE(ctrl->Compact().ok());
    }
    ExpectFullParity(*ctrl, queries, "step " + std::to_string(step));
    EXPECT_EQ(ctrl->VisibleIds().size(), alive.size());
  }
  // Everything deleted: back to an empty visible set.
  while (!alive.empty()) delete_random();
  ASSERT_TRUE(ctrl->Seal().ok());
  ASSERT_TRUE(ctrl->Compact().ok());
  ExpectFullParity(*ctrl, queries, "drained");
  EXPECT_EQ(ctrl->dataset_size(), 0u);
}

// Batched queries must reproduce the serial answers at every thread count.
TEST_P(IngestSweep, BatchesMatchSerialAtEveryThreadCount) {
  const Dataset src = SourceData(29);
  const auto queries = SomeQueries(src);
  IngestOptions options;
  options.memtable_max = 10;
  options.compact_min_minors = 3;
  auto ctrl = Make(options);
  for (size_t i = 0; i < 47; ++i)
    ASSERT_TRUE(ctrl->Insert(src.series[i].values).ok());
  for (size_t i = 0; i < 47; i += 5) ASSERT_TRUE(ctrl->Delete(i).ok());

  std::vector<KnnResult> serial_knn, serial_range;
  for (const auto& q : queries) {
    serial_knn.push_back(ctrl->Knn(q, kK));
    serial_range.push_back(ctrl->RangeSearch(q, 9.0));
  }
  for (const size_t threads : kThreadCounts) {
    const auto knn = ctrl->KnnBatch(queries, kK, threads);
    const auto range = ctrl->RangeSearchBatch(queries, 9.0, threads);
    for (size_t q = 0; q < queries.size(); ++q) {
      const std::string label =
          "threads " + std::to_string(threads) + " q" + std::to_string(q);
      EXPECT_EQ(knn[q].neighbors, serial_knn[q].neighbors) << label;
      EXPECT_TRUE(knn[q].counters == serial_knn[q].counters) << label;
      EXPECT_EQ(range[q].neighbors, serial_range[q].neighbors) << label;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    MethodsTimesTrees, IngestSweep,
    ::testing::ValuesIn([] {
      std::vector<IngestCase> cases;
      for (const Method method : AllMethods())
        for (const IndexKind kind : {IndexKind::kRTree, IndexKind::kDbchTree})
          cases.push_back({method, kind});
      return cases;
    }()),
    [](const ::testing::TestParamInfo<IngestCase>& info) {
      return MethodName(info.param.method) +
             (info.param.kind == IndexKind::kRTree ? "_RTree" : "_DbchTree");
    });

// ---------------------------------------------------------------------------
// Visibility semantics (single representative method; the mechanics are
// method-independent).

IngestOptions ManualOptions() {
  IngestOptions options;
  options.memtable_max = 0;
  options.compact_min_minors = 0;
  return options;
}

std::unique_ptr<IngestController> SaplaController(
    const IngestOptions& options, size_t length = 64) {
  return std::make_unique<IngestController>(
      Method::kSapla, kBudget, IndexKind::kRTree, length, options);
}

TEST(IngestVisibility, LogicalTtlExpiresDeterministically) {
  const Dataset src = SourceData(31);
  auto ctrl = SaplaController(ManualOptions());
  // seq 0: ttl 3 -> expiry at seq 3: survives its insert plus two more
  // mutations, gone at the third.
  const auto ttl_id = ctrl->Insert(src.series[0].values, -1, 3);
  ASSERT_TRUE(ttl_id.ok());
  EXPECT_EQ(ctrl->dataset_size(), 1u);
  ASSERT_TRUE(ctrl->Insert(src.series[1].values).ok());  // seq -> 2
  EXPECT_EQ(ctrl->dataset_size(), 2u);
  ASSERT_TRUE(ctrl->Insert(src.series[2].values).ok());  // seq -> 3, still ok
  EXPECT_EQ(ctrl->dataset_size(), 3u);
  ASSERT_TRUE(ctrl->Insert(src.series[3].values).ok());  // seq -> 4: expired
  EXPECT_EQ(ctrl->dataset_size(), 3u);
  const auto vis = ctrl->VisibleIds();
  EXPECT_EQ(vis, (std::vector<uint64_t>{1, 2, 3}));

  // An expired entry cannot be deleted (it is not visible)...
  EXPECT_FALSE(ctrl->Delete(ttl_id.ValueOrDie()).ok());
  // ...and stays invisible through seal + compaction (physical drop).
  ASSERT_TRUE(ctrl->Seal().ok());
  ASSERT_TRUE(ctrl->Compact().ok());
  EXPECT_EQ(ctrl->VisibleIds(), vis);
  ExpectFullParity(*ctrl, SomeQueries(src), "post-expiry");
}

TEST(IngestVisibility, ExpiredSealedEntriesAreTombstonedUntilCompaction) {
  const Dataset src = SourceData(32);
  auto ctrl = SaplaController(ManualOptions());
  ASSERT_TRUE(ctrl->Insert(src.series[0].values, -1, 2).ok());
  ASSERT_TRUE(ctrl->Insert(src.series[1].values).ok());
  ASSERT_TRUE(ctrl->Seal().ok());  // seals both; seal is not a mutation
  EXPECT_EQ(ctrl->dataset_size(), 2u);
  ASSERT_TRUE(ctrl->Insert(src.series[2].values).ok());  // seq 3: id 0 gone
  EXPECT_EQ(ctrl->GetEpochStats().tombstones, 1u);
  EXPECT_EQ(ctrl->dataset_size(), 2u);
  ASSERT_TRUE(ctrl->Compact().ok());
  EXPECT_EQ(ctrl->GetEpochStats().tombstones, 0u);
  EXPECT_EQ(ctrl->dataset_size(), 2u);
  ExpectFullParity(*ctrl, SomeQueries(src), "expired-sealed");
}

TEST(IngestVisibility, DeleteSemantics) {
  const Dataset src = SourceData(33);
  auto ctrl = SaplaController(ManualOptions());
  EXPECT_FALSE(ctrl->Delete(0).ok());  // never inserted
  ASSERT_TRUE(ctrl->Insert(src.series[0].values).ok());
  ASSERT_TRUE(ctrl->Delete(0).ok());
  EXPECT_FALSE(ctrl->Delete(0).ok());  // double delete
  EXPECT_EQ(ctrl->dataset_size(), 0u);
  // Ids are never reused after a delete.
  const auto id = ctrl->Insert(src.series[1].values);
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(id.ValueOrDie(), 1u);
}

TEST(IngestVisibility, RejectsMalformedInserts) {
  const Dataset src = SourceData(34);
  auto ctrl = SaplaController(ManualOptions());
  EXPECT_FALSE(ctrl->Insert({1.0, 2.0}).ok());  // wrong length
  std::vector<double> bad = src.series[0].values;
  bad[5] = std::numeric_limits<double>::quiet_NaN();
  EXPECT_FALSE(ctrl->Insert(bad).ok());
  bad[5] = std::numeric_limits<double>::infinity();
  EXPECT_FALSE(ctrl->Insert(bad).ok());
  EXPECT_EQ(ctrl->dataset_size(), 0u);
}

TEST(IngestVisibility, AdmissionControlRefusesWhenMinorsPileUp) {
  const Dataset src = SourceData(35);
  IngestOptions options = ManualOptions();
  options.memtable_max = 2;
  options.max_minors = 2;
  auto ctrl = SaplaController(options);
  size_t accepted = 0, refused = 0;
  for (size_t i = 0; i < 12; ++i) {
    const auto id = ctrl->Insert(src.series[i].values);
    if (id.ok())
      ++accepted;
    else
      ++refused;
  }
  EXPECT_GT(refused, 0u);
  EXPECT_EQ(ctrl->metrics().rejected_overloaded.load(), refused);
  // Compaction drains the minors; inserts flow again.
  ASSERT_TRUE(ctrl->Compact().ok());
  EXPECT_TRUE(ctrl->Insert(src.series[0].values).ok());
  EXPECT_EQ(ctrl->dataset_size(), accepted + 1);
}

TEST(IngestVisibility, EpochStatsAndCorpusIdTrackLifecycle) {
  const Dataset src = SourceData(36);
  auto ctrl = SaplaController(ManualOptions());
  const uint64_t id0 = ctrl->corpus_id();
  ASSERT_TRUE(ctrl->Insert(src.series[0].values).ok());
  const uint64_t id1 = ctrl->corpus_id();
  EXPECT_NE(id1, id0);

  auto stats = ctrl->GetEpochStats();
  EXPECT_EQ(stats.memtable_entries, 1u);
  EXPECT_EQ(stats.minor_generations, 0u);
  EXPECT_EQ(stats.main_entries, 0u);

  ASSERT_TRUE(ctrl->Seal().ok());
  const uint64_t id2 = ctrl->corpus_id();
  EXPECT_NE(id2, id1);  // a seal republishes even though nothing mutated
  stats = ctrl->GetEpochStats();
  EXPECT_EQ(stats.memtable_entries, 0u);
  EXPECT_EQ(stats.minor_generations, 1u);

  ASSERT_TRUE(ctrl->Compact().ok());
  EXPECT_NE(ctrl->corpus_id(), id2);
  stats = ctrl->GetEpochStats();
  EXPECT_EQ(stats.minor_generations, 0u);
  EXPECT_EQ(stats.main_entries, 1u);
  EXPECT_EQ(stats.visible, 1u);
}

TEST(IngestVisibility, IngestGaugesTrackTheEpoch) {
  const Dataset src = SourceData(37);
  IngestOptions options = ManualOptions();
  auto ctrl = SaplaController(options);
  for (size_t i = 0; i < 6; ++i)
    ASSERT_TRUE(ctrl->Insert(src.series[i].values).ok());
  ASSERT_TRUE(ctrl->Seal().ok());
  ASSERT_TRUE(ctrl->Delete(2).ok());

  const IngestMetricsSnapshot snap = SnapshotIngestMetrics(ctrl->metrics());
  EXPECT_EQ(snap.inserts, 6u);
  EXPECT_EQ(snap.deletes, 1u);
  EXPECT_EQ(snap.seals, 1u);
  EXPECT_EQ(snap.memtable_size, 0u);
  EXPECT_EQ(snap.sealed_minors, 1u);
  EXPECT_EQ(snap.tombstones, 1u);
  EXPECT_EQ(snap.visible_series, 5u);

  const std::string prom = IngestMetricsToPrometheus(ctrl->metrics());
  EXPECT_NE(prom.find("sapla_ingest_inserts_total 6"), std::string::npos);
  EXPECT_NE(prom.find("sapla_ingest_visible_series 5"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Serving integration: the controller is a SearchIndex, so QueryService
// fronts it unchanged, and its result cache can never serve across a
// mutation because every publication changes corpus_id().

TEST(IngestServe, CacheNeverServesAcrossAMutation) {
  const Dataset src = SourceData(41);
  auto ctrl = SaplaController(ManualOptions());
  for (size_t i = 0; i < 10; ++i)
    ASSERT_TRUE(ctrl->Insert(src.series[i].values).ok());

  ServeOptions serve;
  serve.cache_capacity = 64;
  serve.max_batch = 1;
  QueryService service(*ctrl, serve);
  const std::vector<double>& q = src.series[3].values;

  const ServeResponse first = service.Knn(q, kK);
  ASSERT_TRUE(first.status.ok());
  EXPECT_FALSE(first.cache_hit);
  const ServeResponse warm = service.Knn(q, kK);
  ASSERT_TRUE(warm.status.ok());
  EXPECT_TRUE(warm.cache_hit);

  ASSERT_TRUE(ctrl->Insert(src.series[10].values).ok());
  const ServeResponse after = service.Knn(q, kK);
  ASSERT_TRUE(after.status.ok());
  EXPECT_FALSE(after.cache_hit) << "served a pre-mutation cache entry";
  service.Stop();
}

// ---------------------------------------------------------------------------
// Concurrency: readers pinning epochs while a writer inserts, deletes,
// seals and compacts. Under TSan this is the data-race canary; under any
// build each reader must only ever observe internally consistent answers
// drawn from SOME published epoch (sorted neighbors, sane sizes, exact
// non-approximate answers).

TEST(IngestConcurrency, ReadersStayConsistentDuringSealsAndCompactions) {
  const Dataset src = SourceData(42, 48, 120);
  IngestOptions options;
  options.memtable_max = 6;
  options.compact_min_minors = 2;
  options.num_shards = 2;
  auto ctrl = SaplaController(options, 48);
  for (size_t i = 0; i < 20; ++i)
    ASSERT_TRUE(ctrl->Insert(src.series[i].values).ok());

  const auto queries = SomeQueries(src);
  std::atomic<bool> stop{false};
  std::vector<std::thread> readers;
  std::vector<int> failures(3, 0);
  for (size_t t = 0; t < 3; ++t) {
    readers.emplace_back([&, t] {
      size_t i = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        const auto& q = queries[(t + i++) % queries.size()];
        const KnnResult r = ctrl->Knn(q, kK);
        if (r.approximate || r.neighbors.size() > kK ||
            !std::is_sorted(r.neighbors.begin(), r.neighbors.end()))
          ++failures[t];
        const KnnResult range = ctrl->RangeSearch(q, 9.0);
        if (!std::is_sorted(range.neighbors.begin(), range.neighbors.end()))
          ++failures[t];
      }
    });
  }

  // Writer: a full lifecycle churn racing the readers.
  for (size_t i = 20; i < 120; ++i) {
    ASSERT_TRUE(ctrl->Insert(src.series[i].values).ok());
    if (i % 7 == 0) {
      ASSERT_TRUE(ctrl->Delete(i - 10).ok());
    }
    if (i % 13 == 0) {
      ASSERT_TRUE(ctrl->Seal().ok());
    }
    if (i % 29 == 0) {
      ASSERT_TRUE(ctrl->Compact().ok());
    }
  }
  stop.store(true);
  for (auto& r : readers) r.join();
  for (size_t t = 0; t < failures.size(); ++t)
    EXPECT_EQ(failures[t], 0) << "reader " << t;

  // Quiesced: full parity over the surviving set.
  ExpectFullParity(*ctrl, queries, "post-churn");
}

}  // namespace
}  // namespace sapla
