// Unit + property tests for the prefix-sum least-squares engine.

#include "geom/line_fit.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "util/rng.h"

namespace sapla {
namespace {

TEST(FitFromSums, TwoPointsExact) {
  // The line through two points is their exact fit.
  const std::vector<double> v{3.0, 7.0};
  const Line line = FitLine(v.data(), 2);
  EXPECT_DOUBLE_EQ(line.a, 4.0);
  EXPECT_DOUBLE_EQ(line.b, 3.0);
}

TEST(FitFromSums, SinglePoint) {
  const std::vector<double> v{5.5};
  const Line line = FitLine(v.data(), 1);
  EXPECT_DOUBLE_EQ(line.a, 0.0);
  EXPECT_DOUBLE_EQ(line.b, 5.5);
}

TEST(FitFromSums, ExactOnCollinearData) {
  // Points already on a line are reproduced exactly.
  std::vector<double> v(17);
  for (size_t t = 0; t < v.size(); ++t)
    v[t] = -2.5 * static_cast<double>(t) + 11.0;
  const Line line = FitLine(v.data(), v.size());
  EXPECT_NEAR(line.a, -2.5, 1e-12);
  EXPECT_NEAR(line.b, 11.0, 1e-12);
}

TEST(PrefixFitter, RangeSumsMatchDirect) {
  Rng rng(1);
  std::vector<double> v(64);
  for (auto& x : v) x = rng.Gaussian();
  PrefixFitter fit(v);
  for (size_t s = 0; s < v.size(); s += 7) {
    for (size_t e = s; e < v.size(); e += 5) {
      double s1 = 0, st = 0, s2 = 0;
      for (size_t t = s; t <= e; ++t) {
        s1 += v[t];
        st += static_cast<double>(t - s) * v[t];
        s2 += v[t] * v[t];
      }
      EXPECT_NEAR(fit.RangeSum(s, e), s1, 1e-9);
      EXPECT_NEAR(fit.RangeLocalTimeSum(s, e), st, 1e-9);
      EXPECT_NEAR(fit.RangeSquareSum(s, e), s2, 1e-9);
    }
  }
}

TEST(PrefixFitter, FitMatchesDirectFit) {
  Rng rng(2);
  std::vector<double> v(100);
  for (auto& x : v) x = rng.Uniform(-10.0, 10.0);
  PrefixFitter fit(v);
  for (size_t s = 0; s < 90; s += 11) {
    for (size_t l = 2; s + l <= v.size(); l += 13) {
      const Line range = fit.Fit(s, s + l - 1);
      const Line direct = FitLine(v.data() + s, l);
      EXPECT_NEAR(range.a, direct.a, 1e-9);
      EXPECT_NEAR(range.b, direct.b, 1e-9);
    }
  }
}

TEST(PrefixFitter, ResidualsSumToZero) {
  // Lemma A.1's Eq. (22): LS residuals of any range sum to zero.
  Rng rng(3);
  std::vector<double> v(80);
  for (auto& x : v) x = rng.Gaussian(2.0, 5.0);
  PrefixFitter fit(v);
  for (size_t s = 0; s < 70; s += 9) {
    const size_t e = std::min(v.size() - 1, s + 17);
    const Line line = fit.Fit(s, e);
    double sum = 0.0;
    for (size_t t = s; t <= e; ++t)
      sum += v[t] - line.At(static_cast<double>(t - s));
    EXPECT_NEAR(sum, 0.0, 1e-8);
  }
}

TEST(PrefixFitter, ResidualSseMatchesDirect) {
  Rng rng(4);
  std::vector<double> v(60);
  for (auto& x : v) x = rng.Gaussian();
  PrefixFitter fit(v);
  for (size_t s = 0; s < 50; s += 7) {
    const size_t e = std::min(v.size() - 1, s + 12);
    const Line line = fit.Fit(s, e);
    double sse = 0.0;
    for (size_t t = s; t <= e; ++t) {
      const double r = v[t] - line.At(static_cast<double>(t - s));
      sse += r * r;
    }
    EXPECT_NEAR(fit.ResidualSse(s, e, line), sse, 1e-8);
  }
}

TEST(PrefixFitter, LeastSquaresIsOptimal) {
  // Perturbing the fitted coefficients never lowers the SSE.
  Rng rng(5);
  std::vector<double> v(40);
  for (auto& x : v) x = rng.Gaussian();
  PrefixFitter fit(v);
  const Line line = fit.Fit(5, 30);
  const double base = fit.ResidualSse(5, 30, line);
  for (int trial = 0; trial < 50; ++trial) {
    Line perturbed = line;
    perturbed.a += rng.Uniform(-0.5, 0.5);
    perturbed.b += rng.Uniform(-0.5, 0.5);
    EXPECT_GE(fit.ResidualSse(5, 30, perturbed) + 1e-9, base);
  }
}

TEST(PrefixFitter, MaxDeviationMatchesScan) {
  Rng rng(6);
  std::vector<double> v(50);
  for (auto& x : v) x = rng.Uniform(-3.0, 3.0);
  PrefixFitter fit(v);
  const Line line = fit.Fit(10, 35);
  double expect = 0.0;
  for (size_t t = 10; t <= 35; ++t)
    expect = std::max(expect,
                      std::fabs(v[t] - line.At(static_cast<double>(t - 10))));
  EXPECT_DOUBLE_EQ(fit.MaxDeviation(10, 35, line), expect);
}

// Property sweep: Eq. (1)-style fits over many random ranges agree with the
// brute-force normal-equation solution.
class FitPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FitPropertyTest, RandomRangeFitsAreLeastSquares) {
  Rng rng(GetParam());
  const size_t n = 32 + rng.UniformInt(200);
  std::vector<double> v(n);
  for (auto& x : v) x = rng.Gaussian(0.0, 4.0);
  PrefixFitter fit(v);
  for (int trial = 0; trial < 20; ++trial) {
    const size_t s = rng.UniformInt(n - 2);
    const size_t e = s + 1 + rng.UniformInt(n - s - 1);
    const Line line = fit.Fit(s, e);
    // Normal equations residual orthogonality: residuals orthogonal to both
    // the constant and the linear basis vector.
    double r_const = 0.0, r_lin = 0.0;
    for (size_t t = s; t <= e; ++t) {
      const double r = v[t] - line.At(static_cast<double>(t - s));
      r_const += r;
      r_lin += static_cast<double>(t - s) * r;
    }
    EXPECT_NEAR(r_const, 0.0, 1e-7);
    EXPECT_NEAR(r_lin, 0.0, 1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FitPropertyTest,
                         ::testing::Values(11, 22, 33, 44, 55, 66, 77, 88));

}  // namespace
}  // namespace sapla
