// Batch-vs-serial equivalence for the parallel query engine: for every
// Method x IndexKind, KnnBatch / RangeSearchBatch must reproduce the
// serial Knn / RangeSearch results exactly — same neighbor pairs (ids and
// bit-identical distances) and the same per-query num_measured — at 1, 2
// and 8 threads. This is the contract that makes the parallel layer a pure
// wall-clock optimization.

#include <vector>

#include <gtest/gtest.h>

#include "search/knn.h"
#include "ts/synthetic_archive.h"
#include "util/parallel.h"

namespace sapla {
namespace {

constexpr size_t kThreadCounts[] = {1, 2, 8};

Dataset SmallDataset(size_t id = 12, size_t n = 128, size_t count = 60) {
  SyntheticOptions opt;
  opt.length = n;
  opt.num_series = count;
  return MakeSyntheticDataset(id, opt);
}

std::vector<std::vector<double>> SomeQueries(const Dataset& ds) {
  std::vector<std::vector<double>> queries;
  for (const size_t qi : {0u, 7u, 19u, 33u, 58u})
    queries.push_back(ds.series[qi].values);
  return queries;
}

void ExpectSameResult(const KnnResult& serial, const KnnResult& batch,
                      const std::string& label) {
  ASSERT_EQ(serial.neighbors.size(), batch.neighbors.size()) << label;
  for (size_t i = 0; i < serial.neighbors.size(); ++i) {
    EXPECT_EQ(serial.neighbors[i].second, batch.neighbors[i].second)
        << label << " rank " << i;
    // Bit-identical, not approximately equal: the batch path runs the very
    // same serial traversal per query.
    EXPECT_EQ(serial.neighbors[i].first, batch.neighbors[i].first)
        << label << " rank " << i;
  }
  EXPECT_EQ(serial.num_measured, batch.num_measured) << label;
}

struct BatchCase {
  Method method;
  IndexKind kind;
};

class BatchSweep : public ::testing::TestWithParam<BatchCase> {};

TEST_P(BatchSweep, KnnBatchMatchesSerial) {
  const auto [method, kind] = GetParam();
  const Dataset ds = SmallDataset();
  SimilarityIndex index(method, 12, kind);
  ASSERT_TRUE(index.Build(ds).ok()) << MethodName(method);

  const std::vector<std::vector<double>> queries = SomeQueries(ds);
  std::vector<KnnResult> serial;
  for (const std::vector<double>& q : queries) serial.push_back(index.Knn(q, 6));

  for (const size_t threads : kThreadCounts) {
    const std::vector<KnnResult> batch = index.KnnBatch(queries, 6, threads);
    ASSERT_EQ(batch.size(), queries.size());
    for (size_t q = 0; q < queries.size(); ++q)
      ExpectSameResult(serial[q], batch[q],
                       MethodName(method) + " knn q" + std::to_string(q) +
                           " threads " + std::to_string(threads));
  }
}

TEST_P(BatchSweep, RangeSearchBatchMatchesSerial) {
  const auto [method, kind] = GetParam();
  const Dataset ds = SmallDataset();
  SimilarityIndex index(method, 12, kind);
  ASSERT_TRUE(index.Build(ds).ok()) << MethodName(method);

  const double radius = 9.0;
  const std::vector<std::vector<double>> queries = SomeQueries(ds);
  std::vector<KnnResult> serial;
  for (const std::vector<double>& q : queries)
    serial.push_back(index.RangeSearch(q, radius));

  for (const size_t threads : kThreadCounts) {
    const std::vector<KnnResult> batch =
        index.RangeSearchBatch(queries, radius, threads);
    ASSERT_EQ(batch.size(), queries.size());
    for (size_t q = 0; q < queries.size(); ++q)
      ExpectSameResult(serial[q], batch[q],
                       MethodName(method) + " range q" + std::to_string(q) +
                           " threads " + std::to_string(threads));
  }
}

std::vector<BatchCase> AllBatchCases() {
  std::vector<BatchCase> cases;
  for (const Method method : AllMethods())
    for (const IndexKind kind : {IndexKind::kRTree, IndexKind::kDbchTree})
      cases.push_back({method, kind});
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    MethodsTimesTrees, BatchSweep, ::testing::ValuesIn(AllBatchCases()),
    [](const ::testing::TestParamInfo<BatchCase>& info) {
      return MethodName(info.param.method) +
             (info.param.kind == IndexKind::kRTree ? "_RTree" : "_DbchTree");
    });

// Parallel Build (the reduction fan-out) must produce an index whose
// queries agree with a serially built one.
TEST(ParallelBuild, MatchesSerialBuild) {
  const Dataset ds = SmallDataset(21);
  for (const IndexKind kind : {IndexKind::kRTree, IndexKind::kDbchTree}) {
    SetNumThreads(1);
    SimilarityIndex serial_index(Method::kSapla, 12, kind);
    ASSERT_TRUE(serial_index.Build(ds).ok());
    SetNumThreads(8);
    SimilarityIndex parallel_index(Method::kSapla, 12, kind);
    ASSERT_TRUE(parallel_index.Build(ds).ok());
    SetNumThreads(0);

    const TreeStats a = serial_index.stats();
    const TreeStats b = parallel_index.stats();
    EXPECT_EQ(a.entries, b.entries);
    EXPECT_EQ(a.height, b.height);
    EXPECT_EQ(a.leaf_nodes, b.leaf_nodes);
    EXPECT_EQ(a.internal_nodes, b.internal_nodes);

    for (const size_t qi : {3u, 31u}) {
      const KnnResult sr = serial_index.Knn(ds.series[qi].values, 5);
      const KnnResult pr = parallel_index.Knn(ds.series[qi].values, 5);
      ExpectSameResult(sr, pr, "build q" + std::to_string(qi));
    }
  }
}

// Concurrent queries against one shared index: the stress case the TSan CI
// job watches. Every query's result must match its serial counterpart.
TEST(ConcurrentQueries, SharedIndexManyThreads) {
  const Dataset ds = SmallDataset(22, 96, 50);
  SimilarityIndex index(Method::kSapla, 12, IndexKind::kDbchTree);
  ASSERT_TRUE(index.Build(ds).ok());

  std::vector<std::vector<double>> queries;
  for (size_t i = 0; i < ds.size(); ++i) queries.push_back(ds.series[i].values);
  std::vector<KnnResult> serial;
  for (const std::vector<double>& q : queries) serial.push_back(index.Knn(q, 4));

  const std::vector<KnnResult> batch = index.KnnBatch(queries, 4, 8);
  for (size_t q = 0; q < queries.size(); ++q)
    ExpectSameResult(serial[q], batch[q], "concurrent q" + std::to_string(q));
}

}  // namespace
}  // namespace sapla
