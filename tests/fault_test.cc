// Fault-injection framework (util/fault.h): determinism (same seed => same
// trigger schedule), probability/count/skip semantics, spec parsing, the
// disabled fast path, and CRC32C vectors (util/crc32c.h).

#include "util/fault.h"

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "util/crc32c.h"

namespace sapla {
namespace {

#ifndef SAPLA_FAULT_DISABLED

class FaultTest : public ::testing::Test {
 protected:
  void TearDown() override { fault::Reset(); }
};

// Records which of `evals` evaluations of one point trigger.
std::vector<bool> Schedule(const char* point, size_t evals) {
  std::vector<bool> hits;
  hits.reserve(evals);
  for (size_t i = 0; i < evals; ++i) hits.push_back(SAPLA_FAULT_HIT(point));
  return hits;
}

TEST_F(FaultTest, DisabledPointsNeverTrigger) {
  EXPECT_FALSE(fault::Enabled());
  EXPECT_FALSE(SAPLA_FAULT_HIT("never/armed"));
  EXPECT_TRUE(fault::Check("never/armed").ok());

  // Armed but not enabled: still silent.
  fault::Configure("a/point", {});
  EXPECT_FALSE(SAPLA_FAULT_HIT("a/point"));
}

TEST_F(FaultTest, UnconfiguredPointsNeverTriggerWhileEnabled) {
  fault::Enable(1);
  EXPECT_FALSE(SAPLA_FAULT_HIT("not/configured"));
  EXPECT_TRUE(fault::Check("not/configured").ok());
}

TEST_F(FaultTest, ProbabilityOneAlwaysTriggers) {
  fault::Enable(7);
  fault::Configure("always", {});
  for (int i = 0; i < 20; ++i) EXPECT_TRUE(SAPLA_FAULT_HIT("always"));
}

TEST_F(FaultTest, SameSeedSameSchedule) {
  fault::PointConfig config;
  config.probability = 0.3;

  fault::Enable(42);
  fault::Configure("p", config);
  const std::vector<bool> first = Schedule("p", 500);

  fault::Reset();
  fault::Enable(42);
  fault::Configure("p", config);
  const std::vector<bool> second = Schedule("p", 500);
  EXPECT_EQ(first, second);

  fault::Reset();
  fault::Enable(43);
  fault::Configure("p", config);
  const std::vector<bool> other_seed = Schedule("p", 500);
  EXPECT_NE(first, other_seed);

  // ~30% of 500 evaluations, with generous slack.
  size_t hits = 0;
  for (const bool h : first) hits += h;
  EXPECT_GT(hits, 100u);
  EXPECT_LT(hits, 220u);
}

TEST_F(FaultTest, DistinctPointsHaveIndependentSchedules) {
  fault::PointConfig config;
  config.probability = 0.5;
  fault::Enable(9);
  fault::Configure("left", config);
  fault::Configure("right", config);
  // Interleave so both see the same evaluation indices.
  std::vector<bool> left, right;
  for (size_t i = 0; i < 200; ++i) {
    left.push_back(SAPLA_FAULT_HIT("left"));
    right.push_back(SAPLA_FAULT_HIT("right"));
  }
  EXPECT_NE(left, right);
}

TEST_F(FaultTest, MaxTriggersCapsAndSkipFirstDelays) {
  fault::Enable(5);
  fault::PointConfig config;
  config.max_triggers = 3;
  config.skip_first = 2;
  fault::Configure("capped", config);

  const std::vector<bool> hits = Schedule("capped", 10);
  const std::vector<bool> expected = {false, false, true, true, true,
                                      false, false, false, false, false};
  EXPECT_EQ(hits, expected);

  const std::vector<fault::PointStats> stats = fault::Stats();
  ASSERT_EQ(stats.size(), 1u);
  EXPECT_EQ(stats[0].name, "capped");
  EXPECT_EQ(stats[0].evaluations, 10u);
  EXPECT_EQ(stats[0].triggers, 3u);
}

TEST_F(FaultTest, CheckReturnsConfiguredStatusCode) {
  fault::Enable(1);
  fault::PointConfig config;
  config.code = StatusCode::kUnavailable;
  fault::Configure("svc", config);
  const Status st = fault::Check("svc");
  EXPECT_EQ(st.code(), StatusCode::kUnavailable);
  EXPECT_NE(st.message().find("svc"), std::string::npos);
}

Status StatusSite() {
  SAPLA_FAULT_POINT("status/site");
  return Status::OK();
}

TEST_F(FaultTest, FaultPointMacroReturnsFromEnclosingFunction) {
  EXPECT_TRUE(StatusSite().ok());
  fault::Enable(1);
  fault::Configure("status/site", {});
  EXPECT_EQ(StatusSite().code(), StatusCode::kIOError);
  fault::Disable();
  EXPECT_TRUE(StatusSite().ok());
}

TEST_F(FaultTest, SpecStringConfiguresPointsAndSeed) {
  const Status st = fault::ConfigureFromSpec(
      "seed=11;io/write=p0.5;q/admit=p1,n2,s1,cunavailable,d0");
  ASSERT_TRUE(st.ok()) << st.ToString();
  EXPECT_TRUE(fault::Enabled());

  // q/admit: skip 1, then trigger twice, then exhausted.
  EXPECT_FALSE(SAPLA_FAULT_HIT("q/admit"));
  EXPECT_EQ(fault::Check("q/admit").code(), StatusCode::kUnavailable);
  EXPECT_TRUE(SAPLA_FAULT_HIT("q/admit"));
  EXPECT_FALSE(SAPLA_FAULT_HIT("q/admit"));

  // io/write: seeded schedule, deterministic against a fresh re-parse.
  const std::vector<bool> first = Schedule("io/write", 100);
  fault::Reset();
  ASSERT_TRUE(fault::ConfigureFromSpec("seed=11;io/write=p0.5").ok());
  EXPECT_EQ(first, Schedule("io/write", 100));
}

TEST_F(FaultTest, MalformedSpecsAreRejectedWithoutArming) {
  EXPECT_FALSE(fault::ConfigureFromSpec("io/write").ok());
  EXPECT_FALSE(fault::ConfigureFromSpec("=p1").ok());
  EXPECT_FALSE(fault::ConfigureFromSpec("seed=abc").ok());
  EXPECT_FALSE(fault::ConfigureFromSpec("p=x1").ok());
  EXPECT_FALSE(fault::ConfigureFromSpec("p=p2.0").ok());
  EXPECT_FALSE(fault::ConfigureFromSpec("p=cnonsense").ok());
  EXPECT_FALSE(fault::Enabled());
  EXPECT_TRUE(fault::Stats().empty());
}

#else  // SAPLA_FAULT_DISABLED

TEST(FaultDisabled, MacrosAreFreeAndInert) {
  EXPECT_FALSE(fault::Enabled());
  EXPECT_FALSE(SAPLA_FAULT_HIT("anything"));
  SAPLA_FAULT_DELAY("anything");
  fault::Enable(1);
  EXPECT_FALSE(fault::Enabled());
  EXPECT_FALSE(fault::ConfigureFromSpec("a=p1").ok());
}

#endif  // SAPLA_FAULT_DISABLED

TEST(Crc32c, KnownVectors) {
  // RFC 3720 / common test vectors for CRC32C.
  EXPECT_EQ(Crc32c("", 0), 0x00000000u);
  EXPECT_EQ(Crc32c("123456789", 9), 0xE3069283u);
  const std::string zeros(32, '\0');
  EXPECT_EQ(Crc32c(zeros.data(), zeros.size()), 0x8A9136AAu);
}

TEST(Crc32c, ExtendMatchesOneShot) {
  const std::string data = "the quick brown fox jumps over the lazy dog";
  const uint32_t whole = Crc32c(data.data(), data.size());
  for (const size_t split : {size_t{0}, size_t{1}, size_t{10}, data.size()}) {
    const uint32_t part = Crc32c(data.data(), split);
    EXPECT_EQ(Crc32cExtend(part, data.data() + split, data.size() - split),
              whole)
        << "split " << split;
  }
}

TEST(Crc32c, DetectsSingleBitFlips) {
  std::string data = "columnar archive section payload bytes";
  const uint32_t good = Crc32c(data.data(), data.size());
  for (size_t i = 0; i < data.size(); ++i) {
    data[i] ^= 0x01;
    EXPECT_NE(Crc32c(data.data(), data.size()), good) << "byte " << i;
    data[i] ^= 0x01;
  }
}

}  // namespace
}  // namespace sapla
