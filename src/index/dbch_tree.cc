#include "index/dbch_tree.h"

#include <algorithm>
#include <limits>
#include <queue>

#include "util/binio.h"
#include "util/status.h"

namespace sapla {

namespace {
// Format tag for serialized DbchTree bytes ("DBT1"); bumped on change.
constexpr uint32_t kDbchBytesMagic = 0x31544244;
}  // namespace

DbchTree::DbchTree(PairDistFn pair_dist, const Options& options)
    : pair_dist_(std::move(pair_dist)), options_(options) {
  SAPLA_DCHECK(options_.min_fill >= 1 &&
               options_.max_fill >= 2 * options_.min_fill - 1);
  nodes_.push_back(Node{});
  root_ = 0;
}

std::vector<size_t> DbchTree::HullCandidates(const Node& node) const {
  if (node.leaf) return node.entries;
  // Internal node: only the children's hull endpoints (paper §5.3 limits
  // the pair computation to the sub-hull constructors).
  std::vector<size_t> cands;
  cands.reserve(2 * node.children.size());
  for (const int c : node.children) {
    const Node& child = nodes_[static_cast<size_t>(c)];
    cands.push_back(child.hull_a);
    if (child.hull_b != child.hull_a) cands.push_back(child.hull_b);
  }
  return cands;
}

void DbchTree::RecomputeHull(int node_id) {
  Node& node = nodes_[static_cast<size_t>(node_id)];
  const std::vector<size_t> cands = HullCandidates(node);
  SAPLA_DCHECK(!cands.empty());
  node.hull_a = node.hull_b = cands[0];
  node.volume = 0.0;
  for (size_t i = 0; i < cands.size(); ++i) {
    for (size_t j = i + 1; j < cands.size(); ++j) {
      const double d = pair_dist_(cands[i], cands[j]);
      if (d > node.volume) {
        node.volume = d;
        node.hull_a = cands[i];
        node.hull_b = cands[j];
      }
    }
  }
  // Endpoint radii for the sound node-distance regime. Leaves measure every
  // entry directly; internal nodes compose through each child's endpoints
  // (d(a, x) <= d(a, child endpoint) + child radius for any x under the
  // child, so the min over the two endpoints is still an upper bound).
  // Children are always recomputed before their parent (insertion returns
  // bottom-up), so child radii are fresh here.
  node.radius_a = node.radius_b = 0.0;
  if (node.leaf) {
    for (const size_t id : node.entries) {
      if (id != node.hull_a)
        node.radius_a = std::max(node.radius_a, pair_dist_(node.hull_a, id));
      if (id != node.hull_b)
        node.radius_b = std::max(node.radius_b, pair_dist_(node.hull_b, id));
    }
  } else {
    for (const int c : node.children) {
      const Node& child = nodes_[static_cast<size_t>(c)];
      const double via_a_a = pair_dist_(node.hull_a, child.hull_a);
      const double via_a_b = child.hull_b == child.hull_a
                                 ? via_a_a
                                 : pair_dist_(node.hull_a, child.hull_b);
      node.radius_a = std::max(node.radius_a,
                               std::min(via_a_a + child.radius_a,
                                        via_a_b + child.radius_b));
      const double via_b_a = pair_dist_(node.hull_b, child.hull_a);
      const double via_b_b = child.hull_b == child.hull_a
                                 ? via_b_a
                                 : pair_dist_(node.hull_b, child.hull_b);
      node.radius_b = std::max(node.radius_b,
                               std::min(via_b_a + child.radius_a,
                                        via_b_b + child.radius_b));
    }
  }
}

void DbchTree::Insert(size_t id) {
  const int sibling = InsertRec(root_, id);
  if (sibling >= 0) {
    Node new_root;
    new_root.leaf = false;
    new_root.children = {root_, sibling};
    nodes_.push_back(std::move(new_root));
    root_ = static_cast<int>(nodes_.size()) - 1;
    RecomputeHull(root_);
  }
  ++num_entries_;
}

int DbchTree::InsertRec(int node_id, size_t entry) {
  {
    Node& node = nodes_[static_cast<size_t>(node_id)];
    if (node.leaf) {
      node.entries.push_back(entry);
      if (node.entries.size() <= options_.max_fill) {
        RecomputeHull(node_id);
        return -1;
      }
      return SplitNode(node_id);
    }
  }

  // Branch picking: the child whose hull volume grows least when `entry`
  // joins it (growth estimated from the entry's distances to the child's
  // hull endpoints); ties broken by the smaller current volume.
  int best_child = -1;
  double best_increase = std::numeric_limits<double>::infinity();
  double best_volume = std::numeric_limits<double>::infinity();
  {
    const Node& node = nodes_[static_cast<size_t>(node_id)];
    for (const int c : node.children) {
      const Node& child = nodes_[static_cast<size_t>(c)];
      const double grown =
          std::max({child.volume, pair_dist_(entry, child.hull_a),
                    pair_dist_(entry, child.hull_b)});
      const double increase = grown - child.volume;
      if (increase < best_increase ||
          (increase == best_increase && child.volume < best_volume)) {
        best_increase = increase;
        best_volume = child.volume;
        best_child = c;
      }
    }
  }
  SAPLA_DCHECK(best_child >= 0);

  const int split = InsertRec(best_child, entry);
  Node& node = nodes_[static_cast<size_t>(node_id)];  // may have moved
  if (split >= 0) node.children.push_back(split);
  if (node.children.size() <= options_.max_fill) {
    RecomputeHull(node_id);
    return -1;
  }
  return SplitNode(node_id);
}

int DbchTree::SplitNode(int node_id) {
  const bool leaf = nodes_[static_cast<size_t>(node_id)].leaf;

  // A representative entry per member: the member itself for leaves, the
  // child's hull_a for internal nodes (used for seed/assignment distances).
  std::vector<size_t> reps;
  std::vector<int> members;  // child node ids for internal splits
  if (leaf) {
    reps = nodes_[static_cast<size_t>(node_id)].entries;
  } else {
    members = nodes_[static_cast<size_t>(node_id)].children;
    for (const int c : members)
      reps.push_back(nodes_[static_cast<size_t>(c)].hull_a);
  }
  const size_t count = reps.size();
  SAPLA_DCHECK(count > options_.max_fill);

  // Seeds: the pair with the maximum lower-bounding distance (§5.3),
  // replacing Guttman's max-area-waste pair.
  size_t seed_a = 0, seed_b = 1;
  double worst = -1.0;
  for (size_t i = 0; i < count; ++i) {
    for (size_t j = i + 1; j < count; ++j) {
      const double d = pair_dist_(reps[i], reps[j]);
      if (d > worst) {
        worst = d;
        seed_a = i;
        seed_b = j;
      }
    }
  }

  // Assign members to the nearer seed, honoring min fill.
  std::vector<size_t> group_a{seed_a}, group_b{seed_b};
  std::vector<std::pair<double, size_t>> rest;  // (d_a - d_b, index)
  for (size_t i = 0; i < count; ++i) {
    if (i == seed_a || i == seed_b) continue;
    const double da = pair_dist_(reps[i], reps[seed_a]);
    const double db = pair_dist_(reps[i], reps[seed_b]);
    rest.emplace_back(da - db, i);
  }
  // Strongest preferences first so min-fill forcing displaces the weakest.
  std::sort(rest.begin(), rest.end(), [](const auto& x, const auto& y) {
    return std::abs(x.first) > std::abs(y.first);
  });
  size_t remaining = rest.size();
  for (const auto& [pref, idx] : rest) {
    if (group_a.size() + remaining == options_.min_fill) {
      group_a.push_back(idx);
    } else if (group_b.size() + remaining == options_.min_fill) {
      group_b.push_back(idx);
    } else if (pref < 0.0 ||
               (pref == 0.0 && group_a.size() <= group_b.size())) {
      group_a.push_back(idx);
    } else {
      group_b.push_back(idx);
    }
    --remaining;
  }

  Node a, b;
  a.leaf = b.leaf = leaf;
  if (leaf) {
    for (const size_t i : group_a) a.entries.push_back(reps[i]);
    for (const size_t i : group_b) b.entries.push_back(reps[i]);
  } else {
    for (const size_t i : group_a) a.children.push_back(members[i]);
    for (const size_t i : group_b) b.children.push_back(members[i]);
  }
  nodes_[static_cast<size_t>(node_id)] = std::move(a);
  nodes_.push_back(std::move(b));
  const int sibling = static_cast<int>(nodes_.size()) - 1;
  RecomputeHull(node_id);
  RecomputeHull(sibling);
  return sibling;
}

double DbchTree::NodeDist(const Node& node,
                          const QueryDistFn& query_dist) const {
  if (options_.sound_bounds) {
    // Endpoint-radius bound: for any entry x under the node, the triangle
    // inequality gives d(q, x) >= d(q, a) - d(a, x) >= d(q, a) - radius_a
    // (and likewise through b). Requires the pairwise distance to be a
    // metric; otherwise no node-level bound is valid and we never prune.
    if (!options_.metric_pair_dist) return 0.0;
    const double du = query_dist(node.hull_a);
    const double dl =
        node.hull_b == node.hull_a ? du : query_dist(node.hull_b);
    return std::max({0.0, du - node.radius_a, dl - node.radius_b});
  }
  // §5.3: inside the hull -> 0; outside -> the smaller hull distance.
  const double du = query_dist(node.hull_a);
  const double dl =
      node.hull_b == node.hull_a ? du : query_dist(node.hull_b);
  if (du < node.volume && dl < node.volume) return 0.0;
  return std::min(du, dl);
}

TreeStats DbchTree::ComputeStats() const {
  TreeStats stats;
  stats.entries = num_entries_;
  size_t leaf_entry_sum = 0;
  struct Item {
    int node;
    size_t depth;
  };
  std::queue<Item> q;
  q.push({root_, 1});
  while (!q.empty()) {
    const Item item = q.front();
    q.pop();
    const Node& node = nodes_[static_cast<size_t>(item.node)];
    stats.height = std::max(stats.height, item.depth);
    if (node.leaf) {
      ++stats.leaf_nodes;
      leaf_entry_sum += node.entries.size();
    } else {
      ++stats.internal_nodes;
      for (const int c : node.children) q.push({c, item.depth + 1});
    }
  }
  stats.avg_leaf_entries =
      stats.leaf_nodes ? static_cast<double>(leaf_entry_sum) /
                             static_cast<double>(stats.leaf_nodes)
                       : 0.0;
  return stats;
}

void DbchTree::BestFirstSearch(const QueryDistFn& query_dist,
                               const VisitFn& visit,
                               SearchCounters* counters) const {
  struct QItem {
    double dist;
    int node;
    size_t level;  // root = 0
    bool operator>(const QItem& o) const { return dist > o.dist; }
  };
  std::priority_queue<QItem, std::vector<QItem>, std::greater<>> pq;
  pq.push({0.0, root_, 0});
  double bound = std::numeric_limits<double>::infinity();
  while (!pq.empty()) {
    const QItem item = pq.top();
    pq.pop();
    if (item.dist > bound) {
      // The popped item and everything still queued were avoided.
      if (counters != nullptr) counters->nodes_pruned += 1 + pq.size();
      break;
    }
    const Node& node = nodes_[static_cast<size_t>(item.node)];
    if (counters != nullptr) counters->CountNodeVisit(item.level, node.leaf);
    if (node.leaf) {
      for (const size_t id : node.entries) bound = visit(id, bound);
    } else {
      for (const int c : node.children) {
        const double d = NodeDist(nodes_[static_cast<size_t>(c)], query_dist);
        if (d <= bound) {
          pq.push({d, c, item.level + 1});
        } else if (counters != nullptr) {
          ++counters->nodes_pruned;
        }
      }
    }
  }
}

std::string DbchTree::Serialize() const {
  std::string out;
  binio::PutU32(&out, kDbchBytesMagic);
  binio::PutU64(&out, num_entries_);
  binio::PutI64(&out, root_);
  binio::PutU64(&out, nodes_.size());
  for (const Node& node : nodes_) {
    binio::PutU32(&out, node.leaf ? 1 : 0);
    binio::PutU64(&out, node.hull_a);
    binio::PutU64(&out, node.hull_b);
    binio::PutF64(&out, node.volume);
    binio::PutF64(&out, node.radius_a);
    binio::PutF64(&out, node.radius_b);
    binio::PutU32(&out, static_cast<uint32_t>(node.count()));
    if (node.leaf) {
      for (const size_t id : node.entries) binio::PutU64(&out, id);
    } else {
      for (const int c : node.children) binio::PutI64(&out, c);
    }
  }
  return out;
}

Status DbchTree::Restore(const std::string& bytes, size_t num_ids) {
  const auto bad = [](const char* what) {
    return Status::InvalidArgument(std::string("dbch restore: ") + what);
  };
  binio::Reader r(bytes);
  if (r.ReadU32() != kDbchBytesMagic) return bad("bad magic");
  const uint64_t num_data = r.ReadU64();
  const int64_t root = r.ReadI64();
  const uint64_t num_nodes = r.ReadU64();
  if (!r.ok()) return bad("truncated header");
  if (num_nodes == 0 || num_nodes > bytes.size()) return bad("node count");
  if (root < 0 || static_cast<uint64_t>(root) >= num_nodes)
    return bad("root out of range");

  std::vector<Node> nodes(num_nodes);
  for (Node& node : nodes) {
    const uint32_t leaf = r.ReadU32();
    node.hull_a = r.ReadU64();
    node.hull_b = r.ReadU64();
    node.volume = r.ReadF64();
    node.radius_a = r.ReadF64();
    node.radius_b = r.ReadF64();
    const uint32_t count = r.ReadU32();
    if (!r.ok() || leaf > 1) return bad("malformed node header");
    node.leaf = leaf == 1;
    if (count > r.remaining() / 8) return bad("entry count");
    // The hull endpoints are corpus ids for leaves and internal nodes alike
    // (internal hulls come from children's endpoints). An empty root —
    // the pre-insert state — legitimately has hull ids of 0.
    if (count > 0 && (node.hull_a >= num_ids || node.hull_b >= num_ids))
      return bad("hull id out of range");
    if (!(node.volume >= 0.0)) return bad("non-finite or negative volume");
    if (!(node.radius_a >= 0.0) || !(node.radius_b >= 0.0))
      return bad("non-finite or negative endpoint radius");
    if (node.leaf) {
      node.entries.resize(count);
      for (size_t& id : node.entries) {
        id = r.ReadU64();
        if (!r.ok()) return bad("truncated entries");
        if (id >= num_ids) return bad("entry id out of range");
      }
    } else {
      if (count == 0) return bad("internal node without children");
      node.children.resize(count);
      for (int& c : node.children) {
        c = static_cast<int>(r.ReadI64());
        if (!r.ok()) return bad("truncated children");
        if (c < 0 || static_cast<uint64_t>(c) >= num_nodes)
          return bad("child node out of range");
      }
    }
  }
  if (r.remaining() != 0) return bad("trailing bytes");

  // Reachability walk: the serialized tree must be exactly the reachable
  // set with no cycles or shared children, and leaf entries must sum to the
  // declared total.
  std::vector<char> visited(num_nodes, 0);
  std::vector<int64_t> stack = {root};
  uint64_t seen_nodes = 0, seen_data = 0;
  while (!stack.empty()) {
    const int64_t id = stack.back();
    stack.pop_back();
    if (visited[static_cast<size_t>(id)]) return bad("node referenced twice");
    visited[static_cast<size_t>(id)] = 1;
    ++seen_nodes;
    const Node& node = nodes[static_cast<size_t>(id)];
    if (node.leaf) {
      seen_data += node.entries.size();
    } else {
      for (const int c : node.children) stack.push_back(c);
    }
  }
  if (seen_nodes != num_nodes) return bad("orphan nodes");
  if (seen_data != num_data) return bad("entry total mismatch");

  nodes_ = std::move(nodes);
  root_ = static_cast<int>(root);
  num_entries_ = static_cast<size_t>(num_data);
  return Status::OK();
}

}  // namespace sapla
