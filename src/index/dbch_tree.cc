#include "index/dbch_tree.h"

#include <algorithm>
#include <limits>
#include <queue>

#include "util/status.h"

namespace sapla {

DbchTree::DbchTree(PairDistFn pair_dist, const Options& options)
    : pair_dist_(std::move(pair_dist)), options_(options) {
  SAPLA_DCHECK(options_.min_fill >= 1 &&
               options_.max_fill >= 2 * options_.min_fill - 1);
  nodes_.push_back(Node{});
  root_ = 0;
}

std::vector<size_t> DbchTree::HullCandidates(const Node& node) const {
  if (node.leaf) return node.entries;
  // Internal node: only the children's hull endpoints (paper §5.3 limits
  // the pair computation to the sub-hull constructors).
  std::vector<size_t> cands;
  cands.reserve(2 * node.children.size());
  for (const int c : node.children) {
    const Node& child = nodes_[static_cast<size_t>(c)];
    cands.push_back(child.hull_a);
    if (child.hull_b != child.hull_a) cands.push_back(child.hull_b);
  }
  return cands;
}

void DbchTree::RecomputeHull(int node_id) {
  Node& node = nodes_[static_cast<size_t>(node_id)];
  const std::vector<size_t> cands = HullCandidates(node);
  SAPLA_DCHECK(!cands.empty());
  node.hull_a = node.hull_b = cands[0];
  node.volume = 0.0;
  for (size_t i = 0; i < cands.size(); ++i) {
    for (size_t j = i + 1; j < cands.size(); ++j) {
      const double d = pair_dist_(cands[i], cands[j]);
      if (d > node.volume) {
        node.volume = d;
        node.hull_a = cands[i];
        node.hull_b = cands[j];
      }
    }
  }
}

void DbchTree::Insert(size_t id) {
  const int sibling = InsertRec(root_, id);
  if (sibling >= 0) {
    Node new_root;
    new_root.leaf = false;
    new_root.children = {root_, sibling};
    nodes_.push_back(std::move(new_root));
    root_ = static_cast<int>(nodes_.size()) - 1;
    RecomputeHull(root_);
  }
  ++num_entries_;
}

int DbchTree::InsertRec(int node_id, size_t entry) {
  {
    Node& node = nodes_[static_cast<size_t>(node_id)];
    if (node.leaf) {
      node.entries.push_back(entry);
      if (node.entries.size() <= options_.max_fill) {
        RecomputeHull(node_id);
        return -1;
      }
      return SplitNode(node_id);
    }
  }

  // Branch picking: the child whose hull volume grows least when `entry`
  // joins it (growth estimated from the entry's distances to the child's
  // hull endpoints); ties broken by the smaller current volume.
  int best_child = -1;
  double best_increase = std::numeric_limits<double>::infinity();
  double best_volume = std::numeric_limits<double>::infinity();
  {
    const Node& node = nodes_[static_cast<size_t>(node_id)];
    for (const int c : node.children) {
      const Node& child = nodes_[static_cast<size_t>(c)];
      const double grown =
          std::max({child.volume, pair_dist_(entry, child.hull_a),
                    pair_dist_(entry, child.hull_b)});
      const double increase = grown - child.volume;
      if (increase < best_increase ||
          (increase == best_increase && child.volume < best_volume)) {
        best_increase = increase;
        best_volume = child.volume;
        best_child = c;
      }
    }
  }
  SAPLA_DCHECK(best_child >= 0);

  const int split = InsertRec(best_child, entry);
  Node& node = nodes_[static_cast<size_t>(node_id)];  // may have moved
  if (split >= 0) node.children.push_back(split);
  if (node.children.size() <= options_.max_fill) {
    RecomputeHull(node_id);
    return -1;
  }
  return SplitNode(node_id);
}

int DbchTree::SplitNode(int node_id) {
  const bool leaf = nodes_[static_cast<size_t>(node_id)].leaf;

  // A representative entry per member: the member itself for leaves, the
  // child's hull_a for internal nodes (used for seed/assignment distances).
  std::vector<size_t> reps;
  std::vector<int> members;  // child node ids for internal splits
  if (leaf) {
    reps = nodes_[static_cast<size_t>(node_id)].entries;
  } else {
    members = nodes_[static_cast<size_t>(node_id)].children;
    for (const int c : members)
      reps.push_back(nodes_[static_cast<size_t>(c)].hull_a);
  }
  const size_t count = reps.size();
  SAPLA_DCHECK(count > options_.max_fill);

  // Seeds: the pair with the maximum lower-bounding distance (§5.3),
  // replacing Guttman's max-area-waste pair.
  size_t seed_a = 0, seed_b = 1;
  double worst = -1.0;
  for (size_t i = 0; i < count; ++i) {
    for (size_t j = i + 1; j < count; ++j) {
      const double d = pair_dist_(reps[i], reps[j]);
      if (d > worst) {
        worst = d;
        seed_a = i;
        seed_b = j;
      }
    }
  }

  // Assign members to the nearer seed, honoring min fill.
  std::vector<size_t> group_a{seed_a}, group_b{seed_b};
  std::vector<std::pair<double, size_t>> rest;  // (d_a - d_b, index)
  for (size_t i = 0; i < count; ++i) {
    if (i == seed_a || i == seed_b) continue;
    const double da = pair_dist_(reps[i], reps[seed_a]);
    const double db = pair_dist_(reps[i], reps[seed_b]);
    rest.emplace_back(da - db, i);
  }
  // Strongest preferences first so min-fill forcing displaces the weakest.
  std::sort(rest.begin(), rest.end(), [](const auto& x, const auto& y) {
    return std::abs(x.first) > std::abs(y.first);
  });
  size_t remaining = rest.size();
  for (const auto& [pref, idx] : rest) {
    if (group_a.size() + remaining == options_.min_fill) {
      group_a.push_back(idx);
    } else if (group_b.size() + remaining == options_.min_fill) {
      group_b.push_back(idx);
    } else if (pref < 0.0 ||
               (pref == 0.0 && group_a.size() <= group_b.size())) {
      group_a.push_back(idx);
    } else {
      group_b.push_back(idx);
    }
    --remaining;
  }

  Node a, b;
  a.leaf = b.leaf = leaf;
  if (leaf) {
    for (const size_t i : group_a) a.entries.push_back(reps[i]);
    for (const size_t i : group_b) b.entries.push_back(reps[i]);
  } else {
    for (const size_t i : group_a) a.children.push_back(members[i]);
    for (const size_t i : group_b) b.children.push_back(members[i]);
  }
  nodes_[static_cast<size_t>(node_id)] = std::move(a);
  nodes_.push_back(std::move(b));
  const int sibling = static_cast<int>(nodes_.size()) - 1;
  RecomputeHull(node_id);
  RecomputeHull(sibling);
  return sibling;
}

double DbchTree::NodeDist(const Node& node,
                          const QueryDistFn& query_dist) const {
  // §5.3: inside the hull -> 0; outside -> the smaller hull distance.
  const double du = query_dist(node.hull_a);
  const double dl =
      node.hull_b == node.hull_a ? du : query_dist(node.hull_b);
  if (du < node.volume && dl < node.volume) return 0.0;
  return std::min(du, dl);
}

TreeStats DbchTree::ComputeStats() const {
  TreeStats stats;
  stats.entries = num_entries_;
  size_t leaf_entry_sum = 0;
  struct Item {
    int node;
    size_t depth;
  };
  std::queue<Item> q;
  q.push({root_, 1});
  while (!q.empty()) {
    const Item item = q.front();
    q.pop();
    const Node& node = nodes_[static_cast<size_t>(item.node)];
    stats.height = std::max(stats.height, item.depth);
    if (node.leaf) {
      ++stats.leaf_nodes;
      leaf_entry_sum += node.entries.size();
    } else {
      ++stats.internal_nodes;
      for (const int c : node.children) q.push({c, item.depth + 1});
    }
  }
  stats.avg_leaf_entries =
      stats.leaf_nodes ? static_cast<double>(leaf_entry_sum) /
                             static_cast<double>(stats.leaf_nodes)
                       : 0.0;
  return stats;
}

void DbchTree::BestFirstSearch(const QueryDistFn& query_dist,
                               const VisitFn& visit,
                               SearchCounters* counters) const {
  struct QItem {
    double dist;
    int node;
    size_t level;  // root = 0
    bool operator>(const QItem& o) const { return dist > o.dist; }
  };
  std::priority_queue<QItem, std::vector<QItem>, std::greater<>> pq;
  pq.push({0.0, root_, 0});
  double bound = std::numeric_limits<double>::infinity();
  while (!pq.empty()) {
    const QItem item = pq.top();
    pq.pop();
    if (item.dist > bound) {
      // The popped item and everything still queued were avoided.
      if (counters != nullptr) counters->nodes_pruned += 1 + pq.size();
      break;
    }
    const Node& node = nodes_[static_cast<size_t>(item.node)];
    if (counters != nullptr) counters->CountNodeVisit(item.level, node.leaf);
    if (node.leaf) {
      for (const size_t id : node.entries) bound = visit(id, bound);
    } else {
      for (const int c : node.children) {
        const double d = NodeDist(nodes_[static_cast<size_t>(c)], query_dist);
        if (d <= bound) {
          pq.push({d, c, item.level + 1});
        } else if (counters != nullptr) {
          ++counters->nodes_pruned;
        }
      }
    }
  }
}

}  // namespace sapla
