#ifndef SAPLA_INDEX_TREE_STATS_H_
#define SAPLA_INDEX_TREE_STATS_H_

// Structural statistics shared by the R-tree and the DBCH-tree — exactly the
// quantities the paper's Figs. 15 and 16 report (internal/leaf node counts,
// total nodes, height, leaf occupancy).

#include <cstddef>

namespace sapla {

struct TreeStats {
  size_t internal_nodes = 0;
  size_t leaf_nodes = 0;
  size_t height = 0;           ///< root-to-leaf levels (leaf-only tree = 1)
  size_t entries = 0;          ///< data entries stored
  double avg_leaf_entries = 0; ///< mean entries per leaf

  size_t total_nodes() const { return internal_nodes + leaf_nodes; }
};

}  // namespace sapla

#endif  // SAPLA_INDEX_TREE_STATS_H_
