#ifndef SAPLA_INDEX_INDEX_BACKEND_H_
#define SAPLA_INDEX_INDEX_BACKEND_H_

// Pluggable index-backend layer.
//
// SimilarityIndex (search/knn.h) used to hard-code its two tree structures
// behind `if (rtree_) ... else dbch_` branches. IndexBackend abstracts what
// the search layer actually needs from an index — insert one series id,
// run a best-first branch-and-bound traversal for one query, report tree
// statistics — so k-NN and range search have a single backend-agnostic
// code path and new structures (iSAX, sharded trees, ...) plug in without
// touching the search layer.
//
// Concurrency contract: Insert is build-time-only and single-threaded. A
// backend is immutable once SimilarityIndex::Build returns; from then on
// BestFirstSearch and ComputeStats must be const and safe to call from many
// threads at once (the batch query APIs fan queries across a pool). Both
// shipped adapters satisfy this: their traversals only read the node
// arrays, and all per-query state lives on the caller's stack.

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "index/tree_stats.h"
#include "obs/counters.h"
#include "reduction/representation.h"
#include "reduction/representation_store.h"
#include "ts/time_series.h"
#include "util/status.h"

namespace sapla {

/// Which index structure backs a SimilarityIndex. (Historically defined in
/// search/knn.h; lives here so backends do not depend on the search layer.)
enum class IndexKind { kRTree, kDbchTree };

/// Registry name of a kind ("rtree" / "dbch").
std::string IndexKindName(IndexKind kind);

/// Tree fill factors; defaults follow the paper's §6 setup (min 2, max 5).
struct IndexBackendOptions {
  size_t min_fill = 2;
  size_t max_fill = 5;
  /// Keep the corpus in the legacy AoS `std::vector<Representation>`
  /// layout instead of the columnar RepresentationStore. Both layouts run
  /// the identical RepView kernels and produce bit-identical results
  /// (tests/store_parity_test.cc); this knob exists for that A/B
  /// validation and for migration benchmarking, not for production use.
  bool legacy_aos_corpus = false;
  /// DBCH only: search with the sound endpoint-radius node distance instead
  /// of the paper's §5.3 heuristic (see index/dbch_tree.h). Makes DBCH
  /// answers exact (partition-invariant), which the sharded serving tier
  /// requires; the default keeps the paper's measured behavior (Fig. 13b).
  bool dbch_sound_bounds = false;
};

/// \brief What a backend is built over: the dataset, its reductions, and
/// the method configuration. The pointed-to objects are owned by the
/// caller (SimilarityIndex) and must outlive the backend; backends resolve
/// ids through them at call time, never copy them. Exactly one of `store`
/// (columnar, canonical) and `reps` (legacy AoS interchange) is non-null.
struct IndexBackendContext {
  Method method = Method::kSapla;
  size_t m = 0;                                       ///< coefficient budget
  const Dataset* dataset = nullptr;                   ///< raw series by id
  const RepresentationStore* store = nullptr;         ///< columnar reductions
  const std::vector<Representation>* reps = nullptr;  ///< legacy AoS corpus
  IndexBackendOptions options;

  /// View of series `id`'s reduction, over whichever corpus layout is set.
  /// Valid for hot stores and the AoS layout only; cold (mmap-backed)
  /// stores require the pinned overload below.
  RepView rep_view(size_t id) const {
    return store != nullptr ? store->view(id) : RepView::Of((*reps)[id]);
  }

  /// Pin-aware view: works for every residency. For cold stores `pin`
  /// keeps the decoded frame alive for as long as the returned view is
  /// used; for hot stores and the AoS layout it is left untouched.
  RepView rep_view(size_t id, StoreReadPin* pin) const {
    return store != nullptr ? store->view(id, pin) : RepView::Of((*reps)[id]);
  }

  /// Largest per-series lower-bound slack across the corpus (0 for
  /// lossless stores and the AoS layout). Node-level bounds measured
  /// against quantized representations can exceed the true lower bound by
  /// up to this much, so backends must subtract it before pruning
  /// (reduction/column_codec.h explains the soundness argument).
  double max_lb_slack() const {
    return store != nullptr ? store->max_lb_slack() : 0.0;
  }
};

/// \brief Abstract index structure over series ids.
class IndexBackend {
 public:
  /// Visits a leaf entry during search; receives the entry id and the
  /// current pruning bound, returns the (possibly tightened) bound.
  using VisitFn = std::function<double(size_t id, double bound)>;

  virtual ~IndexBackend() = default;

  /// Registry name of this backend ("rtree", "dbch", ...).
  virtual std::string name() const = 0;

  /// Inserts series `id` (its representation and raw values are resolved
  /// through the context). Build-time only; not thread-safe.
  virtual void Insert(size_t id) = 0;

  /// Best-first branch-and-bound traversal for one query: nodes are
  /// expanded in increasing lower-bound order and pruned once their bound
  /// exceeds the bound returned by `visit`. `query_rep` is a view of the
  /// query's reduction under the context's (method, m) — the view must stay
  /// valid for the duration of the call. When `counters` is non-null the
  /// backend records its node-level work (expansions by level, pruned
  /// nodes — obs/counters.h) into it; entry-level counters belong to the
  /// search layer's visit callback. Thread-safe after Build.
  virtual void BestFirstSearch(const std::vector<double>& query_raw,
                               const RepView& query_rep, const VisitFn& visit,
                               SearchCounters* counters = nullptr) const = 0;

  /// Structural statistics (Figs. 15/16). Thread-safe after Build.
  virtual TreeStats ComputeStats() const = 0;

  /// Serializes the built tree structure to bytes (search/snapshot.h embeds
  /// them in the index-snapshot format). The encoding is deterministic for
  /// a given tree, and Restore of the produced bytes reconstructs an
  /// identical traversal order. Backends without persistence support
  /// return Unimplemented (the snapshot layer then omits the tree and the
  /// loader falls back to re-insertion).
  virtual Result<std::string> SerializeTree() const {
    return Status::Unimplemented("backend \"" + name() +
                                 "\" does not serialize its tree");
  }

  /// Restores a tree previously produced by SerializeTree on an empty,
  /// freshly constructed backend whose context describes the same corpus.
  /// Validates structure (node/entry ids in range, box dims) and rejects
  /// malformed bytes without modifying the backend.
  virtual Status RestoreTree(const std::string& /*bytes*/) {
    return Status::Unimplemented("backend \"" + name() +
                                 "\" does not restore a serialized tree");
  }
};

/// Creates a backend for one of the built-in kinds.
std::unique_ptr<IndexBackend> MakeIndexBackend(IndexKind kind,
                                               const IndexBackendContext& ctx);

/// Factory signature for registered backends. May return nullptr when the
/// backend is registered but not yet usable (a stub).
using IndexBackendFactory =
    std::function<std::unique_ptr<IndexBackend>(const IndexBackendContext&)>;

/// Registers (or replaces) a named backend factory. Thread-safe.
void RegisterIndexBackend(const std::string& name, IndexBackendFactory factory);

/// Instantiates a registered backend by name. Unknown names and registered
/// stubs (a factory that yields no backend — currently "isax", pending an
/// IndexBackend adapter for IsaxIndex) return InvalidArgument whose message
/// names the offender and lists every registered backend, so callers can
/// surface an actionable error. Built-ins: "rtree", "dbch".
Result<std::unique_ptr<IndexBackend>> MakeIndexBackendByName(
    const std::string& name, const IndexBackendContext& ctx);

/// Names of every registered backend (including stubs), sorted.
std::vector<std::string> IndexBackendNames();

}  // namespace sapla

#endif  // SAPLA_INDEX_INDEX_BACKEND_H_
