#ifndef SAPLA_INDEX_FEATURE_MAP_H_
#define SAPLA_INDEX_FEATURE_MAP_H_

// Mapping representations into the R-tree's vector space, plus the
// query-to-MBR lower-bound distances (the paper's §6 "Implementation").
//
// Per the paper: PAA, PAALM, SAX, SAPLA, APLA and APCA are indexed through
// APCA-style MBRs (each segment contributes a (value, right-endpoint) dim
// pair and the query-to-MBR distance is Keogh's region-based MINDIST); PLA
// uses its own (a_i, b_i) MBR with the Chen et al. distance; CHEBY boxes
// its coefficients, where plain point-to-box distance is a true bound.

#include <vector>

#include "reduction/representation.h"
#include "reduction/representation_store.h"

namespace sapla {

/// \brief Converts representations of one (method, M, n) configuration to
/// feature vectors and computes query-to-MBR lower bounds.
class FeatureMapper {
 public:
  /// \param method reduction method of every representation to be mapped.
  /// \param m coefficient budget (fixes the segment count).
  /// \param n original series length.
  FeatureMapper(Method method, size_t m, size_t n);

  /// Feature-space dimensionality.
  size_t dims() const { return dims_; }

  /// An axis-aligned feature box (lo == hi for point features).
  struct Box {
    std::vector<double> lo, hi;
  };

  /// Maps one representation view (must match method/M/n) to its feature
  /// box. For the APCA-family mapping the value dims span the segment's RAW
  /// min/max (Keogh's construction — this is what makes the region MINDIST
  /// a true lower bound), so the raw series is required; PLA and CHEBY
  /// produce point boxes from the coefficients alone. Both corpus layouts
  /// (columnar store slices and borrowed Representations) go through this
  /// one implementation, so the boxes — and therefore the built trees —
  /// are identical between them.
  Box MapBox(const RepView& rep, const std::vector<double>& raw) const;

  /// Convenience over the AoS interchange type.
  Box MapBox(const Representation& rep, const std::vector<double>& raw) const {
    return MapBox(RepView::Of(rep), raw);
  }

  /// Lower-bound distance from a query to the axis-aligned box [lo, hi].
  /// `query_raw` is the raw series (used by the APCA region MINDIST);
  /// `query_rep` its reduction (used by the PLA and CHEBY variants).
  double MinDist(const std::vector<double>& query_raw, const RepView& query_rep,
                 const std::vector<double>& lo,
                 const std::vector<double>& hi) const;

  /// Convenience over the AoS interchange type.
  double MinDist(const std::vector<double>& query_raw,
                 const Representation& query_rep,
                 const std::vector<double>& lo,
                 const std::vector<double>& hi) const {
    return MinDist(query_raw, RepView::Of(query_rep), lo, hi);
  }

 private:
  double ApcaRegionMinDist(const std::vector<double>& q,
                           const std::vector<double>& lo,
                           const std::vector<double>& hi) const;
  double PlaBoxMinDist(const RepView& q, const std::vector<double>& lo,
                       const std::vector<double>& hi) const;

  Method method_;
  size_t n_;
  size_t num_segments_;
  size_t dims_;
};

/// Minimum of the convex quadratic A*x^2 + B*x*y + C*y^2 over the rectangle
/// [xlo, xhi] x [ylo, yhi] (used by the PLA MBR distance). Exposed for
/// testing.
double ConvexQuadMinOnBox(double A, double B, double C, double xlo, double xhi,
                          double ylo, double yhi);

}  // namespace sapla

#endif  // SAPLA_INDEX_FEATURE_MAP_H_
