#ifndef SAPLA_INDEX_RTREE_H_
#define SAPLA_INDEX_RTREE_H_

// R-tree (Guttman, SIGMOD 1984) with quadratic node splitting.
//
// The paper's baseline index: representations are mapped to feature vectors
// (index/feature_map.h), bounded by axis-aligned MBRs, split by minimum
// area waste, and branches are picked by minimum area enlargement. Fill
// factors default to the paper's §6 configuration (min 2, max 5).
//
// Search is exposed as a generic best-first traversal driven by a
// caller-supplied box lower-bound distance, so each method plugs in its own
// MINDIST (APCA regions, PLA quadratic, CHEBY clamp).

#include <functional>
#include <string>
#include <vector>

#include "index/tree_stats.h"
#include "obs/counters.h"
#include "util/status.h"

namespace sapla {

/// Fill factors; defaults follow the paper's §6 setup (min 2, max 5).
struct RTreeOptions {
  size_t min_fill = 2;
  size_t max_fill = 5;
};

/// \brief Dynamic R-tree over fixed-dimensional points.
class RTree {
 public:
  using Options = RTreeOptions;

  RTree(size_t dims, const Options& options = {});

  /// Inserts a point with a caller-defined id. O(log size) expected.
  void Insert(const std::vector<double>& point, size_t id);

  /// Inserts an axis-aligned box entry (the APCA-family feature mapping
  /// stores per-segment raw value ranges). lo and hi must have dims()
  /// elements with lo[d] <= hi[d].
  void InsertBox(const std::vector<double>& lo, const std::vector<double>& hi,
                 size_t id);

  /// One data box for bulk loading.
  struct BulkEntry {
    std::vector<double> lo, hi;
    size_t id = 0;
  };

  /// \brief STR-style bulk load: replaces the tree's content with a packed
  /// tree over `entries` (levels are built by sorting on the box centers,
  /// cycling the sort dimension per level, and chunking at max_fill).
  /// Produces near-full leaves — the packed baseline for the ingest
  /// experiments. O(n log n).
  void BulkLoadStr(std::vector<BulkEntry> entries);

  size_t size() const { return num_entries_; }
  size_t dims() const { return dims_; }

  /// Structural statistics (Figs. 15/16).
  TreeStats ComputeStats() const;

  /// Lower-bound distance from the current query to a box [lo, hi].
  using BoxDistFn = std::function<double(const std::vector<double>& lo,
                                         const std::vector<double>& hi)>;
  /// Visits a leaf entry during search; receives the entry id and the
  /// current pruning bound, returns the (possibly tightened) bound.
  using VisitFn = std::function<double(size_t id, double bound)>;

  /// Best-first (branch-and-bound) traversal: nodes are expanded in
  /// increasing box-distance order and pruned once their distance exceeds
  /// the bound returned by `visit`. GEMINI's k-NN maps directly onto this.
  /// When `counters` is non-null the traversal records node expansions by
  /// level and node-level pruning into it (obs/counters.h).
  void BestFirstSearch(const BoxDistFn& box_dist, const VisitFn& visit,
                       SearchCounters* counters = nullptr) const;

  /// Deterministic byte encoding of the full tree structure (every node's
  /// entries with their boxes, child links and data ids). Restore of the
  /// produced bytes reconstructs a structurally identical tree.
  std::string Serialize() const;

  /// Replaces this tree's content with a previously serialized one. The
  /// tree must have the same dims() as the serialized one; `num_ids`
  /// bounds the valid data ids (the corpus size). Any inconsistency —
  /// truncation, out-of-range node/data ids, wrong box dimensionality,
  /// malformed lo/hi — is rejected without modifying the tree.
  Status Restore(const std::string& bytes, size_t num_ids);

 private:
  struct Entry {
    std::vector<double> lo, hi;
    int child = -1;   // node id, or -1 for a data entry
    size_t id = 0;    // data id when child == -1
  };
  struct Node {
    bool leaf = true;
    std::vector<Entry> entries;
  };

  double Area(const Entry& e) const;
  double Enlargement(const Entry& box, const Entry& add) const;
  static void Extend(Entry* box, const Entry& add);
  Entry BoundingEntry(int node_id) const;

  // Returns the id of a new sibling if the subtree split, else -1.
  int InsertRec(int node_id, const Entry& entry);
  int SplitNode(int node_id, const Entry& extra);

  size_t dims_;
  Options options_;
  std::vector<Node> nodes_;
  int root_ = -1;
  size_t num_entries_ = 0;
};

}  // namespace sapla

#endif  // SAPLA_INDEX_RTREE_H_
