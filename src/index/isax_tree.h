#ifndef SAPLA_INDEX_ISAX_TREE_H_
#define SAPLA_INDEX_ISAX_TREE_H_

// iSAX index (Shieh & Keogh; iSAX 2+ is the paper's reference [3] for
// billion-scale series collections).
//
// Extension substrate: an indexable, variable-cardinality symbolic index.
// Every series is symbolized at the maximum cardinality (2^max_bits per
// segment); tree nodes hold a PREFIX of those symbols (b_i bits for segment
// i). An overflowing leaf splits by adding one bit to the segment with the
// fewest bits, partitioning its entries by that bit. The query-to-node
// distance is the PAA/SAX MINDIST against the node's breakpoint box — a
// true lower bound on z-normalized data — so best-first search yields exact
// k-NN, and descending straight to the query's own leaf gives iSAX's
// hallmark fast approximate search.

#include <cstdint>
#include <memory>
#include <vector>

#include "index/tree_stats.h"
#include "search/knn.h"
#include "ts/time_series.h"
#include "util/status.h"

namespace sapla {

/// Index parameters (word length = SAX segments; cardinality 2^bits).
struct IsaxOptions {
  size_t word_length = 8;          ///< SAX segments per word
  size_t max_cardinality_bits = 8; ///< bits per segment
  size_t leaf_capacity = 10;       ///< entries per leaf before splitting
};

/// \brief Variable-cardinality symbolic tree index over one dataset.
class IsaxIndex {
 public:
  using Options = IsaxOptions;

  explicit IsaxIndex(const Options& options = {});

  /// Indexes every series of `dataset` (kept alive by the caller).
  Status Build(const Dataset& dataset);

  /// Exact k-NN via best-first search with the MINDIST lower bound.
  KnnResult Knn(const std::vector<double>& query, size_t k) const;

  /// Approximate k-NN: evaluates only the single leaf the query's own word
  /// descends to (plus nothing else) — iSAX's constant-leaf heuristic.
  KnnResult KnnApproximate(const std::vector<double>& query, size_t k) const;

  TreeStats ComputeStats() const;
  size_t size() const { return num_entries_; }

 private:
  struct Entry {
    size_t id;
    std::vector<uint8_t> word;  // symbols at max cardinality
  };
  struct Node {
    std::vector<uint8_t> bits;     // prefix length per segment
    std::vector<uint8_t> prefix;   // symbol prefix per segment (b_i bits)
    bool leaf = true;
    int child0 = -1, child1 = -1;  // split children (bit 0 / bit 1)
    size_t split_segment = 0;
    std::vector<Entry> entries;    // leaf payload
  };

  std::vector<uint8_t> Symbolize(const std::vector<double>& values) const;
  std::vector<double> PaaMeans(const std::vector<double>& values) const;
  double NodeMinDist(const Node& node, const std::vector<double>& paa) const;
  void InsertEntry(int node_id, Entry entry);
  void SplitLeaf(int node_id);
  int DescendLeaf(const std::vector<uint8_t>& word) const;

  Options options_;
  const Dataset* dataset_ = nullptr;
  std::vector<Node> nodes_;
  int root_ = -1;
  size_t num_entries_ = 0;
  // breakpoints_[b] = SAX breakpoints at cardinality 2^(b+1).
  std::vector<std::vector<double>> breakpoints_;
};

}  // namespace sapla

#endif  // SAPLA_INDEX_ISAX_TREE_H_
