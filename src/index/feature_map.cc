#include "index/feature_map.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "distance/distance.h"
#include "reduction/pla.h"
#include "util/status.h"

namespace sapla {
namespace {

double ClampGap(double v, double lo, double hi) {
  if (v < lo) return lo - v;
  if (v > hi) return v - hi;
  return 0.0;
}

}  // namespace

double ConvexQuadMinOnBox(double A, double B, double C, double xlo, double xhi,
                          double ylo, double yhi) {
  // f(x, y) = A x^2 + B x y + C y^2 is convex (A, C >= 0, 4AC >= B^2 for the
  // Eq. 12 coefficients); its unconstrained minimum is the origin.
  if (xlo <= 0.0 && 0.0 <= xhi && ylo <= 0.0 && 0.0 <= yhi) return 0.0;
  auto eval = [&](double x, double y) { return A * x * x + B * x * y + C * y * y; };
  double best = std::numeric_limits<double>::infinity();
  // Vertical edges x = const: minimize over y.
  for (const double x : {xlo, xhi}) {
    const double y = C > 0.0 ? std::clamp(-B * x / (2.0 * C), ylo, yhi) : ylo;
    best = std::min(best, eval(x, y));
  }
  // Horizontal edges y = const: minimize over x.
  for (const double y : {ylo, yhi}) {
    const double x = A > 0.0 ? std::clamp(-B * y / (2.0 * A), xlo, xhi) : xlo;
    best = std::min(best, eval(x, y));
  }
  return best;
}

FeatureMapper::FeatureMapper(Method method, size_t m, size_t n)
    : method_(method), n_(n), num_segments_(SegmentsForBudget(method, m)) {
  switch (method_) {
    case Method::kCheby:
      dims_ = std::min(num_segments_, n_);
      break;
    case Method::kDft:
      // (re, im) per kept bin.
      dims_ = 2 * std::min(std::max<size_t>(1, m / 2), n_);
      break;
    default:
      // (value, right endpoint) per segment — the APCA mapping — and
      // (a, b) per segment for PLA: both are 2 dims per segment.
      dims_ = 2 * std::min(num_segments_, n_);
      break;
  }
}

FeatureMapper::Box FeatureMapper::MapBox(const RepView& rep,
                                         const std::vector<double>& raw) const {
  SAPLA_DCHECK(rep.method() == method_ && rep.n() == n_);
  Box box;
  if (method_ == Method::kCheby || method_ == Method::kDft) {
    box.lo.assign(rep.coeffs(), rep.coeffs() + rep.num_coeffs());
    box.lo.resize(dims_, 0.0);
    box.hi = box.lo;
    return box;
  }
  box.lo.reserve(dims_);
  box.hi.reserve(dims_);
  if (method_ == Method::kPla) {
    for (size_t i = 0; i < rep.num_segments(); ++i) {
      box.lo.push_back(rep.seg_a(i));
      box.lo.push_back(rep.seg_b(i));
    }
    box.hi = box.lo;
  } else {
    // APCA construction: per segment, the RAW value range (every raw point
    // of the member lies inside it — the key to the MINDIST lower bound)
    // paired with the right endpoint.
    SAPLA_DCHECK(raw.size() == n_);
    for (size_t i = 0; i < rep.num_segments(); ++i) {
      const size_t s = rep.segment_start(i);
      double vmin = raw[s], vmax = raw[s];
      for (size_t t = s + 1; t <= rep.seg_r(i); ++t) {
        vmin = std::min(vmin, raw[t]);
        vmax = std::max(vmax, raw[t]);
      }
      const double r = static_cast<double>(rep.seg_r(i));
      box.lo.push_back(vmin);
      box.hi.push_back(vmax);
      box.lo.push_back(r);
      box.hi.push_back(r);
    }
  }
  // Short series can yield fewer segments than the budget; pad by repeating
  // the final segment pair so all boxes share the tree's dimensionality.
  while (box.lo.size() < dims_) {
    box.lo.push_back(box.lo[box.lo.size() - 2]);
    box.hi.push_back(box.hi[box.hi.size() - 2]);
  }
  return box;
}

double FeatureMapper::ApcaRegionMinDist(const std::vector<double>& q,
                                        const std::vector<double>& lo,
                                        const std::vector<double>& hi) const {
  // Keogh's APCA MBR MINDIST: region i spans time
  //   [ lo[2(i-1)+1] + 1 , hi[2i+1] ]   (region 0 starts at t = 0)
  // with value range [ lo[2i], hi[2i] ]. Every t is covered by >= 1 region;
  // its contribution is the min squared gap to any covering region's value
  // range. Both region boundaries are nondecreasing in i, so a two-pointer
  // sweep gives O(n + N + total overlap).
  const size_t num_regions = dims_ / 2;
  auto tmin = [&](size_t i) -> double {
    return i == 0 ? 0.0 : lo[2 * (i - 1) + 1] + 1.0;
  };
  auto tmax = [&](size_t i) -> double { return hi[2 * i + 1]; };

  double sum = 0.0;
  size_t j_lo = 0;
  for (size_t t = 0; t < q.size(); ++t) {
    const double td = static_cast<double>(t);
    while (j_lo + 1 < num_regions && tmax(j_lo) < td) ++j_lo;
    double best = std::numeric_limits<double>::infinity();
    for (size_t j = j_lo; j < num_regions && tmin(j) <= td; ++j) {
      if (tmax(j) < td) continue;
      const double gap = ClampGap(q[t], lo[2 * j], hi[2 * j]);
      best = std::min(best, gap * gap);
      if (best == 0.0) break;
    }
    if (best == std::numeric_limits<double>::infinity()) best = 0.0;
    sum += best;
  }
  return std::sqrt(sum);
}

double FeatureMapper::PlaBoxMinDist(const RepView& q,
                                    const std::vector<double>& lo,
                                    const std::vector<double>& hi) const {
  // Chen et al.: per equal-length segment, the squared distance between two
  // lines is the convex quadratic of Eq. (12) in (da, db); minimize it over
  // the MBR's (a, b) rectangle relative to the query's coefficients.
  const std::vector<size_t> ends = EqualLengthEndpoints(n_, num_segments_);
  double sum = 0.0;
  size_t start = 0;
  for (size_t i = 0; i < ends.size() && 2 * i + 1 < dims_; ++i) {
    const double l = static_cast<double>(ends[i] - start + 1);
    const double A = l * (l - 1.0) * (2.0 * l - 1.0) / 6.0;
    const double B = l * (l - 1.0);
    const double C = l;
    const double qa = q.seg_a(i);
    const double qb = q.seg_b(i);
    sum += ConvexQuadMinOnBox(A, B, C, lo[2 * i] - qa, hi[2 * i] - qa,
                              lo[2 * i + 1] - qb, hi[2 * i + 1] - qb);
    start = ends[i] + 1;
  }
  return std::sqrt(sum);
}

double FeatureMapper::MinDist(const std::vector<double>& query_raw,
                              const RepView& query_rep,
                              const std::vector<double>& lo,
                              const std::vector<double>& hi) const {
  SAPLA_DCHECK(lo.size() == dims_ && hi.size() == dims_);
  switch (method_) {
    case Method::kCheby: {
      double sum = 0.0;
      for (size_t i = 0; i < dims_ && i < query_rep.num_coeffs(); ++i) {
        const double gap = ClampGap(query_rep.coeffs()[i], lo[i], hi[i]);
        sum += gap * gap;
      }
      return std::sqrt(sum);
    }
    case Method::kDft: {
      // Conjugate-mirror weighting: interior bins count twice (cf. DftDist).
      double sum = 0.0;
      for (size_t i = 0; i < dims_ && i < query_rep.num_coeffs(); ++i) {
        const size_t k = i / 2;
        const double weight = (k == 0 || 2 * k == n_) ? 1.0 : 2.0;
        const double gap = ClampGap(query_rep.coeffs()[i], lo[i], hi[i]);
        sum += weight * gap * gap;
      }
      return std::sqrt(sum);
    }
    case Method::kPla:
      return PlaBoxMinDist(query_rep, lo, hi);
    default:
      return ApcaRegionMinDist(query_raw, lo, hi);
  }
}

}  // namespace sapla
