#include "index/index_backend.h"

#include <map>
#include <mutex>
#include <utility>

#include "distance/kernels.h"
#include "index/dbch_tree.h"
#include "index/feature_map.h"
#include "index/rtree.h"

namespace sapla {
namespace {

// R-tree adapter: series ids are mapped to per-method feature boxes
// (APCA raw-range MBRs, PLA coefficient boxes, CHEBY clamp) and queries
// prune with the mapper's MINDIST. Corpus access goes through
// ctx.rep_view(id), so the adapter is agnostic to the columnar-vs-AoS
// layout choice.
class RTreeBackend : public IndexBackend {
 public:
  explicit RTreeBackend(const IndexBackendContext& ctx)
      : ctx_(ctx),
        mapper_(ctx.method, ctx.m, ctx.dataset->length()),
        tree_(mapper_.dims(),
              RTree::Options{ctx.options.min_fill, ctx.options.max_fill}) {}

  std::string name() const override { return "rtree"; }

  void Insert(size_t id) override {
    StoreReadPin pin;  // keeps a cold store's frame alive through MapBox
    const FeatureMapper::Box box =
        mapper_.MapBox(ctx_.rep_view(id, &pin), ctx_.dataset->series[id].values);
    tree_.InsertBox(box.lo, box.hi, id);
  }

  void BestFirstSearch(const std::vector<double>& query_raw,
                       const RepView& query_rep, const VisitFn& visit,
                       SearchCounters* counters) const override {
    // Over a quantized corpus MINDIST lower-bounds the *quantized* leaf
    // bound, which may exceed the true one by up to the store's recorded
    // slack — loosen node bounds by that much so pruning stays sound.
    const double slack = ctx_.max_lb_slack();
    tree_.BestFirstSearch(
        [&](const std::vector<double>& lo, const std::vector<double>& hi) {
          const double d = mapper_.MinDist(query_raw, query_rep, lo, hi);
          return slack > 0.0 ? std::max(0.0, d - slack) : d;
        },
        visit, counters);
  }

  TreeStats ComputeStats() const override { return tree_.ComputeStats(); }

  Result<std::string> SerializeTree() const override {
    return tree_.Serialize();
  }

  Status RestoreTree(const std::string& bytes) override {
    return tree_.Restore(bytes, ctx_.dataset->size());
  }

 private:
  IndexBackendContext ctx_;
  FeatureMapper mapper_;
  RTree tree_;
};

// DBCH-tree adapter: the tree stores bare ids and measures everything with
// the method's lower-bounding distance over stored representation views.
class DbchBackend : public IndexBackend {
 public:
  explicit DbchBackend(const IndexBackendContext& ctx)
      : ctx_(ctx),
        tree_(
            [this](size_t a, size_t b) {
              // Build-time only (single-threaded Insert), so one scratch
              // amortizes the Dist_PAR endpoint buffer across the build.
              // The pair distance deliberately stays UNADJUSTED by any
              // quantization slack: it defines center/radius geometry in
              // the quantized metric space, and the query-side closure
              // below absorbs the whole slack once.
              StoreReadPin pa, pb;
              return LowerBoundDistanceView(ctx_.rep_view(a, &pa),
                                            ctx_.rep_view(b, &pb),
                                            &build_scratch_);
            },
            // SAX MINDIST violates the triangle inequality, so under sound
            // bounds its node-level pruning must stay off (dbch_tree.h).
            DbchTree::Options{ctx.options.min_fill, ctx.options.max_fill,
                              ctx.options.dbch_sound_bounds,
                              /*metric_pair_dist=*/ctx.method !=
                                  Method::kSax}) {}

  std::string name() const override { return "dbch"; }

  void Insert(size_t id) override { tree_.Insert(id); }

  void BestFirstSearch(const std::vector<double>& /*query_raw*/,
                       const RepView& query_rep, const VisitFn& visit,
                       SearchCounters* counters) const override {
    DistanceScratch scratch;  // per-query, lives on this caller's stack
    // Node bounds derive from d(query, center) - radius, both measured in
    // the quantized metric. The quantized query-center distance can
    // overstate the true leaf lower bound by at most the store's slack
    // (the build radii are consistent quantized-space measurements and
    // need no adjustment), so subtracting it here keeps pruning sound.
    const double slack = ctx_.max_lb_slack();
    tree_.BestFirstSearch(
        [&](size_t id) {
          StoreReadPin pin;
          const double d =
              LowerBoundDistanceView(query_rep, ctx_.rep_view(id, &pin), &scratch);
          return slack > 0.0 ? std::max(0.0, d - slack) : d;
        },
        visit, counters);
  }

  TreeStats ComputeStats() const override { return tree_.ComputeStats(); }

  Result<std::string> SerializeTree() const override {
    return tree_.Serialize();
  }

  Status RestoreTree(const std::string& bytes) override {
    return tree_.Restore(bytes, ctx_.dataset->size());
  }

 private:
  IndexBackendContext ctx_;
  DistanceScratch build_scratch_;
  DbchTree tree_;
};

std::mutex& RegistryMutex() {
  static std::mutex mu;
  return mu;
}

std::map<std::string, IndexBackendFactory>& Registry() {
  static auto* registry = [] {
    auto* r = new std::map<std::string, IndexBackendFactory>;
    (*r)["rtree"] = [](const IndexBackendContext& ctx) {
      return std::unique_ptr<IndexBackend>(new RTreeBackend(ctx));
    };
    (*r)["dbch"] = [](const IndexBackendContext& ctx) {
      return std::unique_ptr<IndexBackend>(new DbchBackend(ctx));
    };
    // Registration point for the iSAX extension (index/isax_tree.h): the
    // adapter is pending (IsaxIndex symbolizes internally and has no
    // per-method representation hook yet), so the name resolves but the
    // factory yields no backend.
    (*r)["isax"] = [](const IndexBackendContext&) {
      return std::unique_ptr<IndexBackend>();
    };
    return r;
  }();
  return *registry;
}

}  // namespace

std::string IndexKindName(IndexKind kind) {
  return kind == IndexKind::kRTree ? "rtree" : "dbch";
}

std::unique_ptr<IndexBackend> MakeIndexBackend(IndexKind kind,
                                               const IndexBackendContext& ctx) {
  // The built-in kinds always resolve unless someone replaced their
  // registration with a stub, which is a programming error.
  return std::move(MakeIndexBackendByName(IndexKindName(kind), ctx))
      .ValueOrDie();
}

void RegisterIndexBackend(const std::string& name,
                          IndexBackendFactory factory) {
  std::lock_guard<std::mutex> lock(RegistryMutex());
  Registry()[name] = std::move(factory);
}

namespace {

std::string RegisteredNamesForError() {
  std::string out;
  for (const std::string& name : IndexBackendNames()) {
    if (!out.empty()) out += ", ";
    out += "\"" + name + "\"";
  }
  return out;
}

}  // namespace

Result<std::unique_ptr<IndexBackend>> MakeIndexBackendByName(
    const std::string& name, const IndexBackendContext& ctx) {
  IndexBackendFactory factory;
  {
    std::lock_guard<std::mutex> lock(RegistryMutex());
    const auto it = Registry().find(name);
    if (it != Registry().end()) factory = it->second;
  }
  if (!factory) {
    return Status::InvalidArgument("unknown index backend \"" + name +
                                   "\"; registered backends: " +
                                   RegisteredNamesForError());
  }
  std::unique_ptr<IndexBackend> backend = factory(ctx);
  if (backend == nullptr) {
    return Status::InvalidArgument(
        "index backend \"" + name +
        "\" is registered but has no usable implementation (stub); "
        "registered backends: " +
        RegisteredNamesForError());
  }
  return backend;
}

std::vector<std::string> IndexBackendNames() {
  std::lock_guard<std::mutex> lock(RegistryMutex());
  std::vector<std::string> names;
  for (const auto& [name, factory] : Registry()) names.push_back(name);
  return names;
}

}  // namespace sapla
