#include "index/rtree.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>

#include "util/binio.h"
#include "util/status.h"

namespace sapla {

namespace {
// Format tag for serialized RTree bytes ("RTB1"); bumped on layout change.
constexpr uint32_t kRTreeBytesMagic = 0x31425452;
}  // namespace

RTree::RTree(size_t dims, const Options& options)
    : dims_(dims), options_(options) {
  SAPLA_DCHECK(dims_ >= 1);
  SAPLA_DCHECK(options_.min_fill >= 1 &&
               options_.max_fill >= 2 * options_.min_fill - 1);
  nodes_.push_back(Node{});
  root_ = 0;
}

double RTree::Area(const Entry& e) const {
  // Product areas degenerate to 0 in high dimensions whenever one extent is
  // 0; the usual robust choice is the margin-augmented product. We use the
  // sum-of-extents (margin) — monotone under extension, no underflow.
  double margin = 0.0;
  for (size_t d = 0; d < dims_; ++d) margin += e.hi[d] - e.lo[d];
  return margin;
}

void RTree::Extend(Entry* box, const Entry& add) {
  for (size_t d = 0; d < box->lo.size(); ++d) {
    box->lo[d] = std::min(box->lo[d], add.lo[d]);
    box->hi[d] = std::max(box->hi[d], add.hi[d]);
  }
}

double RTree::Enlargement(const Entry& box, const Entry& add) const {
  Entry grown = box;
  Extend(&grown, add);
  return Area(grown) - Area(box);
}

RTree::Entry RTree::BoundingEntry(int node_id) const {
  const Node& node = nodes_[static_cast<size_t>(node_id)];
  SAPLA_DCHECK(!node.entries.empty());
  Entry box = node.entries[0];
  box.child = node_id;
  for (size_t i = 1; i < node.entries.size(); ++i)
    Extend(&box, node.entries[i]);
  return box;
}

void RTree::Insert(const std::vector<double>& point, size_t id) {
  InsertBox(point, point, id);
}

void RTree::InsertBox(const std::vector<double>& lo,
                      const std::vector<double>& hi, size_t id) {
  SAPLA_DCHECK(lo.size() == dims_ && hi.size() == dims_);
  Entry e;
  e.lo = lo;
  e.hi = hi;
  e.child = -1;
  e.id = id;
  const int sibling = InsertRec(root_, e);
  if (sibling >= 0) {
    // Root split: grow the tree by one level.
    Node new_root;
    new_root.leaf = false;
    new_root.entries.push_back(BoundingEntry(root_));
    new_root.entries.push_back(BoundingEntry(sibling));
    nodes_.push_back(std::move(new_root));
    root_ = static_cast<int>(nodes_.size()) - 1;
  }
  ++num_entries_;
}

int RTree::InsertRec(int node_id, const Entry& entry) {
  Node& node = nodes_[static_cast<size_t>(node_id)];
  if (node.leaf) {
    if (node.entries.size() < options_.max_fill) {
      node.entries.push_back(entry);
      return -1;
    }
    return SplitNode(node_id, entry);
  }

  // ChooseSubtree: least enlargement, ties by smaller area.
  size_t best = 0;
  double best_enl = std::numeric_limits<double>::infinity();
  double best_area = std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < node.entries.size(); ++i) {
    const double enl = Enlargement(node.entries[i], entry);
    const double area = Area(node.entries[i]);
    if (enl < best_enl || (enl == best_enl && area < best_area)) {
      best = i;
      best_enl = enl;
      best_area = area;
    }
  }
  const int child = node.entries[best].child;
  const int split = InsertRec(child, entry);
  // Note: nodes_ may have reallocated; re-take the reference.
  Node& node2 = nodes_[static_cast<size_t>(node_id)];
  node2.entries[best] = BoundingEntry(child);
  if (split < 0) return -1;
  const Entry sibling_box = BoundingEntry(split);
  if (node2.entries.size() < options_.max_fill) {
    node2.entries.push_back(sibling_box);
    return -1;
  }
  return SplitNode(node_id, sibling_box);
}

int RTree::SplitNode(int node_id, const Entry& extra) {
  // Guttman's quadratic split over the node's entries plus the overflow one.
  std::vector<Entry> all = nodes_[static_cast<size_t>(node_id)].entries;
  all.push_back(extra);
  const bool leaf = nodes_[static_cast<size_t>(node_id)].leaf;

  // PickSeeds: the pair wasting the most area if grouped together.
  size_t seed_a = 0, seed_b = 1;
  double worst = -std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < all.size(); ++i) {
    for (size_t j = i + 1; j < all.size(); ++j) {
      Entry joined = all[i];
      Extend(&joined, all[j]);
      const double waste = Area(joined) - Area(all[i]) - Area(all[j]);
      if (waste > worst) {
        worst = waste;
        seed_a = i;
        seed_b = j;
      }
    }
  }

  Node group_a, group_b;
  group_a.leaf = group_b.leaf = leaf;
  Entry box_a = all[seed_a], box_b = all[seed_b];
  group_a.entries.push_back(all[seed_a]);
  group_b.entries.push_back(all[seed_b]);

  std::vector<bool> assigned(all.size(), false);
  assigned[seed_a] = assigned[seed_b] = true;
  size_t remaining = all.size() - 2;
  while (remaining > 0) {
    // If one group must take all remaining entries to reach min fill, do so.
    if (group_a.entries.size() + remaining == options_.min_fill) {
      for (size_t i = 0; i < all.size(); ++i)
        if (!assigned[i]) {
          group_a.entries.push_back(all[i]);
          Extend(&box_a, all[i]);
          assigned[i] = true;
        }
      break;
    }
    if (group_b.entries.size() + remaining == options_.min_fill) {
      for (size_t i = 0; i < all.size(); ++i)
        if (!assigned[i]) {
          group_b.entries.push_back(all[i]);
          Extend(&box_b, all[i]);
          assigned[i] = true;
        }
      break;
    }
    // PickNext: the entry with the strongest group preference.
    size_t pick = 0;
    double best_diff = -1.0;
    for (size_t i = 0; i < all.size(); ++i) {
      if (assigned[i]) continue;
      const double diff = std::fabs(Enlargement(box_a, all[i]) -
                                    Enlargement(box_b, all[i]));
      if (diff > best_diff) {
        best_diff = diff;
        pick = i;
      }
    }
    const double enl_a = Enlargement(box_a, all[pick]);
    const double enl_b = Enlargement(box_b, all[pick]);
    const bool to_a =
        enl_a < enl_b ||
        (enl_a == enl_b && group_a.entries.size() <= group_b.entries.size());
    if (to_a) {
      group_a.entries.push_back(all[pick]);
      Extend(&box_a, all[pick]);
    } else {
      group_b.entries.push_back(all[pick]);
      Extend(&box_b, all[pick]);
    }
    assigned[pick] = true;
    --remaining;
  }

  nodes_[static_cast<size_t>(node_id)] = std::move(group_a);
  nodes_.push_back(std::move(group_b));
  return static_cast<int>(nodes_.size()) - 1;
}

void RTree::BulkLoadStr(std::vector<BulkEntry> entries) {
  nodes_.clear();
  num_entries_ = entries.size();
  if (entries.empty()) {
    nodes_.push_back(Node{});
    root_ = 0;
    return;
  }

  // Level 0: sort data boxes by center along dim 0 and chunk into leaves.
  auto center_less = [](size_t dim) {
    return [dim](const Entry& a, const Entry& b) {
      return a.lo[dim] + a.hi[dim] < b.lo[dim] + b.hi[dim];
    };
  };
  std::vector<Entry> level;
  level.reserve(entries.size());
  for (BulkEntry& e : entries) {
    Entry entry;
    entry.lo = std::move(e.lo);
    entry.hi = std::move(e.hi);
    entry.child = -1;
    entry.id = e.id;
    SAPLA_DCHECK(entry.lo.size() == dims_ && entry.hi.size() == dims_);
    level.push_back(std::move(entry));
  }

  bool leaf_level = true;
  size_t sort_dim = 0;
  while (true) {
    std::sort(level.begin(), level.end(), center_less(sort_dim));
    sort_dim = (sort_dim + 1) % dims_;

    // Chunk the sorted entries into nodes of max_fill (the final chunk may
    // be smaller but never below 1; with >= 2 chunks we rebalance the tail
    // to respect min_fill).
    std::vector<Entry> parents;
    size_t i = 0;
    while (i < level.size()) {
      size_t take = std::min(options_.max_fill, level.size() - i);
      // Avoid a tail below min_fill by borrowing from this chunk.
      const size_t rest = level.size() - i - take;
      if (rest > 0 && rest < options_.min_fill)
        take -= options_.min_fill - rest;
      Node node;
      node.leaf = leaf_level;
      node.entries.assign(level.begin() + static_cast<ptrdiff_t>(i),
                          level.begin() + static_cast<ptrdiff_t>(i + take));
      nodes_.push_back(std::move(node));
      parents.push_back(BoundingEntry(static_cast<int>(nodes_.size()) - 1));
      i += take;
    }
    if (parents.size() == 1) {
      root_ = parents[0].child;
      return;
    }
    level = std::move(parents);
    leaf_level = false;
  }
}

TreeStats RTree::ComputeStats() const {
  TreeStats stats;
  stats.entries = num_entries_;
  size_t leaf_entry_sum = 0;
  // BFS from the root tracking depth.
  struct Item {
    int node;
    size_t depth;
  };
  std::queue<Item> q;
  q.push({root_, 1});
  while (!q.empty()) {
    const Item item = q.front();
    q.pop();
    const Node& node = nodes_[static_cast<size_t>(item.node)];
    stats.height = std::max(stats.height, item.depth);
    if (node.leaf) {
      ++stats.leaf_nodes;
      leaf_entry_sum += node.entries.size();
    } else {
      ++stats.internal_nodes;
      for (const Entry& e : node.entries) q.push({e.child, item.depth + 1});
    }
  }
  stats.avg_leaf_entries =
      stats.leaf_nodes ? static_cast<double>(leaf_entry_sum) /
                             static_cast<double>(stats.leaf_nodes)
                       : 0.0;
  return stats;
}

void RTree::BestFirstSearch(const BoxDistFn& box_dist, const VisitFn& visit,
                            SearchCounters* counters) const {
  struct QItem {
    double dist;
    int node;
    size_t level;  // root = 0
    bool operator>(const QItem& o) const { return dist > o.dist; }
  };
  std::priority_queue<QItem, std::vector<QItem>, std::greater<>> pq;
  pq.push({0.0, root_, 0});
  double bound = std::numeric_limits<double>::infinity();
  while (!pq.empty()) {
    const QItem item = pq.top();
    pq.pop();
    if (item.dist > bound) {
      // Everything left is at least this far: the popped item and the rest
      // of the queue were all avoided ("node accesses" saved, Figs. 15/16).
      if (counters != nullptr) counters->nodes_pruned += 1 + pq.size();
      break;
    }
    const Node& node = nodes_[static_cast<size_t>(item.node)];
    if (counters != nullptr) counters->CountNodeVisit(item.level, node.leaf);
    for (const Entry& e : node.entries) {
      if (node.leaf) {
        bound = visit(e.id, bound);
      } else {
        const double d = box_dist(e.lo, e.hi);
        if (d <= bound) {
          pq.push({d, e.child, item.level + 1});
        } else if (counters != nullptr) {
          ++counters->nodes_pruned;
        }
      }
    }
  }
}

std::string RTree::Serialize() const {
  std::string out;
  binio::PutU32(&out, kRTreeBytesMagic);
  binio::PutU64(&out, dims_);
  binio::PutU64(&out, num_entries_);
  binio::PutI64(&out, root_);
  binio::PutU64(&out, nodes_.size());
  for (const Node& node : nodes_) {
    binio::PutU32(&out, node.leaf ? 1 : 0);
    binio::PutU32(&out, static_cast<uint32_t>(node.entries.size()));
    for (const Entry& e : node.entries) {
      binio::PutI64(&out, e.child);
      binio::PutU64(&out, e.id);
      for (const double v : e.lo) binio::PutF64(&out, v);
      for (const double v : e.hi) binio::PutF64(&out, v);
    }
  }
  return out;
}

Status RTree::Restore(const std::string& bytes, size_t num_ids) {
  const auto bad = [](const char* what) {
    return Status::InvalidArgument(std::string("rtree restore: ") + what);
  };
  binio::Reader r(bytes);
  if (r.ReadU32() != kRTreeBytesMagic) return bad("bad magic");
  const uint64_t dims = r.ReadU64();
  const uint64_t num_data = r.ReadU64();
  const int64_t root = r.ReadI64();
  const uint64_t num_nodes = r.ReadU64();
  if (!r.ok()) return bad("truncated header");
  if (dims != dims_) return bad("dimensionality mismatch");
  // Every node costs at least 8 bytes on the wire, so a plausible node
  // count is bounded by the buffer size — rejects corrupt counts before
  // any allocation.
  if (num_nodes == 0 || num_nodes > bytes.size()) return bad("node count");
  if (root < 0 || static_cast<uint64_t>(root) >= num_nodes)
    return bad("root out of range");

  const size_t entry_bytes = 8 + 8 + 2 * 8 * static_cast<size_t>(dims);
  std::vector<Node> nodes(num_nodes);
  for (Node& node : nodes) {
    const uint32_t leaf = r.ReadU32();
    const uint32_t count = r.ReadU32();
    if (!r.ok() || leaf > 1) return bad("malformed node header");
    if (count > r.remaining() / entry_bytes) return bad("entry count");
    node.leaf = leaf == 1;
    node.entries.resize(count);
    for (Entry& e : node.entries) {
      e.child = static_cast<int>(r.ReadI64());
      e.id = r.ReadU64();
      e.lo.resize(dims);
      e.hi.resize(dims);
      for (double& v : e.lo) v = r.ReadF64();
      for (double& v : e.hi) v = r.ReadF64();
      if (!r.ok()) return bad("truncated entry");
      if (node.leaf) {
        if (e.child != -1) return bad("leaf entry with a child link");
        if (e.id >= num_ids) return bad("data id out of range");
      } else {
        if (e.child < 0 || static_cast<uint64_t>(e.child) >= num_nodes)
          return bad("child node out of range");
      }
      for (size_t d = 0; d < dims; ++d)
        if (!(e.lo[d] <= e.hi[d])) return bad("inverted or non-finite box");
    }
  }
  if (r.remaining() != 0) return bad("trailing bytes");

  // Reachability walk from the root: every node must be referenced exactly
  // once (no cycles, no sharing, no orphans) and the data entries must sum
  // to the declared total — a corrupted child link can never send a later
  // traversal into a loop.
  std::vector<char> visited(num_nodes, 0);
  std::vector<int64_t> stack = {root};
  uint64_t seen_nodes = 0, seen_data = 0;
  while (!stack.empty()) {
    const int64_t id = stack.back();
    stack.pop_back();
    if (visited[static_cast<size_t>(id)]) return bad("node referenced twice");
    visited[static_cast<size_t>(id)] = 1;
    ++seen_nodes;
    const Node& node = nodes[static_cast<size_t>(id)];
    if (node.leaf) {
      seen_data += node.entries.size();
    } else {
      for (const Entry& e : node.entries) stack.push_back(e.child);
    }
  }
  if (seen_nodes != num_nodes) return bad("orphan nodes");
  if (seen_data != num_data) return bad("entry total mismatch");

  nodes_ = std::move(nodes);
  root_ = static_cast<int>(root);
  num_entries_ = static_cast<size_t>(num_data);
  return Status::OK();
}

}  // namespace sapla
