#include "index/isax_tree.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>

#include "reduction/pla.h"
#include "util/normal.h"

namespace sapla {

IsaxIndex::IsaxIndex(const Options& options) : options_(options) {
  SAPLA_DCHECK(options_.word_length >= 1);
  SAPLA_DCHECK(options_.max_cardinality_bits >= 1 &&
               options_.max_cardinality_bits <= 8);
  SAPLA_DCHECK(options_.leaf_capacity >= 2);
  breakpoints_.resize(options_.max_cardinality_bits);
  for (size_t b = 1; b <= options_.max_cardinality_bits; ++b)
    breakpoints_[b - 1] = SaxBreakpoints(static_cast<size_t>(1) << b);
}

std::vector<double> IsaxIndex::PaaMeans(const std::vector<double>& values) const {
  const std::vector<size_t> ends =
      EqualLengthEndpoints(values.size(), options_.word_length);
  std::vector<double> means(ends.size());
  size_t start = 0;
  for (size_t i = 0; i < ends.size(); ++i) {
    double sum = 0.0;
    for (size_t t = start; t <= ends[i]; ++t) sum += values[t];
    means[i] = sum / static_cast<double>(ends[i] - start + 1);
    start = ends[i] + 1;
  }
  return means;
}

std::vector<uint8_t> IsaxIndex::Symbolize(
    const std::vector<double>& values) const {
  const std::vector<double> means = PaaMeans(values);
  const std::vector<double>& bp =
      breakpoints_[options_.max_cardinality_bits - 1];
  std::vector<uint8_t> word(means.size());
  for (size_t i = 0; i < means.size(); ++i) {
    word[i] = static_cast<uint8_t>(
        std::upper_bound(bp.begin(), bp.end(), means[i]) - bp.begin());
  }
  return word;
}

double IsaxIndex::NodeMinDist(const Node& node,
                              const std::vector<double>& paa) const {
  // Per segment: the node prefix at b bits covers a breakpoint interval at
  // cardinality 2^b; contribution = gap from the query's PAA mean, weighted
  // by the segment length (n / word_length) as in PAA/SAX MINDIST.
  SAPLA_DCHECK(dataset_ != nullptr);
  const double weight = static_cast<double>(dataset_->length()) /
                        static_cast<double>(options_.word_length);
  double sum = 0.0;
  for (size_t i = 0; i < node.bits.size(); ++i) {
    const uint8_t b = node.bits[i];
    if (b == 0) continue;  // whole real line: no contribution
    const std::vector<double>& bp = breakpoints_[b - 1];
    const uint8_t p = node.prefix[i];
    const double lo = p == 0 ? -std::numeric_limits<double>::infinity()
                             : bp[static_cast<size_t>(p) - 1];
    const double hi = static_cast<size_t>(p) == bp.size()
                          ? std::numeric_limits<double>::infinity()
                          : bp[p];
    double gap = 0.0;
    if (paa[i] < lo) gap = lo - paa[i];
    if (paa[i] > hi) gap = paa[i] - hi;
    sum += weight * gap * gap;
  }
  return std::sqrt(sum);
}

Status IsaxIndex::Build(const Dataset& dataset) {
  if (dataset.size() == 0) return Status::InvalidArgument("empty dataset");
  if (dataset.length() < options_.word_length)
    return Status::InvalidArgument("series shorter than the word length");
  dataset_ = &dataset;
  nodes_.clear();
  num_entries_ = 0;
  Node root;
  root.bits.assign(options_.word_length, 0);
  root.prefix.assign(options_.word_length, 0);
  nodes_.push_back(std::move(root));
  root_ = 0;
  for (size_t i = 0; i < dataset.size(); ++i) {
    InsertEntry(root_, Entry{i, Symbolize(dataset.series[i].values)});
    ++num_entries_;
  }
  return Status::OK();
}

void IsaxIndex::InsertEntry(int node_id, Entry entry) {
  while (!nodes_[static_cast<size_t>(node_id)].leaf) {
    const Node& node = nodes_[static_cast<size_t>(node_id)];
    const size_t seg = node.split_segment;
    const uint8_t child_bits = node.bits[seg] + 1;
    const uint8_t bit =
        (entry.word[seg] >>
         (options_.max_cardinality_bits - child_bits)) & 1;
    node_id = bit ? node.child1 : node.child0;
  }
  Node& leaf = nodes_[static_cast<size_t>(node_id)];
  leaf.entries.push_back(std::move(entry));
  if (leaf.entries.size() > options_.leaf_capacity) SplitLeaf(node_id);
}

void IsaxIndex::SplitLeaf(int node_id) {
  // Split on the segment with the fewest bits that can still grow; if all
  // segments are at max cardinality the leaf simply stays oversized.
  {
    const Node& node = nodes_[static_cast<size_t>(node_id)];
    size_t seg = node.bits.size();
    for (size_t i = 0; i < node.bits.size(); ++i) {
      if (node.bits[i] >= options_.max_cardinality_bits) continue;
      if (seg == node.bits.size() || node.bits[i] < node.bits[seg]) seg = i;
    }
    if (seg == node.bits.size()) return;
    nodes_[static_cast<size_t>(node_id)].split_segment = seg;
  }

  // Create the two children (nodes_ may reallocate; index-based access).
  for (int bit = 0; bit < 2; ++bit) {
    const Node& parent = nodes_[static_cast<size_t>(node_id)];
    Node child;
    child.bits = parent.bits;
    child.prefix = parent.prefix;
    const size_t seg = parent.split_segment;
    ++child.bits[seg];
    child.prefix[seg] = static_cast<uint8_t>((parent.prefix[seg] << 1) | bit);
    nodes_.push_back(std::move(child));
    if (bit == 0)
      nodes_[static_cast<size_t>(node_id)].child0 =
          static_cast<int>(nodes_.size()) - 1;
    else
      nodes_[static_cast<size_t>(node_id)].child1 =
          static_cast<int>(nodes_.size()) - 1;
  }

  Node& parent = nodes_[static_cast<size_t>(node_id)];
  std::vector<Entry> entries = std::move(parent.entries);
  parent.entries.clear();
  parent.leaf = false;
  const size_t seg = parent.split_segment;
  const uint8_t child_bits = parent.bits[seg] + 1;
  const int child0 = parent.child0, child1 = parent.child1;
  for (Entry& e : entries) {
    const uint8_t bit =
        (e.word[seg] >> (options_.max_cardinality_bits - child_bits)) & 1;
    // Direct append (recursing through InsertEntry would re-split eagerly;
    // a one-sided split can legitimately leave one child overfull, which
    // the next insert resolves).
    Node& child =
        nodes_[static_cast<size_t>(bit ? child1 : child0)];
    child.entries.push_back(std::move(e));
  }
  // Resolve any overfull child now.
  for (const int c : {child0, child1}) {
    if (nodes_[static_cast<size_t>(c)].entries.size() >
        options_.leaf_capacity)
      SplitLeaf(c);
  }
}

int IsaxIndex::DescendLeaf(const std::vector<uint8_t>& word) const {
  int node_id = root_;
  while (!nodes_[static_cast<size_t>(node_id)].leaf) {
    const Node& node = nodes_[static_cast<size_t>(node_id)];
    const size_t seg = node.split_segment;
    const uint8_t child_bits = node.bits[seg] + 1;
    const uint8_t bit =
        (word[seg] >> (options_.max_cardinality_bits - child_bits)) & 1;
    node_id = bit ? node.child1 : node.child0;
  }
  return node_id;
}

KnnResult IsaxIndex::KnnApproximate(const std::vector<double>& query,
                                    size_t k) const {
  SAPLA_DCHECK(dataset_ != nullptr && query.size() == dataset_->length());
  const int leaf = DescendLeaf(Symbolize(query));
  KnnResult result;
  std::vector<std::pair<double, size_t>> hits;
  for (const Entry& e : nodes_[static_cast<size_t>(leaf)].entries) {
    hits.emplace_back(EuclideanDistance(query, dataset_->series[e.id].values),
                      e.id);
    ++result.num_measured;
  }
  std::sort(hits.begin(), hits.end());
  if (hits.size() > k) hits.resize(k);
  result.neighbors = std::move(hits);
  result.counters.nodes_visited_leaf = 1;
  result.counters.exact_evaluations = result.num_measured;
  result.counters.entries_pruned_node = num_entries_ - result.num_measured;
  result.counters.cascade_stage =
      result.num_measured > 0 ? CascadeStage::kExact : CascadeStage::kNodePrune;
  return result;
}

KnnResult IsaxIndex::Knn(const std::vector<double>& query, size_t k) const {
  SAPLA_DCHECK(dataset_ != nullptr && query.size() == dataset_->length());
  const std::vector<double> paa = PaaMeans(query);

  struct QItem {
    double dist;
    int node;
    size_t level;  // root = 0
    bool operator>(const QItem& o) const { return dist > o.dist; }
  };
  std::priority_queue<QItem, std::vector<QItem>, std::greater<>> pq;
  pq.push({0.0, root_, 0});
  KnnResult result;
  std::priority_queue<std::pair<double, size_t>> best;  // max-heap of k best
  const auto bound = [&] {
    return best.size() < k ? std::numeric_limits<double>::infinity()
                           : best.top().first;
  };
  while (!pq.empty()) {
    const QItem item = pq.top();
    pq.pop();
    if (item.dist > bound()) {
      result.counters.nodes_pruned += 1 + pq.size();
      break;
    }
    const Node& node = nodes_[static_cast<size_t>(item.node)];
    result.counters.CountNodeVisit(item.level, node.leaf);
    if (node.leaf) {
      for (const Entry& e : node.entries) {
        const double d =
            EuclideanDistance(query, dataset_->series[e.id].values);
        ++result.num_measured;
        if (best.size() < k) {
          best.emplace(d, e.id);
        } else if (d < best.top().first) {
          best.pop();
          best.emplace(d, e.id);
        }
      }
    } else {
      for (const int c : {node.child0, node.child1}) {
        const double d = NodeMinDist(nodes_[static_cast<size_t>(c)], paa);
        if (d <= bound()) {
          pq.push({d, c, item.level + 1});
        } else {
          ++result.counters.nodes_pruned;
        }
      }
    }
  }
  result.neighbors.resize(best.size());
  for (size_t i = result.neighbors.size(); i-- > 0;) {
    result.neighbors[i] = best.top();
    best.pop();
  }
  // iSAX prunes whole subtrees with the PAA MINDIST; entries it measured
  // are exactly its exact evaluations (no per-entry filter stage).
  result.counters.exact_evaluations = result.num_measured;
  result.counters.entries_pruned_node = num_entries_ - result.num_measured;
  result.counters.cascade_stage =
      result.num_measured > 0 ? CascadeStage::kExact : CascadeStage::kNodePrune;
  return result;
}

TreeStats IsaxIndex::ComputeStats() const {
  TreeStats stats;
  stats.entries = num_entries_;
  size_t leaf_entry_sum = 0;
  struct Item {
    int node;
    size_t depth;
  };
  std::queue<Item> q;
  q.push({root_, 1});
  while (!q.empty()) {
    const Item item = q.front();
    q.pop();
    const Node& node = nodes_[static_cast<size_t>(item.node)];
    stats.height = std::max(stats.height, item.depth);
    if (node.leaf) {
      ++stats.leaf_nodes;
      leaf_entry_sum += node.entries.size();
    } else {
      ++stats.internal_nodes;
      q.push({node.child0, item.depth + 1});
      q.push({node.child1, item.depth + 1});
    }
  }
  stats.avg_leaf_entries =
      stats.leaf_nodes ? static_cast<double>(leaf_entry_sum) /
                             static_cast<double>(stats.leaf_nodes)
                       : 0.0;
  return stats;
}

}  // namespace sapla
