#ifndef SAPLA_INDEX_DBCH_TREE_H_
#define SAPLA_INDEX_DBCH_TREE_H_

// DBCH-tree — Distance Based Covering with Convex Hull (paper §5.2-5.3).
//
// An R-tree-shaped index whose nodes are bounded not by MBRs but by the two
// member representations with the maximum lower-bounding distance between
// them (the "convex hull"); Dist_PAR(u, l) is the node's *volume*. Node
// splitting picks the two entries with maximum pairwise distance as seeds
// and assigns the rest to the nearer seed; branch picking descends into the
// child whose volume grows least.
//
// Two node-distance regimes (Options::sound_bounds):
//
//   paper (default)  §5.3: zero when the query lies within the hull (both
//                    hull distances below the volume), otherwise the
//                    smaller hull distance — which, as the paper notes, is
//                    not guaranteed to lower-bound through internal nodes
//                    (measured by the accuracy experiment, Fig. 13b).
//   sound            triangle-inequality bound max(d(q,a) - r_a,
//                    d(q,b) - r_b, 0), where r_a/r_b upper-bound the
//                    distance from each hull endpoint to every descendant
//                    entry. Valid whenever the pairwise distance satisfies
//                    the triangle inequality (every built-in method except
//                    SAX MINDIST); with metric_pair_dist = false node-level
//                    pruning is disabled outright, so the traversal stays
//                    exact for non-metric distances too. The sharded
//                    serving tier (search/sharded_index.h) requires this
//                    regime: its merge contract needs per-shard answers
//                    that do not depend on how the corpus was partitioned.
//
// The endpoint radii are maintained on every insert and travel with
// Serialize, so either regime can search a restored tree.
//
// The tree is generic over the distance: it stores entry ids and calls a
// user-supplied pairwise distance (LowerBoundDistance over stored
// representations in all experiments).

#include <functional>
#include <string>
#include <vector>

#include "index/tree_stats.h"
#include "obs/counters.h"
#include "util/status.h"

namespace sapla {

/// Fill factors; defaults follow the paper's §6 setup (min 2, max 5).
struct DbchTreeOptions {
  size_t min_fill = 2;
  size_t max_fill = 5;
  /// Search with the rigorous endpoint-radius node distance instead of the
  /// paper's §5.3 heuristic (see the file comment). Exact answers when the
  /// pairwise distance is a metric; the default keeps the paper's
  /// approximate-but-faster behavior (Fig. 13b).
  bool sound_bounds = false;
  /// Whether the pairwise distance satisfies the triangle inequality. Only
  /// consulted under sound_bounds: when false, node-level pruning is
  /// disabled (the radius bound would be invalid) and only the leaf-level
  /// filter prunes.
  bool metric_pair_dist = true;
};

/// \brief Distance-based covering tree over entry ids.
class DbchTree {
 public:
  using Options = DbchTreeOptions;

  /// Lower-bounding distance between two stored entries (by id).
  using PairDistFn = std::function<double(size_t, size_t)>;
  /// Lower-bounding distance from the current query to a stored entry.
  using QueryDistFn = std::function<double(size_t)>;
  /// Visits a leaf entry; receives the id and the current pruning bound and
  /// returns the (possibly tightened) bound.
  using VisitFn = std::function<double(size_t id, double bound)>;

  DbchTree(PairDistFn pair_dist, const Options& options = {});

  /// Inserts entry `id`; the distance callback must already resolve it.
  void Insert(size_t id);

  size_t size() const { return num_entries_; }

  /// Structural statistics (Figs. 15/16).
  TreeStats ComputeStats() const;

  /// Best-first traversal using the §5.3 node distance. Nodes whose distance
  /// exceeds the bound returned by `visit` are pruned. When `counters` is
  /// non-null the traversal records node expansions by level and node-level
  /// pruning into it (obs/counters.h).
  void BestFirstSearch(const QueryDistFn& query_dist, const VisitFn& visit,
                       SearchCounters* counters = nullptr) const;

  /// Deterministic byte encoding of the full tree structure (node shapes,
  /// entry ids, hull endpoints and volumes). Restore of the produced bytes
  /// reconstructs an identical traversal without a single pair_dist call —
  /// the hulls and volumes travel with the bytes, and search never invokes
  /// the pairwise distance.
  std::string Serialize() const;

  /// Replaces this tree's content with a previously serialized one.
  /// `num_ids` bounds the valid entry/hull ids (the corpus size). Any
  /// inconsistency — truncation, out-of-range node/entry ids, non-finite
  /// volume — is rejected without modifying the tree.
  Status Restore(const std::string& bytes, size_t num_ids);

 private:
  struct Node {
    bool leaf = true;
    std::vector<int> children;    // node ids (internal) — unused for leaves
    std::vector<size_t> entries;  // entry ids (leaf) — unused for internal
    size_t hull_a = 0, hull_b = 0;
    double volume = 0.0;
    /// Upper bounds on the pairwise distance from hull_a / hull_b to any
    /// entry under this node (exact for leaves, recursively composed for
    /// internal nodes). Feed the sound node-distance regime.
    double radius_a = 0.0, radius_b = 0.0;
    size_t count() const { return leaf ? entries.size() : children.size(); }
  };

  // Recomputes a node's hull: leaves consider all entries; internal nodes
  // consider only the children's hull endpoints (paper §5.3).
  void RecomputeHull(int node_id);
  std::vector<size_t> HullCandidates(const Node& node) const;
  double NodeDist(const Node& node, const QueryDistFn& query_dist) const;

  // Returns new sibling node id on split, -1 otherwise.
  int InsertRec(int node_id, size_t entry);
  int SplitNode(int node_id);

  PairDistFn pair_dist_;
  Options options_;
  std::vector<Node> nodes_;
  int root_ = -1;
  size_t num_entries_ = 0;
};

}  // namespace sapla

#endif  // SAPLA_INDEX_DBCH_TREE_H_
