#ifndef SAPLA_TS_UCR_LOADER_H_
#define SAPLA_TS_UCR_LOADER_H_

// Loader for UCR2018-format files.
//
// The UCR Time Series Classification Archive distributes each dataset as
// <Name>_TRAIN.tsv / <Name>_TEST.tsv where every line is
//   <label> \t v_0 \t v_1 ... \t v_{m-1}
// (older releases are comma-separated; both are accepted). The paper
// evaluates the 117 equal-length datasets, resampled to length 1024 with 100
// series per dataset; LoadUcrDataset applies the same preprocessing.

#include <string>

#include "ts/time_series.h"
#include "util/status.h"

namespace sapla {

/// Preprocessing options applied after parsing a UCR file.
struct UcrLoadOptions {
  /// Resample every series to this length; 0 keeps the native length.
  size_t target_length = 1024;
  /// Keep at most this many series (0 = all), in file order.
  size_t max_series = 100;
  /// Z-normalize each series after resampling.
  bool z_normalize = true;
};

/// \brief Parses one UCR TSV/CSV file into a Dataset.
///
/// Fails with IOError if the file cannot be read, and InvalidArgument if
/// rows are ragged (the equal-length requirement the paper imposes) or
/// contain non-numeric cells.
Result<Dataset> LoadUcrDataset(const std::string& path,
                               const UcrLoadOptions& options = {});

}  // namespace sapla

#endif  // SAPLA_TS_UCR_LOADER_H_
