#ifndef SAPLA_TS_SYNTHETIC_ARCHIVE_H_
#define SAPLA_TS_SYNTHETIC_ARCHIVE_H_

// Synthetic stand-in for the UCR2018 archive.
//
// The paper evaluates on the 117 equal-length UCR2018 datasets (n = 1024,
// 100 series each). That archive is not redistributable with this repo, so
// the benchmark harnesses default to a deterministic synthetic archive of
// the same shape: 117 datasets, each drawn from one of 13 generator
// families spanning the regimes that differentiate the compared methods
// (smooth drifts, regime switches, sharp spikes, oscillations, noise).
// Every dataset is class-structured (2-8 classes) so 1-NN accuracy is
// meaningful, and fully reproducible from the dataset id alone.
//
// Users with the real archive can substitute ts/ucr_loader.h.

#include <cstddef>
#include <string>
#include <vector>

#include "ts/time_series.h"

namespace sapla {

/// Generator families; one is assigned per dataset (round-robin with varied
/// parameters so two datasets of the same family still differ).
enum class SyntheticFamily {
  kRandomWalk = 0,     // integrated Gaussian noise
  kAr1,                // first-order autoregressive
  kSineMixture,        // sum of 2-4 sinusoids
  kCbfSteps,           // Cylinder-Bell-Funnel style plateaus/ramps
  kChirp,              // frequency sweep
  kEogSaccade,         // smooth baseline + rapid saccade jumps (paper's EOG)
  kEcgPqrst,           // periodic spike complexes on a smooth baseline
  kGaussianBumps,      // Mallat-style localized bumps
  kPiecewiseLinear,    // random piecewise-linear trajectory
  kTrendSeasonal,      // linear trend + seasonal component + noise
  kVolatilityBursts,   // noise with time-varying variance
  kSmoothNoise,        // heavily smoothed noise (low-pass random walk)
  kImpulseTrain,       // sparse impulses on noise
  kNumFamilies,
};

/// Parameters for one synthetic dataset.
struct SyntheticOptions {
  size_t length = 1024;       ///< points per series (paper: 1024)
  size_t num_series = 100;    ///< series per dataset (paper: 100)
  bool z_normalize = true;    ///< UCR convention
};

/// Human-readable family name ("RandomWalk", "EogSaccade", ...).
std::string FamilyName(SyntheticFamily family);

/// \brief Generates dataset `id` of the archive (id in [0, 117) by
/// convention, but any id is valid). Deterministic: the same id and options
/// always produce bit-identical data.
Dataset MakeSyntheticDataset(size_t id, const SyntheticOptions& options = {});

/// \brief Generates the full 117-dataset archive.
std::vector<Dataset> MakeSyntheticArchive(size_t num_datasets = 117,
                                          const SyntheticOptions& options = {});

}  // namespace sapla

#endif  // SAPLA_TS_SYNTHETIC_ARCHIVE_H_
