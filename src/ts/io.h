#ifndef SAPLA_TS_IO_H_
#define SAPLA_TS_IO_H_

// Persistence for representations and datasets.
//
// A reduced archive is the artifact a user actually stores (that is the
// point of dimensionality reduction); this module defines a small,
// versioned, human-readable text format for representations and a CSV/TSV
// writer for datasets (the loader lives in ts/ucr_loader.h).
//
// Representation file format (line oriented):
//   SAPLA-REP v1
//   method <name>  n <n>  [alphabet <a>]
//   seg <a> <b> <r>        (repeated, segment methods)
//   coef <c0> <c1> ...     (CHEBY)
//   sym <s0> <s1> ...      (SAX)
//   end
// Multiple representations may be concatenated in one file.

#include <string>
#include <vector>

#include "reduction/representation.h"
#include "ts/time_series.h"
#include "util/status.h"

namespace sapla {

/// Serializes one representation (appendable; see file format above).
std::string SerializeRepresentation(const Representation& rep);

/// Parses one or more concatenated representations.
Result<std::vector<Representation>> ParseRepresentations(
    const std::string& text);

/// Writes representations to a file.
Status SaveRepresentations(const std::string& path,
                           const std::vector<Representation>& reps);

/// Reads representations from a file.
Result<std::vector<Representation>> LoadRepresentations(
    const std::string& path);

/// Writes a dataset in UCR TSV format (label + values per line), readable
/// by LoadUcrDataset.
Status SaveDatasetTsv(const std::string& path, const Dataset& dataset);

}  // namespace sapla

#endif  // SAPLA_TS_IO_H_
