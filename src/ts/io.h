#ifndef SAPLA_TS_IO_H_
#define SAPLA_TS_IO_H_

// Persistence for representations and datasets.
//
// A reduced archive is the artifact a user actually stores (that is the
// point of dimensionality reduction); this module defines two formats for
// representations plus a CSV/TSV writer for datasets (the loader lives in
// ts/ucr_loader.h).
//
// v1 — human-readable text, one block per representation (heterogeneous
// archives allowed):
//   SAPLA-REP v1
//   method <name>  n <n>  [alphabet <a>]
//   seg <a> <b> <r>        (repeated, segment methods)
//   coef <c0> <c1> ...     (CHEBY)
//   sym <s0> <s1> ...      (SAX)
//   end
// Multiple representations may be concatenated in one file. Doubles are
// written with std::to_chars (shortest round-trip form) and parsed with
// std::from_chars, so serialization is locale-independent and
// save -> load -> save is byte-identical, including denormals and -0.0.
//
// v2 — binary columnar, the RepresentationStore's SoA layout written
// verbatim (homogeneous corpora only). Little-endian, 8-byte aligned
// sections. Current revision (version = 3) adds CRC32C section checksums
// so torn writes and bit flips are detected before any corrupted byte is
// interpreted:
//   magic "SAPLACOL" (8 bytes), u32 version = 3, u32 flags = 0,
//   u32 crc_header, u32 crc_offsets, u32 crc_columns, u32 reserved = 0,
//   -- header section (crc_header) --
//   u32 method-name length + bytes (zero-padded to 8),
//   u64 n, u64 alphabet, u64 num_series,
//   u64 total_segments, u64 total_coeffs, u64 total_symbols,
//   -- offsets section (crc_offsets) --
//   seg/coeff/symbol offset tables ((num_series + 1) u64 each),
//   -- columns section (crc_columns) --
//   a[] f64, b[] f64, r[] u32 (padded), coeffs[] f64, symbols[] i32
//   (padded).
// Version 2 files (the same layout without the flags/crc words) still load.
//
// v4 — binary columnar with per-column codecs and frames (version = 4):
// series are grouped into fixed-size frames, each an independently
// decodable blob whose columns carry a codec id (raw f64 passthrough,
// fixed-point delta for quantized floats with the step — the max-error
// bound — stored per column, delta-varint for integers; see
// reduction/column_codec.h). The archive records the store's quantization
// steps and the per-series lower-bound slack column, so pruning soundness
// survives a save/load cycle:
//   magic "SAPLACOL" (8 bytes), u32 version = 4, u32 flags = 0,
//   u32 crc_header, u32 crc_directory, u32 crc_frames, u32 reserved = 0,
//   -- header section (crc_header) --
//   u32 method-name length + bytes (zero-padded to 8),
//   u64 n, u64 alphabet, u64 num_series,
//   f64 ab_step, f64 coeff_step,
//   u64 frame_series, u64 num_frames,
//   -- directory section (crc_directory) --
//   per frame: u64 blob offset (relative to the frame area), u64 blob
//   length; then lb_slack[] f64 (num_series — resident even when the
//   frames are served cold),
//   -- frame area (crc_frames) --
//   frame blobs, each zero-padded to 8.
// SerializeRepresentationStore picks v4 automatically for quantized
// stores (v3 cannot carry the slack metadata) and keeps unquantized
// stores on v3, so existing byte-identity expectations hold; StoreFormat
// forces either. A v4 archive can also be opened COLD
// (OpenColdRepresentationStore): the file is mmap'd, CRCs are verified
// once, and frames decode lazily into a bounded cache on first touch.
//
// LoadRepresentationStore auto-detects every format: v1 files migrate by
// appending each parsed representation into a store (they must be
// homogeneous), so existing archives read transparently.
//
// Crash safety: every writer goes through AtomicWriteFile — the bytes land
// in a temp file in the destination directory, are fsync'd, and only then
// renamed over the target. A crash or failure at any step leaves either the
// old file or the new file, never a torn mix; a failed save never clobbers
// an existing archive.

#include <memory>
#include <string>
#include <vector>

#include "reduction/representation.h"
#include "reduction/representation_store.h"
#include "ts/time_series.h"
#include "util/resource_budget.h"
#include "util/status.h"

namespace sapla {

/// Free-space preflight for writing `bytes` into the filesystem that holds
/// `path` (the file need not exist; its directory is consulted). Returns
/// kResourceExhausted when the write clearly cannot fit, OK otherwise —
/// including when statvfs itself fails, so an exotic filesystem degrades to
/// the write path's own error handling instead of false rejections. Fault
/// point: io/disk_full (inject with code `exhausted` to simulate a full
/// disk without filling one).
Status PreflightDiskSpace(const std::string& path, uint64_t bytes);

/// Writes `data` to `path` atomically: temp file + fsync + rename. On any
/// failure the temp file is removed, a preexisting `path` is untouched, and
/// the returned Status says which step failed (open/write/fsync/rename).
/// A full disk — preflight refusal or ENOSPC mid-write — comes back as
/// kResourceExhausted with the old file intact.
/// Fault points (util/fault.h): io/disk_full, io/open_write, io/write,
/// io/fsync, io/rename.
Status AtomicWriteFile(const std::string& path, const std::string& data);

/// Serializes one representation (appendable; see v1 format above).
std::string SerializeRepresentation(const Representation& rep);

/// Parses one or more concatenated v1 representations.
Result<std::vector<Representation>> ParseRepresentations(
    const std::string& text);

/// Writes representations to a v1 text file.
Status SaveRepresentations(const std::string& path,
                           const std::vector<Representation>& reps);

/// Reads representations from a v1 text file.
Result<std::vector<Representation>> LoadRepresentations(
    const std::string& path);

/// On-disk revision selector for store serialization. kAuto writes v4
/// when the store is quantized (v3 has nowhere to put the codec/slack
/// metadata) and v3 otherwise.
enum class StoreFormat : uint32_t {
  kAuto = 0,
  kV3 = 3,
  kV4 = 4,
};

/// Serializes a hot store to the binary columnar format (see StoreFormat).
/// Deterministic: equal stores produce byte-identical output, and a
/// v4 save -> load -> save round trip is byte-identical (the codec layer
/// is lossless; see reduction/column_codec.h).
std::string SerializeRepresentationStore(
    const RepresentationStore& store, StoreFormat format = StoreFormat::kAuto);

/// Parses a serialized store: v2/v3/v4 binary, or v1 text migrated through
/// RepresentationStore::Append (v1 input must be homogeneous and
/// non-empty). Structural validation goes through
/// RepresentationStore::FromColumns; v4 additionally restores the
/// quantization steps and slack column.
Result<RepresentationStore> ParseRepresentationStore(const std::string& data);

/// Writes a store to a binary file (format selection as above).
Status SaveRepresentationStore(const std::string& path,
                               const RepresentationStore& store,
                               StoreFormat format = StoreFormat::kAuto);

/// Reads a store from a binary file, or migrates a v1 text file. Always
/// returns a hot (fully resident) store.
Result<RepresentationStore> LoadRepresentationStore(const std::string& path);

/// Cold-open configuration (see OpenColdRepresentationStore).
struct ColdStoreOptions {
  /// Decode-cache capacity; at least one frame is always retained.
  size_t cache_bytes = 64u << 20;
  /// Optional frame-cache budget shared across stores/shards
  /// (reduction/column_residency.h): cached frame bytes reserve on it, so
  /// a fleet's decode caches are bounded globally, not per store.
  std::shared_ptr<ResourceBudget> budget;
};

/// Opens a v4 archive as a COLD store: the file is mmap'd read-only, the
/// header/directory/frame CRCs are verified once, the slack column is
/// loaded resident, and frames decode lazily on first touch
/// (RepresentationStore::view(id, &pin)). Non-v4 inputs are rejected —
/// cold residency needs the framed layout; use LoadRepresentationStore
/// for a resident load of any version.
Result<RepresentationStore> OpenColdRepresentationStore(
    const std::string& path, const ColdStoreOptions& options = {});

/// Cold-opens a v4 store section embedded at [offset, offset + length) of
/// a larger file (the index-snapshot container, search/snapshot.h).
Result<RepresentationStore> OpenColdRepresentationStoreAt(
    const std::string& path, size_t offset, size_t length,
    const ColdStoreOptions& options = {});

/// Writes a dataset in UCR TSV format (label + values per line), readable
/// by LoadUcrDataset.
Status SaveDatasetTsv(const std::string& path, const Dataset& dataset);

}  // namespace sapla

#endif  // SAPLA_TS_IO_H_
