#include "ts/synthetic_archive.h"

#include <algorithm>
#include <cmath>

#include "util/rng.h"
#include "util/status.h"

namespace sapla {
namespace {

// Per-class prototype parameters are drawn once from the dataset Rng; each
// series then perturbs its class prototype with its own fork. `t01` below is
// time normalized to [0, 1).

double T01(size_t t, size_t n) {
  return static_cast<double>(t) / static_cast<double>(n);
}

std::vector<double> GenRandomWalk(Rng* rng, size_t n, double drift,
                                  double step) {
  std::vector<double> v(n);
  double x = 0.0;
  for (size_t t = 0; t < n; ++t) {
    x += drift + step * rng->Gaussian();
    v[t] = x;
  }
  return v;
}

std::vector<double> GenAr1(Rng* rng, size_t n, double phi, double noise) {
  std::vector<double> v(n);
  double x = 0.0;
  for (size_t t = 0; t < n; ++t) {
    x = phi * x + noise * rng->Gaussian();
    v[t] = x;
  }
  return v;
}

std::vector<double> GenSineMixture(Rng* rng, size_t n,
                                   const std::vector<double>& freqs,
                                   const std::vector<double>& amps,
                                   double noise) {
  std::vector<double> v(n);
  std::vector<double> phases(freqs.size());
  for (auto& p : phases) p = rng->Uniform(0.0, 2.0 * M_PI);
  for (size_t t = 0; t < n; ++t) {
    double x = 0.0;
    for (size_t k = 0; k < freqs.size(); ++k)
      x += amps[k] * std::sin(2.0 * M_PI * freqs[k] * T01(t, n) + phases[k]);
    v[t] = x + noise * rng->Gaussian();
  }
  return v;
}

// Cylinder-Bell-Funnel style: a flat/ramping event of random extent on a
// noisy baseline. `shape` 0=cylinder 1=bell 2=funnel.
std::vector<double> GenCbf(Rng* rng, size_t n, int shape, double noise) {
  std::vector<double> v(n);
  const size_t a = 1 + rng->UniformInt(n / 3);
  const size_t b = a + n / 4 + rng->UniformInt(n / 3);
  const double amp = rng->Uniform(4.0, 8.0);
  for (size_t t = 0; t < n; ++t) {
    double x = noise * rng->Gaussian();
    if (t >= a && t < b && b > a) {
      const double frac =
          static_cast<double>(t - a) / static_cast<double>(b - a);
      if (shape == 0) x += amp;                  // cylinder
      if (shape == 1) x += amp * frac;           // bell (rising ramp)
      if (shape == 2) x += amp * (1.0 - frac);   // funnel (falling ramp)
    }
    v[t] = x;
  }
  return v;
}

std::vector<double> GenChirp(Rng* rng, size_t n, double f0, double f1,
                             double noise) {
  std::vector<double> v(n);
  const double phase = rng->Uniform(0.0, 2.0 * M_PI);
  for (size_t t = 0; t < n; ++t) {
    const double u = T01(t, n);
    const double f = f0 + (f1 - f0) * u;  // instantaneous frequency sweep
    v[t] = std::sin(2.0 * M_PI * f * u * static_cast<double>(n) / 64.0 +
                    phase) +
           noise * rng->Gaussian();
  }
  return v;
}

// EOG-like: slow smooth pursuit baseline with sparse fast saccade jumps and
// exponential recovery. The paper singles out EOG datasets as the regularly
// changing series where adaptive segmentation is slow/valuable.
std::vector<double> GenEog(Rng* rng, size_t n, double saccade_rate,
                           double noise) {
  std::vector<double> v(n);
  double base = 0.0;
  double level = 0.0;
  for (size_t t = 0; t < n; ++t) {
    base += 0.02 * rng->Gaussian();
    if (rng->Uniform() < saccade_rate)
      level += rng->Uniform(-6.0, 6.0);  // saccade jump
    level *= 0.995;                      // slow drift back
    v[t] = base + level + noise * rng->Gaussian();
  }
  return v;
}

// ECG-like: periodic PQRST-ish complexes: sharp R spike flanked by small
// Q/S dips and smoother P/T waves.
std::vector<double> GenEcg(Rng* rng, size_t n, double period_frac,
                           double noise) {
  std::vector<double> v(n, 0.0);
  const size_t period =
      std::max<size_t>(16, static_cast<size_t>(period_frac * n));
  const size_t jitter = period / 8;
  auto bump = [&](size_t center, double width, double amp) {
    const int w = static_cast<int>(width * 4.0);
    for (int d = -w; d <= w; ++d) {
      const int idx = static_cast<int>(center) + d;
      if (idx < 0 || idx >= static_cast<int>(n)) continue;
      const double z = static_cast<double>(d) / width;
      v[idx] += amp * std::exp(-0.5 * z * z);
    }
  };
  for (size_t c = period / 2; c < n; c += period) {
    const size_t center =
        c + (jitter ? rng->UniformInt(2 * jitter + 1) - jitter : 0);
    bump(center > 10 ? center - 10 : 0, 4.0, 1.0);   // P
    bump(center > 3 ? center - 3 : 0, 1.2, -1.5);    // Q
    bump(center, 1.5, 10.0);                         // R
    bump(center + 3, 1.2, -2.0);                     // S
    bump(center + 14, 5.0, 2.0);                     // T
  }
  for (size_t t = 0; t < n; ++t) v[t] += noise * rng->Gaussian();
  return v;
}

std::vector<double> GenGaussianBumps(Rng* rng, size_t n, size_t num_bumps,
                                     double noise) {
  std::vector<double> v(n, 0.0);
  for (size_t k = 0; k < num_bumps; ++k) {
    const double center = rng->Uniform(0.05, 0.95) * static_cast<double>(n);
    const double width = rng->Uniform(0.01, 0.06) * static_cast<double>(n);
    const double amp = rng->Uniform(-5.0, 5.0);
    for (size_t t = 0; t < n; ++t) {
      const double z = (static_cast<double>(t) - center) / width;
      v[t] += amp * std::exp(-0.5 * z * z);
    }
  }
  for (size_t t = 0; t < n; ++t) v[t] += noise * rng->Gaussian();
  return v;
}

std::vector<double> GenPiecewiseLinear(Rng* rng, size_t n, size_t num_knots,
                                       double noise) {
  // Random knot positions/values, linear in between.
  std::vector<size_t> knots{0};
  for (size_t k = 0; k < num_knots; ++k)
    knots.push_back(1 + rng->UniformInt(n - 2));
  knots.push_back(n - 1);
  std::sort(knots.begin(), knots.end());
  knots.erase(std::unique(knots.begin(), knots.end()), knots.end());
  std::vector<double> kv(knots.size());
  for (auto& x : kv) x = rng->Uniform(-5.0, 5.0);
  std::vector<double> v(n);
  size_t seg = 0;
  for (size_t t = 0; t < n; ++t) {
    while (seg + 1 < knots.size() && t > knots[seg + 1]) ++seg;
    const size_t lo = knots[seg];
    const size_t hi = knots[std::min(seg + 1, knots.size() - 1)];
    const double frac =
        hi > lo ? static_cast<double>(t - lo) / static_cast<double>(hi - lo)
                : 0.0;
    v[t] = kv[seg] * (1.0 - frac) + kv[std::min(seg + 1, kv.size() - 1)] * frac +
           noise * rng->Gaussian();
  }
  return v;
}

std::vector<double> GenTrendSeasonal(Rng* rng, size_t n, double slope,
                                     double season_freq, double noise) {
  std::vector<double> v(n);
  const double phase = rng->Uniform(0.0, 2.0 * M_PI);
  for (size_t t = 0; t < n; ++t) {
    const double u = T01(t, n);
    v[t] = slope * u + 2.0 * std::sin(2.0 * M_PI * season_freq * u + phase) +
           noise * rng->Gaussian();
  }
  return v;
}

std::vector<double> GenVolatilityBursts(Rng* rng, size_t n, double burst_rate,
                                        double calm_sd, double burst_sd) {
  std::vector<double> v(n);
  bool bursting = false;
  for (size_t t = 0; t < n; ++t) {
    if (rng->Uniform() < burst_rate) bursting = !bursting;
    v[t] = (bursting ? burst_sd : calm_sd) * rng->Gaussian();
  }
  return v;
}

std::vector<double> GenSmoothNoise(Rng* rng, size_t n, double alpha) {
  // Exponentially smoothed white noise: very smooth, no structure.
  std::vector<double> v(n);
  double x = 0.0;
  for (size_t t = 0; t < n; ++t) {
    x = (1.0 - alpha) * x + alpha * rng->Gaussian();
    v[t] = x;
  }
  // Second smoothing pass removes residual jaggedness.
  double y = v[0];
  for (size_t t = 0; t < n; ++t) {
    y = (1.0 - alpha) * y + alpha * v[t];
    v[t] = y;
  }
  return v;
}

std::vector<double> GenImpulseTrain(Rng* rng, size_t n, double rate,
                                    double noise) {
  std::vector<double> v(n);
  for (size_t t = 0; t < n; ++t) {
    double x = noise * rng->Gaussian();
    if (rng->Uniform() < rate) x += rng->Uniform(-10.0, 10.0);
    v[t] = x;
  }
  return v;
}

// Generates one series of the family, parameterized by the class id so each
// class has a distinct prototype regime.
std::vector<double> GenerateSeries(SyntheticFamily family, Rng* rng, size_t n,
                                   int cls) {
  const double c = static_cast<double>(cls);
  switch (family) {
    case SyntheticFamily::kRandomWalk:
      return GenRandomWalk(rng, n, 0.01 * c, 0.5 + 0.2 * c);
    case SyntheticFamily::kAr1:
      return GenAr1(rng, n, 0.85 + 0.03 * c, 1.0);
    case SyntheticFamily::kSineMixture:
      return GenSineMixture(rng, n, {1.0 + c, 3.0 + 2.0 * c, 9.0 + c},
                            {2.0, 1.0, 0.4}, 0.15);
    case SyntheticFamily::kCbfSteps:
      return GenCbf(rng, n, cls % 3, 0.4);
    case SyntheticFamily::kChirp:
      return GenChirp(rng, n, 0.5 + 0.5 * c, 4.0 + c, 0.1);
    case SyntheticFamily::kEogSaccade:
      return GenEog(rng, n, 0.01 + 0.01 * c, 0.1);
    case SyntheticFamily::kEcgPqrst:
      return GenEcg(rng, n, 0.08 + 0.03 * c, 0.15);
    case SyntheticFamily::kGaussianBumps:
      return GenGaussianBumps(rng, n, 3 + static_cast<size_t>(cls), 0.1);
    case SyntheticFamily::kPiecewiseLinear:
      return GenPiecewiseLinear(rng, n, 4 + 2 * static_cast<size_t>(cls), 0.2);
    case SyntheticFamily::kTrendSeasonal:
      return GenTrendSeasonal(rng, n, 3.0 * (c - 1.0), 4.0 + 2.0 * c, 0.3);
    case SyntheticFamily::kVolatilityBursts:
      return GenVolatilityBursts(rng, n, 0.01, 0.5, 2.0 + c);
    case SyntheticFamily::kSmoothNoise:
      return GenSmoothNoise(rng, n, 0.02 + 0.02 * c);
    case SyntheticFamily::kImpulseTrain:
      return GenImpulseTrain(rng, n, 0.01 + 0.005 * c, 0.5);
    case SyntheticFamily::kNumFamilies:
      break;
  }
  SAPLA_DCHECK(false && "invalid family");
  return std::vector<double>(n, 0.0);
}

}  // namespace

std::string FamilyName(SyntheticFamily family) {
  switch (family) {
    case SyntheticFamily::kRandomWalk: return "RandomWalk";
    case SyntheticFamily::kAr1: return "AR1";
    case SyntheticFamily::kSineMixture: return "SineMixture";
    case SyntheticFamily::kCbfSteps: return "CBF";
    case SyntheticFamily::kChirp: return "Chirp";
    case SyntheticFamily::kEogSaccade: return "EogSaccade";
    case SyntheticFamily::kEcgPqrst: return "EcgPqrst";
    case SyntheticFamily::kGaussianBumps: return "GaussianBumps";
    case SyntheticFamily::kPiecewiseLinear: return "PiecewiseLinear";
    case SyntheticFamily::kTrendSeasonal: return "TrendSeasonal";
    case SyntheticFamily::kVolatilityBursts: return "VolatilityBursts";
    case SyntheticFamily::kSmoothNoise: return "SmoothNoise";
    case SyntheticFamily::kImpulseTrain: return "ImpulseTrain";
    case SyntheticFamily::kNumFamilies: break;
  }
  return "Unknown";
}

Dataset MakeSyntheticDataset(size_t id, const SyntheticOptions& options) {
  const auto family = static_cast<SyntheticFamily>(
      id % static_cast<size_t>(SyntheticFamily::kNumFamilies));
  // Dataset seed depends only on the id, not on options, so scaling n or the
  // series count preserves the per-series streams' independence.
  Rng dataset_rng(0xC0FFEE ^ (id * 0x9E3779B97F4A7C15ULL));
  const int num_classes = 2 + static_cast<int>(dataset_rng.UniformInt(7));

  Dataset ds;
  char buf[64];
  snprintf(buf, sizeof(buf), "Syn%03zu_%s", id, FamilyName(family).c_str());
  ds.name = buf;
  ds.series.reserve(options.num_series);
  for (size_t s = 0; s < options.num_series; ++s) {
    Rng series_rng = dataset_rng.Fork();
    const int cls = static_cast<int>(s % static_cast<size_t>(num_classes));
    TimeSeries ts(GenerateSeries(family, &series_rng, options.length, cls),
                  cls);
    if (options.z_normalize) ZNormalize(&ts.values);
    ds.series.push_back(std::move(ts));
  }
  return ds;
}

std::vector<Dataset> MakeSyntheticArchive(size_t num_datasets,
                                          const SyntheticOptions& options) {
  std::vector<Dataset> archive;
  archive.reserve(num_datasets);
  for (size_t id = 0; id < num_datasets; ++id)
    archive.push_back(MakeSyntheticDataset(id, options));
  return archive;
}

}  // namespace sapla
