#include "ts/ucr_loader.h"

#include <cstdlib>
#include <fstream>
#include <sstream>

namespace sapla {

Result<Dataset> LoadUcrDataset(const std::string& path,
                               const UcrLoadOptions& options) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open " + path);

  Dataset ds;
  // Dataset name = file name without directory / extension.
  const size_t slash = path.find_last_of('/');
  const size_t start = slash == std::string::npos ? 0 : slash + 1;
  const size_t dot = path.find_last_of('.');
  ds.name = path.substr(start, dot == std::string::npos || dot < start
                                   ? std::string::npos
                                   : dot - start);

  std::string line;
  size_t expected_len = 0;
  size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    // Accept tab or comma separators.
    for (char& c : line) {
      if (c == ',' || c == '\t') c = ' ';
    }
    std::istringstream cells(line);
    std::string cell;
    TimeSeries ts;
    bool first = true;
    while (cells >> cell) {
      char* end = nullptr;
      const double v = std::strtod(cell.c_str(), &end);
      if (end == cell.c_str() || *end != '\0') {
        return Status::InvalidArgument("non-numeric cell '" + cell +
                                       "' in " + path + " line " +
                                       std::to_string(line_no));
      }
      if (first) {
        ts.label = static_cast<int>(v);
        first = false;
      } else {
        ts.values.push_back(v);
      }
    }
    if (ts.values.empty()) {
      return Status::InvalidArgument("row with no values in " + path +
                                     " line " + std::to_string(line_no));
    }
    if (expected_len == 0) {
      expected_len = ts.values.size();
    } else if (ts.values.size() != expected_len) {
      return Status::InvalidArgument(
          "ragged rows in " + path + ": expected length " +
          std::to_string(expected_len) + ", line " + std::to_string(line_no) +
          " has " + std::to_string(ts.values.size()));
    }
    ds.series.push_back(std::move(ts));
    if (options.max_series != 0 && ds.series.size() >= options.max_series)
      break;
  }
  if (ds.series.empty())
    return Status::InvalidArgument("no series parsed from " + path);

  for (auto& ts : ds.series) {
    if (options.target_length != 0 && ts.values.size() != options.target_length)
      ts.values = ResampleToLength(ts.values, options.target_length);
    if (options.z_normalize) ZNormalize(&ts.values);
  }
  return ds;
}

}  // namespace sapla
