#include "ts/ucr_loader.h"

#include <cmath>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <sstream>

#include "util/fault.h"

namespace sapla {
namespace {

// Longest row a well-formed archive can plausibly contain; anything bigger
// is treated as corruption rather than allowed to balloon memory.
constexpr size_t kMaxRowValues = size_t{1} << 24;

}  // namespace

Result<Dataset> LoadUcrDataset(const std::string& path,
                               const UcrLoadOptions& options) {
  SAPLA_FAULT_POINT("io/open_read");
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open " + path);

  Dataset ds;
  // Dataset name = file name without directory / extension.
  const size_t slash = path.find_last_of('/');
  const size_t start = slash == std::string::npos ? 0 : slash + 1;
  const size_t dot = path.find_last_of('.');
  ds.name = path.substr(start, dot == std::string::npos || dot < start
                                   ? std::string::npos
                                   : dot - start);

  std::string line;
  size_t expected_len = 0;
  size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    // Accept tab or comma separators.
    for (char& c : line) {
      if (c == ',' || c == '\t') c = ' ';
    }
    std::istringstream cells(line);
    std::string cell;
    TimeSeries ts;
    bool first = true;
    while (cells >> cell) {
      char* end = nullptr;
      const double v = std::strtod(cell.c_str(), &end);
      if (end == cell.c_str() || *end != '\0') {
        return Status::InvalidArgument("non-numeric cell '" + cell +
                                       "' in " + path + " line " +
                                       std::to_string(line_no));
      }
      // strtod happily parses "nan"/"inf"; none of the distance math
      // downstream survives them, so reject here with the exact location.
      if (!std::isfinite(v)) {
        return Status::InvalidArgument("non-finite value '" + cell + "' in " +
                                       path + " line " +
                                       std::to_string(line_no));
      }
      if (first) {
        // Casting an out-of-range double to int is undefined behaviour, so
        // bound the label before converting.
        if (v < static_cast<double>(std::numeric_limits<int>::min()) ||
            v > static_cast<double>(std::numeric_limits<int>::max())) {
          return Status::InvalidArgument(
              "label '" + cell + "' out of range in " + path + " line " +
              std::to_string(line_no));
        }
        ts.label = static_cast<int>(v);
        first = false;
      } else {
        if (ts.values.size() >= kMaxRowValues) {
          return Status::InvalidArgument(
              "row longer than " + std::to_string(kMaxRowValues) +
              " values in " + path + " line " + std::to_string(line_no) +
              "; refusing to load a likely-corrupt file");
        }
        ts.values.push_back(v);
      }
    }
    if (ts.values.empty()) {
      return Status::InvalidArgument("row with no values in " + path +
                                     " line " + std::to_string(line_no));
    }
    if (expected_len == 0) {
      expected_len = ts.values.size();
    } else if (ts.values.size() != expected_len) {
      return Status::InvalidArgument(
          "ragged rows in " + path + ": expected length " +
          std::to_string(expected_len) + ", line " + std::to_string(line_no) +
          " has " + std::to_string(ts.values.size()));
    }
    ds.series.push_back(std::move(ts));
    if (options.max_series != 0 && ds.series.size() >= options.max_series)
      break;
  }
  if (in.bad()) return Status::IOError("read failed for " + path);
  if (ds.series.empty()) {
    return Status::InvalidArgument(
        line_no == 0 ? "empty file " + path
                     : "no series parsed from " + path + " (" +
                           std::to_string(line_no) + " blank lines)");
  }

  for (auto& ts : ds.series) {
    if (options.target_length != 0 && ts.values.size() != options.target_length)
      ts.values = ResampleToLength(ts.values, options.target_length);
    if (options.z_normalize) ZNormalize(&ts.values);
  }
  return ds;
}

}  // namespace sapla
