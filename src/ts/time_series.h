#ifndef SAPLA_TS_TIME_SERIES_H_
#define SAPLA_TS_TIME_SERIES_H_

// Time-series container and basic preprocessing.
//
// Matches the paper's setup (Definition 3.1): a time series is a sequence
// C = {c_0, ..., c_{n-1}}. Datasets carry an integer class label per series
// so the 1-NN classification example and accuracy experiments work.

#include <cstddef>
#include <string>
#include <vector>

namespace sapla {

/// \brief One time series plus an optional class label.
struct TimeSeries {
  std::vector<double> values;
  int label = -1;

  TimeSeries() = default;
  explicit TimeSeries(std::vector<double> v, int lab = -1)
      : values(std::move(v)), label(lab) {}

  size_t size() const { return values.size(); }
  double operator[](size_t i) const { return values[i]; }
};

/// \brief A named collection of equal-length time series.
struct Dataset {
  std::string name;
  std::vector<TimeSeries> series;

  size_t size() const { return series.size(); }
  /// Length of the series (0 for an empty dataset). All series are equal
  /// length by construction.
  size_t length() const { return series.empty() ? 0 : series[0].size(); }
};

/// Z-normalizes in place: zero mean, unit variance. Constant series become
/// all-zero (the UCR convention) instead of dividing by zero.
void ZNormalize(std::vector<double>* values);

/// Returns the series linearly resampled to `target_length` points.
/// Requires a non-empty input and target_length >= 1.
std::vector<double> ResampleToLength(const std::vector<double>& values,
                                     size_t target_length);

/// Euclidean distance between two equal-length raw series.
double EuclideanDistance(const std::vector<double>& a,
                         const std::vector<double>& b);

/// Squared Euclidean distance between two equal-length raw series.
double SquaredEuclideanDistance(const std::vector<double>& a,
                                const std::vector<double>& b);

}  // namespace sapla

#endif  // SAPLA_TS_TIME_SERIES_H_
