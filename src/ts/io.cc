#include "ts/io.h"

#include <fcntl.h>
#include <sys/statvfs.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <charconv>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <sstream>
#include <system_error>
#include <utility>

#include "reduction/column_codec.h"
#include "reduction/column_residency.h"
#include "util/crc32c.h"
#include "util/fault.h"
#include "util/mmap_file.h"

namespace sapla {
namespace {

constexpr char kMagicV1[] = "SAPLA-REP v1";
constexpr char kMagicV2[] = "SAPLACOL";  // 8 bytes, no terminator on disk
constexpr uint32_t kVersionV2 = 2;       // legacy: no section checksums
constexpr uint32_t kVersionV3 = 3;       // CRC32C per section
constexpr uint32_t kVersionV4 = 4;       // framed + per-column codecs

// Sanity bounds applied to declared sizes in parsed archives: large enough
// for any real corpus, small enough that a corrupt or hostile header cannot
// drive absurd allocations or index math.
constexpr uint64_t kMaxSeriesLength = uint64_t{1} << 24;
constexpr uint64_t kMaxAlphabet = uint64_t{1} << 20;

Status ErrnoStatus(const std::string& what) {
  const int err = errno;
  const std::string msg = what + ": " + std::strerror(err);
  // A full disk (or exhausted quota) is a resource condition the caller can
  // recover from by freeing space, not a generic I/O fault.
  if (err == ENOSPC || err == EDQUOT) return Status::ResourceExhausted(msg);
  return Status::IOError(msg);
}

Result<Method> MethodFromString(const std::string& name) {
  for (const Method m : AllMethods())
    if (MethodName(m) == name) return m;
  return Status::InvalidArgument("unknown method '" + name + "'");
}

// --- v1 text: locale-independent number formatting/parsing ---------------
//
// std::to_chars emits the shortest decimal string that round-trips the
// exact double (including denormals and "-0"), and neither to_chars nor
// from_chars consults the global locale — so serialize/parse are inverses
// byte for byte regardless of the host environment.

void AppendDouble(std::string* out, double v) {
  char buf[64];
  const auto res = std::to_chars(buf, buf + sizeof(buf), v);
  out->append(buf, res.ptr);
}

void AppendUnsigned(std::string* out, uint64_t v) {
  char buf[24];
  const auto res = std::to_chars(buf, buf + sizeof(buf), v);
  out->append(buf, res.ptr);
}

bool ParseDoubleToken(const std::string& tok, double* out) {
  const char* first = tok.data();
  const char* last = tok.data() + tok.size();
  // from_chars rejects a leading '+' that operator>> used to accept.
  if (first != last && *first == '+') ++first;
  const auto res = std::from_chars(first, last, *out);
  return res.ec == std::errc() && res.ptr == last;
}

bool ParseUnsignedToken(const std::string& tok, uint64_t* out) {
  const char* first = tok.data();
  const char* last = tok.data() + tok.size();
  if (first != last && *first == '+') ++first;
  const auto res = std::from_chars(first, last, *out);
  return res.ec == std::errc() && res.ptr == last;
}

bool ParseIntToken(const std::string& tok, int* out) {
  const char* first = tok.data();
  const char* last = tok.data() + tok.size();
  if (first != last && *first == '+') ++first;
  const auto res = std::from_chars(first, last, *out);
  return res.ec == std::errc() && res.ptr == last;
}

// --- v2 binary: little-endian section writers/readers --------------------

void PutU32(std::string* out, uint32_t v) {
  out->append(reinterpret_cast<const char*>(&v), sizeof(v));
}

void PutU64(std::string* out, uint64_t v) {
  out->append(reinterpret_cast<const char*>(&v), sizeof(v));
}

void PutF64(std::string* out, double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  PutU64(out, bits);
}

template <typename T>
void PutArray(std::string* out, const std::vector<T>& v) {
  if (!v.empty())
    out->append(reinterpret_cast<const char*>(v.data()), v.size() * sizeof(T));
}

void Pad8(std::string* out) {
  while (out->size() % 8 != 0) out->push_back('\0');
}

// Bounds-checked sequential reader over serialized bytes — a std::string
// or (for the cold path, which parses straight out of an mmap) any raw
// byte range.
class ByteReader {
 public:
  explicit ByteReader(const std::string& data)
      : begin_(data.data()), p_(data.data()), end_(p_ + data.size()) {}
  ByteReader(const char* data, size_t size)
      : begin_(data), p_(data), end_(data + size) {}

  bool Read(void* out, size_t len) {
    if (static_cast<size_t>(end_ - p_) < len) return false;
    std::memcpy(out, p_, len);
    p_ += len;
    return true;
  }

  bool ReadU32(uint32_t* v) { return Read(v, sizeof(*v)); }
  bool ReadU64(uint64_t* v) { return Read(v, sizeof(*v)); }
  bool ReadF64(double* v) {
    uint64_t bits;
    if (!ReadU64(&bits)) return false;
    std::memcpy(v, &bits, sizeof(*v));
    return true;
  }

  template <typename T>
  bool ReadArray(std::vector<T>* v, uint64_t count) {
    // Reject counts the remaining bytes cannot possibly satisfy before
    // resizing, so a corrupt header cannot trigger a huge allocation.
    if (count > static_cast<uint64_t>(end_ - p_) / sizeof(T)) return false;
    v->resize(static_cast<size_t>(count));
    return count == 0 || Read(v->data(), static_cast<size_t>(count) * sizeof(T));
  }

  bool SkipPad8(size_t consumed_since_start) {
    const size_t pad = (8 - consumed_since_start % 8) % 8;
    if (static_cast<size_t>(end_ - p_) < pad) return false;
    p_ += pad;
    return true;
  }

  size_t consumed() const { return static_cast<size_t>(p_ - begin_); }

 private:
  const char* begin_;
  const char* p_;
  const char* end_;
};

/// Writes all of `data` to `fd` and fsyncs it, retrying short writes.
Status WriteAndSync(int fd, const std::string& data, const std::string& path) {
  SAPLA_FAULT_POINT("io/write");
  size_t written = 0;
  while (written < data.size()) {
    const ssize_t n =
        ::write(fd, data.data() + written, data.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      return ErrnoStatus("write failed for " + path);
    }
    written += static_cast<size_t>(n);
  }
  SAPLA_FAULT_POINT("io/fsync");
  if (::fsync(fd) != 0) return ErrnoStatus("fsync failed for " + path);
  return Status::OK();
}

/// Reads a whole file; fault points io/open_read and io/read.
Result<std::string> ReadFileToString(const std::string& path) {
  SAPLA_FAULT_POINT("io/open_read");
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  if (in.bad()) return Status::IOError("read failed for " + path);
  SAPLA_FAULT_POINT("io/read");
  return buf.str();
}

}  // namespace

Status PreflightDiskSpace(const std::string& path, uint64_t bytes) {
  SAPLA_FAULT_POINT("io/disk_full");
  const size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos ? std::string(".")
                                                     : path.substr(0, slash);
  struct statvfs vfs;
  if (::statvfs(dir.empty() ? "/" : dir.c_str(), &vfs) != 0)
    return Status::OK();
  const uint64_t free_bytes =
      static_cast<uint64_t>(vfs.f_bavail) * vfs.f_frsize;
  // Slack covers directory metadata and the rename; an exact-fit write
  // would fail mid-stream anyway.
  constexpr uint64_t kSlack = 1u << 16;
  if (free_bytes < bytes + kSlack) {
    return Status::ResourceExhausted(
        "disk full: " + std::to_string(bytes) + " bytes do not fit in " +
        std::to_string(free_bytes) + " free under " + dir);
  }
  return Status::OK();
}

Status AtomicWriteFile(const std::string& path, const std::string& data) {
  SAPLA_RETURN_NOT_OK(PreflightDiskSpace(path, data.size()));
  SAPLA_FAULT_POINT("io/open_write");
  // The temp file lives next to the target so the rename stays within one
  // filesystem (rename(2) is only atomic then).
  const std::string tmp =
      path + ".tmp." + std::to_string(static_cast<long>(::getpid()));
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC,
                        0644);
  if (fd < 0) return ErrnoStatus("cannot open " + tmp + " for writing");

  Status st = WriteAndSync(fd, data, tmp);
  if (::close(fd) != 0 && st.ok())
    st = ErrnoStatus("close failed for " + tmp);
  if (st.ok()) st = fault::Check("io/rename");
  if (st.ok() && ::rename(tmp.c_str(), path.c_str()) != 0)
    st = ErrnoStatus("rename failed for " + tmp + " -> " + path);
  // Any failure leaves the destination exactly as it was; only the temp
  // file needs cleaning up.
  if (!st.ok()) ::unlink(tmp.c_str());
  return st;
}

std::string SerializeRepresentation(const Representation& rep) {
  std::string out;
  out += kMagicV1;
  out += "\nmethod ";
  out += MethodName(rep.method);
  out += " n ";
  AppendUnsigned(&out, rep.n);
  if (rep.method == Method::kSax) {
    out += " alphabet ";
    AppendUnsigned(&out, rep.alphabet);
  }
  out += "\n";
  for (const auto& seg : rep.segments) {
    out += "seg ";
    AppendDouble(&out, seg.a);
    out += " ";
    AppendDouble(&out, seg.b);
    out += " ";
    AppendUnsigned(&out, seg.r);
    out += "\n";
  }
  if (!rep.coeffs.empty()) {
    out += "coef";
    for (const double c : rep.coeffs) {
      out += " ";
      AppendDouble(&out, c);
    }
    out += "\n";
  }
  if (!rep.symbols.empty()) {
    out += "sym";
    for (const int s : rep.symbols) {
      out += " ";
      AppendUnsigned(&out, static_cast<uint64_t>(s));
    }
    out += "\n";
  }
  out += "end\n";
  return out;
}

Result<std::vector<Representation>> ParseRepresentations(
    const std::string& text) {
  std::istringstream in(text);
  std::vector<Representation> reps;
  std::string line;
  size_t line_no = 0;
  auto fail = [&](const std::string& msg) {
    return Status::InvalidArgument("line " + std::to_string(line_no) + ": " +
                                   msg);
  };
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    if (line != kMagicV1)
      return fail("expected '" + std::string(kMagicV1) + "'");

    Representation rep;
    // Header line.
    if (!std::getline(in, line)) return fail("truncated header");
    ++line_no;
    {
      std::istringstream hdr(line);
      std::string key, method_name;
      if (!(hdr >> key >> method_name) || key != "method")
        return fail("bad header");
      const Result<Method> method = MethodFromString(method_name);
      SAPLA_RETURN_NOT_OK(method.status());
      rep.method = *method;
      std::string k2, n_tok;
      uint64_t n_val = 0;
      if (!(hdr >> k2 >> n_tok) || k2 != "n" ||
          !ParseUnsignedToken(n_tok, &n_val))
        return fail("missing n");
      if (n_val == 0 || n_val > kMaxSeriesLength)
        return fail("implausible series length " + n_tok);
      rep.n = static_cast<size_t>(n_val);
      std::string k3, a_tok;
      if (hdr >> k3) {
        uint64_t a_val = 0;
        if (k3 != "alphabet" || !(hdr >> a_tok) ||
            !ParseUnsignedToken(a_tok, &a_val))
          return fail("bad alphabet field");
        if (a_val > kMaxAlphabet)
          return fail("implausible alphabet size " + a_tok);
        rep.alphabet = static_cast<size_t>(a_val);
      }
    }
    // Body.
    bool ended = false;
    while (std::getline(in, line)) {
      ++line_no;
      if (line.empty()) continue;
      std::istringstream body(line);
      std::string tag;
      body >> tag;
      if (tag == "end") {
        ended = true;
        break;
      }
      if (tag == "seg") {
        LinearSegment seg;
        std::string a_tok, b_tok, r_tok;
        uint64_t r_val = 0;
        if (!(body >> a_tok >> b_tok >> r_tok) ||
            !ParseDoubleToken(a_tok, &seg.a) ||
            !ParseDoubleToken(b_tok, &seg.b) ||
            !ParseUnsignedToken(r_tok, &r_val))
          return fail("bad seg line");
        seg.r = static_cast<size_t>(r_val);
        // Right endpoints are strictly increasing positions in the series;
        // anything else is a corrupt or hand-mangled archive, and accepting
        // it would put downstream geometry code into UB territory.
        if (seg.r >= rep.n ||
            (!rep.segments.empty() && seg.r <= rep.segments.back().r))
          return fail("segment endpoint " + r_tok +
                      " out of order or beyond declared length");
        rep.segments.push_back(seg);
      } else if (tag == "coef") {
        std::string tok;
        while (body >> tok) {
          double c;
          if (!ParseDoubleToken(tok, &c)) return fail("bad coef value");
          rep.coeffs.push_back(c);
        }
      } else if (tag == "sym") {
        std::string tok;
        while (body >> tok) {
          int s;
          if (!ParseIntToken(tok, &s)) return fail("bad sym value");
          rep.symbols.push_back(s);
        }
      } else {
        return fail("unknown tag '" + tag + "'");
      }
    }
    if (!ended) return fail("missing 'end'");
    // Structural sanity.
    if (!rep.segments.empty() && rep.segments.back().r != rep.n - 1)
      return fail("segments do not cover the series");
    if (rep.coeffs.size() > rep.n || rep.symbols.size() > rep.n)
      return fail("more coefficients/symbols than the declared length " +
                  std::to_string(rep.n));
    reps.push_back(std::move(rep));
  }
  if (reps.empty()) return Status::InvalidArgument("no representations found");
  return reps;
}

Status SaveRepresentations(const std::string& path,
                           const std::vector<Representation>& reps) {
  std::string data;
  for (const Representation& rep : reps) data += SerializeRepresentation(rep);
  return AtomicWriteFile(path, data);
}

Result<std::vector<Representation>> LoadRepresentations(
    const std::string& path) {
  Result<std::string> data = ReadFileToString(path);
  SAPLA_RETURN_NOT_OK(data.status());
  return ParseRepresentations(*data);
}

namespace {

// v4 writer: framed, per-column codecs, slack metadata. Deterministic.
std::string SerializeStoreV4(const RepresentationStore& store) {
  SAPLA_DCHECK(!store.cold());
  const size_t num_series = store.size();
  const size_t frame_series = storedetail::kDefaultFrameSeries;
  const size_t num_frames =
      num_series == 0 ? 0 : (num_series + frame_series - 1) / frame_series;

  std::vector<std::string> blobs(num_frames);
  for (size_t f = 0; f < num_frames; ++f) {
    const size_t first = f * frame_series;
    const size_t count = std::min(frame_series, num_series - first);
    blobs[f] = colcodec::EncodeStoreFrame(store, first, count);
  }

  std::string out;
  out.append(kMagicV2, 8);
  PutU32(&out, kVersionV4);
  PutU32(&out, 0);  // flags (reserved)
  const size_t crc_pos = out.size();
  PutU32(&out, 0);  // crc_header, patched below
  PutU32(&out, 0);  // crc_directory
  PutU32(&out, 0);  // crc_frames
  PutU32(&out, 0);  // reserved; keeps the header section 8-aligned

  const size_t header_begin = out.size();
  const std::string method = MethodName(store.method());
  PutU32(&out, static_cast<uint32_t>(method.size()));
  out += method;
  Pad8(&out);
  PutU64(&out, store.series_length());
  PutU64(&out, store.alphabet());
  PutU64(&out, num_series);
  PutF64(&out, store.codec().ab_step);
  PutF64(&out, store.codec().coeff_step);
  PutU64(&out, frame_series);
  PutU64(&out, num_frames);

  const size_t directory_begin = out.size();
  uint64_t rel = 0;
  for (size_t f = 0; f < num_frames; ++f) {
    PutU64(&out, rel);
    PutU64(&out, blobs[f].size());
    rel += (blobs[f].size() + 7) / 8 * 8;  // blobs are padded to 8 on disk
  }
  for (size_t i = 0; i < num_series; ++i) PutF64(&out, store.lb_slack(i));

  const size_t frames_begin = out.size();
  for (size_t f = 0; f < num_frames; ++f) {
    out += blobs[f];
    Pad8(&out);
  }

  const uint32_t crcs[3] = {
      Crc32c(out.data() + header_begin, directory_begin - header_begin),
      Crc32c(out.data() + directory_begin, frames_begin - directory_begin),
      Crc32c(out.data() + frames_begin, out.size() - frames_begin)};
  std::memcpy(out.data() + crc_pos, crcs, sizeof(crcs));
  return out;
}

// v4 reader, shared between the hot loader and the cold open: parses and
// CRC-verifies the header + directory, locates the frame area and verifies
// its CRC. Frame *contents* are decoded by the caller (eagerly for hot,
// lazily for cold — safe because the area checksum already ran).
struct V4Parsed {
  Method method = Method::kSapla;
  size_t n = 0;
  size_t alphabet = 0;
  size_t num_series = 0;
  StoreCodecOptions codec;
  size_t frame_series = 0;
  std::vector<storedetail::FrameMeta> frames;
  std::vector<double> lb_slack;
  size_t frames_begin = 0;  // offset of the frame area from archive start
  size_t frames_size = 0;
};

Status ParseV4Common(const char* data, size_t size, V4Parsed* out) {
  auto corrupt = [](const std::string& what) {
    return Status::InvalidArgument("corrupt store file: " + what);
  };
  ByteReader r(data, size);
  char magic[8];
  uint32_t version = 0, flags = 0, reserved = 0;
  uint32_t crc_header = 0, crc_directory = 0, crc_frames = 0;
  if (!r.Read(magic, 8) || std::memcmp(magic, kMagicV2, 8) != 0)
    return corrupt("bad magic");
  if (!r.ReadU32(&version) || version != kVersionV4)
    return corrupt("not a v4 archive");
  if (!r.ReadU32(&flags) || !r.ReadU32(&crc_header) ||
      !r.ReadU32(&crc_directory) || !r.ReadU32(&crc_frames) ||
      !r.ReadU32(&reserved))
    return corrupt("truncated checksum block");
  if (flags != 0) return corrupt("unknown flags " + std::to_string(flags));
  const auto section_crc = [&](size_t begin, size_t end) {
    return Crc32c(data + begin, end - begin);
  };

  const size_t header_begin = r.consumed();
  uint32_t name_len = 0;
  if (!r.ReadU32(&name_len) || name_len > 64) return corrupt("bad method name");
  std::string method_name(name_len, '\0');
  if (!r.Read(method_name.data(), name_len)) return corrupt("bad method name");
  if (!r.SkipPad8(r.consumed())) return corrupt("truncated padding");
  uint64_t n = 0, alphabet = 0, num_series = 0;
  uint64_t frame_series = 0, num_frames = 0;
  double ab_step = 0.0, coeff_step = 0.0;
  if (!r.ReadU64(&n) || !r.ReadU64(&alphabet) || !r.ReadU64(&num_series) ||
      !r.ReadF64(&ab_step) || !r.ReadF64(&coeff_step) ||
      !r.ReadU64(&frame_series) || !r.ReadU64(&num_frames))
    return corrupt("truncated header");
  const size_t directory_begin = r.consumed();
  if (section_crc(header_begin, directory_begin) != crc_header)
    return corrupt("header section checksum mismatch (torn write or "
                   "bit flip)");
  // Header values are trusted past the checksum; still range-check them —
  // the checksum authenticates the writer's bytes, not its sanity.
  const Result<Method> method = MethodFromString(method_name);
  SAPLA_RETURN_NOT_OK(method.status());
  if (n > kMaxSeriesLength || alphabet > kMaxAlphabet)
    return corrupt("implausible n/alphabet");
  if (!(ab_step >= 0.0) || !(coeff_step >= 0.0) || !std::isfinite(ab_step) ||
      !std::isfinite(coeff_step))
    return corrupt("invalid quantization steps");
  if (frame_series == 0 || frame_series > (uint64_t{1} << 32))
    return corrupt("invalid frame size");
  const uint64_t expect_frames =
      num_series == 0 ? 0 : (num_series + frame_series - 1) / frame_series;
  if (num_frames != expect_frames) return corrupt("frame count mismatch");

  std::vector<uint64_t> dir;
  std::vector<double> slack;
  if (!r.ReadArray(&dir, num_frames * 2))
    return corrupt("truncated frame directory");
  if (!r.ReadArray(&slack, num_series)) return corrupt("truncated slack column");
  const size_t frames_begin = r.consumed();
  if (section_crc(directory_begin, frames_begin) != crc_directory)
    return corrupt("directory section checksum mismatch (torn write or "
                   "bit flip)");
  const size_t frames_size = size - frames_begin;
  if (section_crc(frames_begin, size) != crc_frames)
    return corrupt("frame section checksum mismatch (torn write or "
                   "bit flip)");
  for (double s : slack)
    if (!(s >= 0.0) || !std::isfinite(s))
      return corrupt("invalid slack value");

  out->frames.clear();
  out->frames.reserve(num_frames);
  for (uint64_t f = 0; f < num_frames; ++f) {
    storedetail::FrameMeta meta;
    meta.offset = dir[2 * f];
    meta.length = dir[2 * f + 1];
    meta.first_id = f * frame_series;
    meta.count = std::min<uint64_t>(frame_series, num_series - meta.first_id);
    if (meta.offset > frames_size || meta.length > frames_size - meta.offset)
      return corrupt("frame blob overruns the frame area");
    out->frames.push_back(meta);
  }
  out->method = *method;
  out->n = static_cast<size_t>(n);
  out->alphabet = static_cast<size_t>(alphabet);
  out->num_series = static_cast<size_t>(num_series);
  out->codec.ab_step = ab_step;
  out->codec.coeff_step = coeff_step;
  out->frame_series = static_cast<size_t>(frame_series);
  out->lb_slack = std::move(slack);
  out->frames_begin = frames_begin;
  out->frames_size = frames_size;
  return Status::OK();
}

// Hot v4 load: decode every frame and concatenate into resident arenas.
Result<RepresentationStore> ParseStoreV4Hot(const char* data, size_t size) {
  V4Parsed h;
  SAPLA_RETURN_NOT_OK(ParseV4Common(data, size, &h));
  std::vector<uint64_t> seg_off{0}, coeff_off{0}, sym_off{0};
  std::vector<double> a, b, coeffs;
  std::vector<uint32_t> rr;
  std::vector<int> symbols;
  storedetail::DecodedFrame df;
  for (const storedetail::FrameMeta& meta : h.frames) {
    Status st = colcodec::DecodeStoreFrame(
        data + h.frames_begin + meta.offset, static_cast<size_t>(meta.length),
        static_cast<size_t>(meta.first_id), h.n, &df);
    if (!st.ok())
      return Status::InvalidArgument("corrupt store file: " + st.message());
    if (df.count != meta.count)
      return Status::InvalidArgument(
          "corrupt store file: frame series count mismatch");
    const uint64_t seg_base = a.size();
    const uint64_t coeff_base = coeffs.size();
    const uint64_t sym_base = symbols.size();
    for (size_t i = 1; i <= df.count; ++i) {
      seg_off.push_back(seg_base + df.seg_off[i]);
      coeff_off.push_back(coeff_base + df.coeff_off[i]);
      sym_off.push_back(sym_base + df.sym_off[i]);
    }
    a.insert(a.end(), df.a.begin(), df.a.end());
    b.insert(b.end(), df.b.begin(), df.b.end());
    rr.insert(rr.end(), df.r.begin(), df.r.end());
    coeffs.insert(coeffs.end(), df.coeffs.begin(), df.coeffs.end());
    symbols.insert(symbols.end(), df.symbols.begin(), df.symbols.end());
  }
  Result<RepresentationStore> built = RepresentationStore::FromColumns(
      h.method, h.n, h.alphabet, std::move(seg_off), std::move(coeff_off),
      std::move(sym_off), std::move(a), std::move(b), std::move(rr),
      std::move(coeffs), std::move(symbols));
  if (!built.ok())
    return Status::InvalidArgument("corrupt store file: " +
                                   built.status().message());
  RepresentationStore store = std::move(built).ValueOrDie();
  store.SetCodecState(h.codec, std::move(h.lb_slack));
  return store;
}

}  // namespace

std::string SerializeRepresentationStore(const RepresentationStore& store,
                                         StoreFormat format) {
  if (format == StoreFormat::kV4 ||
      (format == StoreFormat::kAuto && store.quantized()))
    return SerializeStoreV4(store);
  std::string out;
  out.append(kMagicV2, 8);
  PutU32(&out, kVersionV3);
  PutU32(&out, 0);  // flags (reserved)
  const size_t crc_pos = out.size();
  PutU32(&out, 0);  // crc_header, patched below
  PutU32(&out, 0);  // crc_offsets
  PutU32(&out, 0);  // crc_columns
  PutU32(&out, 0);  // reserved; keeps the header section 8-aligned

  const size_t header_begin = out.size();
  const std::string method = MethodName(store.method());
  PutU32(&out, static_cast<uint32_t>(method.size()));
  out += method;
  Pad8(&out);
  PutU64(&out, store.series_length());
  PutU64(&out, store.alphabet());
  PutU64(&out, store.size());
  PutU64(&out, store.a_column().size());
  PutU64(&out, store.coeff_column().size());
  PutU64(&out, store.symbol_column().size());

  const size_t offsets_begin = out.size();
  PutArray(&out, store.seg_offsets());
  PutArray(&out, store.coeff_offsets());
  PutArray(&out, store.symbol_offsets());

  const size_t columns_begin = out.size();
  PutArray(&out, store.a_column());
  PutArray(&out, store.b_column());
  PutArray(&out, store.r_column());  // u32
  Pad8(&out);
  PutArray(&out, store.coeff_column());
  PutArray(&out, store.symbol_column());  // i32
  Pad8(&out);

  // Patch the section checksums now that the byte ranges are final.
  const uint32_t crcs[3] = {
      Crc32c(out.data() + header_begin, offsets_begin - header_begin),
      Crc32c(out.data() + offsets_begin, columns_begin - offsets_begin),
      Crc32c(out.data() + columns_begin, out.size() - columns_begin)};
  std::memcpy(out.data() + crc_pos, crcs, sizeof(crcs));
  return out;
}

Result<RepresentationStore> ParseRepresentationStore(const std::string& data) {
  // v1 text auto-detection: migrate through Append (requires homogeneity).
  if (data.compare(0, std::strlen(kMagicV1), kMagicV1) == 0) {
    const Result<std::vector<Representation>> reps = ParseRepresentations(data);
    SAPLA_RETURN_NOT_OK(reps.status());
    RepresentationStore store;
    for (size_t i = 1; i < reps->size(); ++i) {
      const Representation& first = (*reps)[0];
      const Representation& rep = (*reps)[i];
      if (rep.method != first.method || rep.n != first.n ||
          rep.alphabet != first.alphabet)
        return Status::InvalidArgument(
            "v1 archive is heterogeneous (representation " +
            std::to_string(i) +
            " differs in method/n/alphabet); columnar stores require a "
            "homogeneous corpus");
    }
    for (const Representation& rep : *reps) store.Append(rep);
    return store;
  }

  auto corrupt = [](const std::string& what) {
    return Status::InvalidArgument("corrupt store file: " + what);
  };
  if (data.size() < 8 || data.compare(0, 8, kMagicV2, 8) != 0)
    return corrupt("bad magic (neither v1 text nor v2 binary)");
  ByteReader r(data);
  char magic[8];
  r.Read(magic, 8);
  uint32_t version = 0;
  if (!r.ReadU32(&version)) return corrupt("truncated header");
  if (version == kVersionV4) return ParseStoreV4Hot(data.data(), data.size());
  if (version != kVersionV2 && version != kVersionV3)
    return Status::InvalidArgument("unsupported store version " +
                                   std::to_string(version));

  // v3 carries per-section CRC32C checksums; v2 predates them and is
  // accepted with structural validation only.
  const bool has_crc = version == kVersionV3;
  uint32_t flags = 0, reserved = 0;
  uint32_t crc_header = 0, crc_offsets = 0, crc_columns = 0;
  if (has_crc) {
    if (!r.ReadU32(&flags) || !r.ReadU32(&crc_header) ||
        !r.ReadU32(&crc_offsets) || !r.ReadU32(&crc_columns) ||
        !r.ReadU32(&reserved))
      return corrupt("truncated checksum block");
    if (flags != 0)
      return corrupt("unknown flags " + std::to_string(flags));
  }
  const auto section_crc = [&](size_t begin, size_t end) {
    return Crc32c(data.data() + begin, end - begin);
  };

  const size_t header_begin = r.consumed();
  uint32_t name_len = 0;
  if (!r.ReadU32(&name_len) || name_len > 64) return corrupt("bad method name");
  std::string method_name(name_len, '\0');
  if (!r.Read(method_name.data(), name_len)) return corrupt("bad method name");
  if (!r.SkipPad8(r.consumed())) return corrupt("truncated padding");

  uint64_t n = 0, alphabet = 0, num_series = 0;
  uint64_t num_segments = 0, num_coeffs = 0, num_symbols = 0;
  if (!r.ReadU64(&n) || !r.ReadU64(&alphabet) || !r.ReadU64(&num_series) ||
      !r.ReadU64(&num_segments) || !r.ReadU64(&num_coeffs) ||
      !r.ReadU64(&num_symbols))
    return corrupt("truncated header");
  const size_t offsets_begin = r.consumed();
  if (has_crc && section_crc(header_begin, offsets_begin) != crc_header)
    return corrupt("header section checksum mismatch (torn write or "
                   "bit flip)");
  // Only now interpret the header values: past the checksum they are
  // trusted to be what the writer stored.
  const Result<Method> method = MethodFromString(method_name);
  SAPLA_RETURN_NOT_OK(method.status());

  std::vector<uint64_t> seg_off, coeff_off, sym_off;
  std::vector<double> a, b, coeffs;
  std::vector<uint32_t> rr;
  std::vector<int> symbols;
  if (!r.ReadArray(&seg_off, num_series + 1) ||
      !r.ReadArray(&coeff_off, num_series + 1) ||
      !r.ReadArray(&sym_off, num_series + 1))
    return corrupt("truncated offset tables");
  const size_t columns_begin = r.consumed();
  if (has_crc && section_crc(offsets_begin, columns_begin) != crc_offsets)
    return corrupt("offset-table section checksum mismatch (torn write or "
                   "bit flip)");
  if (!r.ReadArray(&a, num_segments) || !r.ReadArray(&b, num_segments) ||
      !r.ReadArray(&rr, num_segments) || !r.SkipPad8(r.consumed()) ||
      !r.ReadArray(&coeffs, num_coeffs) ||
      !r.ReadArray(&symbols, num_symbols) || !r.SkipPad8(r.consumed()))
    return corrupt("truncated columns");
  if (r.consumed() != data.size()) return corrupt("trailing bytes");
  if (has_crc && section_crc(columns_begin, data.size()) != crc_columns)
    return corrupt("column section checksum mismatch (torn write or "
                   "bit flip)");

  Result<RepresentationStore> store = RepresentationStore::FromColumns(
      *method, static_cast<size_t>(n), static_cast<size_t>(alphabet),
      std::move(seg_off), std::move(coeff_off), std::move(sym_off),
      std::move(a), std::move(b), std::move(rr), std::move(coeffs),
      std::move(symbols));
  if (!store.ok())
    return Status::InvalidArgument("corrupt store file: " +
                                   store.status().message());
  return store;
}

Status SaveRepresentationStore(const std::string& path,
                               const RepresentationStore& store,
                               StoreFormat format) {
  return AtomicWriteFile(path, SerializeRepresentationStore(store, format));
}

Result<RepresentationStore> LoadRepresentationStore(const std::string& path) {
  Result<std::string> data = ReadFileToString(path);
  SAPLA_RETURN_NOT_OK(data.status());
  return ParseRepresentationStore(*data);
}

Result<RepresentationStore> OpenColdRepresentationStore(
    const std::string& path, const ColdStoreOptions& options) {
  Result<MmapFile> file = MmapFile::Open(path);
  SAPLA_RETURN_NOT_OK(file.status());
  return OpenColdRepresentationStoreAt(path, 0, file->size(), options);
}

Result<RepresentationStore> OpenColdRepresentationStoreAt(
    const std::string& path, size_t offset, size_t length,
    const ColdStoreOptions& options) {
  Result<MmapFile> opened = MmapFile::Open(path);
  SAPLA_RETURN_NOT_OK(opened.status());
  MmapFile file = std::move(opened).ValueOrDie();
  if (offset > file.size() || length > file.size() - offset)
    return Status::InvalidArgument("cold open: section exceeds file size");
  const char* base = file.data() + offset;
  // Cold residency needs the framed layout; steer older archives to the
  // resident loader instead of half-supporting them here.
  {
    ByteReader r(base, length);
    char magic[8];
    uint32_t version = 0;
    if (!r.Read(magic, 8) || std::memcmp(magic, kMagicV2, 8) != 0 ||
        !r.ReadU32(&version))
      return Status::InvalidArgument(
          "cold open: not a SAPLACOL archive: " + path);
    if (version != kVersionV4)
      return Status::InvalidArgument(
          "cold open requires a v4 archive (got version " +
          std::to_string(version) +
          "); use LoadRepresentationStore for a resident load");
  }
  V4Parsed h;
  SAPLA_RETURN_NOT_OK(ParseV4Common(base, length, &h));
  auto cold = std::make_shared<storedetail::ColdColumns>(options.budget);
  cold->file = std::move(file);
  cold->frames_base = cold->file.data() + offset + h.frames_begin;
  cold->frames_size = h.frames_size;
  cold->frames = std::move(h.frames);
  cold->frame_series = h.frame_series;
  cold->series_length = h.n;
  cold->cache_capacity_bytes = options.cache_bytes > 0 ? options.cache_bytes : 1;
  return RepresentationStore::FromColdColumns(
      h.method, h.n, h.alphabet, h.num_series, std::move(cold), h.codec,
      std::move(h.lb_slack));
}

Status SaveDatasetTsv(const std::string& path, const Dataset& dataset) {
  std::string data;
  for (const TimeSeries& ts : dataset.series) {
    data += std::to_string(ts.label);
    for (const double v : ts.values) {
      data += '\t';
      AppendDouble(&data, v);
    }
    data += '\n';
  }
  return AtomicWriteFile(path, data);
}

}  // namespace sapla
