#include "ts/io.h"

#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <sstream>

namespace sapla {
namespace {

constexpr char kMagic[] = "SAPLA-REP v1";

Result<Method> MethodFromString(const std::string& name) {
  for (const Method m : AllMethods())
    if (MethodName(m) == name) return m;
  return Status::InvalidArgument("unknown method '" + name + "'");
}

}  // namespace

std::string SerializeRepresentation(const Representation& rep) {
  std::ostringstream out;
  out.precision(17);
  out << kMagic << "\n";
  out << "method " << MethodName(rep.method) << " n " << rep.n;
  if (rep.method == Method::kSax) out << " alphabet " << rep.alphabet;
  out << "\n";
  for (const auto& seg : rep.segments)
    out << "seg " << seg.a << " " << seg.b << " " << seg.r << "\n";
  if (!rep.coeffs.empty()) {
    out << "coef";
    for (const double c : rep.coeffs) out << " " << c;
    out << "\n";
  }
  if (!rep.symbols.empty()) {
    out << "sym";
    for (const int s : rep.symbols) out << " " << s;
    out << "\n";
  }
  out << "end\n";
  return out.str();
}

Result<std::vector<Representation>> ParseRepresentations(
    const std::string& text) {
  std::istringstream in(text);
  std::vector<Representation> reps;
  std::string line;
  size_t line_no = 0;
  auto fail = [&](const std::string& msg) {
    return Status::InvalidArgument("line " + std::to_string(line_no) + ": " +
                                   msg);
  };
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    if (line != kMagic) return fail("expected '" + std::string(kMagic) + "'");

    Representation rep;
    // Header line.
    if (!std::getline(in, line)) return fail("truncated header");
    ++line_no;
    {
      std::istringstream hdr(line);
      std::string key, method_name;
      if (!(hdr >> key >> method_name) || key != "method")
        return fail("bad header");
      const Result<Method> method = MethodFromString(method_name);
      SAPLA_RETURN_NOT_OK(method.status());
      rep.method = *method;
      std::string k2;
      if (!(hdr >> k2 >> rep.n) || k2 != "n") return fail("missing n");
      std::string k3;
      if (hdr >> k3) {
        if (k3 != "alphabet" || !(hdr >> rep.alphabet))
          return fail("bad alphabet field");
      }
    }
    // Body.
    bool ended = false;
    while (std::getline(in, line)) {
      ++line_no;
      if (line.empty()) continue;
      std::istringstream body(line);
      std::string tag;
      body >> tag;
      if (tag == "end") {
        ended = true;
        break;
      }
      if (tag == "seg") {
        LinearSegment seg;
        if (!(body >> seg.a >> seg.b >> seg.r)) return fail("bad seg line");
        rep.segments.push_back(seg);
      } else if (tag == "coef") {
        double c;
        while (body >> c) rep.coeffs.push_back(c);
      } else if (tag == "sym") {
        int s;
        while (body >> s) rep.symbols.push_back(s);
      } else {
        return fail("unknown tag '" + tag + "'");
      }
    }
    if (!ended) return fail("missing 'end'");
    // Structural sanity.
    if (!rep.segments.empty() && rep.segments.back().r != rep.n - 1)
      return fail("segments do not cover the series");
    reps.push_back(std::move(rep));
  }
  if (reps.empty()) return Status::InvalidArgument("no representations found");
  return reps;
}

Status SaveRepresentations(const std::string& path,
                           const std::vector<Representation>& reps) {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open " + path + " for writing");
  for (const Representation& rep : reps) out << SerializeRepresentation(rep);
  if (!out) return Status::IOError("write failed for " + path);
  return Status::OK();
}

Result<std::vector<Representation>> LoadRepresentations(
    const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return ParseRepresentations(buf.str());
}

Status SaveDatasetTsv(const std::string& path, const Dataset& dataset) {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open " + path + " for writing");
  out.precision(17);
  for (const TimeSeries& ts : dataset.series) {
    out << ts.label;
    for (const double v : ts.values) out << '\t' << v;
    out << '\n';
  }
  if (!out) return Status::IOError("write failed for " + path);
  return Status::OK();
}

}  // namespace sapla
