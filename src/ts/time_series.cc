#include "ts/time_series.h"

#include <cmath>

#include "util/status.h"

namespace sapla {

void ZNormalize(std::vector<double>* values) {
  const size_t n = values->size();
  if (n == 0) return;
  double mean = 0.0;
  for (double v : *values) mean += v;
  mean /= static_cast<double>(n);
  double var = 0.0;
  for (double v : *values) var += (v - mean) * (v - mean);
  var /= static_cast<double>(n);
  const double sd = std::sqrt(var);
  if (sd < 1e-12) {
    for (double& v : *values) v = 0.0;
    return;
  }
  for (double& v : *values) v = (v - mean) / sd;
}

std::vector<double> ResampleToLength(const std::vector<double>& values,
                                     size_t target_length) {
  SAPLA_DCHECK(!values.empty());
  SAPLA_DCHECK(target_length >= 1);
  const size_t n = values.size();
  std::vector<double> out(target_length);
  if (n == 1 || target_length == 1) {
    for (auto& v : out) v = values[0];
    return out;
  }
  const double scale =
      static_cast<double>(n - 1) / static_cast<double>(target_length - 1);
  for (size_t i = 0; i < target_length; ++i) {
    const double x = static_cast<double>(i) * scale;
    const size_t lo = static_cast<size_t>(x);
    const size_t hi = lo + 1 < n ? lo + 1 : n - 1;
    const double frac = x - static_cast<double>(lo);
    out[i] = values[lo] * (1.0 - frac) + values[hi] * frac;
  }
  return out;
}

double SquaredEuclideanDistance(const std::vector<double>& a,
                                const std::vector<double>& b) {
  SAPLA_DCHECK(a.size() == b.size());
  double s = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    s += d * d;
  }
  return s;
}

double EuclideanDistance(const std::vector<double>& a,
                         const std::vector<double>& b) {
  return std::sqrt(SquaredEuclideanDistance(a, b));
}

}  // namespace sapla
