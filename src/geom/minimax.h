#ifndef SAPLA_GEOM_MINIMAX_H_
#define SAPLA_GEOM_MINIMAX_H_

// Minimax (Chebyshev-best) line fit: the line minimizing the MAXIMUM
// absolute deviation over a segment — the exact quantity the paper's
// objective measures. Least squares minimizes the L2 residual and is what
// the paper's equations manipulate in O(1); the minimax line is strictly
// better on max deviation (up to ~2x on adversarial data) at O(l log(1/eps))
// per fit, making it a natural final-polish step once segment boundaries
// are fixed (SaplaOptions::minimax_refit / AplaOptions equivalent).
//
// Computation: f(a) = (max_t(y_t - a t) - min_t(y_t - a t)) / 2 is convex in
// the slope a (pointwise max/min of affine functions), so golden-section
// search over a converges to the optimum; the intercept centers the
// residual band. The optimal max deviation equals f(a*).

#include <cstddef>

#include "geom/line_fit.h"

namespace sapla {

/// Result of a minimax fit: the line plus its (optimal) max deviation.
struct MinimaxFitResult {
  Line line;
  double max_deviation = 0.0;
};

/// \brief L-infinity-optimal line through (0, values[0])..(l-1, values[l-1]).
///
/// Requires l >= 1. Exact for l <= 2; otherwise converges the slope to
/// ~1e-12 relative precision.
MinimaxFitResult MinimaxFit(const double* values, size_t l);

}  // namespace sapla

#endif  // SAPLA_GEOM_MINIMAX_H_
