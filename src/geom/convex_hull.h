#ifndef SAPLA_GEOM_CONVEX_HULL_H_
#define SAPLA_GEOM_CONVEX_HULL_H_

// Incremental convex hull with O(log h) max-deviation queries.
//
// APLA's dynamic program needs the max deviation of every prefix-extensible
// range against its (changing) least-squares line. The residual extrema of
// any line over a point set lie on the set's upper/lower convex hulls, and
// because hull slopes are monotone the signed distance to a fixed line is
// concave along each hull — so the max is found by ternary search. Points
// arrive with strictly increasing x (time), so a monotone-chain push is
// amortized O(1). This turns the naive O(n) per-range deviation scan into
// O(log n), which is what makes APLA's stated O(Nn^2) bound achievable.

#include <cstddef>
#include <vector>

#include "geom/line_fit.h"

namespace sapla {

/// \brief Upper+lower convex hull of points appended in increasing x order.
class IncrementalHull {
 public:
  /// Removes all points.
  void Clear();

  /// Appends a point; x must be strictly greater than all previous x.
  /// Amortized O(1).
  void Add(double x, double y);

  size_t num_points() const { return num_points_; }

  /// Max over all inserted points of (y - line(x)); can be negative when all
  /// points lie below the line. O(log h).
  double MaxAbove(const Line& line) const;

  /// Max over all inserted points of (line(x) - y). O(log h).
  double MaxBelow(const Line& line) const;

  /// Max |y - line(x)| over all inserted points. O(log h).
  double MaxDeviation(const Line& line) const;

 private:
  struct Point {
    double x, y;
  };
  static double MaxOverChain(const std::vector<Point>& chain, double a,
                             double b, double sign);

  std::vector<Point> upper_;
  std::vector<Point> lower_;
  size_t num_points_ = 0;
};

}  // namespace sapla

#endif  // SAPLA_GEOM_CONVEX_HULL_H_
