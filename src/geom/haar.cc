#include "geom/haar.h"

#include <cmath>

#include "util/status.h"

namespace sapla {

size_t NextPowerOfTwo(size_t n) {
  size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

std::vector<double> HaarTransform(const std::vector<double>& values) {
  const size_t n = values.size();
  SAPLA_DCHECK(n >= 1 && (n & (n - 1)) == 0);
  std::vector<double> coeffs = values;
  std::vector<double> scratch(n);
  const double inv_sqrt2 = 1.0 / std::sqrt(2.0);
  // Repeatedly split the approximation band into (approx, detail) halves;
  // details accumulate from the back of the pyramid inward.
  for (size_t len = n; len >= 2; len /= 2) {
    const size_t half = len / 2;
    for (size_t i = 0; i < half; ++i) {
      scratch[i] = (coeffs[2 * i] + coeffs[2 * i + 1]) * inv_sqrt2;
      scratch[half + i] = (coeffs[2 * i] - coeffs[2 * i + 1]) * inv_sqrt2;
    }
    for (size_t i = 0; i < len; ++i) coeffs[i] = scratch[i];
  }
  return coeffs;
}

std::vector<double> HaarInverse(const std::vector<double>& coeffs) {
  const size_t n = coeffs.size();
  SAPLA_DCHECK(n >= 1 && (n & (n - 1)) == 0);
  std::vector<double> values = coeffs;
  std::vector<double> scratch(n);
  const double inv_sqrt2 = 1.0 / std::sqrt(2.0);
  for (size_t len = 2; len <= n; len *= 2) {
    const size_t half = len / 2;
    for (size_t i = 0; i < half; ++i) {
      scratch[2 * i] = (values[i] + values[half + i]) * inv_sqrt2;
      scratch[2 * i + 1] = (values[i] - values[half + i]) * inv_sqrt2;
    }
    for (size_t i = 0; i < len; ++i) values[i] = scratch[i];
  }
  return values;
}

}  // namespace sapla
