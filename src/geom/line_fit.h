#ifndef SAPLA_GEOM_LINE_FIT_H_
#define SAPLA_GEOM_LINE_FIT_H_

// Least-squares line fitting over arbitrary ranges in O(1).
//
// Every piecewise-linear method in this library (PLA, APLA, SAPLA, the
// Dist_LB projection) needs the least-squares line of a contiguous range of
// a series. We precompute prefix sums of c_t, t*c_t and c_t^2 once per
// series, after which the fit of ANY range [s, e] is O(1):
//
//   a = (12*St - 6*(l-1)*S1) / (l*(l-1)*(l+1)),   b = mean - a*(l-1)/2
//
// where S1, St are the range's value and (local-)time-weighted sums. This is
// algebraically identical to the paper's Eq. (1) and subsumes its incremental
// equations (2)-(11), which we verify against this engine in
// core/paper_equations.h.

#include <cstddef>
#include <vector>

namespace sapla {

/// \brief A line y = a*t + b over a segment's local coordinate t = 0..l-1.
///
/// Matches the paper's representation coefficients (a_i, b_i).
struct Line {
  double a = 0.0;  ///< slope
  double b = 0.0;  ///< y-intercept at the segment's first point

  double At(double t) const { return a * t + b; }
};

/// Least-squares line through (0, y_0) .. (l-1, y_{l-1}) given the
/// sufficient statistics S1 = sum(y_t) and St = sum(t*y_t).
/// For l == 1 returns the horizontal line through the single point.
Line FitFromSums(double s1, double st, size_t l);

/// Least-squares line over a raw vector (local coordinates).
Line FitLine(const double* values, size_t l);

/// \brief O(1) range queries over one series via prefix sums.
class PrefixFitter {
 public:
  /// Builds prefix sums; O(n). The series is copied so the fitter stays
  /// valid independently of the caller's buffer.
  explicit PrefixFitter(std::vector<double> values);

  size_t size() const { return values_.size(); }
  const std::vector<double>& values() const { return values_; }

  /// Sum of c_t over the inclusive range [s, e].
  double RangeSum(size_t s, size_t e) const;

  /// Sum of (t - s) * c_t over [s, e] (local time weighting).
  double RangeLocalTimeSum(size_t s, size_t e) const;

  /// Sum of c_t^2 over [s, e].
  double RangeSquareSum(size_t s, size_t e) const;

  /// Least-squares line of the range [s, e] in local coordinates. O(1).
  Line Fit(size_t s, size_t e) const;

  /// Sum of squared residuals of `line` over [s, e]. O(1).
  double ResidualSse(size_t s, size_t e, const Line& line) const;

  /// Max |c_t - line(t - s)| over [s, e]. O(l) scan — the exact quantity the
  /// paper calls segment max deviation (Definition 3.4).
  double MaxDeviation(size_t s, size_t e, const Line& line) const;

  /// Mean absolute residual of `line` over [s, e]. O(l).
  double MeanAbsDeviation(size_t s, size_t e, const Line& line) const;

 private:
  std::vector<double> values_;
  std::vector<double> p1_;   // prefix of c_t
  std::vector<double> pt_;   // prefix of t * c_t (global t)
  std::vector<double> p2_;   // prefix of c_t^2
};

}  // namespace sapla

#endif  // SAPLA_GEOM_LINE_FIT_H_
