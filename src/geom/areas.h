#ifndef SAPLA_GEOM_AREAS_H_
#define SAPLA_GEOM_AREAS_H_

// Analytic Increment Area and Reconstruction Area (paper §4.1).
//
// Both areas are integrals of the absolute difference of two lines over an
// interval. Because two lines cross at most once (Lemma 4.1 shows the
// increment/extended pair crosses exactly once), each integral is one or two
// triangles and has a closed form — no point-by-point accumulation needed.

#include "geom/line_fit.h"

namespace sapla {

/// Integral over x in [x0, x1] of |alpha*x + beta|. Closed form; splits at
/// the sign change when it falls inside the interval.
double AbsLinearIntegral(double alpha, double beta, double x0, double x1);

/// \brief Increment Area (Definition 4.1).
///
/// Area between the Increment Segment line `incremented` (LS fit including
/// the new point) and the Extended Segment line `extended` (old fit
/// extrapolated one step), both in local coordinates over x in [0, l_old]
/// (l_old+1 points after the increment).
double IncrementArea(const Line& incremented, const Line& extended,
                     size_t old_length);

/// \brief Reconstruction Area (Definition 4.2).
///
/// Area between the merged segment's line (local x in [0, l_left+l_right-1])
/// and the two original lines: `left` over x in [0, l_left-1] and `right`
/// over x in [l_left, l_left+l_right-1] (right uses its own local
/// coordinate x - l_left).
double ReconstructionArea(const Line& merged, const Line& left, size_t l_left,
                          const Line& right, size_t l_right);

}  // namespace sapla

#endif  // SAPLA_GEOM_AREAS_H_
