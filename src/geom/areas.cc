#include "geom/areas.h"

#include <cmath>

#include "util/status.h"

namespace sapla {

double AbsLinearIntegral(double alpha, double beta, double x0, double x1) {
  SAPLA_DCHECK(x1 >= x0);
  auto antiderivative_abs = [&](double lo, double hi) {
    // Integral of |alpha x + beta| when the sign is constant on [lo, hi]:
    // |F(hi) - F(lo)| with F the antiderivative of (alpha x + beta).
    const double f_lo = 0.5 * alpha * lo * lo + beta * lo;
    const double f_hi = 0.5 * alpha * hi * hi + beta * hi;
    return std::fabs(f_hi - f_lo);
  };
  if (alpha == 0.0) return std::fabs(beta) * (x1 - x0);
  const double root = -beta / alpha;
  if (root <= x0 || root >= x1) return antiderivative_abs(x0, x1);
  return antiderivative_abs(x0, root) + antiderivative_abs(root, x1);
}

double IncrementArea(const Line& incremented, const Line& extended,
                     size_t old_length) {
  // Difference of the two lines is itself linear; integrate its absolute
  // value over the increment segment's support [0, l_old].
  const double alpha = incremented.a - extended.a;
  const double beta = incremented.b - extended.b;
  return AbsLinearIntegral(alpha, beta, 0.0, static_cast<double>(old_length));
}

double ReconstructionArea(const Line& merged, const Line& left, size_t l_left,
                          const Line& right, size_t l_right) {
  SAPLA_DCHECK(l_left >= 1 && l_right >= 1);
  const double ll = static_cast<double>(l_left);
  const double lr = static_cast<double>(l_right);
  // Left piece: merged(x) - left(x) over [0, l_left - 1].
  const double area_left = AbsLinearIntegral(merged.a - left.a,
                                             merged.b - left.b, 0.0, ll - 1.0);
  // Right piece: merged(x) - right(x - l_left) over [l_left, l_left+l_right-1].
  // Substituting u = x - l_left: (merged.a - right.a) u + merged(l_left) -
  // right(0) over u in [0, l_right - 1].
  const double area_right =
      AbsLinearIntegral(merged.a - right.a,
                        merged.a * ll + merged.b - right.b, 0.0, lr - 1.0);
  return area_left + area_right;
}

}  // namespace sapla
