#ifndef SAPLA_GEOM_HAAR_H_
#define SAPLA_GEOM_HAAR_H_

// Orthonormal Haar wavelet transform.
//
// Substrate for the original APCA construction (Keogh et al. 2001): APCA
// computes the Haar DWT, keeps the largest coefficients, reconstructs, and
// repairs the segment count. The transform here is the standard orthonormal
// decimating filter bank; power-of-two lengths round-trip exactly, other
// lengths are handled by the callers via padding.

#include <cstddef>
#include <vector>

namespace sapla {

/// Forward orthonormal Haar DWT. Requires a power-of-two length >= 1.
/// Output layout: [approx | detail_level_1 | ... | detail_level_log2(n)]
/// (the usual pyramid, coarsest first).
std::vector<double> HaarTransform(const std::vector<double>& values);

/// Inverse of HaarTransform.
std::vector<double> HaarInverse(const std::vector<double>& coeffs);

/// Smallest power of two >= n.
size_t NextPowerOfTwo(size_t n);

}  // namespace sapla

#endif  // SAPLA_GEOM_HAAR_H_
