#include "geom/line_fit.h"

#include <cmath>

#include "util/status.h"

namespace sapla {

Line FitFromSums(double s1, double st, size_t l) {
  Line line;
  if (l <= 1) {
    line.a = 0.0;
    line.b = s1;  // single point: S1 is the point itself
    return line;
  }
  const double ld = static_cast<double>(l);
  // a = (12*St - 6*(l-1)*S1) / (l*(l^2-1)); exact LS solution, equals Eq.(1).
  line.a = (12.0 * st - 6.0 * (ld - 1.0) * s1) / (ld * (ld - 1.0) * (ld + 1.0));
  line.b = s1 / ld - line.a * (ld - 1.0) / 2.0;
  return line;
}

Line FitLine(const double* values, size_t l) {
  double s1 = 0.0, st = 0.0;
  for (size_t t = 0; t < l; ++t) {
    s1 += values[t];
    st += static_cast<double>(t) * values[t];
  }
  return FitFromSums(s1, st, l);
}

PrefixFitter::PrefixFitter(std::vector<double> values)
    : values_(std::move(values)),
      p1_(values_.size() + 1, 0.0),
      pt_(values_.size() + 1, 0.0),
      p2_(values_.size() + 1, 0.0) {
  for (size_t t = 0; t < values_.size(); ++t) {
    p1_[t + 1] = p1_[t] + values_[t];
    pt_[t + 1] = pt_[t] + static_cast<double>(t) * values_[t];
    p2_[t + 1] = p2_[t] + values_[t] * values_[t];
  }
}

double PrefixFitter::RangeSum(size_t s, size_t e) const {
  SAPLA_DCHECK(s <= e && e < values_.size());
  return p1_[e + 1] - p1_[s];
}

double PrefixFitter::RangeLocalTimeSum(size_t s, size_t e) const {
  SAPLA_DCHECK(s <= e && e < values_.size());
  return (pt_[e + 1] - pt_[s]) - static_cast<double>(s) * RangeSum(s, e);
}

double PrefixFitter::RangeSquareSum(size_t s, size_t e) const {
  SAPLA_DCHECK(s <= e && e < values_.size());
  return p2_[e + 1] - p2_[s];
}

Line PrefixFitter::Fit(size_t s, size_t e) const {
  return FitFromSums(RangeSum(s, e), RangeLocalTimeSum(s, e), e - s + 1);
}

double PrefixFitter::ResidualSse(size_t s, size_t e, const Line& line) const {
  const size_t l = e - s + 1;
  const double ld = static_cast<double>(l);
  const double t1 = ld * (ld - 1.0) / 2.0;                  // sum t
  const double t2 = (ld - 1.0) * ld * (2.0 * ld - 1.0) / 6.0;  // sum t^2
  const double s1 = RangeSum(s, e);
  const double st = RangeLocalTimeSum(s, e);
  const double s2 = RangeSquareSum(s, e);
  const double sse = s2 - 2.0 * line.a * st - 2.0 * line.b * s1 +
                     line.a * line.a * t2 + 2.0 * line.a * line.b * t1 +
                     line.b * line.b * ld;
  // Guard tiny negative values caused by cancellation.
  return sse > 0.0 ? sse : 0.0;
}

double PrefixFitter::MaxDeviation(size_t s, size_t e, const Line& line) const {
  SAPLA_DCHECK(s <= e && e < values_.size());
  double m = 0.0;
  for (size_t t = s; t <= e; ++t) {
    const double d = std::fabs(values_[t] - line.At(static_cast<double>(t - s)));
    if (d > m) m = d;
  }
  return m;
}

double PrefixFitter::MeanAbsDeviation(size_t s, size_t e,
                                      const Line& line) const {
  SAPLA_DCHECK(s <= e && e < values_.size());
  double sum = 0.0;
  for (size_t t = s; t <= e; ++t)
    sum += std::fabs(values_[t] - line.At(static_cast<double>(t - s)));
  return sum / static_cast<double>(e - s + 1);
}

}  // namespace sapla
