#include "geom/convex_hull.h"

#include <algorithm>
#include <cmath>

#include "util/status.h"

namespace sapla {
namespace {

// Cross product (b-a) x (c-a); > 0 means c is left of a->b.
double Cross(const double ax, const double ay, const double bx,
             const double by, const double cx, const double cy) {
  return (bx - ax) * (cy - ay) - (by - ay) * (cx - ax);
}

}  // namespace

void IncrementalHull::Clear() {
  upper_.clear();
  lower_.clear();
  num_points_ = 0;
}

void IncrementalHull::Add(double x, double y) {
  SAPLA_DCHECK(num_points_ == 0 || x > upper_.back().x);
  ++num_points_;
  // Upper hull: keep right turns (clockwise), i.e. pop while the new point
  // makes the chain turn left.
  while (upper_.size() >= 2) {
    const Point& a = upper_[upper_.size() - 2];
    const Point& b = upper_[upper_.size() - 1];
    if (Cross(a.x, a.y, b.x, b.y, x, y) >= 0.0)
      upper_.pop_back();
    else
      break;
  }
  upper_.push_back({x, y});
  // Lower hull: mirror image.
  while (lower_.size() >= 2) {
    const Point& a = lower_[lower_.size() - 2];
    const Point& b = lower_[lower_.size() - 1];
    if (Cross(a.x, a.y, b.x, b.y, x, y) <= 0.0)
      lower_.pop_back();
    else
      break;
  }
  lower_.push_back({x, y});
}

double IncrementalHull::MaxOverChain(const std::vector<Point>& chain, double a,
                                     double b, double sign) {
  SAPLA_DCHECK(!chain.empty());
  // f(i) = sign * (y_i - (a*x_i + b)) is concave along the chain because the
  // chain's edge slopes are monotone; ternary search on indices.
  auto f = [&](size_t i) { return sign * (chain[i].y - (a * chain[i].x + b)); };
  size_t lo = 0, hi = chain.size() - 1;
  while (hi - lo > 2) {
    const size_t m1 = lo + (hi - lo) / 3;
    const size_t m2 = hi - (hi - lo) / 3;
    if (f(m1) < f(m2))
      lo = m1 + 1;
    else
      hi = m2;
  }
  double best = f(lo);
  for (size_t i = lo + 1; i <= hi; ++i) best = std::max(best, f(i));
  return best;
}

double IncrementalHull::MaxAbove(const Line& line) const {
  SAPLA_DCHECK(num_points_ > 0);
  return MaxOverChain(upper_, line.a, line.b, +1.0);
}

double IncrementalHull::MaxBelow(const Line& line) const {
  SAPLA_DCHECK(num_points_ > 0);
  return MaxOverChain(lower_, line.a, line.b, -1.0);
}

double IncrementalHull::MaxDeviation(const Line& line) const {
  return std::max(0.0, std::max(MaxAbove(line), MaxBelow(line)));
}

}  // namespace sapla
