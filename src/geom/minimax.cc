#include "geom/minimax.h"

#include <algorithm>
#include <cmath>

#include "util/status.h"

namespace sapla {
namespace {

// Half-width of the residual band at slope a, plus the band center.
double BandHalfWidth(const double* values, size_t l, double a,
                     double* center) {
  double lo = values[0], hi = values[0];
  for (size_t t = 1; t < l; ++t) {
    const double r = values[t] - a * static_cast<double>(t);
    lo = std::min(lo, r);
    hi = std::max(hi, r);
  }
  *center = 0.5 * (lo + hi);
  return 0.5 * (hi - lo);
}

}  // namespace

MinimaxFitResult MinimaxFit(const double* values, size_t l) {
  SAPLA_DCHECK(l >= 1);
  MinimaxFitResult result;
  if (l == 1) {
    result.line = Line{0.0, values[0]};
    return result;
  }
  if (l == 2) {
    result.line = Line{values[1] - values[0], values[0]};
    return result;
  }

  // Bracket the optimal slope: it always lies within the range of pairwise
  // slopes; the extreme adjacent-point slopes bound it safely.
  double a_lo = values[1] - values[0];
  double a_hi = a_lo;
  for (size_t t = 1; t + 1 < l; ++t) {
    const double s = values[t + 1] - values[t];
    a_lo = std::min(a_lo, s);
    a_hi = std::max(a_hi, s);
  }
  if (a_lo == a_hi) {
    // Collinear in steps; the exact line through the first point.
    double center;
    const double dev = BandHalfWidth(values, l, a_lo, &center);
    result.line = Line{a_lo, center};
    result.max_deviation = dev;
    return result;
  }

  // Golden-section search on the convex band half-width f(a).
  constexpr double kInvPhi = 0.6180339887498949;
  double lo = a_lo, hi = a_hi;
  double m1 = hi - kInvPhi * (hi - lo);
  double m2 = lo + kInvPhi * (hi - lo);
  double c1, c2;
  double f1 = BandHalfWidth(values, l, m1, &c1);
  double f2 = BandHalfWidth(values, l, m2, &c2);
  const double scale = std::max(1.0, std::max(std::fabs(a_lo), std::fabs(a_hi)));
  for (int iter = 0; iter < 200 && hi - lo > 1e-13 * scale; ++iter) {
    if (f1 <= f2) {
      hi = m2;
      m2 = m1;
      f2 = f1;
      c2 = c1;
      m1 = hi - kInvPhi * (hi - lo);
      f1 = BandHalfWidth(values, l, m1, &c1);
    } else {
      lo = m1;
      m1 = m2;
      f1 = f2;
      c1 = c2;
      m2 = lo + kInvPhi * (hi - lo);
      f2 = BandHalfWidth(values, l, m2, &c2);
    }
  }
  if (f1 <= f2) {
    result.line = Line{m1, c1};
    result.max_deviation = f1;
  } else {
    result.line = Line{m2, c2};
    result.max_deviation = f2;
  }
  return result;
}

}  // namespace sapla
