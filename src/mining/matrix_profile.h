#ifndef SAPLA_MINING_MATRIX_PROFILE_H_
#define SAPLA_MINING_MATRIX_PROFILE_H_

// Matrix profile (STOMP) — the exact all-pairs subsequence-similarity
// engine behind modern motif discovery, discord (anomaly) detection and
// semantic segmentation, i.e. the remaining mining tasks the paper's
// introduction motivates. Complements search/subsequence.h: the
// SubsequenceIndex answers ad-hoc queries approximately through the
// reduction stack; the matrix profile computes, exactly and in O(L^2)
// via incrementally-updated sliding dot products, each window's distance
// to its nearest non-trivial neighbor under the z-normalized Euclidean
// distance.

#include <cstddef>
#include <vector>

#include "util/status.h"

namespace sapla {

/// profile[i] = z-normalized Euclidean distance from window i to its
/// nearest neighbor outside the exclusion zone; index[i] = that neighbor.
struct MatrixProfile {
  std::vector<double> profile;
  std::vector<size_t> index;
  size_t window = 0;

  size_t num_windows() const { return profile.size(); }
};

struct MatrixProfileOptions {
  size_t window = 64;
  /// Windows closer than this to i are trivial matches and excluded;
  /// 0 = default (window / 2, the usual convention).
  size_t exclusion = 0;
};

/// Computes the self-join matrix profile of `series`.
/// Requires series.size() >= 2 * window and window >= 4.
Result<MatrixProfile> ComputeMatrixProfile(const std::vector<double>& series,
                                           const MatrixProfileOptions& options);

/// Offsets of the top motif pair (the two mutually nearest non-trivial
/// windows — the global minimum of the profile).
std::pair<size_t, size_t> TopMotif(const MatrixProfile& mp);

/// Offsets of the `k` strongest discords (windows FARTHEST from their
/// nearest neighbor — the classic anomaly definition), each at least one
/// window apart from previously selected discords.
std::vector<size_t> TopDiscords(const MatrixProfile& mp, size_t k);

}  // namespace sapla

#endif  // SAPLA_MINING_MATRIX_PROFILE_H_
