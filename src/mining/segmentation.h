#ifndef SAPLA_MINING_SEGMENTATION_H_
#define SAPLA_MINING_SEGMENTATION_H_

// Semantic segmentation / changepoint detection — another of the paper's
// motivating tasks. An adaptive-length segmentation IS a changepoint model:
// the segment endpoints of a SAPLA or APLA reduction are the positions
// where the series' linear regime changes. This module exposes that view
// directly and scores detected changepoints against ground truth.

#include <cstddef>
#include <vector>

#include "reduction/representation.h"

namespace sapla {

/// Which segmenter supplies the breakpoints.
enum class SegmenterKind {
  kSapla,  ///< O(n(N + log n)) — the paper's method
  kApla,   ///< O(Nn^2) exact DP — the quality ceiling
};

/// \brief Returns `num_changepoints` interior breakpoints (ascending global
/// indices; the position of the last point of each regime except the final
/// one). Requires values.size() >= 2*(num_changepoints+1).
std::vector<size_t> DetectChangepoints(const std::vector<double>& values,
                                       size_t num_changepoints,
                                       SegmenterKind kind = SegmenterKind::kSapla);

/// \brief Fraction of true changepoints matched by a detection within
/// `tolerance` positions (each true point consumes at most one detection).
double ChangepointRecall(const std::vector<size_t>& detected,
                         const std::vector<size_t>& truth, size_t tolerance);

}  // namespace sapla

#endif  // SAPLA_MINING_SEGMENTATION_H_
