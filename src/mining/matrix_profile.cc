#include "mining/matrix_profile.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace sapla {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr double kStdEps = 1e-10;

// Per-window mean and std via prefix sums.
void WindowStats(const std::vector<double>& v, size_t m,
                 std::vector<double>* mean, std::vector<double>* stddev) {
  const size_t num = v.size() - m + 1;
  mean->resize(num);
  stddev->resize(num);
  double s = 0.0, s2 = 0.0;
  for (size_t t = 0; t < m; ++t) {
    s += v[t];
    s2 += v[t] * v[t];
  }
  for (size_t i = 0;; ++i) {
    const double mu = s / static_cast<double>(m);
    double var = s2 / static_cast<double>(m) - mu * mu;
    if (var < 0.0) var = 0.0;
    (*mean)[i] = mu;
    (*stddev)[i] = std::sqrt(var);
    if (i + 1 >= num) break;
    s += v[i + m] - v[i];
    s2 += v[i + m] * v[i + m] - v[i] * v[i];
  }
}

// z-normalized distance from the dot product QT of windows i and j.
double ZDist(double qt, double mu_i, double sd_i, double mu_j, double sd_j,
             size_t m) {
  const double md = static_cast<double>(m);
  if (sd_i < kStdEps && sd_j < kStdEps) return 0.0;  // both flat: identical
  if (sd_i < kStdEps || sd_j < kStdEps) return std::sqrt(2.0 * md);
  double corr = (qt - md * mu_i * mu_j) / (md * sd_i * sd_j);
  corr = std::clamp(corr, -1.0, 1.0);
  return std::sqrt(2.0 * md * (1.0 - corr));
}

}  // namespace

Result<MatrixProfile> ComputeMatrixProfile(
    const std::vector<double>& series, const MatrixProfileOptions& options) {
  const size_t m = options.window;
  if (m < 4) return Status::InvalidArgument("window must be >= 4");
  if (series.size() < 2 * m)
    return Status::InvalidArgument("series shorter than two windows");
  const size_t num = series.size() - m + 1;
  const size_t excl = options.exclusion ? options.exclusion : m / 2;

  std::vector<double> mean, sd;
  WindowStats(series, m, &mean, &sd);

  MatrixProfile mp;
  mp.window = m;
  mp.profile.assign(num, kInf);
  mp.index.assign(num, 0);

  // STOMP: for each diagonal k >= excl+1, slide the dot product
  // QT(i, i+k) down the diagonal with an O(1) update, scoring both (i, i+k)
  // and (i+k, i).
  for (size_t k = excl + 1; k < num; ++k) {
    double qt = 0.0;
    for (size_t t = 0; t < m; ++t) qt += series[t] * series[t + k];
    for (size_t i = 0;; ++i) {
      const size_t j = i + k;
      const double d = ZDist(qt, mean[i], sd[i], mean[j], sd[j], m);
      if (d < mp.profile[i]) {
        mp.profile[i] = d;
        mp.index[i] = j;
      }
      if (d < mp.profile[j]) {
        mp.profile[j] = d;
        mp.index[j] = i;
      }
      if (j + 1 >= num) break;
      qt += series[i + m] * series[j + m] - series[i] * series[j];
    }
  }
  return mp;
}

std::pair<size_t, size_t> TopMotif(const MatrixProfile& mp) {
  size_t best = 0;
  for (size_t i = 1; i < mp.num_windows(); ++i)
    if (mp.profile[i] < mp.profile[best]) best = i;
  return {std::min(best, mp.index[best]), std::max(best, mp.index[best])};
}

std::vector<size_t> TopDiscords(const MatrixProfile& mp, size_t k) {
  std::vector<size_t> order(mp.num_windows());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return mp.profile[a] > mp.profile[b];
  });
  std::vector<size_t> discords;
  for (const size_t i : order) {
    if (discords.size() >= k) break;
    if (mp.profile[i] == kInf) continue;
    bool shadowed = false;
    for (const size_t d : discords) {
      const size_t gap = d > i ? d - i : i - d;
      if (gap < mp.window) {
        shadowed = true;
        break;
      }
    }
    if (!shadowed) discords.push_back(i);
  }
  return discords;
}

}  // namespace sapla
