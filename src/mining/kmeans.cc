#include "mining/kmeans.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "distance/mindist.h"
#include "util/rng.h"

namespace sapla {
namespace {

// k-means++ seeding: first centroid uniform, then proportional to the
// squared distance to the nearest chosen centroid.
std::vector<size_t> KMeansPlusPlusSeeds(const Dataset& dataset, size_t k,
                                        Rng* rng) {
  std::vector<size_t> seeds;
  seeds.push_back(rng->UniformInt(dataset.size()));
  std::vector<double> d2(dataset.size(),
                         std::numeric_limits<double>::infinity());
  while (seeds.size() < k) {
    const std::vector<double>& last = dataset.series[seeds.back()].values;
    double total = 0.0;
    for (size_t i = 0; i < dataset.size(); ++i) {
      d2[i] = std::min(d2[i],
                       SquaredEuclideanDistance(dataset.series[i].values, last));
      total += d2[i];
    }
    if (total <= 0.0) {
      // All points coincide with the chosen seeds; pick uniformly.
      seeds.push_back(rng->UniformInt(dataset.size()));
      continue;
    }
    double pick = rng->Uniform() * total;
    size_t chosen = dataset.size() - 1;
    for (size_t i = 0; i < dataset.size(); ++i) {
      pick -= d2[i];
      if (pick <= 0.0) {
        chosen = i;
        break;
      }
    }
    seeds.push_back(chosen);
  }
  return seeds;
}

}  // namespace

Result<KMeansResult> KMeansCluster(const Dataset& dataset,
                                   const KMeansOptions& options) {
  if (dataset.size() == 0) return Status::InvalidArgument("empty dataset");
  if (options.k < 1 || options.k > dataset.size())
    return Status::InvalidArgument("k must be in [1, dataset size]");
  if (dataset.length() < 2)
    return Status::InvalidArgument("series shorter than 2 points");

  const size_t n = dataset.length();
  const auto reducer = MakeReducer(options.method);

  // Series reductions are fixed across iterations.
  std::vector<Representation> series_reps;
  if (options.use_reduced_filter) {
    series_reps.reserve(dataset.size());
    for (const TimeSeries& ts : dataset.series)
      series_reps.push_back(reducer->Reduce(ts.values, options.budget_m));
  }

  Rng rng(options.seed);
  KMeansResult result;
  result.centroids.reserve(options.k);
  for (const size_t s : KMeansPlusPlusSeeds(dataset, options.k, &rng))
    result.centroids.push_back(dataset.series[s].values);
  result.assignment.assign(dataset.size(), 0);

  for (size_t iter = 0; iter < options.max_iterations; ++iter) {
    result.iterations = iter + 1;

    // Reduce the current centroids once per iteration.
    std::vector<Representation> centroid_reps;
    if (options.use_reduced_filter) {
      centroid_reps.reserve(options.k);
      for (const auto& c : result.centroids)
        centroid_reps.push_back(reducer->Reduce(c, options.budget_m));
    }

    // Assignment step with the GEMINI filter.
    bool changed = false;
    result.inertia = 0.0;
    for (size_t i = 0; i < dataset.size(); ++i) {
      double best = std::numeric_limits<double>::infinity();
      size_t best_c = result.assignment[i];
      // Evaluate the previous assignment first so the filter has a tight
      // bound immediately.
      std::vector<size_t> order(options.k);
      for (size_t c = 0; c < options.k; ++c) order[c] = c;
      std::swap(order[0], order[result.assignment[i]]);
      for (const size_t c : order) {
        if (options.use_reduced_filter) {
          const double lb =
              LowerBoundDistance(series_reps[i], centroid_reps[c]);
          if (lb * lb >= best) continue;  // cannot win; skip the raw arrays
        }
        const double d2 = SquaredEuclideanDistance(dataset.series[i].values,
                                                   result.centroids[c]);
        ++result.exact_distance_computations;
        if (d2 < best) {
          best = d2;
          best_c = c;
        }
      }
      if (best_c != result.assignment[i]) changed = true;
      result.assignment[i] = best_c;
      result.inertia += best;
    }

    // Update step.
    std::vector<std::vector<double>> sums(options.k,
                                          std::vector<double>(n, 0.0));
    std::vector<size_t> counts(options.k, 0);
    for (size_t i = 0; i < dataset.size(); ++i) {
      const size_t c = result.assignment[i];
      ++counts[c];
      for (size_t t = 0; t < n; ++t)
        sums[c][t] += dataset.series[i].values[t];
    }
    for (size_t c = 0; c < options.k; ++c) {
      if (counts[c] == 0) {
        // Re-seed an empty cluster at the point farthest from its centroid.
        size_t far = 0;
        double far_d = -1.0;
        for (size_t i = 0; i < dataset.size(); ++i) {
          const double d = SquaredEuclideanDistance(
              dataset.series[i].values,
              result.centroids[result.assignment[i]]);
          if (d > far_d) {
            far_d = d;
            far = i;
          }
        }
        result.centroids[c] = dataset.series[far].values;
        continue;
      }
      for (size_t t = 0; t < n; ++t)
        result.centroids[c][t] =
            sums[c][t] / static_cast<double>(counts[c]);
    }

    if (!changed && iter > 0) break;
  }
  return result;
}

}  // namespace sapla
