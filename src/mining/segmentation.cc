#include "mining/segmentation.h"

#include <algorithm>

#include "core/sapla.h"
#include "reduction/apla.h"
#include "util/status.h"

namespace sapla {

std::vector<size_t> DetectChangepoints(const std::vector<double>& values,
                                       size_t num_changepoints,
                                       SegmenterKind kind) {
  SAPLA_DCHECK(values.size() >= 2 * (num_changepoints + 1));
  const size_t num_segments = num_changepoints + 1;
  Representation rep;
  if (kind == SegmenterKind::kSapla) {
    rep = SaplaReducer().ReduceToSegments(values, num_segments);
  } else {
    rep = AplaReducer().Reduce(
        values, num_segments * CoefficientsPerSegment(Method::kApla));
  }
  std::vector<size_t> cps;
  cps.reserve(num_changepoints);
  // Interior endpoints only (the last endpoint is the series end).
  for (size_t i = 0; i + 1 < rep.segments.size(); ++i)
    cps.push_back(rep.segments[i].r);
  return cps;
}

double ChangepointRecall(const std::vector<size_t>& detected,
                         const std::vector<size_t>& truth, size_t tolerance) {
  if (truth.empty()) return 1.0;
  std::vector<bool> used(detected.size(), false);
  size_t hits = 0;
  for (const size_t t : truth) {
    size_t best = detected.size();
    size_t best_gap = tolerance + 1;
    for (size_t i = 0; i < detected.size(); ++i) {
      if (used[i]) continue;
      const size_t gap = detected[i] > t ? detected[i] - t : t - detected[i];
      if (gap < best_gap) {
        best_gap = gap;
        best = i;
      }
    }
    if (best < detected.size()) {
      used[best] = true;
      ++hits;
    }
  }
  return static_cast<double>(hits) / static_cast<double>(truth.size());
}

}  // namespace sapla
