#ifndef SAPLA_MINING_KMEANS_H_
#define SAPLA_MINING_KMEANS_H_

// Time-series k-means with lower-bound acceleration — one of the high-level
// mining tasks the paper's introduction motivates (clustering) and a second
// consumer of the reduction + lower-bound stack beyond k-NN.
//
// Lloyd's algorithm with k-means++ seeding. In the accelerated mode, each
// assignment step first compares a series to candidate centroids in reduced
// space: centroids are reduced once per iteration, and a candidate whose
// lower-bound distance (distance/mindist.h) already exceeds the best exact
// distance found so far is skipped without touching the raw arrays — the
// GEMINI filter applied to clustering.

#include <cstdint>
#include <vector>

#include "reduction/representation.h"
#include "ts/time_series.h"
#include "util/status.h"

namespace sapla {

struct KMeansOptions {
  size_t k = 3;
  size_t max_iterations = 50;
  uint64_t seed = 1;            ///< k-means++ seeding stream
  Method method = Method::kSapla;
  size_t budget_m = 24;
  /// Use reduced-space lower bounds to skip exact distance computations.
  bool use_reduced_filter = true;
};

struct KMeansResult {
  std::vector<size_t> assignment;               ///< cluster id per series
  std::vector<std::vector<double>> centroids;   ///< k mean series
  double inertia = 0.0;                         ///< sum of squared distances
  size_t iterations = 0;
  size_t exact_distance_computations = 0;       ///< raw-array distances
};

/// Clusters the dataset. Requires 1 <= options.k <= dataset.size() and
/// equal-length series of length >= 2.
Result<KMeansResult> KMeansCluster(const Dataset& dataset,
                                   const KMeansOptions& options);

}  // namespace sapla

#endif  // SAPLA_MINING_KMEANS_H_
