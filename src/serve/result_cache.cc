#include "serve/result_cache.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <list>
#include <unordered_map>
#include <utility>

#include "obs/trace.h"

namespace sapla {
namespace {

// FNV-1a over raw bytes; good enough to spread shards and bucket keys
// (full-key comparison guards correctness).
uint64_t FnvMix(uint64_t h, const void* data, size_t len) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= 0x100000001B3ULL;
  }
  return h;
}

// Approximate heap footprint of one cache entry: the query copy inside
// the key, the neighbor list, and fixed map/list bookkeeping. Counters
// are flat members (no heap), so a constant overhead covers them.
size_t EntryBytes(const ResultCacheKey& key, const KnnResult& result) {
  return key.query.size() * sizeof(double) +
         result.neighbors.size() * sizeof(std::pair<double, size_t>) +
         sizeof(ResultCacheKey) + sizeof(KnnResult) + 128;
}

}  // namespace

uint64_t ResultCacheKey::Hash() const {
  uint64_t h = 0xCBF29CE484222325ULL;
  const uint32_t tag[4] = {static_cast<uint32_t>(op), static_cast<uint32_t>(k),
                           static_cast<uint32_t>(method),
                           static_cast<uint32_t>(kind)};
  h = FnvMix(h, tag, sizeof(tag));
  h = FnvMix(h, &corpus_id, sizeof(corpus_id));
  h = FnvMix(h, &radius, sizeof(radius));
  if (!query.empty())
    h = FnvMix(h, query.data(), query.size() * sizeof(double));
  return h;
}

bool ResultCacheKey::operator==(const ResultCacheKey& other) const {
  // Radii compare bitwise (memcmp) so NaN/-0.0 never alias distinct keys.
  return op == other.op && k == other.k && method == other.method &&
         kind == other.kind && corpus_id == other.corpus_id &&
         std::memcmp(&radius, &other.radius, sizeof(radius)) == 0 &&
         query.size() == other.query.size() &&
         (query.empty() ||
          std::memcmp(query.data(), other.query.data(),
                      query.size() * sizeof(double)) == 0);
}

struct ResultCache::Shard {
  struct Entry {
    ResultCacheKey key;
    KnnResult result;
    size_t bytes = 0;
  };

  std::mutex mu;
  std::list<Entry> lru;  // front = most recently used
  std::unordered_map<uint64_t, std::list<Entry>::iterator> map;
  size_t bytes = 0;

  // Drops the LRU tail entry; returns its byte footprint. Caller holds mu
  // and releases the bytes from the budget outside if one is attached.
  size_t EvictTail() {
    if (lru.empty()) return 0;
    const size_t freed = lru.back().bytes;
    map.erase(lru.back().key.Hash());
    lru.pop_back();
    bytes -= freed;
    return freed;
  }
};

ResultCache::ResultCache(size_t capacity, size_t shards,
                         std::shared_ptr<ResourceBudget> budget)
    : capacity_(capacity), budget_(std::move(budget)) {
  if (shards == 0) shards = 1;
  if (shards > capacity && capacity > 0) shards = capacity;
  per_shard_capacity_ = capacity == 0 ? 0 : (capacity + shards - 1) / shards;
  shards_.reserve(shards);
  for (size_t i = 0; i < shards; ++i)
    shards_.push_back(std::make_unique<Shard>());
}

ResultCache::~ResultCache() { Invalidate(); }

bool ResultCache::Lookup(const ResultCacheKey& key, KnnResult* out) {
  if (capacity_ == 0) return false;
  SAPLA_TRACE_SPAN("cache/lookup");
  const uint64_t hash = key.Hash();
  Shard& shard = *shards_[hash % shards_.size()];
  std::lock_guard<std::mutex> lock(shard.mu);
  const auto it = shard.map.find(hash);
  if (it == shard.map.end() || !(it->second->key == key)) return false;
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  *out = it->second->result;
  return true;
}

void ResultCache::Insert(const ResultCacheKey& key, const KnnResult& result) {
  if (capacity_ == 0) return;
  SAPLA_TRACE_SPAN("cache/insert");
  const uint64_t hash = key.Hash();
  const size_t new_bytes = EntryBytes(key, result);
  Shard& shard = *shards_[hash % shards_.size()];
  std::lock_guard<std::mutex> lock(shard.mu);
  const auto it = shard.map.find(hash);
  if (it != shard.map.end()) {
    // Refresh drops the old entry outright and re-inserts fresh; a hash
    // collision overwrites the older key, which is a capacity decision,
    // not a correctness one (Lookup re-verifies).
    if (budget_) budget_->Release(it->second->bytes);
    shard.bytes -= it->second->bytes;
    shard.lru.erase(it->second);
    shard.map.erase(it);
  }
  // Admission: every resident entry holds a budget reservation, so evict
  // the LRU tail (returning its bytes) until the new entry fits; if the
  // budget still says no with the shard empty, skip the optional insert.
  bool reserved = budget_ == nullptr || budget_->TryReserve(new_bytes);
  while (!reserved && !shard.lru.empty()) {
    budget_->Release(shard.EvictTail());
    reserved = budget_->TryReserve(new_bytes);
  }
  if (!reserved) return;
  shard.lru.push_front(Shard::Entry{key, result, new_bytes});
  shard.map[hash] = shard.lru.begin();
  shard.bytes += new_bytes;
  // per_shard_capacity_ >= 1 whenever the cache is enabled, so the count
  // cap can never evict the entry just inserted at the front.
  while (shard.lru.size() > per_shard_capacity_) {
    const size_t freed = shard.EvictTail();
    if (budget_) budget_->Release(freed);
  }
}

void ResultCache::Invalidate() {
  size_t released = 0;
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    released += shard->bytes;
    shard->bytes = 0;
    shard->lru.clear();
    shard->map.clear();
  }
  if (budget_ && released > 0) budget_->Release(released);
}

size_t ResultCache::Shrink(double fraction) {
  fraction = std::min(std::max(fraction, 0.0), 1.0);
  size_t evicted = 0;
  size_t released = 0;
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    size_t drop = static_cast<size_t>(
        std::ceil(static_cast<double>(shard->lru.size()) * fraction));
    for (; drop > 0 && !shard->lru.empty(); --drop) {
      released += shard->EvictTail();
      ++evicted;
    }
  }
  if (budget_ && released > 0) budget_->Release(released);
  return evicted;
}

size_t ResultCache::size() const {
  size_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    total += shard->lru.size();
  }
  return total;
}

size_t ResultCache::bytes() const {
  size_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    total += shard->bytes;
  }
  return total;
}

}  // namespace sapla
