#include "serve/result_cache.h"

#include <cstring>
#include <list>
#include <unordered_map>
#include <utility>

#include "obs/trace.h"

namespace sapla {
namespace {

// FNV-1a over raw bytes; good enough to spread shards and bucket keys
// (full-key comparison guards correctness).
uint64_t FnvMix(uint64_t h, const void* data, size_t len) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= 0x100000001B3ULL;
  }
  return h;
}

}  // namespace

uint64_t ResultCacheKey::Hash() const {
  uint64_t h = 0xCBF29CE484222325ULL;
  const uint32_t tag[4] = {static_cast<uint32_t>(op), static_cast<uint32_t>(k),
                           static_cast<uint32_t>(method),
                           static_cast<uint32_t>(kind)};
  h = FnvMix(h, tag, sizeof(tag));
  h = FnvMix(h, &corpus_id, sizeof(corpus_id));
  h = FnvMix(h, &radius, sizeof(radius));
  if (!query.empty())
    h = FnvMix(h, query.data(), query.size() * sizeof(double));
  return h;
}

bool ResultCacheKey::operator==(const ResultCacheKey& other) const {
  // Radii compare bitwise (memcmp) so NaN/-0.0 never alias distinct keys.
  return op == other.op && k == other.k && method == other.method &&
         kind == other.kind && corpus_id == other.corpus_id &&
         std::memcmp(&radius, &other.radius, sizeof(radius)) == 0 &&
         query.size() == other.query.size() &&
         (query.empty() ||
          std::memcmp(query.data(), other.query.data(),
                      query.size() * sizeof(double)) == 0);
}

struct ResultCache::Shard {
  using Entry = std::pair<ResultCacheKey, KnnResult>;

  std::mutex mu;
  std::list<Entry> lru;  // front = most recently used
  std::unordered_map<uint64_t, std::list<Entry>::iterator> map;
};

ResultCache::ResultCache(size_t capacity, size_t shards)
    : capacity_(capacity) {
  if (shards == 0) shards = 1;
  if (shards > capacity && capacity > 0) shards = capacity;
  per_shard_capacity_ = capacity == 0 ? 0 : (capacity + shards - 1) / shards;
  shards_.reserve(shards);
  for (size_t i = 0; i < shards; ++i)
    shards_.push_back(std::make_unique<Shard>());
}

ResultCache::~ResultCache() = default;

bool ResultCache::Lookup(const ResultCacheKey& key, KnnResult* out) {
  if (capacity_ == 0) return false;
  SAPLA_TRACE_SPAN("cache/lookup");
  const uint64_t hash = key.Hash();
  Shard& shard = *shards_[hash % shards_.size()];
  std::lock_guard<std::mutex> lock(shard.mu);
  const auto it = shard.map.find(hash);
  if (it == shard.map.end() || !(it->second->first == key)) return false;
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  *out = it->second->second;
  return true;
}

void ResultCache::Insert(const ResultCacheKey& key, const KnnResult& result) {
  if (capacity_ == 0) return;
  SAPLA_TRACE_SPAN("cache/insert");
  const uint64_t hash = key.Hash();
  Shard& shard = *shards_[hash % shards_.size()];
  std::lock_guard<std::mutex> lock(shard.mu);
  const auto it = shard.map.find(hash);
  if (it != shard.map.end()) {
    // Refresh in place; a hash collision overwrites the older key, which
    // is a capacity decision, not a correctness one (Lookup re-verifies).
    it->second->first = key;
    it->second->second = result;
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    return;
  }
  shard.lru.emplace_front(key, result);
  shard.map[hash] = shard.lru.begin();
  while (shard.lru.size() > per_shard_capacity_) {
    shard.map.erase(shard.lru.back().first.Hash());
    shard.lru.pop_back();
  }
}

void ResultCache::Invalidate() {
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    shard->lru.clear();
    shard->map.clear();
  }
}

size_t ResultCache::size() const {
  size_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    total += shard->lru.size();
  }
  return total;
}

}  // namespace sapla
