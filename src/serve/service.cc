#include "serve/service.h"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <map>
#include <tuple>
#include <utility>

#include "obs/trace.h"

namespace sapla {
namespace {

using Clock = std::chrono::steady_clock;

uint64_t ElapsedUs(Clock::time_point from, Clock::time_point to) {
  if (to <= from) return 0;
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(to - from)
          .count());
}

}  // namespace

/// One in-flight request. Owned by the queue / scheduler; the client holds
/// only the future.
struct QueryService::Request {
  ServeOp op = ServeOp::kKnn;
  std::vector<double> query;
  size_t k = 0;
  double radius = 0.0;

  Clock::time_point admitted;
  Clock::time_point deadline;
  bool has_deadline = false;

  /// Admission -> flush-start wait, filled in by Flush for the response.
  uint64_t queue_us = 0;

  /// Set by the batch path's cancellation hook (pool workers) when the
  /// deadline passes after grouping but before execution.
  std::atomic<bool> expired_mid_batch{false};

  std::promise<ServeResponse> promise;

  bool DeadlinePassed(Clock::time_point now) const {
    return has_deadline && now >= deadline;
  }
};

QueryService::QueryService(const SimilarityIndex& index,
                           const ServeOptions& options)
    : index_(index),
      options_(options),
      cache_(options.cache_capacity, options.cache_shards),
      queue_(options.queue_capacity) {
  scheduler_ = std::thread([this] { SchedulerLoop(); });
}

QueryService::~QueryService() { Stop(); }

void QueryService::Stop() {
  stopped_.store(true);
  queue_.Close();
  if (scheduler_.joinable()) scheduler_.join();
}

void QueryService::InvalidateCache() { cache_.Invalidate(); }

std::future<ServeResponse> QueryService::SubmitKnn(std::vector<double> query,
                                                   size_t k,
                                                   uint64_t deadline_us) {
  auto request = std::make_unique<Request>();
  request->op = ServeOp::kKnn;
  request->query = std::move(query);
  request->k = k;
  if (deadline_us == 0) deadline_us = options_.default_deadline_us;
  if (deadline_us != 0) {
    request->has_deadline = true;
    request->deadline =
        Clock::now() + std::chrono::microseconds(deadline_us);
  }
  return Submit(std::move(request));
}

std::future<ServeResponse> QueryService::SubmitRange(std::vector<double> query,
                                                     double radius,
                                                     uint64_t deadline_us) {
  auto request = std::make_unique<Request>();
  request->op = ServeOp::kRange;
  request->query = std::move(query);
  request->radius = radius;
  if (deadline_us == 0) deadline_us = options_.default_deadline_us;
  if (deadline_us != 0) {
    request->has_deadline = true;
    request->deadline =
        Clock::now() + std::chrono::microseconds(deadline_us);
  }
  return Submit(std::move(request));
}

ServeResponse QueryService::Knn(std::vector<double> query, size_t k,
                                uint64_t deadline_us) {
  return SubmitKnn(std::move(query), k, deadline_us).get();
}

ServeResponse QueryService::Range(std::vector<double> query, double radius,
                                  uint64_t deadline_us) {
  return SubmitRange(std::move(query), radius, deadline_us).get();
}

std::future<ServeResponse> QueryService::Submit(
    std::unique_ptr<Request> request) {
  request->admitted = Clock::now();
  std::future<ServeResponse> future = request->promise.get_future();

  const auto reject = [&](Status status) {
    ServeResponse response;
    response.status = std::move(status);
    request->promise.set_value(std::move(response));
    return std::move(future);
  };

  if (stopped_.load()) {
    metrics_.rejected_shutdown.fetch_add(1);
    return reject(Status::Unavailable("query service is stopped"));
  }
  if (request->query.size() != index_.series_length()) {
    return reject(Status::InvalidArgument(
        "query length " + std::to_string(request->query.size()) +
        " != indexed series length " +
        std::to_string(index_.series_length())));
  }

  // Cache lookup at admission: hits bypass the queue entirely, so repeated
  // queries cost neither capacity nor batching delay.
  if (cache_.capacity() > 0) {
    ResultCacheKey key;
    key.op = request->op;
    key.k = request->k;
    key.radius = request->radius;
    key.method = index_.method();
    key.kind = index_.kind();
    key.corpus_id = index_.corpus_id();
    key.query = request->query;
    KnnResult cached;
    if (cache_.Lookup(key, &cached)) {
      metrics_.cache_hits.fetch_add(1);
      ServeResponse response;
      response.status = Status::OK();
      response.result = std::move(cached);
      response.cache_hit = true;
      response.total_us = ElapsedUs(request->admitted, Clock::now());
      metrics_.total_us.Record(response.total_us);
      metrics_.completed_ok.fetch_add(1);
      request->promise.set_value(std::move(response));
      return future;
    }
    metrics_.cache_misses.fetch_add(1);
  }

  // A failed TryPush does not consume the request, so the promise can
  // still be resolved here.
  if (!queue_.TryPush(std::move(request))) {
    if (queue_.closed()) {
      metrics_.rejected_shutdown.fetch_add(1);
      return reject(Status::Unavailable("query service is stopped"));
    }
    metrics_.rejected_overloaded.fetch_add(1);
    return reject(Status::Overloaded(
        "admission queue full (" + std::to_string(queue_.capacity()) +
        " pending); retry later"));
  }
  metrics_.admitted.fetch_add(1);
  metrics_.queue_depth.Record(queue_.size());
  return future;
}

void QueryService::SchedulerLoop() {
  for (;;) {
    std::vector<std::unique_ptr<Request>> batch = queue_.PopBatch(
        options_.max_batch, std::chrono::microseconds(options_.max_delay_us));
    if (batch.empty()) return;  // closed and drained
    Flush(std::move(batch));
  }
}

void QueryService::ResolveExpired(Request* request) {
  metrics_.deadline_exceeded.fetch_add(1);
  ServeResponse response;
  response.status = Status::DeadlineExceeded("deadline passed before the "
                                             "request could be executed");
  response.queue_us = request->queue_us;
  if (options_.degraded_answers) {
    response.result = request->op == ServeOp::kKnn
                          ? index_.KnnLowerBound(request->query, request->k)
                          : index_.RangeSearchLowerBound(request->query,
                                                         request->radius);
    response.approximate = true;
    metrics_.degraded.fetch_add(1);
    metrics_.search.Add(response.result.counters, index_.dataset_size());
  }
  response.total_us = ElapsedUs(request->admitted, Clock::now());
  metrics_.total_us.Record(response.total_us);
  request->promise.set_value(std::move(response));
}

void QueryService::Flush(std::vector<std::unique_ptr<Request>> batch) {
  SAPLA_TRACE_SPAN("serve/flush");
  const Clock::time_point flush_start = Clock::now();
  metrics_.batches_flushed.fetch_add(1);
  metrics_.batch_size.Record(batch.size());

  // Partition: requests already past their deadline resolve immediately
  // (never stalling the live ones), the rest group by identical operation
  // parameters so each group is one deterministic KnnBatch /
  // RangeSearchBatch call.
  // Group key: op + the exact parameter bits (map is fine — batches are
  // small and kNN radii are not involved in ordering subtleties; bitwise
  // radius keys keep distinct NaN payloads distinct).
  std::map<std::tuple<ServeOp, size_t, uint64_t>, std::vector<Request*>>
      groups;
  for (auto& request : batch) {
    request->queue_us = ElapsedUs(request->admitted, flush_start);
    metrics_.queue_wait_us.Record(request->queue_us);
    if (request->DeadlinePassed(flush_start)) {
      ResolveExpired(request.get());
      request.reset();
      continue;
    }
    uint64_t radius_bits = 0;
    static_assert(sizeof(radius_bits) == sizeof(request->radius));
    std::memcpy(&radius_bits, &request->radius, sizeof(radius_bits));
    groups[{request->op, request->k, radius_bits}].push_back(request.get());
  }

  for (auto& [key, group] : groups) {
    std::vector<std::vector<double>> queries;
    queries.reserve(group.size());
    for (const Request* request : group) queries.push_back(request->query);

    SimilarityIndex::BatchOptions batch_options;
    batch_options.num_threads = options_.num_threads;
    batch_options.cancel = [&group](size_t i) {
      Request* request = group[i];
      if (request->DeadlinePassed(Clock::now())) {
        request->expired_mid_batch.store(true);
        return true;
      }
      return false;
    };

    const Clock::time_point exec_start = Clock::now();
    std::vector<KnnResult> results;
    {
      SAPLA_TRACE_SPAN("serve/exec_group");
      results = std::get<0>(key) == ServeOp::kKnn
                    ? index_.KnnBatch(queries, group.front()->k, batch_options)
                    : index_.RangeSearchBatch(queries, group.front()->radius,
                                              batch_options);
    }
    const uint64_t exec_us = ElapsedUs(exec_start, Clock::now());

    for (size_t i = 0; i < group.size(); ++i) {
      Request* request = group[i];
      metrics_.exec_us.Record(exec_us);
      if (request->expired_mid_batch.load()) {
        ResolveExpired(request);
        continue;
      }
      metrics_.search.Add(results[i].counters, index_.dataset_size());
      if (cache_.capacity() > 0) {
        ResultCacheKey cache_key;
        cache_key.op = request->op;
        cache_key.k = request->k;
        cache_key.radius = request->radius;
        cache_key.method = index_.method();
        cache_key.kind = index_.kind();
        cache_key.corpus_id = index_.corpus_id();
        cache_key.query = request->query;
        cache_.Insert(cache_key, results[i]);
      }
      ServeResponse response;
      response.status = Status::OK();
      response.result = std::move(results[i]);
      response.queue_us = request->queue_us;
      response.total_us = ElapsedUs(request->admitted, Clock::now());
      metrics_.total_us.Record(response.total_us);
      metrics_.completed_ok.fetch_add(1);
      request->promise.set_value(std::move(response));
    }
  }
}

}  // namespace sapla
