#include "serve/service.h"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <map>
#include <tuple>
#include <utility>

#include "obs/trace.h"
#include "util/fault.h"

namespace sapla {
namespace {

using Clock = std::chrono::steady_clock;

uint64_t ElapsedUs(Clock::time_point from, Clock::time_point to) {
  if (to <= from) return 0;
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(to - from)
          .count());
}

uint64_t NowUs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          Clock::now().time_since_epoch())
          .count());
}

}  // namespace

const char* ServeHealthName(ServeHealth health) {
  switch (health) {
    case ServeHealth::kHealthy:
      return "healthy";
    case ServeHealth::kDegraded:
      return "degraded";
    case ServeHealth::kUnhealthy:
      return "unhealthy";
  }
  return "unknown";
}

/// One in-flight request. Owned by the queue / scheduler; the client holds
/// only the future.
struct QueryService::Request {
  ServeOp op = ServeOp::kKnn;
  std::vector<double> query;
  size_t k = 0;
  double radius = 0.0;
  ServePriority priority = ServePriority::kNormal;

  Clock::time_point admitted;
  Clock::time_point deadline;
  bool has_deadline = false;

  /// Admission -> flush-start wait, filled in by Flush for the response.
  uint64_t queue_us = 0;

  /// Set by the batch path's cancellation hook (pool workers) when the
  /// deadline passes after grouping but before execution.
  std::atomic<bool> expired_mid_batch{false};

  /// Request-scoped trace context, fixed at admission (adopted from the
  /// caller or minted per ServeOptions::trace_sample_every). The batch
  /// worker that executes this request re-installs it, so every span the
  /// request touches — on the client thread, the scheduler, or a pool
  /// worker — carries one trace id.
  obs::TraceContext trace;
  /// Fill `explain` during execution (set when slow-query logging is on —
  /// tail sampling can only decide after the fact, so the breakdown must
  /// be collected up front).
  bool want_explain = false;
  obs::QueryExplain explain;

  std::promise<ServeResponse> promise;

  bool DeadlinePassed(Clock::time_point now) const {
    return has_deadline && now >= deadline;
  }
};

QueryService::QueryService(const SearchIndex& index,
                           const ServeOptions& options)
    : index_(index),
      options_(options),
      cache_budget_(options.memory_budget
                        ? ResourceBudget::MakeChild(options.memory_budget,
                                                    "serve/cache")
                        : nullptr),
      queue_budget_(options.memory_budget
                        ? ResourceBudget::MakeChild(options.memory_budget,
                                                    "serve/queue")
                        : nullptr),
      cache_(options.cache_capacity, options.cache_shards, cache_budget_),
      slow_log_(options.slow_log_capacity),
      queue_(options.queue_capacity, queue_budget_) {
  metrics_.window_total_us.Configure(options_.window_us);
  metrics_.window_exec_us.Configure(options_.window_us);
  heartbeat_us_.store(NowUs());
  RefreshShardGauges();
  scheduler_ = std::thread([this] { SchedulerLoop(); });
  if (options_.watchdog_interval_us > 0)
    watchdog_ = std::thread([this] { WatchdogLoop(); });
}

QueryService::~QueryService() { Stop(); }

void QueryService::Stop() {
  stopped_.store(true);
  queue_.Close();
  if (scheduler_.joinable()) scheduler_.join();
  {
    std::lock_guard<std::mutex> lock(watchdog_mu_);
    watchdog_stop_ = true;
  }
  watchdog_cv_.notify_all();
  if (watchdog_.joinable()) watchdog_.join();
}

void QueryService::Beat() {
  heartbeat_us_.store(NowUs(), std::memory_order_relaxed);
}

void QueryService::RecomputeHealth() {
  const uint64_t streak = flush_fail_streak_.load(std::memory_order_relaxed);
  int flush_level = 0;
  if (options_.flush_failures_unhealthy != 0 &&
      streak >= options_.flush_failures_unhealthy)
    flush_level = 2;
  else if (options_.flush_failures_degraded != 0 &&
           streak >= options_.flush_failures_degraded)
    flush_level = 1;
  const int level = std::max(
      {flush_level, stall_level_.load(std::memory_order_relaxed),
       pressure_level_.load(std::memory_order_relaxed)});
  health_.store(level, std::memory_order_relaxed);
  metrics_.health.store(static_cast<uint64_t>(level),
                        std::memory_order_relaxed);
}

void QueryService::RefreshShardGauges() const {
  const size_t shards =
      std::min<size_t>(index_.num_shards(), ServeMetrics::kMaxShardGauges);
  metrics_.shard_count.store(shards, std::memory_order_relaxed);
  for (size_t s = 0; s < shards; ++s)
    metrics_.shard_health[s].store(
        static_cast<uint64_t>(index_.shard_health(s)),
        std::memory_order_relaxed);
  const StoreFootprint fp = index_.footprint();
  metrics_.store_resident_bytes.store(fp.resident_bytes,
                                      std::memory_order_relaxed);
  metrics_.store_mapped_bytes.store(fp.mapped_bytes,
                                    std::memory_order_relaxed);
  metrics_.store_frame_hits.store(fp.frame_hits, std::memory_order_relaxed);
  metrics_.store_frame_misses.store(fp.frame_misses,
                                    std::memory_order_relaxed);
}

void QueryService::WatchdogLoop() {
  std::unique_lock<std::mutex> lock(watchdog_mu_);
  while (!watchdog_stop_) {
    watchdog_cv_.wait_for(
        lock, std::chrono::microseconds(options_.watchdog_interval_us));
    if (watchdog_stop_) break;
    RefreshShardGauges();
    // A stalled scheduler = work is waiting but the heartbeat is stale.
    // An idle scheduler (empty queue) is blocked in PopBatch by design and
    // never counts as stalled.
    const uint64_t beat = heartbeat_us_.load(std::memory_order_relaxed);
    const uint64_t now = NowUs();
    const uint64_t stale_us = now > beat ? now - beat : 0;
    int level = 0;
    if (queue_.size() > 0) {
      if (stale_us >= options_.stall_unhealthy_us)
        level = 2;
      else if (stale_us >= options_.stall_degraded_us)
        level = 1;
    }
    if (level > stall_level_.load(std::memory_order_relaxed))
      metrics_.watchdog_stalls.fetch_add(1);
    stall_level_.store(level, std::memory_order_relaxed);
    RecomputeHealth();
  }
}

void QueryService::InvalidateCache() { cache_.Invalidate(); }

std::future<ServeResponse> QueryService::SubmitKnn(std::vector<double> query,
                                                   size_t k,
                                                   uint64_t deadline_us,
                                                   ServePriority priority) {
  auto request = std::make_unique<Request>();
  request->op = ServeOp::kKnn;
  request->query = std::move(query);
  request->k = k;
  request->priority = priority;
  if (deadline_us == 0) deadline_us = options_.default_deadline_us;
  if (deadline_us != 0) {
    request->has_deadline = true;
    request->deadline =
        Clock::now() + std::chrono::microseconds(deadline_us);
  }
  return Submit(std::move(request));
}

std::future<ServeResponse> QueryService::SubmitRange(std::vector<double> query,
                                                     double radius,
                                                     uint64_t deadline_us,
                                                     ServePriority priority) {
  auto request = std::make_unique<Request>();
  request->op = ServeOp::kRange;
  request->query = std::move(query);
  request->radius = radius;
  request->priority = priority;
  if (deadline_us == 0) deadline_us = options_.default_deadline_us;
  if (deadline_us != 0) {
    request->has_deadline = true;
    request->deadline =
        Clock::now() + std::chrono::microseconds(deadline_us);
  }
  return Submit(std::move(request));
}

ServeResponse QueryService::Knn(std::vector<double> query, size_t k,
                                uint64_t deadline_us) {
  return SubmitKnn(std::move(query), k, deadline_us).get();
}

ServeResponse QueryService::Range(std::vector<double> query, double radius,
                                  uint64_t deadline_us) {
  return SubmitRange(std::move(query), radius, deadline_us).get();
}

std::future<ServeResponse> QueryService::Submit(
    std::unique_ptr<Request> request) {
  request->admitted = Clock::now();
  std::future<ServeResponse> future = request->promise.get_future();

  const auto reject = [&](Status status) {
    ServeResponse response;
    response.status = std::move(status);
    request->promise.set_value(std::move(response));
    return std::move(future);
  };

  if (stopped_.load()) {
    metrics_.rejected_shutdown.fetch_add(1);
    return reject(Status::Unavailable("query service is stopped"));
  }
  if (request->query.size() != index_.series_length()) {
    return reject(Status::InvalidArgument(
        "query length " + std::to_string(request->query.size()) +
        " != indexed series length " +
        std::to_string(index_.series_length())));
  }

  // Trace-context admission: adopt the caller's sampled context (a retry
  // layer or an upstream span), otherwise mint one per trace_sample_every.
  // Flags (retry/hedge attribution) survive either way — they ride along
  // even when tracing is off so slow-query records can still mark hedged
  // duplicates. With tracing disabled this whole block is one relaxed
  // atomic load (TraceEnabled) past the thread-local read.
  request->trace = obs::CurrentTraceContext();
  if (!request->trace.sampled && obs::TraceEnabled() &&
      options_.trace_sample_every != 0 &&
      admit_seq_.fetch_add(1, std::memory_order_relaxed) %
              options_.trace_sample_every ==
          0) {
    const uint64_t flags = request->trace.flags;
    request->trace = obs::MintTraceContext();
    request->trace.flags = flags;
  }
  // The admit span roots the request's tree: everything below — cache
  // lookup here, batch/query on a pool worker, per-shard search — becomes
  // its descendant. Re-read the context afterwards so the admit span's id
  // is the parent the batch workers stitch to.
  obs::TraceContextScope admit_scope(request->trace);
  SAPLA_TRACE_SPAN("serve/admit");
  request->trace = obs::CurrentTraceContext();
  request->want_explain =
      options_.slow_query_us != 0 || options_.slow_query_lb_evals != 0;

  // Cache lookup at admission: hits bypass the queue entirely, so repeated
  // queries cost neither capacity nor batching delay.
  if (cache_.capacity() > 0) {
    ResultCacheKey key;
    key.op = request->op;
    key.k = request->k;
    key.radius = request->radius;
    key.method = index_.method();
    key.kind = index_.kind();
    key.corpus_id = index_.corpus_id();
    key.query = request->query;
    KnnResult cached;
    if (cache_.Lookup(key, &cached)) {
      metrics_.cache_hits.fetch_add(1);
      ServeResponse response;
      response.status = Status::OK();
      response.result = std::move(cached);
      response.cache_hit = true;
      response.trace_id = request->trace.trace_id;
      response.total_us = ElapsedUs(request->admitted, Clock::now());
      metrics_.total_us.Record(response.total_us);
      metrics_.window_total_us.Record(response.total_us);
      metrics_.completed_ok.fetch_add(1);
      MaybeLogSlowQuery(*request, response, "ok", /*degraded=*/false);
      request->promise.set_value(std::move(response));
      return future;
    }
    metrics_.cache_misses.fetch_add(1);
  }

  // Memory-budget pressure (docs/ROBUSTNESS.md): the graded response runs
  // at admission so it reacts within one request of the budget moving.
  // Soft pressure sheds the most reclaimable bytes first — half the result
  // cache, once per episode (re-armed only after pressure fully lifts, so
  // a budget hovering at the watermark cannot thrash the cache). Hard
  // pressure raises pressure_level_, which RecomputeHealth folds into the
  // ladder: reads degrade to inline lower-bound answers until the budget
  // drains, and recovery is automatic because this block re-reads the
  // budget on every submission.
  if (options_.memory_budget != nullptr) {
    const BudgetPressure pressure = options_.memory_budget->pressure_up();
    if (pressure != BudgetPressure::kNone) {
      if (!shrunk_this_episode_.exchange(true)) {
        cache_.Shrink(0.5);
        metrics_.budget_cache_shrinks.fetch_add(1);
      }
    } else {
      shrunk_this_episode_.store(false);
    }
    const int pressure_level = pressure == BudgetPressure::kHard ? 1 : 0;
    if (pressure_level !=
        pressure_level_.exchange(pressure_level, std::memory_order_relaxed))
      RecomputeHealth();
  }

  // Degradation ladder (docs/ROBUSTNESS.md). Checked after the cache —
  // cached answers are exact and involve no scheduler, so they are served
  // in every state. One request in kCanaryEvery still takes the normal
  // pipeline as a canary probe: a flush-failure-driven degradation can only
  // observe recovery through a flush that succeeds, and without probes a
  // degraded service would divert all traffic and stay degraded forever.
  constexpr uint64_t kCanaryEvery = 8;
  switch (health()) {
    case ServeHealth::kHealthy:
      break;
    case ServeHealth::kDegraded: {
      if (ladder_seq_.fetch_add(1) % kCanaryEvery != 0) {
        if (pressure_level_.load(std::memory_order_relaxed) != 0)
          metrics_.budget_degraded.fetch_add(1);
        ResolveDegraded(request.get());
        return future;
      }
      break;  // canary: through the pipeline
    }
    case ServeHealth::kUnhealthy: {
      if (ladder_seq_.fetch_add(1) % kCanaryEvery != 0) {
        metrics_.rejected_unhealthy.fetch_add(1);
        return reject(Status::Unavailable(
            "query service unhealthy (scheduler stalled or flushes "
            "failing); retry later"));
      }
      break;  // canary: through the pipeline
    }
  }

  // Adaptive admission control: queueing delay is the overload signal —
  // it rises well before the queue fills, so shedding on it keeps latency
  // bounded instead of letting every admitted request inherit the backlog.
  if (options_.admission_target_delay_us != 0 &&
      request->priority != ServePriority::kHigh) {
    const uint64_t limit = request->priority == ServePriority::kLow
                               ? options_.admission_target_delay_us
                               : 2 * options_.admission_target_delay_us;
    const uint64_t oldest_wait_us = queue_.OldestWaitUs();
    if (oldest_wait_us > limit) {
      metrics_.shed_early.fetch_add(1);
      return reject(Status::Overloaded(
          "shedding " +
          std::string(request->priority == ServePriority::kLow ? "low"
                                                               : "normal") +
          "-priority request: oldest queued request has waited " +
          std::to_string(oldest_wait_us) + "us (target " +
          std::to_string(options_.admission_target_delay_us) +
          "us); retry later"));
    }
  }

  // A failed TryPush does not consume the request, so the promise can
  // still be resolved here. The queue charges the payload against the
  // memory budget and refuses at the hard watermark, so a saturated
  // budget reads as ordinary overload to the client.
  const size_t request_bytes =
      request->query.size() * sizeof(double) + sizeof(Request) + 64;
  if (!queue_.TryPush(std::move(request), request_bytes)) {
    if (queue_.closed()) {
      metrics_.rejected_shutdown.fetch_add(1);
      return reject(Status::Unavailable("query service is stopped"));
    }
    metrics_.rejected_overloaded.fetch_add(1);
    return reject(Status::Overloaded(
        "admission queue full (" + std::to_string(queue_.capacity()) +
        " pending) or serve memory budget exhausted; retry later"));
  }
  metrics_.admitted.fetch_add(1);
  metrics_.queue_depth.Record(queue_.size());
  return future;
}

void QueryService::SchedulerLoop() {
  for (;;) {
    Beat();
    std::vector<std::unique_ptr<Request>> batch = queue_.PopBatch(
        options_.max_batch, std::chrono::microseconds(options_.max_delay_us));
    Beat();
    if (batch.empty()) return;  // closed and drained
    Flush(std::move(batch));
    Beat();
  }
}

void QueryService::ResolveDegraded(Request* request) {
  // Lower-bound-only answer from the reduced representations: cheap,
  // deterministic, and independent of the (possibly stalled) scheduler.
  obs::TraceContextScope trace_scope(request->trace);
  SAPLA_TRACE_SPAN("serve/degraded");
  ServeResponse response;
  response.status = Status::OK();
  response.result = request->op == ServeOp::kKnn
                        ? index_.KnnLowerBound(request->query, request->k)
                        : index_.RangeSearchLowerBound(request->query,
                                                       request->radius);
  response.approximate = true;
  metrics_.degraded_served.fetch_add(1);
  metrics_.search.Add(response.result.counters, index_.dataset_size());
  response.trace_id = request->trace.trace_id;
  response.total_us = ElapsedUs(request->admitted, Clock::now());
  metrics_.total_us.Record(response.total_us);
  metrics_.window_total_us.Record(response.total_us);
  metrics_.completed_ok.fetch_add(1);
  MaybeLogSlowQuery(*request, response, "ok", /*degraded=*/true);
  request->promise.set_value(std::move(response));
}

void QueryService::ResolveExpired(Request* request) {
  metrics_.deadline_exceeded.fetch_add(1);
  obs::TraceContextScope trace_scope(request->trace);
  SAPLA_TRACE_SPAN("serve/expired");
  ServeResponse response;
  response.status = Status::DeadlineExceeded("deadline passed before the "
                                             "request could be executed");
  response.queue_us = request->queue_us;
  if (options_.degraded_answers) {
    response.result = request->op == ServeOp::kKnn
                          ? index_.KnnLowerBound(request->query, request->k)
                          : index_.RangeSearchLowerBound(request->query,
                                                         request->radius);
    response.approximate = true;
    metrics_.degraded.fetch_add(1);
    metrics_.search.Add(response.result.counters, index_.dataset_size());
  }
  response.trace_id = request->trace.trace_id;
  response.total_us = ElapsedUs(request->admitted, Clock::now());
  metrics_.total_us.Record(response.total_us);
  metrics_.window_total_us.Record(response.total_us);
  MaybeLogSlowQuery(*request, response, "deadline_exceeded",
                    /*degraded=*/response.approximate);
  request->promise.set_value(std::move(response));
}

void QueryService::Flush(std::vector<std::unique_ptr<Request>> batch) {
  SAPLA_TRACE_SPAN("serve/flush");
  // Fault point "serve/flush_stall": latency-only, freezes the scheduler
  // mid-flush so the watchdog's stall detection can be exercised.
  SAPLA_FAULT_DELAY("serve/flush_stall");
  const Clock::time_point flush_start = Clock::now();
  metrics_.batches_flushed.fetch_add(1);
  metrics_.batch_size.Record(batch.size());
  // Capture the corpus identity BEFORE any batch executes. A live shard
  // swap between execution and cache insert would otherwise let a result
  // computed from the old generation be cached under the new corpus id.
  // With the id captured first, execution pins generations at least as new
  // as the captured id, so a racing swap can only strand the entry under
  // the superseded id — a dead cache line, never a stale answer.
  const uint64_t corpus_id_at_flush = index_.corpus_id();

  // Fault point "serve/flush": the whole batch fails as one unit, the way
  // a real backend outage would fail it. Every request resolves with
  // kUnavailable; the consecutive-failure streak drives the health ladder.
  if (SAPLA_FAULT_HIT("serve/flush")) {
    metrics_.flush_failures.fetch_add(1);
    flush_fail_streak_.fetch_add(1);
    RecomputeHealth();
    for (auto& request : batch) {
      ServeResponse response;
      response.status =
          Status::Unavailable("batch flush failed; retry later");
      response.queue_us = ElapsedUs(request->admitted, flush_start);
      response.total_us = ElapsedUs(request->admitted, Clock::now());
      metrics_.total_us.Record(response.total_us);
      metrics_.window_total_us.Record(response.total_us);
      request->promise.set_value(std::move(response));
    }
    return;
  }

  // Partition: requests already past their deadline resolve immediately
  // (never stalling the live ones), the rest group by identical operation
  // parameters so each group is one deterministic KnnBatch /
  // RangeSearchBatch call.
  // Group key: op + the exact parameter bits (map is fine — batches are
  // small and kNN radii are not involved in ordering subtleties; bitwise
  // radius keys keep distinct NaN payloads distinct).
  std::map<std::tuple<ServeOp, size_t, uint64_t>, std::vector<Request*>>
      groups;
  for (auto& request : batch) {
    request->queue_us = ElapsedUs(request->admitted, flush_start);
    metrics_.queue_wait_us.Record(request->queue_us);
    if (request->DeadlinePassed(flush_start)) {
      ResolveExpired(request.get());
      request.reset();
      continue;
    }
    uint64_t radius_bits = 0;
    static_assert(sizeof(radius_bits) == sizeof(request->radius));
    std::memcpy(&radius_bits, &request->radius, sizeof(radius_bits));
    groups[{request->op, request->k, radius_bits}].push_back(request.get());
  }

  for (auto& [key, group] : groups) {
    std::vector<std::vector<double>> queries;
    queries.reserve(group.size());
    for (const Request* request : group) queries.push_back(request->query);

    SearchBatchOptions batch_options;
    batch_options.num_threads = options_.num_threads;
    batch_options.cancel = [&group](size_t i) {
      Request* request = group[i];
      if (request->DeadlinePassed(Clock::now())) {
        request->expired_mid_batch.store(true);
        return true;
      }
      return false;
    };
    // Stitch each query's execution back to its submitter: the worker
    // installs the request's admission context (not the scheduler's) and
    // fills the explain breakdown for requests that asked for one.
    batch_options.trace_of = [&group](size_t i) { return group[i]->trace; };
    batch_options.explain_of = [&group](size_t i) -> obs::QueryExplain* {
      return group[i]->want_explain ? &group[i]->explain : nullptr;
    };

    const Clock::time_point exec_start = Clock::now();
    std::vector<KnnResult> results;
    try {
      SAPLA_TRACE_SPAN("serve/exec_group");
      results = std::get<0>(key) == ServeOp::kKnn
                    ? index_.KnnBatch(queries, group.front()->k, batch_options)
                    : index_.RangeSearchBatch(queries, group.front()->radius,
                                              batch_options);
    } catch (const std::exception& e) {
      // The scheduler thread must survive anything the batch path throws
      // (e.g. bad_alloc under memory pressure): resolve the group
      // explicitly instead of terminating the process.
      metrics_.flush_failures.fetch_add(1);
      flush_fail_streak_.fetch_add(1);
      RecomputeHealth();
      for (Request* request : group) {
        ServeResponse response;
        response.status = Status::Internal(
            std::string("batch execution failed: ") + e.what());
        response.queue_us = request->queue_us;
        response.total_us = ElapsedUs(request->admitted, Clock::now());
        metrics_.total_us.Record(response.total_us);
        metrics_.window_total_us.Record(response.total_us);
        request->promise.set_value(std::move(response));
      }
      continue;
    }
    const uint64_t exec_us = ElapsedUs(exec_start, Clock::now());

    // A batch reached the index and came back: the failure streak is over
    // and any flush-driven degradation lifts. Recompute before resolving
    // the promises so a caller who just received a successful canary
    // answer never reads stale degraded/unhealthy health.
    if (flush_fail_streak_.load(std::memory_order_relaxed) != 0) {
      flush_fail_streak_.store(0, std::memory_order_relaxed);
      RecomputeHealth();
    }

    for (size_t i = 0; i < group.size(); ++i) {
      Request* request = group[i];
      metrics_.exec_us.Record(exec_us);
      metrics_.window_exec_us.Record(exec_us);
      if (request->expired_mid_batch.load()) {
        ResolveExpired(request);
        continue;
      }
      metrics_.search.Add(results[i].counters, index_.dataset_size());
      // Only exact answers are cached (the cache's documented contract):
      // an answer marked approximate (degraded/excluded shard) must not
      // outlive the health condition that produced it.
      if (cache_.capacity() > 0 && !results[i].approximate) {
        ResultCacheKey cache_key;
        cache_key.op = request->op;
        cache_key.k = request->k;
        cache_key.radius = request->radius;
        cache_key.method = index_.method();
        cache_key.kind = index_.kind();
        cache_key.corpus_id = corpus_id_at_flush;
        cache_key.query = request->query;
        cache_.Insert(cache_key, results[i]);
      }
      ServeResponse response;
      response.status = Status::OK();
      response.approximate = results[i].approximate;
      response.result = std::move(results[i]);
      response.queue_us = request->queue_us;
      response.trace_id = request->trace.trace_id;
      response.total_us = ElapsedUs(request->admitted, Clock::now());
      metrics_.total_us.Record(response.total_us);
      metrics_.window_total_us.Record(response.total_us);
      metrics_.completed_ok.fetch_add(1);
      MaybeLogSlowQuery(*request, response, "ok", /*degraded=*/false);
      request->promise.set_value(std::move(response));
    }
  }
}

void QueryService::MaybeLogSlowQuery(const Request& request,
                                     const ServeResponse& response,
                                     const char* status_name, bool degraded) {
  const bool by_time = options_.slow_query_us != 0 &&
                       response.total_us >= options_.slow_query_us;
  const bool by_work =
      options_.slow_query_lb_evals != 0 &&
      response.result.counters.lb_evaluations >= options_.slow_query_lb_evals;
  if (!by_time && !by_work) return;
  obs::SlowQueryRecord record;
  record.trace_id = request.trace.trace_id;
  record.op = request.op == ServeOp::kKnn ? "knn" : "range";
  record.k = request.k;
  record.radius = request.radius;
  record.status = status_name;
  record.cache_hit = response.cache_hit;
  record.approximate = response.approximate;
  record.degraded = degraded;
  record.retry = (request.trace.flags & obs::kTraceFlagRetry) != 0;
  record.hedge = (request.trace.flags & obs::kTraceFlagHedge) != 0;
  record.queue_us = response.queue_us;
  // The explain's wall time is the request's index-execution time (zero
  // for cache hits and inline degraded answers, which never executed).
  record.exec_us = request.explain.total_us;
  record.total_us = response.total_us;
  record.explain = request.explain;
  metrics_.slow_queries.fetch_add(1);
  slow_log_.Add(obs::SlowQueryRecordToJson(record));
}

}  // namespace sapla
