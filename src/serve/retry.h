#ifndef SAPLA_SERVE_RETRY_H_
#define SAPLA_SERVE_RETRY_H_

// Client-side retries around QueryService.
//
// The serving layer rejects fast and explicitly (kOverloaded on a full
// queue, kUnavailable while unhealthy); this module is the matching client
// discipline: retry only transient failures, back off exponentially with
// deterministic jitter, never retry past the caller's deadline, and meter
// all retries through a shared budget so a brown-out cannot snowball into
// a retry storm.
//
// Every query operation is read-only, hence idempotent — retrying can never
// double-apply anything. The retryable set is therefore gated on
// *transience* alone: kOverloaded always (backpressure is an invitation to
// come back later), kUnavailable only when the policy opts in (an unhealthy
// service usually needs time, not traffic). kDeadlineExceeded is never
// retried — the caller's time allowance is spent by definition — and
// permanent errors (kInvalidArgument etc.) never are.
//
// Determinism: the backoff schedule is a pure function of
// (policy, attempt, request_id) — see BackoffUs — so a logged request_id
// replays its exact timing, and tests assert schedules instead of sampling
// them. The retry budget is clock-free (token bucket refilled by
// *successes*, gRPC-throttling style), so its decisions are a pure function
// of the request history too.
//
// Hedging: with `hedge_delay_us` set, an attempt that has not answered
// within the delay launches ONE speculative duplicate ("hedge") of the same
// idempotent request and the first OK answer wins. Hedges draw from the
// same retry budget (one token each, denied when empty) so tail-chasing can
// never amplify load during a brown-out, and the race is resolved
// deterministically: when both responses are available the primary is
// preferred, and when both fail the primary's status drives the retry
// decision. The abandoned loser keeps running inside the service but its
// future is promise-owned, so discarding it never blocks.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <future>
#include <mutex>
#include <vector>

#include "serve/service.h"
#include "util/status.h"

namespace sapla {

/// \brief When and how to retry one logical request.
struct RetryPolicy {
  /// Total tries including the first (1 = no retries).
  uint32_t max_attempts = 3;
  /// Backoff before the first retry (µs).
  uint64_t initial_backoff_us = 1000;
  /// Growth factor per further retry.
  double backoff_multiplier = 2.0;
  /// Upper bound on any single backoff (µs).
  uint64_t max_backoff_us = 100'000;
  /// Fraction of each backoff that is jittered (0 = fully deterministic
  /// spacing, 1 = anywhere in [0, backoff]). The jitter itself is
  /// deterministic per (seed, request_id, attempt).
  double jitter = 0.5;
  /// Seed for the deterministic jitter.
  uint64_t seed = 0;
  /// Also retry kUnavailable (kOverloaded is always retryable).
  bool retry_unavailable = false;
  /// Launch one speculative duplicate of an attempt that has not answered
  /// within this many µs (0 disables hedging). Hedges cost one retry-budget
  /// token; first OK response wins, primary preferred on ties.
  uint64_t hedge_delay_us = 0;
};

/// Backoff in µs before retry number `attempt` (1-based: attempt 1 follows
/// the first failure) of request `request_id`. Pure function — same
/// arguments, same backoff, on any thread in any run.
uint64_t BackoffUs(const RetryPolicy& policy, uint32_t attempt,
                   uint64_t request_id);

/// True when `code` is a transient failure this policy retries.
bool IsRetryable(const RetryPolicy& policy, StatusCode code);

/// Pure retry decision for the failure of attempt number `attempt`
/// (1-based) with `code`, `elapsed_us` after the logical request started,
/// under `deadline_us` (0 = none). False when attempts are exhausted, the
/// code is not retryable, or the next backoff cannot finish before the
/// deadline — a retry that is guaranteed to return kDeadlineExceeded is
/// never launched.
bool ShouldRetry(const RetryPolicy& policy, uint32_t attempt, StatusCode code,
                 uint64_t elapsed_us, uint64_t deadline_us,
                 uint64_t request_id);

/// \brief Clock-free token bucket metering retries across requests.
///
/// Starts full at `max_tokens`. Each retry costs one token; each *success*
/// (retried or not) deposits `tokens_per_success`, capped at `max_tokens`.
/// When the bucket is empty retries are denied — under a persistent outage
/// the client degenerates to ~one attempt per request plus a trickle
/// proportional to whatever still succeeds, which is exactly the storm
/// brake wanted. Thread-safe.
class RetryBudget {
 public:
  explicit RetryBudget(double max_tokens = 10.0,
                       double tokens_per_success = 0.1);

  /// Takes one token; false (and no change) when fewer than one remains.
  bool TryAcquire();

  /// Credits one successful response.
  void RecordSuccess();

  double tokens() const;

 private:
  const double max_tokens_;
  const double tokens_per_success_;
  mutable std::mutex mu_;
  double tokens_;
};

/// \brief Counters for one RetryingClient (all monotonic, thread-safe).
struct RetryStats {
  /// Requests issued to the service, including hedges.
  std::atomic<uint64_t> attempts{0};
  std::atomic<uint64_t> retries{0};
  /// Retries *or hedges* denied because the budget was empty.
  std::atomic<uint64_t> budget_denied{0};
  std::atomic<uint64_t> deadline_denied{0};
  /// Speculative duplicates launched after hedge_delay_us without answer.
  std::atomic<uint64_t> hedges{0};
  /// Hedges whose response was the one returned (primary lost the race).
  std::atomic<uint64_t> hedge_wins{0};
};

/// \brief Blocking QueryService client that applies a RetryPolicy.
///
/// Issues attempts through the asynchronous submit path (so a hedge can
/// race its primary) but presents the blocking Knn / Range surface; the
/// per-call deadline spans the whole logical request including backoff
/// sleeps and hedge waits. A shared RetryBudget may be plugged in; without
/// one only attempts and deadlines limit retries (hedges are then
/// unmetered). The service and budget must outlive the client.
class RetryingClient {
 public:
  RetryingClient(QueryService& service, const RetryPolicy& policy,
                 RetryBudget* budget = nullptr);

  /// k-NN with retries. `request_id` keys the deterministic jitter (pass a
  /// stable id to make timing replayable; 0 is a fine default).
  ServeResponse Knn(const std::vector<double>& query, size_t k,
                    uint64_t deadline_us = 0, uint64_t request_id = 0);

  /// Range query with retries; same contract as Knn.
  ServeResponse Range(const std::vector<double>& query, double radius,
                      uint64_t deadline_us = 0, uint64_t request_id = 0);

  const RetryStats& stats() const { return stats_; }
  const RetryPolicy& policy() const { return policy_; }

 private:
  /// One logical request. `issue(attempt_deadline_us)` submits one attempt
  /// and returns its future; Run layers deadlines, retries and hedging on
  /// top.
  template <typename Issue>
  ServeResponse Run(Issue issue, uint64_t deadline_us, uint64_t request_id);

  /// Resolves one attempt: waits on the primary, hedging per policy_.
  template <typename Issue>
  ServeResponse Await(Issue& issue, std::future<ServeResponse> primary,
                      std::chrono::steady_clock::time_point start,
                      uint64_t deadline_us);

  QueryService& service_;
  const RetryPolicy policy_;
  RetryBudget* budget_;
  RetryStats stats_;
};

}  // namespace sapla

#endif  // SAPLA_SERVE_RETRY_H_
