#ifndef SAPLA_SERVE_METRICS_H_
#define SAPLA_SERVE_METRICS_H_

// Metrics registry for the embedded query service (serve/service.h).
//
// All counters are plain atomics and all distributions are fixed-bucket
// histograms (util/histogram.h), so recording from the admission path, the
// scheduler thread and the pool workers is wait-free and never serializes
// request processing. Readers take an instantaneous Snapshot — a plain
// struct of numbers — and render it through the repo's table writer
// (util/table.h), which is how every bench/tool in this repo reports.
//
// Glossary (docs/SERVING.md has the full prose):
//   admitted            requests accepted into the bounded queue
//   rejected_overloaded requests refused at admission (queue full)
//   rejected_shutdown   requests refused because the service was stopped
//   completed_ok        requests answered with exact results
//   deadline_exceeded   requests dropped because their deadline passed
//   degraded            deadline-exceeded requests that still got an
//                       approximate lower-bound-only answer
//   cache_hits/misses   result-cache outcome at admission time
//   batches_flushed     micro-batches executed
//   queue_wait_us       admission -> start of the request's flush
//   exec_us             wall time of the flush that ran the request
//   total_us            admission -> response resolution
//   batch_size          requests per flushed micro-batch
//   queue_depth         queue length observed after each admission

#include <atomic>
#include <cstdint>

#include "util/histogram.h"
#include "util/table.h"

namespace sapla {

/// \brief Live, thread-safe metrics for one QueryService instance.
struct ServeMetrics {
  std::atomic<uint64_t> admitted{0};
  std::atomic<uint64_t> rejected_overloaded{0};
  std::atomic<uint64_t> rejected_shutdown{0};
  std::atomic<uint64_t> completed_ok{0};
  std::atomic<uint64_t> deadline_exceeded{0};
  std::atomic<uint64_t> degraded{0};
  std::atomic<uint64_t> cache_hits{0};
  std::atomic<uint64_t> cache_misses{0};
  std::atomic<uint64_t> batches_flushed{0};

  Histogram queue_wait_us;
  Histogram exec_us;
  Histogram total_us;
  Histogram batch_size;
  Histogram queue_depth;
};

/// One histogram, collapsed to the numbers reports care about.
struct HistogramSnapshot {
  uint64_t count = 0;
  double mean = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
  uint64_t max = 0;
};

/// Point-in-time copy of every metric; safe to read field by field.
struct ServeMetricsSnapshot {
  uint64_t admitted = 0;
  uint64_t rejected_overloaded = 0;
  uint64_t rejected_shutdown = 0;
  uint64_t completed_ok = 0;
  uint64_t deadline_exceeded = 0;
  uint64_t degraded = 0;
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  uint64_t batches_flushed = 0;

  HistogramSnapshot queue_wait_us;
  HistogramSnapshot exec_us;
  HistogramSnapshot total_us;
  HistogramSnapshot batch_size;
  HistogramSnapshot queue_depth;

  /// cache_hits / (cache_hits + cache_misses); 0 with no lookups.
  double CacheHitRate() const;
};

/// Collapses one histogram (concurrent-safe; see util/histogram.h).
HistogramSnapshot SnapshotHistogram(const Histogram& h);

/// Snapshots every counter and histogram.
ServeMetricsSnapshot SnapshotMetrics(const ServeMetrics& metrics);

/// Renders a snapshot as one table (counters first, then one row per
/// histogram with count/mean/p50/p95/p99/max), printable or CSV/JSON via
/// util/table.h.
Table MetricsToTable(const ServeMetricsSnapshot& snap,
                     const std::string& title = "Serve metrics");

}  // namespace sapla

#endif  // SAPLA_SERVE_METRICS_H_
