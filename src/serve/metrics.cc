#include "serve/metrics.h"

namespace sapla {

double ServeMetricsSnapshot::CacheHitRate() const {
  const uint64_t lookups = cache_hits + cache_misses;
  return lookups == 0 ? 0.0
                      : static_cast<double>(cache_hits) /
                            static_cast<double>(lookups);
}

HistogramSnapshot SnapshotHistogram(const Histogram& h) {
  HistogramSnapshot s;
  s.count = h.Count();
  s.mean = h.Mean();
  s.p50 = h.Quantile(0.50);
  s.p95 = h.Quantile(0.95);
  s.p99 = h.Quantile(0.99);
  s.max = h.Max();
  return s;
}

ServeMetricsSnapshot SnapshotMetrics(const ServeMetrics& metrics) {
  ServeMetricsSnapshot s;
  s.admitted = metrics.admitted.load();
  s.rejected_overloaded = metrics.rejected_overloaded.load();
  s.rejected_shutdown = metrics.rejected_shutdown.load();
  s.completed_ok = metrics.completed_ok.load();
  s.deadline_exceeded = metrics.deadline_exceeded.load();
  s.degraded = metrics.degraded.load();
  s.cache_hits = metrics.cache_hits.load();
  s.cache_misses = metrics.cache_misses.load();
  s.batches_flushed = metrics.batches_flushed.load();
  s.queue_wait_us = SnapshotHistogram(metrics.queue_wait_us);
  s.exec_us = SnapshotHistogram(metrics.exec_us);
  s.total_us = SnapshotHistogram(metrics.total_us);
  s.batch_size = SnapshotHistogram(metrics.batch_size);
  s.queue_depth = SnapshotHistogram(metrics.queue_depth);
  return s;
}

Table MetricsToTable(const ServeMetricsSnapshot& snap,
                     const std::string& title) {
  Table t(title);
  t.SetHeader({"Metric", "Count", "Mean", "P50", "P95", "P99", "Max"});
  const auto counter = [&](const std::string& name, uint64_t value) {
    t.AddRow({name, std::to_string(value), "", "", "", "", ""});
  };
  const auto hist = [&](const std::string& name, const HistogramSnapshot& h) {
    t.AddRow({name, std::to_string(h.count), Table::Num(h.mean, 4),
              Table::Num(h.p50, 4), Table::Num(h.p95, 4), Table::Num(h.p99, 4),
              std::to_string(h.max)});
  };
  counter("admitted", snap.admitted);
  counter("rejected_overloaded", snap.rejected_overloaded);
  counter("rejected_shutdown", snap.rejected_shutdown);
  counter("completed_ok", snap.completed_ok);
  counter("deadline_exceeded", snap.deadline_exceeded);
  counter("degraded", snap.degraded);
  counter("cache_hits", snap.cache_hits);
  counter("cache_misses", snap.cache_misses);
  t.AddRow({"cache_hit_rate", Table::Num(snap.CacheHitRate(), 4), "", "", "",
            "", ""});
  counter("batches_flushed", snap.batches_flushed);
  hist("queue_wait_us", snap.queue_wait_us);
  hist("exec_us", snap.exec_us);
  hist("total_us", snap.total_us);
  hist("batch_size", snap.batch_size);
  hist("queue_depth", snap.queue_depth);
  return t;
}

}  // namespace sapla
