#ifndef SAPLA_SERVE_RESULT_CACHE_H_
#define SAPLA_SERVE_RESULT_CACHE_H_

// Sharded LRU cache of exact query results for the serving layer.
//
// Keyed by (query bytes, operation, k or radius, method, index kind): two
// requests collide only when they would provably produce the identical
// KnnResult, so serving from the cache preserves the service's determinism
// contract — including the cached num_measured, which reports the work the
// original execution did. Entries are verified by full key comparison
// (the stored query is compared element-wise), so a 64-bit hash collision
// degrades to a miss, never to a wrong answer.
//
// Sharding: the key hash picks one of `shards` independent LRU maps, each
// behind its own mutex, so concurrent admission-path lookups from many
// client threads do not serialize on one lock. Invalidate() clears every
// shard; SimilarityIndex has no incremental rebuild, so whole-cache
// invalidation on rebuild is the only coherence protocol needed.

#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "reduction/representation.h"
#include "search/knn.h"

namespace sapla {

/// Operation discriminator for cache keys and requests.
enum class ServeOp { kKnn = 0, kRange };

/// \brief Cache key: everything that determines a request's exact answer.
struct ResultCacheKey {
  ServeOp op = ServeOp::kKnn;
  size_t k = 0;             ///< kNN only
  double radius = 0.0;      ///< range only
  Method method = Method::kSapla;
  IndexKind kind = IndexKind::kRTree;
  std::vector<double> query;

  uint64_t Hash() const;
  bool operator==(const ResultCacheKey& other) const;
};

/// \brief Sharded LRU map from ResultCacheKey to KnnResult.
class ResultCache {
 public:
  /// \param capacity total entry budget across all shards (0 disables the
  ///   cache: Lookup always misses, Insert is a no-op).
  /// \param shards number of independent LRU shards (clamped to >= 1).
  ResultCache(size_t capacity, size_t shards);
  ~ResultCache();

  /// Copies the cached result into `out` and refreshes LRU order.
  bool Lookup(const ResultCacheKey& key, KnnResult* out);

  /// Inserts (or refreshes) an entry, evicting the shard's LRU tail beyond
  /// its per-shard capacity.
  void Insert(const ResultCacheKey& key, const KnnResult& result);

  /// Drops every entry in every shard (rebuild invalidation).
  void Invalidate();

  /// Current number of cached entries (sums shard sizes; approximate under
  /// concurrent mutation).
  size_t size() const;

  size_t capacity() const { return capacity_; }

 private:
  struct Shard;

  size_t capacity_;
  size_t per_shard_capacity_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace sapla

#endif  // SAPLA_SERVE_RESULT_CACHE_H_
