#include "serve/retry.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <future>
#include <thread>

#include "obs/trace.h"

namespace sapla {
namespace {

using Clock = std::chrono::steady_clock;

uint64_t ElapsedUs(Clock::time_point from) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                            from)
          .count());
}

// splitmix64 finalizer: full-avalanche 64-bit mix, the jitter's only
// source of "randomness" (deterministic by construction).
uint64_t Mix64(uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

}  // namespace

uint64_t BackoffUs(const RetryPolicy& policy, uint32_t attempt,
                   uint64_t request_id) {
  if (attempt == 0) return 0;
  // Exponential base: initial * multiplier^(attempt-1), capped. Computed in
  // floating point so a large attempt saturates at the cap instead of
  // overflowing.
  double base = static_cast<double>(policy.initial_backoff_us);
  for (uint32_t i = 1; i < attempt; ++i) {
    base *= policy.backoff_multiplier;
    if (base >= static_cast<double>(policy.max_backoff_us)) break;
  }
  base = std::min(base, static_cast<double>(policy.max_backoff_us));

  const double jitter = std::clamp(policy.jitter, 0.0, 1.0);
  if (jitter == 0.0) return static_cast<uint64_t>(base);
  // u in [0, 1): pure in (seed, request_id, attempt).
  const uint64_t h =
      Mix64(policy.seed ^ Mix64(request_id ^ (uint64_t{attempt} << 32)));
  const double u = static_cast<double>(h >> 11) * 0x1.0p-53;
  return static_cast<uint64_t>(base * (1.0 - jitter + jitter * u));
}

bool IsRetryable(const RetryPolicy& policy, StatusCode code) {
  switch (code) {
    case StatusCode::kOverloaded:
      return true;
    case StatusCode::kUnavailable:
      return policy.retry_unavailable;
    default:
      return false;
  }
}

bool ShouldRetry(const RetryPolicy& policy, uint32_t attempt, StatusCode code,
                 uint64_t elapsed_us, uint64_t deadline_us,
                 uint64_t request_id) {
  if (attempt >= policy.max_attempts) return false;
  if (!IsRetryable(policy, code)) return false;
  if (deadline_us != 0) {
    // A retry launched after the deadline, or whose backoff alone consumes
    // the remainder, is a guaranteed kDeadlineExceeded — skip it.
    if (elapsed_us >= deadline_us) return false;
    if (BackoffUs(policy, attempt, request_id) >= deadline_us - elapsed_us)
      return false;
  }
  return true;
}

RetryBudget::RetryBudget(double max_tokens, double tokens_per_success)
    : max_tokens_(max_tokens),
      tokens_per_success_(tokens_per_success),
      tokens_(max_tokens) {}

bool RetryBudget::TryAcquire() {
  std::lock_guard<std::mutex> lock(mu_);
  if (tokens_ < 1.0) return false;
  tokens_ -= 1.0;
  return true;
}

void RetryBudget::RecordSuccess() {
  std::lock_guard<std::mutex> lock(mu_);
  tokens_ = std::min(max_tokens_, tokens_ + tokens_per_success_);
}

double RetryBudget::tokens() const {
  std::lock_guard<std::mutex> lock(mu_);
  return tokens_;
}

RetryingClient::RetryingClient(QueryService& service,
                               const RetryPolicy& policy, RetryBudget* budget)
    : service_(service), policy_(policy), budget_(budget) {}

template <typename Issue>
ServeResponse RetryingClient::Await(Issue& issue,
                                    std::future<ServeResponse> primary,
                                    Clock::time_point start,
                                    uint64_t deadline_us) {
  if (policy_.hedge_delay_us == 0) return primary.get();
  if (primary.wait_for(std::chrono::microseconds(policy_.hedge_delay_us)) ==
      std::future_status::ready)
    return primary.get();

  // The primary is slow; race a speculative duplicate against it. Hedges
  // draw from the same budget as retries so they cannot amplify a
  // brown-out.
  if (budget_ != nullptr && !budget_->TryAcquire()) {
    stats_.budget_denied.fetch_add(1);
    return primary.get();
  }
  stats_.attempts.fetch_add(1);
  stats_.hedges.fetch_add(1);
  uint64_t hedge_deadline_us = 0;
  if (deadline_us != 0) {
    const uint64_t elapsed = ElapsedUs(start);
    // The primary consumed part of the allowance waiting; give the hedge
    // whatever remains (a floor of 1µs makes "already expired" resolve as
    // kDeadlineExceeded inside the service rather than "no deadline").
    hedge_deadline_us = elapsed >= deadline_us ? 1 : deadline_us - elapsed;
  }
  std::future<ServeResponse> hedge;
  {
    // The hedge is the same logical request: it inherits the ambient trace
    // context (same trace id) and additionally carries the hedge flag, so
    // its admission — and its slow-query record, even unsampled — is
    // attributable as a speculative duplicate.
    obs::TraceContext hedge_ctx = obs::CurrentTraceContext();
    hedge_ctx.flags |= obs::kTraceFlagHedge;
    obs::TraceContextScope hedge_scope(hedge_ctx);
    SAPLA_TRACE_SPAN("retry/hedge");
    hedge = issue(hedge_deadline_us);
  }

  // First OK wins; ties and double failures resolve to the primary so the
  // outcome is deterministic given the two responses. The loser's future is
  // simply dropped — QueryService owns the promise, so abandoning the
  // future never blocks and the in-flight work finishes harmlessly.
  for (;;) {
    if (primary.wait_for(std::chrono::microseconds(0)) ==
        std::future_status::ready) {
      ServeResponse response = primary.get();
      if (response.status.ok()) return response;
      ServeResponse hedged = hedge.get();
      if (!hedged.status.ok()) return response;
      stats_.hedge_wins.fetch_add(1);
      return hedged;
    }
    if (hedge.wait_for(std::chrono::microseconds(0)) ==
        std::future_status::ready) {
      ServeResponse hedged = hedge.get();
      if (hedged.status.ok()) {
        stats_.hedge_wins.fetch_add(1);
        return hedged;
      }
      // Hedge failed first; the primary's answer (either way) is the
      // attempt's answer.
      return primary.get();
    }
    std::this_thread::sleep_for(std::chrono::microseconds(50));
  }
}

template <typename Issue>
ServeResponse RetryingClient::Run(Issue issue, uint64_t deadline_us,
                                  uint64_t request_id) {
  const Clock::time_point start = Clock::now();
  // One logical request = one trace. Mint the identity here (when the
  // caller did not already install one) so every attempt and hedge of this
  // request shares the trace id instead of each admission minting its own.
  obs::TraceContext ctx = obs::CurrentTraceContext();
  if (!ctx.sampled) {
    const uint32_t flags = ctx.flags;
    ctx = obs::MintTraceContext();  // unsampled no-op while tracing is off
    ctx.flags |= flags;
  }
  for (uint32_t attempt = 1;; ++attempt) {
    stats_.attempts.fetch_add(1);
    // Each attempt gets the *remaining* allowance, so the service-side
    // deadline machinery and this loop agree on when time is up.
    uint64_t attempt_deadline_us = 0;
    if (deadline_us != 0) {
      const uint64_t elapsed = ElapsedUs(start);
      if (elapsed >= deadline_us) {
        ServeResponse response;
        response.status = Status::DeadlineExceeded(
            "deadline passed before the attempt could be issued");
        response.total_us = elapsed;
        return response;
      }
      attempt_deadline_us = deadline_us - elapsed;
    }
    ServeResponse response;
    {
      // Re-tries carry the retry flag; the first attempt runs under the
      // plain logical-request context. Await runs inside the scope so the
      // hedge it may launch inherits this attempt's context.
      obs::TraceContext attempt_ctx = ctx;
      if (attempt > 1) attempt_ctx.flags |= obs::kTraceFlagRetry;
      obs::TraceContextScope attempt_scope(attempt_ctx);
      SAPLA_TRACE_SPAN("retry/attempt");
      response = Await(issue, issue(attempt_deadline_us), start, deadline_us);
    }
    if (response.status.ok()) {
      if (budget_ != nullptr) budget_->RecordSuccess();
      return response;
    }
    const uint64_t elapsed = ElapsedUs(start);
    if (!ShouldRetry(policy_, attempt, response.status.code(), elapsed,
                     deadline_us, request_id)) {
      if (deadline_us != 0 && IsRetryable(policy_, response.status.code()) &&
          attempt < policy_.max_attempts)
        stats_.deadline_denied.fetch_add(1);
      return response;
    }
    if (budget_ != nullptr && !budget_->TryAcquire()) {
      stats_.budget_denied.fetch_add(1);
      return response;
    }
    stats_.retries.fetch_add(1);
    const uint64_t backoff = BackoffUs(policy_, attempt, request_id);
    if (backoff > 0)
      std::this_thread::sleep_for(std::chrono::microseconds(backoff));
  }
}

ServeResponse RetryingClient::Knn(const std::vector<double>& query, size_t k,
                                  uint64_t deadline_us, uint64_t request_id) {
  return Run(
      [&](uint64_t attempt_deadline_us) {
        return service_.SubmitKnn(query, k, attempt_deadline_us);
      },
      deadline_us, request_id);
}

ServeResponse RetryingClient::Range(const std::vector<double>& query,
                                    double radius, uint64_t deadline_us,
                                    uint64_t request_id) {
  return Run(
      [&](uint64_t attempt_deadline_us) {
        return service_.SubmitRange(query, radius, attempt_deadline_us);
      },
      deadline_us, request_id);
}

}  // namespace sapla
