#ifndef SAPLA_SERVE_SERVICE_H_
#define SAPLA_SERVE_SERVICE_H_

// Embedded query-serving subsystem.
//
// QueryService turns a stream of independent kNN / range requests from any
// number of client threads into efficient micro-batched work on top of a
// SearchIndex (a single SimilarityIndex or a sharded tier,
// search/sharded_index.h), and owns the whole request lifecycle:
//
//   admission   A bounded MPMC queue (util/bounded_queue.h). When it is
//               full the request is rejected immediately with kOverloaded —
//               explicit backpressure, never unbounded growth. With a
//               memory budget the queue also charges each request's payload
//               bytes and rejects at the hard watermark; with
//               admission_target_delay_us set, queueing delay sheds
//               low-priority requests before the queue fills (adaptive
//               admission control, docs/ROBUSTNESS.md).
//   batching    A dedicated scheduler thread coalesces queued requests and
//               flushes a micro-batch when either `max_batch` requests are
//               pending or the oldest has waited `max_delay_us`. Each flush
//               groups requests by (op, k | radius) and runs one
//               KnnBatch / RangeSearchBatch call on the global pool, so
//               answers are bit-identical to per-request serial execution
//               (the contract tests/serve_test.cc enforces).
//   deadlines   A request past its deadline is dropped cooperatively — at
//               flush start, or by the batch path's cancellation hook right
//               before it would execute — and resolves to kDeadlineExceeded
//               instead of stalling the queue. With `degraded_answers` it
//               still carries an approximate answer computed from the
//               reduced-representation lower bounds only (approximate=true,
//               no raw series touched).
//   caching     A sharded LRU result cache (serve/result_cache.h) answers
//               repeated queries at admission time; exact results only,
//               explicitly invalidated via InvalidateCache() on rebuild.
//   metrics     Queue depth, batch sizes, cache hits, deadline misses,
//               per-stage latency and aggregated per-query search counters,
//               exported through obs/metrics.h (Prometheus text or JSON).
//   health      A three-state degradation ladder (docs/ROBUSTNESS.md):
//               healthy  -> exact answers through the batching pipeline;
//               degraded -> admission answers inline from the reduced
//                           representations only (OK + approximate=true,
//                           never touching the stalled scheduler);
//               unhealthy-> explicit kUnavailable.
//               Health is driven by two signals: a watchdog thread that
//               detects a stalled scheduler (stale heartbeat while work is
//               queued) and a consecutive-flush-failure streak. Both
//               recover automatically when the signal clears. Cache hits
//               are exact and served in every state.
//
// Thread-safety: every public method may be called concurrently from any
// thread. The index must outlive the service. A plain SimilarityIndex must
// also stay immutable while the service runs (rebuild => destroy the
// service, rebuild, recreate — and InvalidateCache() if the old cache
// object is reused). A ShardedIndex may swap shard generations live: the
// cache key captures corpus_id() immediately before a batch executes, and
// the execution pins generations at least that new, so a result can never
// be cached under a corpus id newer than the data that produced it — a
// swap strands old entries under the old id (dead, never served) instead
// of ever serving a stale mix.

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "obs/explain.h"
#include "obs/metrics.h"
#include "search/search_index.h"
#include "serve/result_cache.h"
#include "util/bounded_queue.h"
#include "util/resource_budget.h"
#include "util/status.h"

namespace sapla {

/// \brief Position on the degradation ladder (ordered: higher is worse).
enum class ServeHealth : int {
  kHealthy = 0,    ///< exact answers through the batching pipeline
  kDegraded = 1,   ///< inline lower-bound-only answers (approximate=true)
  kUnhealthy = 2,  ///< requests rejected with kUnavailable
};

/// "healthy" / "degraded" / "unhealthy".
const char* ServeHealthName(ServeHealth health);

/// \brief Request priority for adaptive admission control (ordered: higher
/// sheds later). With ServeOptions::admission_target_delay_us set, kLow
/// requests shed once the oldest queued request has waited past the target,
/// kNormal past twice the target, and kHigh never sheds early (it still
/// gets kOverloaded when the queue itself is full).
enum class ServePriority : int { kLow = 0, kNormal = 1, kHigh = 2 };

/// \brief Tuning knobs for one QueryService.
struct ServeOptions {
  /// Admission-queue capacity; a full queue rejects with kOverloaded.
  size_t queue_capacity = 1024;
  /// Flush a micro-batch once this many requests are pending...
  size_t max_batch = 32;
  /// ...or once the oldest pending request has waited this long (µs).
  uint64_t max_delay_us = 200;
  /// Fan-out of one flushed batch (0 = global default, util/parallel.h).
  size_t num_threads = 0;
  /// Result-cache entry budget (0 disables caching).
  size_t cache_capacity = 0;
  /// Result-cache shard count.
  size_t cache_shards = 8;
  /// Deadline applied to requests that do not set one (µs from admission;
  /// 0 = no deadline).
  uint64_t default_deadline_us = 0;
  /// Answer deadline-exceeded requests with a lower-bound-only approximate
  /// result instead of an empty one.
  bool degraded_answers = false;
  /// Watchdog poll period (µs); 0 disables the watchdog thread entirely
  /// (health is then driven by flush failures alone).
  uint64_t watchdog_interval_us = 0;
  /// Scheduler-heartbeat staleness, with work queued, that flips health to
  /// degraded. Must comfortably exceed `max_delay_us` plus a typical flush,
  /// or a busy-but-healthy scheduler gets flagged.
  uint64_t stall_degraded_us = 100'000;
  /// Staleness that flips health to unhealthy.
  uint64_t stall_unhealthy_us = 1'000'000;
  /// Consecutive flush failures that flip health to degraded (0 = never).
  uint64_t flush_failures_degraded = 3;
  /// Consecutive flush failures that flip health to unhealthy (0 = never).
  uint64_t flush_failures_unhealthy = 10;

  // ---- Observability (docs/OBSERVABILITY.md).

  /// Tail-sampled slow-query log: a request whose total latency reaches
  /// this (µs) dumps a structured explain record into slow_query_log().
  /// 0 disables the latency trigger.
  uint64_t slow_query_us = 0;
  /// Work-based trigger: a request whose lower-bound evaluation count
  /// reaches this is logged even when it was fast (it burned corpus scans
  /// the latency histogram hides under parallelism). 0 disables.
  uint64_t slow_query_lb_evals = 0;
  /// Retained slow-query records (oldest evicted beyond this).
  size_t slow_log_capacity = 128;
  /// With tracing enabled (obs::SetTraceEnabled), mint a trace context for
  /// every Nth admitted request that arrives without one; 1 samples every
  /// request, 0 never mints (only propagates caller-supplied contexts).
  uint64_t trace_sample_every = 1;
  /// Sliding window for the live tail-latency gauges
  /// (window_total_us / window_exec_us in obs/metrics.h).
  uint64_t window_us = 60'000'000;

  // ---- Resource governance (docs/ROBUSTNESS.md).

  /// Memory budget this service charges its result cache and queued
  /// request payloads against (util/resource_budget.h). The service makes
  /// its own attribution children ("serve/cache", "serve/queue") under
  /// this node, so pass the process root (or a shared serving budget) and
  /// the exposition shows who holds what. Pressure on the budget drives a
  /// graded response at admission: soft -> the cache is shrunk to half
  /// once per pressure episode; hard -> reads degrade to inline
  /// lower-bound answers (approximate=true) until pressure lifts.
  /// nullptr disables governance.
  std::shared_ptr<ResourceBudget> memory_budget;
  /// Adaptive admission control: target queueing delay (µs). When the
  /// oldest queued request has waited longer, new kLow requests shed with
  /// kOverloaded; past twice the target kNormal sheds too. kHigh never
  /// sheds early. 0 disables delay-based shedding.
  uint64_t admission_target_delay_us = 0;
};

/// \brief One request's outcome.
struct ServeResponse {
  /// OK, Overloaded, DeadlineExceeded, Unavailable or InvalidArgument.
  Status status;
  /// The answer; empty on rejection unless `approximate` is set.
  KnnResult result;
  /// The result was computed from lower bounds only (degraded answer).
  bool approximate = false;
  /// The result came from the cache (no execution, no queueing).
  bool cache_hit = false;
  /// Admission -> start of the flush that handled the request (µs).
  uint64_t queue_us = 0;
  /// Admission -> response resolution (µs).
  uint64_t total_us = 0;
  /// Trace id the request ran under (0 when unsampled): joins this
  /// response to its span tree in a Chrome trace export and to its
  /// slow-query record.
  uint64_t trace_id = 0;
};

/// \brief Thread-safe micro-batching query service over one index.
class QueryService {
 public:
  /// The index must be built and must outlive the service. Accepts any
  /// SearchIndex — a standalone SimilarityIndex or a ShardedIndex.
  explicit QueryService(const SearchIndex& index,
                        const ServeOptions& options = {});

  /// Stops the service (drains the queue) before destruction.
  ~QueryService();

  QueryService(const QueryService&) = delete;
  QueryService& operator=(const QueryService&) = delete;

  /// Asynchronous k-NN. `deadline_us` counts from admission; 0 uses the
  /// service default (which may be "none"). Rejections (overload, stopped,
  /// bad query length) resolve the future immediately. `priority` only
  /// matters with admission_target_delay_us set (see ServePriority).
  std::future<ServeResponse> SubmitKnn(
      std::vector<double> query, size_t k, uint64_t deadline_us = 0,
      ServePriority priority = ServePriority::kNormal);

  /// Asynchronous range query; same lifecycle as SubmitKnn.
  std::future<ServeResponse> SubmitRange(
      std::vector<double> query, double radius, uint64_t deadline_us = 0,
      ServePriority priority = ServePriority::kNormal);

  /// Blocking conveniences for closed-loop clients.
  ServeResponse Knn(std::vector<double> query, size_t k,
                    uint64_t deadline_us = 0);
  ServeResponse Range(std::vector<double> query, double radius,
                      uint64_t deadline_us = 0);

  /// Drops every cached result (call after rebuilding the index).
  void InvalidateCache();

  /// Current position on the degradation ladder. Wait-free.
  ServeHealth health() const {
    return static_cast<ServeHealth>(health_.load(std::memory_order_relaxed));
  }

  /// Stops admission, drains and executes everything already queued, and
  /// joins the scheduler. Idempotent; later submissions get kUnavailable.
  void Stop();

  /// Live metrics registry (wait-free readers, see obs/metrics.h). The
  /// per-shard health gauges are refreshed on the way out.
  const ServeMetrics& metrics() const {
    RefreshShardGauges();
    return metrics_;
  }

  /// Point-in-time snapshot of every counter and histogram.
  ServeMetricsSnapshot MetricsSnapshot() const {
    RefreshShardGauges();
    return SnapshotMetrics(metrics_);
  }

  /// Tail-sampled slow-query records (see ServeOptions::slow_query_us /
  /// slow_query_lb_evals). Thread-safe.
  const obs::SlowQueryLog& slow_query_log() const { return slow_log_; }

  const ServeOptions& options() const { return options_; }

 private:
  struct Request;

  std::future<ServeResponse> Submit(std::unique_ptr<Request> request);
  void SchedulerLoop();
  void Flush(std::vector<std::unique_ptr<Request>> batch);
  void ResolveExpired(Request* request);
  /// Answers one request inline from the reduced representations only
  /// (degraded path; no scheduler involvement).
  void ResolveDegraded(Request* request);
  /// Tail sampling: renders a slow-query record when the finished request
  /// crossed a configured threshold. `status_name` is the response status
  /// ("ok", "deadline_exceeded", ...); `degraded` marks degradation-path
  /// answers.
  void MaybeLogSlowQuery(const Request& request,
                         const ServeResponse& response,
                         const char* status_name, bool degraded);
  void WatchdogLoop();
  /// Stamps the scheduler heartbeat with "now".
  void Beat();
  /// Re-derives health from the stall level and flush-failure streak.
  void RecomputeHealth();
  /// Copies the index's per-shard health into the metrics gauges (wait-free
  /// atomic stores; metrics_ is mutable so const readers stay current).
  void RefreshShardGauges() const;

  const SearchIndex& index_;
  const ServeOptions options_;

  /// Attribution children under options_.memory_budget (null when
  /// governance is off). Declared before cache_/queue_ so they exist when
  /// those members construct and outlive them at destruction.
  std::shared_ptr<ResourceBudget> cache_budget_;
  std::shared_ptr<ResourceBudget> queue_budget_;
  /// One cache shrink per pressure episode: armed when pressure appears,
  /// reset when it fully lifts.
  std::atomic<bool> shrunk_this_episode_{false};
  /// 1 while the budget is hard-saturated (feeds RecomputeHealth).
  std::atomic<int> pressure_level_{0};

  mutable ServeMetrics metrics_;
  ResultCache cache_;
  obs::SlowQueryLog slow_log_;
  BoundedQueue<std::unique_ptr<Request>> queue_;
  std::atomic<bool> stopped_{false};
  /// Admission counter driving ServeOptions::trace_sample_every.
  std::atomic<uint64_t> admit_seq_{0};

  /// Degradation-ladder state. `heartbeat_us_` is the scheduler's last
  /// sign of life (steady-clock µs); the watchdog compares it against the
  /// stall thresholds whenever work is queued and records the verdict in
  /// `stall_level_`. Flush maintains `flush_fail_streak_`. Health is the
  /// worse of the two signals.
  std::atomic<uint64_t> heartbeat_us_{0};
  std::atomic<int> stall_level_{0};
  std::atomic<uint64_t> flush_fail_streak_{0};
  std::atomic<int> health_{0};
  /// Counts requests seen while not healthy; every eighth one becomes a
  /// canary probe through the normal pipeline so recovery is observable.
  std::atomic<uint64_t> ladder_seq_{0};

  std::mutex watchdog_mu_;
  std::condition_variable watchdog_cv_;
  bool watchdog_stop_ = false;

  std::thread scheduler_;
  std::thread watchdog_;
};

}  // namespace sapla

#endif  // SAPLA_SERVE_SERVICE_H_
