#ifndef SAPLA_UTIL_HISTOGRAM_H_
#define SAPLA_UTIL_HISTOGRAM_H_

// Fixed-bucket histogram for latency and size distributions.
//
// 64 geometric buckets (ratio sqrt(2), upper bounds 1, 2, 3, 4, 6, 8, ...)
// cover [0, 2^31.5) — microsecond latencies from sub-µs to ~50 minutes, or
// batch sizes / queue depths with the same resolution. Record is a single
// relaxed atomic increment, safe from any thread with no locking; readers
// (Count / Mean / Quantile) take an instantaneous snapshot of the bucket
// counts, so they can run concurrently with writers. Quantiles are
// estimated by linear interpolation inside the bucket that crosses the
// requested rank, which bounds the relative error by the bucket ratio
// (~41% worst case, far less in practice for smooth distributions).

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>

namespace sapla {

/// \brief Lock-free fixed-bucket histogram of non-negative values.
class Histogram {
 public:
  static constexpr size_t kNumBuckets = 64;

  Histogram();

  /// Records one observation. Thread-safe, wait-free.
  void Record(uint64_t value);

  /// Total number of recorded observations.
  uint64_t Count() const;

  /// Sum of all recorded values (exact, not bucket-approximated).
  uint64_t Sum() const;

  /// Mean of recorded values; NaN when empty (an empty histogram has no
  /// mean — reporting 0 used to masquerade as a real measurement).
  double Mean() const;

  /// Approximate q-quantile (q in [0, 1]) by in-bucket linear
  /// interpolation; NaN when empty (an empty histogram has no percentiles —
  /// the table writers render this as "--").
  double Quantile(double q) const;

  /// Largest recorded value, exact. 0 when empty.
  uint64_t Max() const;

  /// Resets every bucket to zero. Not atomic with respect to concurrent
  /// Record calls (counts recorded during the reset may survive or not);
  /// intended for between-run reuse, not mid-flight truncation.
  void Reset();

  /// Adds `other`'s observations into this histogram (bucket-count sums,
  /// sum of sums, max of maxes) — cross-shard latency aggregation. Because
  /// the bucket boundaries are fixed and shared, quantiles of the merged
  /// histogram equal quantiles recomputed from the union of the two
  /// observation sets (tests/histogram_test.cc). Safe against concurrent
  /// Record on either side; merging a histogram into itself doubles it.
  void Merge(const Histogram& other);

  /// Bucket index for a value (exposed for tests).
  static size_t BucketFor(uint64_t value);

  /// Inclusive upper bound of bucket `b` (exposed for tests).
  static uint64_t BucketUpper(size_t b);

  /// Current count of bucket `b` (concurrent-safe instantaneous read; the
  /// Prometheus exposition writer emits these as cumulative le-buckets).
  uint64_t BucketCount(size_t b) const;

 private:
  std::array<std::atomic<uint64_t>, kNumBuckets> counts_;
  std::atomic<uint64_t> sum_{0};
  std::atomic<uint64_t> max_{0};
};

/// \brief Sliding-window histogram: a time-decaying ring of Histograms.
///
/// The window is split into kSlots equal time slots. Record lands in the
/// slot owning "now"; a slot is reset the first time a write enters a new
/// occupancy of it (the ring wraps), so at any moment the ring holds only
/// observations from roughly the last window. MergeInto folds every live
/// slot into one Histogram via Histogram::Merge — because the bucket
/// bounds are fixed and shared, quantiles of the merged histogram equal
/// quantiles over the union of the retained observations. This is how the
/// serving layer exports live p50/p99 over the last N seconds instead of
/// process-lifetime values (docs/OBSERVABILITY.md, windowed metrics).
///
/// Coverage is [window - slot, window + slot) depending on the phase of
/// the current slot — monitoring semantics, not billing semantics. Record
/// is wait-free except on the first write into a freshly rotated slot
/// (one short mutex to serialize the reset). Readers run concurrently
/// with writers; a reader racing a rotation may see a slot mid-reset,
/// which under- or over-counts that slot's handful of samples, never
/// corrupts the histogram.
///
/// The *At variants take an explicit steady-clock microsecond timestamp so
/// tests drive rotation deterministically.
class WindowedHistogram {
 public:
  static constexpr size_t kSlots = 8;

  /// `window_us` = 0 falls back to 60 s.
  explicit WindowedHistogram(uint64_t window_us = 60'000'000);

  /// Re-sizes the window. Not thread-safe: call before the first Record
  /// (QueryService configures its windows in the constructor).
  void Configure(uint64_t window_us);

  /// Records one observation at "now". Thread-safe.
  void Record(uint64_t value);
  void RecordAt(uint64_t value, uint64_t now_us);

  /// Folds every slot still inside the window into `out`.
  void MergeInto(Histogram* out) const;
  void MergeIntoAt(Histogram* out, uint64_t now_us) const;

  uint64_t window_us() const { return slot_us_ * kSlots; }

 private:
  struct Slot {
    Histogram hist;
    /// Rotation epoch (now / slot_us) the slot currently holds; kIdle
    /// before first use.
    std::atomic<uint64_t> epoch{kIdle};
    std::mutex rotate_mu;
  };
  static constexpr uint64_t kIdle = ~uint64_t{0};

  static uint64_t SteadyNowUs();

  uint64_t slot_us_;
  std::array<Slot, kSlots> slots_;
};

}  // namespace sapla

#endif  // SAPLA_UTIL_HISTOGRAM_H_
