#ifndef SAPLA_UTIL_HISTOGRAM_H_
#define SAPLA_UTIL_HISTOGRAM_H_

// Fixed-bucket histogram for latency and size distributions.
//
// 64 geometric buckets (ratio sqrt(2), upper bounds 1, 2, 3, 4, 6, 8, ...)
// cover [0, 2^31.5) — microsecond latencies from sub-µs to ~50 minutes, or
// batch sizes / queue depths with the same resolution. Record is a single
// relaxed atomic increment, safe from any thread with no locking; readers
// (Count / Mean / Quantile) take an instantaneous snapshot of the bucket
// counts, so they can run concurrently with writers. Quantiles are
// estimated by linear interpolation inside the bucket that crosses the
// requested rank, which bounds the relative error by the bucket ratio
// (~41% worst case, far less in practice for smooth distributions).

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>

namespace sapla {

/// \brief Lock-free fixed-bucket histogram of non-negative values.
class Histogram {
 public:
  static constexpr size_t kNumBuckets = 64;

  Histogram();

  /// Records one observation. Thread-safe, wait-free.
  void Record(uint64_t value);

  /// Total number of recorded observations.
  uint64_t Count() const;

  /// Sum of all recorded values (exact, not bucket-approximated).
  uint64_t Sum() const;

  /// Mean of recorded values; NaN when empty (an empty histogram has no
  /// mean — reporting 0 used to masquerade as a real measurement).
  double Mean() const;

  /// Approximate q-quantile (q in [0, 1]) by in-bucket linear
  /// interpolation; NaN when empty (an empty histogram has no percentiles —
  /// the table writers render this as "--").
  double Quantile(double q) const;

  /// Largest recorded value, exact. 0 when empty.
  uint64_t Max() const;

  /// Resets every bucket to zero. Not atomic with respect to concurrent
  /// Record calls (counts recorded during the reset may survive or not);
  /// intended for between-run reuse, not mid-flight truncation.
  void Reset();

  /// Adds `other`'s observations into this histogram (bucket-count sums,
  /// sum of sums, max of maxes) — cross-shard latency aggregation. Because
  /// the bucket boundaries are fixed and shared, quantiles of the merged
  /// histogram equal quantiles recomputed from the union of the two
  /// observation sets (tests/histogram_test.cc). Safe against concurrent
  /// Record on either side; merging a histogram into itself doubles it.
  void Merge(const Histogram& other);

  /// Bucket index for a value (exposed for tests).
  static size_t BucketFor(uint64_t value);

  /// Inclusive upper bound of bucket `b` (exposed for tests).
  static uint64_t BucketUpper(size_t b);

  /// Current count of bucket `b` (concurrent-safe instantaneous read; the
  /// Prometheus exposition writer emits these as cumulative le-buckets).
  uint64_t BucketCount(size_t b) const;

 private:
  std::array<std::atomic<uint64_t>, kNumBuckets> counts_;
  std::atomic<uint64_t> sum_{0};
  std::atomic<uint64_t> max_{0};
};

}  // namespace sapla

#endif  // SAPLA_UTIL_HISTOGRAM_H_
