#ifndef SAPLA_UTIL_CRC32C_H_
#define SAPLA_UTIL_CRC32C_H_

// CRC32C (Castagnoli polynomial 0x1EDC6F41, reflected 0x82F63B78).
//
// The checksum guarding the binary columnar archive sections (ts/io.h):
// torn writes, truncations and bit flips are detected before any of the
// corrupted bytes are interpreted structurally. Software table
// implementation — persistence is I/O-bound, so hardware CRC instructions
// would not move the needle; portability and determinism do.

#include <cstddef>
#include <cstdint>
#include <string>

namespace sapla {

/// CRC32C of `data[0, len)`, with the conventional pre/post inversion
/// (Crc32c("123456789") == 0xE3069283).
uint32_t Crc32c(const void* data, size_t len);

/// Extends `crc` (a previous Crc32c result) with more bytes, as if the two
/// buffers had been checksummed in one call.
uint32_t Crc32cExtend(uint32_t crc, const void* data, size_t len);

inline uint32_t Crc32c(const std::string& data) {
  return Crc32c(data.data(), data.size());
}

}  // namespace sapla

#endif  // SAPLA_UTIL_CRC32C_H_
