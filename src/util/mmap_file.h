#ifndef SAPLA_UTIL_MMAP_FILE_H_
#define SAPLA_UTIL_MMAP_FILE_H_

// Read-only memory-mapped file.
//
// Backs the cold residency tier of the representation store
// (reduction/representation_store.h): a v4 SAPLACOL archive is mapped once
// and frames are decoded lazily, so the kernel's page cache — not the
// process heap — holds the encoded columns. When mmap(2) is unavailable
// (or the platform lacks it) Open falls back to reading the file into an
// anonymous heap buffer, preserving behaviour at the cost of residency;
// `mapped()` reports which path was taken so footprint gauges stay honest.

#include <cstddef>
#include <string>

#include "util/status.h"

namespace sapla {

/// \brief Immutable byte view of a file, mmap-backed when possible.
///
/// Movable, non-copyable; unmaps (or frees) in the destructor. The mapping
/// is private/read-only: the file may be concurrently replaced via
/// rename(2) (AtomicWriteFile) without affecting an open mapping.
class MmapFile {
 public:
  MmapFile() = default;
  ~MmapFile();

  MmapFile(MmapFile&& other) noexcept;
  MmapFile& operator=(MmapFile&& other) noexcept;
  MmapFile(const MmapFile&) = delete;
  MmapFile& operator=(const MmapFile&) = delete;

  /// Maps `path` read-only. An empty file yields data() == nullptr,
  /// size() == 0 and is not an error.
  static Result<MmapFile> Open(const std::string& path);

  const char* data() const { return data_; }
  size_t size() const { return size_; }
  /// True when the bytes live in a real mmap (counted as mapped, not
  /// resident, by store footprint accounting); false for the heap fallback.
  bool mapped() const { return mapped_; }

 private:
  void Release();

  const char* data_ = nullptr;
  size_t size_ = 0;
  bool mapped_ = false;
};

}  // namespace sapla

#endif  // SAPLA_UTIL_MMAP_FILE_H_
