#ifndef SAPLA_UTIL_TABLE_H_
#define SAPLA_UTIL_TABLE_H_

// Aligned ASCII table and CSV emission for the benchmark harnesses.
//
// Each paper figure is regenerated as one table: a header row naming the
// series (methods / index types), then one row per parameter setting. The
// same Table can be printed human-readable and dumped as CSV for plotting.

#include <string>
#include <vector>

namespace sapla {

/// \brief Column-aligned table builder.
class Table {
 public:
  /// \param title caption printed above the table.
  explicit Table(std::string title) : title_(std::move(title)) {}

  /// Sets the header row.
  void SetHeader(std::vector<std::string> header);

  /// Appends a row of pre-formatted cells.
  void AddRow(std::vector<std::string> row);

  /// Formats a double with `precision` significant decimals.
  static std::string Num(double v, int precision = 4);

  /// Renders the aligned table (with title and separator rules).
  std::string ToString() const;

  /// Renders as CSV (header first, comma-separated, quoted when needed).
  std::string ToCsv() const;

  /// Renders as a JSON document {"title": ..., "rows": [{col: cell, ...}]}
  /// for machine-readable benchmark tracking (CI stores these across PRs).
  /// Cells that parse fully as numbers are emitted as JSON numbers, the
  /// rest as strings.
  std::string ToJson() const;

  /// Writes ToJson() to `json_path`. Returns false on I/O failure.
  bool WriteJson(const std::string& json_path) const;

  /// Prints ToString() to stdout and, when `csv_path` is non-empty, writes
  /// ToCsv() to that file. Returns false if the file could not be written.
  bool Print(const std::string& csv_path = "") const;

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace sapla

#endif  // SAPLA_UTIL_TABLE_H_
