#include "util/stats.h"

// SummaryStats is header-only; this TU exists so the target has a stable
// object for the module and a place for future out-of-line helpers.
