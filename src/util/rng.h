#ifndef SAPLA_UTIL_RNG_H_
#define SAPLA_UTIL_RNG_H_

// Deterministic random number generation.
//
// Every stochastic component in the library (synthetic archive, property
// tests, query sampling) derives its randomness from an explicit Rng seeded
// by the caller, so all experiments are exactly reproducible.

#include <cstddef>
#include <cstdint>
#include <vector>

namespace sapla {

/// \brief Small, fast, deterministic PRNG (splitmix64 + xoshiro256**).
///
/// Not cryptographic. Identical output on every platform, unlike
/// std::normal_distribution whose algorithm is implementation-defined.
class Rng {
 public:
  /// Seeds the generator; identical seeds give identical streams.
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Uniform 64-bit value.
  uint64_t NextU64();

  /// Uniform double in [0, 1).
  double Uniform();

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  /// Uniform integer in [0, n). Requires n > 0.
  uint64_t UniformInt(uint64_t n);

  /// Standard normal variate (Box-Muller, deterministic).
  double Gaussian();

  /// Normal variate with the given mean and standard deviation.
  double Gaussian(double mean, double stddev) {
    return mean + stddev * Gaussian();
  }

  /// Samples k distinct indices from [0, n) (k <= n), in random order.
  std::vector<size_t> SampleWithoutReplacement(size_t n, size_t k);

  /// Derives an independent child generator; used to give each dataset /
  /// series its own stream so changing one does not shift the others.
  Rng Fork();

 private:
  uint64_t s_[4];
  bool have_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

/// \brief Zipfian sampler over ranks [0, n): P(r) ∝ 1 / (r + 1)^s.
///
/// Models skewed query popularity in the serving load generators (a small
/// set of hot queries dominates, which is what makes a result cache pay
/// off). s = 0 degenerates to uniform.
class ZipfSampler {
 public:
  /// \param n number of distinct ranks; requires n > 0.
  /// \param s skew exponent (>= 0); ~0.99 matches the classic YCSB setup.
  ZipfSampler(size_t n, double s);

  /// Draws one rank in [0, n) using `rng`'s stream.
  size_t Sample(Rng& rng) const;

 private:
  std::vector<double> cdf_;  // inclusive prefix sums, cdf_.back() == 1
};

}  // namespace sapla

#endif  // SAPLA_UTIL_RNG_H_
