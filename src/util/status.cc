#include "util/status.h"

namespace sapla {
namespace {

const char* CodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kIOError:
      return "IOError";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kOverloaded:
      return "Overloaded";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
  }
  return "Unknown";
}

}  // namespace

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = CodeName(code_);
  out += ": ";
  out += message_;
  return out;
}

}  // namespace sapla
