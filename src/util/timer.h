#ifndef SAPLA_UTIL_TIMER_H_
#define SAPLA_UTIL_TIMER_H_

// Wall-clock and CPU-time measurement.
//
// The paper reports CPU time (not wall time) for dimensionality reduction,
// ingest, and k-NN because its index is memory-resident; CpuTimer mirrors
// that methodology.

#include <chrono>
#include <ctime>

namespace sapla {

/// Monotonic wall-clock timer in seconds.
class WallTimer {
 public:
  WallTimer() { Restart(); }
  void Restart() { start_ = std::chrono::steady_clock::now(); }
  /// Seconds elapsed since construction/Restart().
  double Seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// Process CPU-time timer in seconds (user+system of this process).
class CpuTimer {
 public:
  CpuTimer() { Restart(); }
  void Restart() { start_ = Now(); }
  /// CPU seconds consumed since construction/Restart().
  double Seconds() const { return Now() - start_; }

 private:
  static double Now() {
    timespec ts;
    clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts);
    return static_cast<double>(ts.tv_sec) + 1e-9 * static_cast<double>(ts.tv_nsec);
  }
  double start_;
};

}  // namespace sapla

#endif  // SAPLA_UTIL_TIMER_H_
