#include "util/fault.h"

#ifndef SAPLA_FAULT_DISABLED

#include <charconv>
#include <chrono>
#include <cstdlib>
#include <map>
#include <memory>
#include <mutex>
#include <thread>

namespace sapla {
namespace fault {
namespace detail {

std::atomic<bool> g_enabled{false};

namespace {

/// One armed point. The config (and name hash) is written under the
/// registry lock by Configure before the workload runs; macro sites read it
/// without the lock and only touch the atomic counters.
struct Point {
  PointConfig config;
  uint64_t name_hash = 0;
  std::atomic<uint64_t> evaluations{0};
  std::atomic<uint64_t> triggers{0};
};

struct Registry {
  std::mutex mu;
  uint64_t seed = 0;
  /// unique_ptr keeps Point addresses stable across rehashes, so macro
  /// sites can use the pointer after dropping the lock.
  std::map<std::string, std::unique_ptr<Point>> points;
};

Registry& GetRegistry() {
  static Registry* registry = new Registry();  // leaked like the thread pool
  return *registry;
}

uint64_t Fnv1a(const std::string& s) {
  uint64_t h = 1469598103934665603ULL;
  for (const char c : s)
    h = (h ^ static_cast<unsigned char>(c)) * 1099511628211ULL;
  return h;
}

/// splitmix64 finalizer; full-period bijection, uniform output.
uint64_t Mix64(uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

/// Looks up an armed point and the master seed. Null when not armed.
Point* Find(const char* name, uint64_t* seed) {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  const auto it = registry.points.find(name);
  if (it == registry.points.end()) return nullptr;
  *seed = registry.seed;
  return it->second.get();
}

/// One evaluation of `point`: claims the next evaluation index and decides
/// it. The decision for index i is a pure function of (seed, name, i) —
/// replayable — while max_triggers caps in arrival order.
bool Evaluate(const char* name, uint64_t* delay_us, StatusCode* code) {
  uint64_t seed = 0;
  Point* point = Find(name, &seed);
  if (point == nullptr) return false;
  const PointConfig& config = point->config;
  const uint64_t index =
      point->evaluations.fetch_add(1, std::memory_order_relaxed);
  if (index < config.skip_first) return false;
  if (config.probability <= 0.0) return false;
  if (config.probability < 1.0) {
    const uint64_t roll = Mix64(seed ^ Mix64(point->name_hash ^ index));
    // probability * 2^64, saturating; roll is uniform on [0, 2^64).
    const double scaled = config.probability * 18446744073709551616.0;
    const uint64_t threshold =
        scaled >= 18446744073709551615.0 ? UINT64_MAX
                                         : static_cast<uint64_t>(scaled);
    if (roll >= threshold) return false;
  }
  if (config.max_triggers != 0) {
    // Claim one of the remaining triggers; back out when over budget.
    const uint64_t t = point->triggers.fetch_add(1, std::memory_order_relaxed);
    if (t >= config.max_triggers) {
      point->triggers.fetch_sub(1, std::memory_order_relaxed);
      return false;
    }
  } else {
    point->triggers.fetch_add(1, std::memory_order_relaxed);
  }
  *delay_us = config.delay_us;
  *code = config.code;
  return true;
}

void ApplyDelay(uint64_t delay_us) {
  if (delay_us != 0)
    std::this_thread::sleep_for(std::chrono::microseconds(delay_us));
}

const char* CodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kIOError: return "injected I/O error";
    case StatusCode::kOverloaded: return "injected overload";
    case StatusCode::kDeadlineExceeded: return "injected deadline expiry";
    case StatusCode::kUnavailable: return "injected unavailability";
    case StatusCode::kResourceExhausted: return "injected resource exhaustion";
    case StatusCode::kInternal: return "injected internal error";
    case StatusCode::kInvalidArgument: return "injected invalid argument";
    case StatusCode::kNotFound: return "injected not-found";
    default: return "injected fault";
  }
}

}  // namespace

bool HitSlow(const char* point) {
  uint64_t delay_us = 0;
  StatusCode code = StatusCode::kIOError;
  if (!Evaluate(point, &delay_us, &code)) return false;
  ApplyDelay(delay_us);
  return true;
}

Status CheckSlow(const char* point) {
  uint64_t delay_us = 0;
  StatusCode code = StatusCode::kIOError;
  if (!Evaluate(point, &delay_us, &code)) return Status::OK();
  ApplyDelay(delay_us);
  return Status(code, std::string(CodeName(code)) + " at fault point '" +
                          point + "'");
}

void DelaySlow(const char* point) {
  uint64_t delay_us = 0;
  StatusCode code = StatusCode::kIOError;
  if (Evaluate(point, &delay_us, &code)) ApplyDelay(delay_us);
}

}  // namespace detail

void Enable(uint64_t seed) {
  detail::Registry& registry = detail::GetRegistry();
  {
    std::lock_guard<std::mutex> lock(registry.mu);
    registry.seed = seed;
  }
  detail::g_enabled.store(true, std::memory_order_relaxed);
}

void Disable() { detail::g_enabled.store(false, std::memory_order_relaxed); }

void Configure(const std::string& point, const PointConfig& config) {
  detail::Registry& registry = detail::GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  auto p = std::make_unique<detail::Point>();
  p->config = config;
  p->name_hash = detail::Fnv1a(point);
  registry.points[point] = std::move(p);
}

void Reset() {
  Disable();
  detail::Registry& registry = detail::GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  registry.seed = 0;
  registry.points.clear();
}

std::vector<PointStats> Stats() {
  detail::Registry& registry = detail::GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  std::vector<PointStats> out;
  out.reserve(registry.points.size());
  for (const auto& [name, point] : registry.points) {
    PointStats s;
    s.name = name;
    s.evaluations = point->evaluations.load(std::memory_order_relaxed);
    s.triggers = point->triggers.load(std::memory_order_relaxed);
    out.push_back(std::move(s));
  }
  return out;
}

namespace {

bool ParseU64(const std::string& tok, uint64_t* out) {
  const char* first = tok.data();
  const char* last = tok.data() + tok.size();
  const auto res = std::from_chars(first, last, *out);
  return res.ec == std::errc() && res.ptr == last;
}

bool ParseDouble(const std::string& tok, double* out) {
  const char* first = tok.data();
  const char* last = tok.data() + tok.size();
  const auto res = std::from_chars(first, last, *out);
  return res.ec == std::errc() && res.ptr == last;
}

bool ParseCode(const std::string& name, StatusCode* out) {
  if (name == "io") *out = StatusCode::kIOError;
  else if (name == "overloaded") *out = StatusCode::kOverloaded;
  else if (name == "deadline") *out = StatusCode::kDeadlineExceeded;
  else if (name == "unavailable") *out = StatusCode::kUnavailable;
  else if (name == "internal") *out = StatusCode::kInternal;
  else if (name == "invalid") *out = StatusCode::kInvalidArgument;
  else if (name == "notfound") *out = StatusCode::kNotFound;
  else if (name == "exhausted") *out = StatusCode::kResourceExhausted;
  else return false;
  return true;
}

}  // namespace

Status ConfigureFromSpec(const std::string& spec) {
  uint64_t seed = 0;
  std::vector<std::pair<std::string, PointConfig>> parsed;

  size_t start = 0;
  while (start <= spec.size()) {
    const size_t semi = spec.find(';', start);
    const std::string entry = spec.substr(
        start, semi == std::string::npos ? std::string::npos : semi - start);
    start = semi == std::string::npos ? spec.size() + 1 : semi + 1;
    if (entry.empty()) continue;

    const size_t eq = entry.find('=');
    if (eq == std::string::npos || eq == 0)
      return Status::InvalidArgument("fault spec entry '" + entry +
                                     "' is not name=value");
    const std::string name = entry.substr(0, eq);
    const std::string value = entry.substr(eq + 1);
    if (name == "seed") {
      if (!ParseU64(value, &seed))
        return Status::InvalidArgument("fault spec: bad seed '" + value + "'");
      continue;
    }

    PointConfig config;
    size_t field_start = 0;
    while (field_start <= value.size()) {
      const size_t comma = value.find(',', field_start);
      const std::string field = value.substr(
          field_start,
          comma == std::string::npos ? std::string::npos : comma - field_start);
      field_start = comma == std::string::npos ? value.size() + 1 : comma + 1;
      if (field.empty()) continue;
      const char kind = field[0];
      const std::string arg = field.substr(1);
      bool ok = false;
      switch (kind) {
        case 'p': ok = ParseDouble(arg, &config.probability); break;
        case 'n': ok = ParseU64(arg, &config.max_triggers); break;
        case 's': ok = ParseU64(arg, &config.skip_first); break;
        case 'd': ok = ParseU64(arg, &config.delay_us); break;
        case 'c': ok = ParseCode(arg, &config.code); break;
        default: ok = false;
      }
      if (!ok)
        return Status::InvalidArgument("fault spec: bad field '" + field +
                                       "' for point '" + name + "'");
    }
    if (config.probability < 0.0 || config.probability > 1.0)
      return Status::InvalidArgument("fault spec: probability out of [0,1] "
                                     "for point '" + name + "'");
    parsed.emplace_back(name, config);
  }

  // Apply only after the whole spec parsed, so a bad spec arms nothing.
  for (const auto& [name, config] : parsed) Configure(name, config);
  Enable(seed);
  return Status::OK();
}

Status InitFromEnv() {
  const char* spec = std::getenv("SAPLA_FAULT_SPEC");
  if (spec == nullptr || spec[0] == '\0') return Status::OK();
  return ConfigureFromSpec(spec);
}

}  // namespace fault
}  // namespace sapla

#endif  // SAPLA_FAULT_DISABLED
