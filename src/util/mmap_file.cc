#include "util/mmap_file.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <utility>

#if defined(_WIN32)
#define SAPLA_HAVE_MMAP 0
#else
#define SAPLA_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

namespace sapla {
namespace {

// Heap fallback: read the whole file into a malloc'd buffer. Returns OK
// with *buf == nullptr, *size == 0 for an empty file.
Status ReadWhole(const std::string& path, char** buf, size_t* size) {
  *buf = nullptr;
  *size = 0;
  FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return Status::IOError("open failed: " + path);
  std::fseek(f, 0, SEEK_END);
  const long end = std::ftell(f);
  if (end < 0) {
    std::fclose(f);
    return Status::IOError("ftell failed: " + path);
  }
  std::fseek(f, 0, SEEK_SET);
  const size_t n = static_cast<size_t>(end);
  if (n == 0) {
    std::fclose(f);
    return Status::OK();
  }
  char* p = static_cast<char*>(malloc(n));
  if (p == nullptr) {
    std::fclose(f);
    return Status::IOError("alloc failed for: " + path);
  }
  const size_t got = std::fread(p, 1, n, f);
  std::fclose(f);
  if (got != n) {
    free(p);
    return Status::IOError("short read: " + path);
  }
  *buf = p;
  *size = n;
  return Status::OK();
}

}  // namespace

MmapFile::~MmapFile() { Release(); }

MmapFile::MmapFile(MmapFile&& other) noexcept
    : data_(other.data_), size_(other.size_), mapped_(other.mapped_) {
  other.data_ = nullptr;
  other.size_ = 0;
  other.mapped_ = false;
}

MmapFile& MmapFile::operator=(MmapFile&& other) noexcept {
  if (this != &other) {
    Release();
    data_ = other.data_;
    size_ = other.size_;
    mapped_ = other.mapped_;
    other.data_ = nullptr;
    other.size_ = 0;
    other.mapped_ = false;
  }
  return *this;
}

void MmapFile::Release() {
  if (data_ == nullptr) return;
#if SAPLA_HAVE_MMAP
  if (mapped_) {
    munmap(const_cast<char*>(data_), size_);
  } else {
    free(const_cast<char*>(data_));
  }
#else
  free(const_cast<char*>(data_));
#endif
  data_ = nullptr;
  size_ = 0;
  mapped_ = false;
}

Result<MmapFile> MmapFile::Open(const std::string& path) {
  MmapFile out;
#if SAPLA_HAVE_MMAP
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd >= 0) {
    struct stat st;
    if (fstat(fd, &st) != 0) {
      ::close(fd);
      return Status::IOError("fstat failed: " + path);
    }
    const size_t size = static_cast<size_t>(st.st_size);
    if (size == 0) {
      ::close(fd);
      return out;  // empty file: valid, nothing to map
    }
    void* addr = mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
    ::close(fd);
    if (addr != MAP_FAILED) {
      out.data_ = static_cast<const char*>(addr);
      out.size_ = size;
      out.mapped_ = true;
      return out;
    }
    // fall through to the heap path on mmap failure
  }
#endif
  char* buf = nullptr;
  size_t size = 0;
  Status st = ReadWhole(path, &buf, &size);
  if (!st.ok()) return st;
  out.data_ = buf;
  out.size_ = size;
  out.mapped_ = false;
  return out;
}

}  // namespace sapla
