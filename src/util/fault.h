#ifndef SAPLA_UTIL_FAULT_H_
#define SAPLA_UTIL_FAULT_H_

// Deterministic, compile-time-removable fault injection.
//
// Production code marks the places that can actually fail with one of three
// macros; a test or the chaos harness (tools/sapla_chaos.cc) then arms a
// subset of those points and replays real failure modes — I/O errors, full
// queues, stalled workers, failed flushes — on demand:
//
//   SAPLA_FAULT_POINT("io/write")   in a Status-returning function: when the
//                                   point triggers, returns the configured
//                                   Status (default kIOError) to the caller.
//   SAPLA_FAULT_HIT("queue/admit")  boolean expression: true when the point
//                                   triggers (the site maps it to its own
//                                   failure convention, e.g. TryPush -> false).
//   SAPLA_FAULT_DELAY("serve/flush_stall")
//                                   pure latency: sleeps the configured
//                                   delay_us when triggering, injecting slow
//                                   workers / stalled threads without failing.
//
// Determinism. Every trigger decision is a pure function of
// (seed, point name, per-point evaluation index): evaluation #i of point P
// triggers iff mix64(seed, fnv1a(P), i) < probability * 2^64. Evaluation
// indices are assigned by a per-point atomic counter, so for a fixed seed the
// set of triggering evaluations is identical run to run — a failure observed
// once is replayable exactly (the xoshiro-style splitmix finalizer gives the
// uniformity; no RNG state is shared across points or threads).
//
// Configuration, from the API (Enable + Configure) or one spec string
// (ConfigureFromSpec / InitFromEnv reading $SAPLA_FAULT_SPEC):
//
//   seed=42;io/write=p0.01;queue/admit=p0.05,n3;serve/flush=p0.02,cunavailable
//
// Per point: p<probability>, n<max triggers>, s<skip first N evaluations>,
// d<delay microseconds>, c<code: io|overloaded|deadline|unavailable|
// internal|invalid|notfound|exhausted>. Points not configured never trigger.
//
// Cost. Compiled in but disabled (the default): one relaxed atomic load per
// macro site. -DSAPLA_FAULT=OFF removes the framework entirely — the macros
// expand to nothing ((void)0 / false constants), util/fault.cc is not built,
// and no fault symbols exist in the library (CI's chaos-smoke job checks
// both properties).

#include <cstdint>
#include <string>
#include <vector>

#include "util/status.h"

namespace sapla {
namespace fault {

/// How one armed fault point behaves. Defaults describe "always fail with
/// kIOError" — tests usually set only `probability`.
struct PointConfig {
  /// Per-evaluation trigger probability in [0, 1].
  double probability = 1.0;
  /// Stop triggering after this many triggers (0 = unlimited).
  uint64_t max_triggers = 0;
  /// Never trigger on the first N evaluations.
  uint64_t skip_first = 0;
  /// Sleep this long when triggering (used alone by SAPLA_FAULT_DELAY
  /// sites, or combined with a failure for slow-then-fail behaviour).
  uint64_t delay_us = 0;
  /// Status code injected by SAPLA_FAULT_POINT sites.
  StatusCode code = StatusCode::kIOError;
};

/// Per-point counters, inspectable after a run (the chaos harness prints
/// them so "nothing triggered" is visible, never silent).
struct PointStats {
  std::string name;
  uint64_t evaluations = 0;
  uint64_t triggers = 0;
};

}  // namespace fault
}  // namespace sapla

#if !defined(SAPLA_FAULT_DISABLED)

#include <atomic>

namespace sapla {
namespace fault {

namespace detail {
/// Master switch; every macro site loads it relaxed before anything else.
extern std::atomic<bool> g_enabled;
/// Slow paths, entered only while enabled.
bool HitSlow(const char* point);
Status CheckSlow(const char* point);
void DelaySlow(const char* point);
}  // namespace detail

/// Arms the framework with a master seed. Points still need Configure (or a
/// spec) before they trigger. Thread-safe.
void Enable(uint64_t seed);

/// Disarms every macro site (config and stats are kept until Reset).
void Disable();

inline bool Enabled() {
  return detail::g_enabled.load(std::memory_order_relaxed);
}

/// Arms `point` with `config` (replacing any previous config and resetting
/// its counters). Unknown names are fine — a point is just a string agreed
/// between the site and the test.
void Configure(const std::string& point, const PointConfig& config);

/// Parses and applies a spec string (grammar in the file comment) and
/// enables the framework. Returns InvalidArgument on malformed specs.
Status ConfigureFromSpec(const std::string& spec);

/// ConfigureFromSpec($SAPLA_FAULT_SPEC) when the variable is set and
/// non-empty; OK no-op otherwise.
Status InitFromEnv();

/// Disables the framework and drops every point config and counter.
void Reset();

/// Snapshot of every configured point's counters, ordered by name.
std::vector<PointStats> Stats();

/// True and applies the configured delay when `point` triggers now.
inline bool Hit(const char* point) {
  return Enabled() && detail::HitSlow(point);
}

/// The injected Status (plus delay) when `point` triggers now, OK otherwise.
inline Status Check(const char* point) {
  if (!Enabled()) return Status::OK();
  return detail::CheckSlow(point);
}

/// Applies the configured delay when `point` triggers now; never fails.
inline void Delay(const char* point) {
  if (Enabled()) detail::DelaySlow(point);
}

}  // namespace fault
}  // namespace sapla

/// Returns the injected Status from the enclosing function when the point
/// triggers.
#define SAPLA_FAULT_POINT(name)                                    \
  do {                                                             \
    ::sapla::Status _sapla_fault_st = ::sapla::fault::Check(name); \
    if (!_sapla_fault_st.ok()) return _sapla_fault_st;             \
  } while (0)

/// Boolean expression: true when the point triggers.
#define SAPLA_FAULT_HIT(name) (::sapla::fault::Hit(name))

/// Latency-only injection: sleeps the configured delay when triggering.
#define SAPLA_FAULT_DELAY(name) (::sapla::fault::Delay(name))

#else  // SAPLA_FAULT_DISABLED: the whole framework compiles away.

namespace sapla {
namespace fault {

inline void Enable(uint64_t) {}
inline void Disable() {}
inline constexpr bool Enabled() { return false; }
inline void Configure(const std::string&, const PointConfig&) {}
inline Status ConfigureFromSpec(const std::string&) {
  return Status::Unimplemented("fault injection compiled out (SAPLA_FAULT=OFF)");
}
inline Status InitFromEnv() { return Status::OK(); }
inline void Reset() {}
inline std::vector<PointStats> Stats() { return {}; }
inline constexpr bool Hit(const char*) { return false; }
inline Status Check(const char*) { return Status::OK(); }
inline void Delay(const char*) {}

}  // namespace fault
}  // namespace sapla

#define SAPLA_FAULT_POINT(name) ((void)0)
#define SAPLA_FAULT_HIT(name) (false)
#define SAPLA_FAULT_DELAY(name) ((void)0)

#endif  // SAPLA_FAULT_DISABLED

#endif  // SAPLA_UTIL_FAULT_H_
