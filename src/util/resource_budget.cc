#include "util/resource_budget.h"

#include <algorithm>

#include "util/status.h"

namespace sapla {

const char* BudgetPressureName(BudgetPressure pressure) {
  switch (pressure) {
    case BudgetPressure::kNone:
      return "none";
    case BudgetPressure::kSoft:
      return "soft";
    case BudgetPressure::kHard:
      return "hard";
  }
  return "unknown";
}

std::shared_ptr<ResourceBudget> ResourceBudget::MakeRoot(std::string name,
                                                         size_t capacity_bytes,
                                                         double soft_fraction) {
  return std::shared_ptr<ResourceBudget>(new ResourceBudget(
      std::move(name), capacity_bytes, soft_fraction, nullptr));
}

std::shared_ptr<ResourceBudget> ResourceBudget::MakeChild(
    std::shared_ptr<ResourceBudget> parent, std::string name,
    size_t capacity_bytes, double soft_fraction) {
  SAPLA_DCHECK(parent != nullptr);
  auto child = std::shared_ptr<ResourceBudget>(new ResourceBudget(
      std::move(name), capacity_bytes, soft_fraction, parent));
  if (parent) {
    std::lock_guard<std::mutex> lock(parent->children_mu_);
    parent->children_.push_back(child.get());
  }
  return child;
}

ResourceBudget::ResourceBudget(std::string name, size_t capacity_bytes,
                               double soft_fraction,
                               std::shared_ptr<ResourceBudget> parent)
    : name_(std::move(name)),
      soft_fraction_(std::min(std::max(soft_fraction, 0.0), 1.0)),
      capacity_(capacity_bytes),
      parent_(std::move(parent)) {}

ResourceBudget::~ResourceBudget() {
  if (parent_) {
    std::lock_guard<std::mutex> lock(parent_->children_mu_);
    auto& siblings = parent_->children_;
    siblings.erase(std::remove(siblings.begin(), siblings.end(), this),
                   siblings.end());
  }
  // A well-behaved consumer releases everything before dropping its
  // budget; if it did not, the ancestors' usage would dangle forever, so
  // return whatever is still accounted here.
  const size_t leftover = used_.load(std::memory_order_relaxed);
  if (leftover > 0 && parent_) parent_->Release(leftover);
}

void ResourceBudget::UpdatePeak(size_t candidate) {
  size_t prev = peak_.load(std::memory_order_relaxed);
  while (candidate > prev &&
         !peak_.compare_exchange_weak(prev, candidate,
                                      std::memory_order_relaxed)) {
  }
}

bool ResourceBudget::ReserveLocal(size_t bytes) {
  const size_t cap = capacity_.load(std::memory_order_relaxed);
  size_t cur = used_.load(std::memory_order_relaxed);
  do {
    if (cap != 0 && (bytes > cap || cur > cap - bytes)) {
      rejections_.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
  } while (!used_.compare_exchange_weak(cur, cur + bytes,
                                        std::memory_order_relaxed));
  UpdatePeak(cur + bytes);
  return true;
}

void ResourceBudget::AccountLocal(size_t bytes, bool forced) {
  const size_t after = used_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
  UpdatePeak(after);
  const size_t cap = capacity_.load(std::memory_order_relaxed);
  if (forced && cap != 0 && after > cap)
    overflows_.fetch_add(1, std::memory_order_relaxed);
}

void ResourceBudget::ReleaseLocal(size_t bytes) {
  size_t cur = used_.load(std::memory_order_relaxed);
  size_t next;
  do {
    SAPLA_DCHECK(cur >= bytes && "ResourceBudget::Release underflow");
    next = cur >= bytes ? cur - bytes : 0;
  } while (!used_.compare_exchange_weak(cur, next,
                                        std::memory_order_relaxed));
}

bool ResourceBudget::TryReserve(size_t bytes) {
  if (bytes == 0) return true;
  if (!ReserveLocal(bytes)) return false;
  if (parent_ && !parent_->TryReserve(bytes)) {
    ReleaseLocal(bytes);
    return false;
  }
  return true;
}

void ResourceBudget::ForceReserve(size_t bytes) {
  if (bytes == 0) return;
  AccountLocal(bytes, /*forced=*/true);
  if (parent_) parent_->ForceReserve(bytes);
}

void ResourceBudget::Release(size_t bytes) {
  if (bytes == 0) return;
  ReleaseLocal(bytes);
  if (parent_) parent_->Release(bytes);
}

void ResourceBudget::SetCapacity(size_t capacity_bytes) {
  capacity_.store(capacity_bytes, std::memory_order_relaxed);
}

BudgetPressure ResourceBudget::pressure() const {
  const size_t cap = capacity_.load(std::memory_order_relaxed);
  if (cap == 0) return BudgetPressure::kNone;
  const size_t cur = used_.load(std::memory_order_relaxed);
  if (cur >= cap) return BudgetPressure::kHard;
  const size_t soft =
      static_cast<size_t>(static_cast<double>(cap) * soft_fraction_);
  if (cur >= soft) return BudgetPressure::kSoft;
  return BudgetPressure::kNone;
}

BudgetPressure ResourceBudget::pressure_up() const {
  BudgetPressure worst = pressure();
  for (const ResourceBudget* b = parent_.get(); b != nullptr;
       b = b->parent_.get()) {
    worst = std::max(worst, b->pressure());
  }
  return worst;
}

void ResourceBudget::AppendSnapshots(std::vector<Snapshot>* out) const {
  Snapshot snap;
  snap.name = name_;
  snap.used = used();
  snap.capacity = capacity();
  snap.peak_used = peak_used();
  snap.rejections = rejections();
  snap.overflows = overflows();
  snap.pressure = pressure();
  out->push_back(std::move(snap));
  std::lock_guard<std::mutex> lock(children_mu_);
  for (const ResourceBudget* child : children_) child->AppendSnapshots(out);
}

std::vector<ResourceBudget::Snapshot> ResourceBudget::SnapshotTree() const {
  std::vector<Snapshot> out;
  AppendSnapshots(&out);
  return out;
}

BudgetLease BudgetLease::TryAcquire(std::shared_ptr<ResourceBudget> budget,
                                    size_t bytes) {
  BudgetLease lease;
  if (!budget) {
    lease.ok_ = true;
    return lease;
  }
  if (!budget->TryReserve(bytes)) return lease;
  lease.budget_ = std::move(budget);
  lease.bytes_ = bytes;
  lease.ok_ = true;
  return lease;
}

BudgetLease BudgetLease::Acquire(std::shared_ptr<ResourceBudget> budget,
                                 size_t bytes) {
  BudgetLease lease;
  lease.ok_ = true;
  if (!budget) return lease;
  budget->ForceReserve(bytes);
  lease.budget_ = std::move(budget);
  lease.bytes_ = bytes;
  return lease;
}

}  // namespace sapla
