#ifndef SAPLA_UTIL_PARALLEL_H_
#define SAPLA_UTIL_PARALLEL_H_

// Shared parallel execution layer.
//
// A small fixed-size thread pool plus a ParallelFor(begin, end, fn) helper
// with deterministic work partitioning: the index range is split into at
// most `num_threads` contiguous chunks, chunk t always covers the same
// sub-range for a given (range, num_threads), and the calling thread runs
// chunk 0 itself. Results that are written by index (out[i] = f(i)) are
// therefore bit-identical to the serial loop regardless of scheduling.
//
// The process-wide thread count defaults to the hardware concurrency and is
// configurable (the CLI/bench `--threads` knob calls SetNumThreads). A
// resolved count of 1 makes every helper run inline on the calling thread —
// no pool, no synchronization — so serial behaviour is exactly the seed's.

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace sapla {

/// \brief A fixed-size worker pool executing submitted closures.
///
/// Workers are started once and live until destruction; Submit enqueues a
/// task for any idle worker. The pool is internally synchronized: Submit may
/// be called from any thread. Task closures must synchronize their own
/// shared state (ParallelFor partitions disjoint ranges, so its tasks need
/// none).
class ThreadPool {
 public:
  /// Starts `num_workers` worker threads (0 is allowed: a pool that can
  /// only grow later via EnsureWorkers).
  explicit ThreadPool(size_t num_workers);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_workers() const;

  /// Grows the pool to at least `n` workers (never shrinks). Lets one
  /// process-wide pool serve callers that request more parallelism than the
  /// hardware reports (useful for oversubscription tests).
  void EnsureWorkers(size_t n);

  /// Enqueues one task. Returns immediately; the task runs on some worker.
  void Submit(std::function<void()> task);

 private:
  void WorkerLoop();

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  bool stop_ = false;
};

/// The process-wide pool used by ParallelFor and the batch query APIs.
/// Created lazily; sized by the global thread count, growing on demand.
ThreadPool& GlobalThreadPool();

/// Sets the process-wide default thread count for ParallelFor and the batch
/// APIs. 0 restores "auto" (hardware concurrency). Not intended to be
/// called concurrently with running ParallelFor calls.
void SetNumThreads(size_t n);

/// The resolved process-wide default thread count (always >= 1).
size_t NumThreads();

/// \brief Runs fn(i) for every i in [begin, end), fanned across the pool.
///
/// `num_threads` caps the parallelism for this call; 0 means the global
/// default (NumThreads()). Partitioning is deterministic: the range is cut
/// into min(num_threads, end - begin) contiguous chunks of near-equal size.
/// The call returns after every index has been processed; the first
/// exception thrown by fn (if any) is rethrown on the calling thread after
/// all chunks finish. fn is invoked concurrently — it must not touch shared
/// mutable state without its own synchronization (writing out[i] per index
/// is safe).
void ParallelFor(size_t begin, size_t end,
                 const std::function<void(size_t)>& fn,
                 size_t num_threads = 0);

/// Deterministic chunk boundaries used by ParallelFor: returns the
/// half-open [start, stop) of chunk `chunk` when [begin, end) is split into
/// `num_chunks` near-equal contiguous pieces (earlier chunks get the
/// remainder). Exposed for testing.
std::pair<size_t, size_t> ParallelChunk(size_t begin, size_t end,
                                        size_t num_chunks, size_t chunk);

}  // namespace sapla

#endif  // SAPLA_UTIL_PARALLEL_H_
