#ifndef SAPLA_UTIL_NORMAL_H_
#define SAPLA_UTIL_NORMAL_H_

// Standard normal distribution helpers.
//
// SAX needs the equiprobable breakpoints of N(0,1) for arbitrary alphabet
// sizes; rather than hard-coding the usual table up to alphabet 10 we compute
// them with a high-accuracy inverse CDF so any alphabet in [2, 256] works.

#include <cstddef>
#include <vector>

namespace sapla {

/// Standard normal cumulative distribution function Phi(x).
double NormalCdf(double x);

/// \brief Inverse standard normal CDF (quantile function).
///
/// Acklam's rational approximation refined with one Halley step; absolute
/// error below 1e-12 over (0, 1). Requires 0 < p < 1.
double NormalQuantile(double p);

/// \brief SAX breakpoints for an alphabet of the given size.
///
/// Returns `alphabet_size - 1` ascending values b_1..b_{a-1} splitting N(0,1)
/// into `alphabet_size` equiprobable regions. Requires alphabet_size >= 2.
std::vector<double> SaxBreakpoints(size_t alphabet_size);

}  // namespace sapla

#endif  // SAPLA_UTIL_NORMAL_H_
