#include "util/histogram.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>

namespace sapla {
namespace {

// Strictly increasing inclusive upper bounds, ratio ~sqrt(2) starting at 1:
// 1, 2, 3, 4, 6, 8, 11, 16, 23, 32, ... (~3.0e9 at bucket 62; the last
// bucket is a catch-all for anything larger).
const std::array<uint64_t, Histogram::kNumBuckets>& BucketTable() {
  static const auto table = [] {
    std::array<uint64_t, Histogram::kNumBuckets> t{};
    double v = 1.0;
    uint64_t prev = 0;
    for (size_t b = 0; b < t.size(); ++b) {
      t[b] = std::max(prev + 1, static_cast<uint64_t>(std::llround(v)));
      prev = t[b];
      v *= std::sqrt(2.0);
    }
    return t;
  }();
  return table;
}

}  // namespace

Histogram::Histogram() {
  for (auto& c : counts_) c.store(0, std::memory_order_relaxed);
}

size_t Histogram::BucketFor(uint64_t value) {
  const auto& table = BucketTable();
  const auto it = std::lower_bound(table.begin(), table.end(), value);
  return it == table.end() ? kNumBuckets - 1
                           : static_cast<size_t>(it - table.begin());
}

uint64_t Histogram::BucketUpper(size_t b) {
  return BucketTable()[std::min(b, kNumBuckets - 1)];
}

uint64_t Histogram::BucketCount(size_t b) const {
  return counts_[std::min(b, kNumBuckets - 1)].load(
      std::memory_order_relaxed);
}

void Histogram::Record(uint64_t value) {
  counts_[BucketFor(value)].fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  uint64_t prev = max_.load(std::memory_order_relaxed);
  while (value > prev &&
         !max_.compare_exchange_weak(prev, value, std::memory_order_relaxed)) {
  }
}

uint64_t Histogram::Count() const {
  uint64_t total = 0;
  for (const auto& c : counts_) total += c.load(std::memory_order_relaxed);
  return total;
}

uint64_t Histogram::Sum() const { return sum_.load(std::memory_order_relaxed); }

uint64_t Histogram::Max() const { return max_.load(std::memory_order_relaxed); }

double Histogram::Mean() const {
  // Snapshot counts first: a Record between reading sum_ and the buckets
  // can only make the mean slightly stale, never divide by zero.
  const uint64_t count = Count();
  if (count == 0) return std::numeric_limits<double>::quiet_NaN();
  return static_cast<double>(Sum()) / static_cast<double>(count);
}

double Histogram::Quantile(double q) const {
  std::array<uint64_t, kNumBuckets> snap;
  uint64_t total = 0;
  for (size_t b = 0; b < kNumBuckets; ++b) {
    snap[b] = counts_[b].load(std::memory_order_relaxed);
    total += snap[b];
  }
  if (total == 0) return std::numeric_limits<double>::quiet_NaN();
  q = std::clamp(q, 0.0, 1.0);
  const uint64_t target =
      std::max<uint64_t>(1, static_cast<uint64_t>(std::ceil(q * total)));
  uint64_t cum = 0;
  for (size_t b = 0; b < kNumBuckets; ++b) {
    if (snap[b] == 0) continue;
    if (cum + snap[b] >= target) {
      const double lower = b == 0 ? 0.0 : static_cast<double>(BucketUpper(b - 1));
      const double upper = static_cast<double>(BucketUpper(b));
      const double frac =
          static_cast<double>(target - cum) / static_cast<double>(snap[b]);
      // The true maximum clips the top bucket's interpolation.
      return std::min(lower + frac * (upper - lower),
                      static_cast<double>(Max()));
    }
    cum += snap[b];
  }
  return static_cast<double>(Max());
}

void Histogram::Merge(const Histogram& other) {
  for (size_t b = 0; b < kNumBuckets; ++b) {
    const uint64_t n = other.counts_[b].load(std::memory_order_relaxed);
    if (n != 0) counts_[b].fetch_add(n, std::memory_order_relaxed);
  }
  sum_.fetch_add(other.sum_.load(std::memory_order_relaxed),
                 std::memory_order_relaxed);
  const uint64_t other_max = other.max_.load(std::memory_order_relaxed);
  uint64_t prev = max_.load(std::memory_order_relaxed);
  while (other_max > prev && !max_.compare_exchange_weak(
                                 prev, other_max, std::memory_order_relaxed)) {
  }
}

void Histogram::Reset() {
  for (auto& c : counts_) c.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
}

WindowedHistogram::WindowedHistogram(uint64_t window_us) {
  Configure(window_us);
}

void WindowedHistogram::Configure(uint64_t window_us) {
  if (window_us == 0) window_us = 60'000'000;
  slot_us_ = std::max<uint64_t>(1, window_us / kSlots);
}

uint64_t WindowedHistogram::SteadyNowUs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void WindowedHistogram::Record(uint64_t value) {
  RecordAt(value, SteadyNowUs());
}

void WindowedHistogram::RecordAt(uint64_t value, uint64_t now_us) {
  const uint64_t epoch = now_us / slot_us_;
  Slot& slot = slots_[epoch % kSlots];
  if (slot.epoch.load(std::memory_order_acquire) != epoch) {
    // First write into this slot's new occupancy: drop the samples it held
    // a full window ago. The mutex only serializes the reset; once the
    // epoch tag is published, concurrent writers take the fast path.
    std::lock_guard<std::mutex> lock(slot.rotate_mu);
    if (slot.epoch.load(std::memory_order_relaxed) != epoch) {
      slot.hist.Reset();
      slot.epoch.store(epoch, std::memory_order_release);
    }
  }
  slot.hist.Record(value);
}

void WindowedHistogram::MergeInto(Histogram* out) const {
  MergeIntoAt(out, SteadyNowUs());
}

void WindowedHistogram::MergeIntoAt(Histogram* out, uint64_t now_us) const {
  const uint64_t epoch = now_us / slot_us_;
  for (const Slot& slot : slots_) {
    const uint64_t e = slot.epoch.load(std::memory_order_acquire);
    // Live = stamped within the last full ring revolution. Anything older
    // belongs to a previous window and is skipped (it will be reset by the
    // next writer to land in that slot).
    if (e == kIdle || e + kSlots <= epoch) continue;
    out->Merge(slot.hist);
  }
}

}  // namespace sapla
