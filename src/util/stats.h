#ifndef SAPLA_UTIL_STATS_H_
#define SAPLA_UTIL_STATS_H_

// Streaming summary statistics used by the benchmark harnesses to aggregate
// per-dataset results the way the paper's "summary comparison on 117
// datasets" figures do.

#include <cmath>
#include <cstddef>
#include <limits>

namespace sapla {

/// \brief Welford-style streaming accumulator for mean/stddev/min/max.
class SummaryStats {
 public:
  /// Adds one observation.
  void Add(double x) {
    ++count_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
    if (x < min_) min_ = x;
    if (x > max_) max_ = x;
    sum_ += x;
  }

  size_t count() const { return count_; }
  double sum() const { return sum_; }
  double mean() const { return count_ ? mean_ : 0.0; }
  double min() const { return count_ ? min_ : 0.0; }
  double max() const { return count_ ? max_ : 0.0; }

  /// Population variance; 0 for fewer than two observations.
  double variance() const {
    return count_ > 1 ? m2_ / static_cast<double>(count_) : 0.0;
  }
  double stddev() const { return std::sqrt(variance()); }

  /// Merges another accumulator into this one (parallel Welford).
  void Merge(const SummaryStats& o) {
    if (o.count_ == 0) return;
    if (count_ == 0) {
      *this = o;
      return;
    }
    const double delta = o.mean_ - mean_;
    const double n = static_cast<double>(count_);
    const double m = static_cast<double>(o.count_);
    mean_ += delta * m / (n + m);
    m2_ += o.m2_ + delta * delta * n * m / (n + m);
    count_ += o.count_;
    sum_ += o.sum_;
    if (o.min_ < min_) min_ = o.min_;
    if (o.max_ > max_) max_ = o.max_;
  }

 private:
  size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

}  // namespace sapla

#endif  // SAPLA_UTIL_STATS_H_
