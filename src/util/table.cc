#include "util/table.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

namespace sapla {

void Table::SetHeader(std::vector<std::string> header) {
  header_ = std::move(header);
}

void Table::AddRow(std::vector<std::string> row) {
  rows_.push_back(std::move(row));
}

std::string Table::Num(double v, int precision) {
  char buf[64];
  snprintf(buf, sizeof(buf), "%.*g", precision, v);
  return buf;
}

std::string Table::ToString() const {
  // Compute column widths over header + all rows.
  std::vector<size_t> width(header_.size(), 0);
  auto widen = [&](const std::vector<std::string>& row) {
    if (row.size() > width.size()) width.resize(row.size(), 0);
    for (size_t i = 0; i < row.size(); ++i)
      width[i] = std::max(width[i], row[i].size());
  };
  widen(header_);
  for (const auto& r : rows_) widen(r);

  std::ostringstream out;
  out << "== " << title_ << " ==\n";
  auto emit = [&](const std::vector<std::string>& row) {
    for (size_t i = 0; i < width.size(); ++i) {
      const std::string& cell = i < row.size() ? row[i] : std::string();
      out << cell << std::string(width[i] - cell.size() + 2, ' ');
    }
    out << '\n';
  };
  emit(header_);
  size_t total = 0;
  for (size_t w : width) total += w + 2;
  out << std::string(total, '-') << '\n';
  for (const auto& r : rows_) emit(r);
  return out.str();
}

std::string Table::ToCsv() const {
  auto quote = [](const std::string& s) {
    if (s.find_first_of(",\"\n") == std::string::npos) return s;
    std::string q = "\"";
    for (char c : s) {
      if (c == '"') q += '"';
      q += c;
    }
    q += '"';
    return q;
  };
  std::ostringstream out;
  auto emit = [&](const std::vector<std::string>& row) {
    for (size_t i = 0; i < row.size(); ++i) {
      if (i) out << ',';
      out << quote(row[i]);
    }
    out << '\n';
  };
  emit(header_);
  for (const auto& r : rows_) emit(r);
  return out.str();
}

namespace {

// JSON string escaping for the small set of characters table cells can
// reasonably contain.
std::string JsonQuote(const std::string& s) {
  std::string out = "\"";
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

// Emits a cell as a JSON number when it parses fully as one (finite),
// otherwise as a quoted string.
std::string JsonCell(const std::string& s) {
  if (!s.empty()) {
    char* end = nullptr;
    const double v = std::strtod(s.c_str(), &end);
    if (end == s.c_str() + s.size() && std::isfinite(v)) return s;
  }
  return JsonQuote(s);
}

}  // namespace

std::string Table::ToJson() const {
  std::ostringstream out;
  out << "{\"title\": " << JsonQuote(title_) << ", \"rows\": [";
  for (size_t r = 0; r < rows_.size(); ++r) {
    if (r) out << ", ";
    out << '{';
    for (size_t i = 0; i < rows_[r].size(); ++i) {
      if (i) out << ", ";
      const std::string key =
          i < header_.size() ? header_[i] : "col" + std::to_string(i);
      out << JsonQuote(key) << ": " << JsonCell(rows_[r][i]);
    }
    out << '}';
  }
  out << "]}\n";
  return out.str();
}

bool Table::WriteJson(const std::string& json_path) const {
  std::ofstream f(json_path);
  if (!f) return false;
  f << ToJson();
  return static_cast<bool>(f);
}

bool Table::Print(const std::string& csv_path) const {
  fputs(ToString().c_str(), stdout);
  fputc('\n', stdout);
  if (csv_path.empty()) return true;
  std::ofstream f(csv_path);
  if (!f) return false;
  f << ToCsv();
  return static_cast<bool>(f);
}

}  // namespace sapla
