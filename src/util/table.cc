#include "util/table.h"

#include <cstdio>
#include <fstream>
#include <sstream>

namespace sapla {

void Table::SetHeader(std::vector<std::string> header) {
  header_ = std::move(header);
}

void Table::AddRow(std::vector<std::string> row) {
  rows_.push_back(std::move(row));
}

std::string Table::Num(double v, int precision) {
  char buf[64];
  snprintf(buf, sizeof(buf), "%.*g", precision, v);
  return buf;
}

std::string Table::ToString() const {
  // Compute column widths over header + all rows.
  std::vector<size_t> width(header_.size(), 0);
  auto widen = [&](const std::vector<std::string>& row) {
    if (row.size() > width.size()) width.resize(row.size(), 0);
    for (size_t i = 0; i < row.size(); ++i)
      width[i] = std::max(width[i], row[i].size());
  };
  widen(header_);
  for (const auto& r : rows_) widen(r);

  std::ostringstream out;
  out << "== " << title_ << " ==\n";
  auto emit = [&](const std::vector<std::string>& row) {
    for (size_t i = 0; i < width.size(); ++i) {
      const std::string& cell = i < row.size() ? row[i] : std::string();
      out << cell << std::string(width[i] - cell.size() + 2, ' ');
    }
    out << '\n';
  };
  emit(header_);
  size_t total = 0;
  for (size_t w : width) total += w + 2;
  out << std::string(total, '-') << '\n';
  for (const auto& r : rows_) emit(r);
  return out.str();
}

std::string Table::ToCsv() const {
  auto quote = [](const std::string& s) {
    if (s.find_first_of(",\"\n") == std::string::npos) return s;
    std::string q = "\"";
    for (char c : s) {
      if (c == '"') q += '"';
      q += c;
    }
    q += '"';
    return q;
  };
  std::ostringstream out;
  auto emit = [&](const std::vector<std::string>& row) {
    for (size_t i = 0; i < row.size(); ++i) {
      if (i) out << ',';
      out << quote(row[i]);
    }
    out << '\n';
  };
  emit(header_);
  for (const auto& r : rows_) emit(r);
  return out.str();
}

bool Table::Print(const std::string& csv_path) const {
  fputs(ToString().c_str(), stdout);
  fputc('\n', stdout);
  if (csv_path.empty()) return true;
  std::ofstream f(csv_path);
  if (!f) return false;
  f << ToCsv();
  return static_cast<bool>(f);
}

}  // namespace sapla
