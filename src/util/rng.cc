#include "util/rng.h"

#include <algorithm>
#include <cmath>

#include "util/status.h"

namespace sapla {
namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(&sm);
}

uint64_t Rng::NextU64() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

double Rng::Uniform() {
  // 53 high bits -> double in [0,1).
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) { return lo + (hi - lo) * Uniform(); }

uint64_t Rng::UniformInt(uint64_t n) {
  SAPLA_DCHECK(n > 0);
  // Rejection sampling to avoid modulo bias.
  const uint64_t limit = n * (UINT64_MAX / n);
  uint64_t v;
  do {
    v = NextU64();
  } while (v >= limit);
  return v % n;
}

double Rng::Gaussian() {
  if (have_cached_gaussian_) {
    have_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  // Box-Muller; fully deterministic given the stream.
  double u1, u2;
  do {
    u1 = Uniform();
  } while (u1 <= 1e-300);
  u2 = Uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_gaussian_ = r * std::sin(theta);
  have_cached_gaussian_ = true;
  return r * std::cos(theta);
}

std::vector<size_t> Rng::SampleWithoutReplacement(size_t n, size_t k) {
  SAPLA_DCHECK(k <= n);
  // Partial Fisher-Yates over an index vector.
  std::vector<size_t> idx(n);
  for (size_t i = 0; i < n; ++i) idx[i] = i;
  for (size_t i = 0; i < k; ++i) {
    const size_t j = i + static_cast<size_t>(UniformInt(n - i));
    std::swap(idx[i], idx[j]);
  }
  idx.resize(k);
  return idx;
}

Rng Rng::Fork() { return Rng(NextU64()); }

ZipfSampler::ZipfSampler(size_t n, double s) {
  SAPLA_DCHECK(n > 0);
  cdf_.resize(n);
  double total = 0.0;
  for (size_t r = 0; r < n; ++r) {
    total += 1.0 / std::pow(static_cast<double>(r + 1), s);
    cdf_[r] = total;
  }
  for (double& c : cdf_) c /= total;
  cdf_.back() = 1.0;  // guard against rounding
}

size_t ZipfSampler::Sample(Rng& rng) const {
  const double u = rng.Uniform();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<size_t>(it - cdf_.begin());
}

}  // namespace sapla
