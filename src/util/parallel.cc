#include "util/parallel.h"

#include <algorithm>
#include <atomic>
#include <exception>

#include "obs/trace.h"
#include "util/fault.h"

namespace sapla {
namespace {

// Global default thread count; 0 = auto (hardware concurrency).
std::atomic<size_t> g_num_threads{0};

// Set while this thread is executing a ParallelFor chunk: a nested
// ParallelFor runs inline instead of re-entering the pool (all workers
// could be occupied by outer chunks, which would deadlock the inner wait).
thread_local bool t_in_parallel_for = false;

size_t HardwareThreads() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<size_t>(n);
}

}  // namespace

ThreadPool::ThreadPool(size_t num_workers) { EnsureWorkers(num_workers); }

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

size_t ThreadPool::num_workers() const {
  std::lock_guard<std::mutex> lock(mu_);
  return workers_.size();
}

void ThreadPool::EnsureWorkers(size_t n) {
  std::lock_guard<std::mutex> lock(mu_);
  while (workers_.size() < n) workers_.emplace_back([this] { WorkerLoop(); });
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ with a drained queue
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

ThreadPool& GlobalThreadPool() {
  // Leaked on purpose: worker threads must not be joined during static
  // destruction (tasks submitted from other static destructors would hang).
  static ThreadPool* pool = new ThreadPool(NumThreads() - 1);
  return *pool;
}

void SetNumThreads(size_t n) { g_num_threads.store(n); }

size_t NumThreads() {
  const size_t n = g_num_threads.load();
  return n == 0 ? HardwareThreads() : n;
}

std::pair<size_t, size_t> ParallelChunk(size_t begin, size_t end,
                                        size_t num_chunks, size_t chunk) {
  const size_t total = end - begin;
  const size_t base = total / num_chunks;
  const size_t rem = total % num_chunks;
  const size_t start =
      begin + chunk * base + std::min(chunk, rem);
  const size_t len = base + (chunk < rem ? 1 : 0);
  return {start, start + len};
}

void ParallelFor(size_t begin, size_t end,
                 const std::function<void(size_t)>& fn, size_t num_threads) {
  if (begin >= end) return;
  if (num_threads == 0) num_threads = NumThreads();
  const size_t chunks = std::min(num_threads, end - begin);
  if (chunks <= 1 || t_in_parallel_for) {
    for (size_t i = begin; i < end; ++i) fn(i);
    return;
  }

  ThreadPool& pool = GlobalThreadPool();
  pool.EnsureWorkers(chunks - 1);

  std::mutex done_mu;
  std::condition_variable done_cv;
  size_t pending = chunks - 1;
  std::exception_ptr first_error;

  // The caller's request context crosses into the pool with the work: each
  // chunk reinstalls it so spans recorded by workers stitch into the same
  // trace tree as the caller's (obs/trace.h). Free when no context is set.
  const obs::TraceContext caller_ctx = obs::CurrentTraceContext();
  const auto run_chunk = [&](size_t c) {
    obs::TraceContextScope trace_scope(caller_ctx);
    SAPLA_TRACE_SPAN("parallel/chunk");
    // Fault point "parallel/worker": latency-only — simulates a slow worker
    // without changing what the chunk computes.
    SAPLA_FAULT_DELAY("parallel/worker");
    const auto [start, stop] = ParallelChunk(begin, end, chunks, c);
    t_in_parallel_for = true;
    try {
      for (size_t i = start; i < stop; ++i) fn(i);
    } catch (...) {
      std::lock_guard<std::mutex> lock(done_mu);
      if (!first_error) first_error = std::current_exception();
    }
    t_in_parallel_for = false;
  };

  for (size_t c = 1; c < chunks; ++c) {
    pool.Submit([&, c] {
      run_chunk(c);
      // Notify while holding the mutex: the waiting thread destroys done_cv
      // as soon as it observes pending == 0, so signalling after unlock
      // would race with that destruction.
      std::lock_guard<std::mutex> lock(done_mu);
      --pending;
      done_cv.notify_one();
    });
  }
  run_chunk(0);  // the calling thread always owns chunk 0

  std::unique_lock<std::mutex> lock(done_mu);
  done_cv.wait(lock, [&] { return pending == 0; });
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace sapla
