#ifndef SAPLA_UTIL_RESOURCE_BUDGET_H_
#define SAPLA_UTIL_RESOURCE_BUDGET_H_

// Hierarchical byte-budget accountant for process-wide resource governance.
//
// A ResourceBudget meters one consumer (ingest memtable + minors, the
// cold-tier frame cache, the serve result cache, admission-queue payloads)
// against a byte capacity. Budgets form a tree: every reservation on a
// child also lands on its ancestors, so a single root capacity bounds the
// whole process no matter how the children carve it up. A child with
// capacity 0 is locally unlimited and bounded only by its ancestors —
// that is the common wiring: one root with the global budget, one
// capacity-0 child per consumer for attribution.
//
// Two reservation flavors:
//   - TryReserve: fails (and counts a rejection) when the bytes would
//     exceed this budget's or any ancestor's capacity. Nothing is
//     reserved on failure — the reserve-up-the-tree is all-or-nothing.
//     Use for admission decisions (queue payloads, cache inserts).
//   - ForceReserve: always succeeds, counting an overflow when it pushes
//     usage past capacity. Use for bytes that already exist and must be
//     accounted (memtable contents, the one frame a cold store must keep
//     resident) — overflow is what *creates* pressure and drives the
//     graded responses.
//
// Pressure is graded per budget from its own usage vs. its watermarks:
//   kNone  — below the soft watermark (soft_fraction * capacity).
//   kSoft  — at/above soft, below capacity. Consumers respond by
//            shrinking caches and forcing seal/compaction.
//   kHard  — at/above capacity. Consumers shed writes (kOverloaded) and
//            degrade reads.
// pressure_up() folds in the ancestors, so a consumer sitting under a
// saturated root sees kHard even when its own child budget is unlimited.
//
// All accounting is lock-free (relaxed atomics + a CAS loop in
// TryReserve); the child registry for SnapshotTree takes a mutex but is
// touched only at construction/destruction/snapshot time. Approximate
// cross-field reads (used vs. capacity during a concurrent resize) are
// fine: budgets bound working sets, they are not allocators.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace sapla {

/// Graded budget pressure; higher is worse. Compare with < / >.
enum class BudgetPressure { kNone = 0, kSoft = 1, kHard = 2 };

/// Human-readable pressure name ("none" / "soft" / "hard").
const char* BudgetPressureName(BudgetPressure pressure);

class ResourceBudget {
 public:
  /// Point-in-time state of one budget (see SnapshotTree).
  struct Snapshot {
    std::string name;          ///< Budget name, unique per tree by convention.
    size_t used = 0;           ///< Currently reserved bytes.
    size_t capacity = 0;       ///< Byte capacity; 0 = locally unlimited.
    size_t peak_used = 0;      ///< High-water mark of `used` since creation.
    uint64_t rejections = 0;   ///< Failed TryReserve calls.
    uint64_t overflows = 0;    ///< ForceReserve calls that exceeded capacity.
    BudgetPressure pressure = BudgetPressure::kNone;
  };

  /// Creates a root budget. `capacity_bytes` 0 means unlimited (pure
  /// accounting). `soft_fraction` places the soft watermark.
  static std::shared_ptr<ResourceBudget> MakeRoot(std::string name,
                                                  size_t capacity_bytes,
                                                  double soft_fraction = 0.85);

  /// Creates a child of `parent` (which must be non-null). The child keeps
  /// its parent alive. `capacity_bytes` 0 = bounded only by ancestors.
  static std::shared_ptr<ResourceBudget> MakeChild(
      std::shared_ptr<ResourceBudget> parent, std::string name,
      size_t capacity_bytes = 0, double soft_fraction = 0.85);

  ~ResourceBudget();

  ResourceBudget(const ResourceBudget&) = delete;
  ResourceBudget& operator=(const ResourceBudget&) = delete;

  /// Reserves `bytes` on this budget and every ancestor, all-or-nothing.
  /// Returns false (reserving nothing, counting one rejection on the
  /// budget whose capacity was hit) if any level would exceed capacity.
  bool TryReserve(size_t bytes);

  /// Reserves `bytes` unconditionally on this budget and every ancestor.
  /// Counts an overflow on each level pushed past its capacity.
  void ForceReserve(size_t bytes);

  /// Returns `bytes` previously reserved (either flavor) on this budget
  /// and every ancestor. Releasing more than was reserved clamps to zero
  /// (and trips a DCHECK in debug builds).
  void Release(size_t bytes);

  /// Live-resizes the capacity (e.g. lifting pressure in a chaos round).
  /// Existing reservations are untouched; a shrink below current usage
  /// simply puts the budget at kHard until consumers release.
  void SetCapacity(size_t capacity_bytes);

  size_t used() const { return used_.load(std::memory_order_relaxed); }
  size_t capacity() const { return capacity_.load(std::memory_order_relaxed); }
  size_t peak_used() const { return peak_.load(std::memory_order_relaxed); }
  uint64_t rejections() const {
    return rejections_.load(std::memory_order_relaxed);
  }
  uint64_t overflows() const {
    return overflows_.load(std::memory_order_relaxed);
  }
  const std::string& name() const { return name_; }
  const std::shared_ptr<ResourceBudget>& parent() const { return parent_; }

  /// This budget's own pressure (usage vs. its watermarks; capacity 0
  /// never reports pressure).
  BudgetPressure pressure() const;

  /// Worst pressure over this budget and all ancestors — what a consumer
  /// should act on.
  BudgetPressure pressure_up() const;

  /// Snapshots this budget and every descendant, pre-order (self first).
  std::vector<Snapshot> SnapshotTree() const;

 private:
  ResourceBudget(std::string name, size_t capacity_bytes, double soft_fraction,
                 std::shared_ptr<ResourceBudget> parent);

  bool ReserveLocal(size_t bytes);
  void AccountLocal(size_t bytes, bool forced);
  void ReleaseLocal(size_t bytes);
  void UpdatePeak(size_t candidate);
  void AppendSnapshots(std::vector<Snapshot>* out) const;

  const std::string name_;
  const double soft_fraction_;
  std::atomic<size_t> capacity_;
  std::atomic<size_t> used_{0};
  std::atomic<size_t> peak_{0};
  std::atomic<uint64_t> rejections_{0};
  std::atomic<uint64_t> overflows_{0};

  const std::shared_ptr<ResourceBudget> parent_;
  mutable std::mutex children_mu_;
  std::vector<const ResourceBudget*> children_;
};

/// Move-only RAII reservation: releases its bytes on destruction, so a
/// request bounced with kOverloaded (or cancelled mid-queue) can never
/// leak its admission-queue reservation.
class BudgetLease {
 public:
  BudgetLease() = default;

  /// Tries to reserve `bytes` on `budget`; the returned lease is empty
  /// (ok() == false) on rejection. A null budget yields an always-ok
  /// zero-byte lease so callers need no null checks.
  static BudgetLease TryAcquire(std::shared_ptr<ResourceBudget> budget,
                                size_t bytes);

  /// Force-reserves `bytes` (always ok()).
  static BudgetLease Acquire(std::shared_ptr<ResourceBudget> budget,
                             size_t bytes);

  BudgetLease(BudgetLease&& other) noexcept { *this = std::move(other); }
  BudgetLease& operator=(BudgetLease&& other) noexcept {
    if (this != &other) {
      Reset();
      budget_ = std::move(other.budget_);
      bytes_ = other.bytes_;
      ok_ = other.ok_;
      other.budget_ = nullptr;
      other.bytes_ = 0;
      other.ok_ = false;
    }
    return *this;
  }
  BudgetLease(const BudgetLease&) = delete;
  BudgetLease& operator=(const BudgetLease&) = delete;
  ~BudgetLease() { Reset(); }

  /// Releases the reservation now (idempotent).
  void Reset() {
    if (budget_ && bytes_ > 0) budget_->Release(bytes_);
    budget_ = nullptr;
    bytes_ = 0;
    ok_ = false;
  }

  bool ok() const { return ok_; }
  size_t bytes() const { return bytes_; }

 private:
  std::shared_ptr<ResourceBudget> budget_;
  size_t bytes_ = 0;
  bool ok_ = false;
};

}  // namespace sapla

#endif  // SAPLA_UTIL_RESOURCE_BUDGET_H_
