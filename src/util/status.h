#ifndef SAPLA_UTIL_STATUS_H_
#define SAPLA_UTIL_STATUS_H_

// Arrow/RocksDB-style Status and Result<T> error model.
//
// Library code does not throw for expected failures (bad input files,
// out-of-range parameters): fallible entry points return Status or Result<T>.
// Programming errors (violated preconditions inside the library) use
// SAPLA_DCHECK which aborts in debug builds.

#include <cassert>
#include <string>
#include <utility>
#include <variant>

namespace sapla {

/// Error categories used across the library.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kIOError,
  kNotFound,
  kOutOfRange,
  kUnimplemented,
  kInternal,
  /// Serving layer: admission queue full; retry later (backpressure).
  kOverloaded,
  /// Serving layer: the request's deadline passed before completion.
  kDeadlineExceeded,
  /// Serving layer: the service is stopped and accepts no new requests.
  kUnavailable,
  /// Resource governance: a memory or disk budget is exhausted (full disk,
  /// byte budget at its hard watermark). Retry after pressure lifts.
  kResourceExhausted,
};

/// \brief Outcome of a fallible operation.
///
/// A `Status` is cheap to copy when OK (no allocation) and carries a
/// code + message otherwise.
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Overloaded(std::string msg) {
    return Status(StatusCode::kOverloaded, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Human-readable "CODE: message" string.
  std::string ToString() const;

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// \brief Either a value of type T or an error Status.
///
/// Mirrors arrow::Result. `ValueOrDie()` aborts on error and is intended for
/// examples/tests; production callers check `ok()` first.
template <typename T>
class Result {
 public:
  Result(T value) : v_(std::move(value)) {}            // NOLINT(runtime/explicit)
  Result(Status status) : v_(std::move(status)) {      // NOLINT(runtime/explicit)
    assert(!std::get<Status>(v_).ok() && "Result constructed from OK status");
  }

  bool ok() const { return std::holds_alternative<T>(v_); }

  const Status& status() const {
    static const Status kOk;
    return ok() ? kOk : std::get<Status>(v_);
  }

  const T& ValueOrDie() const& {
    if (!ok()) {
      fprintf(stderr, "Result::ValueOrDie on error: %s\n",
              std::get<Status>(v_).ToString().c_str());
      abort();
    }
    return std::get<T>(v_);
  }
  T&& ValueOrDie() && {
    if (!ok()) {
      fprintf(stderr, "Result::ValueOrDie on error: %s\n",
              std::get<Status>(v_).ToString().c_str());
      abort();
    }
    return std::get<T>(std::move(v_));
  }

  const T& operator*() const& { return ValueOrDie(); }
  const T* operator->() const { return &ValueOrDie(); }

 private:
  std::variant<T, Status> v_;
};

/// Propagates a non-OK status to the caller.
#define SAPLA_RETURN_NOT_OK(expr)          \
  do {                                     \
    ::sapla::Status _st = (expr);          \
    if (!_st.ok()) return _st;             \
  } while (0)

#ifndef NDEBUG
#define SAPLA_DCHECK(cond) assert(cond)
#else
#define SAPLA_DCHECK(cond) ((void)0)
#endif

}  // namespace sapla

#endif  // SAPLA_UTIL_STATUS_H_
