#ifndef SAPLA_UTIL_BOUNDED_QUEUE_H_
#define SAPLA_UTIL_BOUNDED_QUEUE_H_

// Bounded multi-producer multi-consumer queue with batch draining.
//
// The admission queue of the serving layer (serve/service.h): producers
// TryPush and get an immediate false when the queue is full — explicit
// backpressure, never unbounded growth — and the scheduler thread drains
// with PopBatch, which implements the micro-batching window: it blocks for
// the first item, then waits until either `max_items` are queued or
// `max_delay` has elapsed since the oldest queued item arrived, and only
// then removes items. Items stay *in* the queue (holding their capacity
// slot) while the window is open, so a full queue genuinely means
// "max_items + capacity requests in flight" and overload is observable.
//
// Byte-budget admission: an optional ResourceBudget meters queued payload
// bytes. TryPush reserves the item's declared bytes before enqueueing and
// fails like a full queue when the budget's hard watermark rejects the
// reservation; the bytes ride with the item and are released when PopBatch
// removes it (or when the queue is destroyed with items still queued), so
// a rejected or cancelled request can never leak a reservation.
//
// Close() wakes everything: producers fail fast, PopBatch drains what is
// left and then returns empty batches forever.

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "util/fault.h"
#include "util/resource_budget.h"

namespace sapla {

/// \brief Bounded MPMC queue; see file comment for the batching contract.
template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(size_t capacity,
                        std::shared_ptr<ResourceBudget> budget = nullptr)
      : capacity_(capacity), budget_(std::move(budget)) {}

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  ~BoundedQueue() {
    // Items never drained still hold reservations; return them.
    if (budget_) {
      for (const Entry& entry : items_) budget_->Release(entry.bytes);
    }
  }

  /// Enqueues `item` unless the queue is full, closed, or `bytes` is
  /// rejected by the byte budget; returns whether the item was admitted.
  /// Never blocks. On failure `item` is NOT consumed — the caller keeps
  /// ownership (the serving layer resolves the rejected request's promise
  /// through it) — and no budget bytes stay reserved.
  bool TryPush(T&& item, size_t bytes = 0) {
    // Fault point "queue/admit": a trigger behaves exactly like a full
    // queue, so callers exercise their backpressure path on demand.
    if (SAPLA_FAULT_HIT("queue/admit")) return false;
    if (budget_ && !budget_->TryReserve(bytes)) return false;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (closed_ || items_.size() >= capacity_) {
        if (budget_) budget_->Release(bytes);
        return false;
      }
      items_.push_back(Entry{std::move(item), Clock::now(), bytes});
    }
    cv_.notify_all();
    return true;
  }

  /// Removes up to `max_items` items as one micro-batch. Blocks until the
  /// queue is non-empty, then until `max_items` are available or the
  /// oldest queued item has waited `max_delay` since its arrival,
  /// whichever comes first — so no admitted item waits longer than
  /// `max_delay` for its flush to start. Returns an empty vector only when
  /// the queue is closed and fully drained. Budget bytes for the removed
  /// items are released here (the queue meters *queued* payloads).
  std::vector<T> PopBatch(size_t max_items,
                          std::chrono::microseconds max_delay) {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] { return closed_ || !items_.empty(); });
    if (items_.empty()) return {};  // closed and drained
    const auto deadline = items_.front().arrival + max_delay;
    cv_.wait_until(lock, deadline,
                   [&] { return closed_ || items_.size() >= max_items; });
    std::vector<T> batch;
    const size_t take = items_.size() < max_items ? items_.size() : max_items;
    batch.reserve(take);
    size_t released = 0;
    for (size_t i = 0; i < take; ++i) {
      batch.push_back(std::move(items_.front().item));
      released += items_.front().bytes;
      items_.pop_front();
    }
    lock.unlock();
    if (budget_ && released > 0) budget_->Release(released);
    cv_.notify_all();  // free slots for blocked producers' next TryPush
    return batch;
  }

  /// Marks the queue closed: TryPush fails from now on, PopBatch drains the
  /// remainder and then returns empty. Idempotent.
  void Close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }

  /// Age of the oldest queued item in microseconds (0 when empty): the
  /// queue-delay signal for adaptive admission control — when this exceeds
  /// the target, newly arriving low-priority work is shed at the door
  /// instead of timing out after queueing.
  uint64_t OldestWaitUs() const {
    std::lock_guard<std::mutex> lock(mu_);
    if (items_.empty()) return 0;
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            Clock::now() - items_.front().arrival)
            .count());
  }

  size_t capacity() const { return capacity_; }

  const std::shared_ptr<ResourceBudget>& budget() const { return budget_; }

 private:
  using Clock = std::chrono::steady_clock;

  /// The front entry's arrival anchors the batch window.
  struct Entry {
    T item;
    Clock::time_point arrival;
    size_t bytes;
  };

  const size_t capacity_;
  const std::shared_ptr<ResourceBudget> budget_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Entry> items_;
  bool closed_ = false;
};

}  // namespace sapla

#endif  // SAPLA_UTIL_BOUNDED_QUEUE_H_
