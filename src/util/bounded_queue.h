#ifndef SAPLA_UTIL_BOUNDED_QUEUE_H_
#define SAPLA_UTIL_BOUNDED_QUEUE_H_

// Bounded multi-producer multi-consumer queue with batch draining.
//
// The admission queue of the serving layer (serve/service.h): producers
// TryPush and get an immediate false when the queue is full — explicit
// backpressure, never unbounded growth — and the scheduler thread drains
// with PopBatch, which implements the micro-batching window: it blocks for
// the first item, then waits until either `max_items` are queued or
// `max_delay` has elapsed since the oldest queued item arrived, and only
// then removes items. Items stay *in* the queue (holding their capacity
// slot) while the window is open, so a full queue genuinely means
// "max_items + capacity requests in flight" and overload is observable.
//
// Close() wakes everything: producers fail fast, PopBatch drains what is
// left and then returns empty batches forever.

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <utility>
#include <vector>

#include "util/fault.h"

namespace sapla {

/// \brief Bounded MPMC queue; see file comment for the batching contract.
template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(size_t capacity) : capacity_(capacity) {}

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Enqueues `item` unless the queue is full or closed; returns whether
  /// the item was admitted. Never blocks. On failure `item` is NOT
  /// consumed — the caller keeps ownership (the serving layer resolves the
  /// rejected request's promise through it).
  bool TryPush(T&& item) {
    // Fault point "queue/admit": a trigger behaves exactly like a full
    // queue, so callers exercise their backpressure path on demand.
    if (SAPLA_FAULT_HIT("queue/admit")) return false;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (closed_ || items_.size() >= capacity_) return false;
      items_.emplace_back(std::move(item), Clock::now());
    }
    cv_.notify_all();
    return true;
  }

  /// Removes up to `max_items` items as one micro-batch. Blocks until the
  /// queue is non-empty, then until `max_items` are available or the
  /// oldest queued item has waited `max_delay` since its arrival,
  /// whichever comes first — so no admitted item waits longer than
  /// `max_delay` for its flush to start. Returns an empty vector only when
  /// the queue is closed and fully drained.
  std::vector<T> PopBatch(size_t max_items,
                          std::chrono::microseconds max_delay) {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] { return closed_ || !items_.empty(); });
    if (items_.empty()) return {};  // closed and drained
    const auto deadline = items_.front().second + max_delay;
    cv_.wait_until(lock, deadline,
                   [&] { return closed_ || items_.size() >= max_items; });
    std::vector<T> batch;
    const size_t take = items_.size() < max_items ? items_.size() : max_items;
    batch.reserve(take);
    for (size_t i = 0; i < take; ++i) {
      batch.push_back(std::move(items_.front().first));
      items_.pop_front();
    }
    lock.unlock();
    cv_.notify_all();  // free slots for blocked producers' next TryPush
    return batch;
  }

  /// Marks the queue closed: TryPush fails from now on, PopBatch drains the
  /// remainder and then returns empty. Idempotent.
  void Close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }

  size_t capacity() const { return capacity_; }

 private:
  using Clock = std::chrono::steady_clock;

  const size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  /// (item, arrival time); the front arrival anchors the batch window.
  std::deque<std::pair<T, Clock::time_point>> items_;
  bool closed_ = false;
};

}  // namespace sapla

#endif  // SAPLA_UTIL_BOUNDED_QUEUE_H_
