#ifndef SAPLA_UTIL_BINIO_H_
#define SAPLA_UTIL_BINIO_H_

// Minimal little-endian binary encode/decode helpers.
//
// Shared by the tree serializers (index/rtree.h, index/dbch_tree.h) and the
// index-snapshot format (search/snapshot.h). Writers append to a
// std::string; the Reader is bounds-checked — every Read* reports failure
// instead of walking past the end, so a truncated or corrupted buffer is
// always detected structurally (checksums catch flips, the Reader catches
// short reads). Doubles are transported as their IEEE-754 bit patterns, so
// encode -> decode is bit-exact including -0.0, denormals and NaN payloads.

#include <cstdint>
#include <cstring>
#include <string>

namespace sapla {
namespace binio {

inline void PutU32(std::string* out, uint32_t v) {
  char buf[4];
  for (int i = 0; i < 4; ++i) buf[i] = static_cast<char>((v >> (8 * i)) & 0xFF);
  out->append(buf, 4);
}

inline void PutU64(std::string* out, uint64_t v) {
  char buf[8];
  for (int i = 0; i < 8; ++i) buf[i] = static_cast<char>((v >> (8 * i)) & 0xFF);
  out->append(buf, 8);
}

inline void PutI64(std::string* out, int64_t v) {
  PutU64(out, static_cast<uint64_t>(v));
}

inline void PutF64(std::string* out, double v) {
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  PutU64(out, bits);
}

inline void PutString(std::string* out, const std::string& s) {
  PutU32(out, static_cast<uint32_t>(s.size()));
  out->append(s);
}

/// \brief Bounds-checked sequential reader over a byte string. After any
/// failed read `ok()` is false and every later read returns a zero value;
/// callers check once at the end (or at structural decision points).
class Reader {
 public:
  explicit Reader(const std::string& data) : data_(data) {}

  bool ok() const { return ok_; }
  size_t consumed() const { return pos_; }
  size_t remaining() const { return data_.size() - pos_; }

  uint32_t ReadU32() {
    uint32_t v = 0;
    if (!Take(4)) return 0;
    for (int i = 0; i < 4; ++i)
      v |= static_cast<uint32_t>(
               static_cast<unsigned char>(data_[pos_ - 4 + i]))
           << (8 * i);
    return v;
  }

  uint64_t ReadU64() {
    uint64_t v = 0;
    if (!Take(8)) return 0;
    for (int i = 0; i < 8; ++i)
      v |= static_cast<uint64_t>(
               static_cast<unsigned char>(data_[pos_ - 8 + i]))
           << (8 * i);
    return v;
  }

  int64_t ReadI64() { return static_cast<int64_t>(ReadU64()); }

  double ReadF64() {
    const uint64_t bits = ReadU64();
    double v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }

  /// Length-prefixed string (PutString). Fails when the prefix runs past
  /// the end of the buffer.
  std::string ReadString() {
    const uint32_t len = ReadU32();
    if (!Take(len)) return {};
    return data_.substr(pos_ - len, len);
  }

  /// Raw byte run of an explicit length.
  std::string ReadBytes(size_t len) {
    if (!Take(len)) return {};
    return data_.substr(pos_ - len, len);
  }

 private:
  bool Take(size_t n) {
    if (!ok_ || n > data_.size() - pos_) {
      ok_ = false;
      return false;
    }
    pos_ += n;
    return true;
  }

  const std::string& data_;
  size_t pos_ = 0;
  bool ok_ = true;
};

}  // namespace binio
}  // namespace sapla

#endif  // SAPLA_UTIL_BINIO_H_
