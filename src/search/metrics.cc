#include "search/metrics.h"

#include <algorithm>

#include "util/status.h"

namespace sapla {

double PruningPower(const KnnResult& result, size_t dataset_size) {
  SAPLA_DCHECK(dataset_size > 0);
  return static_cast<double>(result.num_measured) /
         static_cast<double>(dataset_size);
}

double Accuracy(const KnnResult& result, const KnnResult& ground_truth,
                size_t k) {
  SAPLA_DCHECK(k > 0);
  size_t hits = 0;
  const size_t limit = std::min(k, ground_truth.neighbors.size());
  for (size_t i = 0; i < limit; ++i) {
    const size_t truth_id = ground_truth.neighbors[i].second;
    for (const auto& [dist, id] : result.neighbors) {
      if (id == truth_id) {
        ++hits;
        break;
      }
    }
  }
  return static_cast<double>(hits) / static_cast<double>(k);
}

double OneNnClassificationAccuracy(const Dataset& dataset,
                                   const std::vector<TimeSeries>& queries,
                                   const SimilarityIndex& index) {
  if (queries.empty()) return 0.0;
  size_t correct = 0;
  for (const TimeSeries& q : queries) {
    // Ask for 2 so an exact self-match (distance ~0) can be skipped.
    const KnnResult res = index.Knn(q.values, 2);
    int predicted = -1;
    for (const auto& [dist, id] : res.neighbors) {
      if (dist < 1e-9) continue;
      predicted = dataset.series[id].label;
      break;
    }
    if (predicted < 0 && !res.neighbors.empty())
      predicted = dataset.series[res.neighbors[0].second].label;
    if (predicted == q.label) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(queries.size());
}

}  // namespace sapla
