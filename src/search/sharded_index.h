#ifndef SAPLA_SEARCH_SHARDED_INDEX_H_
#define SAPLA_SEARCH_SHARDED_INDEX_H_

// Sharded similarity index: horizontal partitioning with a deterministic
// merge.
//
// The corpus is split into N contiguous id ranges by the same deterministic
// chunking ParallelFor uses (util/parallel.h ParallelChunk), one
// SimilarityIndex per range. Queries scatter to every healthy shard on the
// shared thread pool and the per-shard answers merge under the established
// (distance, id) tie-break. Because each shard searches its subset exactly,
// the union of per-shard top-k contains the global top-k; sorting the union
// and truncating to k reproduces the single-index answer bit-identically —
// same ids, same distances — at every shard count.
//
// Counters contract: the merged SearchCounters are the field-wise sum of
// the per-shard counters (obs/counters.h Add; cascade_stage is the max).
// With num_shards == 1 the single shard holds the whole corpus, its tree is
// built by the identical serial insertion, and the merged result — counters
// included — is bit-identical to a standalone SimilarityIndex. With more
// shards the ids and distances stay bit-identical while the node-level
// counters reflect the N smaller trees actually traversed (N trees cannot
// have the shape of one big tree); the sum is itself deterministic and
// preserves the per-query invariants (lb = exact + pruned_leaf, etc.).
//
// Generations and live swap: each shard serves one immutable Generation (a
// shard-local Dataset copy + its built index) published through a
// shared_ptr. A query pins the generations of every shard once, up front,
// so a concurrent swap never mixes generations within one query. Swapping
// (RebuildShard / RestoreShard) builds the next generation off to the side
// and publishes it with one pointer store; readers either see the old one
// (kept alive by their pin) or the new one, never a torn state. Every new
// generation gets a fresh store id, so corpus_id() — a mix of the per-shard
// ids — changes and serve-cache entries from the old generation can never
// be returned (serve/result_cache.h keys on it).
//
// Health: each shard carries a ShardHealth knob (degradation ladder at
// shard granularity, docs/ROBUSTNESS.md). A degraded shard contributes
// lower-bound-only candidates; an unhealthy shard is excluded from the
// scatter. Either marks the merged answer approximate=true — one sick
// shard degrades its slice of the corpus instead of poisoning the fleet.

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "search/knn.h"
#include "search/search_index.h"
#include "search/snapshot.h"
#include "ts/time_series.h"
#include "util/status.h"

namespace sapla {

/// \brief N SimilarityIndex shards behind the SearchIndex interface.
class ShardedIndex : public SearchIndex {
 public:
  struct Options {
    /// Number of shards; clamped to [1, dataset size] at Build.
    size_t num_shards = 1;
    /// Per-shard index options (fill factors). legacy_aos_corpus is
    /// rejected — shards are columnar only, and dbch_sound_bounds is
    /// forced on: partition-invariant answers require exact per-shard
    /// search, which DBCH's default §5.3 heuristic cannot provide.
    SimilarityIndex::Options index;
  };

  // Two overloads instead of a defaulted Options argument: a nested class
  // with default member initializers cannot appear in a default argument
  // inside its enclosing class.
  ShardedIndex(Method method, size_t m, IndexKind kind);
  ShardedIndex(Method method, size_t m, IndexKind kind,
               const Options& options);
  ~ShardedIndex() override;

  /// Partitions `dataset` into contiguous id ranges and builds one shard
  /// per range. Each shard copies its slice, so `dataset` need not outlive
  /// the index. Shards build sequentially; each build's reduction fans
  /// across the pool internally.
  Status Build(const Dataset& dataset);

  /// Deterministic global-id range [lo, hi) owned by `shard`.
  std::pair<size_t, size_t> ShardRange(size_t shard) const;

  /// Saves every shard's snapshot (search/snapshot.h) under
  /// ShardSnapshotPath(prefix, shard), atomically per file.
  /// `write_options` applies per shard: a lossy codec writes quantized v4
  /// store sections (answers stay id-identical after reload; see
  /// SnapshotWriteOptions).
  Status SaveSnapshots(const std::string& prefix,
                       const SnapshotWriteOptions& write_options = {}) const;

  /// "<prefix>.shard<shard>.snp" — where SaveSnapshots puts shard files.
  static std::string ShardSnapshotPath(const std::string& prefix,
                                       size_t shard);

  /// Warm restart: partitions `dataset` exactly as Build would, then
  /// restores every shard from its snapshot instead of rebuilding.
  /// Topology (shard count, ranges, method, m, kind) must match the saved
  /// one; any mismatch or corruption rejects the whole restore.
  /// `load_options.cold_store` serves every shard's store mmap-backed
  /// (requires v4 store sections).
  Status Restore(const Dataset& dataset, const std::string& prefix,
                 const SnapshotLoadOptions& load_options = {});

  /// Live swap: rebuilds `shard`'s generation from its retained slice and
  /// publishes it atomically under running queries. The shard's corpus id
  /// (hence corpus_id()) changes; in-flight queries finish on the pinned
  /// old generation. Also resets the shard to healthy.
  Status RebuildShard(size_t shard);

  /// Live swap from disk: loads the snapshot at `path` into a fresh
  /// generation for `shard` (validated against the shard's retained slice)
  /// and publishes it atomically. Also resets the shard to healthy.
  Status RestoreShard(size_t shard, const std::string& path,
                      const SnapshotLoadOptions& load_options = {});

  /// Sets one shard's health (the serving layer and the chaos harness
  /// drive this). Takes effect for queries that start afterwards.
  void SetShardHealth(size_t shard, ShardHealth health);

  // SearchIndex interface. Queries pin every shard's generation once at
  // entry; merged answers are deterministic as documented above.
  KnnResult Knn(const std::vector<double>& query, size_t k) const override;
  /// Knn plus the real per-shard attribution (obs/explain.h): one part per
  /// shard with its health, wall time, contributed neighbors and counters,
  /// plus scatter/merge stage timings. The part counters sum exactly to the
  /// merged counters — the merge already computes that sum.
  KnnResult KnnExplain(const std::vector<double>& query, size_t k,
                       obs::QueryExplain* explain) const override;
  KnnResult KnnLowerBound(const std::vector<double>& query,
                          size_t k) const override;
  KnnResult RangeSearch(const std::vector<double>& query,
                        double radius) const override;
  KnnResult RangeSearchLowerBound(const std::vector<double>& query,
                                  double radius) const override;

  using SearchIndex::KnnBatch;
  using SearchIndex::RangeSearchBatch;
  std::vector<KnnResult> KnnBatch(
      const std::vector<std::vector<double>>& queries, size_t k,
      const BatchOptions& options) const override;
  std::vector<KnnResult> RangeSearchBatch(
      const std::vector<std::vector<double>>& queries, double radius,
      const BatchOptions& options) const override;

  Method method() const override { return method_; }
  IndexKind kind() const override { return kind_; }
  size_t m() const { return m_; }
  size_t dataset_size() const override { return total_size_; }
  size_t series_length() const override { return series_length_; }
  /// Mix of the live per-shard corpus ids (the single shard's id verbatim
  /// when num_shards == 1). Changes whenever any shard swaps generations.
  uint64_t corpus_id() const override;
  size_t num_shards() const override { return shards_.size(); }
  ShardHealth shard_health(size_t shard) const override;

  /// The live corpus id of one shard (diagnostics and swap tests).
  uint64_t shard_corpus_id(size_t shard) const;

  /// Sum of the live generations' store footprints (resident vs. mapped
  /// bytes, frame-cache traffic).
  StoreFootprint footprint() const override;

 private:
  /// One immutable served generation: the shard's slice of the corpus and
  /// the index built over it. The Dataset lives at a stable address inside
  /// the shared_ptr'd Generation — the index points into it.
  struct Generation {
    Dataset dataset;
    std::unique_ptr<SimilarityIndex> index;
  };

  struct Shard {
    mutable std::mutex mu;  ///< guards `gen` publication (not queries)
    std::shared_ptr<const Generation> gen;
    std::atomic<int> health{static_cast<int>(ShardHealth::kHealthy)};
    size_t lo = 0, hi = 0;  ///< global id range [lo, hi)
  };

  /// A query's pinned view of one shard.
  struct Pinned {
    std::shared_ptr<const Generation> gen;
    ShardHealth health = ShardHealth::kHealthy;
    size_t lo = 0;
  };

  std::vector<Pinned> PinShards() const;
  /// Shared Knn body: scatter, per-shard search, merge; fills `*explain`
  /// (when non-null) from the same per-shard results it merges.
  KnnResult KnnWithExplain(const std::vector<double>& query, size_t k,
                           obs::QueryExplain* explain) const;
  /// Shared RangeSearch body, same explain contract.
  KnnResult RangeSearchWithExplain(const std::vector<double>& query,
                                   double radius,
                                   obs::QueryExplain* explain) const;
  /// Shared Build/Restore body: partitions, then builds each shard or
  /// loads it from `snapshot_prefix` (empty = build).
  Status InitShards(const Dataset& dataset, const std::string& snapshot_prefix,
                    const SnapshotLoadOptions& load_options);
  /// Atomically swaps in a shard's next generation and resets its health.
  void Publish(size_t shard, std::shared_ptr<const Generation> gen);

  Method method_;
  size_t m_;
  IndexKind kind_;
  Options options_;
  size_t total_size_ = 0;
  size_t series_length_ = 0;
  /// Fixed after Build/Restore; the deque-free stable vector is never
  /// resized while queries run.
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace sapla

#endif  // SAPLA_SEARCH_SHARDED_INDEX_H_
