#include "search/snapshot.h"

#include <cstring>
#include <fstream>
#include <sstream>
#include <utility>

#include "index/index_backend.h"
#include "obs/trace.h"
#include "reduction/representation.h"
#include "ts/io.h"
#include "util/binio.h"
#include "util/crc32c.h"

namespace sapla {
namespace {

constexpr char kSnapshotMagic[8] = {'S', 'A', 'P', 'L', 'A', 'S', 'N', 'P'};
constexpr uint32_t kSnapshotVersion = 1;

Status Bad(const std::string& what) {
  return Status::InvalidArgument("index snapshot: " + what);
}

Result<std::string> ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open \"" + path + "\" for reading");
  std::ostringstream buf;
  buf << in.rdbuf();
  if (!in.good() && !in.eof())
    return Status::IOError("read failed for \"" + path + "\"");
  return std::move(buf).str();
}

}  // namespace

uint64_t DatasetFingerprint(const Dataset& dataset) {
  uint32_t crc = 0;
  for (const TimeSeries& ts : dataset.series)
    crc = Crc32cExtend(crc, ts.values.data(),
                       ts.values.size() * sizeof(double));
  // Mix the shape in so e.g. one 2n-point series and two n-point series
  // with identical bytes do not collide.
  return (static_cast<uint64_t>(dataset.size()) * 0x9E3779B97F4A7C15ULL) ^
         (static_cast<uint64_t>(dataset.length()) << 32) ^ crc;
}

Status SaveIndexSnapshot(const std::string& path, const SimilarityIndex& index,
                         const SnapshotWriteOptions& options) {
  SAPLA_TRACE_SPAN("snapshot/save");
  if (index.dataset() == nullptr) return Bad("index is not built");
  if (index.options().legacy_aos_corpus)
    return Bad("legacy AoS corpus cannot be snapshotted");
  if (index.store().size() != index.dataset_size())
    return Bad("store does not cover the dataset");

  std::string store_bytes;
  if (options.codec.lossless()) {
    store_bytes =
        SerializeRepresentationStore(index.store(), options.store_format);
  } else {
    // Lossy compression happens at snapshot time, never in the serving
    // index: quantize a copy, record its slack, and persist that.
    Result<RepresentationStore> quantized =
        QuantizeStore(index.store(), options.codec);
    if (!quantized.ok()) return quantized.status();
    store_bytes = SerializeRepresentationStore(
        std::move(quantized).ValueOrDie(), options.store_format);
  }
  // Unimplemented tree serialization is not an error: the snapshot simply
  // omits the tree and the loader re-inserts.
  std::string tree_bytes;
  Result<std::string> tree = index.backend()->SerializeTree();
  if (tree.ok()) {
    tree_bytes = std::move(tree).ValueOrDie();
  } else if (tree.status().code() != StatusCode::kUnimplemented) {
    return tree.status();
  }

  std::string meta;
  binio::PutString(&meta, MethodName(index.method()));
  binio::PutString(&meta, IndexKindName(index.kind()));
  binio::PutU64(&meta, index.m());
  binio::PutU64(&meta, index.dataset_size());
  binio::PutU64(&meta, index.series_length());
  binio::PutU64(&meta, DatasetFingerprint(*index.dataset()));
  binio::PutU64(&meta, store_bytes.size());
  binio::PutU64(&meta, tree_bytes.size());

  std::string out;
  out.append(kSnapshotMagic, sizeof(kSnapshotMagic));
  binio::PutU32(&out, kSnapshotVersion);
  binio::PutU32(&out, 0);  // flags
  binio::PutU32(&out, Crc32c(meta));
  binio::PutU32(&out, Crc32c(store_bytes));
  binio::PutU32(&out, Crc32c(tree_bytes));
  binio::PutU32(&out, 0);  // reserved
  out += meta;
  out += store_bytes;
  out += tree_bytes;
  return AtomicWriteFile(path, out);
}

Status LoadIndexSnapshot(const std::string& path, const Dataset& dataset,
                         SimilarityIndex* index,
                         const SnapshotLoadOptions& options) {
  SAPLA_TRACE_SPAN("snapshot/load");
  Result<std::string> file = ReadFileBytes(path);
  if (!file.ok()) return file.status();
  const std::string bytes = std::move(file).ValueOrDie();

  if (bytes.size() < sizeof(kSnapshotMagic) + 6 * 4 ||
      std::memcmp(bytes.data(), kSnapshotMagic, sizeof(kSnapshotMagic)) != 0)
    return Bad("bad magic (not a SAPLASNP file)");
  binio::Reader r(bytes);
  (void)r.ReadBytes(sizeof(kSnapshotMagic));
  const uint32_t version = r.ReadU32();
  if (version != kSnapshotVersion)
    return Bad("unsupported version " + std::to_string(version));
  // flags and reserved must be zero in version 1; anything else is either
  // a future format or corruption, and both reject (every header byte is
  // then covered by some check — the bit-flip fuzz test relies on it).
  const uint32_t flags = r.ReadU32();
  if (flags != 0) return Bad("unsupported flags " + std::to_string(flags));
  const uint32_t crc_meta = r.ReadU32();
  const uint32_t crc_store = r.ReadU32();
  const uint32_t crc_tree = r.ReadU32();
  const uint32_t reserved = r.ReadU32();
  if (reserved != 0) return Bad("nonzero reserved header field");

  // The meta section has a fixed wire size except the two names; read its
  // fields through the checked Reader, then verify the section CRC over
  // the exact consumed span.
  const size_t meta_begin = r.consumed();
  const std::string method_name = r.ReadString();
  const std::string kind_name = r.ReadString();
  const uint64_t m = r.ReadU64();
  const uint64_t dataset_size = r.ReadU64();
  const uint64_t series_length = r.ReadU64();
  const uint64_t fingerprint = r.ReadU64();
  const uint64_t store_len = r.ReadU64();
  const uint64_t tree_len = r.ReadU64();
  if (!r.ok()) return Bad("truncated meta section");
  const size_t meta_end = r.consumed();
  if (Crc32c(bytes.data() + meta_begin, meta_end - meta_begin) != crc_meta)
    return Bad("meta section checksum mismatch");

  if (method_name != MethodName(index->method()))
    return Bad("method mismatch: snapshot has " + method_name +
               ", index expects " + MethodName(index->method()));
  if (kind_name != IndexKindName(index->kind()))
    return Bad("index kind mismatch: snapshot has " + kind_name +
               ", index expects " + IndexKindName(index->kind()));
  if (m != index->m()) return Bad("coefficient budget mismatch");
  if (dataset_size != dataset.size() || series_length != dataset.length())
    return Bad("dataset shape mismatch");
  if (fingerprint != DatasetFingerprint(dataset))
    return Bad("dataset fingerprint mismatch (snapshot belongs to a "
               "different corpus)");

  const size_t store_begin = r.consumed();
  const std::string store_bytes = r.ReadBytes(store_len);
  const std::string tree_bytes = r.ReadBytes(tree_len);
  if (!r.ok() || r.remaining() != 0) return Bad("section length mismatch");
  if (Crc32c(store_bytes) != crc_store)
    return Bad("store section checksum mismatch");
  if (Crc32c(tree_bytes) != crc_tree)
    return Bad("tree section checksum mismatch");

  Result<RepresentationStore> store =
      options.cold_store
          // Cold: re-map the validated store section straight from the
          // file — only the directory/slack metadata goes resident, and
          // frames decode lazily. (The full-file read above is transient
          // load-time memory; steady-state residency is what cold bounds.)
          ? OpenColdRepresentationStoreAt(
                path, store_begin, static_cast<size_t>(store_len),
                ColdStoreOptions{options.cold_cache_bytes,
                                 options.cold_budget})
          : ParseRepresentationStore(store_bytes);
  if (!store.ok()) return store.status();
  return index->RestoreFromStore(dataset, std::move(store).ValueOrDie(),
                                 tree_bytes);
}

}  // namespace sapla
